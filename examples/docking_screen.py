#!/usr/bin/env python
"""Virtual screening with the miniBUDE docking kernel.

Generates a bm1-shaped synthetic deck, scores a few thousand ligand
poses against the protein, ranks the best binders, and reports the
achieved arithmetic throughput of the (real, numpy) kernel on this
host next to the modeled 6 TFLOPS/s figure from the paper's Xeon MAX
(Sec. 5).

    python examples/docking_screen.py
"""

import time

import numpy as np

from repro.apps.minibude import pose_energies, synthetic_deck
from repro.harness import run_application
from repro.machine import Compiler, Parallelization, RunConfig, XEON_MAX_9480, ZmmUsage


def main():
    deck = synthetic_deck(n_poses=4096, seed=11)
    print(f"deck: {deck.n_ligand} ligand atoms x {deck.n_protein} protein atoms "
          f"x {deck.n_poses} poses (bm1-shaped synthetic)")

    t0 = time.perf_counter()
    energies = pose_energies(deck)
    dt = time.perf_counter() - t0
    flops = deck.flops_per_pose() * deck.n_poses
    print(f"scored {deck.n_poses} poses in {dt * 1e3:.1f} ms "
          f"({flops / dt / 1e9:.2f} GFLOP/s on this host, single thread)")

    order = np.argsort(energies)
    print("\ntop 5 poses (lowest interaction energy):")
    for rank, idx in enumerate(order[:5], 1):
        ang = deck.poses[idx, :3]
        trans = deck.poses[idx, 3:]
        print(f"  #{rank}: pose {idx:5d} energy {energies[idx]:10.3f}  "
              f"euler=({ang[0]:+.2f},{ang[1]:+.2f},{ang[2]:+.2f}) "
              f"t=({trans[0]:+.2f},{trans[1]:+.2f},{trans[2]:+.2f})")

    # What would the full bm1 run achieve on the paper's Xeon MAX?
    cfg = RunConfig(Compiler.ONEAPI, Parallelization.MPI_OMP, ZmmUsage.HIGH, False)
    est = run_application("minibude", XEON_MAX_9480, cfg)
    print(f"\nmodeled on {XEON_MAX_9480.name}: "
          f"{est.achieved_flops / 1e12:.2f} TFLOPS/s "
          f"(paper: 6 TFLOPS/s), full bm1 run {est.total_time:.3f}s")


if __name__ == "__main__":
    main()
