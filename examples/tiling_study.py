#!/usr/bin/env python
"""Cache-blocking tiling: correctness demo + the Figure 9 study.

Part 1 runs a real loop chain through the DSL twice — untiled and with
lazy skewed tiling — and verifies bitwise-identical fields while the
cache simulator counts the main-memory lines each schedule touches
(tiling moves traffic from memory into cache).

Part 2 reruns the paper's Figure 9: CloverLeaf 2D with OPS tiling on
each platform, where the speedup tracks the cache:memory bandwidth
ratio (3.8x / 6.3x / 14x -> 1.84x / 2.7x / 4x in the paper).

    python examples/tiling_study.py
"""

import numpy as np

from repro.harness import fig9
from repro.mem import Cache, CacheHierarchy
from repro.ops import (
    Access,
    OpsContext,
    S2D_00,
    TilePlan,
    arg_dat,
    star_stencil,
)


def chain(ctx, n=48, iters=4):
    """A three-loop stencil chain (smooth -> widen -> accumulate)."""
    grid = ctx.block("grid", (n, n))
    a = grid.dat("a", halo=1)
    b = grid.dat("b", halo=1)
    rng = np.random.default_rng(5)
    a.set_from_global(rng.random((n, n)))
    star = star_stencil(2, 1)

    def smooth(out, inp):
        out[0, 0] = 0.25 * (inp[1, 0] + inp[-1, 0] + inp[0, 1] + inp[0, -1])

    def accumulate(out, inp):
        out[0, 0] = out[0, 0] + 0.5 * inp[0, 0]

    def zero_bc(x):
        x[0, 0] = 0.0

    for _ in range(iters):
        for r in ([(-1, 0), (-1, n + 1)], [(n, n + 1), (-1, n + 1)],
                  [(-1, n + 1), (-1, 0)], [(-1, n + 1), (n, n + 1)]):
            ctx.par_loop(zero_bc, "bc", grid, r, arg_dat(a, S2D_00, Access.WRITE))
        ctx.par_loop(smooth, "smooth", grid, grid.interior,
                     arg_dat(b, S2D_00, Access.WRITE), arg_dat(a, star, Access.READ))
        ctx.par_loop(accumulate, "acc", grid, grid.interior,
                     arg_dat(a, S2D_00, Access.RW), arg_dat(b, S2D_00, Access.READ))
    return a.gather_global()


def simulate_traffic(n, tile_width):
    """Count memory lines of a two-array sweep, contiguous vs tiled, on a
    small simulated cache."""
    cache = CacheHierarchy([Cache(capacity=16 * 1024)])
    line = cache.line_size
    a_base, b_base = 0, n * n * 8
    order = (
        range(0, n, tile_width)
        if tile_width
        else [0]
    )
    # Chain = two sweeps; tiled interleaves row-blocks of both sweeps.
    if tile_width:
        for t in range(0, n, tile_width):
            for sweep_base in (a_base, b_base):
                for row in range(t, min(t + tile_width, n)):
                    cache.access_range(sweep_base + row * n * 8, n * 8)
                    cache.access_range(a_base + row * n * 8, n * 8)
    else:
        for sweep_base in (a_base, b_base):
            for row in range(n):
                cache.access_range(sweep_base + row * n * 8, n * 8)
                cache.access_range(a_base + row * n * 8, n * 8)
    return cache.memory_traffic_bytes


def main():
    # --- part 1: the real transformation is exact --------------------------
    untiled = chain(OpsContext())
    for width in (4, 16):
        ctx = OpsContext(tile=TilePlan(width))
        tiled = chain(ctx)
        ctx.flush()
        same = np.array_equal(untiled, tiled)
        print(f"tile width {width:2d}: tiled result bitwise identical: {same}")
        assert same

    # --- cache-simulator traffic count -------------------------------------
    n = 96
    full = simulate_traffic(n, None)
    tiled = simulate_traffic(n, 8)
    print(f"\ncache-simulated memory traffic for a 2-sweep chain at {n}x{n}: "
          f"{full / 1e3:.0f} KB untiled vs {tiled / 1e3:.0f} KB tiled "
          f"({full / tiled:.2f}x less)")

    # --- part 2: Figure 9 ----------------------------------------------------
    print()
    print(fig9().render())


if __name__ == "__main__":
    main()
