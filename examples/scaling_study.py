#!/usr/bin/env python
"""Strong-scaling study: where does each machine stop gaining from cores?

The paper's central contrast — 9.4 vs 36 flop/byte machine balance — is
really a statement about scaling: on a DDR machine a bandwidth-bound
code saturates memory with a fraction of the cores, while the HBM part
keeps converting cores into throughput.  This example draws the curves.

    python examples/scaling_study.py [app]
"""

import sys

from repro.harness import app_spec
from repro.machine import (
    EPYC_7V73X,
    XEON_8360Y,
    XEON_MAX_9480,
    Compiler,
    Parallelization,
    RunConfig,
)
from repro.perfmodel import comm_share_curve, strong_scaling

CFG = RunConfig(Compiler.ONEAPI, Parallelization.MPI)
CFG_AOCC = RunConfig(Compiler.AOCC, Parallelization.MPI)


def bar(x, width=32):
    return "#" * max(1, int(round(x * width)))


def main():
    name = sys.argv[1] if len(sys.argv) > 1 else "cloverleaf2d"
    spec = app_spec(name)
    print(f"strong scaling of {name} (parallel efficiency vs cores/socket)\n")
    for platform, cfg in ((XEON_MAX_9480, CFG), (XEON_8360Y, CFG),
                          (EPYC_7V73X, CFG_AOCC)):
        quarters = [max(1, platform.cores_per_socket // k) for k in (8, 4, 2, 1)]
        pts = strong_scaling(spec, platform, cfg, core_counts=sorted(set(quarters)))
        print(platform.name)
        for p in pts:
            print(f"  {p.cores:4d} cores  t={p.time:8.3f}s  "
                  f"eff {p.efficiency * 100:5.1f}%  {bar(p.efficiency)}")
        print()

    print("MPI fraction as the per-rank problem shrinks (strong-scaling limit):")
    print(f"{'shrink':>8s} {'max9480':>9s} {'icx8360y':>9s}")
    m = dict(comm_share_curve(spec, XEON_MAX_9480, CFG))
    i = dict(comm_share_curve(spec, XEON_8360Y, CFG))
    for f in sorted(m):
        print(f"{f:8.0f} {m[f] * 100:8.1f}% {i[f] * 100:8.1f}%")
    print("\nThe HBM machine reaches the communication-bound limit first —")
    print("the paper's bottleneck shift, as a curve.")


if __name__ == "__main__":
    main()
