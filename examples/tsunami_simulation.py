#!/usr/bin/env python
"""Tsunami propagation with the Volna shallow-water solver.

Drops a water hump into a synthetic ocean basin (sloping beach, island)
and tracks the wave: volume conservation, run-up on the beach, arrival
at a "coastal gauge" — the workload class the real Volna-OP2 simulates
for the Indian Ocean (paper Sec. 3).  Renders an ASCII map of the final
free surface.

    python examples/tsunami_simulation.py
"""

import numpy as np

from repro.apps.volna import run_volna, synthetic_ocean
from repro.op2 import Op2Context


def ascii_map(mesh, eta, nx, ny):
    """Coarse ASCII rendering: land, shallows, wave crests/troughs."""
    chars = []
    for j in range(ny):
        row = []
        for i in range(nx):
            cell = 2 * (j * nx + i)
            h = eta[cell] - mesh.bathymetry[cell]
            if h < 1e-4:
                row.append("#")  # dry land
            elif eta[cell] > 0.005:
                row.append("^")  # crest
            elif eta[cell] < -0.005:
                row.append("v")  # trough
            else:
                row.append("~")  # calm
        chars.append("".join(row))
    return "\n".join(reversed(chars))


def main():
    nx, ny = 40, 20
    mesh = synthetic_ocean(nx, ny)
    print(f"basin: {mesh.n_cells} triangles, depth "
          f"{-mesh.bathymetry.min():.1f} .. {-mesh.bathymetry.max():.1f}")

    ctx = Op2Context()
    result = run_volna(ctx, (2 * nx, ny), iterations=60, mesh=mesh)

    eta = result["w"][:, 0]
    vols = result["volume"]
    print(f"water volume drift over {len(vols)} steps: "
          f"{abs(max(vols) - min(vols)) / vols[0]:.2e} (conserved)")

    # Gauge near the beach (x ~ 0.85): has the wave arrived?
    gauge_cells = np.nonzero(
        (mesh.cell_centroid[:, 0] > 0.8) & (mesh.bathymetry < -0.01)
    )[0]
    gauge = np.abs(eta[gauge_cells]).max()
    print(f"max |elevation| at the coastal gauge: {gauge:.4f} "
          f"({'wave arrived' if gauge > 1e-4 else 'still quiet'})")

    h = eta - mesh.bathymetry
    print(f"max run-up depth on the beach: {h[mesh.bathymetry > -0.3].max():.4f}")
    print(f"kernel profile: {len(ctx.records)} distinct loops, "
          f"{sum(r.calls for r in ctx.records.values())} launches")
    print()
    print(ascii_map(mesh, eta, nx, ny))


if __name__ == "__main__":
    main()
