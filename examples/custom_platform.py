#!/usr/bin/env python
"""What-if study: define your own platform and model the suite on it.

The library's platform models are plain dataclasses, so architecture
what-ifs are one constructor call away.  This example builds the
question the Xeon CPU MAX itself poses — *how much of its win is the
HBM?* — by cloning the MAX with its HBM swapped for 8-channel DDR5
(a hypothetical "Sapphire Rapids without HBM"), and a second clone with
HBM but Ice-Lake-class core counts.

    python examples/custom_platform.py
"""

import dataclasses

from repro.harness import best_run
from repro.machine import (
    XEON_MAX_9480,
    MemoryKind,
    MemorySpec,
    structured_config_sweep,
    unstructured_config_sweep,
)
from repro.machine.spec import gbs, ns

# --- variant 1: same cores, DDR5 instead of HBM -------------------------
sapphire_ddr = dataclasses.replace(
    XEON_MAX_9480,
    name="Hypothetical SPR 56c + DDR5",
    short_name="spr-ddr5",
    memory=MemorySpec(
        kind=MemoryKind.DDR5,
        capacity=256 * 2**30,
        peak_bandwidth=gbs(307.2),  # 8 x DDR5-4800 per socket
        stream_efficiency=0.78,
        latency=ns(95.0),
    ),
)

# --- variant 2: HBM but only 32 cores per socket --------------------------
max_fewer_cores = dataclasses.replace(
    XEON_MAX_9480,
    name="Hypothetical HBM part, 2x32 cores",
    short_name="hbm-32c",
    cores_per_socket=32,
)


def main():
    apps = ["cloverleaf2d", "opensbli_sn", "mgcfd", "minibude"]
    platforms = [XEON_MAX_9480, sapphire_ddr, max_fewer_cores]
    print(f"{'app':14s}" + "".join(f"{p.short_name:>12s}" for p in platforms))
    for name in apps:
        row = [f"{name:14s}"]
        for p in platforms:
            sweep = (unstructured_config_sweep(p) if name == "mgcfd"
                     else structured_config_sweep(p))
            _, est = best_run(name, p, sweep)
            row.append(f"{est.total_time:11.3f}s")
        print("".join(row))
    print()
    print("Reading: the DDR5 clone shows how much of the MAX's lead is pure")
    print("HBM bandwidth (large for CloverLeaf, small for miniBUDE); the")
    print("32-core clone shows which apps are core-count limited instead.")


if __name__ == "__main__":
    main()
