#!/usr/bin/env python
"""Quickstart: write a structured-mesh app on the DSL and model it.

Builds a small heat-diffusion solver with the OPS-like DSL, runs it
serially AND distributed over the simulated MPI runtime (verifying they
agree), then asks the performance model how the same loop profile would
run at scale on the four platforms of the paper.

    python examples/quickstart.py
"""

import numpy as np

from repro.machine import ALL_PLATFORMS, best_practice_config
from repro.ops import Access, OpsContext, S2D_00, arg_dat, arg_gbl, star_stencil
from repro.perfmodel import AppClass, AppSpec, estimate_app
from repro.simmpi import CartGrid, World


def heat_solver(ctx, n=64, iterations=20):
    """Explicit 2-D heat diffusion with a hot square in the middle."""
    grid = ctx.block("grid", (n, n))
    u = grid.dat("u", halo=1)
    u_new = grid.dat("u_new", halo=1)

    hot = np.zeros((n, n))
    hot[n // 4: 3 * n // 4, n // 4: 3 * n // 4] = 100.0
    u.set_from_global(hot)

    star = star_stencil(2, 1)

    def diffuse(out, inp):
        out[0, 0] = inp[0, 0] + 0.2 * (
            inp[1, 0] + inp[-1, 0] + inp[0, 1] + inp[0, -1] - 4.0 * inp[0, 0]
        )

    def copy(out, inp):
        out[0, 0] = inp[0, 0]

    def insulate(ghost):
        ghost[0, 0] = 0.0

    total = np.zeros(1)

    def heat_sum(g, inp):
        g[0] += float(np.sum(inp[0, 0]))

    for _ in range(iterations):
        for rng in ([(-1, 0), (-1, n + 1)], [(n, n + 1), (-1, n + 1)],
                    [(-1, n + 1), (-1, 0)], [(-1, n + 1), (n, n + 1)]):
            ctx.par_loop(insulate, "bc", grid, rng, arg_dat(u, S2D_00, Access.WRITE))
        ctx.par_loop(diffuse, "diffuse", grid, grid.interior,
                     arg_dat(u_new, S2D_00, Access.WRITE),
                     arg_dat(u, star, Access.READ), flops_per_point=7)
        ctx.par_loop(copy, "copy", grid, grid.interior,
                     arg_dat(u, S2D_00, Access.WRITE),
                     arg_dat(u_new, S2D_00, Access.READ))
    ctx.par_loop(heat_sum, "heat_sum", grid, grid.interior,
                 arg_gbl(total, Access.INC), arg_dat(u, S2D_00, Access.READ))
    return u.gather_global(), float(total[0])


def main():
    # --- 1. serial run ----------------------------------------------------
    ctx = OpsContext()
    field, total = heat_solver(ctx)
    print(f"serial:      total heat {total:.3f}, "
          f"center {field[32, 32]:.2f}, corner {field[0, 0]:.4f}")

    # --- 2. the same code, distributed over 4 simulated MPI ranks ---------
    def program(comm):
        dctx = OpsContext(comm=comm, grid=CartGrid((2, 2)))
        return heat_solver(dctx)

    results = World(4).run(program)
    dist_field, dist_total = results[0]
    assert np.array_equal(field, dist_field), "distributed != serial!"
    print(f"distributed: total heat {dist_total:.3f} "
          "(bitwise identical to serial on 4 ranks)")

    # --- 3. model the loop profile at scale on the paper's platforms ------
    spec = AppSpec(
        name="heat",
        klass=AppClass.STRUCTURED_BW,
        dtype_bytes=8,
        iterations=100,
        loops=tuple(ctx.loop_specs(iterations=20,
                                   point_scale=(8192 / 64, 8192 / 64),
                                   run_domain=(64, 64))),
        domain=(8192, 8192),
        halo_depth=1,
        state_bytes=2 * 8192 * 8192 * 8,
    )
    print("\nModeled runtime of this solver at 8192^2 x 100 iterations:")
    for platform in ALL_PLATFORMS:
        cfg = best_practice_config(platform)
        est = estimate_app(spec, platform, cfg)
        print(f"  {platform.short_name:10s} {est.total_time:7.3f} s   "
              f"effective BW {est.effective_bandwidth / 1e9:6.0f} GB/s   "
              f"MPI {est.mpi_fraction * 100:4.1f}%   [{cfg.label()}]")


if __name__ == "__main__":
    main()
