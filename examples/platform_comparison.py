#!/usr/bin/env python
"""Compare one application across the paper's four platforms.

Profiles the chosen application through the DSL at a scaled-down size,
extrapolates to the paper's problem size, sweeps every feasible
compiler/ZMM/HT/parallelization combination per platform, and prints the
best configuration, runtime, effective bandwidth and MPI fraction — a
one-app slice of the paper's Figures 6/7/8.

    python examples/platform_comparison.py [app]

``app`` defaults to cloverleaf2d; see ``repro.apps.APP_ORDER`` for the
full list (cloverleaf2d/3d, opensbli_sa/sn, acoustic, miniweather,
mgcfd, volna, minibude).
"""

import sys

from repro.apps import APP_ORDER, get_app
from repro.harness import best_run, run_application
from repro.machine import (
    A100_40GB,
    CPU_PLATFORMS,
    Compiler,
    Parallelization,
    RunConfig,
    structured_config_sweep,
    unstructured_config_sweep,
)


def main():
    name = sys.argv[1] if len(sys.argv) > 1 else "cloverleaf2d"
    if name not in APP_ORDER:
        raise SystemExit(f"unknown app {name!r}; choose from {APP_ORDER}")
    defn = get_app(name)
    print(f"{defn.name}: {defn.description}")
    print(f"paper problem: {defn.paper_domain} x {defn.paper_iterations} iterations\n")

    print(f"{'platform':12s} {'best configuration':45s} "
          f"{'runtime':>9s} {'eff. BW':>9s} {'MPI':>6s}")
    results = {}
    for platform in CPU_PLATFORMS:
        sweep_fn = (structured_config_sweep if defn.structured
                    else unstructured_config_sweep)
        cfg, est = best_run(name, platform, sweep_fn(platform))
        results[platform.short_name] = est.total_time
        print(f"{platform.short_name:12s} {cfg.label():45s} "
              f"{est.total_time:8.3f}s {est.effective_bandwidth / 1e9:6.0f} GB/s "
              f"{est.mpi_fraction * 100:5.1f}%")
    gpu = run_application(name, A100_40GB, RunConfig(Compiler.NVCC, Parallelization.CUDA))
    results["a100"] = gpu.total_time
    print(f"{'a100':12s} {'CUDA':45s} {gpu.total_time:8.3f}s "
          f"{gpu.effective_bandwidth / 1e9:6.0f} GB/s {'':>6s}")

    base = results["max9480"]
    print("\nXeon CPU MAX 9480 speedups:")
    for other in ("icx8360y", "epyc7v73x", "a100"):
        r = results[other] / base
        rel = f"{r:.2f}x faster" if r > 1 else f"{1 / r:.2f}x slower"
        print(f"  vs {other:10s} {rel}")


if __name__ == "__main__":
    main()
