#!/usr/bin/env python
"""Roofline analysis: where does each application sit, and why does the
Xeon CPU MAX shift bottlenecks?

Draws text rooflines of CloverLeaf 2D (bandwidth-bound) and miniBUDE
(compute-bound) on the Xeon MAX, then prints the time-weighted bottleneck
mix of every application on the MAX vs the 8360Y — the paper's central
claim that lowering machine balance from 36 to 9.4 flop/byte moves codes
away from the bandwidth wall.

    python examples/roofline_analysis.py
"""

from repro.apps import APP_ORDER
from repro.harness import app_spec
from repro.machine import XEON_8360Y, XEON_MAX_9480, best_practice_config
from repro.perfmodel import bottleneck_summary, render_roofline, roofline_points


def main():
    cfg_max = best_practice_config(XEON_MAX_9480)
    for name in ("cloverleaf2d", "minibude"):
        pts = roofline_points(app_spec(name), XEON_MAX_9480, cfg_max)
        print(f"--- {name} ---")
        print(render_roofline(pts, XEON_MAX_9480, width=56, height=12,
                              dtype_bytes=app_spec(name).dtype_bytes))
        print()

    print(f"{'app':14s} {'MAX bottleneck mix':34s} {'8360Y bottleneck mix'}")
    cfg_icx = best_practice_config(XEON_8360Y)
    for name in APP_ORDER:
        spec = app_spec(name)
        mix_max = bottleneck_summary(roofline_points(spec, XEON_MAX_9480, cfg_max))
        mix_icx = bottleneck_summary(roofline_points(spec, XEON_8360Y, cfg_icx))

        def fmt(mix):
            return " ".join(f"{k[:3]}={v * 100:.0f}%" for k, v in sorted(mix.items()))

        print(f"{name:14s} {fmt(mix_max):34s} {fmt(mix_icx)}")


if __name__ == "__main__":
    main()
