"""Figure 6: best performance per platform and Xeon MAX speedups."""

import numpy as np
import pytest

from repro.harness.paperdata import FIG6_SPEEDUP_VS_8360Y, FIG6_SPEEDUP_VS_EPYC


def test_fig6_generation(benchmark, fig):
    f6 = benchmark.pedantic(lambda: fig("fig6"), rounds=1, iterations=1)
    assert len(f6.rows) == 9


def test_fig6_max_fastest_cpu_everywhere(fig):
    """The conclusion's 2.0x-4.3x range: the Xeon MAX beats both DDR CPUs
    on every application."""
    f6 = fig("fig6")
    for row in f6.rows:
        name, t_max, t_icx, t_epyc = row[0], row[1], row[2], row[3]
        assert t_max < t_icx, name
        assert t_max < t_epyc, name


def test_fig6_speedups_within_band_of_paper(fig):
    """Per-app speedup vs the 8360Y within +-40% of the published value
    (absolute matching is out of scope; see EXPERIMENTS.md)."""
    f6 = fig("fig6")
    for row in f6.rows:
        ref = FIG6_SPEEDUP_VS_8360Y.get(row[0])
        if ref is None:
            continue
        model = row[5]
        assert ref * 0.6 < model < ref * 1.5, (row[0], model, ref)


def test_fig6_epyc_speedups(fig):
    f6 = fig("fig6")
    rows = f6.row_map()
    for app, ref in FIG6_SPEEDUP_VS_EPYC.items():
        model = rows[app][7]
        assert ref * 0.6 < model < ref * 1.6, (app, model, ref)


def test_fig6_bandwidth_bound_gain_most(fig):
    """The most bandwidth-bound codes (CloverLeaf, SA) gain more than the
    latency/compute-bound ones (acoustic, volna, minibude)."""
    f6 = fig("fig6")
    rows = f6.row_map()
    bw = min(rows["cloverleaf2d"][5], rows["cloverleaf3d"][5])
    other = max(rows["acoustic"][5], rows["volna"][5], rows["minibude"][5])
    assert bw > other


def test_fig6_a100_comparison(fig):
    """'the A100 is significantly (1.1-2.1x) faster' than the Xeon MAX,
    less so on the most bandwidth-bound codes."""
    f6 = fig("fig6")
    rows = f6.row_map()
    ratios = {r[0]: r[9] for r in f6.rows}
    # Bandwidth-bound codes: smallest gap.
    assert ratios["cloverleaf2d"] < ratios["opensbli_sn"]
    assert ratios["cloverleaf2d"] < ratios["acoustic"]
    # Every OPS/OP2 app inside a generous 1.0-2.2x band.
    for app, ratio in ratios.items():
        if app == "minibude":
            continue  # compute-bound outlier, not part of the 1.1-2.1 claim
        assert 0.95 < ratio < 2.2, (app, ratio)


def test_fig6_minibude_speedups(fig):
    """miniBUDE: 1.9x vs the 8360Y, 1.36x vs the EPYC (AVX-512 story)."""
    f6 = fig("fig6")
    row = f6.row_map()["minibude"]
    assert row[5] == pytest.approx(1.9, abs=0.25)
    assert row[7] == pytest.approx(1.36, abs=0.2)
