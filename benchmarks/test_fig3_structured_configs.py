"""Figure 3 + Section 5 text: the structured-mesh configuration sweep."""

import numpy as np
import pytest

from repro.harness.paperdata import MINIBUDE_TFLOPS, STRUCTURED_APPS
from repro.harness.runner import run_application, sweep
from repro.machine import (
    XEON_8360Y,
    XEON_MAX_9480,
    Compiler,
    Parallelization,
    RunConfig,
    ZmmUsage,
    structured_config_sweep,
)


def _matrix(fig):
    f3 = fig("fig3")
    apps = list(f3.columns[1:])
    return f3, apps


def test_fig3_sweep(benchmark, fig):
    f3 = benchmark.pedantic(lambda: fig("fig3"), rounds=1, iterations=1)
    assert len(f3.rows) == 24  # the paper's 24 configuration rows


def test_fig3_mean_and_median_slowdown(fig):
    """Paper: mean 1.25 / median 1.12 on the MAX (high config sensitivity);
    we assert a clearly-above-one mean and a sane band."""
    f3, apps = _matrix(fig)
    vals = [v for row in f3.rows for v in row[1:] if v is not None]
    mean, median = float(np.mean(vals)), float(np.median(vals))
    assert 1.05 < mean < 1.4
    assert 1.02 < median < 1.25


def test_fig3_oneapi_better_on_average(fig):
    """'the newer OneAPI compilers outperform the Classical compilers on
    average' — compare matched config pairs."""
    f3, apps = _matrix(fig)
    rows = f3.row_map()
    diffs = []
    for lbl, row in rows.items():
        if "OneAPI" not in lbl or "SYCL" in lbl:
            continue
        classic = rows.get(lbl.replace("OneAPI", "Classic"))
        if classic is None:
            continue
        a = [v for v in row[1:] if v is not None]
        b = [v for v in classic[1:] if v is not None]
        diffs.append(np.mean(b) - np.mean(a))
    assert np.mean(diffs) > 0  # Classic rows are slower on average


def test_fig3_zmm_effect_small_for_bandwidth_bound(fig):
    """'ZMM usage does not have a substantial effect on these primarily
    bandwidth-bound codes' — check CloverLeaf 2D."""
    f3, apps = _matrix(fig)
    col = apps.index("cloverleaf2d") + 1
    rows = f3.row_map()
    for lbl, row in rows.items():
        if "(ZMM high)" not in lbl:
            continue
        other = rows.get(lbl.replace("(ZMM high)", "(ZMM default)"))
        if other and row[col] and other[col]:
            assert abs(row[col] - other[col]) / row[col] < 0.05


def test_fig3_zmm_high_helps_compute_heavy(fig):
    """'only on the two most computationally intensive applications
    (Acoustic and OpenSBLI SN) is ZMM high consistently better'."""
    f3, apps = _matrix(fig)
    col = apps.index("opensbli_sn") + 1
    rows = f3.row_map()
    wins = 0
    total = 0
    for lbl, row in rows.items():
        if "(ZMM high)" not in lbl:
            continue
        other = rows.get(lbl.replace("(ZMM high)", "(ZMM default)"))
        if other and row[col] and other[col]:
            total += 1
            wins += row[col] < other[col]
    assert wins == total  # ZMM high always better for SN


def test_fig3_sycl_behind_openmp(fig):
    """MPI+SYCL does not match MPI+OpenMP (scheduling overheads)."""
    f3, apps = _matrix(fig)
    rows = f3.row_map()

    def group_mean(substr):
        vals = []
        for lbl, row in rows.items():
            if substr in lbl and "OneAPI" in lbl:
                vals.extend(v for v in row[1:] if v is not None)
        return float(np.mean(vals))

    assert group_mean("MPI+SYCL") > group_mean("MPI+OpenMP")


class TestMiniBude:
    """Section 5's miniBUDE paragraph."""

    def test_classic_stalls(self):
        """'the Classical compilers generate code that stalls' — the
        runner reports no Classic result."""
        cfgs = [RunConfig(Compiler.CLASSIC, Parallelization.MPI),
                RunConfig(Compiler.ONEAPI, Parallelization.MPI)]
        runs = dict(sweep("minibude", XEON_MAX_9480, cfgs))
        assert runs[cfgs[0]] is None
        assert runs[cfgs[1]] is not None

    def test_six_tflops(self, benchmark):
        """'We achieve 6 TFLOPS/s with OneAPI, without HT and ZMM high'."""
        cfg = RunConfig(Compiler.ONEAPI, Parallelization.MPI_OMP, ZmmUsage.HIGH, False)
        est = benchmark.pedantic(
            lambda: run_application("minibude", XEON_MAX_9480, cfg),
            rounds=1, iterations=1,
        )
        assert est.achieved_flops / 1e12 == pytest.approx(MINIBUDE_TFLOPS, rel=0.1)

    def test_zmm_high_improves_45_percent(self):
        """'ZMM high improves performance by 45%'."""
        base = RunConfig(Compiler.ONEAPI, Parallelization.MPI_OMP, ZmmUsage.DEFAULT, False)
        high = base.with_(zmm=ZmmUsage.HIGH)
        t_def = run_application("minibude", XEON_MAX_9480, base).total_time
        t_high = run_application("minibude", XEON_MAX_9480, high).total_time
        assert t_def / t_high == pytest.approx(1.45, abs=0.25)

    def test_ht_hurts_28_percent(self):
        """'HT enabled reduces performance by 28%'."""
        base = RunConfig(Compiler.ONEAPI, Parallelization.MPI_OMP, ZmmUsage.HIGH, False)
        ht = base.with_(hyperthreading=True)
        t_no = run_application("minibude", XEON_MAX_9480, base).total_time
        t_ht = run_application("minibude", XEON_MAX_9480, ht).total_time
        assert (t_ht - t_no) / t_ht == pytest.approx(0.28, abs=0.08)


def test_fig3_max_more_config_sensitive_than_8360y(benchmark, fig):
    """'The mean slowdown vs the best configuration on structured meshes
    is 1.25 (median 1.12) [on the MAX].  In comparison, the mean slowdown
    on the Xeon Platinum 8360Y is only 1.11, with the median at 1.05' —
    the HBM platform punishes wrong configurations harder."""
    import numpy as np

    from repro.harness.figures import fig3 as fig3_fn

    f3_max = fig("fig3")
    f3_icx = benchmark.pedantic(lambda: fig3_fn(XEON_8360Y), rounds=1, iterations=1)

    def spread(f):
        vals = [v for row in f.rows for v in row[1:] if v is not None]
        return float(np.mean(vals)), float(np.median(vals))

    mean_max, med_max = spread(f3_max)
    mean_icx, med_icx = spread(f3_icx)
    assert mean_max > mean_icx
    assert med_max > med_icx
