"""Figure 2: core-to-core message latency classes per platform."""

import pytest

from repro.machine import EPYC_7V73X, XEON_8360Y, XEON_MAX_9480, CoreToCoreBenchmark


def test_fig2_table(benchmark, fig):
    result = benchmark.pedantic(lambda: fig("fig2"), rounds=1, iterations=1)
    rows = {(r[0], r[1]): r[2] for r in result.rows}
    # Intel platforms report SMT / adjacent / cross-socket; EPYC reports
    # adjacent / cross-NUMA / cross-socket (SMT off) — as in the paper.
    assert ("max9480", "smt-siblings") in rows
    assert ("epyc7v73x", "smt-siblings") not in rows
    assert ("epyc7v73x", "cross-numa") in rows


def test_fig2_class_ordering(fig):
    rows = {(r[0], r[1]): r[2] for r in fig("fig2").rows}
    for p in ("max9480", "icx8360y"):
        assert rows[(p, "smt-siblings")] < rows[(p, "adjacent-cores")]
        assert rows[(p, "adjacent-cores")] < rows[(p, "cross-socket")]
    assert rows[("epyc7v73x", "adjacent-cores")] < rows[("epyc7v73x", "cross-numa")]
    assert rows[("epyc7v73x", "cross-numa")] < rows[("epyc7v73x", "cross-socket")]


def test_fig2_no_latency_improvement_on_max(benchmark):
    """'there hasn't been a significant improvement (in some cases even
    slight regression) in communication latencies compared to the 8360Y'."""

    def pairs():
        return (
            CoreToCoreBenchmark(XEON_MAX_9480).representative_pairs(),
            CoreToCoreBenchmark(XEON_8360Y).representative_pairs(),
        )

    new, old = benchmark.pedantic(pairs, rounds=1, iterations=1)
    for key in ("smt-siblings", "adjacent-cores", "cross-socket"):
        assert new[key] >= old[key] * 0.95  # no significant improvement


def test_fig2_epyc_cross_socket_penalty(fig):
    """EPYC cross-socket latency is ~1.6x the Intel systems'."""
    rows = {(r[0], r[1]): r[2] for r in fig("fig2").rows}
    intel = 0.5 * (rows[("max9480", "cross-socket")] + rows[("icx8360y", "cross-socket")])
    assert rows[("epyc7v73x", "cross-socket")] / intel == pytest.approx(1.6, abs=0.15)
