"""Ablation study: knock out one model mechanism at a time and show which
paper result it is responsible for.

DESIGN.md calls out the load-bearing modeling decisions; each test here
disables one (via :func:`repro.perfmodel.calibration.override`) and
asserts that the corresponding figure's shape *breaks* — evidence the
reproduced shapes are produced by the documented mechanisms rather than
by accident.
"""

import pytest

from repro.harness.runner import best_run, clear_cache, run_application
from repro.machine import (
    EPYC_7V73X,
    XEON_8360Y,
    XEON_MAX_9480,
    Compiler,
    Parallelization,
    RunConfig,
    ZmmUsage,
    structured_config_sweep,
    unstructured_config_sweep,
)
from repro.perfmodel import calibration as cal


@pytest.fixture(autouse=True)
def _fresh_caches():
    """Estimates depend on calibration constants: clear between tests."""
    clear_cache()
    yield
    clear_cache()


MPI = RunConfig(Compiler.ONEAPI, Parallelization.MPI, ZmmUsage.HIGH)
VEC = RunConfig(Compiler.ONEAPI, Parallelization.MPI_VEC, ZmmUsage.HIGH)
OMP = RunConfig(Compiler.ONEAPI, Parallelization.MPI_OMP, ZmmUsage.HIGH)


def _effbw_max(app: str) -> float:
    _, est = best_run(app, XEON_MAX_9480, structured_config_sweep(XEON_MAX_9480))
    return est.effective_bandwidth / XEON_MAX_9480.stream_bandwidth


def test_concurrency_limit_drives_fig8(benchmark):
    """Without the per-core miss-concurrency ceiling (McCalpin's HBM
    saturation argument), Figure 8's 41-76% spread on the MAX collapses:
    every app saturates the derated STREAM figure."""

    def spread():
        hi = _effbw_max("cloverleaf2d")
        lo = _effbw_max("acoustic")
        return hi, lo

    hi, lo = benchmark.pedantic(spread, rounds=1, iterations=1)
    assert hi - lo > 0.2  # with the mechanism: a wide spread

    clear_cache()
    with cal.override(MEM_CONCURRENCY_BASE=1e9):
        hi2, lo2 = spread()
    assert hi2 - lo2 < 0.12  # ablated: nearly flat
    assert lo2 > lo + 0.15  # acoustic jumps up without the ceiling


def test_scalar_ilp_penalty_drives_fig4_vec_advantage(benchmark):
    """'MPI vec' wins on unstructured meshes because scalar flux kernels
    sustain poor ILP; with scalar ILP set to vector-equivalent levels the
    advantage shrinks drastically."""

    def advantage():
        t_mpi = run_application("mgcfd", XEON_MAX_9480, MPI).total_time
        t_vec = run_application("mgcfd", XEON_MAX_9480, VEC).total_time
        return t_mpi / t_vec

    adv = benchmark.pedantic(advantage, rounds=1, iterations=1)
    assert adv > 1.15

    clear_cache()
    with cal.override(SCALAR_ILP_FLOPS_FRACTION=8.0, VEC_GATHER_MLP_BOOST=1.0):
        adv2 = advantage()
    assert adv2 < adv - 0.1
    assert adv2 < 1.1


def test_imbalance_scaling_drives_hybrid_win(benchmark):
    """Rank-count-dependent imbalance is half of why MPI+OpenMP competes
    with pure MPI on structured meshes; without it, pure MPI pulls ahead."""

    def gap():
        t_mpi = run_application("cloverleaf2d", XEON_MAX_9480, MPI).total_time
        t_omp = run_application("cloverleaf2d", XEON_MAX_9480, OMP).total_time
        return t_mpi / t_omp  # > 1 means the hybrid wins

    with_mech = benchmark.pedantic(gap, rounds=1, iterations=1)
    clear_cache()
    with cal.override(IMBALANCE_PER_LOG2_RANKS=0.0):
        without = gap()
    assert with_mech > without  # the mechanism favors the hybrid


def test_sycl_launch_overhead_drives_cloverleaf_gap(benchmark):
    """CloverLeaf's many small boundary kernels make SYCL's per-launch
    cost visible; with free launches SYCL matches OpenMP."""
    sycl = RunConfig(Compiler.ONEAPI, Parallelization.MPI_SYCL_FLAT, ZmmUsage.HIGH)

    def gap():
        t_omp = run_application("cloverleaf2d", XEON_MAX_9480, OMP).total_time
        t_sycl = run_application("cloverleaf2d", XEON_MAX_9480, sycl).total_time
        return t_sycl / t_omp

    with_mech = benchmark.pedantic(gap, rounds=1, iterations=1)
    assert with_mech > 1.03

    clear_cache()
    with cal.override(SYCL_LAUNCH_OVERHEAD=cal.OMP_FORK_BASE, SYCL_NDRANGE_EXTRA=0.0):
        without = gap()
    assert without < with_mech
    assert without == pytest.approx(1.0, abs=0.03)


def test_llc_gather_residency_drives_epyc_mgcfd(benchmark):
    """The EPYC's V-cache holding MG-CFD's gathered field is why its
    speedup deficit vs the MAX is the smallest (Sec. 6)."""

    def ratio():
        _, e_epyc = best_run("mgcfd", EPYC_7V73X, unstructured_config_sweep(EPYC_7V73X))
        _, e_max = best_run("mgcfd", XEON_MAX_9480, unstructured_config_sweep(XEON_MAX_9480))
        return e_epyc.total_time / e_max.total_time

    with_mech = benchmark.pedantic(ratio, rounds=1, iterations=1)
    clear_cache()
    with cal.override(GATHER_LLC_HIT=0.0, CACHE_UTILIZATION=1e-9):
        without = ratio()
    assert with_mech < without  # residency helps the EPYC specifically


def test_width_exponent_drives_minibude_zmm_gain(benchmark):
    """The sublinear width exponent turns 'ZMM high' into the paper's
    +45% rather than a naive +94%."""
    base = RunConfig(Compiler.ONEAPI, Parallelization.MPI_OMP, ZmmUsage.DEFAULT)
    high = base.with_(zmm=ZmmUsage.HIGH)

    def gain():
        t_def = run_application("minibude", XEON_MAX_9480, base).total_time
        t_high = run_application("minibude", XEON_MAX_9480, high).total_time
        return t_def / t_high

    with_mech = benchmark.pedantic(gain, rounds=1, iterations=1)
    assert with_mech == pytest.approx(1.45, abs=0.2)

    clear_cache()
    with cal.override(VECTOR_WIDTH_EXPONENT=1.0):
        naive = gain()
    assert naive > 1.8  # near-linear width scaling overshoots the paper


def test_comm_sharing_drives_fig7_hybrid_advantage(benchmark):
    """Memory-bound shared-memory transfers (bandwidth divided across
    communicating ranks) are why 224-rank pure MPI pays more than 8-rank
    MPI+OpenMP."""

    def fractions():
        mpi = run_application("cloverleaf2d", XEON_8360Y, MPI.with_(hyperthreading=True))
        omp = run_application("cloverleaf2d", XEON_8360Y, OMP)
        return mpi.comm.time_per_iter, omp.comm.time_per_iter

    t_mpi, t_omp = benchmark.pedantic(fractions, rounds=1, iterations=1)
    assert t_mpi > t_omp
