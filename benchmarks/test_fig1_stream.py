"""Figure 1: BabelStream Triad bandwidth — plateaus, ratios, curve shape.

Also benchmarks the *real* numpy Triad kernel on this machine via
pytest-benchmark (the reproduction's kernels are real computations; their
host-machine throughput is reported for reference, while the figure's
platform numbers come from the machine models).
"""

import numpy as np
import pytest

from repro.harness.paperdata import FIG1_CACHE_RATIO, FIG1_STREAM_GBS
from repro.machine import EPYC_7V73X, XEON_8360Y, XEON_MAX_9480
from repro.mem import Scope, StreamArrays, plateau_bandwidth, triad_sweep
from repro.mem.stream import triad


def test_fig1_plateaus_match_paper(benchmark, fig):
    result = benchmark.pedantic(lambda: fig("fig1"), rounds=1, iterations=1)
    rows = {(r[0], r[1]): r for r in result.rows}
    for label, key in (
        ("max9480", "max9480"),
        ("max9480 (SS flags)", "max9480_ss"),
        ("icx8360y", "icx8360y"),
        ("epyc7v73x", "epyc7v73x"),
        ("a100", "a100"),
    ):
        model = rows[(label, "node")][2]
        assert model == pytest.approx(FIG1_STREAM_GBS[key], rel=0.01), label


def test_fig1_generation_speedups(benchmark):
    """1446 GB/s is a 4.8x increase over the 8360Y; 1643 is 5.5x."""
    plain = benchmark.pedantic(
        lambda: plateau_bandwidth(XEON_MAX_9480), rounds=3, iterations=1
    )
    assert plain / plateau_bandwidth(XEON_8360Y) == pytest.approx(4.8, abs=0.2)
    assert plateau_bandwidth(XEON_MAX_9480, tuned=True) / plateau_bandwidth(
        XEON_8360Y
    ) == pytest.approx(5.5, abs=0.2)


def test_fig1_cache_memory_ratios(fig):
    for note in fig("fig1").notes[:3]:
        pass  # rendered; the numeric check below is authoritative
    from repro.mem import HierarchyModel

    for p in (XEON_MAX_9480, XEON_8360Y, EPYC_7V73X):
        ratio = HierarchyModel(p).cache_to_memory_ratio()
        assert ratio == pytest.approx(FIG1_CACHE_RATIO[p.short_name], rel=0.06)


def test_fig1_curve_shape(benchmark):
    """Bandwidth rises, peaks in the cache region, settles on the plateau."""
    sizes = 2 ** np.arange(14, 28)

    res = benchmark.pedantic(
        lambda: triad_sweep(XEON_MAX_9480, sizes), rounds=1, iterations=1
    )
    bws = [r.bandwidth for r in res]
    assert max(bws) > 2 * bws[0]
    assert max(bws) > 2 * bws[-1]
    assert bws[-1] == pytest.approx(XEON_MAX_9480.stream_bandwidth, rel=0.05)


def test_fig1_numa_scope_is_one_eighth(benchmark):
    node = plateau_bandwidth(XEON_MAX_9480)
    numa = benchmark.pedantic(
        lambda: plateau_bandwidth(XEON_MAX_9480, Scope.NUMA), rounds=3, iterations=1
    )
    assert numa == pytest.approx(node / 8, rel=0.01)


def test_real_triad_kernel_throughput(benchmark):
    """Measure the actual numpy Triad on the host (reference only)."""
    arrays = StreamArrays.allocate(2**22)

    benchmark(triad, arrays)
    moved = 3 * arrays.a.nbytes
    benchmark.extra_info["GB_per_s"] = moved / benchmark.stats["mean"] / 1e9
