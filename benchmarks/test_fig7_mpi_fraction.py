"""Figure 7: fraction of runtime spent in MPI per app and platform."""

import numpy as np
import pytest


def _rows(fig):
    f7 = fig("fig7")
    return {(r[0], r[1]): (r[2], r[3]) for r in f7.rows}


def test_fig7_generation(benchmark, fig):
    f7 = benchmark.pedantic(lambda: fig("fig7"), rounds=1, iterations=1)
    assert len(f7.rows) == 8 * 3  # 8 MPI apps x 3 CPU platforms


def test_fig7_hybrid_has_lower_overhead(fig):
    """'for all but one application the MPI+OpenMP implementation has
    significantly lower MPI overhead'."""
    rows = _rows(fig)
    better = sum(
        1 for (app, p), (mpi, omp) in rows.items()
        if p == "max9480" and omp is not None and omp < mpi
    )
    assert better >= 6  # out of 8 apps on the MAX


def test_fig7_max_fraction_higher_than_8360y(fig):
    """'the percentage of time spent in MPI on the MAX is 1.2-5.3x higher
    compared to the 8360Y' (bottleneck shift to latency)."""
    rows = _rows(fig)
    ratios = []
    for (app, p), (mpi, _) in rows.items():
        if p != "max9480" or mpi is None:
            continue
        icx = rows[(app, "icx8360y")][0]
        ratios.append(mpi / icx)
    # (Our comm model is volume-dominated for the radius-4 Acoustic
    # halos, where the fraction roughly cancels across platforms; the
    # paper likewise excludes CloverLeaf 2D from this claim.)
    assert sum(r > 1.0 for r in ratios) >= 5
    assert 1.0 < np.mean(ratios) < 5.3


def test_fig7_fractions_sane(fig):
    rows = _rows(fig)
    for key, (mpi, omp) in rows.items():
        for v in (mpi, omp):
            if v is not None:
                assert 0.0 <= v < 60.0, (key, v)


def test_fig7_acoustic_is_comm_heaviest_structured(fig):
    """Acoustic has 'large communications volume over MPI' (Sec. 3)."""
    rows = _rows(fig)
    structured = ["cloverleaf2d", "cloverleaf3d", "opensbli_sa",
                  "opensbli_sn", "acoustic", "miniweather"]
    fracs = {a: rows[(a, "max9480")][0] for a in structured}
    assert max(fracs, key=fracs.get) == "acoustic"
