"""Shared fixtures for the figure-regeneration benchmark suite.

Each ``test_figN_*`` module regenerates one of the paper's figures,
prints the model-vs-paper table, and asserts the *shape* agreements
(orderings, crossovers, rough factors) documented in EXPERIMENTS.md.
Figure results are cached per session so the suite stays fast.
"""

from __future__ import annotations

from functools import lru_cache

import pytest

from repro.harness import figures


@lru_cache(maxsize=None)
def cached_figure(name: str):
    return getattr(figures, name)()


@pytest.fixture(scope="session")
def fig(request):
    """Indirect figure accessor: ``fig('fig6')``."""
    return cached_figure


@pytest.fixture(autouse=True)
def _count_as_benchmark(benchmark):
    """Every test in this suite is part of the figure-regeneration
    benchmark run: depend on the ``benchmark`` fixture so
    ``--benchmark-only`` executes the shape assertions too."""
    yield


@pytest.fixture(scope="session", autouse=True)
def _print_tables_once(request):
    """Print every regenerated table at the end of the benchmark run."""
    yield
    capman = request.config.pluginmanager.getplugin("capturemanager")
    if capman:
        capman.suspend_global_capture(in_=True)
    try:
        for name in ("fig1", "fig2", "fig3", "fig4", "fig5",
                     "fig6", "fig7", "fig8", "fig9"):
            if cached_figure.cache_info().currsize:  # only if suite ran
                print()
                print(cached_figure(name).render())
    finally:
        if capman:
            capman.resume_global_capture()
