"""Shared fixtures for the figure-regeneration benchmark suite.

Each ``test_figN_*`` module regenerates one of the paper's figures,
prints the model-vs-paper table, and asserts the *shape* agreements
(orderings, crossovers, rough factors) documented in EXPERIMENTS.md.
Figure results are cached per session so the suite stays fast.
"""

from __future__ import annotations

import os
from functools import lru_cache

import pytest

from repro.engine import configure_engine, default_engine
from repro.harness import figures


@pytest.fixture(scope="session", autouse=True)
def _engine_for_benchmarks(tmp_path_factory):
    """Route the figure sweeps through a session-local engine.

    The persistent store lives in a per-session temp dir unless
    ``REPRO_CACHE_DIR`` is set (point it at a fixed path to benchmark
    warm-cache runs); ``REPRO_BENCH_JOBS`` enables parallel workers.
    """
    cache_dir = os.environ.get("REPRO_CACHE_DIR") or str(
        tmp_path_factory.mktemp("engine-cache")
    )
    workers = int(os.environ.get("REPRO_BENCH_JOBS", "1"))
    configure_engine(cache_dir=cache_dir, workers=workers)
    yield


@lru_cache(maxsize=None)
def cached_figure(name: str):
    return getattr(figures, name)()


@pytest.fixture(scope="session")
def fig(request):
    """Indirect figure accessor: ``fig('fig6')``."""
    return cached_figure


@pytest.fixture(autouse=True)
def _count_as_benchmark(benchmark):
    """Every test in this suite is part of the figure-regeneration
    benchmark run: depend on the ``benchmark`` fixture so
    ``--benchmark-only`` executes the shape assertions too."""
    yield


@pytest.fixture(scope="session", autouse=True)
def _print_tables_once(request):
    """Print every regenerated table at the end of the benchmark run."""
    yield
    capman = request.config.pluginmanager.getplugin("capturemanager")
    if capman:
        capman.suspend_global_capture(in_=True)
    try:
        for name in ("fig1", "fig2", "fig3", "fig4", "fig5",
                     "fig6", "fig7", "fig8", "fig9"):
            if cached_figure.cache_info().currsize:  # only if suite ran
                print()
                print(cached_figure(name).render())
        if cached_figure.cache_info().currsize:
            print()
            print(default_engine().metrics.summary())
    finally:
        if capman:
            capman.resume_global_capture()
