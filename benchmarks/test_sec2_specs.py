"""Section 2's derived platform numbers (peak TFLOPS, flop/byte balance)."""

import pytest

from repro.machine import EPYC_7V73X, XEON_8360Y, XEON_MAX_9480


def test_sec2_peak_fp32_tflops(benchmark):
    def peaks():
        return tuple(p.peak_flops_range(4) for p in
                     (XEON_MAX_9480, XEON_8360Y, EPYC_7V73X))

    (max_lo, max_hi), (icx_lo, _), (epyc_lo, epyc_hi) = benchmark.pedantic(
        peaks, rounds=1, iterations=1
    )
    assert max_lo / 1e12 == pytest.approx(13.6, rel=0.01)
    assert max_hi / 1e12 == pytest.approx(18.6, rel=0.01)
    assert icx_lo / 1e12 == pytest.approx(11.0, rel=0.01)
    assert epyc_lo / 1e12 == pytest.approx(8.45, rel=0.01)
    assert epyc_hi / 1e12 == pytest.approx(13.45, rel=0.01)


def test_sec2_flop_byte_balance(benchmark):
    """'significantly reduced on the MAX to 9.4, compared to 36 on the
    8360Y and 28 on the EPYC'."""
    ratios = benchmark.pedantic(
        lambda: tuple(p.flop_byte_ratio(4) for p in
                      (XEON_MAX_9480, XEON_8360Y, EPYC_7V73X)),
        rounds=1, iterations=1,
    )
    assert ratios[0] == pytest.approx(9.4, abs=0.3)
    assert ratios[1] == pytest.approx(36, abs=2.5)
    assert ratios[2] == pytest.approx(28, abs=1.5)
    assert ratios[0] < ratios[2] < ratios[1]


def test_sec2_compute_advantage_modest(benchmark):
    """'only 24% and 61% higher compared to Xeon 8360Y and EPYC'."""
    r = benchmark.pedantic(
        lambda: (XEON_MAX_9480.peak_flops(4) / XEON_8360Y.peak_flops(4),
                 XEON_MAX_9480.peak_flops(4) / EPYC_7V73X.peak_flops(4)),
        rounds=1, iterations=1,
    )
    assert r[0] == pytest.approx(1.24, abs=0.03)
    assert r[1] == pytest.approx(1.61, abs=0.03)
