"""Figure 5: relative speedup of parallelizations vs pure MPI on the MAX."""

import numpy as np
import pytest


def _col(f5, name):
    i = f5.columns.index(name)
    return {r[0]: r[i] for r in f5.rows}


def test_fig5_generation(benchmark, fig):
    f5 = benchmark.pedantic(lambda: fig("fig5"), rounds=1, iterations=1)
    assert len(f5.rows) == 8  # all OPS/OP2 apps


def test_fig5_mpi_vec_speedup_on_unstructured(fig):
    """'the MPI version auto-vectorizes, significantly outperforming
    (1.6-1.8x) MPI+OpenMP'."""
    f5 = fig("fig5")
    vec = _col(f5, "MPI vec")
    omp = _col(f5, "MPI+OpenMP")
    for app in ("mgcfd", "volna"):
        assert vec[app] / omp[app] > 1.25, app


def test_fig5_openmp_competitive_on_structured(fig):
    """MPI+OpenMP performs best or within a few % on structured apps."""
    f5 = fig("fig5")
    omp = _col(f5, "MPI+OpenMP")
    structured = ["cloverleaf2d", "cloverleaf3d", "opensbli_sa",
                  "opensbli_sn", "acoustic", "miniweather"]
    assert np.mean([omp[a] for a in structured]) > 0.93
    assert sum(omp[a] >= 0.99 for a in structured) >= 3


def test_fig5_sycl_behind_openmp_everywhere(fig):
    f5 = fig("fig5")
    omp = _col(f5, "MPI+OpenMP")
    sycl = _col(f5, "MPI+SYCL flat")
    for app, v in sycl.items():
        if v is None or app in ("mgcfd", "volna"):
            continue  # unstructured SYCL competes with non-vec OpenMP
        assert v < omp[app], app


def test_fig5_sycl_worst_on_cloverleaf(fig):
    """'this is more pronounced on CloverLeaf 2D/3D due to the higher
    number of small boundary kernels' — CloverLeaf's SYCL gap vs OpenMP
    is among the largest of the structured apps."""
    f5 = fig("fig5")
    omp = _col(f5, "MPI+OpenMP")
    sycl = _col(f5, "MPI+SYCL flat")
    gaps = {
        a: omp[a] / sycl[a]
        for a in ("cloverleaf2d", "cloverleaf3d", "opensbli_sa", "opensbli_sn")
        if sycl[a]
    }
    worst_two = sorted(gaps, key=gaps.get, reverse=True)[:2]
    assert set(worst_two) & {"cloverleaf2d", "cloverleaf3d"}


def test_fig5_ndrange_slightly_behind_flat(fig):
    """One app-wide workgroup shape loses slightly to runtime-chosen
    per-kernel shapes (Sec. 5.1)."""
    f5 = fig("fig5")
    flat = _col(f5, "MPI+SYCL flat")
    ndr = _col(f5, "MPI+SYCL ndrange")
    for app in flat:
        if flat[app] and ndr[app]:
            assert ndr[app] < flat[app] <= ndr[app] * 1.1, app


class TestWorkgroupStudy:
    """Section 5.1's workgroup-shape experiment (the 160x4x4 finding)."""

    def test_exhaustive_search_reproduces_paper(self, benchmark):
        from repro.machine import XEON_MAX_9480
        from repro.perfmodel.workgroup import exhaustive_search, flat_heuristic

        domain = (160, 160, 160)  # one SNC4 rank of the 320^3 case
        best = benchmark.pedantic(
            lambda: exhaustive_search(domain, XEON_MAX_9480), rounds=1, iterations=1
        )
        flat = flat_heuristic(domain, XEON_MAX_9480)
        # Contiguous dimension matches the domain; others small; the
        # tuned shape beats 'flat' by the paper's ~2%.
        assert best.shape[-1] == 160
        assert all(s <= 16 for s in best.shape[:-1])
        assert 1.005 < flat.factor / best.factor < 1.08
