"""Figure 4: the unstructured-mesh configuration sweep vs the paper's table."""

import numpy as np
import pytest

from repro.harness.paperdata import FIG4_TABLE


def test_fig4_sweep(benchmark, fig):
    f4 = benchmark.pedantic(lambda: fig("fig4"), rounds=1, iterations=1)
    assert len(f4.rows) == 25  # the paper's 25 rows


def test_fig4_mpi_vec_rows_best(fig):
    """'MPI vec implementations ... perform the best' — the fastest row
    for each app is an MPI vec configuration."""
    f4 = fig("fig4")
    for col, app in ((1, "mgcfd"), (2, "volna")):
        best = min(f4.rows, key=lambda r: r[col])
        assert best[0].startswith("MPI vec"), (app, best[0])


def test_fig4_vec_advantage(fig):
    """'on average by 66% compared to others' — assert a clear average
    advantage of the vec rows."""
    f4 = fig("fig4")
    vec, other = [], []
    for row in f4.rows:
        vals = [v for v in row[1:3] if v is not None]
        (vec if row[0].startswith("MPI vec") else other).extend(vals)
    assert np.mean(other) / np.mean(vec) > 1.15


def test_fig4_ht_helps_unstructured(fig):
    """'Hyperthreading enabled also improves performance by 13% on
    average' for these apps."""
    f4 = fig("fig4")
    rows = f4.row_map()
    gains = []
    for lbl, row in rows.items():
        if "w/o HT" not in lbl:
            continue
        ht = rows.get(lbl.replace("w/o HT", "w/HT"))
        if ht is None:
            continue
        for c in (1, 2):
            if row[c] and ht[c]:
                gains.append(row[c] / ht[c])
    assert np.mean(gains) > 1.05  # HT on is faster on average


def test_fig4_rank_correlation_with_paper(fig):
    """The model's row ordering correlates with the paper's table."""
    from scipy.stats import spearmanr

    f4 = fig("fig4")
    for col, paper_idx in ((1, 0), (2, 1)):
        model, ref = [], []
        for row in f4.rows:
            pv = FIG4_TABLE.get(row[0], (None, None))[paper_idx]
            if pv is not None and row[col] is not None:
                model.append(row[col])
                ref.append(pv)
        rho, _ = spearmanr(model, ref)
        assert rho > 0.4, (col, rho)
