"""Figure 9: CloverLeaf 2D with cache-blocking tiling across platforms."""

import pytest

from repro.harness.paperdata import FIG9_TILING_SPEEDUP


def test_fig9_generation(benchmark, fig):
    f9 = benchmark.pedantic(lambda: fig("fig9"), rounds=1, iterations=1)
    assert len(f9.rows) == 4  # 3 CPUs + the A100 reference


def test_fig9_tiling_always_helps(fig):
    rows = fig("fig9").row_map()
    for p in ("max9480", "icx8360y", "epyc7v73x"):
        assert rows[p][3] > 1.2, p


def test_fig9_speedup_tracks_cache_ratio(fig):
    """'it correlates well with the difference between measured cache
    bandwidth and HBM/DDR4' — 1.84x @ 3.8x < 2.7x @ 6.3x < 4x @ 14x."""
    rows = fig("fig9").row_map()
    s = {p: rows[p][3] for p in ("max9480", "icx8360y", "epyc7v73x")}
    assert s["max9480"] < s["icx8360y"] < s["epyc7v73x"]


def test_fig9_speedups_near_paper(fig):
    rows = fig("fig9").row_map()
    for p, ref in FIG9_TILING_SPEEDUP.items():
        model = rows[p][3]
        assert ref * 0.55 < model < ref * 1.5, (p, model, ref)


def test_fig9_tiled_max_beats_a100(fig):
    """'at this point outperforming an A100 GPU by 1.5x'."""
    rows = fig("fig9").row_map()
    tiled_max = rows["max9480"][2]
    a100 = rows["a100 (untiled)"][1]
    assert a100 / tiled_max > 1.2
