"""Figure 8: achieved effective bandwidth as a fraction of STREAM."""

import pytest

from repro.harness.paperdata import FIG8_EFFICIENCY_MAX


def test_fig8_generation(benchmark, fig):
    f8 = benchmark.pedantic(lambda: fig("fig8"), rounds=1, iterations=1)
    assert len(f8.rows) == 6


def test_fig8_max_fractions_near_paper(fig):
    """CloverLeaf 2D ~75%, 3D/SA >65%-ish, SN ~53%, Acoustic ~41%."""
    rows = fig("fig8").row_map()
    for app, ref in FIG8_EFFICIENCY_MAX.items():
        model = rows[app][1]
        assert abs(model - ref) < 0.14, (app, model, ref)


def test_fig8_ordering_on_max(fig):
    """CloverLeaf 2D achieves the highest fraction, Acoustic the lowest —
    simple access patterns vs cache-hungry high-order stencils."""
    rows = fig("fig8").row_map()
    fr = {app: rows[app][1] for app in rows}
    assert max(fr, key=fr.get) in ("cloverleaf2d", "cloverleaf3d")
    assert fr["acoustic"] == min(fr[a] for a in FIG8_EFFICIENCY_MAX)


def test_fig8_ddr_platforms_more_efficient(fig):
    """'Xeon 8360Y achieves 75-85% of peak and EPYC 79-96% ... the
    bandwidth bottleneck on the MAX is significantly reduced'."""
    f8 = fig("fig8")
    for row in f8.rows:
        app, frac_max, _, frac_icx, frac_epyc = row
        assert frac_icx > frac_max, app
        assert frac_epyc > frac_max, app
        assert 0.6 < frac_icx <= 0.9, app
        assert 0.6 < frac_epyc <= 0.97, app


def test_fig8_sa_beats_sn_fraction(fig):
    """Data movement (SA) saturates bandwidth better than recompute (SN)."""
    rows = fig("fig8").row_map()
    assert rows["opensbli_sa"][1] > rows["opensbli_sn"][1]
