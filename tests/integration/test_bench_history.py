"""The perf-trajectory gate: bench history rows and the regression check."""

import importlib.util
import json
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent.parent


def load_script(name: str):
    spec = importlib.util.spec_from_file_location(
        name, REPO_ROOT / "scripts" / f"{name}.py")
    mod = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(mod)
    return mod


checker = load_script("check_bench_regression")


def rows(*metric_values, **extra):
    return [
        {"benchmark": "sweep", "host": "box", "jobs": 1,
         "cold_jobs_per_s": v, **extra}
        for v in metric_values
    ]


class TestChecker:
    def test_empty_history_passes(self):
        assert checker.check([], 0.2) == 0

    def test_first_row_becomes_baseline(self):
        assert checker.check(rows(3000.0), 0.2) == 0

    def test_within_tolerance_passes(self):
        assert checker.check(rows(3000.0, 2500.0), 0.2) == 0

    def test_regression_fails(self):
        assert checker.check(rows(3000.0, 2000.0), 0.2) == 1

    def test_compares_against_best_not_latest(self):
        # A slow middle row must not lower the bar.
        assert checker.check(rows(3000.0, 100.0, 2500.0), 0.2) == 0
        assert checker.check(rows(3000.0, 100.0, 2000.0), 0.2) == 1

    def test_hosts_are_not_compared(self):
        history = rows(3000.0) + [
            {"benchmark": "sweep", "host": "ci-runner", "jobs": 1,
             "cold_jobs_per_s": 50.0}
        ]
        assert checker.check(history, 0.2) == 0

    def test_shapes_are_not_compared(self):
        # --jobs 4 sweep vs serial sweep: different shape, no gate.
        history = rows(3000.0) + [
            {"benchmark": "sweep", "host": "box", "jobs": 4,
             "cold_jobs_per_s": 50.0}
        ]
        assert checker.check(history, 0.2) == 0

    def test_serve_rows_gate_on_warm_req_per_s(self):
        history = [
            {"benchmark": "serve", "host": "box", "quick": False,
             "workers": 4, "warm_req_per_s": 100.0},
            {"benchmark": "serve", "host": "box", "quick": False,
             "workers": 4, "warm_req_per_s": 70.0},
        ]
        assert checker.check(history, 0.2) == 1
        history[-1]["warm_req_per_s"] = 90.0
        assert checker.check(history, 0.2) == 0

    def test_malformed_lines_are_skipped(self, tmp_path):
        path = tmp_path / "history.jsonl"
        path.write_text(
            json.dumps(rows(3000.0)[0]) + "\n{oops\n\n"
            + json.dumps(rows(2900.0)[0]) + "\n")
        assert checker.check(checker.read_history(path), 0.2) == 0

    def test_missing_file_is_empty(self, tmp_path):
        assert checker.read_history(tmp_path / "absent.jsonl") == []


class TestAppendHistory:
    def test_bench_scripts_share_the_append_shape(self, tmp_path):
        bench_sweep = load_script("bench_sweep")
        bench_serve = load_script("bench_serve")
        path = tmp_path / "deep" / "history.jsonl"
        bench_sweep.append_history(path, {"benchmark": "sweep", "b": 1})
        bench_serve.append_history(path, {"benchmark": "serve", "a": 2})
        got = checker.read_history(path)
        assert [r["benchmark"] for r in got] == ["sweep", "serve"]
        assert bench_sweep.DEFAULT_HISTORY == bench_serve.DEFAULT_HISTORY \
            == checker.DEFAULT_HISTORY

    def test_committed_history_parses_and_passes(self):
        history = checker.read_history(checker.DEFAULT_HISTORY)
        assert history, "baselines/bench_history.jsonl must be seeded"
        assert {r["benchmark"] for r in history} >= {"sweep", "serve"}
        assert checker.check(history, 0.2) == 0
