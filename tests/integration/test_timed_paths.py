"""Cross-validation of the two MPI-time paths.

The library measures MPI time two ways: (a) the *simulated-MPI* path —
the app actually runs distributed, ranks advance virtual clocks and
accumulate MPI-wait time through the message cost model; (b) the
*analytic* path — `perfmodel.commmodel` prices the decomposition's
messages directly (what the figure harness uses at paper scale).  On the
same small problem the two must agree on the qualitative split.
"""

import numpy as np
import pytest

from repro.apps.cloverleaf import run_cloverleaf
from repro.apps.volna import run_volna, synthetic_ocean
from repro.machine import XEON_MAX_9480, Compiler, Parallelization, RunConfig
from repro.op2 import DistOp2Context, Op2Context
from repro.ops import OpsContext, TimingModel
from repro.perfmodel import AppClass
from repro.simmpi import CartGrid, MachineCostModel, World, default_placement

CFG = RunConfig(Compiler.ONEAPI, Parallelization.MPI)


class TestStructuredTimedPath:
    @pytest.fixture(scope="class")
    def timed_run(self):
        nranks = 4
        platform = XEON_MAX_9480

        def program(comm):
            ctx = OpsContext(
                comm=comm, grid=CartGrid((2, 2)),
                timing=TimingModel(platform, CFG),
            )
            run_cloverleaf(ctx, (24, 24), 3, init="sod")
            return comm.clock.compute_time, comm.clock.mpi_time

        cm = MachineCostModel(
            platform, default_placement(platform, nranks), sharing_ranks=nranks
        )
        world = World(nranks, cm)
        results = world.run(program)
        return world, results

    def test_all_ranks_advance_both_clocks(self, timed_run):
        _, results = timed_run
        for comp, mpi in results:
            assert comp > 0.0
            assert mpi > 0.0

    def test_message_costs_raise_mpi_fraction(self, timed_run):
        """The same run under a zero-cost message model only accumulates
        imbalance waits; real message costs must raise the fraction."""
        from repro.simmpi import ZeroCostModel

        world_priced, _ = timed_run
        platform = XEON_MAX_9480

        def program(comm):
            ctx = OpsContext(
                comm=comm, grid=CartGrid((2, 2)),
                timing=TimingModel(platform, CFG),
            )
            run_cloverleaf(ctx, (24, 24), 3, init="sod")
            return None

        world_free = World(4, ZeroCostModel())
        world_free.run(program)
        assert world_priced.mpi_fraction() > world_free.mpi_fraction()
        assert 0.0 < world_priced.mpi_fraction() < 1.0

    def test_clocks_roughly_balanced(self, timed_run):
        world, _ = timed_run
        now = [c.now for c in world.clocks]
        assert max(now) / min(now) < 1.5


class TestUnstructuredTimedPath:
    def test_distributed_op2_with_timing(self):
        platform = XEON_MAX_9480
        mesh = synthetic_ocean(8, 4)

        def program(comm):
            ctx = DistOp2Context(
                comm,
                timing=TimingModel(platform, CFG, klass=AppClass.UNSTRUCTURED,
                                   dtype_bytes=4),
            )
            run_volna(ctx, (16, 4), 3, mesh=mesh)
            return comm.clock.compute_time, comm.clock.mpi_time

        cm = MachineCostModel(platform, default_placement(platform, 2),
                              sharing_ranks=2)
        results = World(2, cm).run(program)
        for comp, mpi in results:
            assert comp > 0.0
            assert mpi > 0.0

    def test_serial_op2_timing_accumulates(self):
        ctx = Op2Context(timing=TimingModel(XEON_MAX_9480, CFG,
                                            klass=AppClass.UNSTRUCTURED,
                                            dtype_bytes=4))
        run_volna(ctx, (12, 4), 2)
        assert ctx.simulated_time > 0.0
