"""Unit and property-based tests for the set-associative cache simulator."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mem.cache import Cache, CacheHierarchy


class TestCacheBasics:
    def test_geometry(self):
        c = Cache(capacity=8192, line_size=64, associativity=4)
        assert c.num_sets == 32

    def test_rejects_bad_geometry(self):
        with pytest.raises(ValueError):
            Cache(capacity=1000, line_size=64, associativity=4)
        with pytest.raises(ValueError):
            Cache(capacity=0)

    def test_cold_miss_then_hit(self):
        c = Cache(4096)
        assert c.access(0) is False
        assert c.access(0) is True
        assert c.access(63) is True  # same line
        assert c.access(64) is False  # next line

    def test_stats_consistency(self):
        c = Cache(4096)
        for a in range(0, 1024, 64):
            c.access(a)
        assert c.stats.accesses == c.stats.hits + c.stats.misses
        assert c.stats.misses == 16

    def test_lru_eviction_order(self):
        # Direct-ish cache: 1 set with 2 ways.
        c = Cache(capacity=128, line_size=64, associativity=2)
        c.access(0)  # line 0
        c.access(64)  # line 1
        c.access(128)  # line 2 -> evicts line 0 (LRU)
        assert not c.contains(0)
        assert c.contains(64)
        assert c.contains(128)

    def test_lru_touch_refreshes(self):
        c = Cache(capacity=128, line_size=64, associativity=2)
        c.access(0)
        c.access(64)
        c.access(0)  # refresh line 0; line 1 is now LRU
        c.access(128)
        assert c.contains(0)
        assert not c.contains(64)

    def test_writeback_counted(self):
        c = Cache(capacity=128, line_size=64, associativity=1)
        c.access(0, write=True)
        c.access(64)  # maps to a different set; no eviction
        c.access(128)  # same set as line 0 -> evicts dirty line
        assert c.stats.writebacks == 1

    def test_flush_reports_dirty_lines(self):
        c = Cache(4096)
        c.access(0, write=True)
        c.access(64, write=False)
        assert c.flush() == 1
        assert c.resident_lines() == 0

    def test_no_write_allocate(self):
        c = Cache(4096, write_allocate=False)
        c.access(0, write=True)
        assert not c.contains(0)

    def test_access_range_counts_all_lines(self):
        c = Cache(1 << 20)
        misses = c.access_range(0, 640)
        assert misses == 10

    def test_access_range_empty(self):
        c = Cache(4096)
        assert c.access_range(0, 0) == 0

    def test_access_array(self):
        c = Cache(1 << 20)
        assert c.access_array(np.arange(10)) == 10
        assert c.access_array(np.arange(10)) == 0


class TestStreamingBehaviour:
    def test_working_set_within_capacity_all_hits_second_pass(self):
        c = Cache(capacity=64 * 1024, associativity=8)
        n_lines = 512  # 32 KiB < capacity
        for line in range(n_lines):
            c.access_line(line)
        c.stats.reset()
        for line in range(n_lines):
            c.access_line(line)
        assert c.stats.hit_rate == 1.0

    def test_working_set_beyond_capacity_cyclic_thrash(self):
        """LRU + cyclic sweep over > capacity yields zero reuse."""
        c = Cache(capacity=4096, line_size=64, associativity=64)  # fully assoc, 64 lines
        n_lines = 65
        for _ in range(3):
            for line in range(n_lines):
                c.access_line(line)
        # After warmup, every access still misses.
        c.stats.reset()
        for line in range(n_lines):
            c.access_line(line)
        assert c.stats.hit_rate == 0.0


class TestHierarchy:
    def test_requires_consistent_line_size(self):
        with pytest.raises(ValueError):
            CacheHierarchy([Cache(4096, line_size=64), Cache(8192, line_size=128)])

    def test_requires_levels(self):
        with pytest.raises(ValueError):
            CacheHierarchy([])

    def test_fill_path(self):
        h = CacheHierarchy([Cache(4096), Cache(65536)])
        assert h.access(0) == 2  # memory
        assert h.access(0) == 0  # L1 now
        assert h.memory_lines == 1

    def test_l2_hit_fills_l1(self):
        l1 = Cache(capacity=128, line_size=64, associativity=1)
        l2 = Cache(capacity=65536)
        h = CacheHierarchy([l1, l2])
        h.access(0)
        h.access(128)  # evicts line 0 from tiny L1, still in L2
        assert h.access(0) == 1  # L2 hit
        assert l1.contains(0)  # refilled

    def test_memory_traffic_bytes(self):
        h = CacheHierarchy([Cache(1 << 20)])
        h.access_range(0, 64 * 100)
        assert h.memory_traffic_bytes == 64 * 100

    def test_reset(self):
        h = CacheHierarchy([Cache(4096)])
        h.access(0)
        h.reset()
        assert h.memory_lines == 0
        assert h.access(0) == 1  # cold again


class TestCacheProperties:
    @given(
        addrs=st.lists(st.integers(min_value=0, max_value=1 << 20), min_size=1, max_size=300),
        assoc=st.sampled_from([1, 2, 4, 8]),
    )
    @settings(max_examples=50, deadline=None)
    def test_resident_never_exceeds_capacity(self, addrs, assoc):
        c = Cache(capacity=64 * 64 * assoc, line_size=64, associativity=assoc)
        for a in addrs:
            c.access(a)
        assert c.resident_lines() <= c.capacity // c.line_size

    @given(addrs=st.lists(st.integers(min_value=0, max_value=1 << 16), min_size=1, max_size=200))
    @settings(max_examples=50, deadline=None)
    def test_immediate_rereference_always_hits(self, addrs):
        c = Cache(capacity=8192)
        for a in addrs:
            c.access(a)
            assert c.access(a) is True

    @given(addrs=st.lists(st.integers(min_value=0, max_value=1 << 18), min_size=1, max_size=200))
    @settings(max_examples=50, deadline=None)
    def test_stats_balance(self, addrs):
        c = Cache(capacity=4096, associativity=2)
        for a in addrs:
            c.access(a, write=(a % 3 == 0))
        assert c.stats.accesses == len(addrs)
        assert c.stats.hits + c.stats.misses == c.stats.accesses
        assert c.stats.evictions <= c.stats.misses

    @given(
        addrs=st.lists(st.integers(min_value=0, max_value=1 << 18), min_size=1, max_size=150),
        cap_small=st.sampled_from([1024, 2048]),
    )
    @settings(max_examples=50, deadline=None)
    def test_bigger_cache_never_more_misses(self, addrs, cap_small):
        """Miss count is monotone non-increasing in capacity for LRU
        (the stack property), at fixed associativity = full."""
        small = Cache(cap_small, line_size=64, associativity=cap_small // 64)
        big = Cache(cap_small * 4, line_size=64, associativity=cap_small * 4 // 64)
        for a in addrs:
            small.access(a)
            big.access(a)
        assert big.stats.misses <= small.stats.misses
