"""Per-level registry counters emitted by the cache simulator."""

from repro.machine.spec import CacheLevel
from repro.mem.cache import Cache, CacheHierarchy
from repro.obs.metrics import collecting


def _hierarchy():
    # Two tiny levels with known geometry: 4 lines of L1, 16 of L2.
    return CacheHierarchy([
        Cache(capacity=256, line_size=64, associativity=4, name="L1"),
        Cache(capacity=1024, line_size=64, associativity=4, name="L2"),
    ])


class TestKnownAccessPattern:
    def test_per_level_hits_and_misses(self):
        h = _hierarchy()
        with collecting() as reg:
            # First sweep over 8 lines: both levels miss every line.
            for line in range(8):
                h.access(line * 64)
            # Second sweep: 8 lines exceed L1 (4 lines, cyclic LRU
            # eviction -> zero L1 reuse) but fit L2 entirely.
            for line in range(8):
                h.access(line * 64)
        # L1: 16 demand accesses, all misses, plus 8 inclusive-fill
        # accesses on the way back from the second sweep's L2 hits —
        # those hit, because the demand miss itself allocated the line.
        assert reg.value("mem_cache_accesses_total", level="L1") == 24
        assert reg.value("mem_cache_misses_total", level="L1") == 16
        assert reg.value("mem_cache_hits_total", level="L1") == 8
        # L2 sees only L1 misses: 8 cold misses, then 8 hits.
        assert reg.value("mem_cache_accesses_total", level="L2") == 16
        assert reg.value("mem_cache_misses_total", level="L2") == 8
        assert reg.value("mem_cache_hits_total", level="L2") == 8
        # Memory traffic: the 8 cold lines, once.
        assert reg.value("mem_cache_memory_bytes_total") == 8 * 64
        assert h.memory_traffic_bytes == 8 * 64

    def test_registry_matches_simulator_stats(self):
        h = _hierarchy()
        with collecting() as reg:
            for line in (0, 1, 0, 2, 0, 5, 9, 1):
                h.access(line * 64)
        for lvl in h.levels:
            assert reg.value("mem_cache_hits_total",
                             level=lvl.name) == lvl.stats.hits
            assert reg.value("mem_cache_misses_total",
                             level=lvl.name) == lvl.stats.misses

    def test_fill_eviction_and_writeback_bytes(self):
        c = Cache(capacity=128, line_size=64, associativity=1, name="L1")
        with collecting() as reg:
            c.access(0, write=True)  # miss, fill, dirty
            c.access(128)  # same set -> evicts dirty line 0
        assert reg.value("mem_cache_fill_bytes_total", level="L1") == 2 * 64
        assert reg.value("mem_cache_evictions_total", level="L1") == 1
        assert reg.value("mem_cache_writeback_bytes_total", level="L1") == 64

    def test_non_allocating_write_miss_does_not_fill(self):
        c = Cache(capacity=256, line_size=64, associativity=4,
                  write_allocate=False, name="L1")
        with collecting() as reg:
            c.access(0, write=True)  # miss, no allocation
        assert reg.value("mem_cache_misses_total", level="L1") == 1
        assert reg.value("mem_cache_fill_bytes_total", level="L1") == 0

    def test_flush_counts_dirty_writeback_bytes(self):
        c = Cache(capacity=256, line_size=64, associativity=4, name="L1")
        with collecting() as reg:
            c.access(0, write=True)
            c.access(64, write=True)
            c.access(128)  # clean
            assert c.flush() == 2
        assert reg.value("mem_cache_writeback_bytes_total", level="L1") == 2 * 64

    def test_level_name_comes_from_cache_level(self):
        lvl = CacheLevel(name="L3", capacity=4096, bandwidth=1e9,
                         latency=1e-8, scope="socket")
        c = Cache.from_level(lvl)
        with collecting() as reg:
            c.access(0)
        assert reg.value("mem_cache_accesses_total", level="L3") == 1

    def test_simulator_results_unchanged_without_registry(self):
        pattern = [0, 1, 2, 0, 7, 1, 3, 0]
        plain = _hierarchy()
        for line in pattern:
            plain.access(line * 64)
        metered = _hierarchy()
        with collecting():
            for line in pattern:
                metered.access(line * 64)
        for a, b in zip(plain.levels, metered.levels):
            assert (a.stats.hits, a.stats.misses) == (b.stats.hits, b.stats.misses)
        assert plain.memory_lines == metered.memory_lines
