"""Tests for the achievable-bandwidth model behind Figure 1."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.machine import ALL_PLATFORMS, EPYC_7V73X, XEON_8360Y, XEON_MAX_9480
from repro.mem import HierarchyModel, Scope


class TestScopes:
    def test_node_memory_bandwidth_matches_spec(self):
        hm = HierarchyModel(XEON_MAX_9480)
        assert hm.memory_bandwidth(Scope.NODE) == pytest.approx(
            XEON_MAX_9480.stream_bandwidth
        )

    def test_socket_is_half_node(self):
        hm = HierarchyModel(XEON_MAX_9480)
        assert hm.memory_bandwidth(Scope.SOCKET) == pytest.approx(
            hm.memory_bandwidth(Scope.NODE) / 2
        )

    def test_numa_is_eighth_of_node_on_snc4(self):
        hm = HierarchyModel(XEON_MAX_9480)
        assert hm.memory_bandwidth(Scope.NUMA) == pytest.approx(
            hm.memory_bandwidth(Scope.NODE) / 8
        )

    def test_tuned_only_helps_where_spec_says(self):
        hm_max = HierarchyModel(XEON_MAX_9480)
        hm_icx = HierarchyModel(XEON_8360Y)
        assert hm_max.memory_bandwidth(Scope.NODE, tuned=True) > hm_max.memory_bandwidth(
            Scope.NODE
        )
        assert hm_icx.memory_bandwidth(Scope.NODE, tuned=True) == pytest.approx(
            hm_icx.memory_bandwidth(Scope.NODE)
        )


class TestEffectiveBandwidth:
    def test_large_working_set_hits_memory_plateau(self):
        hm = HierarchyModel(XEON_MAX_9480)
        bw = hm.effective_bandwidth(8 * 2**30)
        assert bw == pytest.approx(XEON_MAX_9480.stream_bandwidth)

    def test_cache_resident_faster_than_memory(self):
        hm = HierarchyModel(XEON_MAX_9480)
        small = hm.effective_bandwidth(32 * 2**20)  # fits aggregate L2
        large = hm.effective_bandwidth(8 * 2**30)
        assert small > 3 * large

    def test_cache_plateau_capped_by_core_throughput(self):
        hm = HierarchyModel(XEON_MAX_9480)
        bw = hm.effective_bandwidth(16 * 2**20)
        assert bw <= hm.core_throughput_ceiling(Scope.NODE) + 1e-6

    def test_monotone_nonincreasing_in_working_set(self):
        hm = HierarchyModel(XEON_8360Y)
        sizes = np.logspace(4, 10.5, 60)
        bws = [hm.effective_bandwidth(s) for s in sizes]
        assert all(a >= b - 1e-6 for a, b in zip(bws, bws[1:]))

    def test_rejects_nonpositive_working_set(self):
        with pytest.raises(ValueError):
            HierarchyModel(XEON_MAX_9480).effective_bandwidth(0)


class TestPaperRatios:
    def test_cache_to_memory_ratios(self):
        """Figure 1 / Figure 9: 3.8x on MAX 9480, ~6.3x on 8360Y, ~14x on
        the V-Cache EPYC."""
        assert HierarchyModel(XEON_MAX_9480).cache_to_memory_ratio() == pytest.approx(3.8, abs=0.15)
        assert HierarchyModel(XEON_8360Y).cache_to_memory_ratio() == pytest.approx(6.3, abs=0.3)
        assert HierarchyModel(EPYC_7V73X).cache_to_memory_ratio() == pytest.approx(14.0, abs=0.7)

    def test_max9480_ratio_is_lowest(self):
        """The paper's key observation: the cache advantage is smallest on
        the HBM platform, so tiling helps it least (Fig. 9)."""
        ratios = {p.short_name: HierarchyModel(p).cache_to_memory_ratio()
                  for p in (XEON_MAX_9480, XEON_8360Y, EPYC_7V73X)}
        assert ratios["max9480"] < ratios["icx8360y"] < ratios["epyc7v73x"]


class TestMeasuredBandwidth:
    def test_launch_overhead_suppresses_tiny_sizes(self):
        hm = HierarchyModel(XEON_MAX_9480)
        tiny = hm.measured_bandwidth(3 * 1024 * 8)
        big = hm.measured_bandwidth(3 * 2**22 * 8)
        assert tiny < 0.2 * big

    def test_measured_below_effective(self):
        hm = HierarchyModel(XEON_MAX_9480)
        ws = 3 * 2**20 * 8.0
        assert hm.measured_bandwidth(ws) < hm.effective_bandwidth(ws)

    def test_bandwidth_curve_points(self):
        hm = HierarchyModel(XEON_8360Y)
        pts = hm.bandwidth_curve(2 ** np.arange(16, 30))
        assert len(pts) == 14
        assert pts[-1].bandwidth == pytest.approx(XEON_8360Y.stream_bandwidth, rel=0.05)


class TestTimeToMove:
    def test_simple_ratio(self):
        hm = HierarchyModel(XEON_MAX_9480)
        nbytes = 1e9
        t = hm.time_to_move(nbytes)
        assert t == pytest.approx(nbytes / XEON_MAX_9480.stream_bandwidth)

    def test_cached_working_set_moves_faster(self):
        hm = HierarchyModel(XEON_MAX_9480)
        nbytes = 1e9
        t_mem = hm.time_to_move(nbytes)
        t_cache = hm.time_to_move(nbytes, working_set=16 * 2**20)
        assert t_cache < t_mem / 3

    @given(nbytes=st.floats(min_value=1e3, max_value=1e12))
    @settings(max_examples=30, deadline=None)
    def test_time_positive_and_linear(self, nbytes):
        hm = HierarchyModel(XEON_8360Y)
        t1 = hm.time_to_move(nbytes)
        t2 = hm.time_to_move(2 * nbytes, working_set=2 * nbytes)
        assert t1 > 0
        # Doubling bytes at least doubles.. or keeps time equal-rate:
        assert t2 >= t1


@pytest.mark.parametrize("platform", ALL_PLATFORMS, ids=lambda p: p.short_name)
def test_aggregate_levels_monotone_capacity(platform):
    """Aggregated level capacities must ascend so the resident-level
    search is well-defined."""
    hm = HierarchyModel(platform)
    for scope in Scope:
        caps = [c for c, _ in hm.aggregate_levels(scope)]
        assert caps == sorted(caps)
