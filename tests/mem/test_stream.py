"""Tests for the BabelStream kernels and the Figure 1 Triad sweep."""

import numpy as np
import pytest

from repro.machine import EPYC_7V73X, XEON_8360Y, XEON_MAX_9480
from repro.mem import Scope, StreamArrays, plateau_bandwidth, triad_bytes, triad_sweep
from repro.mem.stream import STREAM_SCALAR, add, copy, dot, mul, triad


@pytest.fixture
def arrays():
    return StreamArrays.allocate(1000)


class TestKernels:
    """The kernels are real computations; verify them exactly."""

    def test_initial_values(self, arrays):
        assert np.all(arrays.a == 0.1)
        assert np.all(arrays.b == 0.2)
        assert np.all(arrays.c == 0.0)

    def test_copy(self, arrays):
        copy(arrays)
        np.testing.assert_array_equal(arrays.c, arrays.a)

    def test_mul(self, arrays):
        arrays.c[:] = 0.5
        mul(arrays)
        np.testing.assert_allclose(arrays.b, STREAM_SCALAR * 0.5)

    def test_add(self, arrays):
        add(arrays)
        np.testing.assert_allclose(arrays.c, 0.1 + 0.2)

    def test_triad(self, arrays):
        arrays.c[:] = 1.0
        triad(arrays)
        np.testing.assert_allclose(arrays.a, 0.2 + STREAM_SCALAR * 1.0)

    def test_dot(self, arrays):
        assert dot(arrays) == pytest.approx(1000 * 0.1 * 0.2)

    def test_full_stream_sequence(self):
        """Run the canonical copy->mul->add->triad->dot sequence and check
        the closed-form expected values, as BabelStream's verification does."""
        s = StreamArrays.allocate(4096)
        a, b, c = 0.1, 0.2, 0.0
        for _ in range(5):
            copy(s); c = a
            mul(s); b = STREAM_SCALAR * c
            add(s); c = a + b
            triad(s); a = b + STREAM_SCALAR * c
        np.testing.assert_allclose(s.a, a)
        np.testing.assert_allclose(s.b, b)
        np.testing.assert_allclose(s.c, c)

    def test_allocate_rejects_bad_length(self):
        with pytest.raises(ValueError):
            StreamArrays.allocate(0)

    def test_nbytes(self):
        s = StreamArrays.allocate(100, dtype=np.float32)
        assert s.nbytes == 3 * 100 * 4


class TestTriadBytes:
    def test_triad_traffic(self):
        assert triad_bytes(1000, 8) == 24000


class TestFigure1:
    def test_plateaus_match_paper(self):
        # 1446 / 1643 / 296 / 310 GB/s
        assert plateau_bandwidth(XEON_MAX_9480) / 1e9 == pytest.approx(1446, rel=0.01)
        assert plateau_bandwidth(XEON_MAX_9480, tuned=True) / 1e9 == pytest.approx(1643, rel=0.01)
        assert plateau_bandwidth(XEON_8360Y) / 1e9 == pytest.approx(296, rel=0.01)
        assert plateau_bandwidth(EPYC_7V73X) / 1e9 == pytest.approx(310, rel=0.01)

    def test_max_speedup_over_previous_gen(self):
        # "1446 GB/s, a 4.8x increase over the Xeon Platinum 8360Y" and
        # "the latter [1643] a 5.5x increase"
        ratio_plain = plateau_bandwidth(XEON_MAX_9480) / plateau_bandwidth(XEON_8360Y)
        ratio_tuned = plateau_bandwidth(XEON_MAX_9480, tuned=True) / plateau_bandwidth(XEON_8360Y)
        assert ratio_plain == pytest.approx(4.8, abs=0.15)
        assert ratio_tuned == pytest.approx(5.5, abs=0.15)

    def test_sweep_has_cache_hump_and_plateau(self):
        res = triad_sweep(XEON_MAX_9480, sizes=2 ** np.arange(14, 28))
        bws = [r.bandwidth for r in res]
        peak = max(bws)
        # Hump: the peak (cache region) exceeds both ends.
        assert peak > bws[0] * 2
        assert peak > bws[-1] * 2
        # Large-size plateau near the STREAM figure.
        assert bws[-1] == pytest.approx(XEON_MAX_9480.stream_bandwidth, rel=0.05)

    def test_sweep_scopes_ordered(self):
        sizes = np.array([2**26])
        node = triad_sweep(XEON_MAX_9480, sizes, Scope.NODE)[0].bandwidth
        sock = triad_sweep(XEON_MAX_9480, sizes, Scope.SOCKET)[0].bandwidth
        numa = triad_sweep(XEON_MAX_9480, sizes, Scope.NUMA)[0].bandwidth
        assert numa < sock < node

    def test_sweep_default_sizes(self):
        res = triad_sweep(XEON_8360Y)
        assert len(res) == 14
        assert all(r.platform == "icx8360y" for r in res)

    def test_gbs_property(self):
        res = triad_sweep(XEON_8360Y, sizes=np.array([2**20]))[0]
        assert res.gbs == pytest.approx(res.bandwidth / 1e9)
