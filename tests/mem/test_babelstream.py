"""Tests for the full BabelStream suite."""

import numpy as np
import pytest

from repro.machine import XEON_8360Y, XEON_MAX_9480
from repro.mem import Scope
from repro.mem.babelstream import KERNEL_BYTES, BabelStream, KernelResult


class TestSuite:
    @pytest.fixture(scope="class")
    def results(self):
        suite = BabelStream(n=2**14)
        return suite, suite.run(repetitions=3)

    def test_all_five_kernels(self, results):
        _, res = results
        assert set(res) == {"copy", "mul", "add", "triad", "dot"}

    def test_verification_passed_implicitly(self, results):
        """run() raises on verification failure; reaching here means the
        closed-form check held after 3 repetitions."""
        suite, _ = results
        assert np.all(np.isfinite(suite.arrays.a))

    def test_timings_positive(self, results):
        _, res = results
        for r in res.values():
            assert r.best_time > 0
            assert r.mean_time >= r.best_time
            assert r.best_bandwidth > 0

    def test_byte_counts(self, results):
        suite, res = results
        assert res["copy"].nbytes == 2 * suite.n * 8
        assert res["triad"].nbytes == 3 * suite.n * 8

    def test_verification_catches_corruption(self):
        suite = BabelStream(n=1024)
        suite.run(repetitions=2)
        suite.arrays.a[5] += 1.0
        with pytest.raises(AssertionError, match="verification"):
            suite.verify(2, float(np.dot(suite.arrays.a, suite.arrays.b)))

    def test_validation(self):
        with pytest.raises(ValueError):
            BabelStream(n=1)
        with pytest.raises(ValueError):
            BabelStream(n=64).run(repetitions=0)


class TestModeled:
    def test_triad_matches_figure1_plateau(self):
        suite = BabelStream(n=2**27)
        bw = suite.modeled_bandwidth(XEON_MAX_9480)
        assert bw / 1e9 == pytest.approx(1446, rel=0.02)

    def test_tuned_flag(self):
        suite = BabelStream(n=2**27)
        assert suite.modeled_bandwidth(XEON_MAX_9480, tuned=True) > suite.modeled_bandwidth(
            XEON_MAX_9480
        )

    def test_scope(self):
        suite = BabelStream(n=2**27)
        assert suite.modeled_bandwidth(XEON_MAX_9480, scope=Scope.NUMA) < \
            suite.modeled_bandwidth(XEON_MAX_9480)

    def test_unknown_kernel(self):
        with pytest.raises(KeyError):
            BabelStream(n=64).modeled_bandwidth(XEON_8360Y, kernel="nstream")

    def test_report_renders(self):
        suite = BabelStream(n=2**12)
        res = suite.run(repetitions=2)
        text = suite.report(res, XEON_MAX_9480)
        assert "triad" in text and "max9480" in text
