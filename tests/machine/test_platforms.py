"""The platform models must reproduce the paper's Section 2 figures."""

import pytest

from repro.machine import (
    A100_40GB,
    ALL_PLATFORMS,
    CPU_PLATFORMS,
    EPYC_7V73X,
    XEON_8360Y,
    XEON_MAX_9480,
    DeviceKind,
    get_platform,
)


class TestPaperSection2Numbers:
    """Every assertion here cites a number printed in the paper."""

    def test_max9480_core_count(self):
        # "Two sockets, each with 56 cores, Hyperthreading on"
        assert XEON_MAX_9480.sockets == 2
        assert XEON_MAX_9480.cores_per_socket == 56
        assert XEON_MAX_9480.smt == 2

    def test_max9480_numa_layout(self):
        # "2x4 NUMA regions ... with SNC4"
        assert XEON_MAX_9480.total_numa_domains == 8

    def test_max9480_peak_fp32(self):
        # "theoretical 13.6-18.6 FP32 TFLOPS/s"
        lo, hi = XEON_MAX_9480.peak_flops_range(4)
        assert lo / 1e12 == pytest.approx(13.6, rel=0.01)
        assert hi / 1e12 == pytest.approx(18.6, rel=0.01)

    def test_max9480_peak_bandwidth(self):
        # "on Intel Xeon CPU MAX Series this is around 2x1300 GB/s"
        assert XEON_MAX_9480.peak_bandwidth / 1e9 == pytest.approx(2600, rel=0.01)

    def test_max9480_stream_plateaus(self):
        # "The former achieves 1446 GB/s ... the latter 1643 GB/s"
        assert XEON_MAX_9480.stream_bandwidth / 1e9 == pytest.approx(1446, rel=0.005)
        assert XEON_MAX_9480.stream_bandwidth_tuned / 1e9 == pytest.approx(1643, rel=0.005)

    def test_max9480_stream_efficiency_range(self):
        # "only 55%/63% of peak is reached"
        assert XEON_MAX_9480.memory.stream_efficiency == pytest.approx(0.55, abs=0.01)
        assert XEON_MAX_9480.memory.stream_efficiency_tuned == pytest.approx(0.63, abs=0.01)

    def test_8360y_core_count_and_clocks(self):
        # "Two sockets, each with 36 cores ... 2.4 (base) - 2.8 (turbo)"
        assert XEON_8360Y.total_cores == 72
        assert XEON_8360Y.base_freq == pytest.approx(2.4e9)
        assert XEON_8360Y.turbo_freq == pytest.approx(2.8e9)

    def test_8360y_peak_fp32(self):
        # "theoretical 11-13 FP32 TFLOPS/s"
        lo, hi = XEON_8360Y.peak_flops_range(4)
        assert lo / 1e12 == pytest.approx(11.0, rel=0.01)
        assert hi / 1e12 == pytest.approx(12.9, rel=0.01)

    def test_8360y_stream(self):
        # "the Xeon Platinum 8360Y and the EPYC 7V73X achieve close to 75%
        #  of peak at 296 GB/s and 310 GB/s respectively"
        assert XEON_8360Y.stream_bandwidth / 1e9 == pytest.approx(296, rel=0.005)
        assert EPYC_7V73X.stream_bandwidth / 1e9 == pytest.approx(310, rel=0.005)

    def test_epyc_core_count_no_smt(self):
        # "Two sockets, each with 60 available cores, Hyperthreading off"
        assert EPYC_7V73X.total_cores == 120
        assert EPYC_7V73X.smt == 1

    def test_epyc_peak_fp32(self):
        # "theoretical 8.45-13.45 FP32 TFLOPS/s"
        lo, hi = EPYC_7V73X.peak_flops_range(4)
        assert lo / 1e12 == pytest.approx(8.45, rel=0.01)
        assert hi / 1e12 == pytest.approx(13.45, rel=0.01)

    def test_epyc_avx2_only(self):
        # "EPYC 7V73X only has 256-bit AVX2" (Sec. 6)
        assert EPYC_7V73X.isa.width_bits == 256

    def test_flop_byte_ratios(self):
        # "significantly reduced on the Intel Xeon CPU MAX 9480 Processor
        #  to 9.4, compared to 36 on the Xeon Platinum 8360Y and 28 on the
        #  EPYC 7V73X"
        assert XEON_MAX_9480.flop_byte_ratio(4) == pytest.approx(9.4, abs=0.2)
        assert XEON_8360Y.flop_byte_ratio(4) == pytest.approx(36, abs=2.0)
        assert EPYC_7V73X.flop_byte_ratio(4) == pytest.approx(28, abs=1.0)

    def test_a100_achievable_bandwidth(self):
        # "an achievable peak memory bandwidth of 1310 GB/s - 10% lower
        #  than that measured on the Intel Xeon CPU MAX 9480"
        assert A100_40GB.stream_bandwidth / 1e9 == pytest.approx(1310, rel=0.005)
        assert A100_40GB.stream_bandwidth < XEON_MAX_9480.stream_bandwidth_tuned

    def test_epyc_cross_socket_latency_ratio(self):
        # "the latency across different sockets is 1.6x times worse"
        intel_avg = 0.5 * (
            XEON_MAX_9480.latency_cross_socket + XEON_8360Y.latency_cross_socket
        )
        assert EPYC_7V73X.latency_cross_socket / intel_avg == pytest.approx(1.6, abs=0.1)


class TestRegistry:
    def test_get_platform_roundtrip(self):
        for p in ALL_PLATFORMS:
            assert get_platform(p.short_name) is p

    def test_get_platform_unknown(self):
        with pytest.raises(KeyError, match="unknown platform"):
            get_platform("pentium3")

    def test_cpu_platforms_are_cpus(self):
        assert all(p.kind is DeviceKind.CPU for p in CPU_PLATFORMS)
        assert A100_40GB.kind is DeviceKind.GPU

    def test_memory_capacity_positive(self):
        for p in ALL_PLATFORMS:
            assert p.memory.capacity > 0
