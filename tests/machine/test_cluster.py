"""Tests for multi-node cluster topology: ClusterSpec, NetworkSpec, and
cross-node pair classification."""

import pytest

from repro.machine import (
    XEON_8360Y,
    XEON_MAX_9480,
    ClusterSpec,
    NetworkSpec,
    PairKind,
    classify_cluster_pair,
    classify_pair,
)


class TestNetworkSpec:
    def test_defaults_are_hdr200_class(self):
        net = NetworkSpec()
        assert net.latency > 0
        assert net.bandwidth > 10e9

    def test_validation(self):
        with pytest.raises(ValueError):
            NetworkSpec(latency=-1.0)
        with pytest.raises(ValueError):
            NetworkSpec(bandwidth=0.0)
        with pytest.raises(ValueError):
            NetworkSpec(message_overhead=-1e-6)

    def test_frozen(self):
        with pytest.raises(Exception):
            NetworkSpec().latency = 1.0


class TestClusterSpec:
    def test_totals_scale_with_nodes(self):
        c = ClusterSpec(XEON_MAX_9480, 4)
        assert c.total_cores == 4 * XEON_MAX_9480.total_cores
        assert c.total_threads == 4 * XEON_MAX_9480.total_threads
        assert c.short_name == f"{XEON_MAX_9480.short_name}x4"

    def test_single_node_allowed(self):
        assert ClusterSpec(XEON_8360Y, 1).nodes == 1

    def test_rejects_nonpositive_nodes(self):
        with pytest.raises(ValueError):
            ClusterSpec(XEON_MAX_9480, 0)

    def test_thread_numbering_is_node_major(self):
        c = ClusterSpec(XEON_MAX_9480, 3)
        per = XEON_MAX_9480.total_threads
        assert c.node_of_thread(0) == 0
        assert c.node_of_thread(per - 1) == 0
        assert c.node_of_thread(per) == 1
        assert c.node_of_thread(2 * per + 5) == 2
        assert c.local_thread(2 * per + 5) == 5

    def test_thread_range_checked(self):
        c = ClusterSpec(XEON_MAX_9480, 2)
        with pytest.raises(ValueError):
            c.node_of_thread(c.total_threads)
        with pytest.raises(ValueError):
            c.local_thread(-1)


class TestClusterClassification:
    def test_cross_node(self):
        c = ClusterSpec(XEON_MAX_9480, 2)
        per = XEON_MAX_9480.total_threads
        assert classify_cluster_pair(c, 0, per) is PairKind.CROSS_NODE

    def test_same_node_delegates_to_platform_rules(self):
        c = ClusterSpec(XEON_MAX_9480, 2)
        per = XEON_MAX_9480.total_threads
        # Same local pair on node 1 classifies as on a single machine.
        for a, b in [(0, 0), (0, 1), (0, XEON_MAX_9480.cores_per_socket)]:
            assert (classify_cluster_pair(c, per + a, per + b)
                    is classify_pair(XEON_MAX_9480, a, b))

    def test_cross_node_enum_value(self):
        assert PairKind.CROSS_NODE.value == "cross-node"


class TestClusterCostOrdering:
    """Handshake costs must rank intra-socket < cross-socket < inter-node;
    this is the pricing hierarchy behind fig7x."""

    def test_zero_byte_transfer_ordering(self):
        from repro.simmpi import ClusterCostModel

        p = XEON_MAX_9480
        cluster = ClusterSpec(p, 2)
        # Ranks 0/1 on node 0 (sockets 0 and 1), ranks 2/3 on node 1.
        placement = [0, p.cores_per_socket,
                     p.total_threads, p.total_threads + p.cores_per_socket]
        cm = ClusterCostModel(cluster, placement)
        intra = cm.transfer_time(0, 0, 0)  # self — lower bound
        # Use ranks on distinct sockets of node 0 for cross-socket.
        cross_socket = cm.transfer_time(0, 1, 0)
        inter_node = cm.transfer_time(0, 2, 0)
        assert intra < cross_socket < inter_node
        assert cm.is_internode(0, 2)
        assert not cm.is_internode(0, 1)

    def test_placement_helper_blocks_by_node(self):
        from repro.simmpi import cluster_placement

        p = XEON_8360Y
        cluster = ClusterSpec(p, 2)
        placement = cluster_placement(cluster, 2 * p.total_cores)
        nodes = [t // p.total_threads for t in placement]
        assert nodes == [0] * p.total_cores + [1] * p.total_cores
        with pytest.raises(ValueError):
            cluster_placement(cluster, 4 * p.total_cores + 1)

    def test_nic_sharing_divides_bandwidth(self):
        from repro.simmpi import ClusterCostModel

        p = XEON_8360Y
        cluster = ClusterSpec(p, 2)
        placement = [0, p.total_threads]
        fair = ClusterCostModel(cluster, placement, nic_sharing=1)
        shared = ClusterCostModel(cluster, placement, nic_sharing=8)
        nbytes = 1 << 20
        assert shared.transfer_time(0, 1, nbytes) > fair.transfer_time(0, 1, nbytes)
        # Handshake-only cost does not depend on NIC sharing.
        assert shared.transfer_time(0, 1, 0) == fair.transfer_time(0, 1, 0)

    def test_collective_time_grows_with_nodes(self):
        from repro.simmpi import ClusterCostModel

        p = XEON_8360Y
        one = ClusterCostModel(ClusterSpec(p, 1), [0, 1])
        four = ClusterCostModel(
            ClusterSpec(p, 4), [n * p.total_threads for n in range(4)])
        assert four.collective_time(4, 64) > one.collective_time(2, 64)
