"""Unit tests for the platform specification dataclasses."""

import math

import pytest

from repro.machine.spec import (
    GIB,
    KIB,
    MIB,
    CacheLevel,
    DeviceKind,
    MemoryKind,
    MemorySpec,
    PlatformSpec,
    VectorISA,
    gbs,
    ghz,
    ns,
)


def make_platform(**overrides) -> PlatformSpec:
    """A small, well-formed CPU platform for unit tests."""
    kw = dict(
        name="TestBox",
        short_name="test",
        kind=DeviceKind.CPU,
        sockets=2,
        cores_per_socket=8,
        numa_per_socket=2,
        smt=2,
        base_freq=ghz(2.0),
        turbo_freq=ghz(3.0),
        isa=VectorISA("AVX-512", 512, fma_units=2),
        caches=(
            CacheLevel("L1", 32 * KIB, gbs(100.0), ns(1.0), scope="core"),
            CacheLevel("L2", 1 * MIB, gbs(50.0), ns(5.0), scope="core"),
            CacheLevel("L3", 16 * MIB, gbs(400.0), ns(20.0), scope="socket"),
        ),
        memory=MemorySpec(MemoryKind.DDR4, 64 * GIB, gbs(100.0), 0.8),
        latency_smt_sibling=ns(20.0),
        latency_same_socket=ns(50.0),
        latency_cross_socket=ns(100.0),
        latency_cross_numa=ns(70.0),
    )
    kw.update(overrides)
    return PlatformSpec(**kw)


class TestVectorISA:
    def test_lanes_fp32_avx512(self):
        assert VectorISA("AVX-512", 512).lanes(4) == 16

    def test_lanes_fp64_avx2(self):
        assert VectorISA("AVX2", 256).lanes(8) == 4

    def test_flops_per_cycle(self):
        # 16 lanes * 2 FMA pipes * 2 flops = 64 FP32 flops/cycle
        assert VectorISA("AVX-512", 512, fma_units=2).flops_per_cycle(4) == 64
        assert VectorISA("AVX2", 256, fma_units=2).flops_per_cycle(4) == 32


class TestCacheLevel:
    def test_num_sets(self):
        lvl = CacheLevel("L1", 32 * KIB, gbs(1.0), ns(1.0), associativity=8)
        assert lvl.num_sets == 32 * KIB // (64 * 8)

    def test_rejects_bad_scope(self):
        with pytest.raises(ValueError, match="scope"):
            CacheLevel("L1", 32 * KIB, gbs(1.0), ns(1.0), scope="chip")

    def test_rejects_nondivisible_capacity(self):
        with pytest.raises(ValueError):
            CacheLevel("L1", 1000, gbs(1.0), ns(1.0), associativity=8)

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            CacheLevel("L1", 0, gbs(1.0), ns(1.0))


class TestMemorySpec:
    def test_achievable_bandwidth(self):
        mem = MemorySpec(MemoryKind.HBM2E, GIB, gbs(1000.0), 0.5, 0.6)
        assert mem.achievable_bandwidth == pytest.approx(gbs(500.0))
        assert mem.achievable_bandwidth_tuned == pytest.approx(gbs(600.0))

    def test_tuned_falls_back(self):
        mem = MemorySpec(MemoryKind.DDR4, GIB, gbs(100.0), 0.75)
        assert mem.achievable_bandwidth_tuned == mem.achievable_bandwidth

    def test_rejects_bad_efficiency(self):
        with pytest.raises(ValueError):
            MemorySpec(MemoryKind.DDR4, GIB, gbs(100.0), 1.5)
        with pytest.raises(ValueError):
            MemorySpec(MemoryKind.DDR4, GIB, gbs(100.0), 0.5, 0.0)


class TestPlatformSpec:
    def test_counts(self):
        p = make_platform()
        assert p.total_cores == 16
        assert p.total_threads == 32
        assert p.total_numa_domains == 4
        assert p.cores_per_numa == 4

    def test_peak_flops_base_and_turbo(self):
        p = make_platform()
        # 16 cores * 64 flops/cycle * 2 GHz
        assert p.peak_flops(4) == pytest.approx(16 * 64 * 2e9)
        lo, hi = p.peak_flops_range(4)
        assert hi / lo == pytest.approx(1.5)

    def test_flop_byte_ratio_achieved_vs_peak(self):
        p = make_platform()
        assert p.flop_byte_ratio(4, achieved=True) > p.flop_byte_ratio(4, achieved=False)
        assert p.flop_byte_ratio(4, achieved=True) == pytest.approx(
            p.peak_flops(4) / p.stream_bandwidth
        )

    def test_numa_domains_cover_all_cores_once(self):
        p = make_platform()
        seen = []
        for d in p.numa_domains():
            seen.extend(d.cores)
        assert sorted(seen) == list(range(p.total_cores))

    def test_numa_of_core_matches_enumeration(self):
        p = make_platform()
        for d in p.numa_domains():
            for c in d.cores:
                assert p.numa_of_core(c) == d.domain_id
                assert p.socket_of_core(c) == d.socket

    def test_socket_of_core_bounds(self):
        p = make_platform()
        with pytest.raises(ValueError):
            p.socket_of_core(p.total_cores)
        with pytest.raises(ValueError):
            p.numa_of_core(-1)

    def test_cache_lookup(self):
        p = make_platform()
        assert p.cache("l2").name == "L2"
        with pytest.raises(KeyError):
            p.cache("L4")

    def test_cache_totals_scale_by_scope(self):
        p = make_platform()
        assert p.cache_capacity_total("L1") == 32 * KIB * 16
        assert p.cache_capacity_total("L3") == 16 * MIB * 2
        assert p.cache_bandwidth_total("L3") == pytest.approx(gbs(800.0))

    def test_validation_rejects_bad_numa_split(self):
        with pytest.raises(ValueError):
            make_platform(cores_per_socket=7, numa_per_socket=2)

    def test_validation_rejects_turbo_below_base(self):
        with pytest.raises(ValueError):
            make_platform(turbo_freq=ghz(1.0))

    def test_validation_rejects_bad_smt(self):
        with pytest.raises(ValueError):
            make_platform(smt=3)
