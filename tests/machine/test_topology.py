"""Tests for core topology classification and the Figure 2 latency model."""

import numpy as np
import pytest

from repro.machine import (
    EPYC_7V73X,
    XEON_8360Y,
    XEON_MAX_9480,
    CoreToCoreBenchmark,
    PairKind,
    classify_pair,
    latency_matrix,
    pair_latency,
)
from repro.machine.topology import hw_thread_to_core


class TestThreadMapping:
    def test_first_block_is_physical_cores(self):
        p = XEON_MAX_9480
        for t in range(p.total_cores):
            assert hw_thread_to_core(p, t) == t

    def test_second_block_is_smt_siblings(self):
        p = XEON_MAX_9480
        for t in range(p.total_cores):
            assert hw_thread_to_core(p, t + p.total_cores) == t

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            hw_thread_to_core(XEON_MAX_9480, XEON_MAX_9480.total_threads)


class TestClassification:
    def test_self(self):
        assert classify_pair(XEON_MAX_9480, 3, 3) is PairKind.SELF

    def test_smt_sibling(self):
        p = XEON_MAX_9480
        assert classify_pair(p, 0, p.total_cores) is PairKind.SMT_SIBLING

    def test_same_numa(self):
        # Cores 0 and 1 are in NUMA domain 0 on every platform here.
        assert classify_pair(XEON_MAX_9480, 0, 1) is PairKind.SAME_NUMA

    def test_same_socket_cross_numa(self):
        p = XEON_MAX_9480  # SNC4: 14 cores per NUMA domain
        assert classify_pair(p, 0, p.cores_per_numa) is PairKind.SAME_SOCKET

    def test_cross_socket(self):
        p = XEON_MAX_9480
        assert classify_pair(p, 0, p.cores_per_socket) is PairKind.CROSS_SOCKET

    def test_8360y_has_no_cross_numa_class(self):
        p = XEON_8360Y  # 1 NUMA domain per socket
        kinds = {classify_pair(p, 0, t) for t in range(1, p.total_cores)}
        assert PairKind.SAME_SOCKET not in kinds


class TestLatencies:
    def test_latency_ordering(self):
        """SMT sibling < same NUMA < cross NUMA < cross socket."""
        p = XEON_MAX_9480
        smt = pair_latency(p, 0, p.total_cores).latency
        near = pair_latency(p, 0, 1).latency
        numa = pair_latency(p, 0, p.cores_per_numa).latency
        far = pair_latency(p, 0, p.cores_per_socket).latency
        assert smt < near < numa < far

    def test_self_latency_zero(self):
        assert pair_latency(XEON_MAX_9480, 5, 5).latency == 0.0

    def test_matrix_symmetric_zero_diag(self):
        m = latency_matrix(XEON_MAX_9480, threads=list(range(8)))
        assert np.allclose(m, m.T)
        assert np.all(np.diag(m) == 0.0)

    def test_epyc_cross_numa_penalty(self):
        """Milan-X chiplet hop is expensive relative to in-CCX."""
        p = EPYC_7V73X
        near = pair_latency(p, 0, 1).latency
        numa = pair_latency(p, 0, p.cores_per_numa).latency
        assert numa / near > 3.0


class TestCoreToCoreBenchmark:
    def test_contention_grows_with_lines(self):
        few = CoreToCoreBenchmark(XEON_MAX_9480, num_lines=1)
        many = CoreToCoreBenchmark(XEON_MAX_9480, num_lines=64)
        assert many.measure(0, 1) > few.measure(0, 1)

    def test_single_line_equals_base_latency(self):
        bench = CoreToCoreBenchmark(XEON_MAX_9480, num_lines=1)
        assert bench.measure(0, 1) == pytest.approx(
            pair_latency(XEON_MAX_9480, 0, 1).latency
        )

    def test_rejects_zero_lines(self):
        with pytest.raises(ValueError):
            CoreToCoreBenchmark(XEON_MAX_9480, num_lines=0)

    def test_representative_pairs_intel(self):
        pairs = CoreToCoreBenchmark(XEON_MAX_9480).representative_pairs()
        assert {"smt-siblings", "adjacent-cores", "cross-numa", "cross-socket"} <= set(pairs)
        assert pairs["smt-siblings"] < pairs["adjacent-cores"] < pairs["cross-socket"]

    def test_representative_pairs_epyc_no_smt(self):
        pairs = CoreToCoreBenchmark(EPYC_7V73X).representative_pairs()
        assert "smt-siblings" not in pairs
        assert {"adjacent-cores", "cross-numa", "cross-socket"} <= set(pairs)

    def test_epyc_cross_socket_worst(self):
        """Figure 2: EPYC cross-socket ~1.6x worse than Intel systems."""
        epyc = CoreToCoreBenchmark(EPYC_7V73X).representative_pairs()
        intel = CoreToCoreBenchmark(XEON_8360Y).representative_pairs()
        assert epyc["cross-socket"] / intel["cross-socket"] > 1.4

    def test_max9480_no_latency_improvement_over_8360y(self):
        """Figure 2: 'there hasn't been a significant improvement (in some
        cases even slight regression)' vs the 8360Y."""
        new = CoreToCoreBenchmark(XEON_MAX_9480).representative_pairs()
        old = CoreToCoreBenchmark(XEON_8360Y).representative_pairs()
        for key in ("smt-siblings", "adjacent-cores", "cross-socket"):
            assert new[key] >= old[key]
