"""Tests for run configurations, feasibility rules, and sweeps."""

import pytest

from repro.machine import (
    A100_40GB,
    EPYC_7V73X,
    XEON_8360Y,
    XEON_MAX_9480,
    Compiler,
    Parallelization,
    RunConfig,
    ZmmUsage,
    best_practice_config,
    check_feasible,
    feasible,
    native_compilers,
    structured_config_sweep,
    unstructured_config_sweep,
)


class TestFeasibility:
    def test_sycl_requires_oneapi(self):
        cfg = RunConfig(Compiler.CLASSIC, Parallelization.MPI_SYCL_FLAT)
        with pytest.raises(ValueError, match="SYCL"):
            check_feasible(cfg, XEON_MAX_9480)

    def test_zmm_high_requires_avx512(self):
        cfg = RunConfig(Compiler.GCC, Parallelization.MPI, ZmmUsage.HIGH)
        with pytest.raises(ValueError, match="AVX-512"):
            check_feasible(cfg, EPYC_7V73X)

    def test_ht_requires_smt(self):
        cfg = RunConfig(Compiler.GCC, Parallelization.MPI, hyperthreading=True)
        with pytest.raises(ValueError, match="SMT"):
            check_feasible(cfg, EPYC_7V73X)

    def test_cuda_requires_gpu(self):
        cfg = RunConfig(Compiler.NVCC, Parallelization.CUDA)
        assert feasible(cfg, A100_40GB)
        assert not feasible(cfg, XEON_MAX_9480)

    def test_cpu_parallelization_rejected_on_gpu(self):
        cfg = RunConfig(Compiler.NVCC, Parallelization.MPI)
        assert not feasible(cfg, A100_40GB)

    def test_wrong_compiler_per_platform(self):
        assert not feasible(RunConfig(Compiler.CLASSIC, Parallelization.MPI), EPYC_7V73X)
        assert not feasible(RunConfig(Compiler.GCC, Parallelization.MPI), XEON_MAX_9480)

    def test_native_compilers(self):
        assert native_compilers(XEON_MAX_9480) == (Compiler.CLASSIC, Compiler.ONEAPI)
        assert native_compilers(EPYC_7V73X) == (Compiler.GCC, Compiler.AOCC)
        assert native_compilers(A100_40GB) == (Compiler.NVCC,)


class TestPlacement:
    def test_pure_mpi_rank_counts(self):
        cfg = RunConfig(Compiler.ONEAPI, Parallelization.MPI)
        assert cfg.ranks(XEON_MAX_9480) == 112
        assert cfg.with_(hyperthreading=True).ranks(XEON_MAX_9480) == 224

    def test_mpi_omp_one_rank_per_numa(self):
        cfg = RunConfig(Compiler.ONEAPI, Parallelization.MPI_OMP)
        assert cfg.ranks(XEON_MAX_9480) == 8  # SNC4, 2 sockets
        assert cfg.ranks(XEON_8360Y) == 2
        assert cfg.threads_per_rank(XEON_MAX_9480) == 14
        assert cfg.with_(hyperthreading=True).threads_per_rank(XEON_MAX_9480) == 28

    def test_pure_mpi_single_thread_per_rank(self):
        cfg = RunConfig(Compiler.ONEAPI, Parallelization.MPI)
        assert cfg.threads_per_rank(XEON_MAX_9480) == 1

    def test_cuda_single_rank(self):
        cfg = RunConfig(Compiler.NVCC, Parallelization.CUDA)
        assert cfg.ranks(A100_40GB) == 1


class TestSweeps:
    def test_structured_sweep_is_24_rows_on_max(self):
        # Figure 3: 2 compilers x 2 zmm x 2 ht x {MPI, MPI+OMP} = 16, plus
        # oneAPI-only SYCL flat/ndrange x 2 zmm x 2 ht = 8.
        assert len(structured_config_sweep(XEON_MAX_9480)) == 24

    def test_unstructured_sweep_is_25_rows_on_max(self):
        # Figure 4: {MPI, MPI vec, MPI+OMP} x 2 x 2 x 2 = 24 + 1 SYCL row.
        assert len(unstructured_config_sweep(XEON_MAX_9480)) == 25

    def test_sweeps_all_feasible(self):
        for p in (XEON_MAX_9480, XEON_8360Y, EPYC_7V73X):
            for cfg in structured_config_sweep(p) + unstructured_config_sweep(p):
                assert feasible(cfg, p), cfg

    def test_epyc_sweep_collapses_zmm_and_ht(self):
        # No AVX-512, no SMT: only compiler x parallelization remain.
        cfgs = structured_config_sweep(EPYC_7V73X)
        assert all(c.zmm is ZmmUsage.DEFAULT for c in cfgs)
        assert all(not c.hyperthreading for c in cfgs)
        assert len(cfgs) == 4  # 2 compilers x {MPI, MPI+OMP}

    def test_labels_unique(self):
        labels = [c.label() for c in structured_config_sweep(XEON_MAX_9480)]
        assert len(labels) == len(set(labels))


class TestBestPractice:
    def test_paper_recommendation_on_max(self):
        # Sec. 5: "the best performing combination appears to be
        # MPI+OpenMP, with OneAPI, ZMM high, and HT disabled"
        cfg = best_practice_config(XEON_MAX_9480)
        assert cfg.compiler is Compiler.ONEAPI
        assert cfg.parallelization is Parallelization.MPI_OMP
        assert cfg.zmm is ZmmUsage.HIGH
        assert not cfg.hyperthreading

    def test_adapts_to_epyc(self):
        cfg = best_practice_config(EPYC_7V73X)
        assert feasible(cfg, EPYC_7V73X)
        assert cfg.zmm is ZmmUsage.DEFAULT

    def test_gpu_gets_cuda(self):
        cfg = best_practice_config(A100_40GB)
        assert cfg.parallelization is Parallelization.CUDA
