"""Golden equivalence: the IR refactor is observably invisible.

``scripts/capture_goldens.py`` recorded — on the pre-refactor engines —
every externally observable number the kernel-IR consolidation must
preserve: application fingerprints (the sweep store's content address),
best-run totals and attribution leaves for all app x platform pairs,
trace span taxonomies, kernel span attribute keys and access strings,
simulated clocks (serial and per-rank distributed), and the metric
family list.  This suite recomputes the same quantities through the
refactored engines and compares them for *exact* equality — floats
bit-for-bit, and int-vs-float type identity preserved (the structured
dialect reports integral byte counts, the unstructured one floats).

A legitimate behavioural change must re-record the baseline with
``python scripts/capture_goldens.py`` and say so in the commit.
"""

import importlib.util
import json
import math
from pathlib import Path

import pytest

ROOT = Path(__file__).resolve().parents[2]
BASELINE = ROOT / "baselines" / "golden_equivalence.json"


def _load_capture_module():
    spec = importlib.util.spec_from_file_location(
        "capture_goldens", ROOT / "scripts" / "capture_goldens.py"
    )
    mod = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(mod)
    return mod


@pytest.fixture(scope="module")
def capture():
    return _load_capture_module()


@pytest.fixture(scope="module")
def golden():
    return json.loads(BASELINE.read_text())


def _normalize(obj):
    """JSON round-trip: tuples -> lists, dict keys -> str, preserving
    the int/float distinction (json keeps 2 and 2.0 apart)."""
    return json.loads(json.dumps(obj))


def assert_identical(new, old, path=""):
    """Recursive equality with number-type identity: 2 == 2.0 is a
    FAILURE here — the dialects' int-vs-float reporting is part of the
    observable surface."""
    if isinstance(old, dict):
        assert isinstance(new, dict), f"{path}: {type(new).__name__} != dict"
        assert sorted(new) == sorted(old), (
            f"{path}: keys {sorted(new)} != {sorted(old)}"
        )
        for k in old:
            assert_identical(new[k], old[k], f"{path}/{k}")
    elif isinstance(old, list):
        assert isinstance(new, list), f"{path}: {type(new).__name__} != list"
        assert len(new) == len(old), f"{path}: len {len(new)} != {len(old)}"
        for i, (a, b) in enumerate(zip(new, old)):
            assert_identical(a, b, f"{path}[{i}]")
    elif isinstance(old, bool) or old is None or isinstance(old, str):
        assert new == old and type(new) is type(old), f"{path}: {new!r} != {old!r}"
    else:
        assert isinstance(old, (int, float))
        assert type(new) is type(old), (
            f"{path}: {type(new).__name__}({new!r}) != "
            f"{type(old).__name__}({old!r}) — int/float identity is pinned"
        )
        if isinstance(old, float) and math.isnan(old):
            assert math.isnan(new), f"{path}: {new!r} != nan"
        else:
            assert new == old, f"{path}: {new!r} != {old!r} (must be exact)"


def test_baseline_exists_and_is_complete(golden):
    assert sorted(golden) == ["apps", "distributed", "estimates", "metrics"]
    assert len(golden["apps"]) == 9
    assert sum(len(v) for v in golden["estimates"].values()) == 36


class TestAppGoldens:
    """Fingerprints, exec-layer span taxonomy and timed clocks per app."""

    @pytest.fixture(scope="class")
    def recomputed(self, capture):
        return _normalize(capture.app_goldens())

    def test_every_app_covered(self, recomputed, golden):
        assert sorted(recomputed) == sorted(golden["apps"])

    @pytest.mark.parametrize("section", [
        "fingerprint", "exec_spans", "kernel_attr_keys", "kernel_access",
        "timed_seconds",
    ])
    def test_section_identical(self, recomputed, golden, section):
        for app, entry in golden["apps"].items():
            assert_identical(
                recomputed[app][section], entry[section], f"{app}/{section}"
            )


class TestEstimateGoldens:
    """Best-run config/total/attribution leaves + trace taxonomy, all
    36 app x platform pairs."""

    @pytest.fixture(scope="class")
    def recomputed(self, capture):
        return _normalize(capture.estimate_goldens())

    def test_every_pair_covered(self, recomputed, golden):
        pairs = {(a, p) for a, v in golden["estimates"].items() for p in v}
        assert {(a, p) for a, v in recomputed.items() for p in v} == pairs

    @pytest.mark.parametrize("section", [
        "config", "total_time", "leaves", "trace_spans",
    ])
    def test_section_identical(self, recomputed, golden, section):
        for app, plats in golden["estimates"].items():
            for plat, entry in plats.items():
                assert_identical(
                    recomputed[app][plat][section], entry[section],
                    f"{app}/{plat}/{section}",
                )


def test_distributed_rank_clocks(capture, golden):
    assert_identical(
        _normalize(capture.distributed_goldens()),
        golden["distributed"], "distributed",
    )


def test_metric_families(capture, golden):
    assert_identical(
        _normalize(capture.metrics_goldens()), golden["metrics"], "metrics"
    )
