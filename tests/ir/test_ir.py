"""Unit tests for the kernel IR: descriptors, plans, ledger, executor.

The IR is the single home of the paper's Sec.-6 traffic accounting; the
tests here pin its arithmetic and the dialect quirks it deliberately
preserves (int vs float byte counts, first-vs-last dtype attribution)
independent of either parloop engine.
"""

import numpy as np
import pytest

from repro.ir import (
    Access,
    AccessDescriptor,
    InstrumentedExecutor,
    KernelPlan,
    LoopTraffic,
    TrafficLedger,
    describe,
)


def _d(name="u", access=Access.READ, **kw):
    return AccessDescriptor(name, access, **kw)


class TestAccessDescriptor:
    def test_transfers_follow_paper_table(self):
        # Sec. 6 / Fig. 8 accounting: read/write move once, rw/inc twice.
        assert Access.READ.transfers == 1
        assert Access.WRITE.transfers == 1
        assert Access.RW.transfers == 2
        assert Access.INC.transfers == 2
        assert Access.MIN.transfers == 0
        assert Access.MAX.transfers == 0

    def test_slots_direct_vs_indirect(self):
        assert _d().slots == 1
        one = _d(map_name="e2c", map_arity=4, map_index=2)
        assert one.slots == 1
        every = _d(map_name="e2c", map_arity=4, map_index=None)
        assert every.slots == 4

    def test_bytes_per_point(self):
        assert _d(access=Access.RW, width_bytes=8).bytes_per_point == 16
        ind = _d(access=Access.INC, width_bytes=24, map_name="e2c",
                 map_arity=2, map_index=None)
        assert ind.bytes_per_point == 24 * 2 * 2
        gbl = _d("gbl", Access.INC, is_global=True)
        assert gbl.bytes_per_point == 0

    def test_describe_strings(self):
        # The exact formats the tracer has always attached to spans.
        assert _d("gbl", Access.INC, is_global=True).describe() == "gbl:inc"
        assert _d("u", Access.READ, radius=1).describe() == "u:read/r1"
        assert _d("u", Access.WRITE).describe() == "u:write"
        assert _d("q", Access.READ, map_name="e2c",
                  map_index=0).describe() == "q@e2c[0]:read"
        assert _d("q", Access.INC, map_name="e2c", map_arity=3,
                  map_index=None).describe() == "q@e2c[*]:inc"
        assert describe([_d(), _d("v", Access.WRITE)]) == ("u:read", "v:write")


class TestKernelPlan:
    def test_nbytes_counts_transfers_and_slots(self):
        plan = KernelPlan("k", "ops", 100, (
            _d("u", Access.READ, width_bytes=8),
            _d("v", Access.INC, width_bytes=8),
            _d("gbl", Access.INC, is_global=True),
        ))
        assert plan.nbytes == 100 * (8 + 16)
        assert plan.streams == 2  # globals carry no traffic stream

    def test_nbytes_type_follows_dialect(self):
        # The unstructured engine has always reported float byte counts
        # (its accumulator started at 0.0), the structured one ints;
        # span attributes and records preserve that distinction.
        args = (_d("u", Access.READ, width_bytes=8),)
        assert isinstance(KernelPlan("k", "ops", 10, args).nbytes, int)
        op2 = KernelPlan("k", "op2", 10, args).nbytes
        assert isinstance(op2, float)
        assert op2 == 80.0

    def test_read_radius_ignores_writes(self):
        plan = KernelPlan("k", "ops", 1, (
            _d("u", Access.READ, radius=2),
            _d("v", Access.WRITE, radius=9),
        ))
        assert plan.read_radius == 2

    def test_indirect_accounting(self):
        plan = KernelPlan("k", "op2", 50, (
            _d("x", Access.READ, width_bytes=24, map_name="e2n",
               map_arity=2, map_index=None),
            _d("r", Access.INC, width_bytes=8, map_name="e2n",
               map_arity=2, map_index=0),
            _d("area", Access.READ, width_bytes=8),
        ))
        assert plan.indirect_accesses == 50 * 2 + 50 * 1
        assert plan.indirect_bytes == 50 * (24 * 1 * 2 + 8 * 2 * 1)
        assert plan.has_indirect_inc
        assert plan.flops == 0.0

    def test_access_summary(self):
        plan = KernelPlan("k", "op2", 1, (
            _d("q", Access.READ, map_name="m", map_index=1),
            _d("gbl", Access.MAX, is_global=True),
        ))
        assert plan.access_summary() == ("q@m[1]:read", "gbl:max")


class TestTrafficLedger:
    def _plan(self, dialect, name="k", points=10, dtype_bytes=8):
        return KernelPlan(name, dialect, points, (
            _d("first", Access.READ, width_bytes=4, dtype_bytes=4),
            _d("last", Access.WRITE, width_bytes=8, dtype_bytes=dtype_bytes),
        ))

    def test_record_accumulates(self):
        ledger = TrafficLedger("ops")
        ledger.record(self._plan("ops"))
        ledger.record(self._plan("ops"))
        rec = ledger.records["k"]
        assert rec.calls == 2
        assert rec.points == 20
        assert rec.bytes == 2 * 10 * (4 + 8)
        assert ledger.loop_order == ["k"]

    def test_dtype_rule_first_for_ops_last_for_op2(self):
        # The structured engine has always taken the loop's dtype from
        # its first dat argument, the unstructured one from its last.
        ops, op2 = TrafficLedger("ops"), TrafficLedger("op2")
        ops.record(self._plan("ops", dtype_bytes=8))
        op2.record(self._plan("op2", dtype_bytes=8))
        assert ops.records["k"].dtype_bytes == 4
        assert op2.records["k"].dtype_bytes == 8

    def test_loop_traffic_aliases(self):
        # Op2LoopRecord's historical vocabulary survives as aliases.
        ledger = TrafficLedger("op2")
        ledger.record(self._plan("op2", points=4))
        rec = ledger.records["k"]
        assert rec.elements == rec.points == 4
        assert rec.bytes_per_elem == rec.bytes_per_point
        assert rec.flops_per_elem == rec.flops_per_point

    def test_loop_specs_match_from_traffic(self):
        from repro.perfmodel.kernelmodel import LoopSpec

        ledger = TrafficLedger("ops")
        for _ in range(3):
            ledger.record(self._plan("ops"))
        (spec,) = ledger.loop_specs(iterations=3)
        assert spec == LoopSpec.from_traffic(ledger.records["k"], iterations=3)
        assert spec.points == 10
        assert spec.invocations == 1.0


class _Host:
    """Minimal executor host: no communicator, optional timing model."""

    comm = None

    def __init__(self, timing=None):
        self.timing = timing


class TestInstrumentedExecutor:
    def test_finish_records_and_leaves_clock_alone_untimed(self):
        ex = InstrumentedExecutor(_Host(), "ops")
        token = ex.begin()
        ex.finish(KernelPlan("k", "ops", 10, (_d(),)), token)
        assert ex.ledger.records["k"].calls == 1
        assert ex.simulated_time == 0.0

    def test_finish_charges_timing_model(self):
        from repro.machine import XEON_MAX_9480, best_practice_config
        from repro.ops import TimingModel

        timing = TimingModel(XEON_MAX_9480, best_practice_config(XEON_MAX_9480))
        ex = InstrumentedExecutor(_Host(timing), "op2")
        ex.finish(KernelPlan("k", "op2", 1000, (_d(),)), ex.begin())
        assert ex.simulated_time > 0.0

    def test_zero_point_plans_are_not_charged(self):
        from repro.machine import XEON_MAX_9480, best_practice_config
        from repro.ops import TimingModel

        timing = TimingModel(XEON_MAX_9480, best_practice_config(XEON_MAX_9480))
        ex = InstrumentedExecutor(_Host(timing), "ops")
        ex.finish(KernelPlan("k", "ops", 0, (_d(),)), ex.begin())
        assert ex.simulated_time == 0.0
        assert ex.ledger.records["k"].calls == 1


class TestBackCompatSurface:
    def test_access_enum_is_shared(self):
        from repro.op2 import Access as Op2Access
        from repro.ops import Access as OpsAccess

        assert OpsAccess is Access
        assert Op2Access is Access

    def test_loop_record_aliases(self):
        from repro.op2.parloop import Op2LoopRecord
        from repro.ops.runtime import LoopRecord

        assert LoopRecord is LoopTraffic
        assert Op2LoopRecord is LoopTraffic

    def test_describe_helpers_delegate_to_ir(self):
        import repro.op2.parloop as op2_parloop
        import repro.ops.parloop as ops_parloop

        assert callable(ops_parloop.describe_access)
        assert callable(op2_parloop.describe_args)
        assert "lower_access" in ops_parloop.__all__
        assert "lower_args" in op2_parloop.__all__

    def test_ops_lowering_round_trip(self):
        from repro.ops import OpsContext, arg_dat, arg_gbl, star_stencil
        from repro.ops.parloop import describe_access, lower_access

        block = OpsContext().block("grid", (8,))
        u = block.dat("u", halo=1)
        g = np.zeros(1)
        args = (arg_dat(u, star_stencil(1, 1), Access.READ),
                arg_gbl(g, Access.INC))
        low = lower_access(args)
        assert low[0].radius == 1 and not low[0].is_global
        assert low[1].is_global
        assert describe_access(args) == ("u:read/r1", "gbl:inc")

    def test_op2_lowering_round_trip(self):
        from repro.op2 import Global, Map, Op2Context, Set, arg, arg_global
        from repro.op2.parloop import describe_args, lower_args

        ctx = Op2Context()
        cells = ctx.set("cells", 4)
        edges = ctx.set("edges", 4)
        e2c = ctx.map("e2c", edges, cells,
                      np.array([[i, (i + 1) % 4] for i in range(4)]))
        q = ctx.dat(cells, 3, "q")
        tot = Global(0.0, "tot")
        args = (arg(q, e2c, None, Access.INC), arg_global(tot, Access.INC))
        low = lower_args(args)
        assert low[0].width_bytes == 3 * 8
        assert low[0].map_arity == 2 and low[0].map_index is None
        assert describe_args(args) == ("q@e2c[*]:inc", "gbl:inc")
