"""Engine purity: the parloop engines carry no instrumentation code.

The IR refactor's structural claim is that both DSL runtimes only lower
loops to :class:`~repro.ir.plan.KernelPlan` and hand off to the shared
:class:`~repro.ir.executor.InstrumentedExecutor` — traffic accounting,
timing charge and span/tracer emission live in ``repro.ir`` alone.
These tests read the engine sources and fail if any of that machinery
leaks back in.
"""

import re
from pathlib import Path

import pytest

SRC = Path(__file__).resolve().parents[2] / "src" / "repro"

ENGINES = {
    "ops/runtime.py": SRC / "ops" / "runtime.py",
    "op2/parloop.py": SRC / "op2" / "parloop.py",
}

# Instrumentation machinery that must only exist in repro/ir: tracer
# resolution, metrics emission, span construction, transfer-count
# arithmetic, and the pre-refactor private accounting helpers.
FORBIDDEN = [
    "active_tracer",
    "active_metrics",
    ".span(",
    ".transfers",
    "def _record",
    "def _charge_time",
    "def _tracer",
    "def _sim_now",
]


def _without_comments(text: str) -> str:
    """Source with comments and docstrings stripped — prose may mention
    the old machinery, code may not."""
    text = re.sub(r'"""(?:[^"\\]|\\.|"(?!""))*"""', "", text, flags=re.S)
    return "\n".join(line.split("#")[0] for line in text.splitlines())


@pytest.mark.parametrize("rel", sorted(ENGINES))
@pytest.mark.parametrize("needle", FORBIDDEN)
def test_engine_has_no_instrumentation(rel, needle):
    code = _without_comments(ENGINES[rel].read_text())
    assert needle not in code, (
        f"{rel} contains {needle!r}: instrumentation belongs to "
        f"repro.ir.executor, not the parloop engines"
    )


@pytest.mark.parametrize("rel", sorted(ENGINES))
def test_engine_delegates_to_shared_executor(rel):
    code = ENGINES[rel].read_text()
    assert "InstrumentedExecutor" in code
    assert "KernelPlan(" in code
    assert "._exec.finish(" in code.replace("self._exec.finish(", "._exec.finish(")


def test_instrumentation_lives_in_ir():
    executor = (SRC / "ir" / "executor.py").read_text()
    assert "def span" in executor or ".span(" in executor
    assert "active_tracer" in executor
    assert ".transfers" in (SRC / "ir" / "plan.py").read_text()
