"""Observed-mode switch for the golden-equivalence suite.

``REPRO_GOLDEN_OBSERVED=1`` wraps every test in this directory in a
live tracer *and* a session metrics registry — the exact observability
the engine used to decline vectorization under.  CI's vec job runs the
suite twice, bare and observed; identical results both times prove
instrumentation never changes a number (the bit-for-bit contract of
``docs/OBSERVABILITY.md`` "Observing the fast path").
"""

import os

import pytest

from repro.obs.metrics import MetricsRegistry, collecting
from repro.obs.tracer import Tracer, tracing


@pytest.fixture(autouse=True)
def observed_goldens():
    if os.environ.get("REPRO_GOLDEN_OBSERVED") != "1":
        yield
        return
    with tracing(Tracer()), collecting(MetricsRegistry()):
        yield
