"""Tests for the miniBUDE docking-energy proxy."""

import numpy as np
import pytest

from repro.apps.minibude import (
    FLOPS_PER_PAIR,
    Deck,
    pair_energy,
    pose_energies,
    rotation_matrices,
    run_minibude,
    synthetic_deck,
)
from repro.ops import OpsContext
from repro.simmpi import CartGrid, World


def tiny_deck(poses: np.ndarray) -> Deck:
    """One ligand atom at the origin, one protein atom at (d, 0, 0)."""
    f32 = np.float32
    return Deck(
        protein_pos=np.array([[3.0, 0.0, 0.0]], dtype=f32),
        protein_charge=np.array([0.2], dtype=f32),
        protein_radius=np.array([1.5], dtype=f32),
        ligand_pos=np.array([[0.0, 0.0, 0.0]], dtype=f32),
        ligand_charge=np.array([-0.3], dtype=f32),
        ligand_radius=np.array([1.5], dtype=f32),
        poses=poses.astype(f32),
    )


class TestRotations:
    def test_identity(self):
        r = rotation_matrices(np.zeros((1, 3), dtype=np.float64))
        np.testing.assert_allclose(r[0], np.eye(3), atol=1e-14)

    def test_orthonormal(self):
        rng = np.random.default_rng(3)
        angles = rng.uniform(-np.pi, np.pi, (20, 3))
        rs = rotation_matrices(angles)
        for r in rs:
            np.testing.assert_allclose(r @ r.T, np.eye(3), atol=1e-12)
            assert np.linalg.det(r) == pytest.approx(1.0, abs=1e-12)


class TestEnergy:
    def test_analytic_two_atom(self):
        """Identity pose: distance 3, sigma 3 -> steric (1 - 1)^2 = 0...
        check against the closed-form pair energy."""
        deck = tiny_deck(np.zeros((1, 6)))
        e = pose_energies(deck)
        dist = 3.0
        sigma = 3.0
        steric = max(0.0, 1.0 - dist / sigma)
        elec = (-0.3) * 0.2 * max(0.0, 1.0 - dist / (2 * sigma))
        expected = 4.0 * steric**2 + elec
        assert e[0] == pytest.approx(expected, rel=1e-4)

    def test_translation_changes_energy(self):
        """Moving the ligand toward the protein raises the steric term."""
        poses = np.array([[0, 0, 0, 0, 0, 0], [0, 0, 0, 2.0, 0, 0]])
        e = pose_energies(tiny_deck(poses))
        assert e[1] > e[0]

    def test_rotation_invariance_of_centered_atom(self):
        """A ligand atom at the origin is rotation-invariant: energies
        must be identical for all pure rotations."""
        poses = np.zeros((5, 6))
        poses[:, 0] = np.linspace(0, 3, 5)  # vary an Euler angle only
        e = pose_energies(tiny_deck(poses))
        np.testing.assert_allclose(e, e[0], rtol=1e-6)

    def test_pair_energy_clamps(self):
        """Beyond the cutoff both terms vanish."""
        e = pair_energy(np.array([100.0]), 1.0, 1.0, 0.5, 0.5)
        assert e[0] == pytest.approx(0.0, abs=1e-6)


class TestRun:
    def test_dsl_run_matches_reference(self):
        deck = synthetic_deck(n_poses=64)
        d = run_minibude(OpsContext(), (64,), 1, deck=deck)
        np.testing.assert_allclose(
            d["energies"], pose_energies(deck), rtol=1e-5
        )

    def test_best_energy_is_minimum(self):
        deck = synthetic_deck(n_poses=128)
        d = run_minibude(OpsContext(), (128,), 2, deck=deck)
        assert d["best"] == pytest.approx(float(d["energies"].min()), rel=1e-6)

    def test_deterministic(self):
        a = run_minibude(OpsContext(), (32,), 1)
        b = run_minibude(OpsContext(), (32,), 1)
        np.testing.assert_array_equal(a["energies"], b["energies"])

    def test_rejects_2d_domain(self):
        with pytest.raises(ValueError, match="1-D"):
            run_minibude(OpsContext(), (8, 8), 1)

    def test_deck_size_mismatch(self):
        with pytest.raises(ValueError, match="pose count"):
            run_minibude(OpsContext(), (64,), 1, deck=synthetic_deck(n_poses=32))


class TestDistributed:
    def test_pose_split_equals_serial(self):
        deck = synthetic_deck(n_poses=60)
        serial = run_minibude(OpsContext(), (60,), 1, deck=deck)

        def program(comm):
            ctx = OpsContext(comm=comm, grid=CartGrid((3,)))
            return run_minibude(ctx, (60,), 1, deck=deck)

        results = World(3).run(program)
        np.testing.assert_array_equal(results[0]["energies"], serial["energies"])
        assert results[0]["best"] == serial["best"]


class TestAccounting:
    def test_compute_bound_profile(self):
        """Flops per byte must be enormous — this is the compute-bound
        outlier of the suite (6 TFLOPS/s in the paper)."""
        from repro.apps import build_spec, get_app

        spec = build_spec(get_app("minibude"))
        ai = spec.flops_per_iteration() / spec.bytes_per_iteration()
        assert ai > 1000.0
        assert spec.dtype_bytes == 4

    def test_flops_per_pose_accounting(self):
        deck = synthetic_deck(n_poses=16)
        expected = deck.n_ligand * (deck.n_protein * FLOPS_PER_PAIR + 30)
        assert deck.flops_per_pose() == expected
