"""Tests for the OpenSBLI SA/SN compressible-flow variants."""

import numpy as np
import pytest

from repro.apps.opensbli import run_opensbli
from repro.ops import OpsContext
from repro.simmpi import CartGrid, World


class TestSAequalsSN:
    """SA and SN are the same arithmetic with different storage — they
    must agree to rounding (this is the paper's premise for comparing
    them as two formulations of one problem)."""

    @pytest.fixture(scope="class")
    def pair(self):
        sa = run_opensbli(OpsContext(), (10, 10, 10), 4, variant="sa")
        sn = run_opensbli(OpsContext(), (10, 10, 10), 4, variant="sn")
        return sa, sn

    def test_all_fields_match(self, pair):
        sa, sn = pair
        for name in sa["fields"]:
            np.testing.assert_allclose(
                sa["fields"][name], sn["fields"][name], rtol=1e-12, atol=1e-14,
                err_msg=name,
            )

    def test_scalars_match(self, pair):
        sa, sn = pair
        assert sa["mass"] == pytest.approx(sn["mass"], rel=1e-13)
        assert sa["max_speed"] == pytest.approx(sn["max_speed"], rel=1e-10)


class TestPhysics:
    def test_uniform_flow_preserved(self):
        d = run_opensbli(OpsContext(), (8, 8, 8), 4, variant="sn", init="uniform")
        np.testing.assert_array_equal(d["fields"]["rho"], 1.0)
        assert d["max_speed"] == 0.0

    def test_wave_advances(self):
        d = run_opensbli(OpsContext(), (12, 8, 8), 5, variant="sa")
        assert d["max_speed"] > 0.05  # background flow persists
        rho = d["fields"]["rho"]
        assert rho.min() > 0.9 and rho.max() < 1.1  # small-amplitude wave

    def test_transverse_invariance(self):
        """The initial wave varies only in x — y/z slices stay equal."""
        d = run_opensbli(OpsContext(), (10, 6, 6), 4, variant="sn")
        rho = d["fields"]["rho"]
        assert np.allclose(rho, rho[:, :1, :1], rtol=1e-12)

    def test_rejects_bad_variant(self):
        with pytest.raises(ValueError, match="variant"):
            run_opensbli(OpsContext(), (8, 8, 8), 1, variant="sx")

    def test_rejects_2d(self):
        with pytest.raises(ValueError, match="3-D"):
            run_opensbli(OpsContext(), (8, 8), 1)


class TestStorageContrast:
    """The defining difference: SA moves much more data, SN does many
    more flops — the paper's 'trading off data movement for computations'."""

    @pytest.fixture(scope="class")
    def specs(self):
        from repro.apps import build_spec, get_app

        return build_spec(get_app("opensbli_sa")), build_spec(get_app("opensbli_sn"))

    def test_sa_moves_more_bytes(self, specs):
        sa, sn = specs
        assert sa.bytes_per_iteration() > 2 * sn.bytes_per_iteration()

    def test_sn_is_more_arithmetically_intense(self, specs):
        """SN trades data movement for recomputation: its flop/byte
        intensity is well above SA's."""
        sa, sn = specs
        ai_sa = sa.flops_per_iteration() / sa.bytes_per_iteration()
        ai_sn = sn.flops_per_iteration() / sn.bytes_per_iteration()
        assert ai_sn > 1.8 * ai_sa

    def test_sa_has_many_more_loops(self, specs):
        sa, sn = specs
        bulk_sa = [l for l in sa.loops if l.points > 1e6]
        bulk_sn = [l for l in sn.loops if l.points > 1e6]
        assert len(bulk_sa) > 3 * len(bulk_sn)


class TestDistributed:
    def test_sn_distributed_equals_serial(self):
        serial = run_opensbli(OpsContext(), (8, 8, 8), 2, variant="sn")

        def program(comm):
            ctx = OpsContext(comm=comm, grid=CartGrid((2, 2, 1)))
            return run_opensbli(ctx, (8, 8, 8), 2, variant="sn")

        results = World(4).run(program)
        np.testing.assert_array_equal(
            results[0]["fields"]["rho"], serial["fields"]["rho"]
        )

    def test_sa_distributed_equals_serial(self):
        serial = run_opensbli(OpsContext(), (8, 8, 8), 2, variant="sa")

        def program(comm):
            ctx = OpsContext(comm=comm, grid=CartGrid((2, 1, 2)))
            return run_opensbli(ctx, (8, 8, 8), 2, variant="sa")

        results = World(4).run(program)
        np.testing.assert_array_equal(
            results[0]["fields"]["E"], serial["fields"]["E"]
        )
