"""Tests for the MG-CFD multigrid Euler solver."""

import numpy as np
import pytest

from repro.apps.mgcfd import (
    fine_to_coarse_map,
    run_mgcfd,
    synthetic_mgcfd_mesh,
)
from repro.op2 import DistOp2Context, Op2Context
from repro.simmpi import World


class TestSyntheticMesh:
    def test_levels_and_sizes(self):
        mesh = synthetic_mgcfd_mesh(8, 3)
        assert [m.shape[0] for m in mesh] == [8, 4, 2]
        assert len(mesh[0].edges) == 3 * 512

    def test_normals_close_around_every_node(self):
        """Σ outgoing normals - Σ incoming normals = 0 per node: the
        free-stream-preservation property."""
        mesh = synthetic_mgcfd_mesh(4, 1)[0]
        acc = np.zeros((64, 3))
        for (a, b), n in zip(mesh.edges, mesh.normals):
            acc[a] += n
            acc[b] -= n
        np.testing.assert_allclose(acc, 0.0, atol=1e-15)

    def test_rejects_bad_size(self):
        with pytest.raises(ValueError):
            synthetic_mgcfd_mesh(6, 3)  # not divisible by 4

    def test_fine_to_coarse_covers(self):
        m = fine_to_coarse_map(8)
        assert m.shape == (512,)
        counts = np.bincount(m, minlength=64)
        assert np.all(counts == 8)  # every coarse node has 8 children


class TestPhysics:
    def test_free_stream_preserved_exactly(self):
        d = run_mgcfd(Op2Context(), (8, 8, 8), 3, init="uniform")
        assert all(r == 0.0 for r in d["residual"])
        np.testing.assert_allclose(d["q"][:, 0], 1.0, rtol=1e-14)
        np.testing.assert_allclose(d["q"][:, 1], 0.3, rtol=1e-13)

    def test_residual_decays(self):
        d = run_mgcfd(Op2Context(), (8, 8, 8), 8, init="perturbed")
        r = d["residual"]
        assert r[-1] < r[0]
        assert all(b <= a * 1.0001 for a, b in zip(r, r[1:]))  # monotone-ish

    def test_density_stays_positive(self):
        d = run_mgcfd(Op2Context(), (8, 8, 8), 8, init="perturbed")
        assert d["q"][:, 0].min() > 0.5

    def test_colored_equals_seq(self):
        a = run_mgcfd(Op2Context(mode="seq"), (8, 8, 8), 3)
        b = run_mgcfd(Op2Context(mode="colored"), (8, 8, 8), 3)
        np.testing.assert_allclose(a["q"], b["q"], rtol=1e-12)


class TestDistributed:
    @pytest.mark.parametrize("nranks", [2, 4])
    def test_distributed_equals_serial(self, nranks):
        serial = run_mgcfd(Op2Context(), (8, 8, 8), 2)

        def program(comm):
            ctx = DistOp2Context(comm)
            return run_mgcfd(ctx, (8, 8, 8), 2)

        results = World(nranks).run(program)
        np.testing.assert_allclose(results[0]["q"], serial["q"], rtol=1e-11)
        for r in results:
            np.testing.assert_allclose(r["residual"], serial["residual"], rtol=1e-10)


class TestAccounting:
    def test_flux_kernel_dominates_and_is_indirect(self):
        ctx = Op2Context()
        run_mgcfd(ctx, (8, 8, 8), 2)
        rec = ctx.records["compute_flux_l0"]
        assert rec.indirect_per_elem == 4  # 2 reads + 2 INCs
        assert rec.has_indirect_inc
        total = sum(r.bytes for r in ctx.records.values())
        assert rec.bytes / total > 0.3

    def test_spec_unstructured_not_vectorizable(self):
        from repro.apps import build_spec, get_app

        spec = build_spec(get_app("mgcfd"))
        flux_loops = [l for l in spec.loops if l.name.startswith("compute_flux")]
        assert flux_loops and all(not l.vectorizable for l in flux_loops)
        assert spec.domain == (200, 200, 200)


class TestTransferOperators:
    def test_restriction_preserves_constants(self):
        """Injecting a constant fine field yields the same constant on
        the coarse level (the 8-child average of equal values)."""
        from repro.apps.mgcfd import fine_to_coarse_map
        import numpy as np

        f2c = fine_to_coarse_map(8)
        fine = np.full((512, 5), 3.25)
        coarse = np.zeros((64, 5))
        np.add.at(coarse, f2c, 0.125 * fine)
        np.testing.assert_allclose(coarse, 3.25, rtol=1e-14)

    def test_prolongation_roundtrip_of_uniform_correction(self):
        """A uniform coarse correction prolongs to a uniform fine update."""
        from repro.apps.mgcfd import fine_to_coarse_map
        import numpy as np

        f2c = fine_to_coarse_map(4)
        corr = np.full((8, 5), 0.5)  # (4/2)^3 = 8 coarse nodes
        fine_update = corr[f2c]
        assert fine_update.shape == (64, 5)
        np.testing.assert_array_equal(fine_update, 0.5)
