"""Tests for the Volna shallow-water solver."""

import numpy as np
import pytest

from repro.apps.volna import run_volna, synthetic_ocean
from repro.op2 import DistOp2Context, Op2Context
from repro.simmpi import World


class TestMesh:
    def test_triangulation_counts(self):
        mesh = synthetic_ocean(8, 4)
        assert mesh.n_cells == 64
        # Per quad: 1 diagonal; right edges: (nx-1)*ny; top: nx*(ny-1).
        assert len(mesh.edges) == 32 + 7 * 4 + 8 * 3

    def test_cell_normal_fans_close(self):
        """Interior + wall edges together close every cell — the basis
        of well-balancedness."""
        mesh = synthetic_ocean(6, 5)
        acc = np.zeros((mesh.n_cells, 2))
        for (a, b), n, l in zip(mesh.edges, mesh.edge_normal, mesh.edge_length):
            acc[a] += np.asarray(n) * l
            acc[b] -= np.asarray(n) * l
        for c, n, l in zip(mesh.bedge_cell, mesh.bedge_normal, mesh.bedge_length):
            acc[c] += np.asarray(n) * l
        np.testing.assert_allclose(acc, 0.0, atol=1e-14)

    def test_bathymetry_has_beach_and_island(self):
        mesh = synthetic_ocean(20, 10)
        assert mesh.bathymetry.min() < -0.9  # deep basin
        assert mesh.bathymetry.max() > -0.5  # shallows exist

    def test_rejects_tiny(self):
        with pytest.raises(ValueError):
            synthetic_ocean(1, 5)


class TestWellBalanced:
    def test_lake_at_rest_exact(self):
        """η = 0 over strongly varying bathymetry must stay at rest to
        FP32 rounding — the hydrostatic-reconstruction property."""
        d = run_volna(Op2Context(), (16, 8), 8, init="rest")
        w = d["w"]
        scale = 9.81  # pressure-term magnitude
        assert np.abs(w[:, 1]).max() < 1e-5 * scale
        assert np.abs(w[:, 2]).max() < 1e-5 * scale

    def test_volume_constant_at_rest(self):
        d = run_volna(Op2Context(), (12, 6), 5, init="rest")
        v = d["volume"]
        assert max(v) - min(v) < 1e-5 * v[0]


class TestHumpCollapse:
    @pytest.fixture(scope="class")
    def result(self):
        return run_volna(Op2Context(), (16, 16), 12, init="hump")

    def test_volume_conserved(self, result):
        v = result["volume"]
        assert max(v) - min(v) < 1e-5 * v[0]

    def test_depth_nonnegative(self, result):
        h = result["w"][:, 0] - result["mesh"].bathymetry
        assert h.min() > -1e-6

    def test_wave_spreads(self, result):
        """Momentum develops away from the hump center."""
        assert np.abs(result["w"][:, 1]).max() > 1e-3

    def test_dt_positive(self, result):
        assert all(t > 0 for t in result["dt"])

    def test_finite(self, result):
        assert np.all(np.isfinite(result["w"]))


def deep_mesh(nx=5, ny=3):
    """A fully wet basin: no wetting/drying threshold flips, so execution
    modes must agree to accumulation rounding only."""
    import dataclasses

    mesh = synthetic_ocean(nx, ny)
    return dataclasses.replace(mesh, bathymetry=np.full(mesh.n_cells, -1.0))


class TestModes:
    def test_colored_equals_seq(self):
        mesh = deep_mesh()
        a = run_volna(Op2Context(mode="seq"), (10, 6), 4, mesh=mesh)
        b = run_volna(Op2Context(mode="colored"), (10, 6), 4, mesh=mesh)
        np.testing.assert_allclose(a["w"], b["w"], rtol=1e-4, atol=1e-6)

    @pytest.mark.parametrize("nranks", [2, 3])
    def test_distributed_equals_serial(self, nranks):
        mesh = deep_mesh()
        serial = run_volna(Op2Context(), (10, 6), 3, mesh=mesh)

        def program(comm):
            return run_volna(DistOp2Context(comm), (10, 6), 3, mesh=mesh)

        results = World(nranks).run(program)
        np.testing.assert_allclose(results[0]["w"], serial["w"], rtol=1e-4, atol=1e-6)


class TestAccounting:
    def test_edge_flux_is_the_indirect_hotspot(self):
        ctx = Op2Context()
        run_volna(ctx, (12, 6), 3)
        rec = ctx.records["edge_flux"]
        assert rec.has_indirect_inc
        assert rec.indirect_per_elem == 6  # 4 reads + 2 INCs

    def test_milder_indirection_than_mgcfd(self):
        """Paper: Volna is 'less so' sensitive to indirect accesses."""
        from repro.apps import build_spec, get_app

        volna = build_spec(get_app("volna"))
        mgcfd = build_spec(get_app("mgcfd"))

        def indirect_share(spec):
            tot = sum(l.bytes_total for l in spec.loops)
            ind = sum(l.bytes_total for l in spec.loops if l.indirect_per_point > 0)
            return ind / tot

        assert indirect_share(volna) < indirect_share(mgcfd)

    def test_spec_fp32(self):
        from repro.apps import build_spec, get_app

        spec = build_spec(get_app("volna"))
        assert spec.dtype_bytes == 4
        assert spec.klass.value == "unstructured"
