"""Tests for the miniWeather atmospheric dynamics proxy."""

import numpy as np
import pytest

from repro.apps.miniweather import run_miniweather
from repro.ops import OpsContext
from repro.simmpi import CartGrid, World


class TestEquilibrium:
    def test_hydrostatic_equilibrium_exact(self):
        """Zero perturbations are an exact discrete equilibrium of the
        perturbation-flux formulation."""
        d = run_miniweather(OpsContext(), (24, 12), 5, init="equilibrium")
        assert all(w == 0.0 for w in d["max_w"])
        for name, f in d["fields"].items():
            np.testing.assert_array_equal(f, 0.0, err_msg=name)


class TestThermalBubble:
    @pytest.fixture(scope="class")
    def result(self):
        return run_miniweather(OpsContext(), (40, 20), 10, init="thermal")

    def test_bubble_rises(self, result):
        """Positive buoyancy (warm anomaly) must create upward momentum
        that grows during the early transient."""
        w = result["max_w"]
        assert w[-1] > w[0] > 0.0

    def test_upward_motion_where_warm(self, result):
        rhow = result["fields"]["rhow"]
        rhot = result["fields"]["rhot"]
        # Vertical momentum is positive where the anomaly is largest.
        i, j = np.unravel_index(np.argmax(rhot), rhot.shape)
        assert rhow[i, j] > 0.0

    def test_mass_drift_small(self, result):
        assert abs(result["mass"]) < 1e-2

    def test_x_symmetry(self, result):
        """Bubble centered in x: the solution is mirror-symmetric."""
        rhot = result["fields"]["rhot"]
        np.testing.assert_allclose(rhot, rhot[::-1, :], atol=1e-10)
        rhou = result["fields"]["rhou"]
        np.testing.assert_allclose(rhou, -rhou[::-1, :], atol=1e-10)

    def test_stability(self, result):
        for f in result["fields"].values():
            assert np.all(np.isfinite(f))
            assert np.abs(f).max() < 10.0


class TestValidation:
    def test_rejects_3d(self):
        with pytest.raises(ValueError, match="2-D"):
            run_miniweather(OpsContext(), (8, 8, 8), 1)

    def test_rejects_unknown_init(self):
        with pytest.raises(ValueError, match="unknown init"):
            run_miniweather(OpsContext(), (8, 8), 1, init="hurricane")


class TestDistributed:
    def test_distributed_equals_serial(self):
        serial = run_miniweather(OpsContext(), (24, 12), 4)

        def program(comm):
            ctx = OpsContext(comm=comm, grid=CartGrid((2, 2)))
            return run_miniweather(ctx, (24, 12), 4)

        results = World(4).run(program)
        for name in serial["fields"]:
            np.testing.assert_array_equal(
                results[0]["fields"][name], serial["fields"][name], err_msg=name
            )
        assert results[0]["max_w"] == pytest.approx(serial["max_w"], rel=1e-12)


class TestAccounting:
    def test_tend_kernels_radius2(self):
        ctx = OpsContext()
        run_miniweather(ctx, (16, 8), 2)
        assert ctx.records["tend_x"].radius == 2
        assert ctx.records["tend_z"].radius == 2

    def test_spec(self):
        from repro.apps import build_spec, get_app

        spec = build_spec(get_app("miniweather"))
        assert spec.domain == (4000, 2000)
        assert spec.klass.value == "structured-bandwidth"
