"""Cross-application integration tests: spec sanity, tiled execution of
the real applications, and relative characteristics the paper relies on."""

import numpy as np
import pytest

from repro.apps import APP_ORDER, build_spec, get_app
from repro.apps.cloverleaf import run_cloverleaf
from repro.apps.acoustic import run_acoustic
from repro.harness.runner import app_spec
from repro.ops import OpsContext, TilePlan


class TestAllSpecs:
    @pytest.fixture(scope="class")
    def specs(self):
        return {name: app_spec(name) for name in APP_ORDER}

    def test_every_app_builds(self, specs):
        assert len(specs) == 9

    def test_paper_scale_domains(self, specs):
        assert specs["cloverleaf2d"].gridpoints == 7680**2
        assert specs["acoustic"].gridpoints == 320**3
        assert specs["volna"].gridpoints == pytest.approx(30e6, rel=0.01)
        assert specs["mgcfd"].gridpoints == pytest.approx(8e6, rel=0.01)
        assert specs["minibude"].gridpoints == 65536

    def test_precisions_match_paper(self, specs):
        """Sec. 3: single precision for miniBUDE, Acoustic, Volna;
        double for the rest."""
        singles = {"minibude", "acoustic", "volna"}
        for name, spec in specs.items():
            expected = 4 if name in singles else 8
            assert spec.dtype_bytes == expected, name

    def test_arithmetic_intensity_ordering(self, specs):
        """miniBUDE >> SN > SA, and CloverLeaf is the leanest."""

        def ai(s):
            return s.flops_per_iteration() / s.bytes_per_iteration()

        assert ai(specs["minibude"]) > 100 * ai(specs["opensbli_sn"])
        assert ai(specs["opensbli_sn"]) > ai(specs["opensbli_sa"])
        assert ai(specs["cloverleaf2d"]) < ai(specs["acoustic"])

    def test_unstructured_apps_carry_indirection(self, specs):
        for name in ("mgcfd", "volna"):
            total_ind = sum(l.indirect_per_point * l.points for l in specs[name].loops)
            assert total_ind > 0, name
        for name in ("cloverleaf2d", "acoustic"):
            total_ind = sum(l.indirect_per_point * l.points for l in specs[name].loops)
            assert total_ind == 0, name

    def test_state_bytes_plausible(self, specs):
        # CloverLeaf 2D: 17 fields x 7680^2 x 8B ~ 8 GB.
        assert 5e9 < specs["cloverleaf2d"].state_bytes < 12e9
        # Acoustic: 4 fields x 320^3 x 4B ~ 0.5 GB.
        assert 3e8 < specs["acoustic"].state_bytes < 8e8

    def test_halo_depths(self, specs):
        assert specs["acoustic"].halo_depth == 4
        assert specs["cloverleaf2d"].halo_depth == 2


class TestTiledApplications:
    """The Figure 9 transformation applied to the *actual* applications."""

    def test_cloverleaf_tiled_equals_untiled(self):
        base = run_cloverleaf(OpsContext(), (24, 24), 3, init="sod")
        ctx = OpsContext(tile=TilePlan(6))
        tiled = run_cloverleaf(ctx, (24, 24), 3, init="sod")
        ctx.flush()
        np.testing.assert_array_equal(tiled["density"], base["density"])
        np.testing.assert_array_equal(tiled["energy_field"], base["energy_field"])
        for a, b in zip(tiled["velocity"], base["velocity"]):
            np.testing.assert_array_equal(a, b)

    def test_acoustic_tiled_equals_untiled(self):
        base = run_acoustic(OpsContext(), (16, 16, 16), 3)
        ctx = OpsContext(tile=TilePlan(5))
        tiled = run_acoustic(ctx, (16, 16, 16), 3)
        ctx.flush()
        np.testing.assert_array_equal(tiled["field"], base["field"])


class TestDefinitions:
    def test_registry_complete_and_ordered(self):
        from repro.apps import all_apps

        assert [d.name for d in all_apps()] == APP_ORDER

    def test_unknown_app_raises(self):
        with pytest.raises(KeyError, match="unknown"):
            get_app("hpl")

    def test_build_spec_accepts_custom_size(self):
        spec = build_spec(get_app("miniweather"), domain=(20, 10), iterations=2)
        assert spec.domain == (4000, 2000)  # still extrapolated to paper scale
