"""Physics and accounting tests for the CloverLeaf reimplementation."""

import numpy as np
import pytest

from repro.apps.cloverleaf import run_cloverleaf
from repro.ops import OpsContext
from repro.simmpi import CartGrid, World


class TestUniformState:
    """A uniform quiescent gas is an exact fixed point of the cycle."""

    @pytest.fixture(scope="class")
    def result(self):
        ctx = OpsContext()
        return run_cloverleaf(ctx, (20, 20), 4, init="uniform"), ctx

    def test_density_unchanged(self, result):
        d, _ = result
        assert d["density"].min() == d["density"].max() == 1.0

    def test_energy_unchanged(self, result):
        d, _ = result
        np.testing.assert_array_equal(d["energy_field"], 1.0)

    def test_velocity_stays_zero(self, result):
        d, _ = result
        for v in d["velocity"]:
            np.testing.assert_array_equal(v, 0.0)

    def test_dt_positive_and_stable(self, result):
        d, _ = result
        assert all(t > 0 for t in d["dt"])


class TestSodProblem:
    @pytest.fixture(scope="class")
    def result(self):
        return run_cloverleaf(OpsContext(), (32, 16), 8, init="sod")

    def test_mass_conserved_exactly(self, result):
        # Closed box with zeroed boundary fluxes: exact to rounding.
        assert result["mass"] == pytest.approx(32 * 16, rel=1e-13)

    def test_density_positive(self, result):
        assert result["density"].min() > 0.0

    def test_flow_toward_low_pressure(self, result):
        """Energy (hence pressure) is higher in the left half; the x
        velocity in the transition region must be positive (rightward)."""
        vx = result["velocity"][0]
        mid = vx[14:18, :]
        assert mid.mean() > 0.0

    def test_energy_transported(self, result):
        e = result["energy_field"]
        assert e[:16, :].mean() < 2.5  # left half lost energy
        assert e[16:, :].mean() > 1.0  # right half gained

    def test_transverse_symmetry(self, result):
        """The Sod setup is uniform along y: the solution must stay so."""
        rho = result["density"]
        assert np.allclose(rho, rho[:, :1], rtol=1e-12)


class TestCloverLeaf3D:
    def test_uniform_3d(self):
        d = run_cloverleaf(OpsContext(), (10, 10, 10), 2, init="uniform")
        np.testing.assert_array_equal(d["density"], 1.0)
        for v in d["velocity"]:
            np.testing.assert_array_equal(v, 0.0)

    def test_sod_3d_mass_conserved(self):
        d = run_cloverleaf(OpsContext(), (12, 8, 8), 4, init="sod")
        assert d["mass"] == pytest.approx(12 * 8 * 8, rel=1e-13)

    def test_rejects_1d(self):
        with pytest.raises(ValueError, match="2 or 3"):
            run_cloverleaf(OpsContext(), (10,), 1)

    def test_rejects_unknown_init(self):
        with pytest.raises(ValueError, match="unknown init"):
            run_cloverleaf(OpsContext(), (8, 8), 1, init="bomb")


class TestDistributed:
    @pytest.mark.parametrize("dims", [(2, 2), (4, 1)])
    def test_2d_distributed_equals_serial(self, dims):
        serial = run_cloverleaf(OpsContext(), (24, 24), 3, init="sod")

        def program(comm):
            ctx = OpsContext(comm=comm, grid=CartGrid(dims))
            return run_cloverleaf(ctx, (24, 24), 3, init="sod")

        results = World(dims[0] * dims[1]).run(program)
        np.testing.assert_array_equal(results[0]["density"], serial["density"])
        np.testing.assert_array_equal(results[0]["velocity"][0], serial["velocity"][0])
        for r in results:
            assert r["mass"] == pytest.approx(serial["mass"], rel=1e-12)

    def test_3d_distributed_equals_serial(self):
        serial = run_cloverleaf(OpsContext(), (12, 12, 12), 2, init="sod")

        def program(comm):
            ctx = OpsContext(comm=comm, grid=CartGrid((2, 2, 2)))
            return run_cloverleaf(ctx, (12, 12, 12), 2, init="sod")

        results = World(8).run(program)
        np.testing.assert_array_equal(results[0]["density"], serial["density"])


class TestAccounting:
    def test_loop_structure(self):
        ctx = OpsContext()
        run_cloverleaf(ctx, (16, 16), 2, init="uniform")
        names = set(ctx.records)
        # The hydro cycle's major kernels are all present.
        for expected in ("ideal_gas", "viscosity", "calc_dt", "pdv",
                         "accelerate_0", "flux_calc_0", "advec_cell_flux_0",
                         "advec_cell_update_1", "advec_mom_update_1_1",
                         "reset_density0", "field_summary"):
            assert expected in names, expected
        # Plenty of small boundary kernels (the SYCL-hurting pattern).
        bc = [n for n in names if n.startswith("update_halo")]
        assert len(bc) > 50

    def test_bulk_exchange_rate_realistic(self):
        ctx = OpsContext()
        iters = 3
        run_cloverleaf(ctx, (16, 16), iters, init="uniform")
        per_iter = ctx.halo_exchange_count / iters
        assert 5 <= per_iter <= 30

    def test_spec_scaling(self):
        from repro.apps import build_spec, get_app

        spec = build_spec(get_app("cloverleaf2d"))
        assert spec.domain == (7680, 7680)
        assert spec.iterations == 50
        # Bulk kernels dominate the traffic.
        total = sum(l.bytes_total for l in spec.loops)
        bulk = sum(l.bytes_total for l in spec.loops if l.points > 1e6)
        assert bulk / total > 0.9
        assert spec.dtype_bytes == 8


class TestVanLeerAdvection:
    """CloverLeaf's second-order limited advection (radius-2 reads)."""

    def test_uniform_still_fixed_point(self):
        d = run_cloverleaf(OpsContext(), (16, 16), 3, init="uniform",
                           advection="vanleer")
        np.testing.assert_array_equal(d["density"], 1.0)

    def test_mass_still_exact(self):
        d = run_cloverleaf(OpsContext(), (24, 12), 6, init="sod",
                           advection="vanleer")
        assert d["mass"] == pytest.approx(24 * 12, rel=1e-13)

    def test_differs_from_donor_cell(self):
        # The Sod deck jumps in energy (density starts uniform), so the
        # second-order reconstruction shows up in the energy field first.
        vl = run_cloverleaf(OpsContext(), (32, 8), 8, init="sod", advection="vanleer")
        dc = run_cloverleaf(OpsContext(), (32, 8), 8, init="sod", advection="donor")
        assert not np.allclose(vl["energy_field"], dc["energy_field"])

    def test_less_diffusive_than_donor(self):
        """The limited scheme preserves the energy contrast better."""
        vl = run_cloverleaf(OpsContext(), (32, 8), 10, init="sod", advection="vanleer")
        dc = run_cloverleaf(OpsContext(), (32, 8), 10, init="sod", advection="donor")
        contrast_vl = vl["energy_field"].max() - vl["energy_field"].min()
        contrast_dc = dc["energy_field"].max() - dc["energy_field"].min()
        assert contrast_vl >= contrast_dc

    def test_radius2_recorded(self):
        ctx = OpsContext()
        run_cloverleaf(ctx, (16, 16), 2, advection="vanleer")
        assert ctx.records["advec_cell_flux_0"].radius == 2

    def test_rejects_unknown_scheme(self):
        with pytest.raises(ValueError, match="advection"):
            run_cloverleaf(OpsContext(), (8, 8), 1, advection="weno")

    def test_vanleer_tiled_equals_untiled(self):
        base = run_cloverleaf(OpsContext(), (20, 20), 2, init="sod")
        from repro.ops import TilePlan

        ctx = OpsContext(tile=TilePlan(7))
        tiled = run_cloverleaf(ctx, (20, 20), 2, init="sod")
        ctx.flush()
        np.testing.assert_array_equal(tiled["density"], base["density"])
