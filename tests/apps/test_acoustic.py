"""Tests for the 8th-order acoustic wave solver."""

import numpy as np
import pytest

from repro.apps.acoustic import LAPLACIAN_COEFFS, run_acoustic
from repro.ops import OpsContext
from repro.simmpi import CartGrid, World


class TestStencilCoefficients:
    def test_sum_to_zero(self):
        """A second-derivative stencil must annihilate constants."""
        c0, c1, c2, c3, c4 = LAPLACIAN_COEFFS
        assert c0 + 2 * (c1 + c2 + c3 + c4) == pytest.approx(0.0, abs=1e-14)

    def test_second_moment(self):
        """Sum of k^2 * c_k must equal 2 (d2/dx2 of x^2/2 = 1)."""
        _, c1, c2, c3, c4 = LAPLACIAN_COEFFS
        m2 = 2 * sum(k * k * c for k, c in zip((1, 2, 3, 4), (c1, c2, c3, c4)))
        assert m2 == pytest.approx(2.0, abs=1e-12)

    def test_fourth_moment_vanishes(self):
        """High-order accuracy: sum k^4 c_k = 0."""
        _, c1, c2, c3, c4 = LAPLACIAN_COEFFS
        m4 = 2 * sum(k**4 * c for k, c in zip((1, 2, 3, 4), (c1, c2, c3, c4)))
        assert m4 == pytest.approx(0.0, abs=1e-10)


class TestWavePhysics:
    def test_zero_field_is_fixed_point(self):
        d = run_acoustic(OpsContext(), (16, 16, 16), 3, source="none")
        np.testing.assert_array_equal(d["field"], 0.0)
        assert all(a == 0.0 for a in d["amplitude"])

    @pytest.fixture(scope="class")
    def point_result(self):
        # Odd size: the source cell sits exactly at the center.
        return run_acoustic(OpsContext(), (21, 21, 21), 6)

    def test_wave_propagates(self, point_result):
        """The wavefront must leave the source cell."""
        f = np.abs(point_result["field"])
        c = 10
        ring = f[c - 4, c, c] + f[c + 4, c, c] + f[c, c - 4, c] + f[c, c + 4, c]
        assert ring > 0.0

    def test_xy_symmetry(self, point_result):
        """Velocity varies only in z: x<->y swap is an exact symmetry."""
        f = point_result["field"]
        np.testing.assert_allclose(f, f.transpose(1, 0, 2), atol=1e-5)

    def test_x_reflection_symmetry(self, point_result):
        f = point_result["field"]
        np.testing.assert_allclose(f, f[::-1, :, :], atol=1e-5)

    def test_amplitude_bounded_at_cfl(self, point_result):
        """Leapfrog at CFL 0.4 < 1/sqrt(3): no blowup."""
        amps = point_result["amplitude"]
        assert max(amps) < 10.0

    def test_unstable_above_cfl_limit(self):
        """Past the 3-D leapfrog stability limit the scheme must blow up —
        evidence the update really is the wave operator."""
        d = run_acoustic(OpsContext(), (12, 12, 12), 30, cfl=1.8)
        assert max(d["amplitude"]) > 1e3

    def test_rejects_2d(self):
        with pytest.raises(ValueError, match="3-D"):
            run_acoustic(OpsContext(), (16, 16), 1)


class TestDistributed:
    def test_distributed_equals_serial(self):
        serial = run_acoustic(OpsContext(), (16, 16, 16), 3)

        def program(comm):
            ctx = OpsContext(comm=comm, grid=CartGrid((2, 2, 1)))
            return run_acoustic(ctx, (16, 16, 16), 3)

        results = World(4).run(program)
        np.testing.assert_array_equal(results[0]["field"], serial["field"])


class TestAccounting:
    def test_radius_4_recorded(self):
        ctx = OpsContext()
        run_acoustic(ctx, (16, 16, 16), 2)
        rec = ctx.records["wave_update"]
        assert rec.radius == 4
        assert rec.dtype_bytes == 4  # single precision

    def test_spec_is_compute_heavier_than_clover(self):
        """Acoustic has a much higher flop/byte ratio than CloverLeaf —
        the property behind its lower Figure 8 efficiency."""
        from repro.apps import build_spec, get_app

        ac = build_spec(get_app("acoustic"))
        cl = build_spec(get_app("cloverleaf2d"))
        ai_ac = ac.flops_per_iteration() / ac.bytes_per_iteration()
        ai_cl = cl.flops_per_iteration() / cl.bytes_per_iteration()
        assert ai_ac > 2 * ai_cl


class TestWaveSpeed:
    def test_1d_pulse_travels_at_c(self):
        """Launch a plane pulse along x in a homogeneous medium and track
        its crest: after k steps it must have moved ~ c*dt*k/dx cells."""
        n = 48
        ctx = OpsContext()
        # Homogeneous medium: run with no source, inject a plane wave by
        # hand through the returned dt and a custom initial condition is
        # not exposed — instead use the point source and measure the
        # radial arrival time at a probe.
        d = run_acoustic(ctx, (n, n, n), 14, cfl=0.45)
        field = np.abs(d["field"])
        c0 = n // 2
        # Radius where the wavefront sits: strongest |u| ring distance.
        profile = field[c0:, c0, c0]
        front = int(np.argmax(profile[2:]) + 2)  # skip the source cell
        dt = d["dt"]
        dx = 1.0 / n
        expected_cells = 14 * dt * 1.0 / dx  # c = 1 in the upper layers
        # The crest trails the leading edge; allow a wide but bounded band.
        assert 0.4 * expected_cells <= front <= 1.6 * expected_cells
