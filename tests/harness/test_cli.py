"""Tests for the ``python -m repro`` command-line interface."""

import pytest

from repro.__main__ import main


class TestList:
    def test_lists_apps_and_platforms(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "cloverleaf2d" in out
        assert "max9480" in out
        assert "minibude" in out


class TestRun:
    def test_single_platform(self, capsys):
        assert main(["run", "miniweather"]) == 0
        out = capsys.readouterr().out
        assert "max9480" in out
        assert "effBW" in out

    def test_compare(self, capsys):
        assert main(["run", "minibude", "--compare"]) == 0
        out = capsys.readouterr().out
        for p in ("max9480", "icx8360y", "epyc7v73x", "a100"):
            assert p in out

    def test_unknown_app_rejected(self, capsys):
        assert main(["run", "linpack"]) == 2
        err = capsys.readouterr().err
        assert "unknown application" in err
        assert "cloverleaf2d" in err  # lists the valid choices

    def test_unknown_platform_rejected(self, capsys):
        assert main(["run", "miniweather", "--platform", "cray1"]) == 2
        err = capsys.readouterr().err
        assert "unknown platform" in err
        assert "max9480" in err  # lists the valid choices

    def test_prefix_resolves(self, capsys):
        assert main(["run", "miniw"]) == 0
        assert "max9480" in capsys.readouterr().out

    def test_ambiguous_prefix_takes_first_with_note(self, capsys):
        assert main(["run", "cloverleaf"]) == 0
        captured = capsys.readouterr()
        assert "ambiguous" in captured.err
        assert "cloverleaf2d" in captured.err


class TestFigures:
    def test_single_figure(self, capsys):
        assert main(["figures", "fig2"]) == 0
        out = capsys.readouterr().out
        assert "fig2" in out
        assert "cross-socket" in out

    def test_unknown_figure(self, capsys):
        assert main(["figures", "fig99"]) == 2


class TestSweep:
    def test_single_app_sweep(self, capsys):
        assert main(["sweep", "miniweather", "--platform", "max9480"]) == 0
        out = capsys.readouterr().out
        assert "miniweather" in out
        assert "max9480" in out
        assert "engine:" in out  # metrics summary printed
        assert "MPI+OpenMP" in out

    def test_parallel_no_cache_sweep(self, capsys):
        assert main(["sweep", "miniweather", "--platform", "max9480",
                     "--jobs", "2", "--no-cache"]) == 0
        out = capsys.readouterr().out
        assert "0 cached" in out

    def test_multi_platform_sweep(self, capsys):
        assert main(["sweep", "minibude", "--platform",
                     "max9480,epyc7v73x"]) == 0
        out = capsys.readouterr().out
        assert "epyc7v73x" in out
        # miniBUDE + Classic stalls: planned as infeasible, not run.
        assert "planned-infeasible" in out

    def test_unknown_platform_rejected(self, capsys):
        assert main(["sweep", "miniweather", "--platform", "cray1"]) == 2
        err = capsys.readouterr().err
        assert "unknown platform" in err
        assert "max9480" in err

    def test_unknown_app_rejected(self, capsys):
        assert main(["sweep", "linpack"]) == 2
        assert "unknown application" in capsys.readouterr().err


class TestFiguresEngineFlags:
    def test_figures_accepts_jobs_and_no_cache(self, capsys):
        assert main(["figures", "fig2", "--jobs", "2", "--no-cache"]) == 0
        assert "fig2" in capsys.readouterr().out


class TestValidate:
    def test_validate_runs_numerics(self, capsys):
        assert main(["validate", "volna"]) == 0
        out = capsys.readouterr().out
        assert "volume" in out
        assert "loops:" in out
