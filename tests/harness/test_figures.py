"""Smoke/structure tests for the lighter figure generators.

(The heavyweight shape assertions live in ``benchmarks/``; these tests
cover the generator plumbing itself: columns, row counts, and that paper
reference values are attached where expected.)
"""

import pytest

from repro.harness import fig1, fig2
from repro.harness.figures import _config_matrix
from repro.machine import XEON_MAX_9480, structured_config_sweep


class TestFig1Structure:
    @pytest.fixture(scope="class")
    def f1(self):
        return fig1()

    def test_columns(self, f1):
        assert f1.columns == ("platform", "scope", "model GB/s", "paper GB/s")

    def test_five_node_rows_with_paper_values(self, f1):
        node_rows = [r for r in f1.rows if r[1] == "node"]
        assert len(node_rows) == 5
        assert all(r[3] is not None for r in node_rows)

    def test_scope_rows_present(self, f1):
        assert any(r[1] == "numa" for r in f1.rows)
        assert any(r[1] == "socket" for r in f1.rows)

    def test_cache_ratio_notes(self, f1):
        assert sum("cache:memory" in n for n in f1.notes) == 3

    def test_optional_size_sweep(self):
        import numpy as np

        f = fig1(sizes=np.array([2**20, 2**24]))
        assert sum("n=" in n for n in f.notes) == 2


class TestFig2Structure:
    def test_rows_per_platform(self):
        f2 = fig2()
        by_platform = {}
        for r in f2.rows:
            by_platform.setdefault(r[0], []).append(r[1])
        assert len(by_platform["max9480"]) == 4  # smt/adjacent/numa/socket
        assert len(by_platform["icx8360y"]) == 3
        assert len(by_platform["epyc7v73x"]) == 3

    def test_latencies_in_nanoseconds(self):
        f2 = fig2()
        for r in f2.rows:
            assert 1.0 < r[2] < 1000.0  # sane ns range


class TestConfigMatrix:
    def test_normalized_to_best(self):
        table, rows = _config_matrix(
            ["miniweather"], XEON_MAX_9480, structured_config_sweep
        )
        vals = [r[1] for r in table if r[1] is not None]
        assert min(vals) == pytest.approx(1.0)
        assert all(v >= 1.0 for v in vals)

    def test_sorted_by_mean(self):
        table, _ = _config_matrix(
            ["miniweather"], XEON_MAX_9480, structured_config_sweep
        )
        means = [r[1] for r in table if r[1] is not None]
        assert means == sorted(means)


class TestFig7xStructure:
    @pytest.fixture(scope="class")
    def f7x(self):
        from repro.harness import fig7x

        # Two node counts keep the smoke test fast; the default study
        # sweeps (16, 32, 64, 96).
        return fig7x(node_counts=(16, 32))

    def test_columns(self, f7x):
        assert f7x.columns == ("app", "platform", "nodes", "ranks",
                               "MPI %", "efficiency")
        assert f7x.figure == "fig7x"

    def test_row_count(self, f7x):
        # 2 apps x 2 platforms x 2 node counts.
        assert len(f7x.rows) == 8

    def test_efficiency_and_mpi_bounds(self, f7x):
        for r in f7x.rows:
            assert 0.0 < r[5] <= 1.0 + 1e-9
            assert 0.0 < r[4] < 100.0
            assert r[3] >= r[2]  # ranks >= nodes

    def test_bottleneck_shift_across_platforms(self, f7x):
        """At equal node count the Xeon MAX spends a larger MPI share
        than the 8360Y — the paper's Sec. 6 story at cluster scale."""
        by = {(r[0], r[1], r[2]): r[4] for r in f7x.rows}
        for app in ("cloverleaf3d", "miniweather"):
            for nodes in (16, 32):
                assert by[(app, "max9480", nodes)] > by[(app, "icx8360y", nodes)]

    def test_in_all_figures_not_in_fidelity(self):
        import repro.harness.figures as figmod
        from repro.obs.fidelity import FIGURE_ORDER

        assert "fig7x" not in FIGURE_ORDER
        assert "fig7x" in figmod.__all__
