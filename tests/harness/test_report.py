"""Tests for the table renderer and FigureResult container."""

import pytest

from repro.harness.report import FigureResult, format_table


class TestFormatTable:
    def test_alignment_and_separator(self):
        out = format_table(("name", "value"), [("abc", 1.5), ("d", 22.0)])
        lines = out.split("\n")
        assert lines[0].startswith("name")
        assert set(lines[1]) <= {"-", " "}
        assert len(lines) == 4

    def test_none_rendered_as_dash(self):
        out = format_table(("a",), [(None,)])
        assert out.split("\n")[2] == "-"

    def test_float_formats(self):
        out = format_table(("v",), [(1234.5,), (42.123,), (1.23456,), (0.0,)])
        body = out.split("\n")[2:]
        assert body[0].strip() == "1234"  # >= 1000: integer
        assert body[1].strip() == "42.1"  # >= 10: one decimal
        assert body[2].strip() == "1.23"  # 3 significant digits
        assert body[3].strip() == "0"

    def test_empty_rows(self):
        out = format_table(("x", "y"), [])
        assert "x" in out


class TestFigureResult:
    def make(self):
        return FigureResult(
            "figX", "demo", ("app", "val"),
            rows=[("a", 1.0), ("b", 2.0)],
            notes=["hello"],
        )

    def test_render_contains_everything(self):
        text = self.make().render()
        assert "== figX: demo ==" in text
        assert "note: hello" in text
        assert "a" in text and "b" in text

    def test_column(self):
        assert self.make().column("val") == [1.0, 2.0]
        with pytest.raises(ValueError):
            self.make().column("nope")

    def test_row_map(self):
        m = self.make().row_map()
        assert m["a"] == ("a", 1.0)


class TestCsvExport:
    def test_to_csv_roundtrips(self):
        import csv
        import io

        fig = FigureResult("f", "t", ("a", "b"), rows=[("x", 1.5), ("y", None)])
        text = fig.to_csv()
        rows = list(csv.reader(io.StringIO(text)))
        assert rows[0] == ["a", "b"]
        assert rows[1] == ["x", "1.5"]
        assert rows[2] == ["y", ""]  # None -> empty field
