"""Tests for the benchmark runner (spec caching, sweeps, best-run)."""

import pytest

from repro.harness.runner import app_spec, best_run, clear_cache, run_application, sweep
from repro.machine import (
    XEON_MAX_9480,
    Compiler,
    Parallelization,
    RunConfig,
    structured_config_sweep,
)


class TestSpecCache:
    def test_cached_identity(self):
        a = app_spec("cloverleaf2d")
        b = app_spec("cloverleaf2d")
        assert a is b

    def test_clear_cache(self):
        a = app_spec("cloverleaf2d")
        clear_cache()
        b = app_spec("cloverleaf2d")
        assert a is not b

    def test_unknown_app(self):
        with pytest.raises(KeyError, match="unknown application"):
            app_spec("doom")

    def test_spec_has_paper_scale(self):
        spec = app_spec("cloverleaf2d")
        assert spec.domain == (7680, 7680)
        assert spec.iterations == 50
        assert spec.state_bytes > 1e9  # ~17 fields x 472 MB


class TestRunAndSweep:
    def test_run_application(self):
        cfg = RunConfig(Compiler.ONEAPI, Parallelization.MPI)
        est = run_application("miniweather", XEON_MAX_9480, cfg)
        assert est.total_time > 0
        assert est.platform == "max9480"
        assert est.app == "miniweather"

    def test_sweep_covers_all_configs(self):
        cfgs = structured_config_sweep(XEON_MAX_9480)
        runs = sweep("miniweather", XEON_MAX_9480, cfgs)
        assert len(runs) == len(cfgs)
        assert all(e is not None for _, e in runs)

    def test_sweep_marks_stalling_compiler_none(self):
        cfgs = [RunConfig(Compiler.CLASSIC, Parallelization.MPI),
                RunConfig(Compiler.ONEAPI, Parallelization.MPI)]
        runs = dict(sweep("minibude", XEON_MAX_9480, cfgs))
        assert runs[cfgs[0]] is None
        assert runs[cfgs[1]] is not None

    def test_best_run_is_minimum(self):
        cfgs = structured_config_sweep(XEON_MAX_9480)
        best_cfg, best_est = best_run("miniweather", XEON_MAX_9480, cfgs)
        for cfg, est in sweep("miniweather", XEON_MAX_9480, cfgs):
            if est is not None:
                assert best_est.total_time <= est.total_time

    def test_best_run_no_feasible_raises(self):
        with pytest.raises(ValueError, match="no feasible"):
            best_run("minibude", XEON_MAX_9480,
                     [RunConfig(Compiler.CLASSIC, Parallelization.MPI)])
