"""Suite-wide fixtures: keep the sweep engine hermetic.

The engine's result store is persistent by default (``~/.cache/repro``).
Tests must neither read a developer's warm cache nor leave entries
behind, so the whole session runs against a temp-dir store and a fresh
default engine.
"""

from __future__ import annotations

import pytest


@pytest.fixture(scope="session", autouse=True)
def _hermetic_engine(tmp_path_factory):
    import os

    from repro.engine import reset_engine

    old = os.environ.get("REPRO_CACHE_DIR")
    os.environ["REPRO_CACHE_DIR"] = str(tmp_path_factory.mktemp("engine-cache"))
    reset_engine()
    yield
    if old is None:
        os.environ.pop("REPRO_CACHE_DIR", None)
    else:
        os.environ["REPRO_CACHE_DIR"] = old
    reset_engine()
