"""Engine integration of the vectorized path: routing, counters, flags.

What must hold (``docs/VECTOR.md`` "When the scalar fallback is used"):
cold plans run as one batch through ``evaluate_batch`` by default;
only ``REPRO_NO_VEC`` / ``--no-vec`` / ``vectorize=False`` route them
through the classic per-job path — an active tracer or session metrics
registry stays on the vectorized path, which synthesizes the scalar
span/metric taxonomy; warm plans are served from the store without new
batches; and both paths produce identical results and identical pinned
metrics.
"""

import json

import pytest

from repro.engine.core import SweepEngine
from repro.engine.jobs import build_plan
from repro.machine import get_platform
from repro.obs.metrics import MetricsRegistry, collecting
from repro.obs.tracer import Tracer, tracing

APPS = ["cloverleaf2d", "mgcfd"]


def _plan():
    return build_plan(APPS, [get_platform("max9480")])


@pytest.fixture
def engine(tmp_path):
    return SweepEngine(cache_dir=tmp_path)


class TestRouting:
    def test_cold_plan_is_one_batch(self, engine):
        plan = _plan()
        results = engine.run_plan(plan)
        assert engine.last_evaluator == "vectorized"
        assert engine.metrics.vec_batches == 1
        assert engine.metrics.vec_jobs == len(plan.jobs)
        ok = [r for r in results if r.status == "ok"]
        assert len(ok) == len(plan.jobs)

    def test_warm_plan_adds_no_batches(self, engine):
        plan = _plan()
        engine.run_plan(plan)
        results = engine.run_plan(plan)
        assert engine.metrics.vec_batches == 1  # unchanged
        assert all(r.status in ("cached", "skipped") for r in results)
        assert engine.metrics.cache_hits == len(plan.jobs)

    def test_no_vec_env_forces_scalar(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_NO_VEC", "1")
        engine = SweepEngine(cache_dir=tmp_path)
        engine.run_plan(_plan())
        assert engine.last_evaluator == "scalar"
        assert engine.metrics.vec_batches == 0

    def test_tracer_stays_vectorized(self, engine):
        plan = _plan()
        with tracing(Tracer()) as tr:
            engine.run_plan(plan)
        assert engine.last_evaluator == "vectorized"
        assert engine.metrics.vec_batches == 1
        # The batched evaluator records its own stage spans and the
        # engine synthesizes one job span per batched job.
        assert tr.spans_of("vec"), "vec stage spans missing"
        jobs = tr.spans_of("engine")
        assert len(jobs) == len(plan.jobs)
        assert {s.attrs["status"] for s in jobs} == {"ok"}
        # The scalar perfmodel event taxonomy survives batching.
        assert tr.events_of("perfmodel")

    def test_session_metrics_stay_vectorized(self, engine):
        with collecting(MetricsRegistry()) as reg:
            engine.run_plan(_plan())
        assert engine.last_evaluator == "vectorized"
        assert engine.metrics.vec_batches == 1
        # Synthesized per-job attribution plus the batch families.
        assert reg.total("perfmodel_loops_total") > 0
        assert reg.total("perfmodel_estimates_total") > 0
        assert reg.total("mem_hierarchy_lookups_total") > 0
        assert reg.histogram("vec_batch_jobs").count == 1
        assert reg.histogram("vec_lower_seconds",
                             platform="max9480").count == 1
        assert reg.histogram("vec_eval_seconds",
                             platform="max9480").count == 1


class TestEquivalenceThroughEngine:
    def test_both_paths_same_results_and_counters(self, tmp_path):
        plan_a, plan_b = _plan(), _plan()
        vec_engine = SweepEngine(cache_dir=tmp_path / "a", vectorize=True)
        scalar_engine = SweepEngine(cache_dir=tmp_path / "b", vectorize=False)
        ra = vec_engine.run_plan(plan_a)
        rb = scalar_engine.run_plan(plan_b)
        assert [r.status for r in ra] == [r.status for r in rb]
        assert [r.estimate for r in ra] == [r.estimate for r in rb]
        # Identical pinned metrics shape and counts (timings aside).
        da = vec_engine.metrics.as_dict()
        db = scalar_engine.metrics.as_dict()
        assert set(da) == set(db) and len(da) == 11
        for key in ("evaluations", "cache_hits", "cache_misses",
                    "jobs_executed", "jobs_skipped", "jobs_failed"):
            assert da[key] == db[key], key

    def test_store_bytes_identical(self, tmp_path):
        """The persisted records are byte-identical either way — the
        store contract the golden baseline pins."""
        vec_engine = SweepEngine(cache_dir=tmp_path / "a", vectorize=True)
        scalar_engine = SweepEngine(cache_dir=tmp_path / "b", vectorize=False)
        vec_engine.run_plan(_plan())
        scalar_engine.run_plan(_plan())
        log_a = (tmp_path / "a" / "results.jsonl").read_bytes()
        log_b = (tmp_path / "b" / "results.jsonl").read_bytes()
        assert log_a and log_a == log_b


class TestCliSurface:
    def test_sweep_json_reports_evaluator(self, capsys):
        from repro.__main__ import main as cli_main
        from repro.engine import reset_engine

        try:
            rc = cli_main(["sweep", "mgcfd", "--platform", "max9480",
                           "--no-cache", "--json"])
            assert rc == 0
            assert json.loads(capsys.readouterr().out)["evaluator"] == \
                "vectorized"
            rc = cli_main(["sweep", "mgcfd", "--platform", "max9480",
                           "--no-cache", "--no-vec", "--json"])
            assert rc == 0
            assert json.loads(capsys.readouterr().out)["evaluator"] == \
                "scalar"
        finally:
            reset_engine()  # the verbs configure the process default
