"""Layering purity around the vectorized evaluator.

``repro.vec`` sits between the model layer and the execution layer: the
engine calls *down* into it, never the other way.  And the pure model
layers (``perfmodel``, ``ir``) must know about neither the engine nor
the vectorized evaluator — the scalar model stays the single source of
truth the array IR is lowered *from*.
"""

import ast
from pathlib import Path

import pytest

SRC = Path(__file__).resolve().parents[2] / "src" / "repro"


def _imported_modules(path: Path) -> set[str]:
    """Every module name a file imports, with relative imports resolved
    against its package (``from ..engine import x`` -> ``repro.engine``)."""
    tree = ast.parse(path.read_text())
    pkg_parts = path.relative_to(SRC.parent).parts[:-1]  # drop filename
    out: set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            out.update(alias.name for alias in node.names)
        elif isinstance(node, ast.ImportFrom):
            if node.level:
                base = pkg_parts[: len(pkg_parts) - node.level + 1]
                mod = ".".join(base + ((node.module,) if node.module else ()))
            else:
                mod = node.module or ""
            out.add(mod)
            # `from repro import engine` style: count the bound names too.
            out.update(f"{mod}.{alias.name}" for alias in node.names)
    return out


def _layer_files(*layers: str) -> list[Path]:
    files = []
    for layer in layers:
        files.extend(sorted((SRC / layer).rglob("*.py")))
    assert files
    return files


@pytest.mark.parametrize("path", _layer_files("vec"), ids=lambda p: p.name)
def test_vec_never_imports_execution_layers(path):
    imported = _imported_modules(path)
    for mod in imported:
        assert not mod.startswith("repro.engine"), (
            f"{path.name} imports {mod}: repro.vec must not depend on the "
            "engine (the engine calls down into vec)"
        )
        assert not mod.startswith("repro.serve"), (
            f"{path.name} imports {mod}: repro.vec must not depend on serve"
        )


@pytest.mark.parametrize(
    "path", _layer_files("perfmodel", "ir"), ids=lambda p: str(p.name)
)
def test_model_layers_free_of_engine_and_vec(path):
    imported = _imported_modules(path)
    for mod in imported:
        assert not mod.startswith("repro.engine"), (
            f"{path} imports {mod}: perfmodel/ir must stay engine-free"
        )
        assert not mod.startswith("repro.vec"), (
            f"{path} imports {mod}: the scalar model must not know about "
            "its vectorized mirror"
        )
