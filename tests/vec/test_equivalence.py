"""Scalar vs vectorized equivalence: exact, to the last bit and type.

The vectorized evaluator's whole contract is that it is *invisible* —
every ``AppEstimate`` it produces must equal the scalar
:func:`repro.perfmodel.roofline.estimate_app` result field-for-field,
bit-for-bit, including the int-vs-float identity of counted bytes
(``docs/VECTOR.md``).  These tests check that over the real
application x platform x config matrix and over randomized
(hypothesis-generated) kernel plans.
"""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.apps.base import all_apps, build_spec, get_app
from repro.engine.jobs import build_plan, default_configs
from repro.machine import ALL_PLATFORMS, get_platform
from repro.mem.hierarchy import HierarchyModel
from repro.perfmodel import calibration as cal
from repro.perfmodel.kernelmodel import AppClass, AppSpec, LoopSpec
from repro.perfmodel.roofline import estimate_app
from repro.vec import VecEvaluator


def assert_identical(a, b, path=""):
    """Exact recursive equality: same types (int stays int), same bits
    (no tolerance), same structure."""
    assert type(a) is type(b), f"{path}: {type(a).__name__} vs {type(b).__name__}"
    if isinstance(a, float):
        assert a == b and math.copysign(1.0, a) == math.copysign(1.0, b), (
            f"{path}: {a!r} != {b!r}"
        )
    elif isinstance(a, (int, str, bool)) or a is None:
        assert a == b, f"{path}: {a!r} != {b!r}"
    elif isinstance(a, (list, tuple)):
        assert len(a) == len(b), f"{path}: length {len(a)} vs {len(b)}"
        for i, (x, y) in enumerate(zip(a, b)):
            assert_identical(x, y, f"{path}[{i}]")
    elif hasattr(a, "__dict__"):
        for k in vars(a):
            assert_identical(getattr(a, k), getattr(b, k), f"{path}.{k}")
    else:
        assert a == b, f"{path}: {a!r} != {b!r}"


def _hierarchies(platforms):
    return {
        p.short_name: HierarchyModel(p, utilization=cal.CACHE_UTILIZATION)
        for p in platforms
    }


class TestRealApplications:
    def test_full_default_plan_matches_scalar(self):
        """Every runnable job of the full apps x platforms default plan
        evaluates identically through both paths."""
        names = [a.name for a in all_apps()]
        plan = build_plan(names, list(ALL_PLATFORMS))
        specs = {n: build_spec(get_app(n)) for n in names}
        hms = _hierarchies(ALL_PLATFORMS)
        items = [
            (specs[j.app], j.platform, j.config, hms[j.platform.short_name])
            for j in plan.jobs
        ]
        vec = VecEvaluator().evaluate_many(items)
        assert len(vec) == len(plan.jobs) > 0
        for job, got, (spec, platform, config, hm) in zip(plan.jobs, vec, items):
            assert got is not None, f"vec declined {job.label()}"
            want = estimate_app(spec, platform, config, hm)
            assert_identical(want, got, job.label())

    def test_repeat_evaluation_is_stable(self):
        """Warm caches (tables, blocks, comm memo) change nothing."""
        spec = build_spec(get_app("mgcfd"))
        platform = get_platform("max9480")
        hm = HierarchyModel(platform, utilization=cal.CACHE_UTILIZATION)
        configs = default_configs("mgcfd", platform)
        items = [(spec, platform, c, hm) for c in configs]
        ev = VecEvaluator()
        first = ev.evaluate_many(items)
        second = ev.evaluate_many(items)
        for c, a, b in zip(configs, first, second):
            assert_identical(a, b, c.label())


# ---------------------------------------------------------------------------
# randomized kernel plans

_pos = st.floats(min_value=1.0, max_value=1e9, allow_nan=False,
                 allow_infinity=False)
_small = st.floats(min_value=0.0, max_value=64.0, allow_nan=False,
                   allow_infinity=False)


@st.composite
def loop_specs(draw, index):
    bytes_pp = draw(_small)
    return LoopSpec(
        name=f"loop{index}",
        points=draw(_pos),
        bytes_per_point=bytes_pp,
        flops_per_point=draw(_small),
        radius=draw(st.integers(min_value=0, max_value=4)),
        indirect_per_point=draw(_small),
        indirect_bytes_per_point=(
            draw(st.floats(min_value=0.0, max_value=bytes_pp,
                           allow_nan=False))
            if bytes_pp > 0 else 0.0
        ),
        vectorizable=draw(st.booleans()),
        dtype_bytes=draw(st.sampled_from([4, 8])),
        streams=draw(st.integers(min_value=1, max_value=8)),
        invocations=draw(st.floats(min_value=0.25, max_value=32.0,
                                   allow_nan=False)),
    )


@st.composite
def app_specs(draw):
    nloops = draw(st.integers(min_value=1, max_value=5))
    loops = tuple(draw(loop_specs(i)) for i in range(nloops))
    ndims = draw(st.integers(min_value=1, max_value=3))
    domain = tuple(
        draw(st.integers(min_value=8, max_value=2048)) for _ in range(ndims)
    )
    return AppSpec(
        name="randapp",
        klass=draw(st.sampled_from(list(AppClass))),
        dtype_bytes=draw(st.sampled_from([4, 8])),
        iterations=draw(st.integers(min_value=1, max_value=50)),
        loops=loops,
        domain=domain,
        halo_depth=draw(st.integers(min_value=1, max_value=3)),
        fields_exchanged=draw(st.floats(min_value=0.0, max_value=8.0,
                                        allow_nan=False)),
        exchanges_per_iter=draw(st.floats(min_value=0.0, max_value=4.0,
                                          allow_nan=False)),
        reductions_per_iter=draw(st.floats(min_value=0.0, max_value=2.0,
                                           allow_nan=False)),
        state_bytes=draw(st.floats(min_value=0.0, max_value=1e12,
                                   allow_nan=False)),
        gather_hit=draw(st.one_of(
            st.none(), st.floats(min_value=0.0, max_value=1.0,
                                 allow_nan=False))),
    )


_hms = _hierarchies(ALL_PLATFORMS)


@settings(max_examples=120, deadline=None)
@given(spec=app_specs(),
       platform_i=st.integers(min_value=0, max_value=len(ALL_PLATFORMS) - 1),
       config_i=st.integers(min_value=0, max_value=200))
def test_randomized_plans_match_scalar(spec, platform_i, config_i):
    """Property: any randomized KernelPlan-shaped spec evaluates
    identically through the scalar and vectorized paths, on any
    platform, under any configuration of that platform's paper sweep."""
    platform = ALL_PLATFORMS[platform_i]
    configs = default_configs(
        "mgcfd" if not spec.klass.is_structured else "cloverleaf2d", platform
    )
    config = configs[config_i % len(configs)]
    hm = _hms[platform.short_name]
    got = VecEvaluator().evaluate_many([(spec, platform, config, hm)])[0]
    assert got is not None
    want = estimate_app(spec, platform, config, hm)
    assert_identical(want, got, f"{platform.short_name}/{config.label()}")
