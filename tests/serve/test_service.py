"""End-to-end tests of the HTTP estimation service.

One module-scoped server (ephemeral port, fresh store) backs most
tests; the back-pressure test builds its own tiny-capacity server so
saturation is deterministic.
"""

import io
import json
import threading
import urllib.error
import urllib.request
from contextlib import ExitStack, redirect_stdout

import pytest

from repro.__main__ import main as cli_main
from repro.serve import create_server
from repro.serve import metrics as serve_metrics

PAIRS = [
    ("cloverleaf2d", "max9480"),
    ("miniweather", "icx8360y"),
    ("mgcfd", "max9480"),
]


def get(url: str):
    try:
        with urllib.request.urlopen(url, timeout=120) as resp:
            return resp.status, resp.read(), dict(resp.headers)
    except urllib.error.HTTPError as err:
        return err.code, err.read(), dict(err.headers)


def post(url: str, body, *, method: str = "POST"):
    data = body if isinstance(body, bytes) else json.dumps(body).encode()
    req = urllib.request.Request(url, data=data, method=method)
    try:
        with urllib.request.urlopen(req, timeout=300) as resp:
            return resp.status, resp.read(), dict(resp.headers)
    except urllib.error.HTTPError as err:
        return err.code, err.read(), dict(err.headers)


def cli_json(argv: list[str]) -> bytes:
    """Run a CLI verb in-process and return its stdout bytes."""
    buf = io.StringIO()
    with redirect_stdout(buf):
        rc = cli_main(argv)
    assert rc in (0, 1), f"CLI {argv} exited {rc}"
    return buf.getvalue().encode()


@pytest.fixture(scope="module")
def server(tmp_path_factory):
    serve_metrics.reset()
    srv = create_server(
        port=0,
        workers=2,
        cache_dir=str(tmp_path_factory.mktemp("serve-store")),
        max_inflight=8,
        max_queue=16,
    )
    srv.run_in_thread()
    yield srv
    srv.stop()


class TestLifecycle:
    def test_healthz(self, server):
        status, body, _ = get(server.url + "/healthz")
        assert status == 200
        health = json.loads(body)
        assert health["status"] == "ok"
        assert health["store_corrupt_records"] == 0
        assert health["workers"] == 2

    def test_run_endpoint(self, server):
        status, body, headers = post(
            server.url + "/run", {"app": "cloverleaf2d", "platform": "max9480"}
        )
        assert status == 200
        assert headers["Content-Type"] == "application/json"
        payload = json.loads(body)
        assert payload["app"] == "cloverleaf2d"
        assert payload["platform"] == "max9480"
        assert payload["total_time_s"] > 0
        assert payload["estimate"]["per_loop"]

    def test_sweep_endpoint(self, server):
        status, body, _ = post(
            server.url + "/sweep",
            {"apps": ["miniweather"], "platforms": ["max9480"]},
        )
        assert status == 200
        payload = json.loads(body)
        assert payload["apps"] == ["miniweather"]
        assert payload["results"]
        assert all(r["app"] == "miniweather" for r in payload["results"])

    def test_explain_endpoint(self, server):
        status, body, _ = post(
            server.url + "/explain",
            {"app": "cloverleaf2d", "platform": "max9480",
             "vs": "icx8360y", "what_if": {"dram_bw": 2.0}},
        )
        assert status == 200
        payload = json.loads(body)
        assert payload["tree"]["name"] == "cloverleaf2d"
        assert payload["diff"]["speedup_a_over_b"] > 1  # HBM beats DDR
        assert payload["what_if"]["speedup"] >= 1

    def test_fidelity_endpoint(self, server):
        status, body, _ = get(server.url + "/fidelity?figures=fig2")
        assert status == 200
        payload = json.loads(body)
        assert list(payload["figures"]) == ["fig2"]

    def test_metrics_endpoint(self, server):
        get(server.url + "/healthz")  # ensure at least one sample
        status, body, headers = get(server.url + "/metrics")
        assert status == 200
        assert headers["Content-Type"].startswith("text/plain")
        text = body.decode()
        assert "serve_requests_total" in text
        assert "serve_request_seconds" in text

    def test_unknown_path_404(self, server):
        status, body, _ = get(server.url + "/nope")
        assert status == 404
        assert "error" in json.loads(body)

    def test_wrong_method_405_with_allow(self, server):
        status, _, headers = get(server.url + "/run")
        assert status == 405
        assert headers["Allow"] == "POST"
        status, _, headers = post(server.url + "/healthz", {})
        assert status == 405
        assert headers["Allow"] == "GET"

    def test_graceful_shutdown(self, tmp_path):
        srv = create_server(port=0, workers=1, cache_dir=str(tmp_path))
        srv.run_in_thread()
        port = srv.port
        assert get(srv.url + "/healthz")[0] == 200
        srv.stop()
        srv.stop()  # idempotent
        with pytest.raises(OSError):
            urllib.request.urlopen(
                f"http://127.0.0.1:{port}/healthz", timeout=5
            )


class TestErrorContracts:
    def test_unknown_app_400_matches_cli_message(self, server, capsys):
        status, body, _ = post(
            server.url + "/run", {"app": "linpack", "platform": "max9480"}
        )
        assert status == 400
        http_message = json.loads(body)["error"]
        assert cli_main(["run", "linpack"]) == 2
        cli_message = capsys.readouterr().err.strip()
        assert http_message == cli_message

    def test_unknown_platform_400(self, server):
        status, body, _ = post(
            server.url + "/run", {"app": "miniweather", "platform": "cray1"}
        )
        assert status == 400
        assert "unknown platform" in json.loads(body)["error"]

    def test_malformed_json_400(self, server):
        status, body, _ = post(server.url + "/run", b"{not json")
        assert status == 400
        assert "malformed JSON" in json.loads(body)["error"]

    def test_empty_body_400(self, server):
        status, body, _ = post(server.url + "/run", b"")
        assert status == 400
        assert "empty request body" in json.loads(body)["error"]

    def test_non_object_body_400(self, server):
        status, body, _ = post(server.url + "/run", b"[1, 2]")
        assert status == 400
        assert "JSON object" in json.loads(body)["error"]

    def test_bad_what_if_knob_400(self, server):
        status, body, _ = post(
            server.url + "/explain",
            {"app": "miniweather", "platform": "max9480",
             "what_if": {"warp_drive": 2.0}},
        )
        assert status == 400
        assert "what-if" in json.loads(body)["error"]


class TestByteEquivalence:
    @pytest.mark.parametrize("app,platform", PAIRS)
    def test_run_matches_cli_json(self, server, app, platform):
        _, body, _ = post(server.url + "/run",
                          {"app": app, "platform": platform})
        cli = cli_json(["run", app, "--platform", platform, "--json"])
        assert body == cli

    def test_fidelity_matches_cli_json(self, server):
        _, body, _ = get(server.url + "/fidelity?figures=fig2")
        cli = cli_json(["fidelity", "fig2", "--json"])
        assert body == cli

    def test_explain_matches_cli_json(self, server):
        _, body, _ = post(
            server.url + "/explain",
            {"app": "cloverleaf2d", "platform": "max9480", "vs": "icx8360y"},
        )
        cli = cli_json(["explain", "cloverleaf2d", "--platform", "max9480",
                        "--vs", "icx8360y", "--json"])
        assert body == cli

    def test_sweep_matches_cli_json_when_warm(self, server):
        # Sweep rows carry the cache-state-dependent status field, so
        # both surfaces must be compared over equally warm stores (the
        # CLI resolves its own store from REPRO_CACHE_DIR): warm each
        # side once, then both render identical all-"cached" rows.
        request = {"apps": ["miniweather"], "platforms": ["max9480"]}
        argv = ["sweep", "miniweather", "--platform", "max9480", "--json"]
        post(server.url + "/sweep", request)
        cli_json(argv)
        _, body, _ = post(server.url + "/sweep", request)
        assert body == cli_json(argv)


class TestCoalescing:
    def test_identical_concurrent_requests_share_one_evaluation(self, server):
        # A pair no other test touches, so it is genuinely cold here.
        request = {"app": "acoustic", "platform": "epyc7v73x"}
        before = server.state.engine.metrics.as_dict()["evaluations"]
        coalesced_before = serve_metrics.registry().total(
            "serve_coalesced_total"
        )
        n = 6
        outputs = [None] * n

        def fire(i):
            outputs[i] = post(server.url + "/run", request)

        threads = [threading.Thread(target=fire, args=(i,)) for i in range(n)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert all(status == 200 for status, _, _ in outputs)
        bodies = {body for _, body, _ in outputs}
        assert len(bodies) == 1  # every client got identical bytes
        # One evaluation per sweep point — the duplicates did not
        # re-enter the engine (coalesced riders + warm inline followers
        # add zero evaluations).
        after = server.state.engine.metrics.as_dict()["evaluations"]
        single_plan_evals = after - before
        _, again, _ = post(server.url + "/run", request)  # fully warm now
        assert server.state.engine.metrics.as_dict()["evaluations"] == after
        assert again in bodies
        assert single_plan_evals > 0
        coalesced = serve_metrics.registry().total("serve_coalesced_total")
        assert coalesced > coalesced_before


class TestBackpressure:
    def test_saturated_server_answers_429_with_retry_after(self, tmp_path):
        srv = create_server(
            port=0, workers=1, cache_dir=str(tmp_path),
            max_inflight=1, max_queue=0,
        )
        srv.run_in_thread()
        try:
            with ExitStack() as stack:
                stack.enter_context(srv.state.gate.admit())  # fill the gate
                status, body, headers = post(
                    srv.url + "/run",
                    {"app": "miniweather", "platform": "max9480"},
                )
                assert status == 429
                assert int(headers["Retry-After"]) >= 1
                payload = json.loads(body)
                assert payload["retry_after_s"] >= 1
                assert "saturated" in payload["error"]
            # Gate released: the same request is admitted again.
            status, _, _ = post(
                srv.url + "/run",
                {"app": "miniweather", "platform": "max9480"},
            )
            assert status == 200
            # Health checks bypass the gate entirely.
            with ExitStack() as stack:
                stack.enter_context(srv.state.gate.admit())
                assert get(srv.url + "/healthz")[0] == 200
        finally:
            srv.stop()


class TestMetricsIntegration:
    def test_cli_metrics_folds_in_serve_families(self, server, capsys):
        get(server.url + "/healthz")  # ensure serve counters are nonzero
        assert cli_main(["metrics", "miniweather", "--no-cache"]) == 0
        out = capsys.readouterr().out
        assert "perfmodel_loops_total" in out  # the sweep's own families
        assert "serve_requests_total" in out  # merged serve families


class TestVectorizedBatching:
    def test_merged_batch_hits_vectorized_path_once(self, tmp_path):
        """Two cold run requests landing in one batching window merge
        into one plan and that plan is evaluated as exactly one
        vectorized batch (the amortization the 5 ms window exists for)."""
        srv = create_server(
            port=0, workers=2, cache_dir=str(tmp_path),
            batch_window=0.25,
        )
        srv.run_in_thread()
        try:
            engine = srv.state.engine
            assert engine.metrics.vec_batches == 0
            from repro.machine import get_platform

            futures = [
                srv.state.batcher.submit(app, get_platform(p))
                for app, p in [("cloverleaf2d", "max9480"),
                               ("mgcfd", "max9480")]
            ]
            results = [f.result(timeout=120) for f in futures]
            assert all(est is not None for _cfg, est in results)
            assert engine.last_evaluator == "vectorized"
            assert engine.metrics.vec_batches == 1
            assert engine.metrics.vec_jobs > 0
        finally:
            srv.stop()

    def test_no_vec_server_runs_scalar(self, tmp_path):
        srv = create_server(
            port=0, workers=2, cache_dir=str(tmp_path), vectorize=False,
        )
        srv.run_in_thread()
        try:
            status, body, _ = post(
                srv.url + "/sweep",
                {"apps": ["mgcfd"], "platforms": ["max9480"]},
            )
            assert status == 200
            payload = json.loads(body)
            assert payload["evaluator"] == "scalar"
            assert srv.state.engine.metrics.vec_batches == 0
        finally:
            srv.stop()
