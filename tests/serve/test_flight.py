"""Request-scoped tracing through the serve pipeline.

What must hold (``docs/SERVE.md`` "Flight recorder"): every response
carries an ``X-Request-Id``; ``GET /debug/requests/<id>`` returns that
request's per-stage timings; N concurrent duplicates share one
evaluation yet each keeps its own flight record pointing at the shared
leader; an unknown record ID is a 404 with the standard error body;
and a tracer installed around the server sees serve, engine and vec
spans from one request — proof the context survives the batcher and
shard-pool thread hops.
"""

import json
import threading
import time
import urllib.error
import urllib.request

import pytest

from repro.obs.metrics import MetricsRegistry
from repro.obs.tracer import Tracer
from repro.serve import create_server
from repro.serve import metrics as serve_metrics
from repro.serve.flight import FlightRecorder, Inflight


def post(url: str, body):
    data = json.dumps(body).encode()
    req = urllib.request.Request(url, data=data, method="POST")
    try:
        with urllib.request.urlopen(req, timeout=300) as resp:
            return resp.status, resp.read(), dict(resp.headers)
    except urllib.error.HTTPError as err:
        return err.code, err.read(), dict(err.headers)


def get(url: str):
    try:
        with urllib.request.urlopen(url, timeout=120) as resp:
            return resp.status, resp.read(), dict(resp.headers)
    except urllib.error.HTTPError as err:
        return err.code, err.read(), dict(err.headers)


def flight_record(srv, rid: str) -> dict:
    """Fetch one flight record, tolerating the tiny window between the
    response reaching the client and the record landing in the ring."""
    deadline = time.monotonic() + 5.0
    while True:
        status, body, _ = get(srv.url + f"/debug/requests/{rid}")
        if status == 200:
            return json.loads(body)
        assert status == 404, body
        assert time.monotonic() < deadline, f"record {rid} never appeared"
        time.sleep(0.01)


@pytest.fixture(scope="module")
def observed(tmp_path_factory):
    """A server with an embedded tracer + session metrics registry —
    the configuration the bench harness's ``observed`` phase uses."""
    serve_metrics.reset()
    tracer, registry = Tracer(), MetricsRegistry()
    srv = create_server(
        port=0,
        workers=2,
        cache_dir=str(tmp_path_factory.mktemp("flight-store")),
        tracer=tracer,
        session_metrics=registry,
    )
    srv.run_in_thread()
    yield srv, tracer, registry
    srv.stop()


class TestRequestIdentity:
    def test_response_carries_request_id(self, observed):
        srv, _, _ = observed
        status, _, headers = post(
            srv.url + "/run", {"app": "mgcfd", "platform": "max9480"}
        )
        assert status == 200
        assert len(headers["X-Request-Id"]) == 12

    def test_flight_record_has_stage_timings(self, observed):
        srv, _, _ = observed
        _, _, headers = post(
            srv.url + "/run", {"app": "cloverleaf2d", "platform": "max9480"}
        )
        rid = headers["X-Request-Id"]
        record = flight_record(srv, rid)
        assert record["id"] == rid
        assert record["endpoint"] == "/run"
        assert record["status"] == 200
        assert record["duration_s"] > 0
        # A cold run touches every pipeline stage.
        for stage in ("queue_wait", "batch_window", "shard_exec",
                      "store_io"):
            assert stage in record["stages"], stage
        assert all(v >= 0 for v in record["stages"].values())

    def test_ring_listing_is_newest_first(self, observed):
        srv, _, _ = observed
        _, _, h1 = post(srv.url + "/run",
                        {"app": "mgcfd", "platform": "icx8360y"})
        flight_record(srv, h1["X-Request-Id"])  # wait for completion
        status, body, _ = get(srv.url + "/debug/requests")
        assert status == 200
        listing = json.loads(body)
        assert listing["capacity"] == 256
        assert listing["count"] == len(listing["requests"])
        ids = [r["id"] for r in listing["requests"]]
        # The listing GET itself is not yet complete; our run leads.
        assert h1["X-Request-Id"] in ids

    def test_unknown_id_is_404_with_error_body(self, observed):
        srv, _, _ = observed
        status, body, _ = get(srv.url + "/debug/requests/000000000000")
        assert status == 404
        payload = json.loads(body)
        assert set(payload) == {"error"}
        assert "000000000000" in payload["error"]

    def test_post_on_debug_is_405(self, observed):
        srv, _, _ = observed
        status, body, headers = post(srv.url + "/debug/requests", {})
        assert status == 405
        assert headers["Allow"] == "GET"
        assert "error" in json.loads(body)


class TestCoalescedIdentity:
    def test_duplicates_share_leader_yet_keep_own_records(self, observed):
        srv, _, registry = observed
        serve_metrics.reset()
        n = 6
        results: list[dict] = [None] * n
        barrier = threading.Barrier(n)

        def fire(i):
            barrier.wait()
            status, _, headers = post(
                srv.url + "/run", {"app": "volna", "platform": "max9480"}
            )
            results[i] = {"status": status, "id": headers["X-Request-Id"]}

        threads = [threading.Thread(target=fire, args=(i,)) for i in range(n)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert all(r["status"] == 200 for r in results)
        ids = {r["id"] for r in results}
        assert len(ids) == n  # every request keeps its own identity

        records = [flight_record(srv, rid) for rid in ids]
        leaders = {r["leader_id"] for r in records}
        assert len(leaders) == 1  # one evaluation answered all of them
        (leader_id,) = leaders
        assert leader_id in ids
        followers = [r for r in records if r["id"] != leader_id]
        assert followers and all(r["coalesced"] for r in followers)
        leader = next(r for r in records if r["id"] == leader_id)
        assert not leader["coalesced"]
        assert serve_metrics.registry().total("serve_coalesced_total") \
            == len(followers)

    def test_spans_cross_the_pool_threads(self, observed):
        """The ingress context reaches the batcher and the shard pool:
        one traced cold request produces serve-, engine- and vec-domain
        spans, all wall-clock, nested inside the request span."""
        srv, tracer, registry = observed
        before = len(tracer.spans)
        status, _, headers = post(
            srv.url + "/run", {"app": "acoustic", "platform": "epyc7v73x"}
        )
        assert status == 200
        rid = headers["X-Request-Id"]
        # The request span is recorded just after the response is sent;
        # wait out that window like flight_record() does.
        deadline = time.monotonic() + 5.0
        while True:
            new = tracer.spans[before:]
            req_spans = [s for s in new if s.cat == "serve"
                         and s.attrs.get("request_id") == rid]
            if req_spans or time.monotonic() >= deadline:
                break
            time.sleep(0.01)
        # Serve/engine/vec spans are wall-clock; the spec build's DSL
        # kernels also trace, on the simulated-time "ops" track.
        assert all(s.is_wall for s in new
                   if s.cat in ("serve", "engine", "vec"))
        assert len(req_spans) == 1
        req = req_spans[0]
        shard = [s for s in new if s.name == "shard_exec"]
        assert shard and all(
            req.start <= s.start and s.end <= req.end for s in shard
        )
        # Engine + vec spans recorded from pool threads nest inside the
        # shard execution — the batcher hop preserved the context.
        for cat in ("engine", "vec"):
            inner = [s for s in new if s.cat == cat]
            assert inner, f"no {cat} spans crossed the thread hops"
            assert all(req.start <= s.start and s.end <= req.end + 1e-6
                       for s in inner), cat
        # The vectorized evaluator stayed on under full observability.
        assert srv.state.engine.last_evaluator == "vectorized"
        assert registry.histogram("vec_batch_jobs") is not None


class TestRecorderUnit:
    def test_ring_is_bounded(self):
        rec = FlightRecorder(capacity=2)
        infs = [Inflight("/run", "POST") for _ in range(3)]
        for i, inf in enumerate(infs):
            rec.complete(inf, 200, 0.01 * (i + 1))
        assert len(rec) == 2
        assert rec.get(infs[0].id) is None  # aged out
        assert [r["id"] for r in rec.records()] == [infs[2].id, infs[1].id]
        # The exemplar survives ring eviction.
        assert rec.exemplars()["/run"]["id"] == infs[2].id

    def test_jsonl_dump_roundtrips(self):
        rec = FlightRecorder(capacity=4)
        inf = Inflight("/sweep", "POST")
        inf.add_stage("shard_exec", 0.25)
        inf.add_stage("shard_exec", 0.25)  # stages accumulate
        rec.complete(inf, 200, 0.6)
        lines = [json.loads(l) for l in rec.to_jsonl().splitlines()]
        assert len(lines) == 1
        assert lines[0]["stages"]["shard_exec"] == 0.5
