"""Unit tests for the serve building blocks — no HTTP server involved."""

import threading
from contextlib import ExitStack

import pytest

from repro.engine import build_plan
from repro.engine.core import SweepEngine
from repro.engine.jobs import JobResult
from repro.engine.store import ResultStore
from repro.machine import XEON_MAX_9480, XEON_8360Y
from repro.serve.backpressure import AdmissionGate, Saturated
from repro.serve.batch import BatchQueue, best_of
from repro.serve.coalesce import Coalescer
from repro.serve.lru import LRUStore, invalidate_all
from repro.serve.shard import ShardedExecutor, shard_index, shard_plan

from tests.engine.test_store import make_estimate


class TestLRUStore:
    def test_write_through_and_tier_hit(self):
        store = LRUStore(ResultStore(None), capacity=8)
        est = make_estimate()
        store.put("k1", est)
        assert store.inner.get("k1") == est  # written through
        store.inner.clear()
        assert store.get("k1") == est  # served from the tier alone

    def test_miss_populates_tier(self):
        inner = ResultStore(None)
        inner.put("k1", make_estimate())
        store = LRUStore(inner, capacity=8)
        assert store.tier_len == 0
        assert store.get("k1") is not None
        assert store.tier_len == 1

    def test_eviction_is_lru(self):
        store = LRUStore(ResultStore(None), capacity=2)
        for key in ("a", "b", "c"):
            store.put(key, make_estimate())
        assert store.tier_len == 2
        assert len(store) == 3  # backing store keeps everything
        store.inner.clear()
        assert store.get("a") is None  # evicted from the tier
        assert store.get("c") is not None

    def test_get_refreshes_recency(self):
        store = LRUStore(ResultStore(None), capacity=2)
        store.put("a", make_estimate())
        store.put("b", make_estimate())
        store.get("a")  # now most recent
        store.put("c", make_estimate())  # evicts b, not a
        store.inner.clear()
        assert store.get("a") is not None
        assert store.get("b") is None

    def test_invalidate_keeps_backing_store(self):
        store = LRUStore(ResultStore(None), capacity=8)
        store.put("k1", make_estimate())
        store.invalidate()
        assert store.tier_len == 0
        assert store.get("k1") is not None  # repopulated from inner

    def test_clear_wipes_both(self):
        store = LRUStore(ResultStore(None), capacity=8)
        store.put("k1", make_estimate())
        store.clear()
        assert store.tier_len == 0
        assert len(store) == 0

    def test_invalidate_all_reaches_live_stores(self):
        stores = [LRUStore(ResultStore(None), capacity=8) for _ in range(3)]
        for s in stores:
            s.put("k1", make_estimate())
        assert invalidate_all() >= 3
        assert all(s.tier_len == 0 for s in stores)

    def test_clear_cache_invalidates_tiers(self):
        # The harness-level cache clear must reach LRU tiers through the
        # sys.modules lookup (the serve package is imported here, so the
        # lookup finds it).
        from repro.harness import clear_cache

        store = LRUStore(ResultStore(None), capacity=8)
        store.put("k1", make_estimate())
        clear_cache()
        assert store.tier_len == 0

    def test_rejects_bad_capacity(self):
        with pytest.raises(ValueError):
            LRUStore(ResultStore(None), capacity=0)


class TestCoalescer:
    def test_sequential_calls_both_lead(self):
        calls = []
        c = Coalescer()
        r1, co1 = c.do("k", lambda: calls.append(1) or "x")
        r2, co2 = c.do("k", lambda: calls.append(2) or "x")
        assert (co1, co2) == (False, False)
        assert calls == [1, 2]

    def test_followers_share_the_leaders_result(self):
        c = Coalescer()
        release = threading.Event()
        calls = []

        def compute():
            calls.append(1)
            release.wait(5)
            return "value"

        results = []

        def request():
            results.append(c.do("k", compute))

        leader = threading.Thread(target=request)
        leader.start()
        while c.inflight == 0:  # leader underway
            pass
        followers = [threading.Thread(target=request) for _ in range(3)]
        for t in followers:
            t.start()
        release.set()
        leader.join()
        for t in followers:
            t.join()
        assert calls == [1]  # one computation total
        assert sorted(co for _, co in results) == [False, True, True, True]
        assert all(r == "value" for r, _ in results)

    def test_leader_error_propagates_to_followers(self):
        c = Coalescer()
        release = threading.Event()

        def compute():
            release.wait(5)
            raise RuntimeError("boom")

        errors = []

        def request():
            try:
                c.do("k", compute)
            except RuntimeError as exc:
                errors.append(str(exc))

        threads = [threading.Thread(target=request) for _ in range(3)]
        threads[0].start()
        while c.inflight == 0:
            pass
        for t in threads[1:]:
            t.start()
        release.set()
        for t in threads:
            t.join()
        assert errors == ["boom"] * 3

    def test_flight_is_forgotten_after_completion(self):
        c = Coalescer()
        c.do("k", lambda: 1)
        assert c.inflight == 0


class TestAdmissionGate:
    def test_admits_until_capacity_then_saturates(self):
        gate = AdmissionGate(max_inflight=2, max_queue=0)
        with ExitStack() as stack:
            stack.enter_context(gate.admit())
            stack.enter_context(gate.admit())
            assert gate.depth == 2
            with pytest.raises(Saturated) as exc:
                with gate.admit():
                    pass
            assert exc.value.retry_after >= 1
        assert gate.depth == 0

    def test_queued_stage_admits_beyond_inflight(self):
        gate = AdmissionGate(max_inflight=1, max_queue=1)
        entered = threading.Event()
        release = threading.Event()

        def hold():
            with gate.admit():
                entered.set()
                release.wait(5)

        holder = threading.Thread(target=hold)
        holder.start()
        entered.wait(5)
        # One running; a second may queue (blocks for the slot)...
        queued_done = threading.Event()

        def queued():
            with gate.admit():
                pass
            queued_done.set()

        waiter = threading.Thread(target=queued)
        waiter.start()
        while gate.depth < 2:
            pass
        # ...and a third is over capacity.
        with pytest.raises(Saturated):
            with gate.admit():
                pass
        release.set()
        holder.join()
        waiter.join()
        assert queued_done.is_set()
        assert gate.depth == 0

    def test_slot_released_after_exception(self):
        gate = AdmissionGate(max_inflight=1, max_queue=0)
        with pytest.raises(RuntimeError):
            with gate.admit():
                raise RuntimeError("inside")
        with gate.admit():  # slot was released
            pass

    def test_rejects_bad_limits(self):
        with pytest.raises(ValueError):
            AdmissionGate(max_inflight=0)
        with pytest.raises(ValueError):
            AdmissionGate(max_queue=-1)


@pytest.fixture()
def engine(tmp_path):
    return SweepEngine(store=ResultStore(tmp_path), workers=1)


class TestSharding:
    def test_shard_index_is_stable(self, engine):
        plan = build_plan(["miniweather"], [XEON_MAX_9480])
        for job in plan.jobs:
            first = shard_index(engine, job, 4)
            assert 0 <= first < 4
            assert shard_index(engine, job, 4) == first

    def test_shard_plan_partitions_every_job_once(self, engine):
        plan = build_plan(["miniweather", "mgcfd"], [XEON_MAX_9480])
        buckets = shard_plan(engine, plan, 4)
        positions = sorted(pos for b in buckets for pos, _ in b)
        assert positions == list(range(len(plan.jobs)))

    def test_sharded_results_match_serial_run(self, engine, tmp_path):
        plan = build_plan(["miniweather"], [XEON_MAX_9480, XEON_8360Y])
        sharded = ShardedExecutor(engine, shards=4).run_plan(plan)
        serial_engine = SweepEngine(
            store=ResultStore(tmp_path / "serial"), workers=1
        )
        serial = serial_engine.run_plan(build_plan(
            ["miniweather"], [XEON_MAX_9480, XEON_8360Y]
        ))
        assert [r.job.key for r in sharded] == [r.job.key for r in serial]
        assert [r.estimate for r in sharded] == [r.estimate for r in serial]

    def test_rejects_bad_shard_count(self, engine):
        with pytest.raises(ValueError):
            ShardedExecutor(engine, shards=0)


class TestBatchQueue:
    def fake_run_plan(self, captured):
        def run_plan(plan):
            captured.append(plan)
            return [
                JobResult(job, make_estimate(1.0 + i), "ok")
                for i, job in enumerate(plan.jobs)
            ]
        return run_plan

    def test_concurrent_requests_merge_pairwise(self):
        captured = []
        bq = BatchQueue(self.fake_run_plan(captured), window=0.25)
        try:
            f1 = bq.submit("miniweather", XEON_MAX_9480)
            f2 = bq.submit("mgcfd", XEON_8360Y)
            cfg1, est1 = f1.result(timeout=10)
            cfg2, est2 = f2.result(timeout=10)
        finally:
            bq.close()
        assert len(captured) == 1  # one merged flush
        pairs = {(j.app, j.platform.short_name) for j in captured[0].jobs}
        # Pair-wise union, not a cross product: no (miniweather,
        # icx8360y) or (mgcfd, max9480) jobs were dragged in.
        assert pairs == {("miniweather", "max9480"), ("mgcfd", "icx8360y")}
        assert est1.total_time <= est2.total_time or True  # both resolved
        assert cfg1 is not None and cfg2 is not None

    def test_duplicate_pairs_collapse_in_the_plan(self):
        captured = []
        bq = BatchQueue(self.fake_run_plan(captured), window=0.25)
        try:
            futures = [bq.submit("miniweather", XEON_MAX_9480) for _ in range(4)]
            results = [f.result(timeout=10) for f in futures]
        finally:
            bq.close()
        assert len(captured) == 1
        single = build_plan(["miniweather"], [XEON_MAX_9480])
        assert len(captured[0].jobs) == len(single.jobs)  # no duplication
        assert len({id(est) for _, est in results}) == 1  # same estimate out

    def test_no_feasible_configuration_rejects_only_that_future(self):
        def run_plan(plan):
            return [
                JobResult(job, make_estimate(), "ok")
                for job in plan.jobs
                if job.app != "mgcfd"
            ]

        bq = BatchQueue(run_plan, window=0.25)
        try:
            good = bq.submit("miniweather", XEON_MAX_9480)
            bad = bq.submit("mgcfd", XEON_MAX_9480)
            assert good.result(timeout=10) is not None
            with pytest.raises(ValueError, match="no feasible"):
                bad.result(timeout=10)
        finally:
            bq.close()

    def test_close_drains_pending_work(self):
        captured = []
        bq = BatchQueue(self.fake_run_plan(captured), window=5.0)
        future = bq.submit("miniweather", XEON_MAX_9480)
        bq.close()  # must flush the pending request, not drop it
        assert future.result(timeout=1) is not None


class TestBestOf:
    def test_picks_fastest_feasible(self):
        plan = build_plan(["miniweather"], [XEON_MAX_9480])
        results = [
            JobResult(job, make_estimate(10.0 - i), "ok")
            for i, job in enumerate(plan.jobs)
        ]
        cfg, est = best_of(results, "miniweather", "max9480")
        assert est.total_time == min(r.estimate.total_time for r in results)
        assert cfg == results[-1].job.config

    def test_raises_when_nothing_ran(self):
        with pytest.raises(ValueError, match="no feasible"):
            best_of([], "miniweather", "max9480")
