"""Service-level telemetry: /telemetry, /dashboard, SLO-driven /healthz.

Servers here run with ``sample_interval=0`` — the sampler exists but
its thread never starts, so every sample is an explicit
``state.sampler.tick()`` and the SLO state machine is deterministic.
"""

import json
import time
import urllib.error
import urllib.request

import pytest

from repro.serve import create_server
from repro.serve import metrics as serve_metrics


def get(url: str):
    try:
        with urllib.request.urlopen(url, timeout=120) as resp:
            return resp.status, resp.read(), dict(resp.headers)
    except urllib.error.HTTPError as err:
        return err.code, err.read(), dict(err.headers)


def post_run(base: str, app: str = "cloverleaf2d", platform: str = "max9480"):
    body = json.dumps({"app": app, "platform": platform}).encode()
    req = urllib.request.Request(
        base + "/run", data=body,
        headers={"Content-Type": "application/json"},
    )
    with urllib.request.urlopen(req, timeout=300) as resp:
        return resp.status, resp.read()


def wait_recorded(srv, timeout=10.0):
    """The handler records stage metrics and the flight record *after*
    sending the response, so a client-side return races a manual
    sampler tick; wait for the bookkeeping to land."""
    deadline = time.time() + timeout
    while time.time() < deadline:
        if srv.state.recorder.exemplars() and serve_metrics.registry(
        ).histogram("serve_stage_seconds", stage="shard_exec") is not None:
            return
        time.sleep(0.01)
    raise AssertionError("request bookkeeping never settled")


@pytest.fixture()
def server(tmp_path):
    serve_metrics.reset()
    srv = create_server(
        port=0, workers=2, cache_dir=str(tmp_path / "store"),
        sample_interval=0,
    )
    srv.run_in_thread()
    yield srv
    srv.stop()


class TestTelemetryEndpoint:
    def test_payload_families_and_slowest(self, server):
        post_run(server.url)
        wait_recorded(server)
        server.state.sampler.tick()
        status, body, headers = get(server.url + "/telemetry")
        assert status == 200
        assert headers["Content-Type"] == "application/json"
        payload = json.loads(body)
        assert payload["samples"] >= 1
        assert payload["slo"]["status"] in ("ok", "degraded", "failing")
        fams = payload["families"]
        assert "serve_requests_total" in fams
        assert "serve_request_seconds" in fams
        # Per-stage histograms ride along (queue wait, shard exec, ...).
        assert "serve_stage_seconds" in fams
        stages = {s["labels"].get("stage") for s in
                  fams["serve_stage_seconds"]["series"]}
        assert "shard_exec" in stages
        # The flight recorder's slowest-request exemplars are embedded.
        assert payload["slowest"]
        assert payload["slowest"][0]["endpoint"] == "/run"
        # Histogram series carry quantiles + bucket activity.
        series = fams["serve_request_seconds"]["series"][0]
        assert series["quantiles"]["p50"] is not None
        assert series["buckets"]["bounds"]

    def test_objectives_are_declared(self, server):
        server.state.sampler.tick()
        _, body, _ = get(server.url + "/telemetry")
        names = {o["name"] for o in json.loads(body)["slo"]["objectives"]}
        assert names == {"run-latency-p99", "error-rate", "queue-wait-p95"}


class TestDashboard:
    def test_selfcontained_html(self, server):
        post_run(server.url)
        wait_recorded(server)
        server.state.sampler.tick()
        status, body, headers = get(server.url + "/dashboard")
        assert status == 200
        assert headers["Content-Type"].startswith("text/html")
        html = body.decode()
        # Fully self-contained: no external scripts, styles, fonts or
        # CDNs — the page must render on an air-gapped box.
        assert "http://" not in html
        assert "https://" not in html
        assert "<script" in html and "<style" in html
        assert "serve_request_seconds" in html
        # Auto-refresh pulls from the relative /telemetry path.
        assert '"/telemetry"' in html or "'/telemetry'" in html

    def test_dashboard_renders_without_traffic(self, server):
        status, body, _ = get(server.url + "/dashboard")
        assert status == 200
        assert b"<script" in body


class TestHealthSLO:
    def test_ok_to_degraded_under_latency_breach(self, server):
        server.state.sampler.tick()
        status, body, _ = get(server.url + "/healthz")
        assert status == 200
        health = json.loads(body)
        assert health["status"] == "ok"
        assert health["slo"]["status"] == "ok"
        # Inject a breach: enough over-threshold request latencies to
        # clear the MIN_SAMPLES guard, then resample.
        for _ in range(10):
            serve_metrics.observe(
                "serve_request_seconds", 2.0, endpoint="/run", status="200"
            )
        server.state.sampler.tick()
        status, body, _ = get(server.url + "/healthz")
        # Liveness stays 200 in every state; the body degrades.
        assert status == 200
        health = json.loads(body)
        assert health["status"] in ("degraded", "failing")
        breached = {o["name"]: o for o in health["slo"]["objectives"]}
        assert breached["run-latency-p99"]["status"] != "ok"
        assert breached["run-latency-p99"]["burn_short"] >= 1.0

    def test_single_slow_request_keeps_ok(self, server):
        # Below MIN_SAMPLES the guard holds: one cold request breaching
        # the threshold must not flip health.
        serve_metrics.observe(
            "serve_request_seconds", 2.0, endpoint="/run", status="200"
        )
        server.state.sampler.tick()
        _, body, _ = get(server.url + "/healthz")
        assert json.loads(body)["status"] == "ok"

    def test_slo_gauges_exported(self, server):
        serve_metrics.observe(
            "serve_request_seconds", 0.01, endpoint="/run", status="200"
        )
        server.state.sampler.tick()
        _, body, _ = get(server.url + "/metrics")
        text = body.decode()
        assert "serve_slo_burn_rate{" in text
        assert "serve_slo_status{" in text
        # Histogram quantiles ride along as comment lines.
        assert "# quantile serve_" in text


class TestTelemetryLogFlush:
    def test_shutdown_flushes_log(self, tmp_path):
        serve_metrics.reset()
        log = tmp_path / "telemetry.jsonl"
        srv = create_server(
            port=0, workers=1, cache_dir=str(tmp_path / "store"),
            sample_interval=0, telemetry_log=str(log),
        )
        srv.run_in_thread()
        try:
            post_run(srv.url, "miniweather", "max9480")
            srv.state.sampler.tick()
        finally:
            srv.stop()
        # stop() takes a final flush sample and closes the file.
        lines = [ln for ln in log.read_text().splitlines() if ln.strip()]
        assert len(lines) >= 2
        last = json.loads(lines[-1])
        assert last["slo"]["status"] in ("ok", "degraded", "failing")
        assert "serve_requests_total" in last["counters"]
