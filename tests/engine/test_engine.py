"""End-to-end tests of the sweep engine: caching, metrics, parallelism.

The acceptance properties from the engine's introduction live here:
a warm (fully cached) figure regeneration performs *zero* perf-model
evaluations, and a cold parallel sweep returns bit-identical estimates
to the serial path.
"""

import pytest

from repro.engine import (
    SweepEngine,
    build_plan,
    default_engine,
    reset_engine,
)
from repro.machine import (
    XEON_MAX_9480,
    Compiler,
    Parallelization,
    RunConfig,
    structured_config_sweep,
)

APP = "miniweather"
CFGS = structured_config_sweep(XEON_MAX_9480)


def fresh_engine(tmp_path, **kw):
    return SweepEngine(cache_dir=tmp_path / "cache", **kw)


class TestCaching:
    def test_cold_then_warm_same_engine(self, tmp_path):
        eng = fresh_engine(tmp_path)
        first = eng.sweep(APP, XEON_MAX_9480, CFGS)
        assert eng.metrics.evaluations == len(CFGS)
        assert eng.metrics.cache_hits == 0
        second = eng.sweep(APP, XEON_MAX_9480, CFGS)
        assert eng.metrics.evaluations == len(CFGS)  # unchanged
        assert eng.metrics.cache_hits == len(CFGS)
        assert [(c, e.total_time) for c, e in first] == [
            (c, e.total_time) for c, e in second
        ]

    def test_warm_across_engine_instances(self, tmp_path):
        fresh_engine(tmp_path).sweep(APP, XEON_MAX_9480, CFGS)
        warm = fresh_engine(tmp_path)  # same cache dir, new process-alike
        warm.sweep(APP, XEON_MAX_9480, CFGS)
        assert warm.metrics.evaluations == 0
        assert warm.metrics.cache_hits == len(CFGS)
        assert warm.metrics.hit_rate == 1.0

    def test_cached_estimates_bit_identical(self, tmp_path):
        cold = fresh_engine(tmp_path)
        a = cold.sweep(APP, XEON_MAX_9480, CFGS)
        warm = fresh_engine(tmp_path)
        b = warm.sweep(APP, XEON_MAX_9480, CFGS)
        for (_, ea), (_, eb) in zip(a, b):
            assert ea == eb  # dataclass equality: every float exact

    def test_no_cache_bypasses_store(self, tmp_path):
        eng = fresh_engine(tmp_path, use_cache=False)
        eng.sweep(APP, XEON_MAX_9480, CFGS)
        eng.sweep(APP, XEON_MAX_9480, CFGS)
        assert eng.metrics.evaluations == 2 * len(CFGS)
        assert eng.metrics.cache_hits == 0
        assert len(eng.store) == 0

    def test_clear_wipes_store(self, tmp_path):
        eng = fresh_engine(tmp_path)
        eng.sweep(APP, XEON_MAX_9480, CFGS)
        assert len(eng.store) == len(CFGS)
        eng.clear()
        assert len(eng.store) == 0
        again = fresh_engine(tmp_path)
        again.sweep(APP, XEON_MAX_9480, CFGS)
        assert again.metrics.evaluations == len(CFGS)  # truly cold again


class TestParallel:
    def test_parallel_bit_identical_to_serial(self, tmp_path):
        serial = fresh_engine(tmp_path / "a", use_cache=False, workers=1)
        parallel = fresh_engine(tmp_path / "b", use_cache=False, workers=4)
        a = serial.sweep(APP, XEON_MAX_9480, CFGS)
        b = parallel.sweep(APP, XEON_MAX_9480, CFGS)
        assert len(a) == len(b) == len(CFGS)
        for (ca, ea), (cb, eb) in zip(a, b):
            assert ca == cb
            assert ea == eb

    def test_parallel_plan_across_apps(self, tmp_path):
        eng = fresh_engine(tmp_path, workers=2)
        plan = build_plan(["miniweather", "minibude"], [XEON_MAX_9480],
                          [RunConfig(Compiler.ONEAPI, Parallelization.MPI),
                           RunConfig(Compiler.CLASSIC, Parallelization.MPI)])
        results = eng.run_plan(plan)
        by_status: dict[str, int] = {}
        for r in results:
            by_status[r.status] = by_status.get(r.status, 0) + 1
        # minibude + Classic is planned-infeasible; everything else runs.
        assert by_status.get("skipped") == 1
        assert by_status.get("ok") == len(results) - 1
        assert eng.metrics.jobs_skipped == 1

    def test_progress_callback_sees_every_job(self, tmp_path):
        seen = []
        eng = fresh_engine(
            tmp_path, workers=2,
            progress=lambda done, total, job, res: seen.append((done, total)),
        )
        eng.sweep(APP, XEON_MAX_9480, CFGS[:6])
        assert [d for d, _ in seen] == list(range(1, 7))


class TestCompatibilityBehaviour:
    def test_run_raises_for_stalling_compiler(self, tmp_path):
        eng = fresh_engine(tmp_path)
        with pytest.raises(ValueError, match="does not run under"):
            eng.run("minibude", XEON_MAX_9480,
                    RunConfig(Compiler.CLASSIC, Parallelization.MPI))

    def test_run_raises_for_infeasible(self, tmp_path):
        eng = fresh_engine(tmp_path)
        with pytest.raises(ValueError):
            eng.run(APP, XEON_MAX_9480,
                    RunConfig(Compiler.GCC, Parallelization.MPI))

    def test_best_run_matches_sweep_minimum(self, tmp_path):
        eng = fresh_engine(tmp_path)
        _, best = eng.best_run(APP, XEON_MAX_9480, CFGS)
        times = [e.total_time for _, e in eng.sweep(APP, XEON_MAX_9480, CFGS) if e]
        assert best.total_time == min(times)


class TestWarmFigures:
    """Acceptance: a fully warm figure run does zero model evaluations."""

    def test_warm_figures_run_evaluates_nothing(self, tmp_path, monkeypatch, capsys):
        from repro.__main__ import main

        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "figcache"))
        reset_engine()
        try:
            assert main(["figures", "fig4"]) == 0  # cold: populates the store
            cold_evals = default_engine().metrics.evaluations
            assert cold_evals > 0

            reset_engine()  # simulate a brand-new process
            assert main(["figures", "fig4"]) == 0  # warm
            warm = default_engine().metrics
            assert warm.evaluations == 0
            assert warm.cache_hits > 0
            assert warm.cache_hits == cold_evals
        finally:
            reset_engine()
        capsys.readouterr()
