"""Tests for the content-addressed result store and its key scheme."""

import json

import pytest

from repro.engine.store import (
    ResultStore,
    estimate_from_dict,
    estimate_to_dict,
    fingerprint,
    model_version,
    result_key,
)
from repro.machine import XEON_MAX_9480, Compiler, Parallelization, RunConfig
from repro.perfmodel import calibration
from repro.perfmodel.commmodel import CommEstimate
from repro.perfmodel.roofline import AppEstimate, LoopTime


def make_estimate(total=1.25) -> AppEstimate:
    loops = (
        LoopTime("flux", 0.011, 0.009, 0.003, 0.0, 1e-6, 3.2e9, 1.1e9),
        LoopTime("update", 0.004, 0.0035, 0.001, 0.0002, 2e-6, 1.6e9, 0.4e9),
    )
    return AppEstimate(
        app="toy",
        platform="max9480",
        config_label="MPI w/o HT OneAPI (ZMM default)",
        total_time=total,
        compute_time=total * 0.8,
        mpi_time=total * 0.2,
        per_loop=loops,
        counted_bytes=4.8e9,
        flops=1.5e9,
        comm=CommEstimate(0.01, 12.0, 3.4e6),
    )


CFG = RunConfig(Compiler.ONEAPI, Parallelization.MPI)


class TestSerialization:
    def test_round_trip_is_exact(self):
        est = make_estimate(1.0 / 3.0)  # non-representable float
        back = estimate_from_dict(json.loads(json.dumps(estimate_to_dict(est))))
        assert back == est  # dataclass equality: every field bit-identical

    def test_round_trip_preserves_derived_metrics(self):
        est = make_estimate()
        back = estimate_from_dict(estimate_to_dict(est))
        assert back.mpi_fraction == est.mpi_fraction
        assert back.effective_bandwidth == est.effective_bandwidth
        assert back.per_loop[0].bottleneck == est.per_loop[0].bottleneck


class TestResultStore:
    def test_memory_roundtrip(self):
        store = ResultStore(None)
        est = make_estimate()
        store.put("k1", est)
        assert store.get("k1") == est
        assert store.get("other") is None
        assert len(store) == 1 and "k1" in store

    def test_persists_across_instances(self, tmp_path):
        ResultStore(tmp_path).put("k1", make_estimate(2.5))
        again = ResultStore(tmp_path)
        got = again.get("k1")
        assert got is not None and got.total_time == 2.5

    def test_last_write_wins(self, tmp_path):
        store = ResultStore(tmp_path)
        store.put("k1", make_estimate(1.0))
        store.put("k1", make_estimate(2.0))
        assert ResultStore(tmp_path).get("k1").total_time == 2.0
        assert len(ResultStore(tmp_path)) == 1

    def test_corrupt_lines_are_skipped(self, tmp_path):
        store = ResultStore(tmp_path)
        store.put("k1", make_estimate())
        with store.path.open("a") as f:
            f.write("{torn-line\n")
        assert ResultStore(tmp_path).get("k1") is not None

    def test_corrupt_lines_are_counted_and_reported(self, tmp_path):
        store = ResultStore(tmp_path)
        store.put("k1", make_estimate(1.0))
        with store.path.open("a") as f:
            f.write("{torn-line\n")           # crash mid-append
            f.write('{"not": "a record"}\n')  # foreign but valid JSON
        store.put("k2", make_estimate(2.0))   # appended after the damage
        reloaded = ResultStore(tmp_path)
        assert reloaded.get("k1").total_time == 1.0
        assert reloaded.get("k2").total_time == 2.0
        assert reloaded.corrupt_lines == 2
        assert len(reloaded) == 2

    def test_blank_lines_are_not_counted_as_corrupt(self, tmp_path):
        store = ResultStore(tmp_path)
        store.put("k1", make_estimate())
        with store.path.open("a") as f:
            f.write("\n\n")
        reloaded = ResultStore(tmp_path)
        assert reloaded.get("k1") is not None
        assert reloaded.corrupt_lines == 0

    def test_clear_resets_corrupt_count(self, tmp_path):
        store = ResultStore(tmp_path)
        store.put("k1", make_estimate())
        with store.path.open("a") as f:
            f.write("{torn\n")
        reloaded = ResultStore(tmp_path)
        reloaded.get("k1")
        assert reloaded.corrupt_lines == 1
        reloaded.clear()
        assert reloaded.corrupt_lines == 0

    def test_concurrent_writers_never_tear_lines(self, tmp_path):
        # Several store instances over one file (the multi-process
        # pattern: each append is a single O_APPEND write) racing puts;
        # every record must land whole.
        import threading

        writers, per_writer = 8, 20

        def write(w: int) -> None:
            store = ResultStore(tmp_path)
            for i in range(per_writer):
                store.put(f"w{w}-k{i}", make_estimate(w + i / 100))

        threads = [
            threading.Thread(target=write, args=(w,)) for w in range(writers)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        merged = ResultStore(tmp_path)
        assert merged.corrupt_lines == 0
        assert len(merged) == writers * per_writer
        for w in range(writers):
            for i in range(per_writer):
                got = merged.get(f"w{w}-k{i}")
                assert got is not None and got.total_time == w + i / 100

    def test_clear_removes_file(self, tmp_path):
        store = ResultStore(tmp_path)
        store.put("k1", make_estimate())
        store.clear()
        assert len(store) == 0
        assert not store.path.exists()
        assert len(ResultStore(tmp_path)) == 0

    def test_compact_dedups_log(self, tmp_path):
        store = ResultStore(tmp_path)
        for t in (1.0, 2.0, 3.0):
            store.put("k1", make_estimate(t))
        assert len(store.path.read_text().splitlines()) == 3
        assert store.compact() == 1
        assert len(store.path.read_text().splitlines()) == 1
        assert ResultStore(tmp_path).get("k1").total_time == 3.0


class TestKeys:
    def test_fingerprint_deterministic(self):
        assert fingerprint(CFG) == fingerprint(CFG)
        assert fingerprint(XEON_MAX_9480) == fingerprint(XEON_MAX_9480)

    def test_fingerprint_distinguishes_configs(self):
        assert fingerprint(CFG) != fingerprint(CFG.with_(hyperthreading=True))

    def test_key_depends_on_all_axes(self):
        base = result_key("a" * 16, XEON_MAX_9480, CFG)
        assert result_key("b" * 16, XEON_MAX_9480, CFG) != base
        assert result_key("a" * 16, XEON_MAX_9480,
                          CFG.with_(compiler=Compiler.CLASSIC)) != base
        assert result_key("a" * 16, XEON_MAX_9480, CFG) == base

    def test_model_version_bumps_on_calibration_change(self):
        v0 = model_version()
        with calibration.override(BOTTLENECK_PNORM=5.0):
            assert model_version() != v0
        assert model_version() == v0  # restored with the constant

    def test_calibration_change_invalidates_keys(self):
        base = result_key("a" * 16, XEON_MAX_9480, CFG)
        with calibration.override(MEM_CONCURRENCY_BASE=1e9):
            assert result_key("a" * 16, XEON_MAX_9480, CFG) != base
