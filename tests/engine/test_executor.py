"""Tests for the parallel job executor (ordering, chunking, fallback)."""

import threading

import pytest

from repro.engine.executor import resolve_workers, run_jobs


def square(x):
    return x * x


class TestRunJobs:
    def test_serial_basic(self):
        assert run_jobs(square, [1, 2, 3], workers=1) == [1, 4, 9]

    def test_parallel_preserves_input_order(self):
        import time

        def jittery(x):
            time.sleep(0.001 * (x % 3))  # finish out of order
            return x * 10

        jobs = list(range(40))
        assert run_jobs(jittery, jobs, workers=4) == [x * 10 for x in jobs]

    def test_parallel_matches_serial(self):
        jobs = list(range(100))
        assert run_jobs(square, jobs, workers=8) == run_jobs(square, jobs, workers=1)

    def test_actually_runs_concurrently(self):
        barrier = threading.Barrier(2, timeout=10)

        def rendezvous(x):
            barrier.wait()  # deadlocks unless two workers run at once
            return x

        assert run_jobs(rendezvous, [1, 2], workers=2) == [1, 2]

    def test_chunked_dispatch_bounds_in_flight(self):
        peak = 0
        active = 0
        lock = threading.Lock()

        def track(x):
            nonlocal peak, active
            with lock:
                active += 1
                peak = max(peak, active)
            with lock:
                active -= 1
            return x

        run_jobs(track, list(range(64)), workers=2, chunk_size=1)
        assert peak <= 2

    def test_empty_and_single(self):
        assert run_jobs(square, [], workers=4) == []
        assert run_jobs(square, [5], workers=4) == [25]

    def test_exceptions_propagate(self):
        def boom(x):
            raise RuntimeError(f"job {x}")

        with pytest.raises(RuntimeError, match="job"):
            run_jobs(boom, [1, 2, 3], workers=2)
        with pytest.raises(RuntimeError, match="job"):
            run_jobs(boom, [1, 2, 3], workers=1)

    def test_progress_callback_fires_per_job(self):
        seen = []

        def progress(done, total, job, result):
            seen.append((done, total, job, result))

        run_jobs(square, [1, 2, 3], workers=2, progress=progress)
        assert len(seen) == 3
        assert [d for d, *_ in seen] == [1, 2, 3]  # monotone done counter
        assert all(t == 3 for _, t, *_ in seen)
        assert {(j, r) for _, _, j, r in seen} == {(1, 1), (2, 4), (3, 9)}


class TestResolveWorkers:
    def test_defaults_to_serial(self):
        assert resolve_workers(None) == 1
        assert resolve_workers(0) == 1

    def test_negative_means_cpu_count(self):
        assert resolve_workers(-1) >= 1

    def test_explicit(self):
        assert resolve_workers(6) == 6
