"""Tests for job-plan construction: cross products, dedup, filtering."""

from repro.engine.jobs import (
    SKIP_COMPILER,
    SKIP_INFEASIBLE,
    build_plan,
    default_configs,
    sweep_plan,
)
from repro.machine import (
    A100_40GB,
    EPYC_7V73X,
    XEON_MAX_9480,
    Compiler,
    Parallelization,
    RunConfig,
    structured_config_sweep,
)


class TestBuildPlan:
    def test_cross_product_counts(self):
        cfgs = structured_config_sweep(XEON_MAX_9480)
        plan = build_plan(["miniweather", "cloverleaf2d"], [XEON_MAX_9480], cfgs)
        assert len(plan) == 2 * len(cfgs)
        assert not plan.skipped

    def test_dedup_collapses_repeats(self):
        cfgs = structured_config_sweep(XEON_MAX_9480)
        plan = build_plan(["miniweather", "miniweather"], [XEON_MAX_9480], cfgs + cfgs)
        assert len(plan) == len(cfgs)

    def test_infeasible_jobs_set_aside_with_reason(self):
        # Classic is an Intel compiler: infeasible on the EPYC.
        cfg = RunConfig(Compiler.CLASSIC, Parallelization.MPI)
        plan = build_plan(["miniweather"], [EPYC_7V73X], [cfg])
        assert not plan.jobs
        assert plan.skipped == [(plan.skipped[0][0], SKIP_INFEASIBLE)]

    def test_compiler_stall_detected_without_profiling(self):
        # miniBUDE does not run under Classic (paper Sec. 5).
        cfg = RunConfig(Compiler.CLASSIC, Parallelization.MPI)
        plan = build_plan(["minibude"], [XEON_MAX_9480], [cfg])
        assert not plan.jobs
        assert plan.skipped[0][1] == SKIP_COMPILER

    def test_app_major_ordering(self):
        cfgs = structured_config_sweep(XEON_MAX_9480)
        plan = build_plan(["cloverleaf2d", "miniweather"], [XEON_MAX_9480], cfgs)
        apps_seen = [j.app for j in plan.jobs]
        # Spec-before-estimate grouping: all of app 1, then all of app 2.
        assert apps_seen == sorted(apps_seen, key=["cloverleaf2d", "miniweather"].index)
        assert plan.apps == ["cloverleaf2d", "miniweather"]

    def test_platforms_enumerated(self):
        plan = build_plan(["miniweather"], [XEON_MAX_9480, EPYC_7V73X])
        names = [p.short_name for p in plan.platforms]
        assert names == ["max9480", "epyc7v73x"]


class TestDefaultConfigs:
    def test_structured_app_gets_fig3_sweep(self):
        assert len(default_configs("miniweather", XEON_MAX_9480)) == 24

    def test_unstructured_app_gets_fig4_sweep(self):
        assert len(default_configs("mgcfd", XEON_MAX_9480)) == 25

    def test_gpu_gets_single_cuda_config(self):
        cfgs = default_configs("miniweather", A100_40GB)
        assert len(cfgs) == 1
        assert cfgs[0].parallelization is Parallelization.CUDA


class TestSweepPlan:
    def test_covers_all_configs(self):
        cfgs = structured_config_sweep(XEON_MAX_9480)
        plan = sweep_plan("miniweather", XEON_MAX_9480, cfgs)
        assert len(plan.jobs) + len(plan.skipped) == len(cfgs)
