"""Tests for the SYCL workgroup-shape model (paper Sec. 5.1)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.machine import XEON_MAX_9480
from repro.perfmodel.workgroup import (
    exhaustive_search,
    flat_heuristic,
    workgroup_time_factor,
)

DOMAIN = (160, 160, 160)  # one SNC4 rank's share of the 320^3 testcase


class TestTimeFactor:
    def test_ideal_shape_near_one(self):
        f = workgroup_time_factor((4, 4, 160), DOMAIN, XEON_MAX_9480)
        assert 1.0 <= f < 1.05

    def test_short_contiguous_dimension_penalized(self):
        """'the workgroup size in the contiguous dimension [should]
        match the size of the domain'."""
        full = workgroup_time_factor((4, 4, 160), DOMAIN, XEON_MAX_9480)
        short = workgroup_time_factor((4, 4, 8), DOMAIN, XEON_MAX_9480)
        assert short > full * 1.1

    def test_huge_groups_unbalanced(self):
        """One group per domain starves all but one thread."""
        one = workgroup_time_factor(DOMAIN, DOMAIN, XEON_MAX_9480)
        good = workgroup_time_factor((4, 4, 160), DOMAIN, XEON_MAX_9480)
        assert one > 5 * good

    def test_ragged_tiling_penalized(self):
        exact = workgroup_time_factor((4, 4, 160), DOMAIN, XEON_MAX_9480)
        ragged = workgroup_time_factor((7, 6, 160), DOMAIN, XEON_MAX_9480)
        assert ragged > exact

    def test_validation(self):
        with pytest.raises(ValueError, match="dimensionality"):
            workgroup_time_factor((4, 4), DOMAIN, XEON_MAX_9480)
        with pytest.raises(ValueError, match="positive"):
            workgroup_time_factor((0, 4, 4), DOMAIN, XEON_MAX_9480)

    @given(sx=st.sampled_from([1, 2, 4, 8, 16, 32, 64, 160]))
    @settings(max_examples=20, deadline=None)
    def test_factor_at_least_one(self, sx):
        f = workgroup_time_factor((4, 4, sx), DOMAIN, XEON_MAX_9480)
        assert f >= 1.0


class TestSearch:
    def test_best_shape_matches_paper_structure(self):
        """Sec. 5.1: contiguous dimension = domain size, others small —
        the tuned 160x4x4 shape."""
        best = exhaustive_search(DOMAIN, XEON_MAX_9480)
        assert best.shape[-1] == 160  # full contiguous rows
        assert all(s <= 16 for s in best.shape[:-1])  # small outer dims

    def test_paper_shape_is_optimal_class(self):
        best = exhaustive_search(DOMAIN, XEON_MAX_9480)
        paper = workgroup_time_factor((4, 4, 160), DOMAIN, XEON_MAX_9480)
        assert paper == pytest.approx(best.factor, rel=0.01)

    def test_flat_close_behind_tuned(self):
        """'a shape of 160x4x4 gave 2% faster execution than the default
        size with flat' — the runtime heuristic is good but beatable."""
        best = exhaustive_search(DOMAIN, XEON_MAX_9480)
        flat = flat_heuristic(DOMAIN, XEON_MAX_9480)
        ratio = flat.factor / best.factor
        assert 1.0 < ratio < 1.08

    def test_search_respects_domain(self):
        best = exhaustive_search((8, 8), XEON_MAX_9480, candidates=(1, 4, 8, 16))
        assert all(s <= 8 for s in best.shape)

    def test_search_rejects_impossible(self):
        with pytest.raises(ValueError, match="no candidate"):
            exhaustive_search((2, 2), XEON_MAX_9480, candidates=(64,))
