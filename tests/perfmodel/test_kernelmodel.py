"""Unit tests for LoopSpec / AppSpec and the stencil traffic model."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.machine import XEON_MAX_9480, Compiler
from repro.perfmodel import AppClass, AppSpec, LoopSpec, stencil_traffic_factor


def loop(**kw):
    base = dict(name="l", points=1e6, bytes_per_point=80.0, flops_per_point=20.0)
    base.update(kw)
    return LoopSpec(**base)


def app(loops=None, **kw):
    base = dict(
        name="a",
        klass=AppClass.STRUCTURED_BW,
        dtype_bytes=8,
        iterations=10,
        loops=loops or (loop(),),
        domain=(100, 100),
    )
    base.update(kw)
    return AppSpec(**base)


class TestLoopSpec:
    def test_totals(self):
        l = loop(points=1000, bytes_per_point=8, flops_per_point=4)
        assert l.bytes_total == 8000
        assert l.flops_total == 4000
        assert l.arithmetic_intensity == 0.5

    def test_zero_bytes_infinite_intensity(self):
        assert loop(bytes_per_point=0.0).arithmetic_intensity == math.inf

    def test_scaled_preserves_profile(self):
        l = loop(radius=2, streams=7, indirect_per_point=3.0, invocations=4.0)
        s = l.scaled(10.0)
        assert s.points == l.points * 10
        assert s.bytes_per_point == l.bytes_per_point
        assert s.radius == l.radius
        assert s.streams == l.streams
        assert s.indirect_per_point == l.indirect_per_point
        assert s.invocations == l.invocations

    def test_scaled_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            loop().scaled(0)

    def test_validation(self):
        with pytest.raises(ValueError):
            loop(points=-1)
        with pytest.raises(ValueError):
            loop(dtype_bytes=2)

    @given(f=st.floats(min_value=0.01, max_value=1e6))
    @settings(max_examples=30, deadline=None)
    def test_scaling_linear(self, f):
        l = loop()
        assert l.scaled(f).bytes_total == pytest.approx(l.bytes_total * f)


class TestAppSpec:
    def test_aggregates(self):
        a = app(loops=(loop(points=10, bytes_per_point=2, flops_per_point=1),
                       loop(name="m", points=10, bytes_per_point=4, flops_per_point=3)))
        assert a.bytes_per_iteration() == 60
        assert a.flops_per_iteration() == 40

    def test_gridpoints_and_ndims(self):
        a = app(domain=(10, 20, 30))
        assert a.gridpoints == 6000
        assert a.ndims == 3

    def test_affinity_defaults_to_one(self):
        a = app(compiler_affinity={Compiler.CLASSIC: 0.8})
        assert a.affinity(Compiler.CLASSIC) == 0.8
        assert a.affinity(Compiler.ONEAPI) == 1.0

    def test_validation(self):
        with pytest.raises(ValueError):
            app(iterations=0)
        with pytest.raises(ValueError):
            AppSpec("a", AppClass.STRUCTURED_BW, 8, 1, (), (4, 4))
        with pytest.raises(ValueError):
            app(domain=(0, 4))


class TestStencilTrafficFactor:
    def test_pointwise_no_amplification(self):
        assert stencil_traffic_factor(loop(radius=0), XEON_MAX_9480, 1e6, 3) == 1.0

    def test_1d_no_amplification(self):
        assert stencil_traffic_factor(loop(radius=4), XEON_MAX_9480, 1e6, 1) == 1.0

    def test_small_window_fits_l2(self):
        # Tiny per-core share: the plane window fits private cache.
        assert stencil_traffic_factor(loop(radius=1), XEON_MAX_9480, 1e4, 3) == 1.0

    def test_huge_window_amplifies(self):
        f = stencil_traffic_factor(loop(radius=4), XEON_MAX_9480, 1e9, 3)
        assert f > 1.0

    def test_amplification_bounded_by_no_reuse(self):
        f = stencil_traffic_factor(loop(radius=4), XEON_MAX_9480, 1e12, 3)
        assert f <= 2 * 4 + 1

    @given(ppc=st.floats(min_value=1e3, max_value=1e11))
    @settings(max_examples=30, deadline=None)
    def test_monotone_in_working_set(self, ppc):
        f1 = stencil_traffic_factor(loop(radius=3), XEON_MAX_9480, ppc, 3)
        f2 = stencil_traffic_factor(loop(radius=3), XEON_MAX_9480, ppc * 2, 3)
        assert f2 >= f1


class TestFingerprint:
    def test_deterministic(self):
        a = app()
        assert a.fingerprint() == a.fingerprint()
        assert app().fingerprint() == a.fingerprint()

    def test_format(self):
        fp = app().fingerprint()
        assert len(fp) == 16
        int(fp, 16)  # hex digest

    def test_changes_with_loop_count(self):
        one = app(loops=(loop(),))
        two = app(loops=(loop(), loop(name="l2")))
        assert one.fingerprint() != two.fingerprint()

    def test_changes_with_measured_profile(self):
        assert (app(loops=(loop(bytes_per_point=80.0),)).fingerprint()
                != app(loops=(loop(bytes_per_point=88.0),)).fingerprint())

    def test_changes_with_iterations_and_domain(self):
        base = app()
        assert app(iterations=11).fingerprint() != base.fingerprint()
        assert app(domain=(200, 100)).fingerprint() != base.fingerprint()

    def test_insensitive_to_affinity_dict_order(self):
        a = app(compiler_affinity={Compiler.CLASSIC: 0.8, Compiler.ONEAPI: 1.0})
        b = app(compiler_affinity={Compiler.ONEAPI: 1.0, Compiler.CLASSIC: 0.8})
        assert a.fingerprint() == b.fingerprint()
