"""Tests for the intra-node scaling study."""

import pytest

from repro.harness.runner import app_spec
from repro.machine import (
    XEON_8360Y,
    XEON_MAX_9480,
    Compiler,
    Parallelization,
    RunConfig,
)
from repro.perfmodel.scaling import comm_share_curve, strong_scaling

CFG = RunConfig(Compiler.ONEAPI, Parallelization.MPI)


class TestStrongScaling:
    @pytest.fixture(scope="class")
    def clover_curve(self):
        return strong_scaling(app_spec("cloverleaf2d"), XEON_MAX_9480, CFG,
                              core_counts=[7, 14, 28, 56])

    def test_monotone_speedup(self, clover_curve):
        times = [p.time for p in clover_curve]
        assert times == sorted(times, reverse=True)

    def test_efficiency_bounds(self, clover_curve):
        for p in clover_curve:
            assert 0.0 < p.efficiency <= 1.05

    def test_bandwidth_bound_saturates(self):
        """On the DDR 8360Y a bandwidth-bound app stops scaling early:
        doubling cores from half to full buys little."""
        pts = strong_scaling(app_spec("cloverleaf2d"), XEON_8360Y, CFG,
                             core_counts=[9, 18, 36])
        last_gain = pts[-1].time and pts[-2].time / pts[-1].time
        assert last_gain < 1.3  # memory-saturated

    def test_compute_bound_keeps_scaling(self):
        """miniBUDE scales with cores almost ideally."""
        pts = strong_scaling(app_spec("minibude"), XEON_MAX_9480, CFG,
                             core_counts=[14, 28, 56])
        assert pts[-1].efficiency > 0.85

    def test_hbm_scales_further_than_ddr(self):
        """The paper's core point, as a scaling curve: the HBM machine
        keeps gaining from cores where the DDR machine has saturated."""
        max_pts = strong_scaling(app_spec("cloverleaf2d"), XEON_MAX_9480, CFG,
                                 core_counts=[14, 28, 56])
        icx_pts = strong_scaling(app_spec("cloverleaf2d"), XEON_8360Y, CFG,
                                 core_counts=[9, 18, 36])
        assert max_pts[-1].efficiency > icx_pts[-1].efficiency

    def test_core_count_validation(self):
        with pytest.raises(ValueError):
            strong_scaling(app_spec("minibude"), XEON_MAX_9480, CFG,
                           core_counts=[500])


class TestCommShare:
    def test_fraction_rises_as_problem_shrinks(self):
        curve = comm_share_curve(app_spec("cloverleaf2d"), XEON_MAX_9480, CFG)
        fracs = [f for _, f in curve]
        assert fracs == sorted(fracs)
        assert fracs[-1] > fracs[0]

    def test_max_hits_the_limit_before_ddr(self):
        """At the same shrink factor the Xeon MAX spends a larger share
        in MPI than the 8360Y — the bottleneck shift (Sec. 6)."""
        m = dict(comm_share_curve(app_spec("cloverleaf2d"), XEON_MAX_9480, CFG))
        i = dict(comm_share_curve(app_spec("cloverleaf2d"), XEON_8360Y, CFG))
        assert m[64.0] > i[64.0]

    def test_validation(self):
        with pytest.raises(ValueError):
            comm_share_curve(app_spec("minibude"), XEON_MAX_9480, CFG,
                             shrink_factors=[0.5])
