"""Tests for the intra-node scaling study."""

import pytest

from repro.harness.runner import app_spec
from repro.machine import (
    XEON_8360Y,
    XEON_MAX_9480,
    Compiler,
    Parallelization,
    RunConfig,
)
from repro.perfmodel.scaling import comm_share_curve, strong_scaling

CFG = RunConfig(Compiler.ONEAPI, Parallelization.MPI)


class TestStrongScaling:
    @pytest.fixture(scope="class")
    def clover_curve(self):
        return strong_scaling(app_spec("cloverleaf2d"), XEON_MAX_9480, CFG,
                              core_counts=[7, 14, 28, 56])

    def test_monotone_speedup(self, clover_curve):
        times = [p.time for p in clover_curve]
        assert times == sorted(times, reverse=True)

    def test_efficiency_bounds(self, clover_curve):
        for p in clover_curve:
            assert 0.0 < p.efficiency <= 1.05

    def test_bandwidth_bound_saturates(self):
        """On the DDR 8360Y a bandwidth-bound app stops scaling early:
        doubling cores from half to full buys little."""
        pts = strong_scaling(app_spec("cloverleaf2d"), XEON_8360Y, CFG,
                             core_counts=[9, 18, 36])
        last_gain = pts[-1].time and pts[-2].time / pts[-1].time
        assert last_gain < 1.3  # memory-saturated

    def test_compute_bound_keeps_scaling(self):
        """miniBUDE scales with cores almost ideally."""
        pts = strong_scaling(app_spec("minibude"), XEON_MAX_9480, CFG,
                             core_counts=[14, 28, 56])
        assert pts[-1].efficiency > 0.85

    def test_hbm_scales_further_than_ddr(self):
        """The paper's core point, as a scaling curve: the HBM machine
        keeps gaining from cores where the DDR machine has saturated."""
        max_pts = strong_scaling(app_spec("cloverleaf2d"), XEON_MAX_9480, CFG,
                                 core_counts=[14, 28, 56])
        icx_pts = strong_scaling(app_spec("cloverleaf2d"), XEON_8360Y, CFG,
                                 core_counts=[9, 18, 36])
        assert max_pts[-1].efficiency > icx_pts[-1].efficiency

    def test_core_count_validation(self):
        with pytest.raises(ValueError):
            strong_scaling(app_spec("minibude"), XEON_MAX_9480, CFG,
                           core_counts=[500])


class TestCommShare:
    def test_fraction_rises_as_problem_shrinks(self):
        curve = comm_share_curve(app_spec("cloverleaf2d"), XEON_MAX_9480, CFG)
        fracs = [f for _, f in curve]
        assert fracs == sorted(fracs)
        assert fracs[-1] > fracs[0]

    def test_max_hits_the_limit_before_ddr(self):
        """At the same shrink factor the Xeon MAX spends a larger share
        in MPI than the 8360Y — the bottleneck shift (Sec. 6)."""
        m = dict(comm_share_curve(app_spec("cloverleaf2d"), XEON_MAX_9480, CFG))
        i = dict(comm_share_curve(app_spec("cloverleaf2d"), XEON_8360Y, CFG))
        assert m[64.0] > i[64.0]

    def test_validation(self):
        with pytest.raises(ValueError):
            comm_share_curve(app_spec("minibude"), XEON_MAX_9480, CFG,
                             shrink_factors=[0.5])


class TestClusterScaling:
    """Strong/weak scaling across nodes — the fig7x regime."""

    @pytest.fixture(scope="class")
    def strong(self):
        from repro.perfmodel import cluster_strong_scaling

        return cluster_strong_scaling(app_spec("cloverleaf3d"), XEON_MAX_9480,
                                      CFG, node_counts=(2, 4, 8))

    def test_ranks_scale_with_nodes(self, strong):
        assert [p.nodes for p in strong] == [2, 4, 8]
        assert strong[1].ranks == 2 * strong[0].ranks
        assert strong[2].ranks == 4 * strong[0].ranks

    def test_first_point_is_the_baseline(self, strong):
        assert strong[0].speedup == pytest.approx(1.0)
        assert strong[0].efficiency == pytest.approx(1.0)

    def test_efficiency_decays(self, strong):
        effs = [p.efficiency for p in strong]
        assert effs == sorted(effs, reverse=True)
        for p in strong:
            assert 0.0 < p.efficiency <= 1.0 + 1e-9

    def test_mpi_fraction_grows(self, strong):
        fracs = [p.mpi_fraction for p in strong]
        assert fracs == sorted(fracs)
        assert 0.0 < fracs[0] < fracs[-1] < 1.0

    def test_max_more_mpi_bound_than_ddr(self):
        """The paper's bottleneck shift extends to clusters: the faster
        the node, the larger the MPI share at equal scale."""
        from repro.perfmodel import cluster_strong_scaling

        spec = app_spec("cloverleaf3d")
        m = cluster_strong_scaling(spec, XEON_MAX_9480, CFG, node_counts=(16,))
        i = cluster_strong_scaling(spec, XEON_8360Y, CFG, node_counts=(16,))
        assert m[0].mpi_fraction > i[0].mpi_fraction

    def test_weak_scaling_stays_efficient(self):
        from repro.perfmodel import cluster_weak_scaling

        pts = cluster_weak_scaling(app_spec("miniweather"), XEON_MAX_9480,
                                   CFG, node_counts=(1, 4, 16))
        assert [p.nodes for p in pts] == [1, 4, 16]
        for p in pts:
            assert 0.5 < p.efficiency <= 1.0 + 1e-9
        # Weak scaling holds efficiency far better than strong scaling.
        assert pts[-1].efficiency > 0.8

    def test_validation(self):
        from repro.perfmodel import cluster_strong_scaling

        with pytest.raises(ValueError):
            cluster_strong_scaling(app_spec("cloverleaf3d"), XEON_MAX_9480,
                                   CFG, node_counts=())
