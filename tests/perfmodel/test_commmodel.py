"""Unit tests for the halo-exchange communication cost model."""

import pytest

from repro.machine import (
    A100_40GB,
    XEON_8360Y,
    XEON_MAX_9480,
    Compiler,
    Parallelization,
    RunConfig,
)
from repro.perfmodel import (
    AppClass,
    AppSpec,
    LoopSpec,
    estimate_comm,
    structured_comm,
    unstructured_comm,
)


def structured_app(**kw):
    base = dict(
        name="s",
        klass=AppClass.STRUCTURED_BW,
        dtype_bytes=8,
        iterations=10,
        loops=(LoopSpec("l", 1e6, 80, 20),),
        domain=(2048, 2048),
        halo_depth=2,
        fields_exchanged=3.0,
        exchanges_per_iter=5.0,
    )
    base.update(kw)
    return AppSpec(**base)


def unstructured_app(**kw):
    base = dict(
        name="u",
        klass=AppClass.UNSTRUCTURED,
        dtype_bytes=8,
        iterations=10,
        loops=(LoopSpec("l", 1e6, 80, 20, indirect_per_point=4),),
        domain=(200, 200, 200),
        mesh_neighbors=8.0,
        exchanges_per_iter=2.0,
    )
    base.update(kw)
    return AppSpec(**base)


MPI = RunConfig(Compiler.ONEAPI, Parallelization.MPI)
OMP = RunConfig(Compiler.ONEAPI, Parallelization.MPI_OMP)


class TestDispatch:
    def test_gpu_communicates_nothing(self):
        cfg = RunConfig(Compiler.NVCC, Parallelization.CUDA)
        est = estimate_comm(structured_app(), A100_40GB, cfg)
        assert est.time_per_iter == 0.0
        assert est.messages_per_iter == 0.0

    def test_unstructured_class_routed(self):
        est = estimate_comm(unstructured_app(), XEON_MAX_9480, MPI)
        assert est.time_per_iter > 0


class TestStructured:
    def test_hybrid_fewer_messages_than_pure_mpi(self):
        """The Figure 7 premise: 'fewer messages are being sent' — the
        hybrid's raw wire time is comparable (its messages are larger);
        its overall win comes from latency counts and load imbalance."""
        app = structured_app()
        mpi = structured_comm(app, XEON_MAX_9480, MPI)
        omp = structured_comm(app, XEON_MAX_9480, OMP)
        assert omp.messages_per_iter < mpi.messages_per_iter
        assert omp.time_per_iter < 2 * mpi.time_per_iter

    def test_volume_scales_with_halo_and_fields(self):
        thin = structured_comm(structured_app(halo_depth=1, fields_exchanged=1.0),
                               XEON_MAX_9480, MPI)
        fat = structured_comm(structured_app(halo_depth=4, fields_exchanged=4.0),
                              XEON_MAX_9480, MPI)
        assert fat.volume_per_iter == pytest.approx(16 * thin.volume_per_iter)

    def test_reductions_add_time(self):
        with_red = structured_comm(structured_app(reductions_per_iter=3.0),
                                   XEON_MAX_9480, MPI)
        without = structured_comm(structured_app(), XEON_MAX_9480, MPI)
        assert with_red.time_per_iter > without.time_per_iter

    def test_3d_has_more_neighbors(self):
        d2 = structured_comm(structured_app(domain=(2048, 2048)), XEON_MAX_9480, MPI)
        d3 = structured_comm(structured_app(domain=(160, 160, 160)), XEON_MAX_9480, MPI)
        assert d3.messages_per_iter > d2.messages_per_iter

    def test_ht_doubles_ranks_and_messages_cost(self):
        app = structured_app()
        base = structured_comm(app, XEON_MAX_9480, MPI)
        ht = structured_comm(app, XEON_MAX_9480, MPI.with_(hyperthreading=True))
        # Same per-rank neighbor structure, but smaller subdomains and
        # more contention: per-rank volume shrinks.
        assert ht.volume_per_iter < base.volume_per_iter


class TestUnstructured:
    def test_neighbor_count_capped_by_ranks(self):
        app = unstructured_app(mesh_neighbors=50.0)
        # MPI+OpenMP on the MAX: 8 ranks -> at most 7 neighbors.
        est = unstructured_comm(app, XEON_MAX_9480, OMP)
        assert est.messages_per_iter <= 7 * app.exchanges_per_iter

    def test_surface_law(self):
        """Halo volume grows sublinearly with mesh size: (N)^(2/3)."""
        small = unstructured_comm(unstructured_app(domain=(100, 100, 100)),
                                  XEON_MAX_9480, MPI)
        big = unstructured_comm(unstructured_app(domain=(200, 200, 200)),
                                XEON_MAX_9480, MPI)
        ratio = big.volume_per_iter / small.volume_per_iter
        assert ratio == pytest.approx(8 ** (2 / 3), rel=0.01)

    def test_time_positive_and_scales_with_fields(self):
        one = unstructured_comm(unstructured_app(fields_exchanged=1.0),
                                XEON_8360Y, MPI)
        five = unstructured_comm(unstructured_app(fields_exchanged=5.0),
                                 XEON_8360Y, MPI)
        assert 0 < one.time_per_iter < five.time_per_iter


class TestClusterComm:
    """Multi-node estimates: estimate_comm(nodes>1) routes through the
    cluster model and reports the inter-node wire component."""

    def test_single_node_path_unchanged(self):
        app = structured_app()
        assert estimate_comm(app, XEON_MAX_9480, MPI) == \
            estimate_comm(app, XEON_MAX_9480, MPI, nodes=1)
        assert estimate_comm(app, XEON_MAX_9480, MPI).internode_wire_per_iter == 0.0

    def test_multi_node_reports_internode_wire(self):
        app = structured_app()
        est = estimate_comm(app, XEON_MAX_9480, MPI, nodes=4)
        assert est.internode_wire_per_iter > 0.0
        assert est.internode_wire_per_iter <= est.wire_per_iter
        assert est.time_per_iter > 0.0

    def test_more_nodes_cost_more_collective(self):
        app = structured_app(reductions_per_iter=2.0)
        two = estimate_comm(app, XEON_8360Y, MPI, nodes=2)
        eight = estimate_comm(app, XEON_8360Y, MPI, nodes=8)
        assert eight.collective_per_iter > two.collective_per_iter > 0.0

    def test_custom_network_matters(self):
        from repro.machine import NetworkSpec

        app = structured_app()
        fast = estimate_comm(app, XEON_MAX_9480, MPI, nodes=4,
                             network=NetworkSpec(bandwidth=200e9))
        slow = estimate_comm(app, XEON_MAX_9480, MPI, nodes=4,
                             network=NetworkSpec(bandwidth=5e9))
        assert slow.internode_wire_per_iter > fast.internode_wire_per_iter

    def test_unstructured_cluster_path(self):
        app = unstructured_app()
        est = estimate_comm(app, XEON_8360Y, MPI, nodes=4)
        assert est.internode_wire_per_iter > 0.0
        assert est.messages_per_iter > 0

    def test_rejects_bad_nodes(self):
        with pytest.raises(ValueError):
            estimate_comm(structured_app(), XEON_MAX_9480, MPI, nodes=0)
