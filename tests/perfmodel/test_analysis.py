"""Tests for the roofline analysis/visualization helpers."""

import pytest

from repro.harness.runner import app_spec
from repro.machine import XEON_8360Y, XEON_MAX_9480, best_practice_config
from repro.perfmodel.analysis import (
    RooflinePoint,
    bottleneck_summary,
    render_roofline,
    roofline_points,
)


@pytest.fixture(scope="module")
def clover_points():
    cfg = best_practice_config(XEON_MAX_9480)
    return roofline_points(app_spec("cloverleaf2d"), XEON_MAX_9480, cfg)


class TestRooflinePoints:
    def test_points_cover_loops(self, clover_points):
        assert len(clover_points) > 10
        names = {p.name for p in clover_points}
        assert "pdv" in names

    def test_time_shares_sum_to_one(self, clover_points):
        assert sum(p.time_share for p in clover_points) == pytest.approx(1.0)

    def test_achieved_below_roof(self, clover_points):
        """No kernel exceeds min(bw * AI, peak)."""
        bw = XEON_MAX_9480.stream_bandwidth
        peak = XEON_MAX_9480.peak_flops(8)
        for p in clover_points:
            roof = min(bw * p.intensity, peak) / 1e9
            assert p.gflops <= roof * 1.001, p.name

    def test_bandwidth_bound_app(self, clover_points):
        shares = bottleneck_summary(clover_points)
        assert shares.get("bandwidth", 0) > 0.8

    def test_minibude_is_compute_bound(self):
        cfg = best_practice_config(XEON_MAX_9480)
        pts = roofline_points(app_spec("minibude"), XEON_MAX_9480, cfg)
        shares = bottleneck_summary(pts)
        assert shares.get("compute", 0) > 0.8

    def test_mgcfd_has_latency_share(self):
        cfg = best_practice_config(XEON_MAX_9480)
        pts = roofline_points(app_spec("mgcfd"), XEON_MAX_9480, cfg)
        assert any(p.bottleneck == "latency" for p in pts)


class TestRender:
    def test_renders_roof_and_marks(self, clover_points):
        text = render_roofline(clover_points, XEON_MAX_9480)
        assert "roofline: Intel Xeon CPU MAX 9480" in text
        assert "/" in text  # bandwidth slope
        assert "_" in text  # compute ceiling
        assert any(m in text for m in ("O", "o", "."))

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            render_roofline([], XEON_MAX_9480)

    def test_custom_size(self, clover_points):
        text = render_roofline(clover_points, XEON_MAX_9480, width=30, height=8)
        lines = text.split("\n")
        assert len(lines) == 8 + 3  # header + rows + axis + caption
