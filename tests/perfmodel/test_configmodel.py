"""Unit tests for the configuration-effects model."""

import pytest

from repro.machine import (
    A100_40GB,
    EPYC_7V73X,
    XEON_8360Y,
    XEON_MAX_9480,
    Compiler,
    Parallelization,
    RunConfig,
    ZmmUsage,
)
from repro.perfmodel import (
    AppClass,
    AppSpec,
    LoopSpec,
    app_memory_bandwidth,
    effective_flops,
    gather_throughput,
    kernel_concurrency,
    kernel_vectorizes,
    loop_overhead,
    sycl_time_multiplier,
    traffic_multiplier,
    vector_width_used,
)
from repro.perfmodel import calibration as cal


def mk_loop(**kw):
    base = dict(name="l", points=1e6, bytes_per_point=80.0, flops_per_point=20.0)
    base.update(kw)
    return LoopSpec(**base)


def mk_app(klass=AppClass.STRUCTURED_BW, **kw):
    base = dict(name="a", klass=klass, dtype_bytes=8, iterations=10,
                loops=(mk_loop(),), domain=(1000, 1000))
    base.update(kw)
    return AppSpec(**base)


CFG = RunConfig(Compiler.ONEAPI, Parallelization.MPI)
CFG_HIGH = CFG.with_(zmm=ZmmUsage.HIGH)


class TestVectorWidth:
    def test_default_is_256_on_avx512(self):
        assert vector_width_used(XEON_MAX_9480, CFG) == 256
        assert vector_width_used(XEON_MAX_9480, CFG_HIGH) == 512

    def test_epyc_capped_at_256(self):
        cfg = RunConfig(Compiler.AOCC, Parallelization.MPI)
        assert vector_width_used(EPYC_7V73X, cfg) == 256

    def test_gpu_full_width(self):
        cfg = RunConfig(Compiler.NVCC, Parallelization.CUDA)
        assert vector_width_used(A100_40GB, cfg) == A100_40GB.isa.width_bits


class TestVectorization:
    def test_structured_always_vectorizes(self):
        assert kernel_vectorizes(CFG, mk_app(), mk_loop())

    def test_indirect_inc_needs_vec_scheme(self):
        unvec = mk_loop(vectorizable=False, indirect_per_point=4)
        assert not kernel_vectorizes(CFG, mk_app(), unvec)
        vec_cfg = RunConfig(Compiler.ONEAPI, Parallelization.MPI_VEC)
        assert kernel_vectorizes(vec_cfg, mk_app(), unvec)
        sycl = RunConfig(Compiler.ONEAPI, Parallelization.MPI_SYCL_FLAT)
        assert kernel_vectorizes(sycl, mk_app(), unvec)

    def test_cuda_always_vectorizes(self):
        cfg = RunConfig(Compiler.NVCC, Parallelization.CUDA)
        assert kernel_vectorizes(cfg, mk_app(), mk_loop(vectorizable=False))


class TestEffectiveFlops:
    def test_zmm_high_faster_but_sublinear(self):
        app, l = mk_app(), mk_loop()
        lo = effective_flops(XEON_MAX_9480, CFG, app, l)
        hi = effective_flops(XEON_MAX_9480, CFG_HIGH, app, l)
        assert 1.2 < hi / lo < 2.0  # sublinear width scaling

    def test_scalar_much_slower_than_simd(self):
        app = mk_app(klass=AppClass.UNSTRUCTURED)
        vec = effective_flops(XEON_MAX_9480, CFG_HIGH, app, mk_loop())
        scal = effective_flops(
            XEON_MAX_9480, CFG_HIGH, app, mk_loop(vectorizable=False)
        )
        assert vec / scal > 4

    def test_ht_penalty_only_for_compute_bound(self):
        l = mk_loop()
        comp = mk_app(klass=AppClass.COMPUTE_BOUND)
        bw = mk_app(klass=AppClass.STRUCTURED_BW)
        cfg_ht = CFG_HIGH.with_(hyperthreading=True)
        assert effective_flops(XEON_MAX_9480, cfg_ht, comp, l) < effective_flops(
            XEON_MAX_9480, CFG_HIGH, comp, l
        )
        assert effective_flops(XEON_MAX_9480, cfg_ht, bw, l) == effective_flops(
            XEON_MAX_9480, CFG_HIGH, bw, l
        )

    def test_max_beats_8360y_at_full_width(self):
        """The heavier Ice Lake AVX-512 downclock gives the MAX a ~1.8x
        compute edge (the miniBUDE story)."""
        app, l = mk_app(klass=AppClass.COMPUTE_BOUND), mk_loop(dtype_bytes=4)
        ratio = effective_flops(XEON_MAX_9480, CFG_HIGH, app, l) / effective_flops(
            XEON_8360Y, CFG_HIGH, app, l
        )
        assert ratio == pytest.approx(1.8, abs=0.15)


class TestBandwidth:
    def test_concurrency_diluted_by_radius_and_streams(self):
        base = kernel_concurrency(XEON_MAX_9480, CFG, mk_loop())
        wide = kernel_concurrency(XEON_MAX_9480, CFG, mk_loop(radius=4))
        many = kernel_concurrency(XEON_MAX_9480, CFG, mk_loop(streams=12))
        assert wide < base
        assert many < base

    def test_concurrency_binds_on_hbm_not_ddr(self):
        """The Figure 8 mechanism: the same kernel loses bandwidth on the
        MAX but not on the 8360Y."""
        app = mk_app()
        l = mk_loop(radius=4, streams=10)
        frac_max = app_memory_bandwidth(
            XEON_MAX_9480, CFG, app, l, XEON_MAX_9480.stream_bandwidth
        ) / XEON_MAX_9480.stream_bandwidth
        frac_icx = app_memory_bandwidth(
            XEON_8360Y, CFG, app, l, XEON_8360Y.stream_bandwidth
        ) / XEON_8360Y.stream_bandwidth
        assert frac_max < 0.6
        assert frac_icx > 0.75

    def test_cache_resident_skips_concurrency_ceiling(self):
        app, l = mk_app(), mk_loop(radius=4, streams=10)
        cache_bw = app_memory_bandwidth(
            XEON_MAX_9480, CFG, app, l, XEON_MAX_9480.stream_bandwidth * 3
        )
        assert cache_bw > XEON_MAX_9480.stream_bandwidth

    def test_gpu_uses_gpu_efficiency(self):
        cfg = RunConfig(Compiler.NVCC, Parallelization.CUDA)
        bw = app_memory_bandwidth(A100_40GB, cfg, mk_app(), mk_loop(),
                                  A100_40GB.stream_bandwidth)
        assert bw == pytest.approx(A100_40GB.stream_bandwidth * cal.GPU_BW_EFFICIENCY)

    def test_vec_pack_traffic_overhead(self):
        l = mk_loop(indirect_per_point=4)
        vec = RunConfig(Compiler.ONEAPI, Parallelization.MPI_VEC, ZmmUsage.HIGH)
        assert traffic_multiplier(XEON_MAX_9480, vec, mk_app(), l) == pytest.approx(
            cal.VEC_PACK_OVERHEAD_512
        )
        vec256 = RunConfig(Compiler.AOCC, Parallelization.MPI_VEC)
        assert traffic_multiplier(EPYC_7V73X, vec256, mk_app(), l) == pytest.approx(
            cal.VEC_PACK_OVERHEAD_256
        )
        assert traffic_multiplier(XEON_MAX_9480, CFG, mk_app(), l) == 1.0


class TestOverheads:
    def test_ordering(self):
        mpi = loop_overhead(XEON_MAX_9480, CFG)
        omp = loop_overhead(XEON_MAX_9480, RunConfig(Compiler.ONEAPI, Parallelization.MPI_OMP))
        sycl = loop_overhead(XEON_MAX_9480, RunConfig(Compiler.ONEAPI, Parallelization.MPI_SYCL_FLAT))
        assert mpi < omp < sycl

    def test_omp_barrier_grows_with_ht(self):
        base = RunConfig(Compiler.ONEAPI, Parallelization.MPI_OMP)
        assert loop_overhead(XEON_MAX_9480, base.with_(hyperthreading=True)) > loop_overhead(
            XEON_MAX_9480, base
        )

    def test_ndrange_multiplier(self):
        flat = RunConfig(Compiler.ONEAPI, Parallelization.MPI_SYCL_FLAT)
        ndr = RunConfig(Compiler.ONEAPI, Parallelization.MPI_SYCL_NDRANGE)
        assert sycl_time_multiplier(flat) == 1.0
        assert sycl_time_multiplier(ndr) > 1.0


class TestGather:
    def test_ht_boosts_gather(self):
        app = mk_app(klass=AppClass.UNSTRUCTURED, domain=(10**7,))
        lo = gather_throughput(XEON_MAX_9480, CFG, app)
        hi = gather_throughput(XEON_MAX_9480, CFG.with_(hyperthreading=True), app)
        assert hi > lo

    def test_gpu_gathers_fastest(self):
        app = mk_app(klass=AppClass.UNSTRUCTURED, domain=(10**7,))
        cfg = RunConfig(Compiler.NVCC, Parallelization.CUDA)
        assert gather_throughput(A100_40GB, cfg, app) > gather_throughput(
            XEON_MAX_9480, CFG.with_(hyperthreading=True), app
        )

    def test_llc_resident_gathered_field_boosts_hit_rate(self):
        """The EPYC V-cache effect: a small mesh's gathers hit cache."""
        small = mk_app(klass=AppClass.UNSTRUCTURED, domain=(10**6,), gather_hit=0.05)
        large = mk_app(klass=AppClass.UNSTRUCTURED, domain=(10**9,), gather_hit=0.05)
        assert gather_throughput(EPYC_7V73X, CFG.with_(compiler=Compiler.AOCC), small) > \
            gather_throughput(EPYC_7V73X, CFG.with_(compiler=Compiler.AOCC), large)
