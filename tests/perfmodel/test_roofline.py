"""Unit tests for the roofline+latency estimator."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.machine import (
    A100_40GB,
    XEON_8360Y,
    XEON_MAX_9480,
    Compiler,
    Parallelization,
    RunConfig,
    ZmmUsage,
)
from repro.perfmodel import (
    AppClass,
    AppSpec,
    LoopSpec,
    estimate_app,
    loop_time,
)

CFG = RunConfig(Compiler.ONEAPI, Parallelization.MPI, ZmmUsage.HIGH)


def mk_app(loops, klass=AppClass.STRUCTURED_BW, **kw):
    base = dict(name="a", klass=klass, dtype_bytes=8, iterations=10,
                loops=tuple(loops), domain=(2048, 2048),
                state_bytes=4e9)
    base.update(kw)
    return AppSpec(**base)


def bw_loop(**kw):
    base = dict(name="bw", points=4e6, bytes_per_point=160.0, flops_per_point=10.0)
    base.update(kw)
    return LoopSpec(**base)


def fl_loop(**kw):
    base = dict(name="fl", points=4e6, bytes_per_point=8.0, flops_per_point=5000.0,
                dtype_bytes=4)
    base.update(kw)
    return LoopSpec(**base)


class TestLoopTime:
    def test_bandwidth_bound_kernel(self):
        l = bw_loop()
        lt = loop_time(l, mk_app([l]), XEON_MAX_9480, CFG)
        assert lt.bottleneck == "bandwidth"
        # Within the derated STREAM envelope:
        assert lt.t_bandwidth >= l.bytes_total / XEON_MAX_9480.stream_bandwidth

    def test_compute_bound_kernel(self):
        l = fl_loop()
        lt = loop_time(l, mk_app([l], klass=AppClass.COMPUTE_BOUND, dtype_bytes=4),
                       XEON_MAX_9480, CFG)
        assert lt.bottleneck == "compute"

    def test_latency_bound_kernel(self):
        l = bw_loop(bytes_per_point=16.0, indirect_per_point=50.0,
                    indirect_bytes_per_point=8.0, vectorizable=False)
        lt = loop_time(l, mk_app([l], klass=AppClass.UNSTRUCTURED,
                                 domain=(10**9,), gather_hit=0.05),
                       XEON_MAX_9480, CFG)
        assert lt.t_latency > 0

    def test_time_at_least_each_bottleneck(self):
        l = bw_loop()
        lt = loop_time(l, mk_app([l]), XEON_MAX_9480, CFG)
        assert lt.time >= max(lt.t_bandwidth, lt.t_compute, lt.t_latency)

    def test_invocations_multiply_overhead(self):
        l1 = bw_loop(invocations=1.0)
        l9 = bw_loop(invocations=9.0)
        app = mk_app([l1])
        a = loop_time(l1, app, XEON_MAX_9480, CFG)
        b = loop_time(l9, app, XEON_MAX_9480, CFG)
        assert b.overhead == pytest.approx(9 * a.overhead)

    def test_stalling_compiler_rejected(self):
        l = bw_loop()
        app = mk_app([l], compiler_affinity={Compiler.CLASSIC: 0.0})
        with pytest.raises(ValueError, match="stalls"):
            loop_time(l, app, XEON_MAX_9480, CFG.with_(compiler=Compiler.CLASSIC))

    def test_working_set_override_uses_cache(self):
        l = bw_loop()
        app = mk_app([l])
        mem = loop_time(l, app, XEON_MAX_9480, CFG)
        cached = loop_time(l, app, XEON_MAX_9480, CFG, working_set=8 * 2**20)
        assert cached.t_bandwidth < mem.t_bandwidth / 2


class TestEstimateApp:
    def test_totals_scale_with_iterations(self):
        l = bw_loop()
        e10 = estimate_app(mk_app([l], iterations=10), XEON_MAX_9480, CFG)
        e20 = estimate_app(mk_app([l], iterations=20), XEON_MAX_9480, CFG)
        assert e20.total_time == pytest.approx(2 * e10.total_time)
        assert e20.counted_bytes == pytest.approx(2 * e10.counted_bytes)

    def test_split_sums_to_total(self):
        est = estimate_app(mk_app([bw_loop()]), XEON_MAX_9480, CFG)
        assert est.compute_time + est.mpi_time == pytest.approx(est.total_time)
        assert 0 < est.mpi_fraction < 1

    def test_gpu_has_no_mpi_time(self):
        cfg = RunConfig(Compiler.NVCC, Parallelization.CUDA)
        est = estimate_app(mk_app([bw_loop()]), A100_40GB, cfg)
        assert est.mpi_time == 0.0

    def test_effective_bandwidth_definition(self):
        est = estimate_app(mk_app([bw_loop()]), XEON_MAX_9480, CFG)
        assert est.effective_bandwidth == pytest.approx(
            est.counted_bytes / est.compute_time
        )

    def test_bandwidth_bound_app_faster_on_hbm(self):
        app = mk_app([bw_loop()])
        t_max = estimate_app(app, XEON_MAX_9480, CFG).total_time
        t_icx = estimate_app(app, XEON_8360Y, CFG).total_time
        assert 3.0 < t_icx / t_max < 5.5

    @given(bpp=st.floats(min_value=8, max_value=1000),
           fpp=st.floats(min_value=1, max_value=1000))
    @settings(max_examples=30, deadline=None)
    def test_time_monotone_in_work(self, bpp, fpp):
        small = mk_app([bw_loop(bytes_per_point=bpp, flops_per_point=fpp)])
        bigger = mk_app([bw_loop(bytes_per_point=bpp * 2, flops_per_point=fpp * 2)])
        t1 = estimate_app(small, XEON_MAX_9480, CFG).total_time
        t2 = estimate_app(bigger, XEON_MAX_9480, CFG).total_time
        assert t2 >= t1
