"""Tests for Cartesian grids, block distribution, and halo exchange."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.simmpi import (
    CartGrid, World, dims_create, exchange_halos, local_range, neighbor_table,
    prime_factors,
)


class TestDimsCreate:
    def test_perfect_square(self):
        assert dims_create(16, 2) == (4, 4)

    def test_prime_count(self):
        assert dims_create(7, 2) == (7, 1)

    def test_3d(self):
        assert dims_create(8, 3) == (2, 2, 2)
        assert dims_create(12, 3) == (3, 2, 2)

    def test_one_rank(self):
        assert dims_create(1, 3) == (1, 1, 1)

    def test_rejects_bad_input(self):
        with pytest.raises(ValueError):
            dims_create(0, 2)

    @given(n=st.integers(1, 512), d=st.integers(1, 4))
    @settings(max_examples=80, deadline=None)
    def test_product_preserved_and_sorted(self, n, d):
        dims = dims_create(n, d)
        assert int(np.prod(dims)) == n
        assert list(dims) == sorted(dims, reverse=True)


class TestPrimeFactors:
    def test_one_has_no_factors(self):
        assert prime_factors(1) == []

    def test_prime(self):
        assert prime_factors(9973) == [9973]

    def test_composite_with_multiplicity(self):
        assert prime_factors(360) == [2, 2, 2, 3, 3, 5]
        assert prime_factors(4096) == [2] * 12

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            prime_factors(0)

    @given(n=st.integers(1, 100_000))
    @settings(max_examples=80, deadline=None)
    def test_product_and_order(self, n):
        fs = prime_factors(n)
        assert int(np.prod(fs, dtype=np.int64)) == n if fs else n == 1
        assert fs == sorted(fs)

    def test_large_prime_is_fast(self):
        # Trial division up to sqrt(n): instant even for 8-digit primes.
        assert prime_factors(99_999_989) == [99_999_989]

    def test_dims_create_at_scale(self):
        assert dims_create(4096, 3) == (16, 16, 16)
        assert dims_create(10_000, 2) == (100, 100)
        assert dims_create(9973, 3) == (9973, 1, 1)


class TestNeighborTable:
    @pytest.mark.parametrize("dims,periodic", [
        ((6,), (False,)),
        ((6,), (True,)),
        ((4, 5), (False, False)),
        ((4, 5), (True, True)),
        ((3, 4, 2), (True, False, True)),
    ])
    def test_matches_scalar_neighbor(self, dims, periodic):
        grid = CartGrid(dims, periodic=periodic)
        table = neighbor_table(grid)
        for (dim, disp), col in table.items():
            assert col.shape == (grid.size,)
            for r in range(grid.size):
                want = grid.neighbor(r, dim, disp)
                got = int(col[r])
                assert got == (want if want is not None else -1), (dim, disp, r)

    def test_covers_all_directions(self):
        grid = CartGrid((2, 3, 4))
        table = neighbor_table(grid)
        assert set(table) == {(d, s) for d in range(3) for s in (-1, 1)}

    def test_4096_rank_table_is_cheap(self):
        grid = CartGrid(dims_create(4096, 3), periodic=(True,) * 3)
        table = neighbor_table(grid)
        # Every rank has a neighbor in every direction on a periodic grid.
        for col in table.values():
            assert (col >= 0).all()


class TestLocalRange:
    def test_even_split(self):
        assert local_range(100, 4, 0) == (0, 25)
        assert local_range(100, 4, 3) == (75, 100)

    def test_remainder_goes_to_first_blocks(self):
        sizes = [local_range(10, 3, i) for i in range(3)]
        assert sizes == [(0, 4), (4, 7), (7, 10)]

    @given(n=st.integers(1, 10_000), parts=st.integers(1, 64))
    @settings(max_examples=80, deadline=None)
    def test_partition_properties(self, n, parts):
        ranges = [local_range(n, parts, i) for i in range(parts)]
        # Contiguous cover of [0, n) without overlap.
        assert ranges[0][0] == 0
        assert ranges[-1][1] == n
        for (a0, a1), (b0, b1) in zip(ranges, ranges[1:]):
            assert a1 == b0
        # Balance within 1.
        sizes = [b - a for a, b in ranges]
        assert max(sizes) - min(sizes) <= 1

    def test_rejects_bad_index(self):
        with pytest.raises(ValueError):
            local_range(10, 2, 2)


class TestCartGrid:
    def test_roundtrip(self):
        g = CartGrid((3, 4))
        for r in range(12):
            assert g.rank(g.coords(r)) == r

    def test_neighbors_interior(self):
        g = CartGrid((3, 3))
        center = g.rank((1, 1))
        n = g.neighbors(center)
        assert n[(0, -1)] == g.rank((0, 1))
        assert n[(0, 1)] == g.rank((2, 1))
        assert n[(1, -1)] == g.rank((1, 0))
        assert n[(1, 1)] == g.rank((1, 2))

    def test_boundary_nonperiodic(self):
        g = CartGrid((2, 2))
        assert g.neighbor(0, 0, -1) is None
        assert g.neighbor(0, 1, -1) is None

    def test_periodic_wraps(self):
        g = CartGrid((3,), periodic=(True,))
        assert g.neighbor(0, 0, -1) == 2
        assert g.neighbor(2, 0, 1) == 0

    def test_validation(self):
        with pytest.raises(ValueError):
            CartGrid((0, 2))
        with pytest.raises(ValueError):
            CartGrid((2, 2), periodic=(True,))
        with pytest.raises(ValueError):
            CartGrid((2, 2)).coords(4)
        with pytest.raises(ValueError):
            CartGrid((2, 2)).rank((2, 0))


class TestHaloExchange:
    """Distributed ghost exchange must reproduce the serial neighborhoods."""

    @staticmethod
    def _distributed_field(nranks, dims, global_shape, depth):
        """Each rank owns a block of a global index field; after exchange,
        ghost cells must equal the global field values."""
        grid = CartGrid(dims)
        gx = np.arange(np.prod(global_shape), dtype=np.float64).reshape(global_shape)

        def program(comm):
            coords = grid.coords(comm.rank)
            ranges = [local_range(global_shape[d], dims[d], coords[d]) for d in range(len(dims))]
            shape = [r[1] - r[0] + 2 * depth for r in ranges]
            local = np.full(shape, np.nan)
            interior = tuple(slice(depth, depth + (r[1] - r[0])) for r in ranges)
            local[interior] = gx[tuple(slice(r[0], r[1]) for r in ranges)]
            exchange_halos(comm, grid, local, depth)
            # Check every ghost against the global array.
            for idx in np.ndindex(*shape):
                gidx = tuple(ranges[d][0] + idx[d] - depth for d in range(len(dims)))
                inside = all(0 <= gidx[d] < global_shape[d] for d in range(len(dims)))
                if inside:
                    is_interior = all(
                        depth <= idx[d] < shape[d] - depth for d in range(len(dims))
                    )
                    expected = gx[gidx]
                    if is_interior or not np.isnan(local[idx]):
                        assert local[idx] == expected, (idx, gidx)
            return True

        return World(nranks).run(program)

    def test_1d_exchange(self):
        assert all(self._distributed_field(4, (4,), (32,), 2))

    def test_2d_exchange(self):
        assert all(self._distributed_field(4, (2, 2), (16, 12), 1))

    def test_2d_deep_halos(self):
        # Depth-4 halos as in the 8th-order Acoustic stencil.
        assert all(self._distributed_field(4, (2, 2), (24, 24), 4))

    def test_3d_exchange(self):
        assert all(self._distributed_field(8, (2, 2, 2), (12, 12, 12), 1))

    def test_corner_ghosts_filled_in_2d(self):
        """Dimension-by-dimension exchange must deliver corner values."""
        grid = CartGrid((2, 2))
        g = np.arange(64, dtype=np.float64).reshape(8, 8)

        def program(comm):
            cy, cx = grid.coords(comm.rank)
            ys = local_range(8, 2, cy)
            xs = local_range(8, 2, cx)
            local = np.full((4 + 2, 4 + 2), np.nan)
            local[1:-1, 1:-1] = g[ys[0]:ys[1], xs[0]:xs[1]]
            exchange_halos(comm, grid, local, 1)
            return local

        results = World(4).run(program)
        # Rank 0 (top-left block): its bottom-right corner ghost is g[4,4].
        assert results[0][5, 5] == g[4, 4]
        # Rank 3 (bottom-right block): its top-left corner ghost is g[3,3].
        assert results[3][0, 0] == g[3, 3]

    def test_rejects_bad_depth(self):
        def program(comm):
            exchange_halos(comm, CartGrid((1,)), np.zeros(10), 0)

        with pytest.raises(Exception, match="depth"):
            World(1).run(program)

    def test_rejects_too_small_extent(self):
        def program(comm):
            exchange_halos(comm, CartGrid((2,)), np.zeros(5), 2)

        with pytest.raises(Exception, match="too small"):
            World(2).run(program)

    def test_rejects_dimension_mismatch(self):
        def program(comm):
            exchange_halos(comm, CartGrid((2, 1)), np.zeros(10), 1)

        with pytest.raises(Exception, match="dimensionality"):
            World(2).run(program)
