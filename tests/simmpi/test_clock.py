"""Tests for virtual clocks, cost models, and MPI time accounting."""

import numpy as np
import pytest

from repro.machine import EPYC_7V73X, XEON_8360Y, XEON_MAX_9480
from repro.simmpi import (
    MachineCostModel,
    VirtualClock,
    World,
    ZeroCostModel,
    default_placement,
)


class TestVirtualClock:
    def test_compute_accumulates(self):
        c = VirtualClock()
        c.advance_compute(1.0)
        c.advance_compute(0.5)
        assert c.now == pytest.approx(1.5)
        assert c.compute_time == pytest.approx(1.5)
        assert c.mpi_time == 0.0

    def test_advance_mpi_only_forward(self):
        c = VirtualClock()
        c.advance_compute(2.0)
        c.advance_mpi(1.0)  # in the past: no-op
        assert c.now == pytest.approx(2.0)
        c.advance_mpi(3.0)
        assert c.now == pytest.approx(3.0)
        assert c.mpi_time == pytest.approx(1.0)

    def test_mpi_fraction(self):
        c = VirtualClock()
        c.advance_compute(3.0)
        c.advance_mpi(4.0)
        assert c.mpi_fraction == pytest.approx(0.25)

    def test_fraction_zero_at_start(self):
        assert VirtualClock().mpi_fraction == 0.0

    def test_rejects_negative(self):
        c = VirtualClock()
        with pytest.raises(ValueError):
            c.advance_compute(-1.0)
        with pytest.raises(ValueError):
            c.charge_mpi(-1.0)


class TestDefaultPlacement:
    def test_full_machine_pure_mpi(self):
        p = XEON_MAX_9480
        pl = default_placement(p, p.total_cores)
        assert pl == list(range(p.total_cores))

    def test_ht_placement_uses_sibling_threads(self):
        p = XEON_MAX_9480
        pl = default_placement(p, p.total_threads, hyperthreading=True)
        assert len(pl) == 224
        assert max(pl) == p.total_threads - 1

    def test_spread_placement_one_rank_per_numa(self):
        p = XEON_MAX_9480  # 8 NUMA domains, 14 cores each
        pl = default_placement(p, 8)
        assert pl == [i * 14 for i in range(8)]
        numas = {p.numa_of_core(c) for c in pl}
        assert len(numas) == 8

    def test_too_many_ranks_rejected(self):
        with pytest.raises(ValueError, match="exceed"):
            default_placement(XEON_8360Y, 1000)


class TestMachineCostModel:
    def model(self, platform=XEON_MAX_9480, nranks=8):
        return MachineCostModel(platform, default_placement(platform, nranks))

    def test_transfer_time_grows_with_size(self):
        m = self.model()
        assert m.transfer_time(0, 1, 1 << 20) > m.transfer_time(0, 1, 1 << 10)

    def test_cross_socket_slower_than_intra_numa(self):
        p = XEON_MAX_9480
        m = MachineCostModel(p, [0, 1, p.cores_per_socket])
        nbytes = 1 << 16
        assert m.transfer_time(0, 2, nbytes) > m.transfer_time(0, 1, nbytes)

    def test_latency_floor_for_empty_message(self):
        m = self.model()
        assert m.transfer_time(0, 1, 0) > 0.0

    def test_collective_scales_with_log_ranks(self):
        m = self.model()
        t2 = m.collective_time(2, 8)
        t64 = m.collective_time(64, 8)
        assert t64 == pytest.approx(6 * t2, rel=0.01)

    def test_collective_free_for_single_rank(self):
        assert self.model().collective_time(1, 8) == 0.0

    def test_unplaced_rank_rejected(self):
        m = self.model(nranks=2)
        with pytest.raises(ValueError, match="placement"):
            m.transfer_time(0, 5, 10)


class TestTimeAccountingInWorld:
    def test_receiver_waits_for_slow_sender(self):
        """A receiver that posts early accumulates MPI wait time until the
        sender's (later) send time plus wire time."""

        def program(comm):
            if comm.rank == 0:
                comm.compute(1.0)  # sender is busy for 1 simulated second
                comm.isend(np.zeros(1000), 1)
                return comm.clock.now
            comm.recv(0)
            return (comm.clock.now, comm.clock.mpi_time)

        p = XEON_MAX_9480
        w = World(2, MachineCostModel(p, [0, 1]))
        results = w.run(program)
        t_recv, wait = results[1]
        assert t_recv > 1.0  # had to wait for the sender
        assert wait == pytest.approx(t_recv, rel=1e-6)  # rank 1 did no compute

    def test_prearrived_message_causes_no_wait(self):
        def program(comm):
            if comm.rank == 0:
                comm.isend(np.zeros(8), 1)
                return None
            comm.compute(1.0)  # message long since arrived
            comm.recv(0)
            return comm.clock.mpi_time

        w = World(2, MachineCostModel(XEON_MAX_9480, [0, 1]))
        results = w.run(program)
        # Only the per-message software overhead remains.
        assert results[1] < 1e-5

    def test_barrier_synchronizes_clocks(self):
        def program(comm):
            comm.compute(float(comm.rank))  # ranks finish at 0,1,2
            comm.barrier()
            return comm.clock.now

        w = World(3, MachineCostModel(XEON_MAX_9480, [0, 1, 2]))
        results = w.run(program)
        assert max(results) - min(results) < 1e-12
        assert results[0] >= 2.0

    def test_zero_cost_model_keeps_clocks_at_compute(self):
        def program(comm):
            comm.compute(0.5)
            comm.barrier()
            return comm.clock.now

        results = World(3, ZeroCostModel()).run(program)
        assert results == [pytest.approx(0.5)] * 3

    def test_world_mpi_fraction(self):
        def program(comm):
            comm.compute(1.0 if comm.rank == 0 else 0.0)
            comm.barrier()

        w = World(2, MachineCostModel(XEON_8360Y, [0, 1]))
        w.run(program)
        assert 0.0 < w.mpi_fraction() < 1.0
        # Rank 1 waited ~1s of its ~1s total; rank 0 waited ~0.
        assert w.clocks[1].mpi_fraction > 0.9
        assert w.clocks[0].mpi_fraction < 0.1

    def test_stats_counters(self):
        def program(comm):
            if comm.rank == 0:
                comm.isend(np.zeros(100), 1)
            elif comm.rank == 1:
                comm.recv(0)
            comm.barrier()

        w = World(2)
        w.run(program)
        assert w.stats[0].messages_sent == 1
        assert w.stats[0].bytes_sent == 800
        assert w.stats[1].messages_received == 1
        assert w.stats[1].bytes_received == 800
        assert all(s.collectives == 1 for s in w.stats)
