"""Event-driven backend: op coverage, backend dispatch, clock parity
with the threaded oracle, bounded deadlock dumps, and large-world
distributed == serial equivalence."""

import json
from pathlib import Path

import numpy as np
import pytest

from repro.simmpi import (
    CartGrid,
    DeadlockError,
    MachineCostModel,
    MpiOp,
    RankFailedError,
    World,
    ZeroCostModel,
    default_placement,
    dims_create,
    exchange_halos,
    exchange_halos_co,
    op,
)
from repro.simmpi.comm import _BlockInfo, _deadlock_message
from repro.simmpi.events import drive_blocking

REPO_ROOT = Path(__file__).resolve().parents[2]
GOLDEN = REPO_ROOT / "baselines" / "golden_equivalence.json"


def clock_state(world):
    """Per-rank (now, compute, mpi) plus traffic counters — everything
    both backends must agree on bit-for-bit."""
    return [
        (
            c.clock.now, c.clock.compute_time, c.clock.mpi_time,
            c.stats.messages_sent, c.stats.bytes_sent,
            c.stats.messages_received, c.stats.bytes_received,
            c.stats.collectives,
        )
        for c in world.comms
    ]


def run_both(program, nranks, cost_model=None, args=()):
    """Run one generator program on both backends; return the worlds
    and their results."""
    we = World(nranks, cost_model=cost_model, backend="events")
    re_ = we.run(program, *args)
    wt = World(nranks, cost_model=cost_model, backend="threads")
    rt = wt.run(program, *args)
    return we, re_, wt, rt


class TestBackendDispatch:
    def test_auto_routes_generators_to_events(self):
        def gen(comm):
            yield op.barrier()
            return comm.rank

        w = World(3)
        assert w.run(gen) == [0, 1, 2]
        assert w.last_backend == "events"

    def test_auto_routes_plain_functions_to_threads(self):
        def plain(comm):
            comm.barrier()
            return comm.rank

        w = World(3)
        assert w.run(plain) == [0, 1, 2]
        assert w.last_backend == "threads"

    def test_events_backend_rejects_plain_functions(self):
        w = World(2, backend="events")
        with pytest.raises(TypeError, match="generator"):
            w.run(lambda comm: comm.rank)

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError, match="backend"):
            World(2, backend="fibers")

    def test_threads_backend_drives_generators(self):
        def gen(comm):
            total = yield op.allreduce(comm.rank)
            return total

        w = World(4, backend="threads")
        assert w.run(gen) == [6, 6, 6, 6]
        assert w.last_backend == "threads"

    def test_events_world_uses_array_ledger(self):
        w = World(5, backend="events")
        assert w.ledger is not None and w.ledger.nranks == 5
        assert World(5).ledger is None

    def test_non_op_yield_raises(self):
        def bad(comm):
            yield 42

        w = World(2, backend="events")
        with pytest.raises(RankFailedError, match="MpiOp"):
            w.run(bad)

    def test_drive_blocking_rejects_non_op(self):
        def bad(comm):
            yield "nope"

        w = World(1, backend="threads")
        with pytest.raises(RankFailedError, match="MpiOp"):
            w.run(bad)


class TestOpCoverage:
    """Each verb works on the event loop and matches the oracle."""

    def test_point_to_point_and_waits(self):
        def prog(comm):
            rank, size = comm.rank, comm.size
            yield op.compute(1e-6 * (rank + 1))
            nxt, prv = (rank + 1) % size, (rank - 1) % size
            reqs = [
                (yield op.irecv(prv, 1)),
                (yield op.irecv(prv, 2)),
            ]
            yield op.isend(np.arange(4) + rank, nxt, 1)
            yield op.isend(rank * 10, nxt, 2)
            a = yield op.wait(reqs[0])
            idx, b = yield op.waitany([reqs[1]])
            assert idx == 0
            got = yield op.sendrecv(rank, nxt, prv, sendtag=3, recvtag=3)
            return float(a.sum()) + b + got

        we, re_, wt, rt = run_both(prog, 5)
        assert re_ == rt
        assert clock_state(we) == clock_state(wt)

    def test_send_recv_blocking_forms(self):
        def prog(comm):
            if comm.rank == 0:
                yield op.send(b"payload", 1, 7)
                return None
            if comm.rank == 1:
                data = yield op.recv(0, 7)
                return bytes(data)
            return None

        we, re_, wt, rt = run_both(prog, 3)
        assert re_ == rt == [None, b"payload", None]

    def test_waitall_ordered(self):
        def prog(comm):
            rank, size = comm.rank, comm.size
            reqs = []
            for src in range(size):
                if src != rank:
                    reqs.append((yield op.irecv(src, 5)))
            for dst in range(size):
                if dst != rank:
                    yield op.isend(rank, dst, 5)
            vals = yield op.waitall(reqs)
            return sorted(vals)

        we, re_, wt, rt = run_both(prog, 4)
        assert re_ == rt
        assert clock_state(we) == clock_state(wt)

    def test_probe_and_test(self):
        def prog(comm):
            if comm.rank == 0:
                yield op.isend(99, 1, 4)
                yield op.barrier()
                return None
            if comm.rank == 1:
                req = yield op.irecv(0, 4)
                flag = yield op.test(req)
                val = req.data if flag else (yield op.wait(req))
                st = yield op.probe(0, 4)
                assert st is None  # already consumed by the irecv
                yield op.barrier()
                return val
            yield op.barrier()
            return None

        we, re_, wt, rt = run_both(prog, 2)
        assert re_[1] == rt[1] == 99

    def test_collectives(self):
        def prog(comm):
            rank = comm.rank
            yield op.barrier()
            b = yield op.bcast(rank * 2 if rank == 1 else None, root=1)
            s = yield op.reduce(rank, op="sum", root=0)
            m = yield op.allreduce(rank, op="max")
            g = yield op.gather(rank, root=2)
            ag = yield op.allgather(rank * rank)
            sc = yield op.scatter(list(range(comm.size)) if rank == 0 else None,
                                  root=0)
            at = yield op.alltoall([rank * 10 + i for i in range(comm.size)])
            return (b, s, m, g, ag, sc, at)

        we, re_, wt, rt = run_both(prog, 4)
        assert re_ == rt
        assert clock_state(we) == clock_state(wt)

    def test_split_subcommunicator(self):
        def prog(comm):
            color = comm.rank % 2
            sub = yield op.split(color, comm.rank)
            total = yield op.allreduce(comm.rank, comm=sub)
            yield op.barrier(comm=sub)
            return (sub.size, total)

        we, re_, wt, rt = run_both(prog, 6)
        assert re_ == rt
        assert re_[0] == (3, 0 + 2 + 4)
        assert re_[1] == (3, 1 + 3 + 5)
        assert clock_state(we) == clock_state(wt)

    def test_split_none_color(self):
        def prog(comm):
            sub = yield op.split(None if comm.rank == 0 else 1, comm.rank)
            if sub is None:
                return None
            return (yield op.allreduce(1, comm=sub))

        we, re_, wt, rt = run_both(prog, 3)
        assert re_ == rt == [None, 2, 2]

    def test_collective_mismatch_raises(self):
        from repro.simmpi import CollectiveMismatchError

        def prog(comm):
            if comm.rank == 0:
                yield op.barrier()
            else:
                yield op.allreduce(1)

        w = World(2, backend="events")
        with pytest.raises(CollectiveMismatchError):
            w.run(prog)

    def test_error_propagates_as_rank_failure(self):
        def prog(comm):
            yield op.compute(1e-6)
            if comm.rank == 1:
                raise RuntimeError("boom")
            yield op.barrier()

        w = World(3, backend="events")
        with pytest.raises(RankFailedError, match="rank 1"):
            w.run(prog)

    def test_irecv_wait_ring(self):
        def prog(comm):
            prv = (comm.rank - 1) % comm.size
            nxt = (comm.rank + 1) % comm.size
            req = yield op.irecv(prv, 1)
            yield op.isend(comm.rank * 2, nxt, 1)
            return (yield op.wait(req))

        we, re_, wt, rt = run_both(prog, 4)
        assert re_ == rt == [6, 0, 2, 4]


class TestClockParity:
    """Per-rank clocks bit-identical between the two backends."""

    @pytest.mark.parametrize("nranks", [2, 3, 8, 13])
    def test_ring_parity_zero_cost(self, nranks):
        def ring(comm):
            rank, size = comm.rank, comm.size
            total = 0.0
            for it in range(3):
                yield op.compute(1e-6 * (rank % 3 + 1))
                got = yield op.sendrecv(
                    float(rank), (rank + 1) % size, (rank - 1) % size,
                    sendtag=it, recvtag=it)
                total += got
                total = yield op.allreduce(total)
            return total

        we, re_, wt, rt = run_both(ring, nranks, ZeroCostModel())
        assert re_ == rt
        assert clock_state(we) == clock_state(wt)

    def test_halo_parity_machine_cost(self):
        from repro.machine import XEON_MAX_9480

        cm = MachineCostModel(
            XEON_MAX_9480, default_placement(XEON_MAX_9480, 16))
        grid = CartGrid(dims_create(16, 2))

        def prog_co(comm):
            local = np.full((6, 6), float(comm.rank))
            for _ in range(2):
                yield op.compute(2e-6)
                yield from exchange_halos_co(comm, grid, local, 1)
            return float(local.sum())

        def prog_block(comm):
            local = np.full((6, 6), float(comm.rank))
            for _ in range(2):
                comm.compute(2e-6)
                exchange_halos(comm, grid, local, 1)
            return float(local.sum())

        we = World(16, cost_model=cm, backend="events")
        re_ = we.run(prog_co)
        wt = World(16, cost_model=cm, backend="threads")
        rt = wt.run(prog_block)
        assert re_ == rt
        assert clock_state(we) == clock_state(wt)
        assert we.max_time == wt.max_time
        assert we.mpi_fraction() == wt.mpi_fraction()


def _golden_pairs():
    data = json.loads(GOLDEN.read_text())
    return [
        (app, platform)
        for app, platforms in sorted(data["estimates"].items())
        for platform in sorted(platforms)
    ]


class TestGoldenPairParity:
    """Bit-identical clocks on the existing golden app x platform pairs:
    for each pair, a halo-exchange program shaped like the app's domain
    runs on the pair's platform cost model under both backends."""

    @pytest.mark.parametrize(
        "app,platform", _golden_pairs(),
        ids=[f"{a}-{p}" for a, p in _golden_pairs()])
    def test_pair_clocks_bit_identical(self, app, platform):
        from repro.apps import get_app
        from repro.machine import get_platform

        defn = get_app(app)
        spec = get_platform(platform)
        ndims = min(len(defn.paper_domain), 3)
        nranks = 8
        if spec.kind.value == "gpu":
            cm = ZeroCostModel()
        else:
            cm = MachineCostModel(spec, default_placement(spec, nranks))
        grid = CartGrid(dims_create(nranks, ndims))

        def prog(comm):
            shape = tuple(4 for _ in range(ndims))
            local = np.full(shape, float(comm.rank + 1))
            for it in range(2):
                yield op.compute(1e-6)
                yield from exchange_halos_co(comm, grid, local, 1)
                total = yield op.allreduce(float(local.sum()))
            return total

        we, re_, wt, rt = run_both(prog, nranks, cm)
        assert re_ == rt
        assert clock_state(we) == clock_state(wt)


class TestDeadlock:
    def test_events_deadlock_detected(self):
        def prog(comm):
            yield op.recv((comm.rank + 1) % comm.size, 9)

        w = World(3, backend="events")
        with pytest.raises(DeadlockError, match="deadlock"):
            w.run(prog)
        assert isinstance(w._failure, RankFailedError)

    def test_small_world_dump_lists_every_rank(self):
        def prog(comm):
            yield op.recv((comm.rank + 1) % comm.size, 9)

        w = World(4, backend="events")
        with pytest.raises(DeadlockError, match="rank 0"):
            w.run(prog)

    def test_large_world_dump_is_bounded(self):
        def prog(comm):
            yield op.recv((comm.rank + 1) % comm.size, 9)

        w = World(30, backend="events")
        with pytest.raises(DeadlockError) as exc:
            w.run(prog)
        msg = str(exc.value)
        assert "30 rank(s) blocked" in msg
        assert "10 more blocked rank(s) elided (10 recv)" in msg
        assert "rank 0:" in msg and "rank 29:" in msg
        assert "rank 15:" not in msg

    def test_deadlock_message_unit(self):
        blocked = {
            r: _BlockInfo("recv" if r % 3 else "collective")
            for r in range(50)
        }
        for info in blocked.values():
            if info.kind == "recv":
                info.request = type(
                    "R", (), {"src": 1, "tag": 2})()
        msg = _deadlock_message(blocked)
        lines = msg.splitlines()
        # header + 10 head + 1 elision + 10 tail
        assert len(lines) == 22
        assert "30 more blocked rank(s) elided" in msg
        assert "collective" in msg and "recv" in msg

    def test_small_dump_not_elided(self):
        blocked = {
            r: _BlockInfo("collective", coll_seq=1, coll_kind="barrier")
            for r in range(20)
        }
        msg = _deadlock_message(blocked)
        assert "elided" not in msg
        assert len(msg.splitlines()) == 21


class TestLargeWorlds:
    def test_1024_rank_distributed_equals_serial(self):
        """Jacobi smoothing on a periodic 64x64 grid: 1024 ranks of 2x2
        cells each must reproduce the serial stencil bit-for-bit."""
        nranks = 1024
        dims = dims_create(nranks, 2)  # (32, 32)
        grid = CartGrid(dims, periodic=(True, True))
        h = w = 2
        H, W = dims[0] * h, dims[1] * w
        iters = 2

        init = (np.arange(H * W, dtype=np.float64).reshape(H, W) * 131 % 23)

        def smooth(local):
            return (
                local[:-2, 1:-1] + local[2:, 1:-1]
                + local[1:-1, :-2] + local[1:-1, 2:]
                + local[1:-1, 1:-1]
            ) * 0.2

        def prog(comm):
            i, j = grid.coords(comm.rank)
            local = np.zeros((h + 2, w + 2))
            local[1:-1, 1:-1] = init[i * h:(i + 1) * h, j * w:(j + 1) * w]
            for _ in range(iters):
                yield from exchange_halos_co(comm, grid, local, 1)
                local[1:-1, 1:-1] = smooth(local)
            gathered = yield op.gather(local[1:-1, 1:-1].copy(), root=0)
            return gathered

        world = World(nranks, backend="events")
        results = world.run(prog)
        assert world.last_backend == "events"

        blocks = results[0]
        out = np.zeros((H, W))
        for r, block in enumerate(blocks):
            i, j = grid.coords(r)
            out[i * h:(i + 1) * h, j * w:(j + 1) * w] = block

        serial = init.copy()
        for _ in range(iters):
            padded = np.pad(serial, 1, mode="wrap")
            serial = smooth(padded)

        assert np.array_equal(out, serial)

    def test_4096_rank_world_is_cheap_to_build(self):
        w = World(4096, backend="events")
        assert w.ledger.nranks == 4096
        assert w.ledger.max_now() == 0.0
        assert w.ledger.mean_mpi_fraction() == 0.0


class TestLedgerViews:
    def test_views_alias_ledger_arrays(self):
        def prog(comm):
            yield op.compute(3e-6)
            yield op.barrier()
            return None

        w = World(4, backend="events")
        w.run(prog)
        for r, c in enumerate(w.comms):
            assert c.clock.now == w.ledger.now[r]
            assert c.stats.collectives == int(w.ledger.collectives[r])
        assert w.max_time == float(w.ledger.now.max())

    def test_mpi_op_repr(self):
        o = op.isend(1, 2, tag=3)
        assert isinstance(o, MpiOp)
        assert "isend" in repr(o)

    def test_drive_blocking_returns_generator_value(self):
        def gen(comm):
            yield op.compute(1e-6)
            return "done"

        w = World(1, backend="threads")
        assert w.run(gen) == ["done"]
