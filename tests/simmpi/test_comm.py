"""Semantics tests for the simulated MPI runtime."""

import numpy as np
import pytest

from repro.simmpi import (
    ANY_SOURCE,
    ANY_TAG,
    DeadlockError,
    RankFailedError,
    World,
)


class TestPointToPoint:
    def test_ring_pass(self):
        def program(comm):
            right = (comm.rank + 1) % comm.size
            left = (comm.rank - 1) % comm.size
            comm.isend(np.array([comm.rank]), right, tag=7)
            got = comm.recv(left, tag=7)
            return int(got[0])

        results = World(4).run(program)
        assert results == [3, 0, 1, 2]

    def test_blocking_send_recv_pair(self):
        def program(comm):
            if comm.rank == 0:
                comm.send({"x": 42}, dest=1)
                return None
            return comm.recv(source=0)

        results = World(2).run(program)
        assert results[1] == {"x": 42}

    def test_payloads_are_copied(self):
        """Mutating the send buffer after isend must not corrupt the message."""

        def program(comm):
            if comm.rank == 0:
                data = np.ones(4)
                comm.isend(data, 1)
                data[:] = -1.0
                return None
            return comm.recv(0)

        results = World(2).run(program)
        np.testing.assert_array_equal(results[1], np.ones(4))

    def test_recv_into_buffer(self):
        def program(comm):
            if comm.rank == 0:
                comm.send(np.arange(6, dtype=np.float64), 1)
                return None
            buf = np.empty((2, 3))
            comm.recv(0, buffer=buf)
            return buf

        results = World(2).run(program)
        np.testing.assert_array_equal(results[1], np.arange(6.0).reshape(2, 3))

    def test_tag_matching_is_selective(self):
        def program(comm):
            if comm.rank == 0:
                comm.isend("tagged-5", 1, tag=5)
                comm.isend("tagged-9", 1, tag=9)
                return None
            first = comm.recv(0, tag=9)
            second = comm.recv(0, tag=5)
            return (first, second)

        results = World(2).run(program)
        assert results[1] == ("tagged-9", "tagged-5")

    def test_fifo_order_per_channel(self):
        def program(comm):
            if comm.rank == 0:
                for i in range(5):
                    comm.isend(i, 1, tag=3)
                return None
            return [comm.recv(0, tag=3) for _ in range(5)]

        results = World(2).run(program)
        assert results[1] == [0, 1, 2, 3, 4]

    def test_any_source_any_tag(self):
        def program(comm):
            if comm.rank == 0:
                got = [comm.recv(ANY_SOURCE, ANY_TAG) for _ in range(comm.size - 1)]
                return sorted(got)
            comm.send(comm.rank * 10, 0, tag=comm.rank)
            return None

        results = World(4).run(program)
        assert results[0] == [10, 20, 30]

    def test_sendrecv_bidirectional_exchange(self):
        def program(comm):
            other = 1 - comm.rank
            return comm.sendrecv(f"from-{comm.rank}", other, source=other)

        results = World(2).run(program)
        assert results == ["from-1", "from-0"]

    def test_probe(self):
        def program(comm):
            if comm.rank == 0:
                comm.isend(np.zeros(10), 1, tag=2)
                return None
            # Rank 1 blocks on an unrelated recv first so rank 0 runs.
            comm.barrier()
            st = comm.probe()
            assert st is not None and st.source == 0 and st.tag == 2
            comm.recv(0)
            return st.nbytes

        def program2(comm):
            if comm.rank == 0:
                comm.isend(np.zeros(10), 1, tag=2)
                comm.barrier()
                return None
            comm.barrier()
            st = comm.probe()
            comm.recv(0)
            return (st.source, st.tag, st.nbytes)

        results = World(2).run(program2)
        assert results[1] == (0, 2, 80)

    def test_waitall_returns_in_request_order(self):
        def program(comm):
            if comm.rank == 0:
                comm.isend("a", 1, tag=1)
                comm.isend("b", 1, tag=2)
                return None
            reqs = [comm.irecv(0, 2), comm.irecv(0, 1)]
            return comm.waitall(reqs)

        results = World(2).run(program)
        assert results[1] == ["b", "a"]

    def test_invalid_destination(self):
        def program(comm):
            comm.isend(1, 99)

        with pytest.raises(RankFailedError, match="out of range"):
            World(2).run(program)

    def test_wait_on_foreign_request_rejected(self):
        def program(comm):
            req = comm.irecv(0)
            req.owner = (comm.rank + 1) % comm.size  # corrupt it
            comm.wait(req)

        with pytest.raises(RankFailedError, match="another rank"):
            World(2).run(program)


class TestCollectives:
    def test_barrier_all_proceed(self):
        def program(comm):
            comm.barrier()
            return comm.rank

        assert World(5).run(program) == list(range(5))

    def test_bcast(self):
        def program(comm):
            data = np.arange(3) if comm.rank == 1 else None
            return comm.bcast(data, root=1)

        results = World(4).run(program)
        for r in results:
            np.testing.assert_array_equal(r, np.arange(3))

    def test_allreduce_sum(self):
        def program(comm):
            return comm.allreduce(comm.rank + 1)

        assert World(4).run(program) == [10, 10, 10, 10]

    def test_allreduce_min_max(self):
        def program(comm):
            return (comm.allreduce(comm.rank, op="min"), comm.allreduce(comm.rank, op="max"))

        assert World(3).run(program) == [(0, 2)] * 3

    def test_allreduce_arrays(self):
        def program(comm):
            return comm.allreduce(np.full(3, float(comm.rank)))

        results = World(3).run(program)
        for r in results:
            np.testing.assert_array_equal(r, np.full(3, 3.0))

    def test_reduce_only_root_gets_result(self):
        def program(comm):
            return comm.reduce(1, root=2)

        results = World(4).run(program)
        assert results == [None, None, 4, None]

    def test_gather(self):
        def program(comm):
            return comm.gather(comm.rank**2, root=0)

        results = World(4).run(program)
        assert results[0] == [0, 1, 4, 9]
        assert results[1:] == [None, None, None]

    def test_allgather(self):
        def program(comm):
            return comm.allgather(chr(ord("a") + comm.rank))

        assert World(3).run(program) == [["a", "b", "c"]] * 3

    def test_scatter(self):
        def program(comm):
            values = [i * 2 for i in range(comm.size)] if comm.rank == 0 else None
            return comm.scatter(values, root=0)

        assert World(4).run(program) == [0, 2, 4, 6]

    def test_scatter_wrong_length_rejected(self):
        def program(comm):
            values = [1] if comm.rank == 0 else None
            return comm.scatter(values, root=0)

        with pytest.raises((RankFailedError, Exception)):
            World(3).run(program)

    def test_unsupported_reduction_op(self):
        def program(comm):
            return comm.allreduce(1, op="prod")

        with pytest.raises(Exception, match="sum/min/max"):
            World(2).run(program)

    def test_single_rank_collectives(self):
        def program(comm):
            assert comm.allreduce(5) == 5
            assert comm.bcast("x") == "x"
            assert comm.gather(1) == [1]
            comm.barrier()
            return True

        assert World(1).run(program) == [True]


class TestErrors:
    def test_deadlock_detected(self):
        def program(comm):
            comm.recv(source=(comm.rank + 1) % comm.size)  # everyone waits

        with pytest.raises(DeadlockError, match="deadlock"):
            World(3).run(program)

    def test_deadlock_message_names_blocked_ranks(self):
        def program(comm):
            if comm.rank == 0:
                comm.recv(source=1, tag=42)

        with pytest.raises(DeadlockError, match="rank 0"):
            World(2).run(program)

    def test_rank_exception_propagates(self):
        def program(comm):
            if comm.rank == 1:
                raise ValueError("boom on rank 1")
            comm.recv(source=1)  # would deadlock without failure handling

        with pytest.raises(RankFailedError, match="boom on rank 1") as ei:
            World(3).run(program)
        assert ei.value.rank == 1

    def test_world_requires_positive_ranks(self):
        with pytest.raises(ValueError):
            World(0)

    def test_results_returned_per_rank(self):
        def program(comm, base):
            return base + comm.rank

        assert World(3).run(program, 100) == [100, 101, 102]


class TestDeterminism:
    def test_repeat_runs_identical(self):
        def program(comm):
            token = comm.rank
            for _ in range(3):
                token = comm.sendrecv(
                    token, (comm.rank + 1) % comm.size,
                    source=(comm.rank - 1) % comm.size,
                )
            return token

        first = World(6).run(program)
        for _ in range(3):
            assert World(6).run(program) == first

    def test_any_source_resolution_deterministic(self):
        def program(comm):
            if comm.rank == 0:
                return [comm.recv(ANY_SOURCE) for _ in range(comm.size - 1)]
            comm.send(comm.rank, 0)
            return None

        runs = {tuple(World(5).run(program)[0]) for _ in range(3)}
        assert len(runs) == 1


class TestAlltoall:
    def test_transpose_semantics(self):
        def program(comm):
            values = [comm.rank * 10 + j for j in range(comm.size)]
            return comm.alltoall(values)

        results = World(3).run(program)
        # result[j][i] == what rank i sent to rank j == i*10 + j
        for j, row in enumerate(results):
            assert row == [i * 10 + j for i in range(3)]

    def test_wrong_length_rejected(self):
        def program(comm):
            comm.alltoall([1])

        with pytest.raises(RankFailedError, match="one value per rank"):
            World(3).run(program)

    def test_single_rank(self):
        def program(comm):
            return comm.alltoall(["x"])

        assert World(1).run(program) == [["x"]]
