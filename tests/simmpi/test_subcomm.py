"""Tests for sub-communicators (split), waitany, and message contexts."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.simmpi import ANY_SOURCE, DeadlockError, World


class TestSplit:
    def test_split_by_parity(self):
        def program(comm):
            sub = comm.split(comm.rank % 2)
            return (sub.rank, sub.size, sub.group)

        results = World(6).run(program)
        assert results[0] == (0, 3, (0, 2, 4))
        assert results[1] == (0, 3, (1, 3, 5))
        assert results[4] == (2, 3, (0, 2, 4))

    def test_split_with_key_reorders(self):
        def program(comm):
            sub = comm.split(0, key=comm.size - comm.rank)
            return sub.rank

        results = World(4).run(program)
        assert results == [3, 2, 1, 0]  # reversed ordering

    def test_split_none_returns_none(self):
        def program(comm):
            sub = comm.split(None if comm.rank == 0 else 1)
            return sub if sub is None else sub.size

        results = World(3).run(program)
        assert results[0] is None
        assert results[1] == results[2] == 2

    def test_subgroup_collectives(self):
        """Each half reduces independently."""

        def program(comm):
            sub = comm.split(comm.rank // 2)
            return sub.allreduce(comm.rank + 1)

        results = World(4).run(program)
        assert results == [3, 3, 7, 7]  # (1+2), (1+2), (3+4), (3+4)

    def test_subgroup_p2p_uses_local_ranks(self):
        def program(comm):
            sub = comm.split(comm.rank % 2)
            # Local ring within the subgroup.
            right = (sub.rank + 1) % sub.size
            left = (sub.rank - 1) % sub.size
            sub.isend(comm.rank * 100, right, tag=1)
            return sub.recv(left, tag=1)

        results = World(4).run(program)
        assert results == [200, 300, 0, 100]

    def test_contexts_isolate_messages(self):
        """A message sent on one communicator is invisible to another,
        even with matching source and tag."""

        def program(comm):
            sub = comm.split(0)  # same membership as world, new context
            if comm.rank == 0:
                comm.isend("world-msg", 1, tag=9)
                sub.isend("sub-msg", 1, tag=9)
                return None
            if comm.rank == 1:
                got_sub = sub.recv(0, tag=9)
                got_world = comm.recv(0, tag=9)
                return (got_sub, got_world)
            return None

        results = World(2).run(program)
        assert results[1] == ("sub-msg", "world-msg")

    def test_nested_split(self):
        def program(comm):
            half = comm.split(comm.rank // 2)
            solo = half.split(half.rank)
            return (half.size, solo.size)

        results = World(4).run(program)
        assert all(r == (2, 1) for r in results)

    def test_clock_shared_with_parent(self):
        def program(comm):
            sub = comm.split(0)
            sub.compute(1.0)
            return comm.clock.now

        results = World(2).run(program)
        assert all(t >= 1.0 for t in results)

    def test_mismatched_subgroup_collective_deadlocks(self):
        """A subgroup collective that a member never joins must deadlock
        (not silently complete)."""

        def program(comm):
            sub = comm.split(0)
            if comm.rank == 0:
                sub.barrier()  # rank 1 never joins

        with pytest.raises(DeadlockError):
            World(2).run(program)

    @given(nranks=st.integers(2, 8), ncolors=st.integers(1, 4))
    @settings(max_examples=15, deadline=None)
    def test_property_split_partitions(self, nranks, ncolors):
        def program(comm):
            sub = comm.split(comm.rank % ncolors)
            return sorted(sub.group)

        results = World(nranks).run(program)
        seen = sorted(r for group in {tuple(g) for g in results} for r in group)
        assert seen == list(range(nranks))


class TestWaitany:
    def test_prefers_completed(self):
        def program(comm):
            if comm.rank == 0:
                comm.isend("a", 1, tag=1)
                comm.isend("b", 1, tag=2)
                return None
            r1 = comm.irecv(0, tag=1)
            r2 = comm.irecv(0, tag=2)
            comm.wait(r2)
            idx, data = comm.waitany([r1, r2])
            return (idx, data)

        results = World(2).run(program)
        assert results[1] == (1, "b")

    def test_polls_ready_request(self):
        def program(comm):
            if comm.rank == 0:
                comm.isend("later", 1, tag=5)
                return None
            slow = comm.irecv(0, tag=99)  # never arrives... until deadlock
            fast = comm.irecv(0, tag=5)
            idx, data = comm.waitany([slow, fast])
            comm.isend("unblock", 0, tag=99) if False else None
            return (idx, data)

        # rank 1 returns from waitany via the ready request; the never-
        # matched irecv is abandoned (legal: requests needn't complete).
        results = World(2).run(program)
        assert results[1] == (1, "later")

    def test_empty_list_rejected(self):
        def program(comm):
            comm.waitany([])

        from repro.simmpi import RankFailedError

        with pytest.raises(RankFailedError, match="at least one"):
            World(1).run(program)


class TestCartOnSubcomm:
    def test_halo_exchange_within_split(self):
        """Cartesian halo exchange works on a sub-communicator: the other
        color's ranks are unaffected."""
        import numpy as np

        from repro.simmpi import CartGrid, exchange_halos

        def program(comm):
            sub = comm.split(0 if comm.rank < 4 else 1)
            if comm.rank >= 4:
                return None  # idle color
            grid = CartGrid((2, 2))
            local = np.full((6, 6), float(sub.rank))
            local[1:-1, 1:-1] = sub.rank
            exchange_halos(sub, grid, local, 1)
            # The ghost toward the +x neighbor holds that neighbor's value.
            nbr = grid.neighbor(sub.rank, 1, 1)
            if nbr is not None:
                assert local[1, -1] == float(nbr)
            return True

        results = World(6).run(program)
        assert results[:4] == [True] * 4
        assert results[4:] == [None, None]
