"""Property-based tests for the simulated MPI runtime."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.simmpi import ANY_SOURCE, CartGrid, World, dims_create, exchange_halos, local_range


class TestRoutingProperties:
    @given(
        nranks=st.integers(2, 6),
        seed=st.integers(0, 1000),
        nmsgs=st.integers(1, 8),
    )
    @settings(max_examples=25, deadline=None)
    def test_random_permutation_routing_exactly_once(self, nranks, seed, nmsgs):
        """Every sent payload is received exactly once, unchanged."""
        rng = np.random.default_rng(seed)
        # destinations[r] = list of (dest, value) rank r sends.
        sends = {
            r: [(int(rng.integers(0, nranks)), float(rng.random()))
                for _ in range(nmsgs)]
            for r in range(nranks)
        }
        expected_per_rank = {r: sorted(
            v for s in range(nranks) for d, v in sends[s] if d == r
        ) for r in range(nranks)}

        def program(comm):
            for dest, val in sends[comm.rank]:
                comm.isend(val, dest, tag=7)
            count = len(expected_per_rank[comm.rank])
            got = sorted(comm.recv(ANY_SOURCE, tag=7) for _ in range(count))
            return got

        results = World(nranks).run(program)
        for r in range(nranks):
            assert results[r] == pytest.approx(expected_per_rank[r])

    @given(nranks=st.integers(2, 6), rounds=st.integers(1, 4))
    @settings(max_examples=20, deadline=None)
    def test_allreduce_equals_local_sum(self, nranks, rounds):
        def program(comm):
            total = 0.0
            for k in range(rounds):
                total += comm.allreduce(float(comm.rank * (k + 1)))
            return total

        results = World(nranks).run(program)
        expected = sum(
            sum(r * (k + 1) for r in range(nranks)) for k in range(rounds)
        )
        assert all(r == pytest.approx(expected) for r in results)

    @given(nranks=st.integers(1, 6))
    @settings(max_examples=10, deadline=None)
    def test_allgather_ordering(self, nranks):
        def program(comm):
            return comm.allgather(comm.rank * 10)

        results = World(nranks).run(program)
        expected = [r * 10 for r in range(nranks)]
        assert all(r == expected for r in results)


class TestCartesianProperties:
    @given(
        nranks=st.sampled_from([2, 3, 4, 6, 8]),
        gshape=st.tuples(st.integers(8, 20), st.integers(8, 20)),
        seed=st.integers(0, 50),
    )
    @settings(max_examples=12, deadline=None)
    def test_halo_exchange_matches_global_field(self, nranks, gshape, seed):
        """After exchange, every interior-adjacent ghost equals the
        neighbor's interior value of the global field."""
        dims = dims_create(nranks, 2)
        if any(g // d < 3 for g, d in zip(gshape, dims)):
            return  # degenerate decomposition for depth-1 halos
        grid = CartGrid(dims)
        g = np.random.default_rng(seed).random(gshape)

        def program(comm):
            c = grid.coords(comm.rank)
            rs = [local_range(gshape[d], dims[d], c[d]) for d in range(2)]
            local = np.full([r[1] - r[0] + 2 for r in rs], np.nan)
            local[1:-1, 1:-1] = g[rs[0][0]:rs[0][1], rs[1][0]:rs[1][1]]
            exchange_halos(comm, grid, local, 1)
            ok = True
            # Check non-corner ghosts against the global field.
            for d, (s, e) in enumerate(rs):
                if s > 0:
                    sl = [slice(1, -1)] * 2
                    sl[d] = 0
                    gs = [slice(rs[0][0], rs[0][1]), slice(rs[1][0], rs[1][1])]
                    gs[d] = s - 1
                    ok &= np.array_equal(local[tuple(sl)], np.atleast_1d(g[tuple(gs)]))
                if e < gshape[d]:
                    sl = [slice(1, -1)] * 2
                    sl[d] = -1
                    gs = [slice(rs[0][0], rs[0][1]), slice(rs[1][0], rs[1][1])]
                    gs[d] = e
                    ok &= np.array_equal(local[tuple(sl)], np.atleast_1d(g[tuple(gs)]))
            return ok

        assert all(World(nranks).run(program))


class TestDeterminismProperties:
    @given(nranks=st.integers(2, 5), seed=st.integers(0, 100))
    @settings(max_examples=10, deadline=None)
    def test_repeated_runs_bitwise_identical(self, nranks, seed):
        rng = np.random.default_rng(seed)
        payload = rng.random(16)

        def program(comm):
            out = payload * comm.rank
            right = (comm.rank + 1) % comm.size
            comm.isend(out, right, tag=3)
            got = comm.recv((comm.rank - 1) % comm.size, tag=3)
            return comm.allreduce(got)

        a = World(nranks).run(program)
        b = World(nranks).run(program)
        for x, y in zip(a, b):
            np.testing.assert_array_equal(x, y)
