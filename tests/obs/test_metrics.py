"""Registry semantics, scoping, exporters, and the no-op guarantee."""

import pytest

from repro.engine import SweepEngine, build_plan
from repro.machine import XEON_MAX_9480, best_practice_config
from repro.obs.metrics import (
    MetricsRegistry,
    active_metrics,
    collecting,
    prometheus_text,
    snapshot,
)
from repro.perfmodel.roofline import estimate_app


class TestRegistry:
    def test_counter_accumulates(self):
        r = MetricsRegistry()
        r.inc("hits_total")
        r.inc("hits_total", 4)
        assert r.value("hits_total") == 5
        assert r.kind("hits_total") == "counter"

    def test_labels_separate_samples(self):
        r = MetricsRegistry()
        r.inc("hits_total", level="L1")
        r.inc("hits_total", 2, level="L2")
        assert r.value("hits_total", level="L1") == 1
        assert r.value("hits_total", level="L2") == 2
        assert r.total("hits_total") == 3

    def test_label_order_is_irrelevant(self):
        r = MetricsRegistry()
        r.inc("x_total", a="1", b="2")
        r.inc("x_total", b="2", a="1")
        assert r.value("x_total", a="1", b="2") == 2
        assert len(r) == 1

    def test_counter_rejects_negative(self):
        r = MetricsRegistry()
        with pytest.raises(ValueError, match="cannot decrease"):
            r.inc("hits_total", -1)

    def test_gauge_overwrites(self):
        r = MetricsRegistry()
        r.set("depth", 3.0)
        r.set("depth", 1.5)
        assert r.value("depth") == 1.5
        assert r.kind("depth") == "gauge"

    def test_kind_conflict_raises(self):
        r = MetricsRegistry()
        r.inc("x_total")
        with pytest.raises(ValueError, match="is a counter"):
            r.set("x_total", 1.0)

    def test_histogram_buckets_and_sum(self):
        r = MetricsRegistry()
        for v in (0.5, 1.5, 200.0):
            r.observe("dur_seconds", v, buckets=(1.0, 10.0))
        h = r.histogram("dur_seconds")
        assert h.counts == [1, 1, 1]  # <=1, <=10, overflow
        assert h.count == 3
        assert h.total == pytest.approx(202.0)
        assert h.cumulative()[-1] == (float("inf"), 3)

    def test_value_on_missing_sample_returns_default(self):
        r = MetricsRegistry()
        assert r.value("never_total") == 0.0
        assert r.value("never_total", default=-1.0) == -1.0

    def test_samples_sorted_by_labels(self):
        r = MetricsRegistry()
        r.inc("x_total", level="b")
        r.inc("x_total", level="a")
        assert [lbl for lbl, _ in r.samples("x_total")] == [
            {"level": "a"}, {"level": "b"},
        ]

    def test_clear_and_len(self):
        r = MetricsRegistry()
        r.inc("a_total")
        r.set("b", 1.0, x="1")
        assert len(r) == 2
        r.clear()
        assert len(r) == 0
        assert r.names() == []


class TestExporters:
    def _registry(self):
        r = MetricsRegistry()
        r.inc("hits_total", 3, level="L1")
        r.set("depth", 2.0)
        r.observe("dur_seconds", 0.5, buckets=(1.0,))
        return r

    def test_prometheus_type_lines_and_samples(self):
        text = prometheus_text(self._registry())
        assert "# TYPE hits_total counter" in text
        assert 'hits_total{level="L1"} 3' in text
        assert "# TYPE depth gauge" in text
        assert "depth 2" in text

    def test_prometheus_histogram_triplet(self):
        text = prometheus_text(self._registry())
        assert 'dur_seconds_bucket{le="1"} 1' in text
        assert 'dur_seconds_bucket{le="+Inf"} 1' in text
        assert "dur_seconds_sum 0.5" in text
        assert "dur_seconds_count 1" in text

    def test_snapshot_is_json_able_and_deterministic(self):
        import json

        a = json.dumps(snapshot(self._registry()), sort_keys=True)
        b = json.dumps(snapshot(self._registry()), sort_keys=True)
        assert a == b
        doc = json.loads(a)
        assert doc["hits_total"]["type"] == "counter"
        assert doc["dur_seconds"]["samples"][0]["count"] == 1

    def test_empty_registry_exports_empty(self):
        assert prometheus_text(MetricsRegistry()) == ""
        assert snapshot(MetricsRegistry()) == {}


class TestScoping:
    def test_disabled_by_default(self):
        assert active_metrics() is None

    def test_collecting_installs_and_restores(self):
        with collecting() as r:
            assert active_metrics() is r
        assert active_metrics() is None

    def test_nested_scopes_shadow(self):
        with collecting() as outer:
            with collecting() as inner:
                assert active_metrics() is inner
            assert active_metrics() is outer

    def test_explicit_registry_is_used(self):
        r = MetricsRegistry()
        with collecting(r) as got:
            assert got is r

    def test_restored_after_exception(self):
        with pytest.raises(RuntimeError):
            with collecting():
                raise RuntimeError("boom")
        assert active_metrics() is None


def _fresh_engine(tmp_path, name):
    return SweepEngine(cache_dir=tmp_path / name, workers=1)


class TestNoOpGuarantee:
    """With no registry installed, instrumented code paths must produce
    results and store contents bit-identical to the uninstrumented ones
    (the same contract the tracer pins down in test_tracer.py)."""

    def test_estimates_identical_with_and_without_registry(self, tmp_path):
        engine = _fresh_engine(tmp_path, "a")
        spec = engine.app_spec("miniweather")
        platform = XEON_MAX_9480
        config = best_practice_config(platform)
        plain = estimate_app(spec, platform, config, engine.hierarchy(platform))
        with collecting() as reg:
            metered = estimate_app(spec, platform, config,
                                   engine.hierarchy(platform))
        assert metered == plain
        assert reg.total("perfmodel_loops_total") > 0  # it did observe

    def test_store_bytes_identical_under_collection(self, tmp_path):
        plan = build_plan(["miniweather"], [XEON_MAX_9480])
        baseline = _fresh_engine(tmp_path, "baseline")
        baseline.run_plan(plan)
        metered = _fresh_engine(tmp_path, "metered")
        with collecting():
            metered.run_plan(plan)
        assert baseline.store.path.read_bytes() == metered.store.path.read_bytes()

    def test_pool_workers_see_the_registry(self, tmp_path):
        engine = SweepEngine(cache_dir=tmp_path / "pool", workers=2)
        plan = build_plan(["miniweather"], [XEON_MAX_9480])
        with collecting() as reg:
            engine.run_plan(plan)
        assert reg.total("perfmodel_estimates_total") > 0
        assert reg.total("engine_jobs_executed_total") > 0


class TestInstrumentationSites:
    def test_perfmodel_winning_limb_tally(self, tmp_path):
        engine = _fresh_engine(tmp_path, "limbs")
        spec = engine.app_spec("miniweather")
        platform = XEON_MAX_9480
        config = best_practice_config(platform)
        with collecting() as reg:
            est = estimate_app(spec, platform, config,
                               engine.hierarchy(platform))
        assert reg.total("perfmodel_loops_total") == len(est.per_loop)
        limbs = {lbl["limb"] for lbl, _ in reg.samples("perfmodel_loops_total")}
        assert limbs == {lt.bottleneck for lt in est.per_loop}

    def test_hierarchy_lookups_labeled_by_level(self):
        from repro.mem.hierarchy import HierarchyModel

        hm = HierarchyModel(XEON_MAX_9480)
        with collecting() as reg:
            hm.effective_bandwidth(1024.0)  # tiny: innermost level
            hm.effective_bandwidth(1e12)  # huge: memory
        levels = {lbl["level"] for lbl, _ in
                  reg.samples("mem_hierarchy_lookups_total")}
        assert "memory" in levels
        assert len(levels) == 2

    def test_store_read_write_accounting(self, tmp_path):
        plan = build_plan(["miniweather"], [XEON_MAX_9480])
        with collecting() as reg:
            engine = _fresh_engine(tmp_path, "s")
            engine.run_plan(plan)
            written = reg.value("store_writes_total")
            nbytes = reg.value("store_bytes_written_total")
            assert written == len(engine.store)
            assert nbytes == engine.store.path.stat().st_size

    def test_simmpi_rank_deltas(self):
        import numpy as np

        from repro.simmpi import World

        def rank_main(comm):
            right = (comm.rank + 1) % comm.size
            left = (comm.rank - 1) % comm.size
            comm.isend(np.ones(16), right, tag=0)
            comm.recv(left, tag=0)
            comm.barrier()

        w = World(2)
        with collecting() as reg:
            w.run(rank_main)
        assert reg.total("simmpi_messages_total") == 4  # 2 sent + 2 received
        assert reg.value("simmpi_bytes_total", rank="0", direction="sent") \
            == w.comms[0].stats.bytes_sent > 0
        assert reg.value("simmpi_runs_total", ranks="2") == 1


class TestEngineMetricsDelegation:
    """EngineMetrics counters live in a registry but keep their exact
    attribute / as_dict / summary contract."""

    def test_attributes_read_from_registry(self):
        from repro.engine.metrics import EngineMetrics

        em = EngineMetrics()
        em.count("cache_hits", 3)
        assert em.cache_hits == 3
        assert isinstance(em.cache_hits, int)
        assert em.registry.value("engine_cache_hits_total") == 3

    def test_unknown_counter_rejected(self):
        from repro.engine.metrics import EngineMetrics

        with pytest.raises(KeyError):
            EngineMetrics().count("bogus")
        with pytest.raises(AttributeError):
            EngineMetrics().bogus_counter

    def test_as_dict_keys_are_byte_stable(self):
        from repro.engine.metrics import EngineMetrics

        d = EngineMetrics().as_dict()
        assert list(d) == [
            "spec_builds", "evaluations", "cache_hits", "cache_misses",
            "jobs_executed", "jobs_skipped", "jobs_failed",
            "wall_time", "job_time", "jobs_per_sec", "hit_rate",
        ]
        assert all(isinstance(d[k], int) for k in list(d)[:7])

    def test_summary_format_unchanged(self):
        from repro.engine.metrics import EngineMetrics

        em = EngineMetrics()
        em.count("jobs_executed", 2)
        em.count("cache_hits")
        em.count("cache_misses")
        assert em.summary() == (
            "engine: 2 jobs (1 cached, 0 evaluated, 0 skipped, 0 failed), "
            "0 specs profiled, hit rate 50%, 0.00 s wall (0.0 jobs/s)"
        )

    def test_counts_mirrored_into_session_registry(self):
        from repro.engine.metrics import EngineMetrics

        em = EngineMetrics()
        with collecting() as reg:
            em.count("evaluations", 5)
        assert em.evaluations == 5
        assert reg.value("engine_evaluations_total") == 5

    def test_reset_zeroes_counters(self):
        from repro.engine.metrics import EngineMetrics

        em = EngineMetrics()
        em.count("spec_builds", 7)
        em.reset()
        assert em.spec_builds == 0
        assert em.wall_time == 0.0
