"""End-to-end checks of ``python -m repro metrics / fidelity / drift``."""

import json

import pytest

from repro.__main__ import main


@pytest.fixture(autouse=True)
def _fresh_default_engine():
    """CLI flags like --no-cache reconfigure the process-default engine;
    real invocations get a fresh process, so give each test one too."""
    from repro.engine import reset_engine

    reset_engine()
    yield
    reset_engine()


class TestMetricsCommand:
    def test_prometheus_export(self, capsys):
        # --no-cache forces evaluation, so the perfmodel families appear
        # regardless of what earlier tests left in the session store.
        assert main(["metrics", "miniweather", "--no-cache"]) == 0
        out = capsys.readouterr().out
        assert "# TYPE engine_jobs_executed_total counter" in out
        assert "# TYPE engine_evaluations_total counter" in out
        assert "perfmodel_loops_total{" in out

    def test_json_export_to_file(self, tmp_path, capsys):
        path = tmp_path / "metrics.json"
        assert main(["metrics", "miniweather", "--format", "json",
                     "-o", str(path)]) == 0
        doc = json.loads(path.read_text())
        assert doc["engine_jobs_executed_total"]["type"] == "counter"
        assert "samples" in doc["store_reads_total"]
        assert "-> " in capsys.readouterr().err

    def test_unknown_app_exits_2_listing_choices(self, capsys):
        assert main(["metrics", "linpack"]) == 2
        err = capsys.readouterr().err
        assert "unknown application" in err
        assert "cloverleaf2d" in err

    def test_unknown_platform_exits_2_listing_choices(self, capsys):
        assert main(["metrics", "miniweather", "--platform", "cray1"]) == 2
        err = capsys.readouterr().err
        assert "unknown platform" in err
        assert "max9480" in err


class TestFidelityCommand:
    def test_markdown_scorecard_for_one_figure(self, capsys):
        assert main(["fidelity", "fig2"]) == 0
        out = capsys.readouterr().out
        assert out.startswith("# Paper-fidelity scorecard")
        assert "| fig2 |" in out

    def test_json_output(self, capsys):
        assert main(["fidelity", "fig2", "--json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["figures"]["fig2"]["verdict"] in ("pass", "fail")

    def test_output_file(self, tmp_path, capsys):
        path = tmp_path / "scorecard.md"
        assert main(["fidelity", "fig2", "-o", str(path)]) == 0
        assert path.read_text().startswith("# Paper-fidelity scorecard")
        assert "reference values" in capsys.readouterr().err

    def test_unknown_figure_exits_2_listing_choices(self, capsys):
        assert main(["fidelity", "fig42"]) == 2
        err = capsys.readouterr().err
        assert "unknown figure" in err
        assert "fig9" in err


class TestDriftCommand:
    def test_update_then_check(self, tmp_path, capsys):
        path = tmp_path / "fidelity.json"
        assert main(["drift", "--update", "--baseline", str(path)]) == 0
        assert "recorded for 9 figures" in capsys.readouterr().out
        assert json.loads(path.read_text())["figures"]["fig1"]["entries"] > 0
        assert main(["drift", "--check", "--baseline", str(path)]) == 0
        assert "drift check passed" in capsys.readouterr().out

    def test_check_without_baseline_exits_2(self, tmp_path, capsys):
        assert main(["drift", "--check",
                     "--baseline", str(tmp_path / "none.json")]) == 2
        assert "drift --update" in capsys.readouterr().err

    def test_check_fails_on_regression(self, tmp_path, capsys):
        path = tmp_path / "fidelity.json"
        assert main(["drift", "--update", "--baseline", str(path)]) == 0
        capsys.readouterr()
        data = json.loads(path.read_text())
        # Pretend the model used to be much better than it is.
        for fig in data["figures"].values():
            fig["recorded_max_abs_rel_err"] = 0.0
        path.write_text(json.dumps(data))
        assert main(["drift", "--check", "--baseline", str(path)]) == 1
        assert "FAILED" in capsys.readouterr().out

    def test_committed_baseline_passes(self):
        """The baseline in the repo must gate green at head."""
        assert main(["drift", "--check"]) == 0
