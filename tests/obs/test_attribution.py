"""Attribution trees: additivity invariant, taxonomy, what-if algebra."""

import math

import pytest

from repro.apps import APP_ORDER
from repro.harness import best_attribution
from repro.machine import ALL_PLATFORMS
from repro.obs.attribution import (
    WHAT_IF_KNOBS,
    attribute_estimate,
    leaf_index,
    what_if,
)

PLATFORM_NAMES = [p.short_name for p in ALL_PLATFORMS]
PAIRS = [(a, p) for a in APP_ORDER for p in ALL_PLATFORMS]


def _tree(app, platform):
    _cfg, est, tree = best_attribution(app, platform)
    return est, tree


class TestAdditivity:
    @pytest.mark.parametrize(
        "app,platform", PAIRS,
        ids=[f"{a}-{p.short_name}" for a, p in PAIRS])
    def test_leaves_sum_to_estimate_total(self, app, platform):
        """The tree invariant for every app x platform pair: every
        interior node is the sum of its children and the leaf total
        recomposes ``AppEstimate.total_time`` within 1e-9 relative."""
        est, tree = _tree(app, platform)
        assert tree.seconds == est.total_time
        assert tree.max_additivity_error() <= 1e-9
        assert math.isclose(
            tree.leaf_total(), est.total_time, rel_tol=1e-9, abs_tol=0.0)

    def test_limb_seconds_exact_per_loop(self):
        """Per loop the limb split plus overhead is a float *identity*
        with the blended time (remainder construction), not just close."""
        est, _ = _tree("cloverleaf2d", ALL_PLATFORMS[0])
        for lt in est.per_loop:
            limbs = lt.limb_seconds()
            assert sum(limbs.values()) + lt.overhead == lt.time


class TestTaxonomy:
    def test_memory_leaves_carry_technology(self):
        est, tree = _tree("cloverleaf2d", ALL_PLATFORMS[0])  # max9480
        mem = [l for l in tree.leaves() if l.kind == "memory"]
        assert mem, "a bandwidth-bound app must have memory leaves"
        assert any(l.name == "memory[hbm2e]" for l in mem)

    def test_sections_and_iterations(self):
        est, tree = _tree("cloverleaf2d", ALL_PLATFORMS[0])
        names = [c.name for c in tree.children]
        assert names[0] == "kernels"
        assert "mpi" in names
        kernels = tree.children[0]
        assert kernels.seconds == est.compute_time
        mpi = tree.children[names.index("mpi")]
        assert mpi.seconds == est.mpi_time
        assert tree.meta["iterations"] >= 1

    def test_leaf_index_is_platform_independent(self):
        """Same app, two platforms: the structural keys align exactly,
        even though the memory technology labels differ."""
        _e1, t1 = _tree("miniweather", ALL_PLATFORMS[0])
        _e2, t2 = _tree("miniweather", ALL_PLATFORMS[1])
        assert set(leaf_index(t1)) == set(leaf_index(t2))

    def test_works_on_store_roundtripped_estimate(self):
        from repro.engine.store import estimate_from_dict, estimate_to_dict

        est, tree = _tree("volna", ALL_PLATFORMS[0])
        thawed = estimate_from_dict(estimate_to_dict(est))
        tree2 = attribute_estimate(thawed)
        assert tree2.seconds == tree.seconds
        assert tree2.max_additivity_error() <= 1e-9


class TestWhatIf:
    def test_factor_one_is_exact_noop(self):
        _est, tree = _tree("mgcfd", ALL_PLATFORMS[0])
        same = what_if(tree, {k: 1.0 for k in WHAT_IF_KNOBS})
        for (d1, n1), (d2, n2) in zip(tree.walk(), same.walk()):
            assert d1 == d2
            assert n2.seconds == n1.seconds or (
                not n2.is_leaf
                and math.isclose(n2.seconds, n1.seconds, rel_tol=1e-12)
            )
        for l1, l2 in zip(tree.leaves(), same.leaves()):
            assert l2.seconds == l1.seconds  # x / 1.0 == x, exactly

    def test_inf_zeroes_mpi_wait(self):
        _est, tree = _tree("cloverleaf2d", ALL_PLATFORMS[0])
        gone = what_if(tree, {"mpi": float("inf")})
        assert all(l.seconds == 0.0 for l in gone.leaves()
                   if l.kind.startswith("mpi-"))
        assert gone.seconds < tree.seconds

    def test_dram_speedup_reduces_memory_leaves_only(self):
        _est, tree = _tree("cloverleaf2d", ALL_PLATFORMS[0])
        faster = what_if(tree, {"dram_bw": 2.0})
        idx, fidx = leaf_index(tree), leaf_index(faster)
        for key, leaf in idx.items():
            if leaf.kind == "memory" and leaf.meta.get("level") == "memory":
                assert fidx[key].seconds == leaf.seconds / 2.0
            else:
                assert fidx[key].seconds == leaf.seconds

    def test_unknown_knob_raises(self):
        _est, tree = _tree("volna", ALL_PLATFORMS[0])
        with pytest.raises(KeyError, match="unknown what-if knob"):
            what_if(tree, {"warp_drive": 2.0})

    def test_nonpositive_factor_raises(self):
        _est, tree = _tree("volna", ALL_PLATFORMS[0])
        with pytest.raises(ValueError, match="must be > 0"):
            what_if(tree, {"dram_bw": 0.0})


class TestInternodeLeaf:
    """Cluster-shaped estimates grow an 'internode-wire' leaf; single-node
    golden trees stay untouched (their inter share is zero)."""

    @staticmethod
    def _cluster_estimate(nodes=4):
        import dataclasses

        from repro.harness.runner import app_spec
        from repro.machine import XEON_MAX_9480, Compiler, Parallelization, RunConfig
        from repro.perfmodel import estimate_app, estimate_comm

        cfg = RunConfig(Compiler.ONEAPI, Parallelization.MPI)
        spec = app_spec("cloverleaf3d")
        est = estimate_app(spec, XEON_MAX_9480, cfg)
        comm = estimate_comm(spec, XEON_MAX_9480, cfg, nodes=nodes)
        n = spec.iterations
        mpi = comm.time_per_iter * n
        return dataclasses.replace(
            est, comm=comm, mpi_time=mpi,
            total_time=est.compute_time + mpi)

    def test_internode_leaf_present(self):
        est = self._cluster_estimate()
        tree = attribute_estimate(est)
        leaves = leaf_index(tree)
        inter = [l for l in leaves.values() if l.kind == "mpi-internode"]
        assert len(inter) == 1
        assert inter[0].name == "internode-wire"
        n = round(est.mpi_time / est.comm.time_per_iter)
        assert inter[0].seconds == pytest.approx(
            est.comm.internode_wire_per_iter * n)

    def test_additivity_holds_on_cluster_tree(self):
        est = self._cluster_estimate()
        tree = attribute_estimate(est)
        assert tree.max_additivity_error() <= 1e-9
        assert math.isclose(tree.leaf_total(), est.total_time,
                            rel_tol=1e-9, abs_tol=0.0)

    def test_single_node_trees_have_no_internode_leaf(self):
        for platform in ALL_PLATFORMS:
            _, tree = _tree("cloverleaf2d", platform)
            kinds = {l.kind for l in leaf_index(tree).values()}
            assert "mpi-internode" not in kinds

    def test_internode_bw_knob_targets_only_the_new_leaf(self):
        est = self._cluster_estimate()
        tree = attribute_estimate(est)
        assert "internode_bw" in WHAT_IF_KNOBS
        scaled = what_if(tree, {"internode_bw": 2.0})
        leaves, new = leaf_index(tree), leaf_index(scaled)
        for path, leaf in leaves.items():
            if leaf.kind == "mpi-internode":
                assert new[path].seconds == pytest.approx(leaf.seconds / 2)
            elif leaf.kind != "group":
                assert new[path].seconds == leaf.seconds

    def test_net_bw_knob_covers_both_wire_leaves(self):
        est = self._cluster_estimate()
        tree = attribute_estimate(est)
        scaled = what_if(tree, {"net_bw": 2.0})
        leaves, new = leaf_index(tree), leaf_index(scaled)
        for path, leaf in leaves.items():
            if leaf.kind in ("mpi-wire", "mpi-internode"):
                assert new[path].seconds == pytest.approx(leaf.seconds / 2)
