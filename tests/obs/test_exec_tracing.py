"""Execution-level tracing: DSL kernel spans and simmpi wait accounting."""

import numpy as np

from repro.machine import XEON_MAX_9480, best_practice_config
from repro.obs import Tracer, check_nesting, tracing
from repro.ops import Access as OpsAccess
from repro.ops import OpsContext, S2D_00, TimingModel, arg_dat, star_stencil
from repro.op2 import Access as Op2Access
from repro.op2 import Op2Context, arg, arg_direct
from repro.simmpi import CartGrid, World


def _ops_heat(ctx, n=12, iters=2):
    grid = ctx.block("grid", (n, n))
    u = grid.dat("u", halo=1)
    un = grid.dat("un", halo=1)
    u.set_from_global(np.arange(n * n, dtype=float).reshape(n, n))
    s5 = star_stencil(2, 1)

    def step(out, inp):
        out[0, 0] = inp[0, 0] + 0.1 * (
            inp[1, 0] + inp[-1, 0] + inp[0, 1] + inp[0, -1] - 4.0 * inp[0, 0]
        )

    def copyk(out, inp):
        out[0, 0] = inp[0, 0]

    for _ in range(iters):
        ctx.par_loop(step, "step", grid, grid.interior,
                     arg_dat(un, S2D_00, OpsAccess.WRITE),
                     arg_dat(u, s5, OpsAccess.READ), flops_per_point=7)
        ctx.par_loop(copyk, "copy", grid, grid.interior,
                     arg_dat(u, S2D_00, OpsAccess.WRITE),
                     arg_dat(un, S2D_00, OpsAccess.READ))
    return u.gather_global()


class TestOpsTracing:
    def test_serial_kernel_spans(self):
        platform = XEON_MAX_9480
        timing = TimingModel(platform, best_practice_config(platform))
        with tracing() as tr:
            _ops_heat(OpsContext(timing=timing))
        steps = tr.spans_of("kernel", "step")
        assert len(steps) == 2
        s = steps[0]
        assert s.attrs["points"] == 12 * 12  # grid.interior of the 12x12 block
        assert s.attrs["bytes"] > 0
        assert s.attrs["flops"] == 7 * 12 * 12
        assert any(a.startswith("u:read") for a in s.attrs["access"])
        assert s.duration > 0  # the timing model advanced simulated time
        check_nesting(tr)

    def test_serial_halo_exchange_spans(self):
        with tracing() as tr:
            _ops_heat(OpsContext())
        halos = tr.spans_of("mpi", "halo-exchange")
        assert halos  # 'step' reads u through a radius-1 stencil
        assert halos[0].attrs["fields"] == 1
        assert "u" in halos[0].attrs["dats"]

    def test_tracing_does_not_change_results(self):
        plain = _ops_heat(OpsContext())
        with tracing():
            traced = _ops_heat(OpsContext())
        assert np.array_equal(plain, traced)

    def test_distributed_spans_per_rank(self):
        platform = XEON_MAX_9480
        timing = TimingModel(platform, best_practice_config(platform))

        def program(comm):
            ctx = OpsContext(comm=comm, grid=CartGrid((2, 2)), timing=timing)
            return _ops_heat(ctx)

        with tracing() as tr:
            results = World(4).run(program)
        assert np.array_equal(results[0], _ops_heat(OpsContext()))
        lanes = {s.track for s in tr.spans_of("kernel", "step")}
        assert lanes == {("ops", r) for r in range(4)}
        check_nesting(tr)


class TestSimmpiTracing:
    def test_sends_and_waits_recorded(self):
        def program(comm):
            right = (comm.rank + 1) % comm.size
            left = (comm.rank - 1) % comm.size
            if comm.rank == 0:
                comm.compute(1.0)  # force the others to wait on rank 0
            comm.isend(np.array([comm.rank]), right, tag=7)
            return int(comm.recv(left, tag=7)[0])

        with tracing() as tr:
            results = World(3).run(program)
        assert results == [2, 0, 1]
        sends = tr.events_of("mpi", "send")
        assert len(sends) == 3
        assert all(e.attrs["bytes"] > 0 for e in sends)
        waits = tr.spans_of("mpi", "wait")
        assert waits, "late sender must produce MPI-wait spans"
        assert {s.track[0] for s in waits} == {"rank"}

    def test_clock_unwired_after_run(self):
        tracer = Tracer()
        world = World(2)
        with tracing(tracer):
            world.run(lambda comm: comm.rank)
        assert all(c.clock.tracer is None for c in world.comms)


class TestOp2Tracing:
    def test_kernel_span_with_access_modes(self):
        ctx = Op2Context()
        cells = ctx.set("cells", 8)
        edges = ctx.set("edges", 8)
        conn = np.stack([np.arange(8), (np.arange(8) + 1) % 8], axis=1)
        e2c = ctx.map("e2c", edges, cells, conn)
        q = ctx.dat(cells, 1, "q", data=np.arange(8.0))
        res = ctx.dat(cells, 1, "res")

        def k(r, a, b):
            r[...] += a + b

        with tracing() as tr:
            ctx.par_loop(k, "flux", edges,
                         arg(res, e2c, 0, Op2Access.INC),
                         arg(q, e2c, 0, Op2Access.READ),
                         arg(q, e2c, 1, Op2Access.READ),
                         flops_per_elem=2)
        (span,) = tr.spans_of("kernel", "flux")
        assert span.attrs["elements"] == 8
        assert span.attrs["flops"] == 16
        assert span.attrs["bytes"] > 0
        assert any("res" in a and "inc" in a for a in span.attrs["access"])

    def test_direct_loop_untraced_is_unaffected(self):
        ctx = Op2Context()
        cells = ctx.set("cells", 4)
        d = ctx.dat(cells, 1, "d")

        def k(x):
            x[...] = 1.0

        ctx.par_loop(k, "fill", cells, arg_direct(d, Op2Access.WRITE))
        assert np.all(d.data == 1.0)
