"""Scorecard arithmetic, drift gating, and the fig2 end-to-end path."""

import json

import pytest

from repro.obs.fidelity import (
    DEFAULT_THRESHOLDS,
    FIGURE_ORDER,
    FidelityEntry,
    FigureScore,
    Scorecard,
    check_drift,
    load_baseline,
    rank_agreement,
    save_baseline,
    score_figure,
    scorecard,
)


def _pt(label, model, paper, figure="figX"):
    return FidelityEntry(figure, label, model, paper=paper)


def _rg(label, model, lo, hi, figure="figX"):
    return FidelityEntry(figure, label, model, paper_range=(lo, hi))


class TestEntryArithmetic:
    def test_point_rel_err_is_signed(self):
        assert _pt("a", 110.0, 100.0).rel_err == pytest.approx(0.10)
        assert _pt("a", 90.0, 100.0).rel_err == pytest.approx(-0.10)
        assert _pt("a", 100.0, 100.0).rel_err == 0.0

    def test_range_inside_is_zero(self):
        assert _rg("a", 0.80, 0.75, 0.85).rel_err == 0.0
        assert _rg("a", 0.75, 0.75, 0.85).rel_err == 0.0  # bounds inclusive

    def test_range_outside_measures_nearest_bound(self):
        assert _rg("a", 0.60, 0.75, 0.85).rel_err == pytest.approx(-0.2)
        assert _rg("a", 1.02, 0.75, 0.85).rel_err == pytest.approx(0.2)

    def test_kind_and_reference_str(self):
        assert _pt("a", 1.0, 2.0).kind == "point"
        assert _rg("a", 1.0, 2.0, 3.0).kind == "range"
        assert _pt("a", 1.0, 2.0).reference_str() == "2"
        assert _rg("a", 1.0, 2.0, 3.0).reference_str() == "2-3"


class TestRankAgreement:
    def test_perfect_agreement(self):
        entries = [_pt("a", 1.0, 10.0), _pt("b", 2.0, 20.0), _pt("c", 3.0, 30.0)]
        assert rank_agreement(entries) == 1.0

    def test_one_inversion(self):
        entries = [_pt("a", 2.0, 10.0), _pt("b", 1.0, 20.0), _pt("c", 3.0, 30.0)]
        assert rank_agreement(entries) == pytest.approx(2 / 3)

    def test_paper_ties_are_skipped(self):
        entries = [_pt("a", 1.0, 10.0), _pt("b", 2.0, 10.0), _pt("c", 3.0, 30.0)]
        assert rank_agreement(entries) == 1.0  # only the 2 untied pairs count

    def test_ranges_do_not_participate(self):
        entries = [_rg("a", 1.0, 0.0, 2.0), _rg("b", 2.0, 0.0, 3.0)]
        assert rank_agreement(entries) is None

    def test_fewer_than_two_points_is_none(self):
        assert rank_agreement([_pt("a", 1.0, 2.0)]) is None


class TestFigureScore:
    def _score(self, *entries):
        return FigureScore("figX", "synthetic", list(entries))

    def test_aggregates(self):
        s = self._score(_pt("a", 1.1, 1.0), _pt("b", 0.8, 1.0))
        assert s.max_abs_rel_err == pytest.approx(0.2)
        assert s.mean_abs_rel_err == pytest.approx(0.15)

    def test_verdict_against_thresholds(self):
        s = self._score(_pt("a", 1.4, 1.0))
        assert s.verdict({"max_abs_rel_err": 0.5})
        assert not s.verdict({"max_abs_rel_err": 0.3})

    def test_verdict_uses_rank_agreement(self):
        s = self._score(_pt("a", 2.0, 10.0), _pt("b", 1.0, 20.0))
        assert s.rank_agreement == 0.0
        assert not s.verdict({"max_abs_rel_err": 10.0, "min_rank_agreement": 0.5})

    def test_empty_score_passes(self):
        assert self._score().verdict(DEFAULT_THRESHOLDS)


class TestScorecard:
    def _card(self):
        good = FigureScore("fig1", "good", [_pt("a", 1.0, 1.0, "fig1")])
        bad = FigureScore("fig2", "bad", [_pt("a", 9.0, 1.0, "fig2")])
        return Scorecard([good, bad], {"fig2": {"max_abs_rel_err": 0.5}})

    def test_passed_reflects_per_figure_thresholds(self):
        card = self._card()
        assert not card.passed
        assert card.as_dict()["figures"]["fig2"]["verdict"] == "fail"
        assert card.as_dict()["figures"]["fig1"]["verdict"] == "pass"

    def test_markdown_contains_summary_and_entries(self):
        md = self._card().to_markdown()
        assert md.startswith("# Paper-fidelity scorecard")
        assert "**FAIL** (1/2 figures" in md
        assert "## fig1 — good" in md
        assert "| a | 9.000 | 1 | +8.000 |" in md

    def test_as_dict_round_trips_through_json(self):
        doc = json.loads(json.dumps(self._card().as_dict()))
        assert doc["passed"] is False
        assert len(doc["figures"]) == 2


class TestDrift:
    def _baseline(self, **over):
        fig = {
            "max_abs_rel_err": 0.5,
            "min_rank_agreement": 0.6,
            "recorded_max_abs_rel_err": 0.10,
            "recorded_rank_agreement": 0.9,
            "entries": 1,
        }
        fig.update(over)
        return {"drift_margin": 0.02, "figures": {"figX": fig}}

    def _card(self, model=1.1):
        return Scorecard([
            FigureScore("figX", "t", [_pt("a", model, 1.0)]),
        ])

    def test_within_margin_passes(self):
        assert check_drift(self._card(1.1), self._baseline()) == []
        assert check_drift(self._card(1.115), self._baseline()) == []

    def test_worsened_error_is_flagged(self):
        problems = check_drift(self._card(1.2), self._baseline())
        assert len(problems) == 1
        assert "worsened" in problems[0]

    def test_missing_figure_baseline_is_flagged(self):
        problems = check_drift(self._card(), {"drift_margin": 0.02, "figures": {}})
        assert "no baseline recorded" in problems[0]

    def test_lost_entries_are_flagged(self):
        problems = check_drift(self._card(), self._baseline(entries=5))
        assert any("entries scored" in p for p in problems)

    def test_save_then_check_round_trips(self, tmp_path):
        card = self._card()
        path = tmp_path / "fidelity.json"
        save_baseline(card, path)
        baseline = load_baseline(path)
        assert baseline["figures"]["figX"]["recorded_max_abs_rel_err"] \
            == pytest.approx(0.1)
        assert check_drift(card, baseline) == []

    def test_save_preserves_existing_thresholds(self, tmp_path):
        path = tmp_path / "fidelity.json"
        path.write_text(json.dumps({
            "drift_margin": 0.05,
            "figures": {"figX": {"max_abs_rel_err": 0.25}},
        }))
        save_baseline(self._card(), path)
        data = load_baseline(path)
        assert data["drift_margin"] == 0.05
        assert data["figures"]["figX"]["max_abs_rel_err"] == 0.25

    def test_load_missing_baseline_is_none(self, tmp_path):
        assert load_baseline(tmp_path / "nope.json") is None


class TestScoreFigureEndToEnd:
    """fig2 is the cheapest figure (pure latency model, no engine sweep)."""

    def test_fig2_scores_cross_socket_factor(self):
        s = score_figure("fig2")
        assert s.figure == "fig2"
        (entry,) = s.entries
        assert entry.paper == 1.6
        assert entry.model > 1.0  # cross-socket must cost more

    def test_unknown_figure_raises_with_choices(self):
        with pytest.raises(KeyError, match="fig1, fig2"):
            score_figure("fig42")

    def test_scoring_feeds_the_metrics_registry(self):
        from repro.obs.metrics import collecting

        with collecting() as reg:
            score_figure("fig2")
        assert reg.value("fidelity_figures_total", figure="fig2") == 1
        assert reg.total("fidelity_entries_total") == 1

    def test_scorecard_defaults_to_paper_order(self):
        # Only check the plumbing (figure list), not the expensive run.
        assert FIGURE_ORDER == tuple(f"fig{i}" for i in range(1, 10))

    def test_partial_scorecard(self):
        card = scorecard(["fig2"])
        assert [s.figure for s in card.scores] == ["fig2"]
        assert card.as_dict()["figures"]["fig2"]["entries"]
