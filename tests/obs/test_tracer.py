"""Tracer scoping, the disabled-path no-op guarantee, and clock domains."""

import pytest

from repro.engine import SweepEngine, build_plan
from repro.machine import XEON_MAX_9480, best_practice_config
from repro.obs import Tracer, active_tracer, tracing
from repro.perfmodel.roofline import estimate_app


class TestScoping:
    def test_disabled_by_default(self):
        assert active_tracer() is None

    def test_tracing_installs_and_restores(self):
        with tracing() as tr:
            assert active_tracer() is tr
        assert active_tracer() is None

    def test_nested_scopes_shadow(self):
        with tracing() as outer:
            with tracing() as inner:
                assert active_tracer() is inner
            assert active_tracer() is outer

    def test_explicit_tracer_is_used(self):
        tr = Tracer()
        with tracing(tr) as got:
            assert got is tr
            assert active_tracer() is tr

    def test_restored_after_exception(self):
        with pytest.raises(RuntimeError):
            with tracing():
                raise RuntimeError("boom")
        assert active_tracer() is None


class TestRecording:
    def test_span_validates_direction(self):
        tr = Tracer()
        with pytest.raises(ValueError, match="before start"):
            tr.span("cat", "bad", 2.0, 1.0)

    def test_span_and_event_attrs(self):
        tr = Tracer()
        tr.span("kernel", "k", 0.0, 1.0, track=("ops", 3), bytes=64)
        tr.event("mpi", "send", 0.5, track=("rank", 1), dst=2)
        (s,) = tr.spans_of("kernel")
        assert s.duration == 1.0
        assert s.attrs["bytes"] == 64
        assert s.track == ("ops", 3)
        (e,) = tr.events_of("mpi", "send")
        assert e.attrs["dst"] == 2
        assert tr.tracks() == [("ops", 3), ("rank", 1)]
        assert len(tr) == 2

    def test_wall_span_is_epoch_relative(self):
        tr = Tracer()
        s = tr.wall_span("engine", "job", tr.wall_epoch + 1.0, tr.wall_epoch + 3.0)
        assert s.start == pytest.approx(1.0)
        assert s.end == pytest.approx(3.0)
        assert s.is_wall

    def test_simulated_span_is_not_wall(self):
        tr = Tracer()
        s = tr.span("kernel", "k", 0.0, 1.0, track=("ops", 0))
        assert not s.is_wall


def _fresh_engine(tmp_path, name):
    return SweepEngine(cache_dir=tmp_path / name, workers=1)


class TestNoOpGuarantee:
    """With no tracer installed, instrumented code paths must produce
    results and store contents bit-identical to the uninstrumented ones."""

    def test_estimates_identical_with_and_without_tracer(self, tmp_path):
        engine = _fresh_engine(tmp_path, "a")
        spec = engine.app_spec("miniweather")
        platform = XEON_MAX_9480
        config = best_practice_config(platform)
        plain = estimate_app(spec, platform, config, engine.hierarchy(platform))
        with tracing() as tr:
            traced = estimate_app(spec, platform, config, engine.hierarchy(platform))
        assert traced == plain
        assert tr.events_of("perfmodel")  # tracing actually observed the run

    def test_store_bytes_identical_under_tracing(self, tmp_path):
        plan = build_plan(["miniweather"], [XEON_MAX_9480])
        baseline = _fresh_engine(tmp_path, "baseline")
        baseline.run_plan(plan)
        traced = _fresh_engine(tmp_path, "traced")
        with tracing():
            traced.run_plan(plan)
        assert baseline.store.path.read_bytes() == traced.store.path.read_bytes()

    def test_pool_workers_see_the_tracer(self, tmp_path):
        engine = SweepEngine(cache_dir=tmp_path / "pool", workers=2)
        plan = build_plan(["miniweather"], [XEON_MAX_9480])
        with tracing() as tr:
            engine.run_plan(plan)
        jobs = tr.spans_of("engine")
        assert jobs, "engine job spans must be recorded from pool workers"
        assert all(s.is_wall for s in jobs)
        assert {s.attrs["status"] for s in jobs} <= {"ok", "cached", "error"}
