"""The report layer: markdown byte-compat, HTML self-containment."""

from pathlib import Path

import pytest

from repro.obs.fidelity import FIGURE_ORDER
from repro.obs.htmlreport import (
    _selftest_no_network,
    render_html,
    render_markdown,
    write_report,
)

REPO_ROOT = Path(__file__).resolve().parents[2]


@pytest.fixture(scope="module")
def html():
    return render_html()


class TestMarkdown:
    def test_byte_compatible_with_committed_report(self):
        """``render_markdown`` is the old ``scripts/generate_report.py``
        folded into the library; the committed report.md pins the bytes."""
        committed = (REPO_ROOT / "report.md").read_text()
        assert render_markdown() == committed

    def test_script_wrapper_delegates(self, tmp_path, capsys):
        import importlib.util
        import sys

        spec = importlib.util.spec_from_file_location(
            "generate_report", REPO_ROOT / "scripts" / "generate_report.py")
        mod = importlib.util.module_from_spec(spec)
        spec.loader.exec_module(mod)
        out = tmp_path / "r.md"
        argv, sys.argv = sys.argv, ["generate_report.py", str(out)]
        try:
            assert mod.main() == 0
        finally:
            sys.argv = argv
        assert out.read_text() == render_markdown()


class TestHtml:
    def test_self_contained(self, html):
        assert _selftest_no_network(html)
        lowered = html.lower()
        assert "<script src" not in lowered
        assert "<link" not in lowered
        assert "<img" not in lowered

    def test_embeds_all_nine_figures(self, html):
        for fig in FIGURE_ORDER:
            assert f"{fig}:" in html or f">{fig}<" in html

    def test_embeds_scorecard_timelines_and_attribution(self, html):
        assert "Paper-fidelity scorecard" in html
        assert "class=\"timeline\"" in html
        assert "attribution tree" in html
        assert "hbm2e" in html  # memory-technology labels surface
        assert "differential: max9480 vs icx8360y" in html

    def test_single_document(self, html):
        assert html.count("<html") == 1
        assert html.count("</html>") == 1


class TestWriteReport:
    def test_suffix_dispatch(self, tmp_path):
        md = write_report(tmp_path / "out.md")
        assert md.read_text() == render_markdown()
        html = write_report(tmp_path / "out.html")
        text = html.read_text()
        assert text.startswith("<!doctype html>")
        assert _selftest_no_network(text)

    def test_unknown_format_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="unknown report format"):
            write_report(tmp_path / "out.html", fmt="pdf")
