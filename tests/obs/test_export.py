"""Chrome trace export format and span-nesting validation."""

import json

import numpy as np
import pytest

from repro.obs import Tracer, check_nesting, chrome_trace, write_chrome_trace


def _sample_tracer():
    tr = Tracer()
    tr.span("kernel", "outer", 0.0, 4.0, track=("ops", 0))
    tr.span("kernel", "inner", 1.0, 2.0, track=("ops", 0), bytes=128)
    tr.span("mpi", "wait", 0.0, 0.5, track=("rank", 1))
    tr.event("mpi", "send", 0.25, track=("rank", 1), dst=0, bytes=np.int64(8))
    tr.wall_span("engine", "job", tr.wall_epoch, tr.wall_epoch + 0.1,
                 track=("engine", "w0"))
    return tr


class TestChromeTrace:
    def test_round_trips_through_json(self):
        doc = chrome_trace(_sample_tracer())
        again = json.loads(json.dumps(doc))
        assert again == doc

    def test_event_kinds_and_counts(self):
        doc = chrome_trace(_sample_tracer())
        by_ph = {}
        for ev in doc["traceEvents"]:
            by_ph.setdefault(ev["ph"], []).append(ev)
        assert len(by_ph["X"]) == 4  # spans
        assert len(by_ph["i"]) == 1  # instant events
        assert by_ph["M"]  # metadata names the processes/threads

    def test_timestamps_in_microseconds(self):
        doc = chrome_trace(_sample_tracer())
        inner = next(e for e in doc["traceEvents"] if e.get("name") == "inner")
        assert inner["ts"] == pytest.approx(1.0e6)
        assert inner["dur"] == pytest.approx(1.0e6)
        assert inner["args"]["bytes"] == 128

    def test_domains_become_processes_with_clock_labels(self):
        doc = chrome_trace(_sample_tracer())
        names = [e["args"]["name"] for e in doc["traceEvents"]
                 if e["ph"] == "M" and e["name"] == "process_name"]
        assert "ops (simulated time)" in names
        assert "rank (simulated time)" in names
        assert "engine (wall clock)" in names

    def test_numpy_attrs_are_serialized(self):
        doc = chrome_trace(_sample_tracer())
        send = next(e for e in doc["traceEvents"] if e.get("name") == "send")
        assert send["args"]["bytes"] == 8
        json.dumps(send)

    def test_write_creates_loadable_file(self, tmp_path):
        path = write_chrome_trace(_sample_tracer(), tmp_path / "t.json")
        doc = json.loads(path.read_text())
        assert doc["otherData"]["spans"] == 4
        assert doc["otherData"]["events"] == 1


class TestNesting:
    def test_nested_and_disjoint_pass(self):
        check_nesting(_sample_tracer())

    def test_sequential_spans_pass(self):
        tr = Tracer()
        tr.span("kernel", "a", 0.0, 1.0, track=("ops", 0))
        tr.span("kernel", "b", 1.0, 2.0, track=("ops", 0))
        check_nesting(tr)

    def test_partial_overlap_rejected(self):
        tr = Tracer()
        tr.span("kernel", "a", 0.0, 2.0, track=("ops", 0))
        tr.span("kernel", "b", 1.0, 3.0, track=("ops", 0))
        with pytest.raises(ValueError, match="without nesting"):
            check_nesting(tr)

    def test_overlap_on_different_tracks_is_fine(self):
        tr = Tracer()
        tr.span("kernel", "a", 0.0, 2.0, track=("ops", 0))
        tr.span("kernel", "b", 1.0, 3.0, track=("ops", 1))
        check_nesting(tr)
