"""End-to-end checks of ``python -m repro trace``."""

import json

import pytest

from repro.__main__ import main
from repro.engine import default_engine


def _spans(doc, cat=None, name=None):
    out = [e for e in doc["traceEvents"] if e["ph"] == "X"]
    if cat is not None:
        out = [e for e in out if e.get("cat") == cat]
    if name is not None:
        out = [e for e in out if e["name"] == name]
    return out


class TestTraceCommand:
    @pytest.fixture(scope="class")
    def trace_doc(self, tmp_path_factory):
        path = tmp_path_factory.mktemp("trace") / "trace.json"
        assert main(["trace", "cloverleaf", "--platform", "max9480",
                     "-o", str(path)]) == 0
        return json.loads(path.read_text())

    def test_one_span_per_kernel_loop(self, trace_doc):
        spec = default_engine().app_spec("cloverleaf2d")
        kernels = _spans(trace_doc, cat="kernel")
        timeline = [k for k in kernels
                    if {"t_bandwidth", "limb"} <= set(k["args"])]
        assert len(timeline) == len(spec.loops)
        assert [k["name"] for k in timeline] == [l.name for l in spec.loops]

    def test_halo_exchange_spans(self, trace_doc):
        assert len(_spans(trace_doc, name="halo-exchange")) >= 1

    def test_span_attributes(self, trace_doc):
        for k in _spans(trace_doc, cat="kernel"):
            assert "bytes" in k["args"]
            assert "flops" in k["args"]
        bulk = max(_spans(trace_doc, cat="kernel"), key=lambda k: k["dur"])
        assert bulk["args"]["limb"] in ("bandwidth", "compute", "latency")
        for h in _spans(trace_doc, name="halo-exchange"):
            assert h["args"]["bytes"] > 0
            assert h["args"]["messages"] > 0

    def test_csv_output(self, tmp_path, capsys):
        assert main(["trace", "miniweather", "--platform", "max9480",
                     "-o", str(tmp_path / "t.json"), "--csv"]) == 0
        out = capsys.readouterr().out
        assert out.splitlines()[0].startswith("loop,")

    def test_iterations_repeat_the_timeline(self, tmp_path):
        path = tmp_path / "t3.json"
        assert main(["trace", "miniweather", "--platform", "max9480",
                     "-o", str(path), "--iterations", "3"]) == 0
        doc = json.loads(path.read_text())
        iters = [e for e in doc["traceEvents"]
                 if e["ph"] == "i" and e["name"] == "iteration"]
        assert len(iters) == 3

    def test_unknown_app_exits_2_listing_choices(self, tmp_path, capsys):
        assert main(["trace", "linpack", "-o", str(tmp_path / "t.json")]) == 2
        err = capsys.readouterr().err
        assert "unknown application" in err
        assert "cloverleaf2d" in err

    def test_unknown_platform_exits_2_listing_choices(self, tmp_path, capsys):
        assert main(["trace", "miniweather", "--platform", "cray1",
                     "-o", str(tmp_path / "t.json")]) == 2
        err = capsys.readouterr().err
        assert "unknown platform" in err
        assert "max9480" in err
