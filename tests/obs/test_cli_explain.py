"""End-to-end tests for ``python -m repro explain`` and ``report``."""

import json

from repro.__main__ import main


class TestExplain:
    def test_basic_tree(self, capsys):
        assert main(["explain", "volna", "--platform", "max9480"]) == 0
        out = capsys.readouterr().out
        assert "attributed" in out
        assert "kernels" in out
        assert "memory[hbm2e]" in out

    def test_vs_substring_platform_names_hbm_top_contributor(self, capsys):
        """Acceptance: the MAX-vs-8360Y CloverLeaf diff leads with the
        HBM memory limb, and '8360y' resolves by substring."""
        assert main(["explain", "cloverleaf2d", "--platform", "max9480",
                     "--vs", "8360y"]) == 0
        out = capsys.readouterr().out
        assert "vs icx8360y" in out
        assert "by kind:" in out
        first_kind = out.split("by kind:")[1].strip().splitlines()[0]
        assert first_kind.split()[0] == "memory"
        assert "memory[hbm2e] vs memory[ddr4]" in out

    def test_what_if_projection(self, capsys):
        assert main(["explain", "miniweather", "--platform", "max9480",
                     "--what-if", "dram_bw=2.0"]) == 0
        out = capsys.readouterr().out
        assert "what-if [dram_bw=2]" in out

    def test_json_output(self, capsys):
        assert main(["explain", "mgcfd", "--platform", "max9480",
                     "--vs", "epyc", "--what-if", "mpi=inf", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["tree"]["kind"] == "app"
        assert payload["diff"]["b"]["platform"] == "epyc7v73x"
        assert payload["what_if"]["knobs"] == {"mpi": float("inf")}

    def test_unknown_vs_platform_exits_2(self, capsys):
        assert main(["explain", "volna", "--platform", "max9480",
                     "--vs", "cray1"]) == 2
        err = capsys.readouterr().err
        assert "unknown platform" in err
        assert "max9480" in err  # lists the valid choices

    def test_unknown_app_exits_2(self, capsys):
        assert main(["explain", "linpack"]) == 2
        assert "unknown application" in capsys.readouterr().err

    def test_bad_what_if_exits_2(self, capsys):
        assert main(["explain", "volna", "--what-if", "warp=2"]) == 2
        assert "unknown what-if knob" in capsys.readouterr().err
        assert main(["explain", "volna", "--what-if", "dram_bw"]) == 2
        assert "KNOB=FACTOR" in capsys.readouterr().err
        assert main(["explain", "volna", "--what-if", "dram_bw=-1"]) == 2
        assert "must be > 0" in capsys.readouterr().err


class TestReportCli:
    def test_writes_self_contained_html(self, tmp_path, capsys):
        out = tmp_path / "report.html"
        assert main(["report", "-o", str(out)]) == 0
        assert "self-contained" in capsys.readouterr().err
        text = out.read_text()
        assert text.startswith("<!doctype html>")
        assert "http://" not in text and "https://" not in text

    def test_markdown_by_suffix(self, tmp_path):
        from repro.obs.htmlreport import render_markdown

        out = tmp_path / "report.md"
        assert main(["report", "-o", str(out)]) == 0
        assert out.read_text() == render_markdown()


class TestListFigures:
    def test_list_prints_figure_ids(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "figures" in out
        for fig in ("fig1", "fig5", "fig9"):
            assert fig in out
