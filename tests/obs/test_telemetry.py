"""Telemetry: quantile math, sampler rings/deltas, SLO burn-rate state."""

import io
import json
from bisect import bisect_left
from contextlib import redirect_stdout

import pytest

from repro.__main__ import main as cli_main
from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    HistogramValue,
    MetricsRegistry,
    bucket_quantile,
    quantile_summary,
)
from repro.obs.telemetry import (
    SLO,
    SLOEngine,
    TelemetrySampler,
    read_log,
    sampling,
    summarize_log,
)

BOUNDS = (0.1, 0.5, 1.0)


class TestBucketQuantile:
    def test_empty_histogram_is_none_never_nan(self):
        h = HistogramValue(bounds=BOUNDS)
        assert h.quantile(0.50) is None
        assert h.quantile(0.99) is None
        assert bucket_quantile(BOUNDS, [0, 0, 0, 0], 0.5) is None

    def test_single_bucket_mass_interpolates_within_it(self):
        # All mass in (0.1, 0.5]: every quantile lands inside that span.
        q50 = bucket_quantile(BOUNDS, [0, 10, 0, 0], 0.50)
        q99 = bucket_quantile(BOUNDS, [0, 10, 0, 0], 0.99)
        assert 0.1 < q50 <= 0.5
        assert 0.1 < q99 <= 0.5
        assert q50 < q99

    def test_inf_bucket_clamps_to_last_finite_bound(self):
        # All mass above every bound: the +Inf bucket has no upper edge,
        # so the estimate clamps to the largest finite bound.
        assert bucket_quantile(BOUNDS, [0, 0, 0, 7], 0.99) == BOUNDS[-1]
        assert bucket_quantile(BOUNDS, [0, 0, 0, 7], 0.01) == BOUNDS[-1]

    def test_exact_bound_observations(self):
        h = HistogramValue(bounds=BOUNDS)
        for v in BOUNDS:  # values exactly on a bound belong to that bucket
            h.observe(v)
        assert h.counts == [1, 1, 1, 0]
        # p100 ≈ the top occupied bucket's upper edge.
        assert h.quantile(1.0) == pytest.approx(1.0)

    def test_quantile_validates_q(self):
        with pytest.raises(ValueError):
            bucket_quantile(BOUNDS, [1, 0, 0, 0], 1.5)
        with pytest.raises(ValueError):
            bucket_quantile(BOUNDS, [1, 0, 0, 0], -0.1)

    def test_bisect_matches_linear_scan_on_boundaries(self):
        # The micro-test behind the observe() fast path: bisect_left must
        # give the same bucket as the obvious linear scan (`value <=
        # bound`, else the +Inf slot) — including exactly-on-bound values.
        def linear(bounds, value):
            for i, bound in enumerate(bounds):
                if value <= bound:
                    return i
            return len(bounds)

        probes = [0.0, 0.05, 0.1, 0.10000001, 0.3, 0.5, 0.7, 1.0, 1.5]
        for bounds in (BOUNDS, DEFAULT_BUCKETS):
            for v in probes:
                assert bisect_left(bounds, v) == linear(bounds, v), (bounds, v)

    def test_quantile_summary_renders_comment_lines(self):
        r = MetricsRegistry()
        r.observe("job_seconds", 0.3, buckets=BOUNDS)
        r.observe("job_seconds", 0.3, buckets=BOUNDS)
        text = quantile_summary(r)
        assert text.startswith("# quantile job_seconds")
        assert "p50=" in text and "p99=" in text and "count=2" in text


class TestSampler:
    def make(self, reg, **kw):
        kw.setdefault("interval", 0)  # manual ticks only
        kw.setdefault("baseline_zero", True)
        return TelemetrySampler(lambda: reg, **kw)

    def test_counter_deltas_and_rates(self):
        reg = MetricsRegistry()
        s = self.make(reg)
        s.tick(now=100.0)  # t0 baseline (no series yet)
        reg.inc("jobs_total", 5)
        s.tick(now=110.0)
        reg.inc("jobs_total", 3)
        s.tick(now=115.0)
        ring = s.series("jobs_total")
        # (t, cumulative, delta, rate): first point diffs against zero
        # because the registry is fresh (baseline_zero).
        assert ring[0] == (110.0, 5, 5, pytest.approx(0.5))
        assert ring[1] == (115.0, 8, 3, pytest.approx(0.6))

    def test_long_lived_source_first_point_has_zero_delta(self):
        reg = MetricsRegistry()
        reg.inc("jobs_total", 1000)  # pre-existing history
        s = self.make(reg, baseline_zero=False)
        s.tick(now=50.0)
        t, cum, delta, rate = s.series("jobs_total")[0]
        assert cum == 1000 and delta == 0.0 and rate == 0.0

    def test_ring_is_bounded_by_capacity(self):
        reg = MetricsRegistry()
        s = self.make(reg, capacity=5)
        for i in range(8):
            reg.inc("jobs_total")
            s.tick(now=float(i))
        ring = s.series("jobs_total")
        assert len(ring) == 5
        assert ring[-1][0] == 7.0  # newest kept, oldest evicted

    def test_gauge_and_histogram_points(self):
        reg = MetricsRegistry()
        s = self.make(reg)
        reg.set("depth", 3.0)
        reg.observe("lat_seconds", 0.3, buckets=BOUNDS)
        s.tick(now=10.0)
        assert s.series("depth") == [(10.0, 3.0)]
        t, counts, total, count = s.series("lat_seconds")[0]
        assert counts == (0, 1, 0, 0) and count == 1

    def test_payload_shape(self):
        reg = MetricsRegistry()
        s = self.make(reg)
        s.tick(now=0.0)
        reg.inc("jobs_total", 2)
        reg.observe("lat_seconds", 0.3, buckets=BOUNDS)
        s.tick(now=1.0)
        p = s.payload()
        assert p["samples"] == 2
        assert p["slo"]["status"] == "ok"
        jobs = p["families"]["jobs_total"]
        assert jobs["kind"] == "counter"
        assert jobs["series"][0]["points"][-1] == [1.0, pytest.approx(2.0)]
        lat = p["families"]["lat_seconds"]["series"][0]
        assert lat["buckets"]["bounds"] == list(BOUNDS)
        assert lat["quantiles"]["p50"] is not None

    def test_jsonl_log_roundtrip(self, tmp_path):
        path = tmp_path / "telemetry.jsonl"
        reg = MetricsRegistry()
        s = self.make(reg, log_path=path)
        reg.inc("jobs_total", 4)
        s.tick(now=10.0)
        reg.inc("jobs_total", 2)
        reg.set("depth", 1.5)
        s.tick(now=12.0)
        path.write_text(
            path.read_text() + "{not json\n", encoding="utf-8"
        )  # malformed tail line must be skipped, not fatal
        records = read_log(path)
        assert len(records) == 2
        summary = summarize_log(records)
        assert summary["samples"] == 2
        assert summary["duration_s"] == pytest.approx(2.0)
        jobs = summary["counters"]["jobs_total"][0]
        assert jobs["delta"] == 6 and jobs["last"] == 6
        assert summary["gauges"]["depth"][0]["last"] == 1.5
        assert summary["slo"]["statuses"] == {"ok": 2}

    def test_gauge_sink_receives_slo_gauges(self):
        reg = MetricsRegistry()
        seen = []
        slo = SLO(name="lat", family="lat_seconds", threshold_s=0.5)
        s = TelemetrySampler(
            lambda: reg, interval=0, slos=[slo],
            gauge_sink=lambda name, v, **lb: seen.append((name, v, lb)),
        )
        s.tick(now=1.0)
        names = {n for n, _, _ in seen}
        assert names == {"serve_slo_burn_rate", "serve_slo_status"}
        assert all(lb == {"slo": "lat"} for _, _, lb in seen)

    def test_sampling_scope_collects_and_flushes(self, tmp_path):
        path = tmp_path / "t.jsonl"
        with sampling(interval=0, log_path=path) as sampler:
            from repro.obs.metrics import active_metrics

            active_metrics().inc("jobs_total", 3)
        # t0 baseline tick + the final flush tick from stop().
        records = read_log(path)
        assert len(records) >= 2
        assert records[-1]["counters"]["jobs_total"][0]["value"] == 3
        assert sampler.samples == len(records)


class TestSLOEngine:
    SLOS = [SLO(name="lat-p99", family="lat_seconds",
                threshold_s=0.5, target=0.99)]

    def make(self):
        reg = MetricsRegistry()
        s = TelemetrySampler(
            lambda: reg, interval=0, slos=self.SLOS, baseline_zero=True
        )
        return reg, s

    def test_no_samples_is_ok(self):
        _, s = self.make()
        s.tick(now=1000.0)
        doc = s.slo_status()
        assert doc["status"] == "ok"
        obj = doc["objectives"][0]
        assert obj["window_total"] == 0 and obj["burn_short"] == 0.0

    def test_min_samples_guard(self):
        # A single cold request breaching the threshold must not flip
        # health: below MIN_SAMPLES the objective is not judged.
        reg, s = self.make()
        reg.observe("lat_seconds", 2.0, buckets=BOUNDS)
        s.tick(now=1000.0)
        assert s.slo_status()["status"] == "ok"
        assert s.slo_status()["objectives"][0]["window_total"] < SLOEngine.MIN_SAMPLES

    def test_cold_start_burn_fails(self):
        reg, s = self.make()
        for _ in range(10):
            reg.observe("lat_seconds", 2.0, buckets=BOUNDS)
        s.tick(now=1000.0)
        doc = s.slo_status()
        obj = doc["objectives"][0]
        assert obj["bad_fraction"] == pytest.approx(1.0)
        assert obj["burn_short"] >= SLOEngine.FAILING_BURN
        assert doc["status"] == "failing"

    def test_partial_breach_is_degraded_not_failing(self):
        # ~3% bad at a 99% target: burn ≈ 3 — over budget, but well
        # under the fast-burn page threshold.
        reg, s = self.make()
        for _ in range(97):
            reg.observe("lat_seconds", 0.2, buckets=BOUNDS)
        for _ in range(3):
            reg.observe("lat_seconds", 2.0, buckets=BOUNDS)
        s.tick(now=1000.0)
        doc = s.slo_status()
        obj = doc["objectives"][0]
        assert 1.0 <= obj["burn_short"] < SLOEngine.FAILING_BURN
        assert doc["status"] == "degraded"

    def test_recovery_needs_consecutive_clean_ticks(self):
        reg, s = self.make()
        for _ in range(10):
            reg.observe("lat_seconds", 2.0, buckets=BOUNDS)
        s.tick(now=1000.0)
        assert s.slo_status()["status"] == "failing"
        # Quiet period: ticks past the short window see zero new
        # observations (burn 0), but hysteresis holds the status until
        # RECOVER_TICKS consecutive clean evaluations have passed.
        clean_start = 1000.0 + SLOEngine.SHORT_WINDOW + 1
        for i in range(SLOEngine.RECOVER_TICKS - 1):
            s.tick(now=clean_start + i)
            assert s.slo_status()["status"] == "failing"
        s.tick(now=clean_start + SLOEngine.RECOVER_TICKS - 1)
        assert s.slo_status()["status"] == "ok"

    def test_errors_kind_counts_status_prefix(self):
        slo = SLO(name="errors", family="requests_total", kind="errors",
                  target=0.9)
        reg = MetricsRegistry()
        s = TelemetrySampler(
            lambda: reg, interval=0, slos=[slo], baseline_zero=True
        )
        reg.inc("requests_total", 8, status="200")
        reg.inc("requests_total", 2, status="500")
        s.tick(now=1000.0)
        obj = s.slo_status()["objectives"][0]
        assert obj["bad_fraction"] == pytest.approx(0.2)
        assert obj["burn_short"] == pytest.approx(2.0)

    def test_slo_validation(self):
        with pytest.raises(ValueError, match="threshold_s"):
            SLO(name="x", family="f")  # latency without a threshold
        with pytest.raises(ValueError, match="kind"):
            SLO(name="x", family="f", kind="availability")
        with pytest.raises(ValueError, match="target"):
            SLO(name="x", family="f", threshold_s=1.0, target=1.0)


class TestTelemetryCLI:
    def run_cli(self, argv):
        buf = io.StringIO()
        with redirect_stdout(buf):
            rc = cli_main(argv)
        return rc, buf.getvalue()

    def make_log(self, tmp_path):
        path = tmp_path / "telemetry.jsonl"
        reg = MetricsRegistry()
        s = TelemetrySampler(
            lambda: reg, interval=0, log_path=path, baseline_zero=True
        )
        reg.inc("engine_jobs_total", 4)
        reg.observe("engine_job_seconds", 0.002)
        s.tick(now=10.0)
        reg.inc("engine_jobs_total", 6)
        s.tick(now=12.0)
        s.stop()
        return path

    def test_telemetry_report(self, tmp_path):
        path = self.make_log(tmp_path)
        rc, out = self.run_cli(["telemetry", str(path)])
        assert rc == 0
        assert "engine_jobs_total" in out and "peak" in out
        rc, out = self.run_cli(["telemetry", str(path), "--json"])
        assert rc == 0
        summary = json.loads(out)
        assert summary["counters"]["engine_jobs_total"]

    def test_telemetry_family_filter(self, tmp_path):
        path = self.make_log(tmp_path)
        rc, out = self.run_cli(
            ["telemetry", str(path), "--json", "--family", "job_seconds"]
        )
        summary = json.loads(out)
        assert "engine_jobs_total" not in summary["counters"]
        assert "engine_job_seconds" in summary["histograms"]

    def test_top_from_log(self, tmp_path):
        path = self.make_log(tmp_path)
        rc, out = self.run_cli(["top", "--log", str(path)])
        assert rc == 0
        assert "repro top" in out and "engine_jobs_total" in out
        assert "\x1b[2J" not in out  # log replay never clears the screen

    def test_top_rejects_url_plus_log(self, tmp_path):
        rc, _ = self.run_cli(
            ["top", "--log", "x.jsonl", "--url", "http://localhost:1"]
        )
        assert rc == 2

    def test_telemetry_missing_file(self, tmp_path):
        rc, _ = self.run_cli(["telemetry", str(tmp_path / "absent.jsonl")])
        assert rc == 1
