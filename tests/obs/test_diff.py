"""Differential analyzer: antisymmetry, completeness, projections."""

import math

import pytest

from repro.harness import best_attribution
from repro.machine import ALL_PLATFORMS, get_platform
from repro.obs.diff import diff_trees, project

MAX = get_platform("max9480")
ICX = get_platform("icx8360y")


def _tree(app, platform):
    return best_attribution(app, platform)[2]


class TestDiff:
    @pytest.mark.parametrize("app", ["cloverleaf2d", "mgcfd", "miniweather"])
    def test_antisymmetry(self, app):
        """diff(A, B) == -diff(B, A), contributor for contributor."""
        a, b = _tree(app, MAX), _tree(app, ICX)
        fwd = {c.key: c.delta for c in diff_trees(a, b).contributors}
        rev = {c.key: c.delta for c in diff_trees(b, a).contributors}
        assert set(fwd) == set(rev)
        for key, delta in fwd.items():
            assert rev[key] == -delta

    def test_contributors_sum_to_delta(self):
        d = diff_trees(_tree("cloverleaf2d", MAX), _tree("cloverleaf2d", ICX))
        total = sum(c.delta for c in d.contributors)
        assert math.isclose(total, d.delta, rel_tol=1e-9)
        by_kind_total = sum(delta for _k, delta in d.by_kind())
        assert math.isclose(by_kind_total, d.delta, rel_tol=1e-9)

    def test_hbm_memory_limb_is_top_contributor(self):
        """The paper's headline, recovered from our own numbers: the
        MAX's advantage over the 8360Y on CloverLeaf is the HBM memory
        limb (acceptance criterion)."""
        d = diff_trees(_tree("cloverleaf2d", MAX), _tree("cloverleaf2d", ICX))
        assert d.by_kind()[0][0] == "memory"
        top = d.contributors[0]
        assert top.kind == "memory"
        assert "hbm2e" in top.label and "ddr4" in top.label

    def test_ranked_by_absolute_delta(self):
        d = diff_trees(_tree("volna", MAX), _tree("volna", ICX))
        mags = [abs(c.delta) for c in d.contributors]
        assert mags == sorted(mags, reverse=True)

    def test_missing_leaf_matches_zero(self):
        """A GPU tree has no MPI section; diffing CPU vs GPU still
        explains the full delta, with MPI leaves matched against 0."""
        a100 = next(p for p in ALL_PLATFORMS if p.short_name == "a100")
        d = diff_trees(_tree("cloverleaf2d", MAX), _tree("cloverleaf2d", a100))
        mpi = [c for c in d.contributors if c.key[0] == "mpi"]
        assert mpi and all(c.seconds_b == 0.0 for c in mpi)
        assert all(c.label_b == "-" for c in mpi)
        total = sum(c.delta for c in d.contributors)
        assert math.isclose(total, d.delta, rel_tol=1e-9)

    def test_as_dict_shape(self):
        d = diff_trees(_tree("mgcfd", MAX), _tree("mgcfd", ICX))
        dd = d.as_dict()
        assert dd["a"]["platform"] == "max9480"
        assert dd["b"]["platform"] == "icx8360y"
        assert dd["speedup_a_over_b"] == d.speedup
        assert len(dd["contributors"]) == len(d.contributors)


class TestProject:
    def test_empty_knobs_project_baseline(self):
        tree = _tree("miniweather", MAX)
        p = project(tree, {})
        assert p["projected_seconds"] == p["baseline_seconds"]
        assert p["speedup"] == 1.0

    def test_double_dram_speeds_up_bandwidth_bound_app(self):
        tree = _tree("cloverleaf2d", MAX)
        p = project(tree, {"dram_bw": 2.0})
        assert 1.0 < p["speedup"] < 2.0
        assert p["projected_seconds"] < p["baseline_seconds"]

    def test_zero_mpi_wait_projection(self):
        tree = _tree("cloverleaf2d", MAX)
        p = project(tree, {"mpi_wait": float("inf")})
        assert all(l.seconds == 0.0 for l in p["tree"].leaves()
                   if l.kind == "mpi-wait")
        assert p["speedup"] >= 1.0
