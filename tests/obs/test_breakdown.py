"""Per-kernel breakdown tables must mirror the estimate exactly."""

import csv
import io

from repro.engine import SweepEngine
from repro.harness import render_breakdown
from repro.machine import XEON_MAX_9480, best_practice_config
from repro.obs import (
    BREAKDOWN_COLUMNS,
    breakdown_csv,
    breakdown_table,
    kernel_breakdown,
    summary_dict,
)
from repro.perfmodel.roofline import estimate_app


def _estimate(tmp_path):
    engine = SweepEngine(cache_dir=tmp_path / "bd")
    platform = XEON_MAX_9480
    spec = engine.app_spec("miniweather")
    return estimate_app(spec, platform, best_practice_config(platform),
                        engine.hierarchy(platform))


class TestBreakdown:
    def test_rows_match_per_loop_exactly(self, tmp_path):
        est = _estimate(tmp_path)
        columns, rows = kernel_breakdown(est)
        assert columns == BREAKDOWN_COLUMNS
        assert len(rows) == len(est.per_loop)
        for row, lt in zip(rows, est.per_loop):
            assert row == (lt.name, lt.time, lt.t_bandwidth, lt.t_compute,
                           lt.t_latency, lt.overhead, lt.counted_bytes,
                           lt.flops, lt.bottleneck)

    def test_csv_round_trips(self, tmp_path):
        est = _estimate(tmp_path)
        reader = csv.reader(io.StringIO(breakdown_csv(est)))
        header = next(reader)
        assert tuple(header) == BREAKDOWN_COLUMNS
        body = list(reader)
        assert len(body) == len(est.per_loop)
        for row, lt in zip(body, est.per_loop):
            assert row[0] == lt.name
            assert float(row[1]) == lt.time
            assert float(row[6]) == lt.counted_bytes

    def test_table_lists_every_loop(self, tmp_path):
        est = _estimate(tmp_path)
        table = breakdown_table(est)
        for lt in est.per_loop:
            assert lt.name in table

    def test_summary_dict_mirrors_estimate(self, tmp_path):
        est = _estimate(tmp_path)
        s = summary_dict(est)
        assert s["app"] == est.app
        assert s["total_time"] == est.total_time
        assert s["mpi_fraction"] == est.mpi_fraction
        assert s["effective_bandwidth"] == est.effective_bandwidth
        assert [l["name"] for l in s["loops"]] == [lt.name for lt in est.per_loop]
        assert [l["time"] for l in s["loops"]] == [lt.time for lt in est.per_loop]

    def test_render_breakdown(self, tmp_path):
        est = _estimate(tmp_path)
        text = render_breakdown(summary_dict(est))
        assert est.app in text
        assert "bottleneck" in text
        for lt in est.per_loop:
            assert lt.name in text
