"""Tiled (cache-blocked) execution must be bitwise identical to untiled,
and the analytic tiling model must reproduce Figure 9's shape."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.machine import (
    EPYC_7V73X,
    XEON_8360Y,
    XEON_MAX_9480,
    best_practice_config,
)
from repro.ops import (
    Access,
    OpsContext,
    S2D_00,
    TiledChainModel,
    TilePlan,
    arg_dat,
    arg_gbl,
    point_stencil,
    star_stencil,
)
from repro.perfmodel import AppClass, AppSpec, LoopSpec


def chain_app(ctx, n=30, iters=3, radius=2):
    """Multi-loop chain with mixed radii, INC, and a final reduction."""
    grid = ctx.block("grid", (n, n))
    a = grid.dat("a", halo=radius)
    b = grid.dat("b", halo=radius)
    c = grid.dat("c", halo=radius)
    rng = np.random.default_rng(42)
    a.set_from_global(rng.random((n, n)))
    s1 = star_stencil(2, 1)
    sr = star_stencil(2, radius)

    def smooth(out, inp):
        out[0, 0] = 0.5 * inp[0, 0] + 0.125 * (
            inp[1, 0] + inp[-1, 0] + inp[0, 1] + inp[0, -1]
        )

    def widen(out, inp):
        out[0, 0] = inp[(radius, 0)] + inp[(-radius, 0)] + inp[(0, radius)] + inp[(0, -radius)]

    def accumulate(out, inp):
        out[0, 0] += 0.25 * inp[0, 0]

    def zero_ghosts(x):
        x[0, 0] = 0.0

    total = np.zeros(1)

    def sumk(g, inp):
        g[0] += float(np.sum(inp[0, 0]))

    inner = [(radius, n - radius), (radius, n - radius)]
    for _ in range(iters):
        for d in (a, b, c):
            for r in ([(-radius, 0), (-radius, n + radius)],
                      [(n, n + radius), (-radius, n + radius)]):
                ctx.par_loop(zero_ghosts, "ghost", grid, r,
                             arg_dat(d, S2D_00, Access.WRITE))
        ctx.par_loop(smooth, "smooth", grid, grid.interior,
                     arg_dat(b, S2D_00, Access.WRITE), arg_dat(a, s1, Access.READ),
                     flops_per_point=6)
        ctx.par_loop(widen, "widen", grid, inner,
                     arg_dat(c, S2D_00, Access.WRITE), arg_dat(b, sr, Access.READ),
                     flops_per_point=3)
        ctx.par_loop(accumulate, "acc", grid, grid.interior,
                     arg_dat(a, S2D_00, Access.INC), arg_dat(c, S2D_00, Access.READ),
                     flops_per_point=2)
    ctx.par_loop(sumk, "sum", grid, grid.interior,
                 arg_gbl(total, Access.INC), arg_dat(a, S2D_00, Access.READ))
    return a.gather_global(), total


class TestTiledCorrectness:
    @pytest.fixture(scope="class")
    def serial(self):
        return chain_app(OpsContext())

    @pytest.mark.parametrize("width", [1, 4, 7, 16, 64])
    def test_bitwise_identical(self, width, serial):
        ctx = OpsContext(tile=TilePlan(width))
        field, total = chain_app(ctx)
        ctx.flush()
        assert np.array_equal(field, serial[0])
        # Reduction order differs per tile; equal to rounding.
        assert total[0] == pytest.approx(serial[1][0], rel=1e-12)

    def test_reduction_forces_flush(self):
        ctx = OpsContext(tile=TilePlan(8))
        chain_app(ctx, iters=1)
        # The final reduction loop carries INC: queue must be empty.
        assert not ctx._queue

    def test_records_match_untiled(self):
        ser = OpsContext()
        chain_app(ser, iters=2)
        til = OpsContext(tile=TilePlan(8))
        chain_app(til, iters=2)
        til.flush()
        for name, rec in ser.records.items():
            trec = til.records[name]
            assert trec.points == rec.points, name
            assert trec.bytes == rec.bytes, name
            assert trec.flops == rec.flops, name

    def test_tile_width_validation(self):
        with pytest.raises(ValueError):
            TilePlan(0)

    def test_tiling_distributed_rejected(self):
        from repro.simmpi import CartGrid, World

        def program(comm):
            OpsContext(comm=comm, grid=CartGrid((1,)), tile=TilePlan(4))

        from repro.simmpi import RankFailedError

        with pytest.raises(RankFailedError, match="serial-only"):
            World(1).run(program)

    @given(width=st.integers(1, 40), n=st.sampled_from([16, 25, 33]))
    @settings(max_examples=12, deadline=None)
    def test_property_any_width_any_size(self, width, n):
        ser_field, ser_total = chain_app(OpsContext(), n=n, iters=2)
        ctx = OpsContext(tile=TilePlan(width))
        field, total = chain_app(ctx, n=n, iters=2)
        ctx.flush()
        assert np.array_equal(field, ser_field)


class TestTiledChainModel:
    """The analytic Figure 9 model."""

    @staticmethod
    def clover_like_app():
        # ~25 streaming loops over the same 7680^2 grid, ~15 resident fields.
        loops = tuple(
            LoopSpec(f"loop{i}", 7680.0**2, 72.0, 20.0, radius=1,
                     dtype_bytes=8, streams=8)
            for i in range(25)
        )
        return AppSpec("clover2d-like", AppClass.STRUCTURED_BW, 8, 50, loops,
                       (7680, 7680), halo_depth=2)

    def model(self, platform):
        return TiledChainModel(
            self.clover_like_app(), platform, best_practice_config(platform),
            unique_bytes_per_point=15 * 8.0,
        )

    def test_tiling_always_helps_these_chains(self):
        for p in (XEON_MAX_9480, XEON_8360Y, EPYC_7V73X):
            assert self.model(p).speedup() > 1.2, p.short_name

    def test_speedup_ordering_tracks_cache_ratio(self):
        """Figure 9: 1.84x on MAX < 2.7x on 8360Y < 4x on EPYC, correlating
        with the 3.8x / 6.3x / 14x cache:memory bandwidth ratios."""
        s_max = self.model(XEON_MAX_9480).speedup()
        s_icx = self.model(XEON_8360Y).speedup()
        s_epyc = self.model(EPYC_7V73X).speedup()
        assert s_max < s_icx < s_epyc

    def test_tile_points_fit_llc(self):
        m = self.model(XEON_MAX_9480)
        pts = m.tile_points(0.5)
        llc = XEON_MAX_9480.cache_capacity_total("L3")
        assert pts * 15 * 8.0 == pytest.approx(0.5 * llc)

    def test_rejects_bad_footprint(self):
        with pytest.raises(ValueError):
            TiledChainModel(self.clover_like_app(), XEON_MAX_9480,
                            best_practice_config(XEON_MAX_9480), 0.0)
