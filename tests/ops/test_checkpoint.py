"""Tests for checkpoint/restart of structured state."""

import numpy as np
import pytest

from repro.ops import Access, OpsContext, S2D_00, arg_dat, star_stencil
from repro.ops.checkpoint import checkpoint_path, load_state, save_state
from repro.simmpi import CartGrid, World


def diffuse_steps(ctx, u, un, grid, n, steps):
    s = star_stencil(2, 1)

    def bc(x):
        x[0, 0] = 0.0

    def step(out, inp):
        out[0, 0] = inp[0, 0] + 0.1 * (
            inp[1, 0] + inp[-1, 0] + inp[0, 1] + inp[0, -1] - 4 * inp[0, 0]
        )

    def copy(out, inp):
        out[0, 0] = inp[0, 0]

    for _ in range(steps):
        for rng in ([(-1, 0), (-1, n + 1)], [(n, n + 1), (-1, n + 1)],
                    [(-1, n + 1), (-1, 0)], [(-1, n + 1), (n, n + 1)]):
            ctx.par_loop(bc, "bc", grid, rng, arg_dat(u, S2D_00, Access.WRITE))
        ctx.par_loop(step, "step", grid, grid.interior,
                     arg_dat(un, S2D_00, Access.WRITE), arg_dat(u, s, Access.READ))
        ctx.par_loop(copy, "copy", grid, grid.interior,
                     arg_dat(u, S2D_00, Access.WRITE), arg_dat(un, S2D_00, Access.READ))


class TestSerialCheckpoint:
    def test_restart_continues_identically(self, tmp_path):
        n = 16
        path = str(tmp_path / "ck.npz")

        # Uninterrupted run: 6 steps.
        ctx = OpsContext()
        grid = ctx.block("g", (n, n))
        u = grid.dat("u", halo=1)
        un = grid.dat("un", halo=1)
        u.set_from_global(np.random.default_rng(1).random((n, n)))
        ref_start = u.gather_global()
        diffuse_steps(ctx, u, un, grid, n, 6)
        expect = u.gather_global()

        # Interrupted run: 3 steps, checkpoint, fresh context, restore, 3 more.
        ctx1 = OpsContext()
        g1 = ctx1.block("g", (n, n))
        u1 = g1.dat("u", halo=1)
        un1 = g1.dat("un", halo=1)
        u1.set_from_global(ref_start)
        diffuse_steps(ctx1, u1, un1, g1, n, 3)
        save_state(path, [u1, un1])

        ctx2 = OpsContext()
        g2 = ctx2.block("g", (n, n))
        u2 = g2.dat("u", halo=1)
        un2 = g2.dat("un", halo=1)
        load_state(path, [u2, un2])
        diffuse_steps(ctx2, u2, un2, g2, n, 3)
        np.testing.assert_array_equal(u2.gather_global(), expect)

    def test_shape_mismatch_rejected(self, tmp_path):
        path = str(tmp_path / "ck.npz")
        ctx = OpsContext()
        g = ctx.block("g", (8, 8))
        d = g.dat("d")
        save_state(path, [d])

        ctx2 = OpsContext()
        g2 = ctx2.block("g", (10, 10))
        d2 = g2.dat("d")
        with pytest.raises(ValueError, match="shape"):
            load_state(path, [d2])

    def test_missing_dat_rejected(self, tmp_path):
        path = str(tmp_path / "ck.npz")
        ctx = OpsContext()
        g = ctx.block("g", (8, 8))
        save_state(path, [g.dat("a")])
        ctx2 = OpsContext()
        g2 = ctx2.block("g", (8, 8))
        with pytest.raises(KeyError, match="no dat named"):
            load_state(path, [g2.dat("b")])

    def test_mixed_blocks_rejected(self, tmp_path):
        ctx = OpsContext()
        g1 = ctx.block("a", (4, 4))
        g2 = ctx.block("b", (4, 4))
        with pytest.raises(ValueError, match="share a block"):
            save_state(str(tmp_path / "x.npz"), [g1.dat("d"), g2.dat("e")])

    def test_empty_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            save_state(str(tmp_path / "x.npz"), [])


class TestDistributedCheckpoint:
    def test_per_rank_shards_roundtrip(self, tmp_path):
        n = 16
        path = str(tmp_path / "dist.npz")
        init = np.random.default_rng(2).random((n, n))

        def writer(comm):
            ctx = OpsContext(comm=comm, grid=CartGrid((2, 2)))
            g = ctx.block("g", (n, n))
            u = g.dat("u", halo=1)
            un = g.dat("un", halo=1)
            u.set_from_global(init)
            diffuse_steps(ctx, u, un, g, n, 2)
            save_state(path, [u])
            return u.gather_global()

        expect = World(4).run(writer)[0]

        def reader(comm):
            ctx = OpsContext(comm=comm, grid=CartGrid((2, 2)))
            g = ctx.block("g", (n, n))
            u = g.dat("u", halo=1)
            load_state(path, [u])
            return u.gather_global()

        got = World(4).run(reader)[0]
        np.testing.assert_array_equal(got, expect)

    def test_decomposition_mismatch_rejected(self, tmp_path):
        n = 16
        path = str(tmp_path / "dist2.npz")

        def writer(comm):
            ctx = OpsContext(comm=comm, grid=CartGrid((2, 2)))
            g = ctx.block("g", (n, n))
            save_state(path, [g.dat("u", halo=1)])

        World(4).run(writer)

        def reader(comm):
            ctx = OpsContext(comm=comm, grid=CartGrid((4, 1)))
            g = ctx.block("g", (n, n))
            load_state(path, [g.dat("u", halo=1)])

        from repro.simmpi import RankFailedError

        with pytest.raises(RankFailedError, match="decomposition"):
            World(4).run(reader)

    def test_shard_naming(self):
        assert checkpoint_path("a/b.npz", None) == "a/b.npz"
        assert checkpoint_path("a/b.npz", 3) == "a/b.rank3.npz"
