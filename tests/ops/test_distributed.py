"""Distributed OPS runs must reproduce serial results bitwise."""

import numpy as np
import pytest

from repro.machine import XEON_MAX_9480, Compiler, Parallelization, RunConfig
from repro.ops import (
    Access,
    OpsContext,
    S2D_00,
    TimingModel,
    arg_dat,
    arg_gbl,
    point_stencil,
    star_stencil,
)
from repro.simmpi import CartGrid, MachineCostModel, World, default_placement


def heat_app(ctx, n=24, iters=4):
    """A small heat-equation-like app exercising BCs, stencils, copies
    and a reduction — the canonical structured-mesh loop mix."""
    grid = ctx.block("grid", (n, n))
    u = grid.dat("u", halo=1)
    un = grid.dat("un", halo=1)
    init = np.sin(np.arange(n))[:, None] * np.cos(np.arange(n))[None, :]
    u.set_from_global(init)
    s5 = star_stencil(2, 1)

    def bc(a):
        a[0, 0] = 0.0

    def step(out, inp):
        out[0, 0] = inp[0, 0] + 0.1 * (
            inp[1, 0] + inp[-1, 0] + inp[0, 1] + inp[0, -1] - 4.0 * inp[0, 0]
        )

    def copyk(out, inp):
        out[0, 0] = inp[0, 0]

    total = np.zeros(1)

    def sumsq(g, inp):
        g[0] += float(np.sum(inp[0, 0] ** 2))

    for _ in range(iters):
        for rng in ([(-1, 0), (-1, n + 1)], [(n, n + 1), (-1, n + 1)],
                    [(-1, n + 1), (-1, 0)], [(-1, n + 1), (n, n + 1)]):
            ctx.par_loop(bc, "bc", grid, rng, arg_dat(u, S2D_00, Access.WRITE))
        ctx.par_loop(step, "step", grid, grid.interior,
                     arg_dat(un, S2D_00, Access.WRITE),
                     arg_dat(u, s5, Access.READ), flops_per_point=7)
        ctx.par_loop(copyk, "copy", grid, grid.interior,
                     arg_dat(u, S2D_00, Access.WRITE),
                     arg_dat(un, S2D_00, Access.READ))
    ctx.par_loop(sumsq, "sumsq", grid, grid.interior,
                 arg_gbl(total, Access.INC), arg_dat(u, S2D_00, Access.READ))
    return u.gather_global(), total


@pytest.fixture(scope="module")
def serial_result():
    return heat_app(OpsContext())


class TestDistributedEqualsSerial:
    @pytest.mark.parametrize("dims", [(2, 2), (4, 1), (1, 4), (3, 2)])
    def test_field_and_reduction_match(self, dims, serial_result):
        ser_field, ser_total = serial_result
        nranks = dims[0] * dims[1]

        def program(comm):
            ctx = OpsContext(comm=comm, grid=CartGrid(dims))
            return heat_app(ctx)

        results = World(nranks).run(program)
        field = results[0][0]
        assert np.array_equal(field, ser_field)
        for _, total in results:
            assert total[0] == pytest.approx(ser_total[0], rel=1e-12)

    def test_single_rank_grid(self, serial_result):
        def program(comm):
            ctx = OpsContext(comm=comm, grid=CartGrid((1, 1)))
            return heat_app(ctx)

        results = World(1).run(program)
        assert np.array_equal(results[0][0], serial_result[0])

    def test_context_validation(self):
        with pytest.raises(ValueError, match="both comm and grid"):
            OpsContext(grid=CartGrid((2,)))

    def test_grid_size_mismatch_detected(self):
        def program(comm):
            OpsContext(comm=comm, grid=CartGrid((3,)))

        from repro.simmpi import RankFailedError

        with pytest.raises(RankFailedError, match="grid size"):
            World(2).run(program)


class TestTimedDistributedRun:
    def test_virtual_time_accumulates_and_splits(self):
        """A timed distributed run produces nonzero compute and MPI time,
        and the same numerics as the untimed run."""
        platform = XEON_MAX_9480
        config = RunConfig(Compiler.ONEAPI, Parallelization.MPI)
        nranks = 4

        def program(comm):
            ctx = OpsContext(
                comm=comm,
                grid=CartGrid((2, 2)),
                timing=TimingModel(platform, config),
            )
            field, total = heat_app(ctx)
            return field, total, comm.clock.compute_time, comm.clock.mpi_time

        cm = MachineCostModel(platform, default_placement(platform, nranks))
        w = World(nranks, cm)
        results = w.run(program)
        ser_field, ser_total = heat_app(OpsContext())
        assert np.array_equal(results[0][0], ser_field)
        for _, _, t_comp, t_mpi in results:
            assert t_comp > 0.0
            assert t_mpi > 0.0

    def test_serial_timing_accumulates(self):
        ctx = OpsContext(timing=TimingModel(XEON_MAX_9480,
                                            RunConfig(Compiler.ONEAPI, Parallelization.MPI)))
        heat_app(ctx)
        assert ctx.simulated_time > 0.0
