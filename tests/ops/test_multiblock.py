"""Multi-block coupling: a split domain must reproduce the single-block
solution bitwise."""

import numpy as np
import pytest

from repro.ops import Access, OpsContext, S2D_00, arg_dat, star_stencil
from repro.ops.multiblock import Face, Interface, MultiBlockHalo


def diffuse(ctx, block, u, un, rng_interior, steps, skip_bc_dims=()):
    """Explicit diffusion with zeroed physical ghosts; dims listed in
    ``skip_bc_dims`` sides are left to the interface exchange."""
    s5 = star_stencil(2, 1)
    n0, n1 = block.shape

    def bc(x):
        x[0, 0] = 0.0

    def step(out, inp):
        out[0, 0] = inp[0, 0] + 0.1 * (
            inp[1, 0] + inp[-1, 0] + inp[0, 1] + inp[0, -1] - 4 * inp[0, 0]
        )

    def copy(out, inp):
        out[0, 0] = inp[0, 0]

    sides = []
    if (0, -1) not in skip_bc_dims:
        sides.append([(-1, 0), (-1, n1 + 1)])
    if (0, 1) not in skip_bc_dims:
        sides.append([(n0, n0 + 1), (-1, n1 + 1)])
    if (1, -1) not in skip_bc_dims:
        sides.append([(-1, n0 + 1), (-1, 0)])
    if (1, 1) not in skip_bc_dims:
        sides.append([(-1, n0 + 1), (n1, n1 + 1)])
    for rng in sides:
        ctx.par_loop(bc, "bc", block, rng, arg_dat(u, S2D_00, Access.WRITE))
    ctx.par_loop(step, "step", block, rng_interior,
                 arg_dat(un, S2D_00, Access.WRITE), arg_dat(u, s5, Access.READ))
    ctx.par_loop(copy, "copy", block, rng_interior,
                 arg_dat(u, S2D_00, Access.WRITE), arg_dat(un, S2D_00, Access.READ))


class TestSplitDomainEquivalence:
    def test_two_blocks_equal_one(self):
        """A 16x24 domain as one block vs two 16x12 blocks joined along
        dim 1 — identical evolution."""
        n0, n1 = 16, 24
        rng = np.random.default_rng(9)
        init = rng.random((n0, n1))

        # --- reference: single block -----------------------------------
        ctx = OpsContext()
        whole = ctx.block("whole", (n0, n1))
        u = whole.dat("u", halo=1)
        un = whole.dat("un", halo=1)
        u.set_from_global(init)
        for _ in range(5):
            diffuse(ctx, whole, u, un, whole.interior, 1)
        expect = u.gather_global()

        # --- split: left | right with an interface ----------------------
        ctx2 = OpsContext()
        left = ctx2.block("left", (n0, n1 // 2))
        right = ctx2.block("right", (n0, n1 // 2))
        ul, unl = left.dat("u", halo=1), left.dat("un", halo=1)
        ur, unr = right.dat("u", halo=1), right.dat("un", halo=1)
        ul.set_from_global(init[:, : n1 // 2])
        ur.set_from_global(init[:, n1 // 2:])
        halo = MultiBlockHalo([
            Interface(Face(left, 1, +1), Face(right, 1, -1))
        ])
        for _ in range(5):
            halo.exchange({left: ul, right: ur})
            diffuse(ctx2, left, ul, unl, left.interior, 1, skip_bc_dims={(1, 1)})
            diffuse(ctx2, right, ur, unr, right.interior, 1, skip_bc_dims={(1, -1)})
        got = np.concatenate([ul.gather_global(), ur.gather_global()], axis=1)
        np.testing.assert_array_equal(got, expect)

    def test_reversed_orientation(self):
        """Join a block to a tangentially flipped copy: evolving the
        flipped pair mirrors the unflipped pair."""
        n = 12
        rng = np.random.default_rng(3)
        init_top = rng.random((n, n))
        init_bot = rng.random((n, n))

        def run(flip):
            ctx = OpsContext()
            top = ctx.block("top", (n, n))
            bot = ctx.block("bot", (n, n))
            ut, unt = top.dat("u", halo=1), top.dat("un", halo=1)
            ub, unb = bot.dat("u", halo=1), bot.dat("un", halo=1)
            ut.set_from_global(init_top[:, ::-1] if flip else init_top)
            ub.set_from_global(init_bot)
            halo = MultiBlockHalo([
                Interface(Face(top, 0, +1), Face(bot, 0, -1),
                          reversed_tangent=flip)
            ])
            for _ in range(4):
                halo.exchange({top: ut, bot: ub})
                diffuse(ctx, top, ut, unt, top.interior, 1, skip_bc_dims={(0, 1)})
                diffuse(ctx, bot, ub, unb, bot.interior, 1, skip_bc_dims={(0, -1)})
            return ut.gather_global(), ub.gather_global()

        plain_t, plain_b = run(flip=False)
        flip_t, flip_b = run(flip=True)
        # The flipped top must be the mirror of the plain top, and the
        # (unflipped) bottom must be unchanged.  Equal to rounding only:
        # the mirrored stencil adds neighbor terms in the opposite order.
        np.testing.assert_allclose(flip_t[:, ::-1], plain_t, rtol=1e-13, atol=1e-15)
        np.testing.assert_allclose(flip_b, plain_b, rtol=1e-13, atol=1e-15)


class TestValidation:
    def test_face_validation(self):
        ctx = OpsContext()
        b = ctx.block("b", (4, 4))
        with pytest.raises(ValueError, match="dim"):
            Face(b, 2, 1)
        with pytest.raises(ValueError, match="side"):
            Face(b, 0, 0)

    def test_extent_mismatch(self):
        ctx = OpsContext()
        a = ctx.block("a", (4, 6))
        b = ctx.block("b", (4, 8))
        # Faces along dim 0: tangential extents 6 vs 8 differ.
        with pytest.raises(ValueError, match="extents"):
            Interface(Face(a, 0, 1), Face(b, 0, -1))

    def test_reversed_needs_2d(self):
        ctx = OpsContext()
        a = ctx.block("a", (4, 4, 4))
        b = ctx.block("b", (4, 4, 4))
        with pytest.raises(ValueError, match="2-D"):
            Interface(Face(a, 0, 1), Face(b, 0, -1), reversed_tangent=True)

    def test_depth_exceeds_halo(self):
        ctx = OpsContext()
        a = ctx.block("a", (4, 4))
        b = ctx.block("b", (4, 4))
        da, db = a.dat("d", halo=1), b.dat("d", halo=1)
        halo = MultiBlockHalo([Interface(Face(a, 0, 1), Face(b, 0, -1))], depth=2)
        with pytest.raises(ValueError, match="halo"):
            halo.exchange({a: da, b: db})

    def test_missing_dat(self):
        ctx = OpsContext()
        a = ctx.block("a", (4, 4))
        b = ctx.block("b", (4, 4))
        halo = MultiBlockHalo([Interface(Face(a, 0, 1), Face(b, 0, -1))])
        with pytest.raises(KeyError, match="every block"):
            halo.exchange({a: a.dat("d", halo=1)})

    def test_bad_depth(self):
        with pytest.raises(ValueError):
            MultiBlockHalo([], depth=0)
