"""Unit tests for the structured-mesh DSL building blocks."""

import numpy as np
import pytest

from repro.ops import (
    Access,
    OpsContext,
    S2D_00,
    arg_dat,
    arg_gbl,
    box_stencil,
    point_stencil,
    star_stencil,
)


@pytest.fixture
def ctx():
    return OpsContext()


class TestStencils:
    def test_point(self):
        s = point_stencil(2)
        assert s.radius == 0
        assert (0, 0) in s
        assert len(s) == 1

    def test_star(self):
        s = star_stencil(2, 2)
        assert s.radius == 2
        assert len(s) == 9
        assert (2, 0) in s and (0, -2) in s
        assert (1, 1) not in s

    def test_box(self):
        s = box_stencil(2, 1)
        assert len(s) == 9
        assert (1, 1) in s

    def test_star_3d_radius4(self):
        # The Acoustic app's 8th-order stencil.
        s = star_stencil(3, 4)
        assert s.radius == 4
        assert len(s) == 25

    def test_validation(self):
        from repro.ops import Stencil

        with pytest.raises(ValueError, match="at least one"):
            Stencil("empty", ())
        with pytest.raises(ValueError, match="duplicate"):
            Stencil("dup", ((0, 0), (0, 0)))
        with pytest.raises(ValueError, match="dimensionality"):
            Stencil("mixed", ((0, 0), (1,)))
        with pytest.raises(ValueError):
            star_stencil(2, 0)


class TestBlockDat:
    def test_block_shape_validation(self, ctx):
        with pytest.raises(ValueError):
            ctx.block("b", (0, 4))

    def test_dat_allocation_with_halo(self, ctx):
        b = ctx.block("b", (8, 6))
        d = b.dat("d", halo=2)
        assert d.data.shape == (12, 10)
        assert d.interior.shape == (8, 6)

    def test_dat_init_scalar(self, ctx):
        b = ctx.block("b", (4, 4))
        d = b.dat("d", halo=1, init=3.5)
        assert np.all(d.interior == 3.5)
        # Halo stays zero.
        assert d.data[0, 0] == 0.0

    def test_dat_dtype_validation(self, ctx):
        b = ctx.block("b", (4,))
        with pytest.raises(ValueError, match="float32 or float64"):
            b.dat("d", dtype=np.int32)
        with pytest.raises(ValueError, match="halo"):
            b.dat("d", halo=-1)

    def test_set_and_gather_global(self, ctx):
        b = ctx.block("b", (5, 3))
        d = b.dat("d", halo=1)
        g = np.arange(15.0).reshape(5, 3)
        d.set_from_global(g)
        np.testing.assert_array_equal(d.gather_global(), g)

    def test_local_index(self, ctx):
        b = ctx.block("b", (8,))
        d = b.dat("d", halo=2)
        assert d.local_index((0,)) == (2,)
        assert d.local_index((-2,)) == (0,)
        assert d.local_index((9,)) == (11,)  # inside the halo
        with pytest.raises(IndexError):
            d.local_index((10,))


class TestAccessDescriptors:
    def test_write_requires_point_stencil(self, ctx):
        b = ctx.block("b", (4, 4))
        d = b.dat("d", halo=1)
        with pytest.raises(ValueError, match="single-point"):
            arg_dat(d, star_stencil(2, 1), Access.WRITE)

    def test_stencil_block_dim_mismatch(self, ctx):
        b = ctx.block("b", (4, 4))
        d = b.dat("d")
        with pytest.raises(ValueError, match="dimensionality"):
            arg_dat(d, point_stencil(3), Access.READ)

    def test_transfers_accounting(self):
        assert Access.READ.transfers == 1
        assert Access.WRITE.transfers == 1
        assert Access.RW.transfers == 2
        assert Access.INC.transfers == 2

    def test_gbl_rejects_rw(self):
        with pytest.raises(ValueError):
            arg_gbl(np.zeros(1), Access.RW)


class TestParLoopExecution:
    def test_simple_copy(self, ctx):
        b = ctx.block("b", (6, 6))
        src = b.dat("src", init=2.0)
        dst = b.dat("dst")

        def k(out, inp):
            out[0, 0] = inp[0, 0]

        ctx.par_loop(k, "copy", b, b.interior,
                     arg_dat(dst, S2D_00, Access.WRITE),
                     arg_dat(src, S2D_00, Access.READ))
        assert np.all(dst.interior == 2.0)

    def test_stencil_read(self, ctx):
        b = ctx.block("b", (8,))
        u = b.dat("u", halo=1)
        out = b.dat("out")
        u.set_from_global(np.arange(8.0))

        def k(o, i):
            o[(0,)] = i[(1,)] - i[(-1,)]

        ctx.par_loop(k, "diff", b, [(1, 7)],
                     arg_dat(out, point_stencil(1), Access.WRITE),
                     arg_dat(u, star_stencil(1, 1), Access.READ))
        np.testing.assert_array_equal(out.interior[1:7], 2.0)

    def test_inc_access(self, ctx):
        b = ctx.block("b", (4,))
        d = b.dat("d", init=1.0)

        def k(a):
            a[(0,)] += 2.0

        ctx.par_loop(k, "inc", b, b.interior, arg_dat(d, point_stencil(1), Access.INC))
        assert np.all(d.interior == 3.0)

    def test_restricted_range(self, ctx):
        b = ctx.block("b", (6, 6))
        d = b.dat("d")

        def k(a):
            a[0, 0] = 1.0

        ctx.par_loop(k, "mark", b, [(2, 4), (1, 3)], arg_dat(d, S2D_00, Access.WRITE))
        assert d.interior.sum() == 4.0
        assert d.interior[2, 1] == 1.0 and d.interior[0, 0] == 0.0

    def test_boundary_range_into_halo(self, ctx):
        b = ctx.block("b", (4,))
        d = b.dat("d", halo=1)

        def k(a):
            a[(0,)] = 9.0

        ctx.par_loop(k, "ghost", b, [(-1, 0)], arg_dat(d, point_stencil(1), Access.WRITE))
        assert d.data[0] == 9.0
        assert np.all(d.interior == 0.0)

    def test_read_only_enforced(self, ctx):
        b = ctx.block("b", (4,))
        d = b.dat("d")

        def k(a):
            a[(0,)] = 1.0

        with pytest.raises(PermissionError, match="READ-only"):
            ctx.par_loop(k, "bad", b, b.interior, arg_dat(d, point_stencil(1), Access.READ))

    def test_write_offset_rejected(self, ctx):
        b = ctx.block("b", (4,))
        d = b.dat("d", halo=1)

        def k(a):
            a[(1,)] = 1.0

        with pytest.raises(PermissionError, match="offset 0"):
            ctx.par_loop(k, "bad", b, [(0, 3)],
                         arg_dat(d, point_stencil(1), Access.WRITE))

    def test_undeclared_offset_rejected(self, ctx):
        b = ctx.block("b", (4,))
        d = b.dat("d", halo=2)
        out = b.dat("out")

        def k(o, i):
            o[(0,)] = i[(2,)]  # radius 2 not in radius-1 stencil

        with pytest.raises(IndexError, match="not in stencil"):
            ctx.par_loop(k, "bad", b, [(0, 2)],
                         arg_dat(out, point_stencil(1), Access.WRITE),
                         arg_dat(d, star_stencil(1, 1), Access.READ))

    def test_stencil_exceeding_halo_rejected(self, ctx):
        b = ctx.block("b", (8,))
        d = b.dat("d", halo=1)
        out = b.dat("out")

        def k(o, i):
            o[(0,)] = i[(0,)]

        with pytest.raises(ValueError, match="exceeds"):
            ctx.par_loop(k, "bad", b, b.interior,
                         arg_dat(out, point_stencil(1), Access.WRITE),
                         arg_dat(d, star_stencil(1, 2), Access.READ))

    def test_global_reduction_inc(self, ctx):
        b = ctx.block("b", (5,))
        d = b.dat("d", init=2.0)
        total = np.zeros(1)

        def k(g, inp):
            g[0] += np.sum(inp[(0,)])

        ctx.par_loop(k, "sum", b, b.interior,
                     arg_gbl(total, Access.INC), arg_dat(d, point_stencil(1), Access.READ))
        assert total[0] == 10.0

    def test_global_reduction_min_max(self, ctx):
        b = ctx.block("b", (6,))
        d = b.dat("d")
        d.set_from_global(np.array([3.0, -1.0, 4.0, 1.0, 5.0, -9.0]))
        lo = np.array([np.inf])
        hi = np.array([-np.inf])

        def k(gmin, gmax, inp):
            gmin[0] = min(gmin[0], np.min(inp[(0,)]))
            gmax[0] = max(gmax[0], np.max(inp[(0,)]))

        ctx.par_loop(k, "minmax", b, b.interior,
                     arg_gbl(lo, Access.MIN), arg_gbl(hi, Access.MAX),
                     arg_dat(d, point_stencil(1), Access.READ))
        assert lo[0] == -9.0 and hi[0] == 5.0

    def test_global_read_is_immutable(self, ctx):
        b = ctx.block("b", (4,))
        d = b.dat("d")
        c = np.array([2.0])

        def k(g, a):
            with pytest.raises((PermissionError, ValueError)):
                g[0] = 5.0
            a[(0,)] = g.val[0]

        ctx.par_loop(k, "use", b, b.interior,
                     arg_gbl(c, Access.READ), arg_dat(d, point_stencil(1), Access.WRITE))
        assert np.all(d.interior == 2.0)
        assert c[0] == 2.0


class TestAccounting:
    def test_bytes_and_flops_recorded(self, ctx):
        b = ctx.block("b", (10, 10))
        a = b.dat("a", halo=1)
        c = b.dat("c")

        def k(out, inp):
            out[0, 0] = 2.0 * inp[0, 0]

        ctx.par_loop(k, "scale", b, b.interior,
                     arg_dat(c, S2D_00, Access.WRITE),
                     arg_dat(a, star_stencil(2, 1), Access.READ),
                     flops_per_point=1)
        rec = ctx.records["scale"]
        assert rec.calls == 1
        assert rec.points == 100
        assert rec.bytes == 100 * 8 * 2  # 1 read + 1 write transfer
        assert rec.flops == 100
        assert rec.radius == 1
        assert rec.streams == 2

    def test_rw_counts_double(self, ctx):
        b = ctx.block("b", (4,))
        d = b.dat("d")

        def k(a):
            a[(0,)] = a[(0,)] + 1.0

        ctx.par_loop(k, "rmw", b, b.interior, arg_dat(d, point_stencil(1), Access.RW))
        assert ctx.records["rmw"].bytes == 4 * 8 * 2

    def test_loop_specs_scaling(self, ctx):
        b = ctx.block("b", (10,))
        d = b.dat("d")

        def k(a):
            a[(0,)] = 1.0

        for _ in range(4):
            ctx.par_loop(k, "w", b, b.interior, arg_dat(d, point_stencil(1), Access.WRITE),
                         flops_per_point=2)
        specs = ctx.loop_specs(iterations=4, point_scale=100.0)
        assert len(specs) == 1
        assert specs[0].points == 1000.0
        assert specs[0].bytes_per_point == 8.0
        assert specs[0].flops_per_point == 2.0

    def test_halo_exchange_counted_serially(self, ctx):
        b = ctx.block("b", (8,))
        u = b.dat("u", halo=1)
        v = b.dat("v")

        def k(out, inp):
            out[(0,)] = inp[(1,)]

        s = star_stencil(1, 1)
        ctx.par_loop(k, "r1", b, [(0, 7)], arg_dat(v, point_stencil(1), Access.WRITE),
                     arg_dat(u, s, Access.READ))
        assert ctx.halo_exchange_count == 1
        # Second read without intervening write: halos clean, no exchange.
        ctx.par_loop(k, "r2", b, [(0, 7)], arg_dat(v, point_stencil(1), Access.WRITE),
                     arg_dat(u, s, Access.READ))
        assert ctx.halo_exchange_count == 1

    def test_range_dim_mismatch(self, ctx):
        b = ctx.block("b", (4, 4))
        d = b.dat("d")

        def k(a):
            a[0, 0] = 1.0

        with pytest.raises(ValueError, match="dimensionality"):
            ctx.par_loop(k, "bad", b, [(0, 4)], arg_dat(d, S2D_00, Access.WRITE))
