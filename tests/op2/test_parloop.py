"""Execution-semantics tests for unstructured parallel loops."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.op2 import (
    Access,
    Global,
    Op2Context,
    arg,
    arg_direct,
    arg_global,
    color_iterset,
    validate_coloring,
)


def ring_mesh(ctx, n):
    """n cells in a ring, n edges, each edge connecting i -> (i+1) % n."""
    cells = ctx.set("cells", n)
    edges = ctx.set("edges", n)
    vals = np.stack([np.arange(n), (np.arange(n) + 1) % n], axis=1)
    e2c = ctx.map("e2c", edges, cells, vals)
    return cells, edges, e2c


class TestDirectLoops:
    def test_write(self):
        ctx = Op2Context()
        cells = ctx.set("cells", 6)
        d = ctx.dat(cells, 2, "d")

        def k(x):
            x[...] = 7.0

        ctx.par_loop(k, "fill", cells, arg_direct(d, Access.WRITE))
        assert np.all(d.data == 7.0)

    def test_rw(self):
        ctx = Op2Context()
        cells = ctx.set("cells", 4)
        d = ctx.dat(cells, 1, "d", data=np.arange(4.0))

        def k(x):
            x[...] = x * 2.0

        ctx.par_loop(k, "double", cells, arg_direct(d, Access.RW))
        np.testing.assert_array_equal(d.data[:, 0], [0, 2, 4, 6])

    def test_read_is_immutable(self):
        ctx = Op2Context()
        cells = ctx.set("cells", 4)
        d = ctx.dat(cells, 1, "d")

        def k(x):
            with pytest.raises((ValueError, PermissionError)):
                x[0] = 1.0

        ctx.par_loop(k, "try", cells, arg_direct(d, Access.READ))


class TestIndirectLoops:
    def test_gather_read(self):
        ctx = Op2Context()
        cells, edges, e2c = ring_mesh(ctx, 5)
        q = ctx.dat(cells, 1, "q", data=np.arange(5.0))
        diff = ctx.dat(edges, 1, "diff")

        def k(ql, qr, out):
            out[...] = qr - ql

        ctx.par_loop(k, "diff", edges,
                     arg(q, e2c, 0, Access.READ), arg(q, e2c, 1, Access.READ),
                     arg_direct(diff, Access.WRITE))
        np.testing.assert_array_equal(diff.data[:, 0], [1, 1, 1, 1, -4])

    def test_gather_all_slots(self):
        ctx = Op2Context()
        cells, edges, e2c = ring_mesh(ctx, 4)
        q = ctx.dat(cells, 1, "q", data=np.arange(4.0))
        s = ctx.dat(edges, 1, "s")

        def k(both, out):
            out[...] = both.sum(axis=1)

        ctx.par_loop(k, "sum2", edges,
                     arg(q, e2c, None, Access.READ), arg_direct(s, Access.WRITE))
        np.testing.assert_array_equal(s.data[:, 0], [1, 3, 5, 3])

    def test_indirect_inc_accumulates_duplicates(self):
        """Multiple edges incrementing the same cell must all land."""
        ctx = Op2Context()
        cells, edges, e2c = ring_mesh(ctx, 6)
        acc = ctx.dat(cells, 1, "acc")

        def k(a, b):
            a[...] = 1.0
            b[...] = 1.0

        ctx.par_loop(k, "count", edges,
                     arg(acc, e2c, 0, Access.INC), arg(acc, e2c, 1, Access.INC))
        # Every cell is endpoint of exactly 2 edges.
        assert np.all(acc.data == 2.0)

    def test_indirect_write(self):
        ctx = Op2Context()
        cells = ctx.set("cells", 4)
        nodes = ctx.set("nodes", 4)
        perm = ctx.map("perm", cells, nodes, np.array([2, 0, 3, 1]))
        src = ctx.dat(cells, 1, "src", data=np.arange(4.0))
        dst = ctx.dat(nodes, 1, "dst")

        def k(s, d):
            d[...] = s

        ctx.par_loop(k, "scatter", cells,
                     arg_direct(src, Access.READ), arg(dst, perm, 0, Access.WRITE))
        np.testing.assert_array_equal(dst.data[:, 0], [1, 3, 0, 2])


class TestGlobals:
    def test_inc_reduction(self):
        ctx = Op2Context()
        cells = ctx.set("cells", 5)
        d = ctx.dat(cells, 1, "d", data=np.full(5, 2.0))
        g = Global(0.0)

        def k(x, tot):
            tot[0] += float(np.sum(x))

        ctx.par_loop(k, "sum", cells, arg_direct(d, Access.READ),
                     arg_global(g, Access.INC))
        assert g.value[0] == 10.0
        assert ctx.reduction_count == 1

    def test_min_max(self):
        ctx = Op2Context()
        cells = ctx.set("cells", 4)
        d = ctx.dat(cells, 1, "d", data=np.array([4.0, -1.0, 7.0, 2.0]))
        gmin, gmax = Global(np.inf), Global(-np.inf)

        def k(x, lo, hi):
            lo[0] = min(lo[0], float(np.min(x)))
            hi[0] = max(hi[0], float(np.max(x)))

        ctx.par_loop(k, "minmax", cells, arg_direct(d, Access.READ),
                     arg_global(gmin, Access.MIN), arg_global(gmax, Access.MAX))
        assert gmin.value[0] == -1.0 and gmax.value[0] == 7.0

    def test_read_global_parameter(self):
        ctx = Op2Context()
        cells = ctx.set("cells", 3)
        d = ctx.dat(cells, 1, "d")
        c = Global(2.5)

        def k(x, cc):
            x[...] = cc[0]

        ctx.par_loop(k, "setc", cells, arg_direct(d, Access.WRITE),
                     arg_global(c, Access.READ))
        assert np.all(d.data == 2.5)
        assert c.value[0] == 2.5


class TestColoring:
    def test_ring_needs_at_least_two_colors(self):
        ctx = Op2Context()
        cells, edges, e2c = ring_mesh(ctx, 6)
        colors = color_iterset(edges, ((e2c, None),))
        assert colors.max() >= 1
        assert validate_coloring(colors, ((e2c, None),))

    def test_odd_ring_three_colors(self):
        ctx = Op2Context()
        cells, edges, e2c = ring_mesh(ctx, 5)
        colors = color_iterset(edges, ((e2c, None),))
        assert validate_coloring(colors, ((e2c, None),))

    def test_no_maps_single_color(self):
        from repro.op2 import Set

        colors = color_iterset(Set("s", 10), ())
        assert colors.max() == 0

    def test_validate_detects_bad_coloring(self):
        ctx = Op2Context()
        cells, edges, e2c = ring_mesh(ctx, 4)
        bad = np.zeros(4, dtype=np.int64)  # everything same color
        assert not validate_coloring(bad, ((e2c, None),))

    def test_colored_equals_seq_mode(self):
        results = {}
        for mode in ("seq", "colored"):
            ctx = Op2Context(mode=mode)
            cells, edges, e2c = ring_mesh(ctx, 32)
            q = ctx.dat(cells, 1, "q", data=np.sin(np.arange(32.0)))
            r = ctx.dat(cells, 1, "r")

            def flux(ql, qr, rl, rr):
                f = 0.5 * (ql - qr)
                rl[...] = -f
                rr[...] = f

            for _ in range(3):
                ctx.par_loop(flux, "flux", edges,
                             arg(q, e2c, 0, Access.READ), arg(q, e2c, 1, Access.READ),
                             arg(r, e2c, 0, Access.INC), arg(r, e2c, 1, Access.INC))
            results[mode] = r.data.copy()
        np.testing.assert_allclose(results["seq"], results["colored"], rtol=1e-14)

    @given(n=st.integers(3, 60), seed=st.integers(0, 1000))
    @settings(max_examples=30, deadline=None)
    def test_property_random_graph_coloring_valid(self, n, seed):
        from repro.op2 import Map, Set

        rng = np.random.default_rng(seed)
        edges = Set("edges", n)
        cells = Set("cells", max(n // 2, 2))
        # Non-degenerate rows: an edge's two endpoints differ (colored
        # execution, like real OP2 plans, assumes maps without repeated
        # targets within one element).
        a = rng.integers(0, cells.size, size=n)
        b = (a + 1 + rng.integers(0, cells.size - 1, size=n)) % cells.size
        m = Map("m", edges, cells, np.stack([a, b], axis=1))
        colors = color_iterset(edges, ((m, None),))
        assert validate_coloring(colors, ((m, None),))


class TestAccounting:
    def test_bytes_and_indirect_counts(self):
        ctx = Op2Context()
        cells, edges, e2c = ring_mesh(ctx, 10)
        q = ctx.dat(cells, 4, "q")
        r = ctx.dat(cells, 4, "r")

        def k(ql, qr, rl, rr):
            rl[...] = ql
            rr[...] = qr

        ctx.par_loop(k, "flux", edges,
                     arg(q, e2c, 0, Access.READ), arg(q, e2c, 1, Access.READ),
                     arg(r, e2c, 0, Access.INC), arg(r, e2c, 1, Access.INC),
                     flops_per_elem=5)
        rec = ctx.records["flux"]
        assert rec.elements == 10
        # 2 reads (1 transfer) + 2 INC (2 transfers) of 4 doubles each.
        assert rec.bytes == 10 * 4 * 8 * (1 + 1 + 2 + 2)
        assert rec.indirect_per_elem == 4
        assert rec.has_indirect_inc
        assert rec.flops == 50

    def test_loop_specs_vectorizable_flag(self):
        ctx = Op2Context()
        cells, edges, e2c = ring_mesh(ctx, 8)
        q = ctx.dat(cells, 1, "q")
        w = ctx.dat(edges, 1, "w")

        def direct(x):
            x[...] = 1.0

        def gather(ql, out):
            out[...] = ql

        ctx.par_loop(direct, "direct", cells, arg_direct(q, Access.WRITE))
        ctx.par_loop(gather, "gather", edges,
                     arg(q, e2c, 0, Access.READ), arg_direct(w, Access.WRITE))
        specs = {s.name: s for s in ctx.loop_specs()}
        assert specs["direct"].vectorizable
        assert specs["gather"].vectorizable  # reads don't race
        assert specs["gather"].indirect_per_point == 1.0
