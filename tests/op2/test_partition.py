"""Tests for the PT-Scotch-substitute partitioners."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.op2 import partition_quality, partition_rcb, partition_spectral


def grid_mesh(nx, ny):
    """Cells of an nx x ny grid with 4-neighbor adjacency edges."""
    idx = np.arange(nx * ny).reshape(ny, nx)
    coords = np.stack(
        [np.repeat(np.arange(ny), nx), np.tile(np.arange(nx), ny)], axis=1
    ).astype(float)
    edges = []
    edges.extend(zip(idx[:, :-1].ravel(), idx[:, 1:].ravel()))
    edges.extend(zip(idx[:-1, :].ravel(), idx[1:, :].ravel()))
    return coords, np.asarray(edges)


class TestRCB:
    def test_balance(self):
        coords, _ = grid_mesh(16, 16)
        parts = partition_rcb(coords, 8)
        sizes = np.bincount(parts)
        assert len(sizes) == 8
        assert sizes.max() - sizes.min() <= 1

    def test_every_part_nonempty(self):
        coords, _ = grid_mesh(10, 10)
        parts = partition_rcb(coords, 7)
        assert set(parts) == set(range(7))

    def test_single_part(self):
        coords, _ = grid_mesh(4, 4)
        assert np.all(partition_rcb(coords, 1) == 0)

    def test_locality_cut_better_than_random(self):
        coords, edges = grid_mesh(20, 20)
        parts = partition_rcb(coords, 8)
        q = partition_quality(parts, edges)
        rng = np.random.default_rng(0)
        rand = rng.integers(0, 8, size=400)
        q_rand = partition_quality(rand, edges)
        assert q.cut_fraction < 0.5 * q_rand.cut_fraction

    def test_validation(self):
        with pytest.raises(ValueError):
            partition_rcb(np.zeros(5), 2)  # 1-D coords
        with pytest.raises(ValueError):
            partition_rcb(np.zeros((5, 2)), 0)

    @given(n=st.integers(8, 200), nparts=st.integers(1, 16), seed=st.integers(0, 99))
    @settings(max_examples=40, deadline=None)
    def test_property_cover_balance(self, n, nparts, seed):
        rng = np.random.default_rng(seed)
        coords = rng.random((n, 2))
        parts = partition_rcb(coords, nparts)
        assert parts.shape == (n,)
        sizes = np.bincount(parts, minlength=nparts)
        if n >= nparts:
            assert sizes.max() - sizes.min() <= 1


class TestSpectral:
    def test_balanced_and_low_cut_on_grid(self):
        coords, edges = grid_mesh(12, 12)
        parts = partition_spectral(144, edges, 4)
        sizes = np.bincount(parts, minlength=4)
        assert sizes.max() - sizes.min() <= 1
        q = partition_quality(parts, edges)
        assert q.cut_fraction < 0.35

    def test_tiny_graph(self):
        parts = partition_spectral(3, np.array([[0, 1], [1, 2]]), 2)
        assert set(parts) <= {0, 1}

    def test_validation(self):
        with pytest.raises(ValueError):
            partition_spectral(4, np.zeros((0, 2)), 0)


class TestQuality:
    def test_metrics(self):
        parts = np.array([0, 0, 1, 1])
        edges = np.array([[0, 1], [1, 2], [2, 3]])
        q = partition_quality(parts, edges)
        assert q.nparts == 2
        assert q.cut_edges == 1
        assert q.total_edges == 3
        assert q.avg_neighbors == 1.0
        assert q.max_part == q.min_part == 2

    def test_no_cut(self):
        parts = np.zeros(4, dtype=int)
        edges = np.array([[0, 1], [2, 3]])
        q = partition_quality(parts, edges)
        assert q.cut_edges == 0
        assert q.avg_neighbors == 0.0
