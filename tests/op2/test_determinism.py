"""Coloring/partition determinism under the shared executor.

Pins the property the IR refactor must not disturb: lowering through
:class:`~repro.ir.plan.KernelPlan` and the shared
:class:`~repro.ir.executor.InstrumentedExecutor` changes nothing about
*how* elements execute — the same loop produces the same greedy colors,
the same color order, and hence bit-identical results, run after run
and (where the color order preserves each target's increment order)
across execution modes.

The cross-mode fixture is a round-robin tournament mesh: 2m cells, one
edge per pairing, laid out round by round.  Rounds are vertex-disjoint,
so greedy coloring assigns round r color r, and every cell meets its
rounds in increasing edge-index order — seq's single ``np.add.at`` pass
and colored/blocked's per-color updates then sum each cell's increments
in the *same* order, making the modes bit-identical, not merely close.
(On a general mesh seq vs colored only agree to rounding; see
``test_parloop.py::test_colored_equals_seq_mode``.)
"""

import dataclasses

import numpy as np
import pytest

from repro.op2 import (
    Access,
    Global,
    Map,
    Op2Context,
    Set,
    arg,
    arg_global,
    color_iterset,
)

MODES = ("seq", "colored", "blocked")


def tournament_mesh(m: int = 8) -> np.ndarray:
    """Round-robin schedule of 2m cells: 2m-1 rounds of m disjoint
    pairs, concatenated round-major (the classic 1-factorization of
    the complete graph K_2m)."""
    n = 2 * m
    teams = list(range(n))
    rounds = []
    for _ in range(n - 1):
        rounds.append([(teams[i], teams[n - 1 - i]) for i in range(m)])
        teams = [teams[0]] + [teams[-1]] + teams[1:-1]
    return np.array([pair for rnd in rounds for pair in rnd])


def run_flux(mode: str, conn: np.ndarray, ncells: int, iters: int = 3):
    """The probe program: a full-arity indirect INC flux plus a global
    reduction, returning (dat bits, global value, context)."""
    ctx = Op2Context(mode=mode)
    cells = ctx.set("cells", ncells)
    edges = ctx.set("edges", len(conn))
    e2c = ctx.map("e2c", edges, cells, conn)
    q = ctx.dat(cells, 1, "q",
                data=np.sin(np.arange(float(ncells)))[:, None])
    r = ctx.dat(cells, 1, "r")
    tot = Global(0.0, "tot")

    def flux(q2, r2, t):
        f = 0.3 * (q2[:, 1, 0] - q2[:, 0, 0])
        r2[:, 0, 0] = f
        r2[:, 1, 0] = -f
        t[0] += float(np.sum(np.abs(f)))

    for _ in range(iters):
        ctx.par_loop(flux, "flux", edges,
                     arg(q, e2c, None, Access.READ),
                     arg(r, e2c, None, Access.INC),
                     arg_global(tot, Access.INC), flops_per_elem=4)
    return r.data.copy(), float(tot.value[0]), ctx


@pytest.fixture(scope="module")
def mesh():
    return tournament_mesh(8)


def _bits(a: np.ndarray) -> np.ndarray:
    return np.ascontiguousarray(a).view(np.uint64)


def test_greedy_coloring_is_deterministic(mesh):
    """Same plan -> same colors: fresh identical declarations color
    byte-identically (no hash/iteration-order dependence)."""
    def colors():
        edges = Set("edges", len(mesh))
        cells = Set("cells", 16)
        m = Map("e2c", edges, cells, mesh)
        return color_iterset(edges, ((m, None),))

    a, b = colors(), colors()
    assert a.dtype == b.dtype
    assert np.array_equal(a, b)


def test_tournament_coloring_is_round_major(mesh):
    """The fixture's load-bearing property: greedy gives round r color
    r, so each cell's incident edges ascend in color with edge index."""
    edges = Set("edges", len(mesh))
    cells = Set("cells", 16)
    colors = color_iterset(edges, ((Map("e2c", edges, cells, mesh), None),))
    assert colors.max() + 1 == 15  # one color per round
    for e in range(len(mesh)):
        assert colors[e] == e // 8
    for c in range(16):
        incident = [colors[e] for e in range(len(mesh)) if c in mesh[e]]
        assert incident == sorted(incident)


@pytest.mark.parametrize("mode", MODES)
def test_repeated_runs_bit_identical(mesh, mode):
    """Within a mode, two fresh runs agree to the last bit — dat,
    global, and the executor's traffic ledger."""
    r1, t1, c1 = run_flux(mode, mesh, 16)
    r2, t2, c2 = run_flux(mode, mesh, 16)
    assert np.array_equal(_bits(r1), _bits(r2))
    assert t1 == t2
    assert (dataclasses.asdict(c1.records["flux"])
            == dataclasses.asdict(c2.records["flux"]))


@pytest.mark.parametrize("mode", ("colored", "blocked"))
def test_modes_bit_identical_on_order_preserving_coloring(mesh, mode):
    """Same color order -> bit-identical reductions, seq vs colored:
    on the tournament mesh every cell's increments are summed in edge
    index order by all three schemes."""
    r_seq, t_seq, _ = run_flux("seq", mesh, 16)
    r_other, t_other, _ = run_flux(mode, mesh, 16)
    assert np.array_equal(_bits(r_seq), _bits(r_other))
    assert t_seq == t_other


def test_ledger_identical_across_modes(mesh):
    """The shared executor accounts identically whatever the schedule:
    the paper's traffic model sees points and accesses, not colors."""
    recs = {}
    for mode in MODES:
        _, _, ctx = run_flux(mode, mesh, 16)
        recs[mode] = dataclasses.asdict(ctx.records["flux"])
        assert ctx.loop_order == ["flux"]
    assert recs["seq"] == recs["colored"] == recs["blocked"]


def test_color_cache_reuses_plan(mesh):
    """Re-invoking the same loop reuses the cached coloring — the
    cache key survives the lowering refactor."""
    ctx = Op2Context(mode="colored")
    cells = ctx.set("cells", 16)
    edges = ctx.set("edges", len(mesh))
    e2c = ctx.map("e2c", edges, cells, mesh)
    q = ctx.dat(cells, 1, "q", data=np.ones((16, 1)))
    r = ctx.dat(cells, 1, "r")

    def inc(q2, r2):
        r2[...] = q2

    ctx.par_loop(inc, "inc", edges,
                 arg(q, e2c, None, Access.READ),
                 arg(r, e2c, None, Access.INC))
    assert len(ctx._color_cache) == 1
    cached = next(iter(ctx._color_cache.values()))
    ctx.par_loop(inc, "inc", edges,
                 arg(q, e2c, None, Access.READ),
                 arg(r, e2c, None, Access.INC))
    assert len(ctx._color_cache) == 1
    assert next(iter(ctx._color_cache.values())) is cached


def test_distributed_partition_deterministic(mesh):
    """Two identical distributed runs partition, color and reduce
    identically — per-rank element counts and the global to the bit."""
    from repro.op2 import DistOp2Context, arg_direct
    from repro.simmpi import World

    def program(comm):
        ctx = DistOp2Context(comm, mode="colored")
        cells = ctx.set("cells", 16)
        edges = ctx.set("edges", len(mesh))
        e2c = ctx.map("e2c", edges, cells, mesh)
        q = ctx.dat(cells, 1, "q",
                    data=np.sin(np.arange(16.0))[:, None])
        r = ctx.dat(cells, 1, "r")
        tot = Global(0.0, "tot")

        def flux(q2, r2, t):
            f = 0.3 * (q2[:, 1, 0] - q2[:, 0, 0])
            r2[:, 0, 0] = f
            r2[:, 1, 0] = -f
            t[0] += float(np.sum(np.abs(f)))

        ctx.par_loop(flux, "flux", edges,
                     arg(q, e2c, None, Access.READ),
                     arg(r, e2c, None, Access.INC),
                     arg_global(tot, Access.INC), flops_per_elem=4)
        owned = ctx._locals[id(edges)].owned
        return (tuple(int(g) for g in owned), float(tot.value[0]))

    first = World(2).run(program)
    second = World(2).run(program)
    assert first == second
    owned, totals = zip(*first)
    assert sum(len(o) for o in owned) == len(mesh)
    assert not set(owned[0]) & set(owned[1])  # a true partition
    assert len(set(totals)) == 1  # the reduction is collective
