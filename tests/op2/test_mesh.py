"""Tests for OP2 sets, maps, dats, and access declaration validation."""

import numpy as np
import pytest

from repro.op2 import Access, Dat, Global, Map, Op2Context, Set, arg, arg_direct, arg_global


class TestSet:
    def test_size(self):
        s = Set("cells", 10)
        assert len(s) == 10

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            Set("bad", -1)


class TestMap:
    def test_construction(self):
        e, c = Set("edges", 3), Set("cells", 4)
        m = Map("e2c", e, c, np.array([[0, 1], [1, 2], [2, 3]]))
        assert m.arity == 2

    def test_1d_values_promoted(self):
        e, c = Set("edges", 3), Set("cells", 4)
        m = Map("e2c", e, c, np.array([0, 1, 2]))
        assert m.arity == 1

    def test_shape_validation(self):
        e, c = Set("edges", 3), Set("cells", 4)
        with pytest.raises(ValueError, match="arity"):
            Map("bad", e, c, np.zeros((2, 2), dtype=int))

    def test_range_validation(self):
        e, c = Set("edges", 2), Set("cells", 3)
        with pytest.raises(ValueError, match="out of range"):
            Map("bad", e, c, np.array([[0, 3], [1, 2]]))
        with pytest.raises(ValueError, match="out of range"):
            Map("bad", e, c, np.array([[-1, 0], [1, 2]]))


class TestDat:
    def test_zero_init(self):
        d = Dat(Set("cells", 5), 3, "q")
        assert d.data.shape == (5, 3)
        assert np.all(d.data == 0.0)

    def test_data_init_and_copy_semantics(self):
        src = np.arange(10.0).reshape(5, 2)
        d = Dat(Set("cells", 5), 2, "q", data=src)
        src[0, 0] = 99.0
        assert d.data[0, 0] == 0.0  # copied, not aliased

    def test_1d_data_promoted(self):
        d = Dat(Set("cells", 4), 1, "q", data=np.arange(4.0))
        assert d.data.shape == (4, 1)

    def test_validation(self):
        s = Set("cells", 4)
        with pytest.raises(ValueError, match="dim"):
            Dat(s, 0, "q")
        with pytest.raises(ValueError, match="float32 or float64"):
            Dat(s, 1, "q", dtype=np.int64)
        with pytest.raises(ValueError, match="data must be"):
            Dat(s, 2, "q", data=np.zeros((3, 2)))

    def test_copy(self):
        d = Dat(Set("cells", 3), 1, "q", data=np.ones(3))
        c = d.copy()
        c.data[0] = 5.0
        assert d.data[0, 0] == 1.0


class TestArgValidation:
    def setup_method(self):
        self.edges = Set("edges", 3)
        self.cells = Set("cells", 4)
        self.e2c = Map("e2c", self.edges, self.cells, np.array([[0, 1], [1, 2], [2, 3]]))
        self.q = Dat(self.cells, 1, "q")

    def test_map_dat_set_mismatch(self):
        other = Dat(self.edges, 1, "w")
        with pytest.raises(ValueError, match="lives on"):
            arg(other, self.e2c, 0, Access.READ)

    def test_index_out_of_arity(self):
        with pytest.raises(ValueError, match="arity"):
            arg(self.q, self.e2c, 2, Access.READ)

    def test_global_rejects_write(self):
        with pytest.raises(ValueError):
            arg_global(Global(0.0), Access.WRITE)

    def test_loop_rejects_wrong_iterset_map(self):
        ctx = Op2Context()
        other = Set("faces", 3)

        def k(x):
            pass

        with pytest.raises(ValueError, match="not the iteration set"):
            ctx.par_loop(k, "bad", other, arg(self.q, self.e2c, 0, Access.READ))

    def test_loop_rejects_offset_direct(self):
        ctx = Op2Context()

        def k(x):
            pass

        with pytest.raises(ValueError, match="not on iteration set"):
            ctx.par_loop(k, "bad", self.edges, arg_direct(self.q, Access.READ))
