"""Tests for OP2 checkpoint/restart."""

import numpy as np
import pytest

from repro.apps.volna import run_volna, synthetic_ocean
from repro.op2 import DistOp2Context, Op2Context
from repro.op2.checkpoint import load_dats, save_dats
from repro.simmpi import RankFailedError, World


class TestSerial:
    def test_roundtrip_mid_simulation(self, tmp_path):
        """Checkpoint Volna mid-run; a fresh context restarted from it
        finishes with the same state as the uninterrupted run."""
        mesh = synthetic_ocean(8, 4)
        path = str(tmp_path / "v.npz")

        full = run_volna(Op2Context(), (16, 4), 6, mesh=mesh)

        # Interrupted: 3 steps, save w, rebuild, load, 3 more steps.
        # (Volna's state is fully described by w; dt is recomputed.)
        ctx1 = Op2Context()
        part1 = run_volna(ctx1, (16, 4), 3, mesh=mesh)

        ctx2 = Op2Context()
        cells = ctx2.set("cells", mesh.n_cells)
        w2 = ctx2.dat(cells, 3, "w", dtype=np.float32)
        # Transfer through the checkpoint file.
        ctx_save = Op2Context()
        cells_s = ctx_save.set("cells", mesh.n_cells)
        w_s = ctx_save.dat(cells_s, 3, "w", dtype=np.float32, data=part1["w"])
        save_dats(path, ctx_save, [w_s])
        load_dats(path, ctx2, [w2])
        np.testing.assert_array_equal(w2.data, part1["w"].astype(np.float32))

    def test_missing_name(self, tmp_path):
        path = str(tmp_path / "x.npz")
        ctx = Op2Context()
        s = ctx.set("s", 4)
        save_dats(path, ctx, [ctx.dat(s, 1, "a")])
        ctx2 = Op2Context()
        s2 = ctx2.set("s", 4)
        with pytest.raises(KeyError, match="no dat"):
            load_dats(path, ctx2, [ctx2.dat(s2, 1, "b")])

    def test_size_change_rejected(self, tmp_path):
        path = str(tmp_path / "x.npz")
        ctx = Op2Context()
        s = ctx.set("s", 4)
        save_dats(path, ctx, [ctx.dat(s, 1, "a")])
        ctx2 = Op2Context()
        s2 = ctx2.set("s", 5)
        with pytest.raises(ValueError, match="set size"):
            load_dats(path, ctx2, [ctx2.dat(s2, 1, "a")])

    def test_empty_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            save_dats(str(tmp_path / "x.npz"), Op2Context(), [])


class TestDistributed:
    def test_per_rank_roundtrip(self, tmp_path):
        path = str(tmp_path / "d.npz")
        n = 12
        data = np.arange(2.0 * n).reshape(n, 2)

        def writer(comm):
            ctx = DistOp2Context(comm)
            s = ctx.set("cells", n)
            d = ctx.dat(s, 2, "q", data=data)
            save_dats(path, ctx, [d])

        World(3).run(writer)

        def reader(comm):
            ctx = DistOp2Context(comm)
            s = ctx.set("cells", n)
            d = ctx.dat(s, 2, "q")
            load_dats(path, ctx, [d])
            return ctx.gather_dat(d)

        results = World(3).run(reader)
        np.testing.assert_array_equal(results[0], data)

    def test_partition_change_rejected(self, tmp_path):
        path = str(tmp_path / "d2.npz")
        n = 12

        def writer(comm):
            ctx = DistOp2Context(comm)
            s = ctx.set("cells", n)
            save_dats(path, ctx, [ctx.dat(s, 1, "q")])

        World(3).run(writer)

        def reader(comm):
            parts = np.zeros(n, dtype=np.int64)
            parts[n // 2:] = comm.size - 1
            ctx = DistOp2Context(comm, partitions={"cells": parts})
            s = ctx.set("cells", n)
            load_dats(path, ctx, [ctx.dat(s, 1, "q")])

        with pytest.raises(RankFailedError, match="partitioning"):
            World(3).run(reader)
