"""Distributed OP2 (owner-compute + halo exchange) vs serial execution."""

import numpy as np
import pytest

from repro.op2 import (
    Access,
    DistOp2Context,
    Global,
    Op2Context,
    arg,
    arg_direct,
    arg_global,
    partition_rcb,
)
from repro.simmpi import RankFailedError, World


def grid_edges(nx, ny):
    """Cells of an nx x ny grid and the 4-neighbor edge list."""
    idx = np.arange(nx * ny).reshape(ny, nx)
    edges = []
    edges.extend(zip(idx[:, :-1].ravel(), idx[:, 1:].ravel()))
    edges.extend(zip(idx[:-1, :].ravel(), idx[1:, :].ravel()))
    coords = np.stack(
        [np.repeat(np.arange(ny), nx), np.tile(np.arange(nx), ny)], axis=1
    ).astype(float)
    return np.asarray(edges), coords


def diffusion_app(ctx, nx=8, ny=6, iters=4):
    """Edge-flux diffusion with a mass reduction — the canonical
    unstructured kernel mix (gather, indirect INC, direct update)."""
    e2c_vals, coords = grid_edges(nx, ny)
    n_cells, n_edges = nx * ny, len(e2c_vals)
    cells = ctx.set("cells", n_cells)
    edges = ctx.set("edges", n_edges)
    e2c = ctx.map("e2c", edges, cells, e2c_vals)
    q0 = np.sin(np.arange(n_cells, dtype=float))
    q = ctx.dat(cells, 1, "q", data=q0)
    res = ctx.dat(cells, 1, "res")
    mass = Global(0.0, "mass")

    def zero(r):
        r[...] = 0.0

    def flux(ql, qr, rl, rr):
        f = 0.2 * (qr - ql)
        rl[...] = f
        rr[...] = -f

    def update(qd, rd, m):
        qd[...] = qd + rd
        m[0] += float(np.sum(qd))

    for _ in range(iters):
        ctx.par_loop(zero, "zero", cells, arg_direct(res, Access.WRITE))
        ctx.par_loop(flux, "flux", edges,
                     arg(q, e2c, 0, Access.READ), arg(q, e2c, 1, Access.READ),
                     arg(res, e2c, 0, Access.INC), arg(res, e2c, 1, Access.INC),
                     flops_per_elem=3)
        ctx.par_loop(update, "update", cells,
                     arg_direct(q, Access.RW), arg_direct(res, Access.READ),
                     arg_global(mass, Access.INC), flops_per_elem=2)
    return q, mass


@pytest.fixture(scope="module")
def serial_result():
    ctx = Op2Context()
    q, mass = diffusion_app(ctx)
    return q.data.copy(), float(mass.value[0])


class TestDistributedEqualsSerial:
    @pytest.mark.parametrize("nranks", [1, 2, 3, 4, 6])
    def test_block_partition(self, nranks, serial_result):
        def program(comm):
            ctx = DistOp2Context(comm)
            q, mass = diffusion_app(ctx)
            return ctx.gather_dat(q), float(mass.value[0])

        results = World(nranks).run(program)
        q_ser, mass_ser = serial_result
        np.testing.assert_allclose(results[0][0], q_ser, rtol=1e-12)
        for _, m in results:
            assert m == pytest.approx(mass_ser, rel=1e-12)

    @pytest.mark.parametrize("nranks", [2, 4])
    def test_rcb_partition(self, nranks, serial_result):
        _, coords = grid_edges(8, 6)
        e2c_vals, _ = grid_edges(8, 6)
        cell_parts = partition_rcb(coords, nranks)
        # Edges follow their first endpoint's owner.
        edge_parts = cell_parts[e2c_vals[:, 0]]

        def program(comm):
            ctx = DistOp2Context(
                comm, partitions={"cells": cell_parts, "edges": edge_parts}
            )
            q, mass = diffusion_app(ctx)
            return ctx.gather_dat(q), float(mass.value[0])

        results = World(nranks).run(program)
        np.testing.assert_allclose(results[0][0], serial_result[0], rtol=1e-12)

    def test_colored_distributed(self, serial_result):
        def program(comm):
            ctx = DistOp2Context(comm, mode="colored")
            q, mass = diffusion_app(ctx)
            return ctx.gather_dat(q), float(mass.value[0])

        results = World(3).run(program)
        np.testing.assert_allclose(results[0][0], serial_result[0], rtol=1e-12)


class TestDistributedValidation:
    def test_partition_length_checked(self):
        def program(comm):
            ctx = DistOp2Context(comm, partitions={"cells": np.zeros(3, dtype=int)})
            ctx.set("cells", 5)

        with pytest.raises(RankFailedError, match="entries"):
            World(2).run(program)

    def test_partition_rank_range_checked(self):
        def program(comm):
            ctx = DistOp2Context(comm, partitions={"cells": np.full(4, 7)})
            ctx.set("cells", 4)

        with pytest.raises(RankFailedError, match="invalid ranks"):
            World(2).run(program)

    def test_maps_before_dats_enforced(self):
        def program(comm):
            ctx = DistOp2Context(comm)
            cells = ctx.set("cells", 8)
            edges = ctx.set("edges", 7)
            ctx.dat(cells, 1, "q")  # dat first...
            vals = np.stack([np.arange(7), np.arange(1, 8)], axis=1)
            ctx.map("e2c", edges, cells, vals)  # ...then a halo-growing map

        with pytest.raises(RankFailedError, match="maps before dats"):
            World(2).run(program)

    def test_undeclared_set_rejected(self):
        def program(comm):
            from repro.op2 import Set

            ctx = DistOp2Context(comm)
            ctx.dat(Set("alien", 4), 1, "q")

        with pytest.raises(RankFailedError, match="not declared"):
            World(2).run(program)


class TestIndirectWriteDistributed:
    def test_scatter_write_returns_to_owner(self):
        """An indirect WRITE through a permutation map must land on the
        owning rank of the target."""

        def program(comm):
            ctx = DistOp2Context(comm)
            src_set = ctx.set("src", 6)
            dst_set = ctx.set("dst", 6)
            perm = ctx.map("perm", src_set, dst_set,
                           np.array([5, 4, 3, 2, 1, 0]))
            s = ctx.dat(src_set, 1, "s", data=np.arange(6.0))
            d = ctx.dat(dst_set, 1, "d")

            def k(sv, dv):
                dv[...] = sv * 10.0

            ctx.par_loop(k, "scatter", src_set,
                         arg_direct(s, Access.READ), arg(d, perm, 0, Access.WRITE))
            return ctx.gather_dat(d)

        results = World(3).run(program)
        np.testing.assert_array_equal(results[0][:, 0], [50, 40, 30, 20, 10, 0])
