"""Tests for RCM renumbering and edge ordering."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.apps.volna import run_volna, synthetic_ocean
from repro.op2 import Op2Context
from repro.op2.renumber import (
    apply_node_order,
    bandwidth,
    rcm_order,
    sort_edges_by_node,
)


def grid_edges(nx, ny):
    idx = np.arange(nx * ny).reshape(ny, nx)
    e = []
    e.extend(zip(idx[:, :-1].ravel(), idx[:, 1:].ravel()))
    e.extend(zip(idx[:-1, :].ravel(), idx[1:, :].ravel()))
    return np.asarray(e)


class TestRCM:
    def test_permutation(self):
        edges = grid_edges(6, 5)
        order = rcm_order(30, edges)
        assert sorted(order) == list(range(30))

    def test_reduces_bandwidth_of_shuffled_grid(self):
        """Shuffle a grid's node ids, then RCM must restore locality."""
        rng = np.random.default_rng(0)
        edges = grid_edges(12, 12)
        shuffle = rng.permutation(144)
        shuffled, _ = apply_node_order(np.argsort(shuffle), edges)
        before = bandwidth(shuffled)
        order = rcm_order(144, shuffled)
        after = bandwidth(shuffled, order)
        assert after < before / 3
        # A 12-wide grid's optimal bandwidth is ~12.
        assert after <= 3 * 12

    def test_disconnected_components_covered(self):
        edges = np.array([[0, 1], [3, 4]])  # node 2 isolated
        order = rcm_order(5, edges)
        assert sorted(order) == [0, 1, 2, 3, 4]

    def test_empty_graph(self):
        assert list(rcm_order(3, np.empty((0, 2)))) == [2, 1, 0]
        assert bandwidth(np.empty((0, 2))) == 0

    def test_rejects_negative_n(self):
        with pytest.raises(ValueError):
            rcm_order(-1, np.empty((0, 2)))

    @given(n=st.integers(2, 40), seed=st.integers(0, 100))
    @settings(max_examples=30, deadline=None)
    def test_property_never_worse_much(self, n, seed):
        rng = np.random.default_rng(seed)
        m = max(1, n // 2)
        a = rng.integers(0, n, m)
        b = (a + 1 + rng.integers(0, n - 1, m)) % n
        edges = np.stack([a, b], axis=1)
        order = rcm_order(n, edges)
        assert sorted(order) == list(range(n))


class TestApplyOrder:
    def test_node_data_follows(self):
        edges = np.array([[0, 1], [1, 2]])
        data = np.array([10.0, 11.0, 12.0])
        order = np.array([2, 0, 1])  # node2 -> pos0, node0 -> pos1, node1 -> pos2
        new_edges, new_data = apply_node_order(order, edges, data)
        np.testing.assert_array_equal(new_data, [12.0, 10.0, 11.0])
        # Edge (0,1) becomes (pos-of-0, pos-of-1) = (1, 2).
        np.testing.assert_array_equal(new_edges, [[1, 2], [2, 0]])

    def test_renumbered_mesh_same_physics(self):
        """Volna on an RCM-renumbered mesh produces the same solution
        (up to the permutation)."""
        import dataclasses

        mesh = synthetic_ocean(8, 6)
        base = run_volna(Op2Context(), (16, 6), 4, mesh=mesh)

        all_e = np.concatenate([mesh.edges])
        order = rcm_order(mesh.n_cells, all_e)
        new_edges, _ = apply_node_order(order, mesh.edges)
        new_bedges = np.empty_like(mesh.bedge_cell)
        pos = np.empty(mesh.n_cells, dtype=np.int64)
        pos[order] = np.arange(mesh.n_cells)
        new_bedges = pos[mesh.bedge_cell]
        renum = dataclasses.replace(
            mesh,
            edges=new_edges,
            bedge_cell=new_bedges,
            cell_area=mesh.cell_area[order],
            cell_centroid=mesh.cell_centroid[order],
            bathymetry=mesh.bathymetry[order],
        )
        out = run_volna(Op2Context(), (16, 6), 4, mesh=renum)
        np.testing.assert_allclose(out["w"][pos], base["w"], rtol=2e-4, atol=1e-6)
        assert out["volume"][-1] == pytest.approx(base["volume"][-1], rel=1e-5)


class TestEdgeSort:
    def test_sorted_by_endpoints(self):
        edges = np.array([[5, 2], [0, 1], [3, 1]])
        data = np.array([50.0, 10.0, 31.0])
        se, sd = sort_edges_by_node(edges, data)
        np.testing.assert_array_equal(se, [[0, 1], [3, 1], [5, 2]])
        np.testing.assert_array_equal(sd, [10.0, 31.0, 50.0])

    def test_single_return_without_data(self):
        se = sort_edges_by_node(np.array([[1, 0]]))
        np.testing.assert_array_equal(se, [[1, 0]])
