"""Tests for OP2 two-level (block-colored) execution plans."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.op2 import Access, Map, Op2Context, Set, arg, arg_direct
from repro.op2.plan import ExecutionPlan, block_color_stats


def ring(n):
    edges = Set("edges", n)
    cells = Set("cells", n)
    vals = np.stack([np.arange(n), (np.arange(n) + 1) % n], axis=1)
    return edges, cells, Map("e2c", edges, cells, vals)


class TestPlanConstruction:
    def test_blocks_cover_elements(self):
        edges, cells, m = ring(100)
        plan = ExecutionPlan.build(edges, ((m, None),), block_size=16)
        assert plan.nblocks == 7
        assert np.all(plan.block_of >= 0)
        covered = np.concatenate([plan.elements_of_color(c)
                                  for c in range(plan.ncolors)])
        assert sorted(covered) == list(range(100))

    def test_same_color_blocks_share_no_targets(self):
        edges, cells, m = ring(120)
        plan = ExecutionPlan.build(edges, ((m, None),), block_size=10)
        for c in range(plan.ncolors):
            blocks = np.nonzero(plan.block_color == c)[0]
            seen = set()
            for b in blocks:
                elems = np.nonzero(plan.block_of == b)[0]
                tgts = set(m.values[elems].reshape(-1).tolist())
                assert not (tgts & seen), (c, b)
                seen |= tgts

    def test_far_fewer_colors_than_element_coloring(self):
        """Blocks conflict only at their boundaries: a ring needs 2-3
        block colors regardless of length."""
        edges, cells, m = ring(1000)
        plan = ExecutionPlan.build(edges, ((m, None),), block_size=50)
        assert plan.ncolors <= 3

    def test_locality_preserved_within_color(self):
        """Elements of one color come in consecutive runs (blocks) — the
        property element coloring destroys."""
        edges, cells, m = ring(200)
        plan = ExecutionPlan.build(edges, ((m, None),), block_size=20)
        elems = plan.elements_of_color(0)
        jumps = np.diff(elems) != 1
        # Few jumps: one per block, not one per element.
        assert jumps.sum() < len(elems) / 10

    def test_no_write_maps_single_color(self):
        edges = Set("edges", 10)
        plan = ExecutionPlan.build(edges, (), block_size=4)
        assert plan.ncolors == 1

    def test_bad_block_size(self):
        edges, cells, m = ring(10)
        with pytest.raises(ValueError):
            ExecutionPlan.build(edges, ((m, None),), block_size=0)

    def test_stats(self):
        edges, cells, m = ring(100)
        plan = ExecutionPlan.build(edges, ((m, None),), block_size=10)
        stats = block_color_stats(plan)
        assert stats["nblocks"] == 10
        assert stats["ncolors"] >= 2
        assert stats["max_parallel_blocks"] >= 1


class TestBlockedExecution:
    def _flux_app(self, ctx, n=64):
        cells = ctx.set("cells", n)
        edges = ctx.set("edges", n)
        vals = np.stack([np.arange(n), (np.arange(n) + 1) % n], axis=1)
        e2c = ctx.map("e2c", edges, cells, vals)
        q = ctx.dat(cells, 2, "q", data=np.sin(np.arange(2.0 * n)).reshape(n, 2))
        r = ctx.dat(cells, 2, "r")

        def flux(ql, qr, rl, rr):
            f = 0.5 * (ql - qr)
            rl[...] = -f
            rr[...] = f

        for _ in range(3):
            ctx.par_loop(flux, "flux", edges,
                         arg(q, e2c, 0, Access.READ), arg(q, e2c, 1, Access.READ),
                         arg(r, e2c, 0, Access.INC), arg(r, e2c, 1, Access.INC))
        return r

    def test_blocked_equals_seq(self):
        r_seq = self._flux_app(Op2Context(mode="seq"))
        r_blk = self._flux_app(Op2Context(mode="blocked", block_size=8))
        np.testing.assert_allclose(r_blk.data, r_seq.data, rtol=1e-14)

    def test_blocked_equals_colored(self):
        r_col = self._flux_app(Op2Context(mode="colored"))
        r_blk = self._flux_app(Op2Context(mode="blocked", block_size=5))
        np.testing.assert_allclose(r_blk.data, r_col.data, rtol=1e-13)

    def test_mgcfd_under_blocked_plan(self):
        from repro.apps.mgcfd import run_mgcfd

        a = run_mgcfd(Op2Context(mode="seq"), (8, 8, 8), 2)
        b = run_mgcfd(Op2Context(mode="blocked", block_size=32), (8, 8, 8), 2)
        np.testing.assert_allclose(a["q"], b["q"], rtol=1e-12)

    @given(n=st.integers(8, 120), bs=st.integers(1, 40))
    @settings(max_examples=20, deadline=None)
    def test_property_plan_validity(self, n, bs):
        edges, cells, m = ring(n)
        plan = ExecutionPlan.build(edges, ((m, None),), block_size=bs)
        covered = np.concatenate([plan.elements_of_color(c)
                                  for c in range(plan.ncolors)])
        assert sorted(covered) == list(range(n))
