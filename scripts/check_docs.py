#!/usr/bin/env python
"""Documentation checker: links, anchors, and runnable code blocks.

Walks README.md and docs/*.md and verifies that

1. every relative markdown link points at an existing file, and every
   ``#anchor`` (intra- or cross-document) resolves to a real heading
   (GitHub slug rules);
2. every command in a fenced ``bash``/``console`` block actually runs
   (exit 0), and every fenced ``python`` block executes — so the docs
   cannot drift from the CLI and API they describe;
3. every ``python -m repro`` subcommand appears in at least one
   documented command — new CLI verbs cannot ship undocumented;
4. every long CLI flag (``--jobs``, ``--no-vec``, ...) is mentioned
   somewhere in README.md or docs/ — new flags cannot ship
   undocumented either.

Commands matching SKIP_PATTERNS (package installs, test-suite runs
covered by other CI jobs, path placeholders) are listed but not
executed.  ``--no-run`` restricts the check to links/anchors only.

Run from the repository root (the CI docs job does):

    PYTHONPATH=src python scripts/check_docs.py
"""

from __future__ import annotations

import argparse
import os
import re
import subprocess
import sys
import tempfile
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent

#: Commands documented but deliberately not executed here.
SKIP_PATTERNS = [
    r"\bpip install\b",      # environment mutation
    r"\bpytest\b",           # the tier-1/bench CI jobs run the suites
    r"bench_sweep\.py",      # the bench CI job runs the benchmark
    r"bench_serve\.py",      # the serve CI job runs the load generator
    r"bench_simmpi\.py",     # the simmpi CI job runs the scheduler benchmark
    r"check_bench_regression\.py",  # the vec/serve CI jobs run the gate
    r"\brepro serve\b",      # long-running server: the serve CI job smokes it
    r"\bcurl\b",             # examples assume a running server
    r"/path/to",             # placeholder paths
    r"calibrate\.py",        # calibration sweep: long-running, optional
    r"drift --update",       # rewrites the committed fidelity baseline
    r"\bgit diff\b",         # the temp workdir is not a git checkout
    r"capture_goldens\.py",  # re-records the committed golden baseline
]

LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
HEADING_RE = re.compile(r"^(#{1,6})\s+(.*?)\s*#*\s*$")
FENCE_RE = re.compile(r"^```(\w*)\s*$")


def doc_files() -> list[Path]:
    return [ROOT / "README.md"] + sorted((ROOT / "docs").glob("*.md"))


def github_slug(heading: str) -> str:
    """GitHub's anchor slug for a heading text."""
    # Drop markdown emphasis/code markup, then non-word punctuation.
    text = re.sub(r"[`*_]", "", heading.strip().lower())
    text = re.sub(r"[^\w\- ]", "", text)
    return text.replace(" ", "-")


def headings_of(path: Path) -> set[str]:
    slugs: set[str] = set()
    in_fence = False
    for line in path.read_text().splitlines():
        if line.startswith("```"):
            in_fence = not in_fence
            continue
        if in_fence:
            continue
        m = HEADING_RE.match(line)
        if m:
            slugs.add(github_slug(m.group(2)))
    return slugs


def check_links(files: list[Path]) -> list[str]:
    errors = []
    anchors = {f: headings_of(f) for f in files}
    for f in files:
        for target in LINK_RE.findall(f.read_text()):
            if target.startswith(("http://", "https://", "mailto:")):
                continue
            path_part, _, anchor = target.partition("#")
            dest = f if not path_part else (f.parent / path_part).resolve()
            if not dest.exists():
                errors.append(f"{f.relative_to(ROOT)}: broken link -> {target}")
                continue
            if anchor and dest.suffix == ".md":
                known = anchors.get(dest, headings_of(dest))
                if anchor.lower() not in known:
                    errors.append(
                        f"{f.relative_to(ROOT)}: missing anchor -> {target}"
                    )
    return errors


def code_blocks(path: Path) -> list[tuple[str, list[str]]]:
    """(language, lines) for each fenced block with a language tag."""
    blocks = []
    lang, buf = None, []
    for line in path.read_text().splitlines():
        m = FENCE_RE.match(line)
        if m:
            if lang is None:
                lang = m.group(1) or ""
                buf = []
            else:
                blocks.append((lang, buf))
                lang = None
        elif lang is not None:
            buf.append(line)
    return [(l, b) for l, b in blocks if l]


def commands_in(lang: str, lines: list[str]) -> list[str]:
    if lang == "console":
        return [l[2:].strip() for l in lines if l.startswith("$ ")]
    if lang in ("bash", "sh", "shell"):
        return [l.strip() for l in lines
                if l.strip() and not l.strip().startswith("#")]
    return []


def cli_subcommands() -> list[str]:
    """Every ``python -m repro`` subcommand, parsed from the CLI source."""
    src = (ROOT / "src" / "repro" / "cli" / "__init__.py").read_text()
    verbs = re.findall(r'sub\.add_parser\(\s*"(\w+)"', src)
    if not verbs:
        raise SystemExit("check_docs: found no subcommands in repro/cli — "
                         "did the argparse tree move?")
    return verbs


def cli_flags() -> list[str]:
    """Every long option of the CLI, parsed from the argparse tree."""
    src = (ROOT / "src" / "repro" / "cli" / "__init__.py").read_text()
    flags = sorted(set(re.findall(r'add_argument\(\s*"(--[\w-]+)"', src)))
    if not flags:
        raise SystemExit("check_docs: found no flags in repro/cli — "
                         "did the argparse tree move?")
    return flags


def check_flag_coverage(files: list[Path]) -> list[str]:
    """Every long CLI flag must be mentioned in the docs (prose or
    code block) — undocumented flags are invisible flags."""
    corpus = "\n".join(f.read_text() for f in files)
    return [
        f"CLI flag {flag!r} is mentioned nowhere in README.md or docs/"
        for flag in cli_flags()
        if not re.search(rf"{re.escape(flag)}\b", corpus)
    ]


def check_cli_coverage(files: list[Path]) -> list[str]:
    """Every CLI verb must appear in at least one documented command, so
    new subcommands cannot ship undocumented."""
    documented = "\n".join(
        cmd
        for f in files
        for lang, lines in code_blocks(f)
        for cmd in commands_in(lang, lines)
    )
    return [
        f"CLI subcommand {verb!r} appears in no documented command "
        "(add an example to README.md or docs/)"
        for verb in cli_subcommands()
        if not re.search(rf"python -m repro {verb}\b", documented)
    ]


def run_all(files: list[Path]) -> list[str]:
    errors = []
    cache = tempfile.mkdtemp(prefix="check-docs-cache-")
    env = dict(os.environ)
    env["PYTHONPATH"] = str(ROOT / "src") + os.pathsep + env.get("PYTHONPATH", "")
    env["REPRO_CACHE_DIR"] = cache  # shared: later commands reuse warm results
    workdir = tempfile.mkdtemp(prefix="check-docs-run-")

    def execute(label: str, argv: list[str] | str, **kw) -> None:
        shell = isinstance(argv, str)
        proc = subprocess.run(
            argv, shell=shell, cwd=workdir, env=env,
            capture_output=True, text=True, timeout=1800, **kw,
        )
        if proc.returncode != 0:
            tail = (proc.stderr or proc.stdout).strip().splitlines()[-8:]
            errors.append(f"{label}\n    " + "\n    ".join(tail))
            print(f"  FAIL {label}")
        else:
            print(f"  ok   {label}")

    for f in files:
        rel = f.relative_to(ROOT)
        for lang, lines in code_blocks(f):
            if lang == "python":
                src = "\n".join(lines)
                execute(f"{rel}: python block", [sys.executable, "-c", src])
                continue
            for cmd in commands_in(lang, lines):
                if any(re.search(p, cmd) for p in SKIP_PATTERNS):
                    print(f"  skip {rel}: {cmd}")
                    continue
                execute(f"{rel}: {cmd}", cmd)
    return errors


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--no-run", action="store_true",
                        help="check links/anchors only, skip executing blocks")
    args = parser.parse_args(argv)

    files = doc_files()
    print(f"checking {len(files)} documents: "
          + ", ".join(str(f.relative_to(ROOT)) for f in files))
    errors = check_links(files)
    if not errors:
        print("  ok   links and anchors")
    coverage = check_cli_coverage(files)
    if not coverage:
        print(f"  ok   CLI coverage ({len(cli_subcommands())} subcommands)")
    errors += coverage
    flag_coverage = check_flag_coverage(files)
    if not flag_coverage:
        print(f"  ok   CLI flag coverage ({len(cli_flags())} flags)")
    errors += flag_coverage
    for e in errors:
        print(f"  FAIL {e}")

    if not args.no_run:
        errors += run_all(files)

    if errors:
        print(f"\n{len(errors)} documentation problem(s)")
        return 1
    print("\nall documentation checks passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
