#!/usr/bin/env python
"""Write a complete reproduction report (all figures) to markdown.

    python scripts/generate_report.py [output.md]

The report embeds every regenerated table with the paper's published
values alongside, plus the platform summary — the artifact to diff when
iterating on the model.
"""

import sys
from datetime import date

from repro.harness import all_figures
from repro.machine import ALL_PLATFORMS
from repro.mem import HierarchyModel


def main() -> int:
    out_path = sys.argv[1] if len(sys.argv) > 1 else "report.md"
    lines = [
        "# Reproduction report",
        "",
        "Paper: *Comparative evaluation of bandwidth-bound applications on "
        "the Intel Xeon CPU MAX Series* (I. Z. Reguly, SC-W/PMBS 2023).",
        "",
        "## Platform models",
        "",
        "| platform | cores | STREAM GB/s | peak FP32 TFLOPS | cache:mem |",
        "|---|---|---|---|---|",
    ]
    for p in ALL_PLATFORMS:
        ratio = HierarchyModel(p).cache_to_memory_ratio()
        lines.append(
            f"| {p.name} | {p.total_cores} | {p.stream_bandwidth / 1e9:.0f} "
            f"| {p.peak_flops(4) / 1e12:.1f} | {ratio:.1f}x |"
        )
    lines.append("")
    for fig in all_figures():
        lines.append(f"## {fig.figure}: {fig.title}")
        lines.append("")
        lines.append("```")
        lines.append(fig.render())
        lines.append("```")
        lines.append("")
    text = "\n".join(lines)
    with open(out_path, "w") as fh:
        fh.write(text)
    print(f"wrote {out_path} ({len(text.splitlines())} lines)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
