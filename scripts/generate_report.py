#!/usr/bin/env python
"""Write a complete reproduction report (all figures) to markdown.

    python scripts/generate_report.py [output.md]

Thin wrapper over :func:`repro.obs.htmlreport.render_markdown` — the
render stack behind ``python -m repro report`` — kept for script
compatibility; the output is byte-identical to what this script wrote
before the report layer existed.  For the richer self-contained HTML
report (timelines, attribution trees, diffs) use
``python -m repro report -o report.html``.
"""

import sys

from repro.obs.htmlreport import render_markdown


def main() -> int:
    out_path = sys.argv[1] if len(sys.argv) > 1 else "report.md"
    text = render_markdown()
    with open(out_path, "w") as fh:
        fh.write(text)
    print(f"wrote {out_path} ({len(text.splitlines())} lines)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
