#!/usr/bin/env python
"""Fingerprint stability: the IR refactor does not invalidate the store.

The sweep engine's result store is content-addressed by
``result_key(app_fingerprint, platform, config)`` — so a refactor that
perturbed ``AppSpec.fingerprint()`` would silently orphan every cached
result.  ``baselines/golden_equivalence.json`` records each
application's fingerprint as captured on the *pre-refactor* engines;
this check proves, in two steps, that those addresses still work:

1. every application's live ``AppSpec.fingerprint()`` equals its
   recorded pre-refactor value;
2. a store entry *seeded under the recorded fingerprint string* (not a
   recomputed one) is found — as a cache hit, with the seeded payload —
   by a fresh engine resolving the same (app, platform, config) point.

Exit 1 on any drift.  Run from the repository root (the CI tier-1 job
does):

    PYTHONPATH=src python scripts/check_fingerprint_stability.py
"""

from __future__ import annotations

import json
import sys
import tempfile
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(ROOT / "src"))

BASELINE = ROOT / "baselines" / "golden_equivalence.json"
SMOKE_APP = "miniweather"


def main() -> int:
    from repro.engine import SweepEngine, result_key
    from repro.harness import app_spec
    from repro.machine import XEON_MAX_9480, best_practice_config

    recorded = {
        app: entry["fingerprint"]
        for app, entry in json.loads(BASELINE.read_text())["apps"].items()
    }

    failures = 0
    for app in sorted(recorded):
        live = app_spec(app).fingerprint()
        if live == recorded[app]:
            print(f"  ok   {app}: {live[:16]}…")
        else:
            failures += 1
            print(f"  FAIL {app}: fingerprint drifted\n"
                  f"       recorded {recorded[app]}\n"
                  f"       live     {live}")

    platform = XEON_MAX_9480
    config = best_practice_config(platform)
    with tempfile.TemporaryDirectory(prefix="fp-stability-") as cache:
        seeder = SweepEngine(cache_dir=cache)
        est = seeder.run(SMOKE_APP, platform, config)
        # Re-address the estimate under the *recorded* fingerprint — the
        # store key a pre-refactor engine would have written.
        seeder.store.put(result_key(recorded[SMOKE_APP], platform, config), est)

        reader = SweepEngine(cache_dir=cache)
        again = reader.run(SMOKE_APP, platform, config)
        if reader.metrics.cache_hits == 1 and again.total_time == est.total_time:
            print(f"  ok   store round-trip: {SMOKE_APP} entry keyed "
                  "pre-refactor is hit by the refactored engine")
        else:
            failures += 1
            print(f"  FAIL store round-trip: expected a cache hit on the "
                  f"pre-refactor-keyed entry, got hits="
                  f"{reader.metrics.cache_hits} "
                  f"misses={reader.metrics.cache_misses}")

    if failures:
        print(f"\n{failures} fingerprint-stability problem(s)")
        return 1
    print(f"\nall {len(recorded)} fingerprints stable; store addresses intact")
    return 0


if __name__ == "__main__":
    sys.exit(main())
