#!/usr/bin/env python
"""Load-generate against the estimation service: cold vs warm store.

Follows the ``bench_sweep.py`` cold/warm shape, but through the HTTP
surface: an in-process server on an ephemeral port (fresh temp cache
dir), then

1. **cold** — every (app, platform) pair requested concurrently for the
   first time (full profile + sweep evaluation behind each response);
2. **burst** — identical concurrent requests against one *additional*
   still-cold pair, so the duplicate-coalescing path is exercised under
   cold load (kept out of the cold phase so coalesced riders don't
   inflate its req/s);
3. **warm** — several concurrent rounds over the cold-phase pairs,
   served from the LRU tier over the populated store;
4. **observed** — the warm rounds again with a live tracer *and*
   session metrics registry installed around every request, so the
   overhead of full observability on the fast path is a tracked number
   (the ratio should hover near 1.0).

Writes ``BENCH_serve.json``: p50/p99 latency and req/s per phase, the
cold→warm throughput ratio, the observed/warm overhead ratio, the
coalescing hit count, and the serve/engine metric totals.

Usage::

    PYTHONPATH=src python scripts/bench_serve.py [--quick] [--workers N]
                                                 [--out FILE]
"""

from __future__ import annotations

import argparse
import json
import math
import platform as _platform
import sys
import tempfile
import threading
import time
import urllib.request
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.obs.metrics import MetricsRegistry  # noqa: E402
from repro.obs.tracer import Tracer  # noqa: E402
from repro.serve import create_server  # noqa: E402
from repro.serve import metrics as serve_metrics  # noqa: E402

#: (app, platform) request mix: the paper's headline structured /
#: unstructured apps across the HBM and DDR platforms.
PAIRS = [
    ("cloverleaf2d", "max9480"),
    ("miniweather", "max9480"),
    ("cloverleaf2d", "icx8360y"),
    ("mgcfd", "max9480"),
    ("miniweather", "icx8360y"),
    ("acoustic", "epyc7v73x"),
]
QUICK_PAIRS = PAIRS[:3]

#: The coalescing burst targets a pair outside the cold mix, so every
#: burst request races against the same single cold evaluation.
BURST_PAIR = ("volna", "max9480")
DUPLICATE_BURST = 8
WARM_ROUNDS = 5

#: Git-tracked perf trajectory (one JSONL row per bench run; see
#: ``scripts/check_bench_regression.py``).
DEFAULT_HISTORY = Path(__file__).resolve().parent.parent / "baselines" / "bench_history.jsonl"


def append_history(path: Path, row: dict) -> None:
    path.parent.mkdir(parents=True, exist_ok=True)
    with open(path, "a", encoding="utf-8") as fh:
        fh.write(json.dumps(row, sort_keys=True) + "\n")


def percentile(samples: list[float], q: float) -> float:
    ordered = sorted(samples)
    rank = max(math.ceil(q * len(ordered)), 1)
    return ordered[rank - 1]


def fire(base: str, requests: list[tuple[str, str]]) -> tuple[list[float], float]:
    """POST /run for every pair concurrently; per-request latencies
    (seconds) plus the phase wall time."""
    latencies = [0.0] * len(requests)
    errors: list[str] = []

    def one(i: int, app: str, platform: str) -> None:
        body = json.dumps({"app": app, "platform": platform}).encode()
        req = urllib.request.Request(
            base + "/run", data=body,
            headers={"Content-Type": "application/json"},
        )
        t0 = time.perf_counter()
        try:
            with urllib.request.urlopen(req, timeout=300) as resp:
                resp.read()
        except Exception as exc:  # surfaced after the phase
            errors.append(f"{app}@{platform}: {exc}")
        latencies[i] = time.perf_counter() - t0

    threads = [
        threading.Thread(target=one, args=(i, app, platform))
        for i, (app, platform) in enumerate(requests)
    ]
    t0 = time.perf_counter()
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    wall = time.perf_counter() - t0
    if errors:
        raise SystemExit("bench_serve: request failures:\n  " + "\n  ".join(errors))
    return latencies, wall


def phase_stats(latencies: list[float], wall: float) -> dict:
    return {
        "requests": len(latencies),
        "wall_s": wall,
        "req_per_s": len(latencies) / wall if wall > 0 else None,
        "p50_ms": percentile(latencies, 0.50) * 1e3,
        "p99_ms": percentile(latencies, 0.99) * 1e3,
        "max_ms": max(latencies) * 1e3,
    }


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--quick", action="store_true",
                    help="3 pairs instead of 6 (the CI smoke shape)")
    ap.add_argument("--workers", type=int, default=4,
                    help="server worker shards (default 4)")
    ap.add_argument("--out", default="BENCH_serve.json",
                    help="output JSON path (default BENCH_serve.json)")
    ap.add_argument("--history", default=str(DEFAULT_HISTORY),
                    help="perf-trajectory JSONL to append to "
                         "(default baselines/bench_history.jsonl)")
    ap.add_argument("--no-history", action="store_true",
                    help="do not append to the history file")
    args = ap.parse_args(argv)

    pairs = QUICK_PAIRS if args.quick else PAIRS
    serve_metrics.reset()
    with tempfile.TemporaryDirectory(prefix="repro-bench-serve-") as cache_dir:
        server = create_server(
            port=0, workers=args.workers, cache_dir=cache_dir,
            max_inflight=max(args.workers, DUPLICATE_BURST), max_queue=64,
        )
        server.run_in_thread()
        try:
            cold_lat, cold_wall = fire(server.url, pairs)
            cold = phase_stats(cold_lat, cold_wall)

            burst_lat, burst_wall = fire(
                server.url, [BURST_PAIR] * DUPLICATE_BURST
            )
            burst = phase_stats(burst_lat, burst_wall)

            warm_requests = pairs * WARM_ROUNDS
            warm_lat, warm_wall = fire(server.url, warm_requests)
            warm = phase_stats(warm_lat, warm_wall)

            # Same warm shape with full observability installed around
            # every dispatch (the embedded-use ServeConfig fields).
            tracer, session = Tracer(), MetricsRegistry()
            server.state.config.tracer = tracer
            server.state.config.session_metrics = session
            observed_lat, observed_wall = fire(server.url, warm_requests)
            observed = phase_stats(observed_lat, observed_wall)
            server.state.config.tracer = None
            server.state.config.session_metrics = None
            observed["trace_spans"] = len(tracer.spans)
            observed["session_metric_families"] = len(session.names())

            registry = serve_metrics.registry()
            coalesced = registry.total("serve_coalesced_total")
            run_hist = registry.histogram("serve_request_seconds",
                                          endpoint="/run")
            request_quantiles = (
                {"p50": run_hist.quantile(0.50), "p95": run_hist.quantile(0.95),
                 "p99": run_hist.quantile(0.99), "count": run_hist.count}
                if run_hist is not None else None
            )
            telemetry_samples = server.state.sampler.samples
            result = {
                "benchmark": "serve POST /run, cold vs warm store",
                "quick": args.quick,
                "workers": args.workers,
                "pairs": [f"{a}@{p}" for a, p in pairs],
                "burst_pair": f"{BURST_PAIR[0]}@{BURST_PAIR[1]}",
                "duplicate_burst": DUPLICATE_BURST,
                "cold": cold,
                "coalesce_burst": burst,
                "warm": warm,
                "observed": observed,
                "warm_over_cold_req_per_s": (
                    warm["req_per_s"] / cold["req_per_s"]
                    if cold["req_per_s"] else None
                ),
                "observed_over_warm_wall": (
                    observed["wall_s"] / warm["wall_s"]
                    if warm["wall_s"] else None
                ),
                "coalesced_requests": coalesced,
                "request_seconds_quantiles": request_quantiles,
                "telemetry_samples": telemetry_samples,
                "serve_metrics": {
                    name: registry.total(name)
                    for name in registry.names()
                    if registry.kind(name) == "counter"
                },
                "engine_metrics": server.state.engine.metrics.as_dict(),
            }
        finally:
            server.stop()

    Path(args.out).write_text(json.dumps(result, indent=2) + "\n")
    if not args.no_history:
        append_history(Path(args.history), {
            "ts": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
            "host": _platform.node(),
            "benchmark": "serve",
            "quick": args.quick,
            "workers": args.workers,
            "cold_req_per_s": cold["req_per_s"],
            "warm_req_per_s": warm["req_per_s"],
            "observed_over_warm": result["observed_over_warm_wall"],
            "request_seconds_quantiles": request_quantiles,
            "telemetry_samples": telemetry_samples,
        })
    print(f"cold {cold['req_per_s']:.1f} req/s "
          f"(p50 {cold['p50_ms']:.0f} ms, p99 {cold['p99_ms']:.0f} ms), "
          f"warm {warm['req_per_s']:.1f} req/s "
          f"(p50 {warm['p50_ms']:.1f} ms, p99 {warm['p99_ms']:.1f} ms) -> "
          f"{result['warm_over_cold_req_per_s']:.0f}x, "
          f"observed/warm {result['observed_over_warm_wall']:.2f}x, "
          f"{coalesced:.0f} coalesced; wrote {args.out}")
    if result["warm_over_cold_req_per_s"] < 10:
        print("WARNING: warm/cold throughput ratio below 10x", file=sys.stderr)
    if coalesced < 1:
        print("WARNING: no coalesced requests observed", file=sys.stderr)
    return 0


if __name__ == "__main__":
    sys.exit(main())
