#!/usr/bin/env python
"""Capture the golden-equivalence baseline for the IR refactor.

Records, for every application and every app x platform pair, the
externally observable numbers the kernel-IR consolidation must leave
byte/float-identical:

- ``AppSpec.fingerprint()`` per application (the application part of the
  sweep store's content address);
- best-run ``AppEstimate.total_time`` and every attribution-tree leaf
  for all app x platform pairs;
- the exported trace span taxonomy (category/name pairs) of a traced
  model run per pair;
- the execution-layer span taxonomy, per-kernel span attribute keys and
  access-mode strings from a test-scale run of each application under
  tracing;
- the simulated clock accumulated by each application's test-scale run
  under a timing model (the DSL -> LoopSpec -> roofline charge path);
- per-rank virtual clocks of small distributed OPS and OP2 programs
  (the communicator-clock charge path);
- the metric family names emitted by a metrics-collected sweep plus a
  distributed run.

``python scripts/capture_goldens.py`` rewrites
``baselines/golden_equivalence.json``; ``tests/ir/test_golden_equivalence.py``
recomputes the same quantities and compares them for exact equality.
Run it only to (re)record a deliberate behaviour change.
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(ROOT / "src"))

BASELINE = ROOT / "baselines" / "golden_equivalence.json"


def _span_taxonomy(tracer) -> list[list[str]]:
    names = {(s.cat, s.name) for s in tracer.spans}
    names |= {(e.cat, e.name) for e in tracer.events}
    return [list(t) for t in sorted(names)]


def app_goldens() -> dict:
    """Fingerprint + exec-layer tracing + timed-clock goldens per app."""
    from repro.apps import APP_ORDER, get_app
    from repro.harness import app_spec
    from repro.machine import XEON_MAX_9480, best_practice_config
    from repro.obs import tracing
    from repro.op2 import Op2Context
    from repro.ops import OpsContext, TimingModel

    out: dict[str, dict] = {}
    platform = XEON_MAX_9480
    timing = TimingModel(platform, best_practice_config(platform))
    for name in APP_ORDER:
        defn = get_app(name)
        entry: dict = {"fingerprint": app_spec(name).fingerprint()}

        with tracing() as tr:
            ctx = defn.make_context()
            defn.run(ctx, defn.test_domain, defn.test_iterations)
        entry["exec_spans"] = _span_taxonomy(tr)
        attrs: dict[str, list[str]] = {}
        access: dict[str, list[str]] = {}
        for s in tr.spans:
            if s.cat != "kernel" or s.name in attrs:
                continue
            attrs[s.name] = sorted(s.attrs)
            access[s.name] = list(s.attrs.get("access", ()))
        entry["kernel_attr_keys"] = {k: attrs[k] for k in sorted(attrs)}
        entry["kernel_access"] = {k: access[k] for k in sorted(access)}

        tctx = (OpsContext(timing=timing) if defn.structured
                else Op2Context(timing=timing))
        defn.run(tctx, defn.test_domain, defn.test_iterations)
        entry["timed_seconds"] = tctx.simulated_time
        out[name] = entry
    return out


def estimate_goldens() -> dict:
    """Best-run config/total/attribution leaves + trace taxonomy, all pairs."""
    from repro.apps import APP_ORDER
    from repro.harness import best_attribution, trace_application
    from repro.machine import ALL_PLATFORMS
    from repro.obs.attribution import leaf_index

    out: dict[str, dict] = {}
    for name in APP_ORDER:
        out[name] = {}
        for platform in ALL_PLATFORMS:
            cfg, est, tree = best_attribution(name, platform)
            _est, tracer = trace_application(name, platform)
            out[name][platform.short_name] = {
                "config": cfg.label(),
                "total_time": est.total_time,
                "leaves": {
                    "/".join(key): node.seconds
                    for key, node in sorted(leaf_index(tree).items())
                },
                "trace_spans": _span_taxonomy(tracer),
            }
    return out


def distributed_goldens() -> dict:
    """Per-rank virtual clocks of small timed distributed programs."""
    import numpy as np

    from repro.machine import XEON_MAX_9480, best_practice_config
    from repro.op2 import Access as Op2Access
    from repro.op2 import DistOp2Context, Global, arg, arg_direct, arg_global
    from repro.ops import Access, OpsContext, S2D_00, TimingModel, arg_dat, star_stencil
    from repro.simmpi import CartGrid, World

    platform = XEON_MAX_9480
    timing = TimingModel(platform, best_practice_config(platform))

    def ops_program(comm):
        ctx = OpsContext(comm=comm, grid=CartGrid((2, 2)), timing=timing)
        grid = ctx.block("grid", (12, 12))
        u = grid.dat("u", halo=1)
        un = grid.dat("un", halo=1)
        u.set_from_global(np.arange(144, dtype=float).reshape(12, 12))
        s5 = star_stencil(2, 1)

        def step(out, inp):
            out[0, 0] = inp[0, 0] + 0.1 * (
                inp[1, 0] + inp[-1, 0] + inp[0, 1] + inp[0, -1] - 4.0 * inp[0, 0]
            )

        for _ in range(3):
            ctx.par_loop(step, "step", grid, grid.interior,
                         arg_dat(un, S2D_00, Access.WRITE),
                         arg_dat(u, s5, Access.READ), flops_per_point=7)
            u, un = un, u
        return comm.clock.now

    def op2_program(comm):
        ctx = DistOp2Context(comm, timing=timing)
        idx = np.arange(24).reshape(4, 6)
        conn = np.asarray(
            list(zip(idx[:, :-1].ravel(), idx[:, 1:].ravel()))
            + list(zip(idx[:-1, :].ravel(), idx[1:, :].ravel()))
        )
        cells = ctx.set("cells", 24)
        edges = ctx.set("edges", len(conn))
        e2c = ctx.map("e2c", edges, cells, conn)
        q = ctx.dat(cells, 1, "q", data=np.sin(np.arange(24.0)))
        res = ctx.dat(cells, 1, "res")
        mass = Global(0.0, "mass")

        def zero(r):
            r[...] = 0.0

        def flux(ql, qr, rl, rr):
            f = 0.2 * (qr - ql)
            rl[...] = f
            rr[...] = -f

        def update(qd, rd, m):
            qd[...] = qd + rd
            m[0] += float(np.sum(qd))

        for _ in range(2):
            ctx.par_loop(zero, "zero", cells, arg_direct(res, Op2Access.WRITE))
            ctx.par_loop(flux, "flux", edges,
                         arg(q, e2c, 0, Op2Access.READ),
                         arg(q, e2c, 1, Op2Access.READ),
                         arg(res, e2c, 0, Op2Access.INC),
                         arg(res, e2c, 1, Op2Access.INC), flops_per_elem=3)
            ctx.par_loop(update, "update", cells,
                         arg_direct(q, Op2Access.RW),
                         arg_direct(res, Op2Access.READ),
                         arg_global(mass, Op2Access.INC), flops_per_elem=2)
        return comm.clock.now

    return {
        "ops_rank_clocks": World(4).run(ops_program),
        "op2_rank_clocks": World(3).run(op2_program),
    }


def metrics_goldens() -> dict:
    """Metric family names from a collected sweep + a distributed run."""
    from repro.engine import SweepEngine, build_plan
    from repro.machine import XEON_MAX_9480
    from repro.obs.metrics import collecting
    from repro.simmpi import World

    # A private cold engine: cache hits would skip the instrumented model
    # code, making the captured family list depend on store warmth.
    engine = SweepEngine(use_cache=False)
    with collecting() as registry:
        plan = build_plan(["miniweather", "mgcfd"], [XEON_MAX_9480])
        engine.run_plan(plan)
        World(2).run(lambda comm: comm.allreduce(float(comm.rank)))
        names = registry.names()
    return {"families": names}


def collect_goldens() -> dict:
    return {
        "apps": app_goldens(),
        "estimates": estimate_goldens(),
        "distributed": distributed_goldens(),
        "metrics": metrics_goldens(),
    }


def main() -> int:
    goldens = collect_goldens()
    BASELINE.parent.mkdir(parents=True, exist_ok=True)
    BASELINE.write_text(json.dumps(goldens, indent=2, sort_keys=True) + "\n")
    napps = len(goldens["apps"])
    npairs = sum(len(v) for v in goldens["estimates"].values())
    print(f"golden baseline: {napps} apps, {npairs} app x platform pairs "
          f"-> {BASELINE.relative_to(ROOT)}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
