#!/usr/bin/env python
"""Benchmark the simulated-MPI schedulers: ranks/s on a halo pattern.

Runs a CloverLeaf-style 2D halo-exchange program (two iterations of
ghost exchange plus an allreduce) at 64, 1024, and 4096 ranks on the
event-driven backend, and at 64 ranks on the threaded backend for
comparison, reporting scheduler throughput in ranks/s.  The 64-rank
pair is also checked for bit-identical virtual clocks — the benchmark
doubles as a cheap parity smoke.

Writes ``BENCH_simmpi.json`` and appends one row to
``baselines/bench_history.jsonl`` (see
``scripts/check_bench_regression.py``, which gates on
``events_ranks_per_s_4k``).

Usage::

    PYTHONPATH=src python scripts/bench_simmpi.py [--smoke] [--iters N]
"""

from __future__ import annotations

import argparse
import json
import platform as _platform
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

import numpy as np  # noqa: E402

from repro.simmpi import (  # noqa: E402
    CartGrid, World, dims_create, exchange_halos, exchange_halos_co, op,
)

DEFAULT_HISTORY = (
    Path(__file__).resolve().parent.parent / "baselines" / "bench_history.jsonl"
)


def append_history(path: Path, row: dict) -> None:
    path.parent.mkdir(parents=True, exist_ok=True)
    with open(path, "a", encoding="utf-8") as fh:
        fh.write(json.dumps(row, sort_keys=True) + "\n")


def halo_program(grid: CartGrid, iters: int):
    """Generator program: iterated ghost exchange + allreduce."""

    def prog(comm):
        local = np.full((4, 4), float(comm.rank + 1))
        total = 0.0
        for _ in range(iters):
            yield op.compute(1e-6)
            yield from exchange_halos_co(comm, grid, local, 1)
            total = yield op.allreduce(float(local[1, 1]))
        return total

    return prog


def halo_program_blocking(grid: CartGrid, iters: int):
    def prog(comm):
        local = np.full((4, 4), float(comm.rank + 1))
        total = 0.0
        for _ in range(iters):
            comm.compute(1e-6)
            exchange_halos(comm, grid, local, 1)
            total = comm.allreduce(float(local[1, 1]))
        return total

    return prog


def run_events(nranks: int, iters: int) -> tuple[float, World]:
    grid = CartGrid(dims_create(nranks, 2), periodic=(True, True))
    world = World(nranks, backend="events")
    t0 = time.perf_counter()
    world.run(halo_program(grid, iters))
    return time.perf_counter() - t0, world


def run_threads(nranks: int, iters: int) -> tuple[float, World]:
    grid = CartGrid(dims_create(nranks, 2), periodic=(True, True))
    world = World(nranks, backend="threads")
    t0 = time.perf_counter()
    world.run(halo_program_blocking(grid, iters))
    return time.perf_counter() - t0, world


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--iters", type=int, default=2,
                    help="halo-exchange iterations per run (default 2)")
    ap.add_argument("--smoke", action="store_true",
                    help="cap the sweep at 1024 ranks (the CI smoke)")
    ap.add_argument("--out", default="BENCH_simmpi.json",
                    help="output JSON path (default BENCH_simmpi.json)")
    ap.add_argument("--history", default=str(DEFAULT_HISTORY),
                    help="perf-trajectory JSONL to append to "
                         "(default baselines/bench_history.jsonl)")
    ap.add_argument("--no-history", action="store_true",
                    help="do not append to the history file")
    args = ap.parse_args(argv)

    sizes = [64, 1024] if args.smoke else [64, 1024, 4096]
    result: dict = {
        "benchmark": "simmpi halo scheduler, events vs threads",
        "iters": args.iters,
        "smoke": args.smoke,
    }

    events_s: dict[int, float] = {}
    for n in sizes:
        s, world = run_events(n, args.iters)
        events_s[n] = s
        result[f"events_s_{n}"] = s
        result[f"events_ranks_per_s_{n // 1024}k" if n >= 1024
               else f"events_ranks_per_s_{n}"] = n / s if s else 0.0
        print(f"events  {n:5d} ranks: {s:7.3f} s  ({n / s:8.0f} ranks/s)")

    # Threaded oracle at 64 ranks: throughput figure + clock parity.
    t_s, tw = run_threads(64, args.iters)
    result["threads_s_64"] = t_s
    result["threads_ranks_per_s_64"] = 64 / t_s if t_s else 0.0
    print(f"threads    64 ranks: {t_s:7.3f} s  ({64 / t_s:8.0f} ranks/s)")

    _, ew = run_events(64, args.iters)
    parity = all(
        ec.clock.now == tc.clock.now
        and ec.clock.mpi_time == tc.clock.mpi_time
        for ec, tc in zip(ew.comms, tw.comms)
    )
    result["clock_parity_64"] = parity
    if not parity:
        print("FAIL: events and threads backends disagree on 64-rank "
              "virtual clocks", file=sys.stderr)
        return 1

    gate_key = "events_ranks_per_s_1k" if args.smoke else "events_ranks_per_s_4k"
    Path(args.out).write_text(json.dumps(result, indent=2) + "\n")
    if not args.no_history and not args.smoke:
        append_history(Path(args.history), {
            "ts": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
            "host": _platform.node(),
            "benchmark": "simmpi",
            "iters": args.iters,
            "events_ranks_per_s_64": result["events_ranks_per_s_64"],
            "events_ranks_per_s_1k": result["events_ranks_per_s_1k"],
            "events_ranks_per_s_4k": result["events_ranks_per_s_4k"],
            "threads_ranks_per_s_64": result["threads_ranks_per_s_64"],
        })
    print(f"clock parity ok; gate metric {gate_key} = "
          f"{result[gate_key]:.0f} ranks/s; wrote {args.out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
