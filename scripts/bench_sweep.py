#!/usr/bin/env python
"""Benchmark the sweep engine: cold vs warm fig3+fig6 regeneration.

Runs the two heaviest figure sweeps (the Figure 3 structured config
matrix and the Figure 6 cross-platform best-run table) twice — once
cold with caching disabled (every estimate evaluated, zero cache hits
by construction; fig6 re-evaluates even the points fig3 touched, as a
truly storeless run would) and once warm through a brand-new engine
reading a store populated by an untimed priming pass — and writes the
timings plus engine metrics to ``BENCH_sweep.json`` for the
performance trajectory.

A third **observed** pass repeats the cold shape with a live tracer and
session metrics registry installed.  The vectorized evaluator must stay
on under observability; the pass is gated at >= 10x the pre-vectorizer
scalar baseline (~211 jobs/s), failing the run (exit 1) if full
instrumentation ever drags the fast path below that floor.

Usage::

    PYTHONPATH=src python scripts/bench_sweep.py [--jobs N] [--out FILE]
"""

from __future__ import annotations

import argparse
import json
import platform as _platform
import sys
import tempfile
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.engine import configure_engine, reset_engine  # noqa: E402
from repro.harness import figures  # noqa: E402
from repro.obs.metrics import MetricsRegistry, collecting  # noqa: E402
from repro.obs.tracer import Tracer, tracing  # noqa: E402

#: Cold throughput of the pre-vectorizer scalar engine (jobs/s); the
#: observed pass must clear ten times this.
SCALAR_BASELINE_JOBS_PER_S = 211.0

#: Git-tracked perf trajectory (one JSONL row per bench run; see
#: ``scripts/check_bench_regression.py``).
DEFAULT_HISTORY = Path(__file__).resolve().parent.parent / "baselines" / "bench_history.jsonl"


def append_history(path: Path, row: dict) -> None:
    path.parent.mkdir(parents=True, exist_ok=True)
    with open(path, "a", encoding="utf-8") as fh:
        fh.write(json.dumps(row, sort_keys=True) + "\n")


def timed_figures() -> float:
    t0 = time.perf_counter()
    figures.fig3()
    figures.fig6()
    return time.perf_counter() - t0


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--jobs", type=int, default=1,
                    help="parallel sweep workers (default serial)")
    ap.add_argument("--out", default="BENCH_sweep.json",
                    help="output JSON path (default BENCH_sweep.json)")
    ap.add_argument("--history", default=str(DEFAULT_HISTORY),
                    help="perf-trajectory JSONL to append to "
                         "(default baselines/bench_history.jsonl)")
    ap.add_argument("--no-history", action="store_true",
                    help="do not append to the history file")
    args = ap.parse_args(argv)

    with tempfile.TemporaryDirectory(prefix="repro-bench-") as cache_dir:
        # Prime the app specs (so both passes measure sweep work, not
        # one-time profiling of the application numerics) and populate
        # the store the warm pass will read.  Untimed.
        engine = configure_engine(cache_dir=cache_dir, workers=args.jobs)
        timed_figures()
        spec_cache = engine._specs

        # Cold: caching disabled — pure evaluation, zero cache hits.
        engine = configure_engine(cache_dir=cache_dir, workers=args.jobs,
                                  use_cache=False)
        engine._specs.update(spec_cache)
        cold_s = timed_figures()
        cold = engine.metrics.as_dict()

        # Observed cold: same storeless shape, with a tracer and a
        # session metrics registry live for the whole pass.  Best of
        # three repeats — the gate below measures the instrumented
        # path, not scheduler noise on a shared box.
        engine = configure_engine(cache_dir=cache_dir, workers=args.jobs,
                                  use_cache=False)
        engine._specs.update(spec_cache)
        repeats = 3
        with tracing(Tracer()) as tracer, collecting(MetricsRegistry()) as session:
            observed_s = min(timed_figures() for _ in range(repeats))
        job_hist = session.histogram("engine_job_seconds")
        observed = engine.metrics.as_dict()
        observed_evaluator = engine.last_evaluator
        observed_spans = len(tracer.spans)
        observed_evals = observed["evaluations"] / repeats

        # Warm: new engine (as a new process would build), same store.
        engine = configure_engine(cache_dir=cache_dir, workers=args.jobs)
        engine._specs.update(spec_cache)
        warm_s = timed_figures()
        warm = engine.metrics.as_dict()

    reset_engine()
    observed_jobs_per_s = (
        observed_evals / observed_s if observed_s > 0 else 0.0
    )
    cold_jobs_per_s = cold["evaluations"] / cold_s if cold_s > 0 else 0.0
    job_quantiles = (
        {"p50": job_hist.quantile(0.50), "p95": job_hist.quantile(0.95),
         "p99": job_hist.quantile(0.99), "count": job_hist.count}
        if job_hist is not None else None
    )
    result = {
        "benchmark": "fig3+fig6 sweep, cold vs warm store",
        "jobs": args.jobs,
        "cold_s": cold_s,
        "observed_s": observed_s,
        "warm_s": warm_s,
        "speedup": cold_s / warm_s if warm_s > 0 else None,
        "observed_over_cold": observed_s / cold_s if cold_s > 0 else None,
        "cold_jobs_per_s": cold_jobs_per_s,
        "observed_jobs_per_s": observed_jobs_per_s,
        "job_seconds_quantiles": job_quantiles,
        "observed_repeats": repeats,  # observed_metrics span all repeats
        "observed_evaluator": observed_evaluator,
        "observed_trace_spans": observed_spans,
        "scalar_baseline_jobs_per_s": SCALAR_BASELINE_JOBS_PER_S,
        "cold_metrics": cold,
        "observed_metrics": observed,
        "warm_metrics": warm,
    }
    Path(args.out).write_text(json.dumps(result, indent=2) + "\n")
    if not args.no_history:
        append_history(Path(args.history), {
            "ts": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
            "host": _platform.node(),
            "benchmark": "sweep",
            "jobs": args.jobs,
            "cold_s": cold_s,
            "cold_jobs_per_s": cold_jobs_per_s,
            "observed_jobs_per_s": observed_jobs_per_s,
            "warm_s": warm_s,
            "speedup": result["speedup"],
            "job_seconds_quantiles": job_quantiles,
        })
    print(f"cold {cold_s:.2f} s ({cold['evaluations']} evaluations), "
          f"observed {observed_s:.2f} s "
          f"({observed_jobs_per_s:.0f} jobs/s, {observed_evaluator}), "
          f"warm {warm_s:.2f} s ({warm['cache_hits']} hits, "
          f"{warm['evaluations']} evaluations) -> "
          f"{result['speedup']:.1f}x; wrote {args.out}")
    floor = 10 * SCALAR_BASELINE_JOBS_PER_S
    if observed_jobs_per_s < floor:
        print(f"FAIL: observed cold sweep ran {observed_jobs_per_s:.0f} "
              f"jobs/s, below the {floor:.0f} jobs/s gate "
              f"(10x the {SCALAR_BASELINE_JOBS_PER_S:.0f} jobs/s scalar "
              f"baseline)", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
