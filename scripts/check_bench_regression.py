#!/usr/bin/env python
"""Gate the perf trajectory: fail if the newest bench row regressed.

Reads the git-tracked ``baselines/bench_history.jsonl`` that
``bench_sweep.py`` / ``bench_serve.py`` append to, groups rows by
(benchmark, host, shape), and compares the most recent row's headline
throughput against the **best** prior row of the same group:

- ``sweep``  rows gate on ``cold_jobs_per_s``;
- ``serve``  rows gate on ``warm_req_per_s``;
- ``simmpi`` rows gate on ``events_ranks_per_s_4k``.

A drop of more than ``--max-drop`` (default 20%) fails the check.
Rows are only compared against rows from the same host and bench
shape — CI runners and dev boxes have wildly different absolute
throughput, so a group with no prior rows passes with a note (the
row it just recorded becomes the baseline for the next run).

Usage::

    python scripts/check_bench_regression.py [--history FILE]
                                             [--max-drop 0.2]
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

DEFAULT_HISTORY = Path(__file__).resolve().parent.parent / "baselines" / "bench_history.jsonl"

#: Headline throughput metric per benchmark (higher is better).
GATE_METRIC = {
    "sweep": "cold_jobs_per_s",
    "serve": "warm_req_per_s",
    "simmpi": "events_ranks_per_s_4k",
}

#: Row fields that define a comparable bench shape (beyond host):
#: a --quick serve run or a --jobs 4 sweep is not comparable to the
#: default shape.
SHAPE_KEYS = {
    "sweep": ("jobs",),
    "serve": ("quick", "workers"),
    "simmpi": ("iters",),
}


def read_history(path: Path) -> list[dict]:
    rows = []
    try:
        text = path.read_text(encoding="utf-8")
    except OSError:
        return rows
    for line in text.splitlines():
        line = line.strip()
        if not line:
            continue
        try:
            row = json.loads(line)
        except ValueError:
            continue
        if isinstance(row, dict):
            rows.append(row)
    return rows


def group_key(row: dict) -> tuple:
    bench = row.get("benchmark", "?")
    shape = tuple(
        (k, row.get(k)) for k in SHAPE_KEYS.get(bench, ())
    )
    return (bench, row.get("host", "?"), shape)


def check(rows: list[dict], max_drop: float, out=sys.stdout) -> int:
    """Return a process exit code; prints one line per gated group."""
    if not rows:
        print("bench-regression: history is empty — nothing to gate",
              file=out)
        return 0
    groups: dict[tuple, list[dict]] = {}
    for row in rows:
        if row.get("benchmark") in GATE_METRIC:
            groups.setdefault(group_key(row), []).append(row)
    failures = 0
    gated = 0
    for key, group in sorted(groups.items()):
        bench, host, shape = key
        metric = GATE_METRIC[bench]
        latest = group[-1]
        current = latest.get(metric)
        if current is None:
            continue
        prior = [r.get(metric) for r in group[:-1]
                 if r.get(metric) is not None]
        shape_txt = " ".join(f"{k}={v}" for k, v in shape)
        label = f"{bench} @ {host}" + (f" ({shape_txt})" if shape_txt else "")
        if not prior:
            print(f"bench-regression: {label}: no prior rows for this "
                  f"host/shape — {metric} {current:.1f} recorded as baseline",
                  file=out)
            continue
        gated += 1
        best = max(prior)
        floor = best * (1.0 - max_drop)
        drop = 1.0 - current / best if best > 0 else 0.0
        if current < floor:
            failures += 1
            print(f"bench-regression: FAIL {label}: {metric} "
                  f"{current:.1f} is {drop:.0%} below the best recorded "
                  f"{best:.1f} (allowed drop {max_drop:.0%})", file=out)
        else:
            print(f"bench-regression: ok {label}: {metric} {current:.1f} "
                  f"vs best {best:.1f} ({-drop:+.0%})", file=out)
    if gated == 0 and failures == 0:
        print("bench-regression: no group had prior rows to gate against",
              file=out)
    return 1 if failures else 0


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--history", default=str(DEFAULT_HISTORY),
                    help="bench history JSONL "
                         "(default baselines/bench_history.jsonl)")
    ap.add_argument("--max-drop", type=float, default=0.2,
                    help="maximum allowed fractional drop vs the best "
                         "recorded row (default 0.2 = 20%%)")
    args = ap.parse_args(argv)
    return check(read_history(Path(args.history)), args.max_drop)


if __name__ == "__main__":
    sys.exit(main())
