#!/usr/bin/env python
"""Calibration feedback: model outputs vs. the paper's headline targets.

Run after changing calibration constants or app kernels:

    python scripts/calibrate.py
"""

import sys

from repro.machine import (
    A100_40GB,
    EPYC_7V73X,
    XEON_8360Y,
    XEON_MAX_9480,
    Compiler,
    Parallelization,
    RunConfig,
    structured_config_sweep,
    unstructured_config_sweep,
)
from repro.harness.runner import best_run, run_application

APPS_S = ["cloverleaf2d", "cloverleaf3d", "opensbli_sa", "opensbli_sn", "acoustic", "miniweather"]
APPS_U = ["mgcfd", "volna"]

#: (vs-8360Y speedup, vs-EPYC speedup, effBW % of STREAM on MAX, A100/MAX)
TARGETS = {
    "cloverleaf2d": (4.2, None, 75, 1.1),
    "cloverleaf3d": (4.3, None, 67, 1.1),
    "opensbli_sa": (3.8, None, 67, 1.2),
    "opensbli_sn": (2.5, None, 53, 1.7),
    "acoustic": (1.98, None, 41, 2.0),
    "miniweather": (None, None, None, None),
    "mgcfd": (2.5, 2.0, None, None),
    "volna": (2.0, None, None, 1.8),
    "minibude": (1.9, 1.36, None, None),
}


def main() -> int:
    best = {}
    for name in APPS_S + APPS_U + ["minibude"]:
        row = {}
        for p in (XEON_MAX_9480, XEON_8360Y, EPYC_7V73X):
            sw = unstructured_config_sweep(p) if name in APPS_U else structured_config_sweep(p)
            row[p.short_name] = best_run(name, p, sw)
        row["a100"] = (None, run_application(
            name, A100_40GB, RunConfig(Compiler.NVCC, Parallelization.CUDA)))
        best[name] = row

    hdr = (f"{'app':14s} {'MAX t':>8s} {'vsICX':>6s} {'tgt':>5s} {'vsEPYC':>7s} {'tgt':>5s} "
           f"{'A100/MAX':>8s} {'tgt':>5s} {'BW%MAX':>7s} {'tgt':>4s} {'BW%ICX':>7s} {'BW%EPYC':>8s} {'mpi%':>5s}")
    print(hdr)
    for name, row in best.items():
        m = row["max9480"][1]
        i = row["icx8360y"][1]
        e = row["epyc7v73x"][1]
        a = row["a100"][1]
        t = TARGETS[name]

        def fmt(v, target):
            return f"{v:6.2f} {'-' if target is None else f'{target:5.2f}'}"

        print(f"{name:14s} {m.total_time:8.2f} "
              f"{fmt(i.total_time / m.total_time, t[0])} "
              f"{fmt(e.total_time / m.total_time, t[1])} "
              f"{fmt(m.total_time / a.total_time, t[3]):>10s} "
              f"{m.effective_bandwidth / XEON_MAX_9480.stream_bandwidth * 100:7.1f} "
              f"{'-' if t[2] is None else t[2]:>4} "
              f"{i.effective_bandwidth / XEON_8360Y.stream_bandwidth * 100:7.1f} "
              f"{e.effective_bandwidth / EPYC_7V73X.stream_bandwidth * 100:8.1f} "
              f"{m.mpi_fraction * 100:5.1f}")
    tf = best["minibude"]["max9480"][1].achieved_flops / 1e12
    print(f"\nminibude on MAX: {tf:.2f} TFLOPS (target 6), "
          f"best config: {best['minibude']['max9480'][0].label()}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
