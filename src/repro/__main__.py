"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``list``
    Show the applications and platforms.
``run APP [--platform P] [--config auto|best] [--compare]``
    Model one application (best configuration by default).
``trace APP [--platform P] [-o trace.json] [--iterations N] [--csv]``
    Trace one modeled run and export a Chrome trace-event JSON
    (``chrome://tracing`` / Perfetto) plus the per-kernel breakdown.
``figures [figN ...] [--jobs N] [--no-cache]``
    Regenerate the paper's figures (all by default) through the sweep
    engine.
``sweep [APP ...] [--platform P[,P...]|all] [--jobs N] [--no-cache]``
    Evaluate full configuration sweeps through the engine and print the
    per-configuration table plus cache/executor metrics.
``validate APP``
    Execute the application's numerics at test scale and print its
    invariant diagnostics.
``metrics [APP ...] [--platform P] [--format prometheus|json] [-o FILE]``
    Run configuration sweeps with the metrics registry installed and
    export every counter/gauge/histogram (Prometheus text or JSON).
``fidelity [figN ...] [-o scorecard.md] [--json]``
    Score the model against every published reference value per figure
    (signed relative error, rank agreement, pass/fail verdicts).
``drift --check|--update``
    Compare the fidelity scorecard against ``baselines/fidelity.json``
    (``--check``, exits 1 on regression) or re-record it (``--update``).
``explain APP [--platform P] [--vs Q] [--what-if KNOB=FACTOR ...] [--json]``
    Decompose an application's best-run estimate into its additive
    attribution tree; with ``--vs`` diff two platforms and rank the
    contributors to the delta; ``--what-if`` projects perturbed limbs
    (e.g. ``dram_bw=2.0``, ``mpi_wait=inf``).
``report [-o report.html] [--format html|md]``
    Write the complete reproduction report — figures, fidelity
    scorecard, per-app timelines, attribution and diffs — as one
    self-contained HTML file (or the classic markdown).

Application names may be abbreviated to any unambiguous prefix
(``mgcfd``, ``volna``); an ambiguous prefix like ``cloverleaf`` resolves
to the first match in the canonical order with a note on stderr.
Platform names accept any prefix or substring (``8360y`` →
``icx8360y``) under the same rules.  Unknown application or platform
names exit with status 2 and a message listing the valid choices.
"""

from __future__ import annotations

import argparse
import sys

from .apps import APP_ORDER, get_app
from .engine import build_plan, configure_engine, default_engine
from .harness import all_figures, best_run, run_application
from .harness import figures as figmod
from .machine import (
    A100_40GB,
    ALL_PLATFORMS,
    Compiler,
    Parallelization,
    RunConfig,
    get_platform,
    structured_config_sweep,
    unstructured_config_sweep,
)


def _resolve_app(name: str) -> str | None:
    """Canonical application name for ``name`` (exact or prefix match);
    None — with a stderr message listing the choices — when unknown."""
    if name in APP_ORDER:
        return name
    matches = [a for a in APP_ORDER if a.startswith(name)]
    if not matches:
        print(f"unknown application {name!r} "
              f"(choose from: {', '.join(APP_ORDER)})", file=sys.stderr)
        return None
    if len(matches) > 1:
        print(f"note: {name!r} is ambiguous ({', '.join(matches)}); "
              f"using {matches[0]!r}", file=sys.stderr)
    return matches[0]


def _get_platform(short_name: str):
    """Platform spec for ``short_name`` (exact, prefix, or substring
    match — ``8360y`` resolves to ``icx8360y``); None — with a stderr
    message listing the choices — when unknown."""
    names = [p.short_name for p in ALL_PLATFORMS]
    try:
        return get_platform(short_name)
    except KeyError:
        pass
    matches = [n for n in names if n.startswith(short_name)]
    if not matches:
        matches = [n for n in names if short_name in n]
    if not matches:
        print(f"unknown platform {short_name!r} "
              f"(choose from: {', '.join(names)})", file=sys.stderr)
        return None
    if len(matches) > 1:
        print(f"note: {short_name!r} is ambiguous ({', '.join(matches)}); "
              f"using {matches[0]!r}", file=sys.stderr)
    return get_platform(matches[0])


def cmd_list(_args) -> int:
    print("applications:")
    for name in APP_ORDER:
        d = get_app(name)
        print(f"  {name:14s} {d.description}")
    print("\nplatforms:")
    for p in ALL_PLATFORMS:
        print(f"  {p.short_name:10s} {p.name} — "
              f"{p.total_cores} cores, {p.stream_bandwidth / 1e9:.0f} GB/s STREAM")
    from .obs.fidelity import FIGURE_ORDER

    print("\nfigures (accepted by figures/fidelity/drift):")
    for fig in FIGURE_ORDER:
        doc = (getattr(figmod, fig).__doc__ or "").strip().splitlines()[0]
        print(f"  {fig:10s} {doc}")
    return 0


def _sweep(defn, platform):
    if platform.kind.value == "gpu":
        return [RunConfig(Compiler.NVCC, Parallelization.CUDA)]
    return (structured_config_sweep(platform) if defn.structured
            else unstructured_config_sweep(platform))


def cmd_run(args) -> int:
    name = _resolve_app(args.app)
    if name is None:
        return 2
    defn = get_app(name)
    if args.compare:
        platforms = list(ALL_PLATFORMS)
    else:
        platform = _get_platform(args.platform)
        if platform is None:
            return 2
        platforms = [platform]
    print(f"{defn.name}: {defn.description}")
    print(f"paper scale: {defn.paper_domain} x {defn.paper_iterations} iterations\n")
    for platform in platforms:
        cfg, est = best_run(name, platform, _sweep(defn, platform))
        print(f"{platform.short_name:10s} {est.total_time:9.3f} s  "
              f"effBW {est.effective_bandwidth / 1e9:6.0f} GB/s  "
              f"MPI {est.mpi_fraction * 100:4.1f}%  [{cfg.label()}]")
    return 0


def cmd_trace(args) -> int:
    name = _resolve_app(args.app)
    if name is None:
        return 2
    platform = _get_platform(args.platform)
    if platform is None:
        return 2
    from .harness import render_breakdown, trace_application
    from .obs import breakdown_csv, check_nesting, summary_dict, write_chrome_trace

    est, tracer = trace_application(name, platform, iterations=args.iterations)
    check_nesting(tracer)
    path = write_chrome_trace(tracer, args.output)
    if args.csv:
        print(breakdown_csv(est), end="")
    else:
        print(render_breakdown(summary_dict(est)))
    print(f"trace: {len(tracer.spans)} spans, {len(tracer.events)} events "
          f"-> {path} (load in chrome://tracing or https://ui.perfetto.dev)",
          file=sys.stderr)
    return 0


def _configure_engine(args):
    """Apply --jobs/--no-cache to the process-default engine."""
    kwargs = {}
    if getattr(args, "jobs", None) is not None:
        kwargs["workers"] = args.jobs
    if getattr(args, "no_cache", False):
        kwargs["use_cache"] = False
    if kwargs:
        return configure_engine(**kwargs)
    return default_engine()


def cmd_figures(args) -> int:
    _configure_engine(args)
    wanted = args.figures or [f"fig{i}" for i in range(1, 10)]
    for name in wanted:
        fn = getattr(figmod, name, None)
        if fn is None:
            print(f"unknown figure {name!r} (fig1..fig9)", file=sys.stderr)
            return 2
        print(fn().render())
        print()
    return 0


def cmd_sweep(args) -> int:
    engine = _configure_engine(args)
    apps = []
    for a in args.apps or APP_ORDER:
        resolved = _resolve_app(a)
        if resolved is None:
            return 2
        apps.append(resolved)
    if args.platform == "all":
        platforms = list(ALL_PLATFORMS)
    else:
        platforms = []
        for p in args.platform.split(","):
            platform = _get_platform(p)
            if platform is None:
                return 2
            platforms.append(platform)
    plan = build_plan(apps, platforms)
    print(f"sweep: {len(apps)} apps x {len(platforms)} platforms -> "
          f"{len(plan)} jobs ({len(plan.skipped)} planned-infeasible)")
    results = engine.run_plan(plan)
    rows = [r for r in results if r.status != "skipped"]
    rows.sort(key=lambda r: (r.job.app, r.job.platform.short_name,
                             r.estimate.total_time if r.estimate else float("inf")))
    print(f"{'app':14s} {'platform':10s} {'time s':>9s} {'effBW GB/s':>10s} "
          f"{'source':>6s}  configuration")
    for r in rows:
        if r.estimate is None:
            print(f"{r.job.app:14s} {r.job.platform.short_name:10s} "
                  f"{'-':>9s} {'-':>10s} {r.status:>6s}  "
                  f"{r.job.config.label()}  ({r.reason})")
            continue
        print(f"{r.job.app:14s} {r.job.platform.short_name:10s} "
              f"{r.estimate.total_time:9.3f} "
              f"{r.estimate.effective_bandwidth / 1e9:10.0f} "
              f"{r.status:>6s}  {r.job.config.label()}")
    print()
    print(engine.metrics.summary())
    if engine.store.persistent:
        print(f"store: {len(engine.store)} results at {engine.store.path}")
    return 0


def cmd_metrics(args) -> int:
    from .obs.metrics import collecting, prometheus_text, snapshot

    engine = _configure_engine(args)
    apps = []
    for a in args.apps or APP_ORDER:
        resolved = _resolve_app(a)
        if resolved is None:
            return 2
        apps.append(resolved)
    platform = _get_platform(args.platform)
    if platform is None:
        return 2
    with collecting() as registry:
        plan = build_plan(apps, [platform])
        engine.run_plan(plan)
        if args.format == "prometheus":
            text = prometheus_text(registry)
        else:
            import json as _json

            text = _json.dumps(snapshot(registry), indent=2, sort_keys=True) + "\n"
    if args.output:
        from pathlib import Path

        Path(args.output).write_text(text)
        print(f"metrics: {len(registry)} samples across "
              f"{len(registry.names())} families -> {args.output}",
              file=sys.stderr)
    else:
        print(text, end="")
    return 0


def _resolve_figures(names: list[str]) -> list[str] | None:
    """Validate figure names; None — with a stderr message listing the
    choices — when any is unknown (same contract as ``_resolve_app``)."""
    from .obs.fidelity import FIGURE_ORDER

    out = []
    for name in names:
        if name not in FIGURE_ORDER:
            print(f"unknown figure {name!r} "
                  f"(choose from: {', '.join(FIGURE_ORDER)})", file=sys.stderr)
            return None
        out.append(name)
    return out


def cmd_fidelity(args) -> int:
    from .obs.fidelity import scorecard

    _configure_engine(args)
    figures = _resolve_figures(args.figures)
    if figures is None:
        return 2
    card = scorecard(figures or None)
    if args.json:
        import json as _json

        text = _json.dumps(card.as_dict(), indent=2, sort_keys=True) + "\n"
    else:
        text = card.to_markdown()
    if args.output:
        from pathlib import Path

        Path(args.output).write_text(text)
        n = sum(len(s.entries) for s in card.scores)
        print(f"fidelity: {len(card.scores)} figures, {n} reference values "
              f"-> {args.output}", file=sys.stderr)
    else:
        print(text, end="")
    return 0 if card.passed else 1


def cmd_drift(args) -> int:
    from pathlib import Path

    from .obs.fidelity import (
        baseline_path, check_drift, load_baseline, save_baseline, scorecard,
    )

    _configure_engine(args)
    path = Path(args.baseline) if args.baseline else baseline_path()
    card = scorecard()
    if args.update:
        out = save_baseline(card, path)
        print(f"drift baseline recorded for {len(card.scores)} figures -> {out}")
        return 0
    baseline = load_baseline(path)
    if baseline is None:
        print(f"no drift baseline at {path}; run "
              "'python -m repro drift --update' first", file=sys.stderr)
        return 2
    problems = check_drift(card, baseline)
    if problems:
        print(f"drift check FAILED ({len(problems)} regressions):")
        for p in problems:
            print(f"  - {p}")
        return 1
    worst = max(s.max_abs_rel_err for s in card.scores)
    print(f"drift check passed: {len(card.scores)} figures within baseline "
          f"(worst |rel err| {worst:.3f})")
    return 0


def _parse_what_if(specs: list[str]) -> dict[str, float] | None:
    """``KNOB=FACTOR`` pairs → dict; None — with a stderr message
    listing knobs — on an unknown knob or malformed factor."""
    from .obs.attribution import WHAT_IF_KNOBS

    knobs: dict[str, float] = {}
    for spec in specs:
        key, sep, val = spec.partition("=")
        if not sep:
            print(f"bad --what-if {spec!r} (expected KNOB=FACTOR)",
                  file=sys.stderr)
            return None
        if key not in WHAT_IF_KNOBS:
            print(f"unknown what-if knob {key!r} "
                  f"(choose from: {', '.join(WHAT_IF_KNOBS)})", file=sys.stderr)
            return None
        try:
            factor = float(val)
        except ValueError:
            print(f"bad --what-if factor {val!r} for {key!r} "
                  f"(a float, or 'inf' to zero the leaves)", file=sys.stderr)
            return None
        if not factor > 0:
            print(f"--what-if factor for {key!r} must be > 0 (got {val})",
                  file=sys.stderr)
            return None
        knobs[key] = factor
    return knobs


def _print_tree(tree) -> None:
    root = tree.seconds or 1.0
    for depth, node in tree.walk():
        pct = node.seconds / root * 100
        extra = ""
        if node.kind == "loop":
            extra = f"  [{node.meta.get('bottleneck')}-bound]"
        print(f"  {'  ' * depth}{node.name:<{max(28 - 2 * depth, 8)}} "
              f"{node.seconds:12.4g} s  {pct:5.1f}%{extra}")


def cmd_explain(args) -> int:
    _configure_engine(args)
    name = _resolve_app(args.app)
    if name is None:
        return 2
    platform = _get_platform(args.platform)
    if platform is None:
        return 2
    knobs = _parse_what_if(args.what_if or [])
    if knobs is None:
        return 2
    other = None
    if args.vs:
        other = _get_platform(args.vs)
        if other is None:
            return 2

    from .harness import best_attribution
    from .obs.diff import diff_trees, project

    cfg, est, tree = best_attribution(name, platform)
    diff = None
    if other is not None:
        _cfg_b, _est_b, tree_b = best_attribution(name, other)
        diff = diff_trees(tree, tree_b)
    projection = project(tree, knobs) if knobs else None

    if args.json:
        import json as _json

        payload = {"tree": tree.as_dict()}
        if diff is not None:
            payload["diff"] = diff.as_dict()
        if projection is not None:
            payload["what_if"] = {
                k: v for k, v in projection.items() if k != "tree"
            }
            payload["what_if"]["tree"] = projection["tree"].as_dict()
        print(_json.dumps(payload, indent=2, sort_keys=True))
        return 0

    print(f"{name} on {platform.short_name} [{cfg.label()}] — "
          f"{tree.seconds:.4g} s attributed:")
    _print_tree(tree)
    if diff is not None:
        print(f"\nvs {other.short_name}: {diff.total_a:.4g} s vs "
              f"{diff.total_b:.4g} s — {platform.short_name} is "
              f"{diff.speedup:.2f}x faster (delta {diff.delta:+.4g} s)")
        print("by kind:")
        for kind, delta in diff.by_kind():
            print(f"  {kind:16s} {delta:+12.4g} s")
        print("top contributors:")
        for c in diff.contributors[:8]:
            print(f"  {c.delta:+12.4g} s  {'/'.join(c.key):32s} {c.label}")
    if projection is not None:
        pretty = ", ".join(f"{k}={v:g}" for k, v in knobs.items())
        print(f"\nwhat-if [{pretty}]: {projection['baseline_seconds']:.4g} s "
              f"-> {projection['projected_seconds']:.4g} s "
              f"({projection['speedup']:.2f}x)")
    return 0


def cmd_report(args) -> int:
    _configure_engine(args)
    from .obs.htmlreport import write_report

    path = write_report(args.output, fmt=args.format)
    print(f"report: wrote {path} ({path.stat().st_size:,} bytes, "
          f"self-contained)", file=sys.stderr)
    return 0


def cmd_validate(args) -> int:
    name = _resolve_app(args.app)
    if name is None:
        return 2
    defn = get_app(name)
    ctx = defn.make_context()
    diag = defn.run(ctx, defn.test_domain, defn.test_iterations)
    print(f"{defn.name} at {defn.test_domain} x {defn.test_iterations}:")
    for key, val in diag.items():
        if hasattr(val, "shape"):
            print(f"  {key}: array{tuple(val.shape)}")
        elif isinstance(val, list) and len(val) > 6:
            print(f"  {key}: [{val[0]:.4g} ... {val[-1]:.4g}] ({len(val)} entries)")
        elif isinstance(val, dict):
            print(f"  {key}: {{{', '.join(val)}}}")
        else:
            print(f"  {key}: {val}")
    recs = getattr(ctx, "records", {})
    print(f"  loops: {len(recs)} distinct, "
          f"{sum(r.calls for r in recs.values())} launches")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Xeon CPU MAX bandwidth-bound application study, reproduced",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list applications and platforms")

    p_run = sub.add_parser("run", help="model one application")
    p_run.add_argument("app", help="application name (any unambiguous prefix)")
    p_run.add_argument("--platform", default="max9480",
                       help="platform short name (default max9480)")
    p_run.add_argument("--compare", action="store_true",
                       help="run on every platform")

    p_trace = sub.add_parser(
        "trace", help="trace one modeled run and export a Chrome trace")
    p_trace.add_argument("app", help="application name (any unambiguous prefix)")
    p_trace.add_argument("--platform", default="max9480",
                         help="platform short name (default max9480)")
    p_trace.add_argument("-o", "--output", default="trace.json",
                         help="Chrome trace-event JSON path (default trace.json)")
    p_trace.add_argument("--iterations", type=int, default=1,
                         help="timeline iterations to lay out (default 1)")
    p_trace.add_argument("--csv", action="store_true",
                         help="print the per-kernel breakdown as CSV "
                              "instead of a table")

    p_fig = sub.add_parser("figures", help="regenerate paper figures")
    p_fig.add_argument("figures", nargs="*", help="fig1 .. fig9 (default: all)")
    p_fig.add_argument("--jobs", type=int, default=None,
                       help="parallel sweep workers (default serial)")
    p_fig.add_argument("--no-cache", action="store_true",
                       help="bypass the persistent result store")

    p_sweep = sub.add_parser(
        "sweep", help="evaluate configuration sweeps through the engine")
    # No argparse `choices` here: with nargs="*" Python <3.12 validates
    # the empty default against them and rejects it; cmd_sweep validates.
    p_sweep.add_argument("apps", nargs="*", metavar="APP",
                         help=f"applications (default: all of {', '.join(APP_ORDER)})")
    p_sweep.add_argument("--platform", default="max9480",
                         help="comma-separated platform short names, or 'all'")
    p_sweep.add_argument("--jobs", type=int, default=None,
                         help="parallel sweep workers (default serial)")
    p_sweep.add_argument("--no-cache", action="store_true",
                         help="bypass the persistent result store")

    p_val = sub.add_parser("validate", help="run an app's numerics at test scale")
    p_val.add_argument("app", help="application name (any unambiguous prefix)")

    p_met = sub.add_parser(
        "metrics", help="run sweeps with the metrics registry and export it")
    p_met.add_argument("apps", nargs="*", metavar="APP",
                       help=f"applications (default: all of {', '.join(APP_ORDER)})")
    p_met.add_argument("--platform", default="max9480",
                       help="platform short name (default max9480)")
    p_met.add_argument("--format", choices=("prometheus", "json"),
                       default="prometheus",
                       help="export format (default prometheus text)")
    p_met.add_argument("-o", "--output", default=None,
                       help="write the export to a file instead of stdout")
    p_met.add_argument("--jobs", type=int, default=None,
                       help="parallel sweep workers (default serial)")
    p_met.add_argument("--no-cache", action="store_true",
                       help="bypass the persistent result store")

    p_fid = sub.add_parser(
        "fidelity", help="score the model against the paper's values")
    p_fid.add_argument("figures", nargs="*", metavar="FIG",
                       help="fig1 .. fig9 (default: all)")
    p_fid.add_argument("-o", "--output", default=None,
                       help="write the scorecard to a file instead of stdout")
    p_fid.add_argument("--json", action="store_true",
                       help="emit JSON instead of markdown")
    p_fid.add_argument("--jobs", type=int, default=None,
                       help="parallel sweep workers (default serial)")
    p_fid.add_argument("--no-cache", action="store_true",
                       help="bypass the persistent result store")

    p_exp = sub.add_parser(
        "explain", help="attribute an estimate's seconds and diff platforms")
    p_exp.add_argument("app", help="application name (any unambiguous prefix)")
    p_exp.add_argument("--platform", default="max9480",
                       help="platform short name, prefix or substring "
                            "(default max9480)")
    p_exp.add_argument("--vs", default=None, metavar="PLATFORM",
                       help="second platform to diff against "
                            "(ranked contributors to the delta)")
    p_exp.add_argument("--what-if", action="append", default=None,
                       metavar="KNOB=FACTOR",
                       help="project a perturbed limb, e.g. dram_bw=2.0 or "
                            "mpi_wait=inf (repeatable)")
    p_exp.add_argument("--json", action="store_true",
                       help="emit the tree/diff/projection as JSON")
    p_exp.add_argument("--jobs", type=int, default=None,
                       help="parallel sweep workers (default serial)")
    p_exp.add_argument("--no-cache", action="store_true",
                       help="bypass the persistent result store")

    p_rep = sub.add_parser(
        "report", help="write the self-contained HTML (or markdown) report")
    p_rep.add_argument("-o", "--output", default="report.html",
                       help="output path (default report.html; a .md suffix "
                            "selects markdown)")
    p_rep.add_argument("--format", choices=("html", "md"), default=None,
                       help="force the format (default: from the suffix)")
    p_rep.add_argument("--jobs", type=int, default=None,
                       help="parallel sweep workers (default serial)")
    p_rep.add_argument("--no-cache", action="store_true",
                       help="bypass the persistent result store")

    p_drift = sub.add_parser(
        "drift", help="gate the fidelity scorecard against its baseline")
    mode = p_drift.add_mutually_exclusive_group(required=True)
    mode.add_argument("--check", action="store_true",
                      help="fail (exit 1) if any figure drifted past baseline")
    mode.add_argument("--update", action="store_true",
                      help="re-record baselines/fidelity.json from this run")
    p_drift.add_argument("--baseline", default=None,
                         help="baseline JSON path (default baselines/fidelity.json)")
    p_drift.add_argument("--jobs", type=int, default=None,
                         help="parallel sweep workers (default serial)")
    p_drift.add_argument("--no-cache", action="store_true",
                         help="bypass the persistent result store")

    args = parser.parse_args(argv)
    return {"list": cmd_list, "run": cmd_run, "trace": cmd_trace,
            "figures": cmd_figures, "sweep": cmd_sweep,
            "validate": cmd_validate, "metrics": cmd_metrics,
            "fidelity": cmd_fidelity, "drift": cmd_drift,
            "explain": cmd_explain, "report": cmd_report}[args.command](args)


if __name__ == "__main__":
    sys.exit(main())
