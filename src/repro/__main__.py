"""Command-line entry point: ``python -m repro <command>``.

The implementation lives in :mod:`repro.cli` (one module per verb
group); this module remains the executable entry and the import site of
the ``repro`` console script.
"""

from __future__ import annotations

import sys

from .cli import main

__all__ = ["main"]

if __name__ == "__main__":
    sys.exit(main())
