"""The sweep engine: cached, parallel evaluation of model sweeps.

:class:`SweepEngine` owns the per-process application-spec and
memory-hierarchy caches, the persistent :class:`~repro.engine.store.
ResultStore`, the parallel executor, and an :class:`~repro.engine.
metrics.EngineMetrics` instance.  Every sweep in the repository — the
figure harnesses, the benchmark suite, ``python -m repro sweep`` — runs
through one of these; :mod:`repro.harness.runner` keeps the classic
``run_application``/``sweep``/``best_run`` functions as thin wrappers
over the process-default engine.

Evaluation of one job:

1. profile-or-fetch the :class:`AppSpec` (in-process cache; profiling
   runs the real numerics at test scale, so it is done once per app);
2. compute the content address from the spec fingerprint, platform,
   config, and model version, and consult the store;
3. on a miss, evaluate the roofline model and persist the estimate.

``run_plan`` prebuilds every spec and hierarchy model serially before
fanning estimate jobs out to the executor, so worker threads only ever
read warm caches — which is what makes a parallel sweep bit-identical
to the serial one.

Cold evaluation is vectorized by default: ``run_plan`` looks every job
up in the store first, then hands all misses to
:class:`repro.vec.evaluate.VecEvaluator` as one batch (bit-for-bit
identical to the scalar path — see ``docs/VECTOR.md``).  The per-job
scalar path is used instead only when ``REPRO_NO_VEC``/``--no-vec``/
``vectorize=False`` opts out, and for any job the vectorized path
declines (returned as ``None`` from the batch).  Tracing and session
metrics ride the vectorized path: the batched evaluator synthesizes
the scalar span/metric taxonomy from its batch columns
(``docs/OBSERVABILITY.md`` "Observing the fast path").
"""

from __future__ import annotations

import os
import threading
from pathlib import Path
from typing import Callable

from ..apps.base import build_spec, get_app
from ..machine.config import RunConfig, check_feasible
from ..machine.spec import PlatformSpec
from ..mem.hierarchy import HierarchyModel
from ..obs.tracer import active_tracer
from ..perfmodel import calibration as cal
from ..perfmodel.kernelmodel import AppSpec
from ..perfmodel.roofline import AppEstimate, estimate_app
from .executor import DEFAULT_CHUNK_SIZE, run_jobs
from .jobs import Job, JobPlan, JobResult, build_plan, sweep_plan
from .metrics import EngineMetrics
from .store import ResultStore, result_key

__all__ = [
    "SweepEngine",
    "default_engine",
    "configure_engine",
    "reset_engine",
    "default_cache_dir",
]

#: Set ``REPRO_CACHE_DIR`` to relocate the persistent store, or to the
#: empty string to disable persistence entirely.
CACHE_DIR_ENV = "REPRO_CACHE_DIR"
#: Default worker count for parallel sweeps (serial when unset).
JOBS_ENV = "REPRO_JOBS"
#: Set (to any non-empty value) to disable the vectorized cold path and
#: evaluate every job through the per-job scalar path (``--no-vec``).
NO_VEC_ENV = "REPRO_NO_VEC"


def default_cache_dir() -> Path | None:
    env = os.environ.get(CACHE_DIR_ENV)
    if env is not None:
        return Path(env) if env else None
    return Path.home() / ".cache" / "repro"


def _default_workers() -> int:
    try:
        return int(os.environ.get(JOBS_ENV, "1"))
    except ValueError:
        return 1


class SweepEngine:
    """Cached, optionally parallel evaluator of model sweeps.

    Parameters
    ----------
    cache_dir:
        Directory of the persistent result store; default from
        ``$REPRO_CACHE_DIR`` (falling back to ``~/.cache/repro``).
    workers:
        Parallel worker threads for plan execution (1 = serial,
        negative = one per CPU); default from ``$REPRO_JOBS``.
    use_cache:
        ``False`` bypasses the persistent store completely — every job
        is evaluated fresh and nothing is written.
    vectorize:
        ``False`` forces the per-job scalar path for plan execution;
        the default (``None``) reads ``$REPRO_NO_VEC`` (vectorized
        unless set).  Tracers and session metric registries observe
        the vectorized path directly — they no longer force scalar.
    progress:
        Optional ``progress(done, total, job, result)`` callback fired
        per completed job.
    """

    def __init__(
        self,
        cache_dir: str | os.PathLike | None = None,
        *,
        store: ResultStore | None = None,
        workers: int | None = None,
        use_cache: bool = True,
        vectorize: bool | None = None,
        chunk_size: int = DEFAULT_CHUNK_SIZE,
        progress: Callable[[int, int, Job, JobResult], None] | None = None,
    ):
        if store is None:
            store = ResultStore(
                cache_dir if cache_dir is not None else default_cache_dir()
            )
        self.store = store
        self.workers = _default_workers() if workers is None else workers
        self.use_cache = use_cache
        if vectorize is None:
            vectorize = not os.environ.get(NO_VEC_ENV)
        self.vectorize = vectorize
        self.last_evaluator = "scalar"  # path of the most recent run_plan
        self._vec = None  # lazy VecEvaluator (skipped entirely under --no-vec)
        self.chunk_size = chunk_size
        self.progress = progress
        self.metrics = EngineMetrics()
        # Optional TelemetrySampler poked at plan boundaries so long
        # multi-plan runs (figures, fidelity) sample between plans even
        # without the thread.  None (the default) costs one attribute
        # check per plan — never per job.
        self.sampler = None
        self._specs: dict[str, AppSpec] = {}
        self._hierarchies: dict[str, HierarchyModel] = {}
        self._platform_fps: dict[str, str] = {}  # short_name -> fingerprint
        self._spec_fps: dict[str, str] = {}  # app name -> spec fingerprint
        self._build_lock = threading.Lock()

    # ---- cached inputs ---------------------------------------------------

    def app_spec(self, name: str) -> AppSpec:
        """The (cached) paper-scale model spec of an application."""
        if name not in self._specs:
            with self._build_lock:
                if name not in self._specs:
                    self._specs[name] = build_spec(get_app(name))
                    self.metrics.count("spec_builds")
        return self._specs[name]

    def hierarchy(self, platform: PlatformSpec) -> HierarchyModel:
        if platform.short_name not in self._hierarchies:
            with self._build_lock:
                if platform.short_name not in self._hierarchies:
                    self._hierarchies[platform.short_name] = HierarchyModel(
                        platform, utilization=cal.CACHE_UTILIZATION
                    )
        return self._hierarchies[platform.short_name]

    def clear(self, store: bool = True) -> None:
        """Forget the profiled specs and hierarchy models; with
        ``store=True`` also wipe the persistent result store, so the next
        evaluation reruns the full pipeline (hermetic-test reset)."""
        with self._build_lock:
            self._specs.clear()
            self._hierarchies.clear()
            self._spec_fps.clear()
        if store:
            self.store.clear()

    # ---- single-point evaluation ----------------------------------------

    def result_address(
        self, name: str, platform: PlatformSpec, config: RunConfig
    ) -> str:
        """Content address of one (app, platform, config) point under the
        current model version — the key the store files its estimate
        under.  Fingerprints are memoized per engine, so hot callers
        (the serve layer shards sweep plans by this key) pay one dict
        lookup per component."""
        pfp = self._platform_fps.get(platform.short_name)
        if pfp is None:
            from .store import fingerprint as _fp

            pfp = self._platform_fps[platform.short_name] = _fp(platform)
        afp = self._spec_fps.get(name)
        if afp is None:
            afp = self._spec_fps[name] = self.app_spec(name).fingerprint()
        return result_key(afp, platform, config, platform_fingerprint=pfp)

    def _estimate(
        self, name: str, platform: PlatformSpec, config: RunConfig
    ) -> tuple[AppEstimate, bool]:
        """(estimate, was_cached) for one runnable point."""
        spec = self.app_spec(name)
        key = None
        if self.use_cache:
            key = self.result_address(name, platform, config)
            cached = self.store.get(key)
            if cached is not None:
                self.metrics.count("cache_hits")
                return cached, True
            self.metrics.count("cache_misses")
        est = estimate_app(spec, platform, config, self.hierarchy(platform))
        self.metrics.count("evaluations")
        if key is not None:
            self.store.put(key, est)
        return est, False

    def run(
        self, name: str, platform: PlatformSpec, config: RunConfig
    ) -> AppEstimate:
        """Estimate one run; raises ``ValueError`` for infeasible configs
        or compilers the app does not run under (the classic
        ``run_application`` contract)."""
        check_feasible(config, platform)
        if self.app_spec(name).affinity(config.compiler) <= 0.0:
            raise ValueError(
                f"{name} does not run under {config.compiler.value} "
                "(the paper reports the generated code stalls)"
            )
        return self._estimate(name, platform, config)[0]

    def evaluate(self, job: Job) -> JobResult:
        """Evaluate one planned job, capturing failures as results."""
        import time

        t0 = time.perf_counter()
        try:
            est, cached = self._estimate(job.app, job.platform, job.config)
        except Exception as exc:  # surfaced in the plan results, not raised
            self.metrics.count("jobs_failed")
            result = JobResult(job, None, "error", reason=str(exc),
                               duration=time.perf_counter() - t0)
        else:
            dt = time.perf_counter() - t0
            self.metrics.count("jobs_executed")
            self.metrics.add_job_time(dt)
            result = JobResult(job, est, "cached" if cached else "ok", duration=dt)
        tracer = active_tracer()
        if tracer is not None:
            tracer.wall_span(
                "engine",
                f"{job.app}@{job.platform.short_name}",
                t0,
                t0 + result.duration,
                track=("engine", threading.current_thread().name),
                status=result.status,
                config=job.config.label(),
            )
        return result

    # ---- batched (vectorized) evaluation ---------------------------------

    def _use_vectorized(self) -> bool:
        """Whether plan execution takes the batched path right now.

        The only opt-outs are the documented explicit ones —
        ``REPRO_NO_VEC`` / ``--no-vec`` / ``vectorize=False``.  An
        active tracer or session metrics registry no longer declines
        vectorization: the batched evaluator records its own wall spans
        and synthesizes the scalar path's per-job attribution from the
        batch columns (``repro.vec.evaluate``), so the observed path is
        the fast path.
        """
        return self.vectorize

    def lookup(self, job: Job) -> JobResult | None:
        """Store-only probe of one job: the cached result, or ``None``
        on a miss (the caller then batches the miss).  Used by the
        vectorized plan path and by the serve shards, which keep LRU
        affinity by doing their own lookups before batching."""
        if not self.use_cache:
            return None
        import time

        t0 = time.perf_counter()
        try:
            key = self.result_address(job.app, job.platform, job.config)
            cached = self.store.get(key)
        except Exception:
            return None  # let the evaluation path surface the failure
        if cached is None:
            return None
        dt = time.perf_counter() - t0
        self.metrics.count("cache_hits")
        self.metrics.count("jobs_executed")
        self.metrics.add_job_time(dt)
        tracer = active_tracer()
        if tracer is not None:
            tracer.wall_span(
                "engine",
                f"{job.app}@{job.platform.short_name}",
                t0,
                t0 + dt,
                track=("engine", threading.current_thread().name),
                status="cached",
                config=job.config.label(),
            )
        return JobResult(job, cached, "cached", duration=dt)

    def evaluate_batch(self, jobs: list[Job]) -> list[JobResult]:
        """Evaluate jobs as one vectorized batch (no store lookups —
        call :meth:`lookup` first).  Jobs the vectorized path declines
        fall back to :meth:`evaluate` individually, so error capture
        and counters match the scalar path exactly."""
        import time

        if not jobs:
            return []
        if self._vec is None:
            from ..vec import VecEvaluator

            self._vec = VecEvaluator()
        t0 = time.perf_counter()
        items = [
            (
                self.app_spec(job.app),
                job.platform,
                job.config,
                self.hierarchy(job.platform),
            )
            for job in jobs
        ]
        estimates = self._vec.evaluate_many(items)
        per = (time.perf_counter() - t0) / len(jobs)
        self.metrics.count("vec_batches")
        tracer = active_tracer()
        thread_name = threading.current_thread().name
        results: list[JobResult] = []
        n_vec = 0
        t_job = t0  # per-job spans tile the batch window, ``per`` each
        for job, est in zip(jobs, estimates):
            if est is None:
                results.append(self.evaluate(job))
                continue
            n_vec += 1
            if self.use_cache:
                self.store.put(
                    self.result_address(job.app, job.platform, job.config),
                    est,
                )
            if tracer is not None:
                tracer.wall_span(
                    "engine",
                    f"{job.app}@{job.platform.short_name}",
                    t_job,
                    t_job + per,
                    track=("engine", thread_name),
                    status="ok",
                    config=job.config.label(),
                )
                t_job += per
            results.append(JobResult(job, est, "ok", duration=per))
        # One counter update per batch, not per job — same totals as the
        # scalar path, without 3N mirrored registry increments.
        if n_vec:
            if self.use_cache:
                self.metrics.count("cache_misses", n_vec)
            self.metrics.count("evaluations", n_vec)
            self.metrics.count("jobs_executed", n_vec)
            self.metrics.add_job_time(per, n=n_vec)
        self.metrics.count("vec_jobs", n_vec)
        return results

    def _run_plan_vectorized(self, plan: JobPlan) -> list[JobResult]:
        """Lookup sweep, then one batched evaluation of all misses."""
        slots: list[JobResult | None] = [None] * len(plan.jobs)
        misses = []
        for i, job in enumerate(plan.jobs):
            res = self.lookup(job)
            if res is None:
                misses.append(i)
            else:
                slots[i] = res
        if misses:
            batch = self.evaluate_batch([plan.jobs[i] for i in misses])
            for i, res in zip(misses, batch):
                slots[i] = res
        if self.progress is not None:
            total = len(plan.jobs)
            for done, (job, res) in enumerate(zip(plan.jobs, slots), 1):
                self.progress(done, total, job, res)
        return slots

    # ---- plan execution --------------------------------------------------

    def run_plan(self, plan: JobPlan) -> list[JobResult]:
        """Execute a plan: specs first, then estimates (batched by
        default, per-job — parallel when ``workers > 1`` — otherwise).
        Returns one result per *runnable* job in plan order;
        planned-but-skipped jobs are appended with status
        ``"skipped"``."""
        use_vec = self._use_vectorized()
        self.last_evaluator = "vectorized" if use_vec else "scalar"
        with self.metrics.timed_run():
            # Spec-before-estimate: profile serially so the parallel
            # phase only reads caches.
            for name in plan.apps:
                self.app_spec(name)
            for platform in plan.platforms:
                self.hierarchy(platform)
            if use_vec:
                results = self._run_plan_vectorized(plan)
            else:
                results = run_jobs(
                    self.evaluate,
                    plan.jobs,
                    workers=self.workers,
                    chunk_size=self.chunk_size,
                    progress=self.progress,
                )
        self.metrics.count("jobs_skipped", len(plan.skipped))
        results.extend(
            JobResult(job, None, "skipped", reason=reason)
            for job, reason in plan.skipped
        )
        if self.sampler is not None:
            self.sampler.poke()
        return results

    # ---- sweep conveniences ----------------------------------------------

    def sweep(
        self, name: str, platform: PlatformSpec, configs: list[RunConfig]
    ) -> list[tuple[RunConfig, AppEstimate | None]]:
        """One row per input config, in order; ``None`` for configs the
        app cannot run."""
        return self.sweep_many([name], platform, configs)[name]

    def sweep_many(
        self, names: list[str], platform: PlatformSpec, configs: list[RunConfig]
    ) -> dict[str, list[tuple[RunConfig, AppEstimate | None]]]:
        """Sweep several apps over one config list as a single plan (one
        executor fan-out over the whole app x config matrix)."""
        plan = build_plan(names, [platform], configs)
        by_key = {r.job.key: r for r in self.run_plan(plan)}
        out: dict[str, list[tuple[RunConfig, AppEstimate | None]]] = {}
        for name in names:
            rows = []
            for cfg in configs:
                r = by_key.get((name, platform.short_name, cfg))
                rows.append((cfg, r.estimate if r is not None else None))
            out[name] = rows
        return out

    def best_run(
        self, name: str, platform: PlatformSpec, configs: list[RunConfig]
    ) -> tuple[RunConfig, AppEstimate]:
        """The fastest feasible configuration of a sweep."""
        runs = [(c, e) for c, e in self.sweep(name, platform, configs) if e is not None]
        if not runs:
            raise ValueError(
                f"{name} has no feasible configuration on {platform.name}"
            )
        return min(runs, key=lambda ce: ce[1].total_time)


# ---------------------------------------------------------------------------
# Process-default engine

_default: SweepEngine | None = None
_default_lock = threading.Lock()


def default_engine() -> SweepEngine:
    """The lazily created process-wide engine the harness wrappers use."""
    global _default
    if _default is None:
        with _default_lock:
            if _default is None:
                _default = SweepEngine()
    return _default


def configure_engine(**kwargs) -> SweepEngine:
    """Replace the process-default engine (CLI ``--jobs``/``--no-cache``)."""
    global _default
    with _default_lock:
        _default = SweepEngine(**kwargs)
    return _default


def reset_engine() -> None:
    """Drop the process-default engine; the next use builds a fresh one
    (re-reading the environment — used by tests to simulate a new
    process)."""
    global _default
    with _default_lock:
        _default = None
