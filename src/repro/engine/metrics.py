"""Engine counters and the end-of-sweep summary report.

One :class:`EngineMetrics` instance rides along with each
:class:`~repro.engine.core.SweepEngine`.  Since the
:mod:`repro.obs.metrics` registry landed, the counters themselves are
registry counters (named ``engine_<counter>_total``) held in a private
per-engine :class:`~repro.obs.metrics.MetricsRegistry`; attribute access
(``metrics.cache_hits``), :meth:`as_dict` and :meth:`summary` read from
it with byte-stable keys, so ``BENCH_sweep.json`` and the sweep CLI
footer keep their exact shape.  When a session registry is installed
via :func:`repro.obs.metrics.collecting`, every increment is mirrored
into it too (plus an ``engine_job_seconds`` duration histogram), which
is how ``python -m repro metrics`` surfaces engine activity alongside
the mem/simmpi/perfmodel/store counters.
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager

from ..obs.metrics import MetricsRegistry, active_metrics

__all__ = ["EngineMetrics"]

_COUNTERS = (
    "spec_builds",
    "evaluations",
    "cache_hits",
    "cache_misses",
    "jobs_executed",
    "jobs_skipped",
    "jobs_failed",
)

# Counters outside the pinned :meth:`EngineMetrics.as_dict` shape (the
# 11-key dict is part of the BENCH_sweep.json / CLI-footer surface).
# They are still registry counters, still mirrored into a session
# registry, and still readable as attributes.
_EXTRA_COUNTERS = (
    "vec_batches",  # batched (vectorized) evaluation passes
    "vec_jobs",  # jobs evaluated inside those passes
)


class EngineMetrics:
    """Thread-safe counters plus wall-time accounting for sweep runs.

    Counter storage is delegated to a private registry; ``wall_time``
    and ``job_time`` stay plain floats under the instance lock (they
    are aggregates of ``timed_run`` scopes, not monotone counters).
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.registry = MetricsRegistry()
        self.reset()

    def reset(self) -> None:
        self.registry.clear()
        with self._lock:
            self.wall_time = 0.0  # seconds inside run_plan
            self.job_time = 0.0  # summed per-job durations (all workers)

    def __getattr__(self, name: str) -> int:
        # Only reached when normal attribute lookup fails: the delegated
        # counters read straight from the registry.
        if name in _COUNTERS or name in _EXTRA_COUNTERS:
            return int(self.__dict__["registry"].value(f"engine_{name}_total"))
        raise AttributeError(
            f"{type(self).__name__!r} object has no attribute {name!r}"
        )

    def count(self, name: str, n: int = 1) -> None:
        if name not in _COUNTERS and name not in _EXTRA_COUNTERS:
            raise KeyError(f"unknown engine counter {name!r}")
        self.registry.inc(f"engine_{name}_total", n)
        session = active_metrics()
        if session is not None and session is not self.registry:
            session.inc(f"engine_{name}_total", n)

    def add_job_time(self, seconds: float, n: int = 1) -> None:
        """Record ``n`` jobs of ``seconds`` each (batched evaluation
        amortizes one wall reading over the whole batch)."""
        with self._lock:
            self.job_time += seconds * n
        session = active_metrics()
        if session is not None:
            session.inc("engine_job_seconds_total", seconds * n)
            for _ in range(n):
                session.observe("engine_job_seconds", seconds)

    @contextmanager
    def timed_run(self):
        """Accumulate the wall time of one plan execution."""
        t0 = time.perf_counter()
        try:
            yield
        finally:
            dt = time.perf_counter() - t0
            with self._lock:
                self.wall_time += dt
            session = active_metrics()
            if session is not None:
                session.inc("engine_wall_seconds_total", dt)
            from ..obs.tracer import active_tracer

            tracer = active_tracer()
            if tracer is not None:
                tracer.wall_event(
                    "engine", "plan:metrics", time.perf_counter(),
                    track=("engine", "dispatch"), **self.as_dict(),
                )

    # ---- derived ---------------------------------------------------------

    @property
    def jobs_total(self) -> int:
        return self.jobs_executed + self.jobs_skipped + self.jobs_failed

    @property
    def jobs_per_sec(self) -> float:
        return self.jobs_executed / self.wall_time if self.wall_time > 0 else 0.0

    @property
    def hit_rate(self) -> float:
        looked = self.cache_hits + self.cache_misses
        return self.cache_hits / looked if looked else 0.0

    def as_dict(self) -> dict:
        d = {name: getattr(self, name) for name in _COUNTERS}
        with self._lock:
            d["wall_time"] = self.wall_time
            d["job_time"] = self.job_time
        d["jobs_per_sec"] = self.jobs_per_sec
        d["hit_rate"] = self.hit_rate
        return d

    def summary(self) -> str:
        d = self.as_dict()
        return (
            "engine: {jobs_executed} jobs "
            "({cache_hits} cached, {evaluations} evaluated, "
            "{jobs_skipped} skipped, {jobs_failed} failed), "
            "{spec_builds} specs profiled, "
            "hit rate {hit_rate:.0%}, "
            "{wall_time:.2f} s wall ({jobs_per_sec:.1f} jobs/s)"
        ).format(**d)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<EngineMetrics {self.as_dict()}>"
