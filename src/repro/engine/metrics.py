"""Engine counters and the end-of-sweep summary report.

One :class:`EngineMetrics` instance rides along with each
:class:`~repro.engine.core.SweepEngine`.  Counters are incremented from
worker threads, so every mutation takes the instance lock.  The summary
is what ``python -m repro sweep`` prints after its table and what the
benchmark suite appends after the figure tables.
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager

__all__ = ["EngineMetrics"]

_COUNTERS = (
    "spec_builds",
    "evaluations",
    "cache_hits",
    "cache_misses",
    "jobs_executed",
    "jobs_skipped",
    "jobs_failed",
)


class EngineMetrics:
    """Thread-safe counters plus wall-time accounting for sweep runs."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.reset()

    def reset(self) -> None:
        with getattr(self, "_lock", threading.Lock()):
            for name in _COUNTERS:
                setattr(self, name, 0)
            self.wall_time = 0.0  # seconds inside run_plan
            self.job_time = 0.0  # summed per-job durations (all workers)

    def count(self, name: str, n: int = 1) -> None:
        if name not in _COUNTERS:
            raise KeyError(f"unknown engine counter {name!r}")
        with self._lock:
            setattr(self, name, getattr(self, name) + n)

    def add_job_time(self, seconds: float) -> None:
        with self._lock:
            self.job_time += seconds

    @contextmanager
    def timed_run(self):
        """Accumulate the wall time of one plan execution."""
        t0 = time.perf_counter()
        try:
            yield
        finally:
            with self._lock:
                self.wall_time += time.perf_counter() - t0
            from ..obs.tracer import active_tracer

            tracer = active_tracer()
            if tracer is not None:
                tracer.wall_event(
                    "engine", "plan:metrics", time.perf_counter(),
                    track=("engine", "dispatch"), **self.as_dict(),
                )

    # ---- derived ---------------------------------------------------------

    @property
    def jobs_total(self) -> int:
        return self.jobs_executed + self.jobs_skipped + self.jobs_failed

    @property
    def jobs_per_sec(self) -> float:
        return self.jobs_executed / self.wall_time if self.wall_time > 0 else 0.0

    @property
    def hit_rate(self) -> float:
        looked = self.cache_hits + self.cache_misses
        return self.cache_hits / looked if looked else 0.0

    def as_dict(self) -> dict:
        with self._lock:
            d = {name: getattr(self, name) for name in _COUNTERS}
            d["wall_time"] = self.wall_time
            d["job_time"] = self.job_time
        d["jobs_per_sec"] = self.jobs_per_sec
        d["hit_rate"] = self.hit_rate
        return d

    def summary(self) -> str:
        d = self.as_dict()
        return (
            "engine: {jobs_executed} jobs "
            "({cache_hits} cached, {evaluations} evaluated, "
            "{jobs_skipped} skipped, {jobs_failed} failed), "
            "{spec_builds} specs profiled, "
            "hit rate {hit_rate:.0%}, "
            "{wall_time:.2f} s wall ({jobs_per_sec:.1f} jobs/s)"
        ).format(**d)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<EngineMetrics {self.as_dict()}>"
