"""Persistent content-addressed result store for the sweep engine.

Every model evaluation is a pure function of four inputs: the profiled
application spec, the platform description, the run configuration, and
the performance-model code plus its calibration constants.  The store
keys each :class:`~repro.perfmodel.roofline.AppEstimate` by a SHA-256
digest over exactly those four inputs, so

- results survive across processes (append-only JSON-lines file under a
  cache directory, last write wins on load);
- a change to any perf-model source file, any calibration constant
  (including temporary :func:`repro.perfmodel.calibration.override`
  blocks), the profiled kernel mix, or the platform spec produces a new
  key — stale entries are never returned, they are simply no longer
  addressed;
- two runs that would compute the same number share one entry.

Serialization round-trips floats through their shortest-repr JSON form,
which is exact: a cached estimate is bit-identical to a freshly computed
one.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import threading
from enum import Enum
from pathlib import Path

from ..obs.metrics import active_metrics
from ..perfmodel import calibration as cal
from ..perfmodel.commmodel import CommEstimate
from ..perfmodel.roofline import AppEstimate, LoopTime

__all__ = [
    "STORE_SCHEMA_VERSION",
    "canonical",
    "fingerprint",
    "model_version",
    "result_key",
    "estimate_to_dict",
    "estimate_from_dict",
    "ResultStore",
]

#: Bumped whenever the on-disk record layout changes; part of the model
#: version, so a bump orphans (rather than misreads) old entries.
STORE_SCHEMA_VERSION = 1


def canonical(obj):
    """Reduce dataclasses / enums / containers to JSON-stable primitives."""
    if isinstance(obj, Enum):
        return obj.value
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        return {
            f.name: canonical(getattr(obj, f.name))
            for f in dataclasses.fields(obj)
        }
    if isinstance(obj, dict):
        return {str(canonical(k)): canonical(v) for k, v in obj.items()}
    if isinstance(obj, (list, tuple)):
        return [canonical(v) for v in obj]
    if obj is None or isinstance(obj, (bool, int, float, str)):
        return obj
    raise TypeError(f"cannot canonicalize {type(obj).__name__} for hashing")


def fingerprint(obj) -> str:
    """16-hex-digit SHA-256 digest of an object's canonical form."""
    blob = json.dumps(canonical(obj), sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode()).hexdigest()[:16]


_SOURCE_HASH: str | None = None


def _source_hash() -> str:
    """Digest of the model code the estimates depend on (perfmodel, mem,
    simmpi packages); computed once per process."""
    global _SOURCE_HASH
    if _SOURCE_HASH is None:
        h = hashlib.sha256()
        root = Path(cal.__file__).resolve().parent.parent
        for pkg in ("perfmodel", "mem", "simmpi"):
            for path in sorted((root / pkg).glob("*.py")):
                h.update(path.name.encode())
                h.update(path.read_bytes())
        _SOURCE_HASH = h.hexdigest()[:16]
    return _SOURCE_HASH


def model_version() -> str:
    """Version string of the perf model *as currently configured*.

    Combines the source digest with the live calibration constants, so a
    ``calibration.override(...)`` block addresses its own cache slice and
    editing a constant invalidates every prior result automatically.
    """
    constants = {
        k: v for k, v in vars(cal).items() if k.isupper() and not k.startswith("_")
    }
    return fingerprint(
        {
            "schema": STORE_SCHEMA_VERSION,
            "source": _source_hash(),
            "calibration": constants,
        }
    )


def result_key(
    app_fingerprint: str, platform, config, platform_fingerprint: str | None = None
) -> str:
    """Content address of one (app spec, platform, config, model) point.

    ``platform_fingerprint`` lets hot callers pass a memoized
    ``fingerprint(platform)`` (the platform spec is by far the largest
    structure hashed per lookup); the resulting key is identical.
    """
    return fingerprint(
        {
            "app": app_fingerprint,
            "platform": platform_fingerprint or fingerprint(platform),
            "config": canonical(config),
            "model": model_version(),
        }
    )


# ---------------------------------------------------------------------------
# AppEstimate (de)serialization


def estimate_to_dict(est: AppEstimate) -> dict:
    return dataclasses.asdict(est)


def estimate_from_dict(d: dict) -> AppEstimate:
    d = dict(d)
    d["per_loop"] = tuple(LoopTime(**lt) for lt in d["per_loop"])
    d["comm"] = CommEstimate(**d["comm"])
    return AppEstimate(**d)


# ---------------------------------------------------------------------------


class ResultStore:
    """Content-addressed estimate store, optionally backed by a JSONL file.

    ``directory=None`` keeps the store purely in memory (used when
    caching is disabled or no cache dir is configured).  On disk the
    store is an append-only ``results.jsonl``: one record per line,
    later records for the same key win, unreadable lines are skipped —
    a crash mid-append can therefore never poison the store.

    Concurrent-writer safety: each record is appended as a *single*
    ``os.write`` on an ``O_APPEND`` descriptor, so several processes
    (the serve layer's worker pool, parallel CLI invocations) sharing
    one file each land whole lines — the kernel serializes the
    seek+write, and records cannot interleave mid-line.  A line torn by
    a crash (or a pre-atomic-append writer) is skipped on load and
    *reported*: :attr:`corrupt_lines` counts the records dropped by the
    last load and the ``store_corrupt_lines_total`` metric carries the
    count into the observability registry.
    """

    FILENAME = "results.jsonl"

    def __init__(self, directory: str | os.PathLike | None = None):
        self._path = Path(directory) / self.FILENAME if directory else None
        self._mem: dict[str, dict] | None = None
        self._lock = threading.Lock()
        #: Unparseable records skipped by the last load (0 until loaded).
        self.corrupt_lines = 0

    @property
    def path(self) -> Path | None:
        return self._path

    @property
    def persistent(self) -> bool:
        return self._path is not None

    def _loaded(self) -> dict[str, dict]:
        if self._mem is None:
            self._mem = {}
            if self._path is not None and self._path.exists():
                text = self._path.read_text()
                m = active_metrics()
                if m is not None:
                    m.inc("store_bytes_read_total", len(text.encode()))
                corrupt = 0
                for line in text.splitlines():
                    if not line.strip():
                        continue
                    try:
                        rec = json.loads(line)
                        self._mem[rec["key"]] = rec["estimate"]
                    except (json.JSONDecodeError, KeyError, TypeError):
                        corrupt += 1  # torn or foreign line: skip, don't fail
                self.corrupt_lines = corrupt
                if corrupt and m is not None:
                    m.inc("store_corrupt_lines_total", corrupt)
        return self._mem

    def get(self, key: str) -> AppEstimate | None:
        with self._lock:
            rec = self._loaded().get(key)
        m = active_metrics()
        if m is not None:
            m.inc("store_reads_total",
                  result="hit" if rec is not None else "miss")
        return estimate_from_dict(rec) if rec is not None else None

    def __contains__(self, key: str) -> bool:
        with self._lock:
            return key in self._loaded()

    def __len__(self) -> int:
        with self._lock:
            return len(self._loaded())

    def put(self, key: str, estimate: AppEstimate) -> None:
        rec = estimate_to_dict(estimate)
        line = json.dumps({"key": key, "estimate": rec}, separators=(",", ":"))
        m = active_metrics()
        if m is not None:
            m.inc("store_writes_total")
            m.inc("store_bytes_written_total", len(line.encode()) + 1)
        with self._lock:
            self._loaded()[key] = rec
            if self._path is not None:
                self._path.parent.mkdir(parents=True, exist_ok=True)
                # One O_APPEND write per record: atomic w.r.t. other
                # processes appending to the same file (the in-process
                # lock already serializes this store's own writers).
                data = (line + "\n").encode()
                fd = os.open(
                    self._path, os.O_WRONLY | os.O_CREAT | os.O_APPEND, 0o644
                )
                try:
                    os.write(fd, data)
                finally:
                    os.close(fd)

    def estimates(
        self, app: str | None = None, platform: str | None = None
    ) -> list[AppEstimate]:
        """Stored estimates, optionally filtered by app name and/or
        platform short name.

        The store is content-addressed — keys are opaque — but every
        record carries the estimate's own ``app``/``platform``/
        ``config_label`` fields, so stored history remains queryable.
        This is what lets ``repro.obs.diff`` compare a current run
        against a previously persisted result (e.g. from before a
        calibration change; superseded model versions keep their
        entries until the next :meth:`clear`).  Deterministic order:
        sorted by (app, platform, config label).
        """
        with self._lock:
            recs = list(self._loaded().values())
        out = [
            estimate_from_dict(rec)
            for rec in recs
            if (app is None or rec.get("app") == app)
            and (platform is None or rec.get("platform") == platform)
        ]
        out.sort(key=lambda e: (e.app, e.platform, e.config_label))
        return out

    def clear(self) -> None:
        """Drop every entry, in memory and on disk."""
        with self._lock:
            self._mem = {}
            self.corrupt_lines = 0
            if self._path is not None:
                try:
                    self._path.unlink()
                except FileNotFoundError:
                    pass

    def compact(self) -> int:
        """Rewrite the backing file with one line per live key (an
        append-only log accumulates superseded lines); returns the number
        of records kept."""
        with self._lock:
            live = self._loaded()
            if self._path is not None:
                self._path.parent.mkdir(parents=True, exist_ok=True)
                tmp = self._path.with_suffix(".tmp")
                with tmp.open("w") as f:
                    for key, rec in live.items():
                        f.write(
                            json.dumps({"key": key, "estimate": rec},
                                       separators=(",", ":")) + "\n"
                        )
                tmp.replace(self._path)
            return len(live)
