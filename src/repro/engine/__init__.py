"""Sweep execution engine: parallel job runner + persistent result store.

Every model sweep in the repository routes through this package:

- :mod:`~repro.engine.store` — content-addressed, on-disk estimate store
  keyed by (app-spec fingerprint, platform, config, model version);
- :mod:`~repro.engine.jobs` — job-plan construction (cross products,
  dedup, feasibility filtering, spec-before-estimate ordering);
- :mod:`~repro.engine.executor` — ``concurrent.futures`` fan-out with
  chunked dispatch and serial fallback;
- :mod:`~repro.engine.metrics` — hit/miss/evaluation counters and the
  summary report;
- :mod:`~repro.engine.core` — the :class:`SweepEngine` facade and the
  process-default instance behind :mod:`repro.harness.runner`.

See ``docs/ENGINE.md`` for the design and the cache-key scheme.

Layer role (docs/ARCHITECTURE.md): the execution layer above the
perfmodel — evaluates (app x platform x config) points with caching and
parallelism; the harness and CLI route every sweep through it.
"""

from .core import (
    SweepEngine,
    configure_engine,
    default_cache_dir,
    default_engine,
    reset_engine,
)
from .executor import run_jobs
from .jobs import Job, JobPlan, JobResult, build_plan, default_configs, sweep_plan
from .metrics import EngineMetrics
from .store import ResultStore, model_version, result_key

__all__ = [
    "SweepEngine",
    "default_engine",
    "configure_engine",
    "reset_engine",
    "default_cache_dir",
    "run_jobs",
    "Job",
    "JobPlan",
    "JobResult",
    "build_plan",
    "sweep_plan",
    "default_configs",
    "EngineMetrics",
    "ResultStore",
    "model_version",
    "result_key",
]
