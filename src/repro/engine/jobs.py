"""Job-plan construction for the sweep engine.

A :class:`Job` is one evaluable (application, platform, configuration)
point.  :func:`build_plan` turns cross products of those axes into a
:class:`JobPlan`: duplicates collapse to one job, configurations that
cannot run (platform feasibility rules, compilers the application stalls
under) are set aside with a reason instead of being dispatched, and the
runnable jobs are ordered application-major — every job of one app is
adjacent, and :attr:`JobPlan.apps` lists the spec-profiling work that
must happen *before* its estimates can run ("spec-before-estimate"
ordering; the executor prebuilds those serially so parallel workers only
ever read warm caches).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..apps.base import get_app
from ..machine.config import (
    Compiler,
    Parallelization,
    RunConfig,
    feasible,
    structured_config_sweep,
    unstructured_config_sweep,
)
from ..machine.spec import DeviceKind, PlatformSpec
from ..perfmodel.roofline import AppEstimate

__all__ = [
    "Job",
    "JobResult",
    "JobPlan",
    "default_configs",
    "build_plan",
    "sweep_plan",
]

#: Skip reasons recorded in :attr:`JobPlan.skipped`.
SKIP_INFEASIBLE = "infeasible"
SKIP_COMPILER = "compiler-stall"


@dataclass(frozen=True)
class Job:
    """One (application, platform, configuration) evaluation point."""

    app: str
    platform: PlatformSpec
    config: RunConfig

    @property
    def key(self) -> tuple:
        """Dedup identity (platforms compare by short name)."""
        return (self.app, self.platform.short_name, self.config)

    def label(self) -> str:
        return f"{self.app} @ {self.platform.short_name} [{self.config.label()}]"


@dataclass(frozen=True)
class JobResult:
    """Outcome of one job: estimate (if any), status, and timing."""

    job: Job
    estimate: AppEstimate | None
    status: str  # "ok" | "cached" | "skipped" | "error"
    reason: str = ""
    duration: float = 0.0

    @property
    def ok(self) -> bool:
        return self.estimate is not None


@dataclass
class JobPlan:
    """Deduped, feasibility-filtered, app-ordered set of jobs."""

    jobs: list[Job] = field(default_factory=list)
    skipped: list[tuple[Job, str]] = field(default_factory=list)

    @property
    def apps(self) -> list[str]:
        """Applications whose specs must exist before estimates run,
        in first-appearance order (covers skipped jobs too, so a sweep
        result can still report them)."""
        seen: dict[str, None] = {}
        for job in self.jobs:
            seen.setdefault(job.app, None)
        return list(seen)

    @property
    def platforms(self) -> list[PlatformSpec]:
        seen: dict[str, PlatformSpec] = {}
        for job in self.jobs:
            seen.setdefault(job.platform.short_name, job.platform)
        return list(seen.values())

    def __len__(self) -> int:
        return len(self.jobs)


def _runnable(job: Job) -> str | None:
    """None if the job can run, else the skip reason.

    Compiler-stall detection uses the application *definition*'s affinity
    table (the same data the profiled spec carries), so planning never
    needs to profile anything.
    """
    if not feasible(job.config, job.platform):
        return SKIP_INFEASIBLE
    defn = get_app(job.app)
    if defn.compiler_affinity.get(job.config.compiler, 1.0) <= 0.0:
        return SKIP_COMPILER
    return None


def default_configs(app: str, platform: PlatformSpec) -> list[RunConfig]:
    """The paper's configuration sweep for an app on a platform: the
    Figure 3 structured / Figure 4 unstructured sweeps on CPUs, the
    single CUDA configuration on GPUs."""
    if platform.kind is DeviceKind.GPU:
        return [RunConfig(Compiler.NVCC, Parallelization.CUDA)]
    if get_app(app).structured:
        return structured_config_sweep(platform)
    return unstructured_config_sweep(platform)


def build_plan(
    apps: list[str],
    platforms: list[PlatformSpec],
    configs: list[RunConfig] | None = None,
) -> JobPlan:
    """Cross-product plan over apps x platforms x configs.

    ``configs=None`` uses each (app, platform)'s default paper sweep.
    Jobs come out grouped app-major in the given app order; duplicates
    (same app, platform, config) collapse to the first occurrence.
    """
    plan = JobPlan()
    seen: set[tuple] = set()
    for name in apps:
        for platform in platforms:
            cfgs = configs if configs is not None else default_configs(name, platform)
            for cfg in cfgs:
                job = Job(name, platform, cfg)
                if job.key in seen:
                    continue
                seen.add(job.key)
                reason = _runnable(job)
                if reason is None:
                    plan.jobs.append(job)
                else:
                    plan.skipped.append((job, reason))
    return plan


def sweep_plan(
    app: str, platform: PlatformSpec, configs: list[RunConfig]
) -> JobPlan:
    """Plan for one app's configuration sweep, preserving config order
    (the classic ``sweep()`` contract returns one row per input config,
    ``None`` for the skipped ones)."""
    return build_plan([app], [platform], configs)
