"""Parallel job dispatch for the sweep engine.

:func:`run_jobs` maps a job function over a job list with a
``concurrent.futures`` thread pool: configurable worker count, chunked
dispatch (at most ``chunk_size`` futures in flight per worker, so a
10k-job plan never materializes 10k futures), per-job completion
callbacks, and results returned in input order regardless of completion
order.  ``workers <= 1`` — or a pool that cannot be created, e.g. during
interpreter shutdown — falls back to a plain serial loop with identical
semantics, which is also the bit-identity reference the tests compare
the parallel path against.

Threads (not processes) are the right pool here: job functions share the
engine's in-process spec/hierarchy caches and its result store, and the
estimate math releases the GIL often enough in numpy for overlap without
paying per-process re-profiling of every application.
"""

from __future__ import annotations

import contextvars
import time
from concurrent.futures import FIRST_COMPLETED, ThreadPoolExecutor, wait
from typing import Callable, Sequence, TypeVar

from ..obs.tracer import active_tracer

__all__ = ["run_jobs", "resolve_workers"]

T = TypeVar("T")
R = TypeVar("R")

#: Futures kept in flight per worker before dispatch blocks.
DEFAULT_CHUNK_SIZE = 16


def resolve_workers(workers: int | None) -> int:
    """Normalize a worker-count request: ``None``/0/1 → serial; negative
    → one per CPU."""
    if workers is None or workers == 0:
        return 1
    if workers < 0:
        import os

        return max(os.cpu_count() or 1, 1)
    return workers


def run_jobs(
    fn: Callable[[T], R],
    jobs: Sequence[T],
    *,
    workers: int | None = None,
    chunk_size: int = DEFAULT_CHUNK_SIZE,
    progress: Callable[[int, int, T, R], None] | None = None,
) -> list[R]:
    """Apply ``fn`` to every job; results in input order.

    ``progress(done, total, job, result)`` fires once per completed job
    (from the dispatching thread, never concurrently).  Exceptions from
    ``fn`` propagate — callers that want per-job error capture wrap
    ``fn`` accordingly.
    """
    jobs = list(jobs)
    nworkers = resolve_workers(workers)
    tracer = active_tracer()
    if nworkers <= 1 or len(jobs) <= 1:
        if tracer is not None:
            tracer.wall_event(
                "engine", "dispatch:serial", time.perf_counter(),
                track=("engine", "dispatch"), jobs=len(jobs),
            )
        return _run_serial(fn, jobs, progress)
    try:
        pool = ThreadPoolExecutor(max_workers=nworkers)
    except RuntimeError:  # e.g. spawned during interpreter teardown
        return _run_serial(fn, jobs, progress)
    if tracer is not None:
        tracer.wall_event(
            "engine", "dispatch:pool", time.perf_counter(),
            track=("engine", "dispatch"), jobs=len(jobs), workers=nworkers,
        )
    with pool:
        return _run_pooled(pool, fn, jobs, max(chunk_size, 1) * nworkers, progress)


def _run_serial(fn, jobs, progress) -> list:
    results = []
    total = len(jobs)
    for i, job in enumerate(jobs):
        result = fn(job)
        results.append(result)
        if progress is not None:
            progress(i + 1, total, job, result)
    return results


def _run_pooled(pool, fn, jobs, in_flight, progress) -> list:
    total = len(jobs)
    results: list = [None] * total
    pending = {}
    done_count = 0
    it = iter(enumerate(jobs))
    exhausted = False
    while pending or not exhausted:
        while not exhausted and len(pending) < in_flight:
            try:
                i, job = next(it)
            except StopIteration:
                exhausted = True
                break
            # Each submit carries the dispatcher's context so ContextVar
            # state (the active tracer) is visible inside pool workers.
            ctx = contextvars.copy_context()
            pending[pool.submit(ctx.run, fn, job)] = (i, job)
        if not pending:
            break
        finished, _ = wait(pending, return_when=FIRST_COMPLETED)
        for fut in finished:
            i, job = pending.pop(fut)
            results[i] = fut.result()  # propagate job exceptions
            done_count += 1
            if progress is not None:
                progress(done_count, total, job, results[i])
    return results
