"""Hardware platform models, topology and run configurations.

Public entry points:

- :data:`~repro.machine.platforms.XEON_MAX_9480` and friends — the four
  platform models of the paper's Section 2.
- :class:`~repro.machine.spec.PlatformSpec` — the platform description
  dataclass (peak flops/bandwidth, caches, NUMA, latencies).
- :class:`~repro.machine.config.RunConfig` — a compiler/ZMM/HT/
  parallelization combination, with the Figure 3/4 sweep enumerators.
- :mod:`~repro.machine.topology` — core-to-core latency classification
  (Figure 2's microbenchmark), plus :class:`~repro.machine.topology.ClusterSpec`
  / :class:`~repro.machine.topology.NetworkSpec` — multi-node cluster
  topology for the 1k–10k rank scaling studies (docs/SIMMPI.md).

Layer role (docs/ARCHITECTURE.md): the bottom of the stack —
hardware facts every other layer consumes; depends on nothing.
"""

from .config import (
    Compiler,
    Parallelization,
    RunConfig,
    ZmmUsage,
    best_practice_config,
    check_feasible,
    feasible,
    native_compilers,
    structured_config_sweep,
    unstructured_config_sweep,
)
from .platforms import (
    A100_40GB,
    ALL_PLATFORMS,
    CPU_PLATFORMS,
    EPYC_7V73X,
    XEON_8360Y,
    XEON_MAX_9480,
    get_platform,
)
from .spec import (
    GB,
    GIB,
    KIB,
    MIB,
    CacheLevel,
    DeviceKind,
    MemoryKind,
    MemorySpec,
    NumaDomain,
    PlatformSpec,
    VectorISA,
)
from .topology import (
    ClusterSpec,
    CoreToCoreBenchmark,
    NetworkSpec,
    PairKind,
    classify_cluster_pair,
    classify_pair,
    latency_matrix,
    pair_latency,
)

__all__ = [
    # spec
    "PlatformSpec",
    "CacheLevel",
    "MemorySpec",
    "MemoryKind",
    "VectorISA",
    "NumaDomain",
    "DeviceKind",
    "GB",
    "GIB",
    "KIB",
    "MIB",
    # platforms
    "XEON_MAX_9480",
    "XEON_8360Y",
    "EPYC_7V73X",
    "A100_40GB",
    "ALL_PLATFORMS",
    "CPU_PLATFORMS",
    "get_platform",
    # config
    "Compiler",
    "ZmmUsage",
    "Parallelization",
    "RunConfig",
    "feasible",
    "check_feasible",
    "native_compilers",
    "structured_config_sweep",
    "unstructured_config_sweep",
    "best_practice_config",
    # topology
    "PairKind",
    "classify_pair",
    "pair_latency",
    "latency_matrix",
    "CoreToCoreBenchmark",
    "NetworkSpec",
    "ClusterSpec",
    "classify_cluster_pair",
]
