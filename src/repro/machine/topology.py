"""Core topology and core-to-core communication latency model.

Figure 2 of the paper measures message-passing latency with the
``core-to-core-latency`` tool ("one writer / one reader on many cache
lines") between (1) hyperthread siblings, (2) adjacent cores, and
(3) cores on different sockets — plus, for the SMT-disabled EPYC, a core
on a different NUMA domain of the same socket.

This module classifies any pair of hardware threads on a platform into
those relationship classes and returns the modeled one-way cache-coherence
message latency.  The same classification feeds the simulated-MPI message
cost model (:mod:`repro.perfmodel.commmodel`): an MPI message between two
ranks starts with a handshake whose cost is the core-to-core latency of
the cores the ranks are pinned to.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

import numpy as np

from .spec import PlatformSpec

__all__ = [
    "CorePair",
    "PairKind",
    "classify_pair",
    "pair_latency",
    "latency_matrix",
    "hw_thread_to_core",
    "CoreToCoreBenchmark",
    "NetworkSpec",
    "ClusterSpec",
    "classify_cluster_pair",
]


class PairKind(Enum):
    """Relationship between two hardware threads."""

    SELF = "self"
    SMT_SIBLING = "smt-sibling"
    SAME_NUMA = "same-numa"
    SAME_SOCKET = "same-socket"  # different NUMA domain, same socket
    CROSS_SOCKET = "cross-socket"
    CROSS_NODE = "cross-node"  # different nodes of a cluster


@dataclass(frozen=True)
class CorePair:
    kind: PairKind
    latency: float  # one-way, seconds


def hw_thread_to_core(platform: PlatformSpec, hw_thread: int) -> int:
    """Map a hardware thread id to its physical core.

    Threads are numbered the way Linux numbers them on these systems: the
    first ``total_cores`` ids are one thread per physical core, the next
    ``total_cores`` are the SMT siblings (thread ``t`` and
    ``t + total_cores`` share a core).
    """
    if not (0 <= hw_thread < platform.total_threads):
        raise ValueError(
            f"hw thread {hw_thread} out of range 0..{platform.total_threads - 1}"
        )
    return hw_thread % platform.total_cores


def classify_pair(platform: PlatformSpec, thread_a: int, thread_b: int) -> PairKind:
    """Classify the relationship between two hardware threads."""
    core_a = hw_thread_to_core(platform, thread_a)
    core_b = hw_thread_to_core(platform, thread_b)
    if thread_a == thread_b:
        return PairKind.SELF
    if core_a == core_b:
        return PairKind.SMT_SIBLING
    if platform.numa_of_core(core_a) == platform.numa_of_core(core_b):
        return PairKind.SAME_NUMA
    if platform.socket_of_core(core_a) == platform.socket_of_core(core_b):
        return PairKind.SAME_SOCKET
    return PairKind.CROSS_SOCKET


def pair_latency(platform: PlatformSpec, thread_a: int, thread_b: int) -> CorePair:
    """One-way cache-line transfer latency between two hardware threads."""
    kind = classify_pair(platform, thread_a, thread_b)
    if kind is PairKind.SELF:
        lat = 0.0
    elif kind is PairKind.SMT_SIBLING:
        lat = platform.latency_smt_sibling
    elif kind is PairKind.SAME_NUMA:
        lat = platform.latency_same_socket
    elif kind is PairKind.SAME_SOCKET:
        # Cross-NUMA-domain within a socket; platforms without sub-NUMA
        # clustering never produce this class.  Fall back to the in-socket
        # figure when the spec does not distinguish it.
        lat = platform.latency_cross_numa or platform.latency_same_socket
    else:
        lat = platform.latency_cross_socket
    return CorePair(kind, lat)


def latency_matrix(platform: PlatformSpec, threads: list[int] | None = None) -> np.ndarray:
    """Full one-way latency matrix (seconds) between hardware threads.

    ``threads`` defaults to one thread per physical core (the view the
    core-to-core-latency tool shows with SMT columns folded away).
    """
    if threads is None:
        threads = list(range(platform.total_cores))
    n = len(threads)
    out = np.zeros((n, n))
    for i, a in enumerate(threads):
        for j, b in enumerate(threads):
            out[i, j] = pair_latency(platform, a, b).latency
    return out


@dataclass(frozen=True)
class NetworkSpec:
    """Inter-node interconnect of a cluster.

    Defaults model a 200 Gb/s HDR-InfiniBand-class fabric: ~1.5 µs
    one-way MPI latency and 25 GB/s per-NIC bandwidth, the network class
    both comparison clusters in the 1k–10k rank scaling studies use, plus
    the extra software overhead a network-bound message pays over a
    shared-memory one.
    """

    name: str = "hdr200"
    latency: float = 1.5e-6  # one-way, seconds
    bandwidth: float = 25e9  # per node-pair, bytes/s
    message_overhead: float = 0.5e-6  # extra per-message software cost, s

    def __post_init__(self) -> None:
        if self.latency < 0 or self.bandwidth <= 0 or self.message_overhead < 0:
            raise ValueError("network latency/bandwidth/overhead out of range")


@dataclass(frozen=True)
class ClusterSpec:
    """``nodes`` identical ``platform`` nodes joined by ``network``.

    Hardware threads are numbered globally node-major: thread ``t`` lives
    on node ``t // platform.total_threads`` at local thread
    ``t % platform.total_threads``, so every single-node topology helper
    applies unchanged to the local id.
    """

    platform: PlatformSpec
    nodes: int
    network: NetworkSpec = NetworkSpec()

    def __post_init__(self) -> None:
        if self.nodes < 1:
            raise ValueError("a cluster needs at least one node")

    @property
    def short_name(self) -> str:
        return f"{self.platform.short_name}x{self.nodes}"

    @property
    def total_cores(self) -> int:
        return self.platform.total_cores * self.nodes

    @property
    def total_threads(self) -> int:
        return self.platform.total_threads * self.nodes

    def node_of_thread(self, hw_thread: int) -> int:
        if not (0 <= hw_thread < self.total_threads):
            raise ValueError(
                f"hw thread {hw_thread} out of range 0..{self.total_threads - 1}"
            )
        return hw_thread // self.platform.total_threads

    def local_thread(self, hw_thread: int) -> int:
        """The within-node thread id of a global hardware thread."""
        if not (0 <= hw_thread < self.total_threads):
            raise ValueError(
                f"hw thread {hw_thread} out of range 0..{self.total_threads - 1}"
            )
        return hw_thread % self.platform.total_threads


def classify_cluster_pair(
    cluster: ClusterSpec, thread_a: int, thread_b: int
) -> PairKind:
    """Classify two *global* hardware threads of a cluster.

    Same-node pairs get the single-node classification of their local
    ids; pairs on different nodes are :attr:`PairKind.CROSS_NODE`.
    """
    if cluster.node_of_thread(thread_a) != cluster.node_of_thread(thread_b):
        return PairKind.CROSS_NODE
    return classify_pair(
        cluster.platform, cluster.local_thread(thread_a), cluster.local_thread(thread_b)
    )


class CoreToCoreBenchmark:
    """Model of the ``core-to-core-latency`` "one writer / one reader on
    many cache lines" test used for Figure 2.

    The real tool bounces ownership of a set of cache lines between two
    cores and reports the mean per-message latency.  Here the mean is the
    modeled pair latency plus a small deterministic queueing term that
    grows with the number of in-flight lines (coherence-traffic contention
    on the mesh/fabric), so the reported figures react to the test's
    ``num_lines`` parameter the way the real tool does.
    """

    #: Fractional latency increase per additional concurrent cache line.
    CONTENTION_PER_LINE = 0.004

    def __init__(self, platform: PlatformSpec, num_lines: int = 16) -> None:
        if num_lines < 1:
            raise ValueError("num_lines must be >= 1")
        self.platform = platform
        self.num_lines = num_lines

    def measure(self, thread_a: int, thread_b: int) -> float:
        """Mean one-way message latency (seconds) between two threads."""
        base = pair_latency(self.platform, thread_a, thread_b).latency
        contention = 1.0 + self.CONTENTION_PER_LINE * (self.num_lines - 1)
        return base * contention

    def representative_pairs(self) -> dict[str, float]:
        """The pair classes Figure 2 plots for this platform.

        Intel platforms (SMT on): hyperthread siblings, adjacent cores,
        cross-socket.  EPYC (SMT off): adjacent core, cross-NUMA same
        socket, cross-socket.
        """
        p = self.platform
        out: dict[str, float] = {}
        if p.smt > 1:
            out["smt-siblings"] = self.measure(0, p.total_cores)  # same core
        out["adjacent-cores"] = self.measure(0, 1)
        if p.numa_per_socket > 1:
            other_numa_core = p.cores_per_numa  # first core of NUMA 1
            out["cross-numa"] = self.measure(0, other_numa_core)
        out["cross-socket"] = self.measure(0, p.cores_per_socket)
        return out
