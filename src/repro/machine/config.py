"""Run configurations: compiler x flags x hyperthreading x parallelization.

Section 5 of the paper sweeps four configuration axes on the Xeon CPU MAX:

1. **Compiler** — Intel C++ Compiler Classic (ICC/ICPC) vs. the oneAPI
   DPC++/C++ compiler (ICX/ICPX); GCC / AOCC on the EPYC, nvcc on the A100.
2. **ZMM usage** — ``default`` (256-bit vectors) or ``high`` (512-bit):
   AVX-512 halves instruction count but lowers clocks.
3. **Hyperthreading** — 1 or 2 threads per physical core.
4. **Parallelization** — pure MPI (one rank per hardware thread), MPI
   with explicit auto-vectorized kernels (``MPI vec``, unstructured codes
   only), MPI+OpenMP (one rank per NUMA domain), and MPI+SYCL in ``flat``
   and ``ndrange`` variants.

This module defines the configuration vocabulary, feasibility rules
(e.g. SYCL requires the oneAPI compiler; ZMM is meaningless without
AVX-512), and enumeration of the exact config sets Figures 3 and 4 sweep.
The *performance consequences* of a configuration are modeled in
:mod:`repro.perfmodel.configmodel`.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, replace
from enum import Enum

from .spec import DeviceKind, PlatformSpec

__all__ = [
    "Compiler",
    "ZmmUsage",
    "Parallelization",
    "RunConfig",
    "feasible",
    "check_feasible",
    "structured_config_sweep",
    "unstructured_config_sweep",
    "best_practice_config",
    "native_compilers",
]


class Compiler(Enum):
    CLASSIC = "Classic"  # Intel ICC/ICPC
    ONEAPI = "OneAPI"  # Intel ICX/ICPX (DPC++)
    GCC = "GCC"
    AOCC = "AOCC"
    NVCC = "NVCC"


class ZmmUsage(Enum):
    DEFAULT = "default"  # 256-bit vectors on AVX-512 hardware
    HIGH = "high"  # full 512-bit ZMM vectors


class Parallelization(Enum):
    MPI = "MPI"
    MPI_VEC = "MPI vec"  # explicit auto-vectorizing kernels (unstructured)
    MPI_OMP = "MPI+OpenMP"
    MPI_SYCL_FLAT = "MPI+SYCL flat"
    MPI_SYCL_NDRANGE = "MPI+SYCL ndrange"
    CUDA = "CUDA"

    @property
    def uses_sycl(self) -> bool:
        return self in (Parallelization.MPI_SYCL_FLAT, Parallelization.MPI_SYCL_NDRANGE)

    @property
    def uses_mpi(self) -> bool:
        return self is not Parallelization.CUDA

    @property
    def threads_within_rank(self) -> bool:
        """True when one rank spans a NUMA domain and parallelizes inside."""
        return self in (
            Parallelization.MPI_OMP,
            Parallelization.MPI_SYCL_FLAT,
            Parallelization.MPI_SYCL_NDRANGE,
        )


@dataclass(frozen=True)
class RunConfig:
    """One point of the configuration sweep.

    ``hyperthreading`` means *using* 2 threads per core (the hardware
    always has HT enabled on the Intel systems; the sweep is about whether
    ranks/threads are placed on both hardware threads).
    """

    compiler: Compiler
    parallelization: Parallelization
    zmm: ZmmUsage = ZmmUsage.DEFAULT
    hyperthreading: bool = False

    def label(self) -> str:
        """Row label in the style of the paper's Figures 3 and 4."""
        ht = "w/HT" if self.hyperthreading else "w/o HT"
        par = self.parallelization.value
        return f"{par} {ht} {self.compiler.value} (ZMM {self.zmm.value})"

    # Convenience for sweeps
    def with_(self, **kw) -> "RunConfig":
        return replace(self, **kw)

    # ---- placement-derived quantities ----------------------------------

    def ranks(self, platform: PlatformSpec) -> int:
        """Number of MPI ranks this config launches on ``platform``."""
        check_feasible(self, platform)
        if self.parallelization is Parallelization.CUDA:
            return 1
        if self.parallelization.threads_within_rank:
            return platform.total_numa_domains
        threads = platform.total_cores * (2 if self.hyperthreading else 1)
        return threads

    def threads_per_rank(self, platform: PlatformSpec) -> int:
        """OpenMP/SYCL worker threads per rank (1 for pure MPI)."""
        check_feasible(self, platform)
        if self.parallelization is Parallelization.CUDA:
            return platform.total_cores  # SMs
        if not self.parallelization.threads_within_rank:
            return 1
        per_numa = platform.cores_per_numa
        return per_numa * (2 if self.hyperthreading else 1)


def native_compilers(platform: PlatformSpec) -> tuple[Compiler, ...]:
    """Compilers evaluated on each platform in the paper."""
    if platform.kind is DeviceKind.GPU:
        return (Compiler.NVCC,)
    if platform.isa.name == "AVX2":  # the EPYC system
        return (Compiler.GCC, Compiler.AOCC)
    return (Compiler.CLASSIC, Compiler.ONEAPI)


def feasible(config: RunConfig, platform: PlatformSpec) -> bool:
    try:
        check_feasible(config, platform)
        return True
    except ValueError:
        return False


def check_feasible(config: RunConfig, platform: PlatformSpec) -> None:
    """Raise ValueError when a configuration cannot run on a platform."""
    if config.compiler not in native_compilers(platform):
        raise ValueError(
            f"{config.compiler.value} is not available on {platform.name}"
        )
    if config.parallelization is Parallelization.CUDA:
        if platform.kind is not DeviceKind.GPU:
            raise ValueError("CUDA parallelization requires a GPU platform")
        return
    if platform.kind is DeviceKind.GPU:
        raise ValueError(f"{config.parallelization.value} cannot run on a GPU")
    if config.parallelization.uses_sycl and config.compiler is not Compiler.ONEAPI:
        raise ValueError("SYCL requires the oneAPI compiler")
    if config.zmm is ZmmUsage.HIGH and platform.isa.width_bits < 512:
        raise ValueError(f"ZMM high requires AVX-512; {platform.name} has {platform.isa.name}")
    if config.hyperthreading and platform.smt < 2:
        raise ValueError(f"{platform.name} has SMT disabled")


def structured_config_sweep(platform: PlatformSpec) -> list[RunConfig]:
    """The 24-row sweep of Figure 3 (structured-mesh applications).

    MPI and MPI+OpenMP vary compiler x ZMM x HT (16 rows); the SYCL flat /
    ndrange variants run under oneAPI only, varying ZMM x HT (8 rows).
    On platforms without AVX-512 / SMT the infeasible axes collapse.
    """
    configs: list[RunConfig] = []
    zmms = [ZmmUsage.DEFAULT, ZmmUsage.HIGH] if platform.isa.width_bits >= 512 else [ZmmUsage.DEFAULT]
    hts = [False, True] if platform.smt > 1 else [False]
    pars = [Parallelization.MPI, Parallelization.MPI_OMP]
    for comp, par, zmm, ht in itertools.product(native_compilers(platform), pars, zmms, hts):
        cfg = RunConfig(comp, par, zmm, ht)
        if feasible(cfg, platform):
            configs.append(cfg)
    if Compiler.ONEAPI in native_compilers(platform):
        for par, zmm, ht in itertools.product(
            [Parallelization.MPI_SYCL_FLAT, Parallelization.MPI_SYCL_NDRANGE], zmms, hts
        ):
            cfg = RunConfig(Compiler.ONEAPI, par, zmm, ht)
            if feasible(cfg, platform):
                configs.append(cfg)
    return configs


def unstructured_config_sweep(platform: PlatformSpec) -> list[RunConfig]:
    """The 25-row sweep of Figure 4 (unstructured-mesh applications).

    MPI, MPI vec and MPI+OpenMP vary compiler x ZMM x HT (24 rows) plus
    one MPI+SYCL (oneAPI, ZMM default) row.
    """
    configs: list[RunConfig] = []
    zmms = [ZmmUsage.DEFAULT, ZmmUsage.HIGH] if platform.isa.width_bits >= 512 else [ZmmUsage.DEFAULT]
    hts = [False, True] if platform.smt > 1 else [False]
    pars = [Parallelization.MPI, Parallelization.MPI_VEC, Parallelization.MPI_OMP]
    for comp, par, zmm, ht in itertools.product(native_compilers(platform), pars, zmms, hts):
        cfg = RunConfig(comp, par, zmm, ht)
        if feasible(cfg, platform):
            configs.append(cfg)
    if Compiler.ONEAPI in native_compilers(platform):
        cfg = RunConfig(Compiler.ONEAPI, Parallelization.MPI_SYCL_FLAT, ZmmUsage.DEFAULT, False)
        if feasible(cfg, platform):
            configs.append(cfg)
    return configs


def best_practice_config(platform: PlatformSpec) -> RunConfig:
    """The paper's overall recommendation for structured codes on the Xeon
    CPU MAX: MPI+OpenMP, oneAPI, ZMM high, HT disabled (Sec. 5) — adapted
    to each platform's available compiler/ISA."""
    if platform.kind is DeviceKind.GPU:
        return RunConfig(Compiler.NVCC, Parallelization.CUDA)
    comps = native_compilers(platform)
    comp = Compiler.ONEAPI if Compiler.ONEAPI in comps else comps[-1]
    zmm = ZmmUsage.HIGH if platform.isa.width_bits >= 512 else ZmmUsage.DEFAULT
    return RunConfig(comp, Parallelization.MPI_OMP, zmm, hyperthreading=False)
