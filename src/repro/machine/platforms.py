"""Concrete platform models for the four systems the paper evaluates.

Every number here is either printed in the paper's Section 2 / Figures 1-2
or is the public spec-sheet figure the paper itself cites.  Derived
quantities (peak TFLOPS, flop/byte ratio, cache:memory bandwidth ratio) are
checked against the paper's stated values by ``tests/machine/test_platforms.py``:

===========================  ==========  ==========  ===========  ========
quantity                      MAX 9480    8360Y       EPYC 7V73X   A100
===========================  ==========  ==========  ===========  ========
peak FP32 TFLOPS (base)       13.6        11.0        8.45         19.5
peak memory BW (GB/s)         2 x 1300    2 x 204.8   2 x 204.8    1555
STREAM triad (GB/s)           1446/1643   296         310          1310
flop/byte (vs STREAM)         9.4         ~36         ~28          --
cache : memory BW ratio       3.8x        ~6.3x       ~14x         --
===========================  ==========  ==========  ===========  ========
"""

from __future__ import annotations

from .spec import (
    CacheLevel,
    DeviceKind,
    GIB,
    KIB,
    MIB,
    MemoryKind,
    MemorySpec,
    PlatformSpec,
    VectorISA,
    gbs,
    ghz,
    ns,
)

__all__ = [
    "XEON_MAX_9480",
    "XEON_8360Y",
    "EPYC_7V73X",
    "A100_40GB",
    "ALL_PLATFORMS",
    "CPU_PLATFORMS",
    "get_platform",
]


# ---------------------------------------------------------------------------
# Intel Xeon CPU MAX 9480 (Sapphire Rapids + HBM2e), HBM-only mode, SNC4.
#
# 2 sockets x 56 cores, HT on, 2x4 NUMA domains, 2x64 GB HBM.
# Clocks 1.9 GHz base / 2.6 GHz all-core turbo.  AVX-512 with 2 FMA pipes:
# 112 cores * 64 FP32 flops/cycle * 1.9 GHz = 13.6 TFLOPS (paper Sec. 2).
# STREAM triad: 1446 GB/s with application flags (55% of 2x1300 peak),
# 1643 GB/s with streaming-store tuned flags (63%) -- Figure 1.
# Cache:HBM streaming bandwidth ratio measured at 3.8x (Fig. 1 & 9), i.e.
# an aggregate LLC-region bandwidth of ~3.8 * 1446 GB/s.
# ---------------------------------------------------------------------------
XEON_MAX_9480 = PlatformSpec(
    name="Intel Xeon CPU MAX 9480",
    short_name="max9480",
    kind=DeviceKind.CPU,
    sockets=2,
    cores_per_socket=56,
    numa_per_socket=4,
    smt=2,
    base_freq=ghz(1.9),
    turbo_freq=ghz(2.6),
    isa=VectorISA(
        name="AVX-512",
        width_bits=512,
        fma_units=2,
        # Sapphire Rapids' heavy-AVX512 downclock is mild compared to
        # Skylake; the paper finds ZMM high vs default within ~1% on
        # bandwidth-bound codes, 4-6% better on compute-heavy ones.
        freq_penalty_full_width=0.97,
    ),
    caches=(
        CacheLevel("L1", 48 * KIB, gbs(350.0), ns(1.6), scope="core", associativity=12),
        CacheLevel("L2", 2 * MIB, gbs(80.0), ns(5.8), scope="core", associativity=16),
        # 112.5 MB LLC/socket; aggregate streaming BW chosen to give the
        # measured 3.8x cache:HBM ratio: 3.8 * 1446 / 2 per socket.
        CacheLevel("L3", 112 * MIB + 512 * KIB, gbs(2748.0), ns(33.0), scope="socket", associativity=15),
    ),
    memory=MemorySpec(
        kind=MemoryKind.HBM2E,
        capacity=64 * GIB,
        peak_bandwidth=gbs(1300.0),
        stream_efficiency=0.5562,  # -> 1446 GB/s node
        stream_efficiency_tuned=0.6319,  # -> 1643 GB/s node
        latency=ns(130.0),  # HBM trades latency for bandwidth
    ),
    core_stream_bw=gbs(49.05),  # -> 3.8x cache:HBM plateau ratio (Fig. 1)
    latency_smt_sibling=ns(25.0),
    latency_same_socket=ns(66.0),
    latency_cross_numa=ns(78.0),
    latency_cross_socket=ns(120.0),
    notes="HBM-only mode, SNC4; Intel Developer Cloud node (paper Sec. 2).",
)


# ---------------------------------------------------------------------------
# Intel Xeon Platinum 8360Y (Ice Lake).
#
# 2 sockets x 36 cores, HT on, 512 GB DDR4-3200 (8 channels/socket:
# 204.8 GB/s peak per socket).  2.4 / 2.8 GHz.  AVX-512, 2 FMA:
# 72 * 64 * 2.4 GHz = 11.06 TFLOPS.  STREAM 296 GB/s (~72% of peak).
# Cache:memory bandwidth ratio ~6.3x (Fig. 9).
# ---------------------------------------------------------------------------
XEON_8360Y = PlatformSpec(
    name="Intel Xeon Platinum 8360Y",
    short_name="icx8360y",
    kind=DeviceKind.CPU,
    sockets=2,
    cores_per_socket=36,
    numa_per_socket=1,
    smt=2,
    base_freq=ghz(2.4),
    turbo_freq=ghz(2.8),
    isa=VectorISA(
        name="AVX-512",
        width_bits=512,
        fma_units=2,
        # Ice Lake's sustained heavy-AVX512 all-core clock is far below
        # nominal turbo (~2.2 GHz vs 2.8); this is part of why the Xeon
        # MAX gains 1.9x on the compute-bound miniBUDE (Sec. 6).
        freq_penalty_full_width=0.78,
    ),
    caches=(
        CacheLevel("L1", 48 * KIB, gbs(400.0), ns(1.5), scope="core", associativity=12),
        CacheLevel("L2", 1 * MIB + 256 * KIB, gbs(85.0), ns(5.0), scope="core", associativity=20),
        # 54 MB LLC/socket; 6.3 * 296 / 2 per socket.
        CacheLevel("L3", 54 * MIB, gbs(932.0), ns(28.0), scope="socket", associativity=12),
    ),
    memory=MemorySpec(
        kind=MemoryKind.DDR4,
        capacity=256 * GIB,
        peak_bandwidth=gbs(204.8),
        stream_efficiency=0.7227,  # -> 296 GB/s node
        latency=ns(85.0),
    ),
    core_stream_bw=gbs(25.9),  # -> ~6.3x cache:DDR plateau ratio (Fig. 9)
    latency_smt_sibling=ns(22.0),
    latency_same_socket=ns(55.0),
    latency_cross_numa=None,
    latency_cross_socket=ns(112.0),
    notes="Baskerville cluster, RHEL 8.5 (paper Sec. 2).",
)


# ---------------------------------------------------------------------------
# AMD EPYC 7V73X (Milan-X, 3D V-Cache), Azure HB120rs_v3 VM.
#
# 2 sockets x 60 usable cores, SMT off, 2x2 NUMA (as exposed by the VM),
# 448 GB DDR4.  2.2 / 3.5 GHz.  AVX2 (256-bit), 2 FMA:
# 120 * 32 * 2.2 GHz = 8.45 TFLOPS.  STREAM 310 GB/s (~76% of peak).
# 768 MB stacked L3 per socket; cache:memory BW ratio ~14x (Fig. 1 & 9).
# Cross-socket latency 1.6x worse than the Intel systems (Fig. 2; VM
# virtualization may contribute).
# ---------------------------------------------------------------------------
EPYC_7V73X = PlatformSpec(
    name="AMD EPYC 7V73X (Milan-X)",
    short_name="epyc7v73x",
    kind=DeviceKind.CPU,
    sockets=2,
    cores_per_socket=60,
    numa_per_socket=2,
    smt=1,
    base_freq=ghz(2.2),
    turbo_freq=ghz(3.5),
    isa=VectorISA(
        name="AVX2",
        width_bits=256,
        fma_units=2,
        freq_penalty_full_width=1.0,  # no wide-vector license downclock
    ),
    caches=(
        CacheLevel("L1", 32 * KIB, gbs(330.0), ns(1.4), scope="core", associativity=8),
        CacheLevel("L2", 512 * KIB, gbs(75.0), ns(4.5), scope="core", associativity=8),
        # 768 MB V-Cache per socket; 14 * 310 / 2 per socket.
        CacheLevel("L3", 768 * MIB, gbs(2170.0), ns(25.0), scope="socket", associativity=16),
    ),
    memory=MemorySpec(
        kind=MemoryKind.DDR4,
        capacity=224 * GIB,
        peak_bandwidth=gbs(204.8),
        stream_efficiency=0.7568,  # -> 310 GB/s node
        latency=ns(96.0),
    ),
    core_stream_bw=gbs(36.2),  # -> ~14x cache:DDR plateau ratio (Fig. 1)
    latency_smt_sibling=ns(20.0),  # SMT disabled; kept for model uniformity
    latency_same_socket=ns(21.0),  # adjacent core, same CCX
    latency_cross_numa=ns(105.0),  # other chiplet / NUMA domain, same socket
    latency_cross_socket=ns(180.0),  # ~1.6x the Intel cross-socket figure
    notes="Azure HB120rs_v3 VM, SMT off, GCC 12.3 / AOCC 4.0 (paper Sec. 2).",
)


# ---------------------------------------------------------------------------
# NVIDIA A100 40 GB PCIe, used in Figures 6 and 9 as the GPU reference.
#
# 108 SMs at 1.41 GHz boost; 19.5 FP32 TFLOPS; HBM2e with 1555 GB/s peak
# of which ~1310 GB/s is achievable (paper Sec. 6: "achievable peak memory
# bandwidth of 1310 GB/s - 10% lower than measured on the Xeon MAX").
# Modeled as one "socket" of 108 cores (SMs); no MPI inside the device.
# ---------------------------------------------------------------------------
A100_40GB = PlatformSpec(
    name="NVIDIA A100 40GB PCIe",
    short_name="a100",
    kind=DeviceKind.GPU,
    sockets=1,
    cores_per_socket=108,
    numa_per_socket=1,
    smt=1,
    base_freq=ghz(1.41),
    turbo_freq=ghz(1.41),
    isa=VectorISA(
        name="CUDA-SM80",
        width_bits=2048,  # 64 FP32 lanes per SM partition-equivalent
        fma_units=1,
        freq_penalty_full_width=1.0,
    ),
    caches=(
        CacheLevel("L1", 192 * KIB, gbs(600.0), ns(8.0), scope="core", associativity=48),
        CacheLevel("L2", 40 * MIB, gbs(4500.0), ns(70.0), scope="socket", associativity=16),
    ),
    memory=MemorySpec(
        kind=MemoryKind.HBM2E,
        capacity=40 * GIB,
        peak_bandwidth=gbs(1555.0),
        stream_efficiency=0.8424,  # -> 1310 GB/s
        latency=ns(290.0),
    ),
    core_stream_bw=gbs(41.7),  # per-SM; aggregate matches the 4.5 TB/s L2
    latency_smt_sibling=ns(5.0),
    latency_same_socket=ns(5.0),
    latency_cross_socket=ns(5.0),
    notes="GPU reference point in Figures 6 and 9; no MPI overheads.",
)


ALL_PLATFORMS: tuple[PlatformSpec, ...] = (
    XEON_MAX_9480,
    XEON_8360Y,
    EPYC_7V73X,
    A100_40GB,
)

CPU_PLATFORMS: tuple[PlatformSpec, ...] = (XEON_MAX_9480, XEON_8360Y, EPYC_7V73X)

_BY_NAME = {p.short_name: p for p in ALL_PLATFORMS}


def get_platform(short_name: str) -> PlatformSpec:
    """Look a platform up by its short name (``max9480``, ``icx8360y``,
    ``epyc7v73x``, ``a100``)."""
    try:
        return _BY_NAME[short_name]
    except KeyError:
        raise KeyError(
            f"unknown platform {short_name!r}; available: {sorted(_BY_NAME)}"
        ) from None
