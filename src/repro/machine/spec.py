"""Hardware platform specifications.

The paper's analysis (Section 2) is driven by a handful of architectural
parameters per platform: core counts and clocks, vector ISA width, the
cache hierarchy, the memory technology (HBM2e vs. DDR4) and its peak and
*achievable* bandwidth, and the NUMA / chiplet layout.  This module defines
the dataclasses that hold those parameters; concrete instances for the four
platforms the paper evaluates live in :mod:`repro.machine.platforms`.

All bandwidths are in bytes/second, capacities in bytes, latencies in
seconds, and frequencies in Hz, so arithmetic composes without unit
juggling.  Convenience constructors accept GB/s / GiB / ns / GHz.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from enum import Enum

__all__ = [
    "GB",
    "GIB",
    "KIB",
    "MIB",
    "MemoryKind",
    "VectorISA",
    "CacheLevel",
    "MemorySpec",
    "NumaDomain",
    "PlatformSpec",
    "DeviceKind",
]

KIB = 1024
MIB = 1024 * KIB
GIB = 1024 * MIB
GB = 1_000_000_000


class MemoryKind(Enum):
    """Main-memory technology; determines bandwidth/latency character."""

    DDR4 = "ddr4"
    DDR5 = "ddr5"
    HBM2E = "hbm2e"


class DeviceKind(Enum):
    """Broad device class — CPUs pay MPI/threading overheads, GPUs do not
    (in the paper's single-device A100 runs)."""

    CPU = "cpu"
    GPU = "gpu"


@dataclass(frozen=True)
class VectorISA:
    """SIMD capability of one core.

    Attributes
    ----------
    name:
        Human-readable ISA name (``"AVX-512"``, ``"AVX2"``, ``"CUDA"``).
    width_bits:
        Register width in bits (512 for AVX-512 ZMM, 256 for AVX2 YMM).
    fma_units:
        Number of fused-multiply-add pipes per core that can issue at the
        full width each cycle.
    freq_penalty_full_width:
        Multiplicative clock penalty while executing full-width vector code
        (the AVX-512 "license" downclock the paper's ZMM discussion is
        about).  1.0 means no penalty.
    """

    name: str
    width_bits: int
    fma_units: int = 2
    freq_penalty_full_width: float = 1.0

    def lanes(self, dtype_bytes: int) -> int:
        """Number of SIMD lanes for an element of ``dtype_bytes`` bytes."""
        return self.width_bits // (8 * dtype_bytes)

    def flops_per_cycle(self, dtype_bytes: int) -> int:
        """Peak flops/cycle/core: lanes x FMA pipes x 2 (mul+add)."""
        return self.lanes(dtype_bytes) * self.fma_units * 2


@dataclass(frozen=True)
class CacheLevel:
    """One level of the on-chip cache hierarchy.

    ``capacity`` and ``bandwidth`` are per *scope*: ``scope`` is ``"core"``
    for private caches and ``"socket"`` for shared LLC.  ``bandwidth`` is
    the aggregate streaming bandwidth available when every core in the
    scope hits in this level (this is the quantity BabelStream measures at
    small array sizes, Figure 1).
    """

    name: str
    capacity: int
    bandwidth: float
    latency: float
    scope: str = "core"
    line_size: int = 64
    associativity: int = 8

    def __post_init__(self) -> None:
        if self.capacity <= 0 or self.bandwidth <= 0:
            raise ValueError(f"cache {self.name}: capacity/bandwidth must be positive")
        if self.scope not in ("core", "socket"):
            raise ValueError(f"cache {self.name}: scope must be 'core' or 'socket'")
        if self.capacity % (self.line_size * self.associativity):
            raise ValueError(
                f"cache {self.name}: capacity not divisible by line*assoc"
            )

    @property
    def num_sets(self) -> int:
        return self.capacity // (self.line_size * self.associativity)


@dataclass(frozen=True)
class MemorySpec:
    """Main memory attached to one socket.

    ``peak_bandwidth`` is the theoretical interface bandwidth; the paper
    shows achieved STREAM bandwidth is a platform-dependent fraction of it
    (55-63% on Xeon MAX HBM, ~75% on the DDR4 platforms), captured by
    ``stream_efficiency`` (and ``stream_efficiency_tuned`` for the
    streaming-stores "SS" flag variant on Xeon MAX).
    """

    kind: MemoryKind
    capacity: int
    peak_bandwidth: float
    stream_efficiency: float
    stream_efficiency_tuned: float | None = None
    latency: float = 90e-9

    def __post_init__(self) -> None:
        if not (0.0 < self.stream_efficiency <= 1.0):
            raise ValueError("stream_efficiency must be in (0, 1]")
        if self.stream_efficiency_tuned is not None and not (
            0.0 < self.stream_efficiency_tuned <= 1.0
        ):
            raise ValueError("stream_efficiency_tuned must be in (0, 1]")

    @property
    def achievable_bandwidth(self) -> float:
        """STREAM-achievable bandwidth with ordinary (application) flags."""
        return self.peak_bandwidth * self.stream_efficiency

    @property
    def achievable_bandwidth_tuned(self) -> float:
        """STREAM-achievable bandwidth with benchmark-tuned flags
        (streaming stores); falls back to the ordinary figure."""
        eff = self.stream_efficiency_tuned or self.stream_efficiency
        return self.peak_bandwidth * eff


@dataclass(frozen=True)
class NumaDomain:
    """A NUMA domain: a set of cores with local memory affinity."""

    domain_id: int
    socket: int
    cores: tuple[int, ...]

    def __post_init__(self) -> None:
        if not self.cores:
            raise ValueError("NUMA domain must contain at least one core")


@dataclass(frozen=True)
class PlatformSpec:
    """Complete description of one evaluated platform.

    The concrete numbers for each platform are taken from the paper's
    Section 2 (or, where it only cites totals, divided down to per-socket /
    per-core figures consistently with those totals).
    """

    name: str
    short_name: str
    kind: DeviceKind
    sockets: int
    cores_per_socket: int
    numa_per_socket: int
    smt: int  # hardware threads per core available (1 = no SMT/HT)
    base_freq: float
    turbo_freq: float  # all-core turbo
    isa: VectorISA
    caches: tuple[CacheLevel, ...]
    memory: MemorySpec  # per socket
    # Core-to-core one-way message latencies (seconds):
    latency_smt_sibling: float
    latency_same_socket: float
    latency_cross_socket: float
    latency_cross_numa: float | None = None  # same socket, other chiplet/NUMA
    #: Sustained per-core streaming throughput (bytes/s) for cache-resident
    #: data -- the load/store-pipe + fabric ceiling that caps the cache
    #: plateau of Figure 1 (a core cannot consume its L2's full port
    #: bandwidth in a STREAM-like loop).
    core_stream_bw: float = 40e9
    notes: str = ""

    def __post_init__(self) -> None:
        if self.sockets < 1 or self.cores_per_socket < 1:
            raise ValueError("sockets and cores_per_socket must be >= 1")
        if self.numa_per_socket < 1:
            raise ValueError("numa_per_socket must be >= 1")
        if self.cores_per_socket % self.numa_per_socket:
            raise ValueError("cores_per_socket must divide evenly into NUMA domains")
        if self.smt not in (1, 2, 4):
            raise ValueError("smt must be 1, 2 or 4")
        if self.turbo_freq < self.base_freq:
            raise ValueError("turbo frequency below base frequency")
        if not self.caches:
            raise ValueError("at least one cache level required")

    # ---- derived counts -------------------------------------------------

    @property
    def total_cores(self) -> int:
        return self.sockets * self.cores_per_socket

    @property
    def total_threads(self) -> int:
        return self.total_cores * self.smt

    @property
    def total_numa_domains(self) -> int:
        return self.sockets * self.numa_per_socket

    @property
    def cores_per_numa(self) -> int:
        return self.cores_per_socket // self.numa_per_socket

    # ---- derived compute ------------------------------------------------

    def peak_flops(self, dtype_bytes: int = 4, freq: float | None = None) -> float:
        """Theoretical peak flops/s of the whole node at ``freq``
        (default: base frequency, matching the paper's 13.6/11/8.45 FP32
        TFLOPS figures)."""
        f = self.base_freq if freq is None else freq
        return self.total_cores * self.isa.flops_per_cycle(dtype_bytes) * f

    def peak_flops_range(self, dtype_bytes: int = 4) -> tuple[float, float]:
        """Peak flops at (base, all-core-turbo) clocks."""
        return (
            self.peak_flops(dtype_bytes, self.base_freq),
            self.peak_flops(dtype_bytes, self.turbo_freq),
        )

    # ---- derived memory -------------------------------------------------

    @property
    def peak_bandwidth(self) -> float:
        """Node-level theoretical peak main-memory bandwidth."""
        return self.sockets * self.memory.peak_bandwidth

    @property
    def stream_bandwidth(self) -> float:
        """Node-level STREAM-achievable bandwidth, application flags."""
        return self.sockets * self.memory.achievable_bandwidth

    @property
    def stream_bandwidth_tuned(self) -> float:
        """Node-level STREAM-achievable bandwidth, tuned (SS) flags."""
        return self.sockets * self.memory.achievable_bandwidth_tuned

    def flop_byte_ratio(self, dtype_bytes: int = 4, achieved: bool = True) -> float:
        """Machine balance (flop/byte), the quantity the paper reports as
        9.4 / 36 / 28 for the three CPUs.

        The paper's figures divide peak FP32 flops at base clock by the
        *achieved STREAM* bandwidth (13.6e12 / 1446e9 = 9.4 on Xeon MAX);
        pass ``achieved=False`` for the ratio against theoretical peak
        bandwidth instead.
        """
        bw = self.stream_bandwidth if achieved else self.peak_bandwidth
        return self.peak_flops(dtype_bytes) / bw

    # ---- caches ----------------------------------------------------------

    def cache(self, name: str) -> CacheLevel:
        for lvl in self.caches:
            if lvl.name.lower() == name.lower():
                return lvl
        raise KeyError(f"{self.name} has no cache level named {name!r}")

    @property
    def last_level_cache(self) -> CacheLevel:
        return self.caches[-1]

    def cache_capacity_total(self, name: str) -> int:
        """Total node capacity of a cache level across its scope."""
        lvl = self.cache(name)
        if lvl.scope == "socket":
            return lvl.capacity * self.sockets
        return lvl.capacity * self.total_cores

    def cache_bandwidth_total(self, name: str) -> float:
        """Aggregate node streaming bandwidth out of a cache level."""
        lvl = self.cache(name)
        if lvl.scope == "socket":
            return lvl.bandwidth * self.sockets
        return lvl.bandwidth * self.total_cores

    def cache_to_memory_bw_ratio(self) -> float:
        """Ratio between the best on-chip cache streaming bandwidth and the
        achieved main-memory bandwidth (3.8x on Xeon MAX 9480, ~6x on
        8360Y, ~14x on EPYC 7V73X per Figure 1's small-size region).

        Uses the largest shared or private level that plausibly holds a
        STREAM working set — i.e. the last level cache — consistent with
        how Figure 1's cache plateau is read.
        """
        return self.cache_bandwidth_total(self.last_level_cache.name) / (
            self.stream_bandwidth
        )

    # ---- topology helpers -------------------------------------------------

    def numa_domains(self) -> tuple[NumaDomain, ...]:
        """Enumerate NUMA domains with their core id ranges.

        Cores are numbered socket-major then domain-major, matching the
        usual Linux enumeration on these systems.
        """
        domains = []
        cpn = self.cores_per_numa
        for s in range(self.sockets):
            for d in range(self.numa_per_socket):
                did = s * self.numa_per_socket + d
                first = s * self.cores_per_socket + d * cpn
                domains.append(
                    NumaDomain(did, s, tuple(range(first, first + cpn)))
                )
        return tuple(domains)

    def socket_of_core(self, core: int) -> int:
        if not (0 <= core < self.total_cores):
            raise ValueError(f"core {core} out of range on {self.name}")
        return core // self.cores_per_socket

    def numa_of_core(self, core: int) -> int:
        if not (0 <= core < self.total_cores):
            raise ValueError(f"core {core} out of range on {self.name}")
        within = core % self.cores_per_socket
        return self.socket_of_core(core) * self.numa_per_socket + (
            within // self.cores_per_numa
        )


def ghz(x: float) -> float:
    return x * 1e9


def ns(x: float) -> float:
    return x * 1e-9


def gbs(x: float) -> float:
    """GB/s (decimal, as in vendor bandwidth figures) to bytes/s."""
    return x * GB
