"""Volna: unstructured finite-volume nonlinear shallow-water solver.

"Unstructured mesh finite volume Nonlinear Shallow Water Equations
solver.  Also sensitive to indirect memory accesses as MG-CFD, but less
so.  Single precision, Indian ocean case with 30 million vertices, 200
time iterations" (paper Sec. 3; Reguly et al., GMD 2018).

Cell-centered FV on a triangulated ocean domain: per timestep a CFL
reduction, a Rusanov edge-flux sweep with Audusse hydrostatic
reconstruction over the bathymetry (the well-balanced treatment the real
Volna uses), a bed-slope source correction, an explicit Euler update,
and a wetting/drying clamp.  The edge-flux kernel is the indirect
hot spot; cells have only 3 neighbors, so the indirection pressure is
milder than MG-CFD's — matching the paper's characterization.

The Indian-ocean bathymetry is not redistributable;
:func:`synthetic_ocean` triangulates a rectangular basin with a sloping
beach and an island (DESIGN.md substitution table).

Invariants tested: the lake-at-rest state is exact (well-balancedness),
water volume is conserved to rounding in the closed basin, depth stays
non-negative, and a hump collapses outward symmetrically.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..machine.config import Compiler
from ..op2.mesh import Global
from ..op2.parloop import Op2Context, arg, arg_direct, arg_global
from ..ops.access import Access
from ..perfmodel.kernelmodel import AppClass
from .base import AppDefinition, register

__all__ = ["OceanMesh", "synthetic_ocean", "run_volna", "VOLNA"]

GRAV = 9.81
EPS_DRY = 1e-6
NVAR = 3  # eta (free surface), HU, HV


@dataclass(frozen=True)
class OceanMesh:
    """Triangulated basin: cells, internal edges, geometry."""

    n_cells: int
    edges: np.ndarray  # (m, 2) cell pairs
    edge_normal: np.ndarray  # (m, 2) unit normal from cell 0 to cell 1
    edge_length: np.ndarray  # (m,)
    cell_area: np.ndarray  # (n_cells,)
    cell_centroid: np.ndarray  # (n_cells, 2)
    bathymetry: np.ndarray  # (n_cells,) bed elevation b (negative = deep)
    bedge_cell: np.ndarray  # (mb,) boundary cell per wall edge
    bedge_normal: np.ndarray  # (mb, 2) outward wall normal
    bedge_length: np.ndarray  # (mb,)


def synthetic_ocean(nx: int, ny: int, depth: float = 1.0) -> OceanMesh:
    """Triangulate an nx x ny rectangle (2 triangles per quad) over a
    basin with a linear beach slope along +x and a Gaussian island."""
    if nx < 2 or ny < 2:
        raise ValueError("need at least a 2x2 quad grid")
    dx, dy = 1.0 / nx, 1.0 / ny
    n_cells = 2 * nx * ny
    cent = np.zeros((n_cells, 2))
    area = np.full(n_cells, 0.5 * dx * dy)
    for j in range(ny):
        for i in range(nx):
            q = 2 * (j * nx + i)
            x0, y0 = i * dx, j * dy
            # Lower-left triangle and upper-right triangle of the quad.
            cent[q] = (x0 + dx / 3, y0 + dy / 3)
            cent[q + 1] = (x0 + 2 * dx / 3, y0 + 2 * dy / 3)

    edges = []
    normals = []
    lengths = []
    diag = np.hypot(dx, dy)
    for j in range(ny):
        for i in range(nx):
            q = 2 * (j * nx + i)
            # Diagonal edge inside the quad.
            edges.append((q, q + 1))
            normals.append((dy / diag, dx / diag))
            lengths.append(diag)
            # Right neighbor: upper triangle q+1 to lower of (i+1, j).
            if i + 1 < nx:
                edges.append((q + 1, 2 * (j * nx + i + 1)))
                normals.append((1.0, 0.0))
                lengths.append(dy)
            # Top neighbor: upper triangle q+1 to lower of (i, j+1).
            if j + 1 < ny:
                edges.append((q + 1, 2 * ((j + 1) * nx + i)))
                normals.append((0.0, 1.0))
                lengths.append(dx)
    # Wall (boundary) edges close every boundary cell's normal fan.
    bcell, bnorm, blen = [], [], []
    for i in range(nx):
        bcell.append(2 * (0 * nx + i)); bnorm.append((0.0, -1.0)); blen.append(dx)
        bcell.append(2 * ((ny - 1) * nx + i) + 1); bnorm.append((0.0, 1.0)); blen.append(dx)
    for j in range(ny):
        bcell.append(2 * (j * nx + 0)); bnorm.append((-1.0, 0.0)); blen.append(dy)
        bcell.append(2 * (j * nx + nx - 1) + 1); bnorm.append((1.0, 0.0)); blen.append(dy)
    x, y = cent[:, 0], cent[:, 1]
    island = 0.8 * depth * np.exp(-(((x - 0.3) ** 2 + (y - 0.5) ** 2) / 0.005))
    beach = depth * np.maximum(0.0, (x - 0.7) / 0.3) * 1.2
    b = -depth + island + beach
    return OceanMesh(
        n_cells=n_cells,
        edges=np.asarray(edges, dtype=np.int64),
        edge_normal=np.asarray(normals),
        edge_length=np.asarray(lengths),
        cell_area=area,
        cell_centroid=cent,
        bathymetry=b,
        bedge_cell=np.asarray(bcell, dtype=np.int64),
        bedge_normal=np.asarray(bnorm),
        bedge_length=np.asarray(blen),
    )


def run_volna(
    ctx: Op2Context,
    domain: tuple[int, ...],
    iterations: int,
    init: str = "hump",
    mesh: OceanMesh | None = None,
) -> dict:
    """Run the NSWE solver; returns volume history and final state."""
    if mesh is None:
        if len(domain) == 2:
            nx, ny = domain[0] // 2, domain[1]
        else:
            side = max(2, int(np.sqrt(domain[0] / 2)))
            nx = ny = side
        mesh = synthetic_ocean(nx, ny)
    n_cells = mesh.n_cells
    f32 = np.float32

    cells = ctx.set("cells", n_cells)
    edge_set = ctx.set("edges", len(mesh.edges))
    bedge_set = ctx.set("bedges", len(mesh.bedge_cell))
    e2c = ctx.map("e2c", edge_set, cells, mesh.edges)
    b2c = ctx.map("b2c", bedge_set, cells, mesh.bedge_cell)

    eta0 = np.zeros(n_cells)
    if init == "hump":
        r2 = ((mesh.cell_centroid[:, 0] - 0.5) ** 2
              + (mesh.cell_centroid[:, 1] - 0.5) ** 2) / 0.01
        eta0 = 0.05 * np.exp(-r2)
    elif init != "rest":
        raise ValueError(f"unknown init {init!r}")
    # Free surface cannot sit below the bed (dry land keeps eta = b).
    eta0 = np.maximum(eta0, mesh.bathymetry)

    w = ctx.dat(cells, NVAR, "w", dtype=f32,
                data=np.stack([eta0, np.zeros(n_cells), np.zeros(n_cells)], axis=1))
    flux = ctx.dat(cells, NVAR, "flux", dtype=f32)
    bathy = ctx.dat(cells, 1, "bathy", dtype=f32, data=mesh.bathymetry)
    area = ctx.dat(cells, 1, "area", dtype=f32, data=mesh.cell_area)
    egeom = ctx.dat(edge_set, 3, "egeom", dtype=f32,
                    data=np.column_stack([mesh.edge_normal, mesh.edge_length]))
    bgeom = ctx.dat(bedge_set, 3, "bgeom", dtype=f32,
                    data=np.column_stack([mesh.bedge_normal, mesh.bedge_length]))

    dt_g = Global(1e30, "dt")
    cfl = 0.4
    min_len = float(mesh.edge_length.min())

    # ---- kernels ------------------------------------------------------------

    def zero_flux(f):
        f[...] = 0.0

    def compute_dt(g, wv, bv, av):
        h = np.maximum(wv[:, 0] - bv[:, 0], 0.0)
        wet = h > EPS_DRY
        speed = np.where(
            wet,
            np.sqrt(GRAV * np.maximum(h, EPS_DRY))
            + np.hypot(wv[:, 1], wv[:, 2]) / np.maximum(h, EPS_DRY),
            0.0,
        )
        local = np.where(wet, cfl * np.sqrt(2.0 * av[:, 0]) / np.maximum(speed, 1e-12), 1e30)
        g[0] = min(g[0], float(np.min(local)))

    def edge_flux(wl, wr, bl, br, geom, fl, fr):
        """Rusanov flux with Audusse hydrostatic reconstruction."""
        nx_, ny_, ln = geom[:, 0], geom[:, 1], geom[:, 2]
        bstar = np.maximum(bl[:, 0], br[:, 0])
        hl = np.maximum(wl[:, 0] - bl[:, 0], 0.0)
        hr = np.maximum(wr[:, 0] - br[:, 0], 0.0)
        hls = np.maximum(wl[:, 0] - bstar, 0.0)
        hrs = np.maximum(wr[:, 0] - bstar, 0.0)
        ul = np.where(hl > EPS_DRY, wl[:, 1] / np.maximum(hl, EPS_DRY), 0.0)
        vl = np.where(hl > EPS_DRY, wl[:, 2] / np.maximum(hl, EPS_DRY), 0.0)
        ur = np.where(hr > EPS_DRY, wr[:, 1] / np.maximum(hr, EPS_DRY), 0.0)
        vr = np.where(hr > EPS_DRY, wr[:, 2] / np.maximum(hr, EPS_DRY), 0.0)
        unl = ul * nx_ + vl * ny_
        unr = ur * nx_ + vr * ny_
        # Fluxes of (h, hu, hv) with reconstructed depths.
        f1l = hls * unl
        f1r = hrs * unr
        f2l = hls * ul * unl + 0.5 * GRAV * hls * hls * nx_
        f2r = hrs * ur * unr + 0.5 * GRAV * hrs * hrs * nx_
        f3l = hls * vl * unl + 0.5 * GRAV * hls * hls * ny_
        f3r = hrs * vr * unr + 0.5 * GRAV * hrs * hrs * ny_
        lam = np.maximum(
            np.abs(unl) + np.sqrt(GRAV * hls), np.abs(unr) + np.sqrt(GRAV * hrs)
        )
        q1 = 0.5 * (f1l + f1r) - 0.5 * lam * (hrs - hls)
        q2 = 0.5 * (f2l + f2r) - 0.5 * lam * (hrs * ur - hls * ul)
        q3 = 0.5 * (f3l + f3r) - 0.5 * lam * (hrs * vr - hls * vl)
        # Bed-slope correction (Audusse et al. 2004): the left cell gets
        # + g/2 (h*_L^2 - h_L^2) n, the right cell the mirrored term — at
        # rest every edge then contributes -g/2 h_cell^2 n_outward, which
        # closes to zero around each cell (well-balancedness).
        c2l = 0.5 * GRAV * (hls * hls - hl * hl)
        c2r = 0.5 * GRAV * (hrs * hrs - hr * hr)
        fl[:, 0] = -q1 * ln
        fl[:, 1] = (-q2 + c2l * nx_) * ln
        fl[:, 2] = (-q3 + c2l * ny_) * ln
        # The right cell's outward normal is -n, so its source term
        # enters with the opposite sign.
        fr[:, 0] = q1 * ln
        fr[:, 1] = (q2 - c2r * nx_) * ln
        fr[:, 2] = (q3 - c2r * ny_) * ln

    def wall_flux(wc, bc, geom, fc):
        """Slip-wall pressure flux: no mass through the wall, the
        hydrostatic pressure closes the boundary cell's normal fan."""
        h = np.maximum(wc[:, 0] - bc[:, 0], 0.0)
        pres = 0.5 * GRAV * h * h
        fc[:, 0] = 0.0
        fc[:, 1] = -pres * geom[:, 0] * geom[:, 2]
        fc[:, 2] = -pres * geom[:, 1] * geom[:, 2]

    def update(wv, f, av):
        dtv = np.float32(dt_now[0])
        wv[...] = wv + dtv / av * f

    def wet_dry(wv, bv):
        h = wv[:, 0] - bv[:, 0]
        dry = h <= EPS_DRY
        wv[:, 0] = np.where(dry, bv[:, 0], wv[:, 0])
        wv[:, 1] = np.where(dry, 0.0, wv[:, 1])
        wv[:, 2] = np.where(dry, 0.0, wv[:, 2])

    def volume_sum(g, wv, bv, av):
        g[0] += float(np.sum(np.maximum(wv[:, 0] - bv[:, 0], 0.0) * av[:, 0]))

    dt_now = np.array([0.0])
    diagnostics = {"volume": [], "dt": []}

    for _ in range(iterations):
        dt_g.value[0] = 1e30
        ctx.par_loop(compute_dt, "compute_dt", cells,
                     arg_global(dt_g, Access.MIN),
                     arg_direct(w, Access.READ), arg_direct(bathy, Access.READ),
                     arg_direct(area, Access.READ), flops_per_elem=12)
        dt_now[0] = min(float(dt_g.value[0]), 0.5 * min_len)
        diagnostics["dt"].append(float(dt_now[0]))
        ctx.par_loop(zero_flux, "zero_flux", cells,
                     arg_direct(flux, Access.WRITE))
        ctx.par_loop(edge_flux, "edge_flux", edge_set,
                     arg(w, e2c, 0, Access.READ), arg(w, e2c, 1, Access.READ),
                     arg(bathy, e2c, 0, Access.READ), arg(bathy, e2c, 1, Access.READ),
                     arg_direct(egeom, Access.READ),
                     arg(flux, e2c, 0, Access.INC), arg(flux, e2c, 1, Access.INC),
                     flops_per_elem=75)
        ctx.par_loop(wall_flux, "wall_flux", bedge_set,
                     arg(w, b2c, 0, Access.READ), arg(bathy, b2c, 0, Access.READ),
                     arg_direct(bgeom, Access.READ),
                     arg(flux, b2c, 0, Access.INC), flops_per_elem=9)
        ctx.par_loop(update, "update", cells,
                     arg_direct(w, Access.RW), arg_direct(flux, Access.READ),
                     arg_direct(area, Access.READ), flops_per_elem=2 * NVAR)
        ctx.par_loop(wet_dry, "wet_dry", cells,
                     arg_direct(w, Access.RW), arg_direct(bathy, Access.READ),
                     flops_per_elem=4)
        vol = Global(0.0, "volume")
        ctx.par_loop(volume_sum, "volume_sum", cells,
                     arg_global(vol, Access.INC),
                     arg_direct(w, Access.READ), arg_direct(bathy, Access.READ),
                     arg_direct(area, Access.READ), flops_per_elem=3)
        diagnostics["volume"].append(float(vol.value[0]))

    gather = getattr(ctx, "gather_dat", None)
    diagnostics["w"] = gather(w) if gather else w.data.copy()
    diagnostics["mesh"] = mesh
    return diagnostics


VOLNA = register(AppDefinition(
    name="volna",
    klass=AppClass.UNSTRUCTURED,
    dtype_bytes=4,
    run=run_volna,
    paper_domain=(7746, 3873),  # ~30M triangles, Indian-ocean scale
    paper_iterations=200,
    test_domain=(16, 8),
    test_iterations=4,
    halo_depth=1,
    structured=False,
    # Sec. 5: "the new oneAPI compilers work best for Volna".
    compiler_affinity={
        Compiler.CLASSIC: 0.95,
        Compiler.ONEAPI: 1.0,
        Compiler.AOCC: 1.0,
        Compiler.GCC: 0.97,
        Compiler.NVCC: 1.0,
    },
    mesh_neighbors=6.0,
    # A 2-D triangulation renumbers well: most gathers hit cache — Volna
    # is "less so" latency-sensitive than MG-CFD (Sec. 3).
    gather_hit=0.7,
    description="Nonlinear shallow-water tsunami solver on triangles; FP32",
))
