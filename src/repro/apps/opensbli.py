"""OpenSBLI SA / SN: 3D compressible Navier–Stokes (Euler core).

"Structured mesh finite difference Navier-Stokes solver ... Production
code with 2 variants — Store All (SA), which is bandwidth-bound, and
Store None (SN), which recomputes derivatives on the fly, reducing data
movement pressure, but still mostly bandwidth bound.  Double precision,
320³ problem size, 20 time iterations" (paper Sec. 3).

Both variants integrate the same 3-D compressible Euler system (5
conserved fields: ρ, ρu, ρv, ρw, E; ideal gas) with 4th-order central
differences, 2nd-order Lax–Friedrichs-style dissipation, and two-stage
Runge–Kutta:

* **SA** evaluates each of the 15 directional flux derivatives in its own
  loop, storing a work array per derivative (17 loops/stage, ~21 resident
  fields — maximal data movement, minimal recomputation);
* **SN** fuses the entire right-hand side into one loop that recomputes
  every flux on the fly (2 loops/stage — ~3x the flops, a fraction of
  the traffic).

They perform the same arithmetic, so tests assert SA == SN to rounding —
exactly the property that lets the paper treat them as two formulations
of one problem ("the speedup between these two is just below 2x on Xeon
MAX 9480, but over 2.5x on 8360Y/EPYC", Sec. 6).
"""

from __future__ import annotations

import numpy as np

from ..machine.config import Compiler
from ..ops.access import Access, ArgDat, ArgGbl
from ..ops.runtime import OpsContext
from ..ops.stencil import point_stencil, star_stencil
from ..perfmodel.kernelmodel import AppClass
from .base import AppDefinition, register

__all__ = ["run_opensbli", "OPENSBLI_SA", "OPENSBLI_SN"]

GAMMA = 1.4
HALO = 2
#: 4th-order first-derivative coefficients for offsets (+1, +2).
D1, D2 = 2.0 / 3.0, -1.0 / 12.0
#: Lax-Friedrichs-style dissipation strength.
SIGMA = 0.12

NFIELDS = 5  # rho, rho*u, rho*v, rho*w, E


def run_opensbli(
    ctx: OpsContext,
    domain: tuple[int, ...],
    iterations: int,
    variant: str = "sa",
    init: str = "wave",
) -> dict:
    """Run the SA or SN variant; returns conserved-field diagnostics."""
    ndim = len(domain)
    if ndim != 3:
        raise ValueError("OpenSBLI runs the 3-D testcase")
    if variant not in ("sa", "sn"):
        raise ValueError("variant must be 'sa' or 'sn'")
    n = domain
    block = ctx.block("sbli", n)
    P0 = point_stencil(3)
    S2 = star_stencil(3, 2)
    ZERO = (0, 0, 0)
    dx = 1.0 / n[0]
    dt = 0.2 * dx  # fixed CFL for the standard testcase

    names = ["rho", "rhou", "rhov", "rhow", "E"]
    q = [block.dat(nm, halo=HALO) for nm in names]
    q0 = [block.dat(nm + "_0", halo=HALO) for nm in names]
    rhs = [block.dat(nm + "_rhs", halo=HALO) for nm in names]
    # SA stores the flux fields (evaluated once per point per axis) and
    # the 15 flux-derivative work arrays; SN stores neither.
    if variant == "sa":
        fluxes = [[block.dat(f"F{ax}_{nm}", halo=HALO) for nm in names] for ax in range(3)]
        work = [[block.dat(f"d{ax}_{nm}", halo=0) for nm in names] for ax in range(3)]

    # ---- initial condition -------------------------------------------------
    rho0 = np.ones(n)
    u0 = np.zeros(n)
    if init == "wave":
        x = (np.arange(n[0]) + 0.5) * dx
        rho0 = 1.0 + 0.05 * np.sin(2 * np.pi * x)[:, None, None] * np.ones(n)
        u0 = 0.1 * np.ones(n)
    elif init != "uniform":
        raise ValueError(f"unknown init {init!r}")
    p0 = np.ones(n) / GAMMA
    q[0].set_from_global(rho0)
    q[1].set_from_global(rho0 * u0)
    q[4].set_from_global(p0 / (GAMMA - 1.0) + 0.5 * rho0 * u0**2)

    def D(dat, sten, acc):
        return ArgDat(dat, sten, acc)

    # ---- flux algebra (shared by SA and SN so they match exactly) -----------

    def _flux(comp, axis, qs, off):
        """Euler flux component ``comp`` in direction ``axis`` at ``off``."""
        rho = qs[0][off]
        mom = [qs[1][off], qs[2][off], qs[3][off]]
        e = qs[4][off]
        vel = mom[axis] / rho
        ke = 0.5 * (mom[0] ** 2 + mom[1] ** 2 + mom[2] ** 2) / rho
        p = (GAMMA - 1.0) * (e - ke)
        if comp == 0:
            return mom[axis]
        if comp in (1, 2, 3):
            f = mom[comp - 1] * vel
            if comp - 1 == axis:
                f = f + p
            return f
        return (e + p) * vel

    def _ddx(comp, axis, qs):
        """4th-order derivative of flux ``comp`` along ``axis`` plus the
        conservative dissipation term, recomputing fluxes at every tap
        (the Store-None formulation)."""
        offs = [tuple(r if d == axis else 0 for d in range(3)) for r in (-2, -1, 1, 2)]
        m2, m1, p1, p2 = offs
        deriv = (
            D1 * (_flux(comp, axis, qs, p1) - _flux(comp, axis, qs, m1))
            + D2 * (_flux(comp, axis, qs, p2) - _flux(comp, axis, qs, m2))
        ) / dx
        diss = SIGMA / dx * (
            qs[comp][p1] - 2.0 * qs[comp][ZERO] + qs[comp][m1]
        )
        return deriv - diss

    def _ddx_stored(comp, axis, fstored, qc):
        """Same derivative from a pre-computed flux field (Store-All) —
        identical floating-point operations tap-for-tap, so SA == SN.
        Only the conserved field being dissipated is read (qc)."""
        offs = [tuple(r if d == axis else 0 for d in range(3)) for r in (-2, -1, 1, 2)]
        m2, m1, p1, p2 = offs
        deriv = (
            D1 * (fstored[p1] - fstored[m1]) + D2 * (fstored[p2] - fstored[m2])
        ) / dx
        diss = SIGMA / dx * (qc[p1] - 2.0 * qc[ZERO] + qc[m1])
        return deriv - diss

    # ---- kernels -------------------------------------------------------------

    def save_state(*args):
        for i in range(NFIELDS):
            args[i][ZERO] = args[NFIELDS + i][ZERO]

    def flux_kernel(axis):
        def k(*args):
            # args: 5 flux outputs, then q[0..4] (point reads).
            outs, qs = args[:NFIELDS], args[NFIELDS:]
            for comp in range(NFIELDS):
                outs[comp][ZERO] = _flux(comp, axis, qs, ZERO)
        return k

    def deriv_kernel(axis, comp):
        def k(out, fstored, qc):
            out[ZERO] = _ddx_stored(comp, axis, fstored, qc)
        return k

    def assemble_sa(*args):
        # args: rhs[0..4], then the 15 work arrays (axis-major).
        for comp in range(NFIELDS):
            total = 0.0
            for ax in range(3):
                total = total + args[NFIELDS + ax * NFIELDS + comp][ZERO]
            args[comp][ZERO] = -total

    def rhs_sn(*args):
        # args: rhs[0..4], then q[0..4] (radius-2).
        qs = args[NFIELDS:]
        for comp in range(NFIELDS):
            total = 0.0
            for ax in range(3):
                total = total + _ddx(comp, ax, qs)
            args[comp][ZERO] = -total

    def rk_stage(coeff):
        def k(*args):
            # args: q[0..4] (RW), q0[0..4], rhs[0..4]
            for i in range(NFIELDS):
                args[i][ZERO] = args[NFIELDS + i][ZERO] + coeff * dt * args[2 * NFIELDS + i][ZERO]
        return k

    def bc_copy(offset, nm):
        def k(fld):
            fld[ZERO] = fld[offset]
        return k

    def mass_sum(g, rho):
        g[0] += float(np.sum(rho[ZERO]))

    def max_speed(g, rho, rhou):
        g[0] = max(g[0], float(np.max(np.abs(rhou[ZERO] / rho[ZERO]))))

    def _layer(axis, side, k):
        rng = []
        for d in range(3):
            if d == axis:
                rng.append((-k, -k + 1) if side < 0 else (n[d] + k - 1, n[d] + k))
            else:
                rng.append((-HALO, n[d] + HALO))
        return rng

    def apply_bcs(tag):
        for fld in q:
            for axis in range(3):
                for side in (-1, 1):
                    for k in (1, 2):
                        off = tuple((k if side < 0 else -k) if d == axis else 0 for d in range(3))
                        ctx.par_loop(bc_copy(off, fld.name),
                                     f"bc_{tag}_{fld.name}_{axis}{'m' if side < 0 else 'p'}{k}",
                                     block, _layer(axis, side, k),
                                     D(fld, S2, Access.RW))

    # ---- time loop -------------------------------------------------------------

    interior = block.interior
    flops_flux = 30  # one flux component evaluation (from scratch)
    #: SA: all five components at once share the primitive computation.
    flops_flux_all = 60
    #: SA: derivative of a stored flux is a cheap stencil + dissipation.
    flops_deriv_stored = 18
    #: SN: each derivative recomputes 4 full flux taps on the fly.
    flops_deriv = 4 * flops_flux + 12

    for _ in range(iterations):
        ctx.par_loop(save_state, "save_state", block, interior,
                     *[D(d, P0, Access.WRITE) for d in q0],
                     *[D(d, P0, Access.READ) for d in q])
        for coeff in (0.5, 1.0):  # two-stage RK
            apply_bcs(f"s{coeff}")
            if variant == "sa":
                for ax in range(3):
                    # One flux evaluation per point, stored (the "All").
                    ctx.par_loop(flux_kernel(ax), f"flux_{ax}", block,
                                 block.extended(HALO),
                                 *[D(fluxes[ax][c], P0, Access.WRITE) for c in range(NFIELDS)],
                                 *[D(d, P0, Access.READ) for d in q],
                                 flops_per_point=flops_flux_all)
                    for comp in range(NFIELDS):
                        ctx.par_loop(deriv_kernel(ax, comp), f"deriv_{ax}_{names[comp]}",
                                     block, interior,
                                     D(work[ax][comp], P0, Access.WRITE),
                                     D(fluxes[ax][comp], S2, Access.READ),
                                     D(q[comp], S2, Access.READ),
                                     flops_per_point=flops_deriv_stored)
                ctx.par_loop(assemble_sa, "assemble_rhs", block, interior,
                             *[D(d, P0, Access.WRITE) for d in rhs],
                             *[D(work[ax][comp], P0, Access.READ)
                               for ax in range(3) for comp in range(NFIELDS)],
                             flops_per_point=3 * NFIELDS)
            else:
                # The fused store-none kernel re-evaluates every flux at
                # every tap; unlike the SA flux sweep it cannot amortize
                # primitive computations across points, only (partially)
                # across the five components of one tap.
                ctx.par_loop(rhs_sn, "rhs_store_none", block, interior,
                             *[D(d, P0, Access.WRITE) for d in rhs],
                             *[D(d, S2, Access.READ) for d in q],
                             flops_per_point=3 * (4 * 22 + 12) + 3 * NFIELDS)
            ctx.par_loop(rk_stage(coeff), "rk_update", block, interior,
                         *[D(d, P0, Access.RW) for d in q],
                         *[D(d, P0, Access.READ) for d in q0],
                         *[D(d, P0, Access.READ) for d in rhs],
                         flops_per_point=3 * NFIELDS)

    mass = np.zeros(1)
    speed = np.zeros(1)
    ctx.par_loop(mass_sum, "mass_sum", block, interior,
                 ArgGbl(mass, Access.INC), D(q[0], P0, Access.READ), flops_per_point=1)
    ctx.par_loop(max_speed, "max_speed", block, interior,
                 ArgGbl(speed, Access.MAX), D(q[0], P0, Access.READ),
                 D(q[1], P0, Access.READ), flops_per_point=2)
    return {
        "mass": float(mass[0]),
        "max_speed": float(speed[0]),
        "fields": {nm: d.gather_global() for nm, d in zip(names, q)},
        "dt": dt,
    }


def _run_sa(ctx, domain, iterations, **kw):
    return run_opensbli(ctx, domain, iterations, variant="sa", **kw)


def _run_sn(ctx, domain, iterations, **kw):
    return run_opensbli(ctx, domain, iterations, variant="sn", **kw)


_AFFINITY_SA = {
    # One of the structured apps where Classic edges ahead (Sec. 5).
    Compiler.CLASSIC: 1.0,
    Compiler.ONEAPI: 0.96,
    Compiler.AOCC: 1.0,
    Compiler.GCC: 0.97,
    Compiler.NVCC: 1.0,
}
_AFFINITY_SN = {
    Compiler.CLASSIC: 0.99,
    Compiler.ONEAPI: 1.0,
    Compiler.AOCC: 1.0,
    Compiler.GCC: 0.97,
    Compiler.NVCC: 1.0,
}

OPENSBLI_SA = register(AppDefinition(
    name="opensbli_sa",
    klass=AppClass.STRUCTURED_BW,
    dtype_bytes=8,
    run=_run_sa,
    paper_domain=(320, 320, 320),
    paper_iterations=20,
    test_domain=(12, 12, 12),
    test_iterations=3,
    halo_depth=2,
    structured=True,
    compiler_affinity=_AFFINITY_SA,
    description="Compressible Navier-Stokes, Store-All formulation (maximal data movement)",
))

OPENSBLI_SN = register(AppDefinition(
    name="opensbli_sn",
    klass=AppClass.STRUCTURED_COMPUTE,
    dtype_bytes=8,
    run=_run_sn,
    paper_domain=(320, 320, 320),
    paper_iterations=20,
    test_domain=(12, 12, 12),
    test_iterations=3,
    halo_depth=2,
    structured=True,
    compiler_affinity=_AFFINITY_SN,
    description="Compressible Navier-Stokes, Store-None formulation (recompute on the fly)",
))
