"""CloverLeaf 2D/3D: explicit compressible Eulerian hydrodynamics.

A dimension-generic reimplementation of the CloverLeaf proxy (Mallinson
et al., Cray User Group 2013) on the :mod:`repro.ops` DSL.  One timestep
runs the full hydro cycle — ideal-gas EOS, artificial viscosity, CFL
timestep reduction, PdV work, acceleration, face flux calculation,
conservative donor-cell advection of mass/energy/momentum per direction
(split, as in the original, into a flux sweep and an update sweep),
field reset, and per-field boundary kernels — double precision, the
paper's 7680² (2D) / 408³ (3D) sizes at 50 iterations.

Simplifications vs. the Fortran original (documented in DESIGN.md): all
fields are cell-centered (collocated) rather than staggering velocity on
nodes, boundary conditions are zero-gradient with explicitly zeroed
boundary fluxes, and advection is first-order donor-cell inside the
radius-2 halo CloverLeaf uses for its van-Leer scheme.  The loop
structure, field count, access radii, per-point traffic, and the
many-small-boundary-kernel pattern — the properties the paper's
measurements depend on — are preserved.

Invariants tested: uniform states are exact fixed points, total mass is
conserved to rounding under zero boundary flux, density stays positive,
and a pressure jump drives flow toward the low-pressure side.
"""

from __future__ import annotations

import numpy as np

from ..machine.config import Compiler
from ..ops.access import Access, ArgDat, ArgGbl
from ..ops.runtime import OpsContext
from ..ops.stencil import point_stencil, star_stencil
from ..perfmodel.kernelmodel import AppClass
from .base import AppDefinition, register

__all__ = ["run_cloverleaf", "CLOVERLEAF_2D", "CLOVERLEAF_3D"]

GAMMA = 1.4
HALO = 2


def _off(ndim: int, axis: int, r: int) -> tuple[int, ...]:
    o = [0] * ndim
    o[axis] = r
    return tuple(o)


def run_cloverleaf(
    ctx: OpsContext,
    domain: tuple[int, ...],
    iterations: int,
    init: str = "sod",
    advection: str = "vanleer",
) -> dict:
    """Run the hydro cycle; returns diagnostics (mass/energy sums, dt
    history, final fields gathered globally).

    ``advection``: ``"vanleer"`` (second-order limited, radius-2 reads —
    CloverLeaf's scheme) or ``"donor"`` (first-order upwind).
    """
    ndim = len(domain)
    if ndim not in (2, 3):
        raise ValueError("CloverLeaf runs in 2 or 3 dimensions")
    if advection not in ("vanleer", "donor"):
        raise ValueError("advection must be 'vanleer' or 'donor'")
    n = domain
    block = ctx.block("clover", n)
    P0 = point_stencil(ndim)
    S1 = star_stencil(ndim, 1)
    S2 = star_stencil(ndim, 2)
    ZERO = P0.points[0]

    density0 = block.dat("density0", halo=HALO, init=1.0)
    density1 = block.dat("density1", halo=HALO)
    energy0 = block.dat("energy0", halo=HALO, init=1.0)
    energy1 = block.dat("energy1", halo=HALO)
    pressure = block.dat("pressure", halo=HALO)
    viscosity = block.dat("viscosity", halo=HALO)
    soundspeed = block.dat("soundspeed", halo=HALO)
    vel0 = [block.dat(f"vel0_{d}", halo=HALO) for d in range(ndim)]
    vel1 = [block.dat(f"vel1_{d}", halo=HALO) for d in range(ndim)]
    vol_flux = [block.dat(f"vol_flux_{d}", halo=HALO) for d in range(ndim)]
    mass_flux = [block.dat(f"mass_flux_{d}", halo=HALO) for d in range(ndim)]
    ener_flux = block.dat("ener_flux", halo=HALO)
    mom_flux = block.dat("mom_flux", halo=HALO)

    dx = 1.0 / n[0]
    dt = np.array([1e30])

    if init == "sod":
        e = np.ones(n)
        e[tuple([slice(0, n[0] // 2)] + [slice(None)] * (ndim - 1))] = 2.5
        energy0.set_from_global(e)
    elif init != "uniform":
        raise ValueError(f"unknown init {init!r}")

    def D(dat, sten, acc):
        return ArgDat(dat, sten, acc)

    # ---- physics kernels --------------------------------------------------

    def ideal_gas(p, ss, rho, e):
        pv = (GAMMA - 1.0) * rho[ZERO] * e[ZERO]
        p[ZERO] = pv
        ss[ZERO] = np.sqrt(GAMMA * np.maximum(pv, 1e-30) / np.maximum(rho[ZERO], 1e-30))

    def viscosity_kernel(visc, *vels):
        div = 0.0
        for d in range(ndim):
            div = div + (vels[d][_off(ndim, d, 1)] - vels[d][_off(ndim, d, -1)]) / (2 * dx)
        visc[ZERO] = np.where(div < 0.0, 2.0 * dx * dx * div * div, 0.0)

    def calc_dt(gdt, ss, *vels):
        vmax = ss[ZERO].copy()
        for d in range(ndim):
            vmax = vmax + np.abs(vels[d][ZERO])
        gdt[0] = min(gdt[0], float(np.min(0.5 * dx / np.maximum(vmax, 1e-12))))

    def pdv(gdt, rho1, e1, rho0, e0, p, visc, *vels):
        div = 0.0
        for d in range(ndim):
            div = div + (vels[d][_off(ndim, d, 1)] - vels[d][_off(ndim, d, -1)]) / (2 * dx)
        e1[ZERO] = e0[ZERO] - gdt[0] * (p[ZERO] + visc[ZERO]) * div / np.maximum(rho0[ZERO], 1e-12)
        rho1[ZERO] = rho0[ZERO]

    def accelerate(axis):
        def k(gdt, vnew, vold, rho, p, visc):
            hi, lo = _off(ndim, axis, 1), _off(ndim, axis, -1)
            grad = (p[hi] + visc[hi] - p[lo] - visc[lo]) / (2 * dx)
            vnew[ZERO] = vold[ZERO] - gdt[0] * grad / np.maximum(rho[ZERO], 1e-12)
        return k

    def flux_calc(axis):
        def k(gdt, vf, v):
            hi = _off(ndim, axis, 1)
            vf[ZERO] = 0.5 * (v[ZERO] + v[hi]) * gdt[0] / dx
        return k

    def _face_value(q, f, axis):
        """Upwind face value: donor cell, optionally with a van-Leer
        (minmod-limited) second-order correction — CloverLeaf's scheme,
        needing radius-2 reads."""
        hi = _off(ndim, axis, 1)
        up = f > 0.0
        donor = np.where(up, q[ZERO], q[hi])
        if advection == "donor":
            return donor
        lo = _off(ndim, axis, -1)
        hi2 = _off(ndim, axis, 2)
        # Slopes relative to the donor cell.
        diff_uw = np.where(up, q[ZERO] - q[lo], q[hi2] - q[hi])
        diff_dw = np.where(up, q[hi] - q[ZERO], q[ZERO] - q[hi])
        slope = np.where(
            diff_uw * diff_dw > 0.0,
            np.sign(diff_dw) * np.minimum(np.abs(diff_uw), np.abs(diff_dw)),
            0.0,
        )
        # (1 - |courant|) weighting, as in CloverLeaf's advec_cell.
        sigma = np.minimum(np.abs(f), 1.0)
        return donor + 0.5 * (1.0 - sigma) * slope

    def advec_cell_flux(axis):
        def k(mf, ef, rho, e, vf):
            f = vf[ZERO]
            rho_face = _face_value(rho, f, axis)
            # Energy is advected as rho*e; build its face value from the
            # same limited reconstruction applied to the product.
            hi = _off(ndim, axis, 1)
            re0 = rho[ZERO] * e[ZERO]

            class _Prod:
                def __getitem__(self_inner, off):
                    return rho[off] * e[off]

            re_face = _face_value(_Prod(), f, axis)
            mf[ZERO] = f * rho_face
            ef[ZERO] = f * re_face
        return k

    def advec_cell_update(axis):
        def k(rho, e, mf, ef):
            lo = _off(ndim, axis, -1)
            re_old = rho[ZERO] * e[ZERO]
            rho_new = np.maximum(rho[ZERO] - (mf[ZERO] - mf[lo]), 1e-12)
            re_new = re_old - (ef[ZERO] - ef[lo])
            rho[ZERO] = rho_new
            e[ZERO] = re_new / rho_new
        return k

    def advec_mom_flux(axis):
        def k(mof, v, vf):
            hi = _off(ndim, axis, 1)
            f = vf[ZERO]
            mof[ZERO] = f * np.where(f > 0.0, v[ZERO], v[hi])
        return k

    def advec_mom_update(axis):
        def k(v, mof):
            lo = _off(ndim, axis, -1)
            v[ZERO] = v[ZERO] - (mof[ZERO] - mof[lo])
        return k

    def reset_field(dst, src):
        dst[ZERO] = src[ZERO]

    def field_summary(gmass, ge, rho, e):
        gmass[0] += float(np.sum(rho[ZERO]))
        ge[0] += float(np.sum(rho[ZERO] * e[ZERO]))

    # ---- boundary kernels ---------------------------------------------------
    # Zero-gradient: ghost layer k copies the nearest interior layer.

    def bc_copy(offset):
        def k(fld):
            fld[ZERO] = fld[offset]
        return k

    def zero_field(fld):
        fld[ZERO] = 0.0

    def _layer(axis, side, k):
        """Range of ghost layer k (1-based) on one side of one axis."""
        rng = []
        for d in range(ndim):
            if d == axis:
                rng.append((-k, -k + 1) if side < 0 else (n[d] + k - 1, n[d] + k))
            else:
                rng.append((-HALO, n[d] + HALO))
        return rng

    def apply_bcs(fields, label, mode="copy"):
        """Physical-boundary ghost fill: zero-gradient ("copy") for state
        fields, hard zero for flux fields (closed box — this is what
        makes conservation exact)."""
        for fld in fields:
            for axis in range(ndim):
                for side in (-1, 1):
                    for k in (1, 2):
                        tag = f"{label}_{fld.name}_{axis}{'m' if side < 0 else 'p'}{k}"
                        if mode == "zero":
                            ctx.par_loop(zero_field, f"update_halo_{tag}", block,
                                         _layer(axis, side, k),
                                         D(fld, P0, Access.WRITE))
                        else:
                            offset = _off(ndim, axis, (k if side < 0 else -k))
                            sten = S1 if k == 1 else S2
                            ctx.par_loop(bc_copy(offset), f"update_halo_{tag}", block,
                                         _layer(axis, side, k),
                                         D(fld, sten, Access.RW))

    def zero_boundary_flux(axis):
        """No flow through physical boundaries: zero the ghost strips of
        vol_flux[axis] and the last interior face layer."""
        for side in (-1, 1):
            for k in (1, 2):
                ctx.par_loop(zero_field, f"flux_bc_{axis}{'m' if side < 0 else 'p'}{k}",
                             block, _layer(axis, side, k),
                             D(vol_flux[axis], P0, Access.WRITE))
        last = []
        for d in range(ndim):
            last.append((n[d] - 1, n[d]) if d == axis else (-HALO, n[d] + HALO))
        ctx.par_loop(zero_field, f"flux_bc_{axis}_last", block, last,
                     D(vol_flux[axis], P0, Access.WRITE))

    # ---- timestep loop -------------------------------------------------------

    interior = block.interior
    diagnostics = {"dt": []}

    for _ in range(iterations):
        ctx.par_loop(ideal_gas, "ideal_gas", block, interior,
                     D(pressure, P0, Access.WRITE), D(soundspeed, P0, Access.WRITE),
                     D(density0, P0, Access.READ), D(energy0, P0, Access.READ),
                     flops_per_point=6)
        apply_bcs([pressure] + vel0, "pre")
        ctx.par_loop(viscosity_kernel, "viscosity", block, interior,
                     D(viscosity, P0, Access.WRITE),
                     *[D(v, S1, Access.READ) for v in vel0],
                     flops_per_point=4 * ndim + 4)
        dt[0] = 1e30
        ctx.par_loop(calc_dt, "calc_dt", block, interior,
                     ArgGbl(dt, Access.MIN),
                     D(soundspeed, P0, Access.READ),
                     *[D(v, P0, Access.READ) for v in vel0],
                     flops_per_point=2 * ndim + 3)
        dt[0] = min(float(dt[0]), 0.04 * dx)
        diagnostics["dt"].append(float(dt[0]))

        ctx.par_loop(pdv, "pdv", block, interior,
                     ArgGbl(dt, Access.READ),
                     D(density1, P0, Access.WRITE), D(energy1, P0, Access.WRITE),
                     D(density0, P0, Access.READ), D(energy0, P0, Access.READ),
                     D(pressure, P0, Access.READ), D(viscosity, P0, Access.READ),
                     *[D(v, S1, Access.READ) for v in vel0],
                     flops_per_point=4 * ndim + 6)
        apply_bcs([viscosity], "visc")
        for axis in range(ndim):
            ctx.par_loop(accelerate(axis), f"accelerate_{axis}", block, interior,
                         ArgGbl(dt, Access.READ),
                         D(vel1[axis], P0, Access.WRITE), D(vel0[axis], P0, Access.READ),
                         D(density0, P0, Access.READ), D(pressure, S1, Access.READ),
                         D(viscosity, S1, Access.READ), flops_per_point=8)
        apply_bcs(vel1, "postacc")
        for axis in range(ndim):
            ctx.par_loop(flux_calc(axis), f"flux_calc_{axis}", block, interior,
                         ArgGbl(dt, Access.READ),
                         D(vol_flux[axis], P0, Access.WRITE),
                         D(vel1[axis], S1, Access.READ), flops_per_point=4)
            zero_boundary_flux(axis)
        apply_bcs([density1, energy1], "preadv")
        for axis in range(ndim):
            adv_sten = S2 if advection == "vanleer" else S1
            ctx.par_loop(advec_cell_flux(axis), f"advec_cell_flux_{axis}", block, interior,
                         D(mass_flux[axis], P0, Access.WRITE),
                         D(ener_flux, P0, Access.WRITE),
                         D(density1, adv_sten, Access.READ),
                         D(energy1, adv_sten, Access.READ),
                         D(vol_flux[axis], P0, Access.READ),
                         flops_per_point=8 if advection == "donor" else 26)
            apply_bcs([mass_flux[axis], ener_flux], f"cflux{axis}", mode="zero")
            ctx.par_loop(advec_cell_update(axis), f"advec_cell_update_{axis}", block, interior,
                         D(density1, S1, Access.RW), D(energy1, S1, Access.RW),
                         D(mass_flux[axis], S1, Access.READ),
                         D(ener_flux, S1, Access.READ), flops_per_point=8)
            apply_bcs([density1, energy1], f"adv{axis}")
            for vaxis in range(ndim):
                ctx.par_loop(advec_mom_flux(axis), f"advec_mom_flux_{axis}_{vaxis}",
                             block, interior,
                             D(mom_flux, P0, Access.WRITE),
                             D(vel1[vaxis], S1, Access.READ),
                             D(vol_flux[axis], P0, Access.READ), flops_per_point=4)
                apply_bcs([mom_flux], f"mflux{axis}{vaxis}", mode="zero")
                ctx.par_loop(advec_mom_update(axis), f"advec_mom_update_{axis}_{vaxis}",
                             block, interior,
                             D(vel1[vaxis], S1, Access.RW),
                             D(mom_flux, S1, Access.READ), flops_per_point=3)
        for dst, src in [(density0, density1), (energy0, energy1)] + list(zip(vel0, vel1)):
            ctx.par_loop(reset_field, f"reset_{dst.name}", block, interior,
                         D(dst, P0, Access.WRITE), D(src, P0, Access.READ))

    mass = np.zeros(1)
    etot = np.zeros(1)
    ctx.par_loop(field_summary, "field_summary", block, interior,
                 ArgGbl(mass, Access.INC), ArgGbl(etot, Access.INC),
                 D(density0, P0, Access.READ), D(energy0, P0, Access.READ),
                 flops_per_point=3)
    diagnostics["mass"] = float(mass[0])
    diagnostics["energy"] = float(etot[0])
    diagnostics["density"] = density0.gather_global()
    diagnostics["energy_field"] = energy0.gather_global()
    diagnostics["velocity"] = [v.gather_global() for v in vel0]
    return diagnostics


CLOVERLEAF_2D = register(AppDefinition(
    name="cloverleaf2d",
    klass=AppClass.STRUCTURED_BW,
    dtype_bytes=8,
    run=run_cloverleaf,
    paper_domain=(7680, 7680),
    paper_iterations=50,
    test_domain=(48, 48),
    test_iterations=4,
    halo_depth=2,
    structured=True,
    # Sec. 5: the Classic compilers win on half the structured apps by a
    # few %, with OneAPI within 4-6%; GCC slightly behind AOCC on EPYC.
    compiler_affinity={
        Compiler.CLASSIC: 1.0,
        Compiler.ONEAPI: 0.96,
        Compiler.AOCC: 1.0,
        Compiler.GCC: 0.97,
        Compiler.NVCC: 1.0,
    },
    description="Structured Eulerian hydrodynamics proxy (2D); the most bandwidth-bound application",
))

CLOVERLEAF_3D = register(AppDefinition(
    name="cloverleaf3d",
    klass=AppClass.STRUCTURED_BW,
    dtype_bytes=8,
    run=run_cloverleaf,
    paper_domain=(408, 408, 408),
    paper_iterations=50,
    test_domain=(14, 14, 14),
    test_iterations=3,
    halo_depth=2,
    structured=True,
    compiler_affinity={
        Compiler.CLASSIC: 1.0,
        Compiler.ONEAPI: 0.95,
        Compiler.AOCC: 1.0,
        Compiler.GCC: 0.97,
        Compiler.NVCC: 1.0,
    },
    description="Structured Eulerian hydrodynamics proxy (3D)",
))
