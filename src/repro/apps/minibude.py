"""miniBUDE: molecular-docking energy evaluation proxy (compute bound).

"Proxy molecular docking code, representative of BUDE.  Compute and
latency bound.  Single precision, bm1 testcase, 30 iterations" (paper
Sec. 3; Poenaru, Lin & McIntosh-Smith, ISC 2021).

Each iteration evaluates the interaction energy of every ligand *pose*:
the ligand's atoms are rigidly transformed by the pose's six degrees of
freedom and scored against every protein atom with a BUDE-style pairwise
potential (Lennard-Jones-like steric term plus a distance-clamped
electrostatic term).  The inner loop is ``poses x ligand_atoms x
protein_atoms`` fused multiply-adds over a tiny working set — which is
what makes it compute bound (the paper reports 6 TFLOPS/s on the Xeon
MAX, ZMM high +45%, HT -28%, and that the Classic compiler's code
stalls, so only oneAPI numbers exist).

The bm1 deck (26 ligand atoms, 938 protein atoms, 65536 poses) is not
redistributable; :func:`synthetic_deck` generates a deck with the same
shape and atom-type statistics (DESIGN.md substitution table).

Tests: the analytic two-atom energy, rigid-motion invariance (energy of
an untransformed pose equals direct evaluation), pose-order independence,
and the flop accounting used for the 6 TFLOPS figure.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..machine.config import Compiler
from ..ops.access import Access, ArgDat, ArgGbl
from ..ops.runtime import OpsContext
from ..ops.stencil import point_stencil
from ..perfmodel.kernelmodel import AppClass
from .base import AppDefinition, register

__all__ = ["Deck", "synthetic_deck", "pose_energies", "run_minibude", "MINIBUDE", "FLOPS_PER_PAIR"]

#: Flops per ligand-protein atom pair in the scoring kernel (distance,
#: steric, electrostatic, accumulate) — the count used to report GFLOP/s,
#: matching miniBUDE's own accounting.
FLOPS_PER_PAIR = 32


@dataclass(frozen=True)
class Deck:
    """A docking deck: protein, ligand, and pose transforms."""

    protein_pos: np.ndarray  # (n_protein, 3) float32
    protein_charge: np.ndarray  # (n_protein,)
    protein_radius: np.ndarray  # (n_protein,)
    ligand_pos: np.ndarray  # (n_ligand, 3)
    ligand_charge: np.ndarray  # (n_ligand,)
    ligand_radius: np.ndarray  # (n_ligand,)
    poses: np.ndarray  # (n_poses, 6): 3 Euler angles + 3 translations

    @property
    def n_poses(self) -> int:
        return self.poses.shape[0]

    @property
    def n_ligand(self) -> int:
        return self.ligand_pos.shape[0]

    @property
    def n_protein(self) -> int:
        return self.protein_pos.shape[0]

    def flops_per_pose(self) -> float:
        return self.n_ligand * (self.n_protein * FLOPS_PER_PAIR + 30)


#: bm1 testcase shape: 26 ligand atoms, 938 protein atoms, 65536 poses.
BM1_SHAPE = (26, 938, 65536)


def synthetic_deck(
    n_ligand: int = 26,
    n_protein: int = 938,
    n_poses: int = 4096,
    seed: int = 7,
) -> Deck:
    """Generate a bm1-shaped synthetic deck (uniform atoms in a box,
    small random pose perturbations)."""
    rng = np.random.default_rng(seed)
    f32 = np.float32
    return Deck(
        protein_pos=rng.uniform(-20, 20, (n_protein, 3)).astype(f32),
        protein_charge=rng.uniform(-0.5, 0.5, n_protein).astype(f32),
        protein_radius=rng.uniform(1.2, 2.2, n_protein).astype(f32),
        ligand_pos=rng.uniform(-3, 3, (n_ligand, 3)).astype(f32),
        ligand_charge=rng.uniform(-0.5, 0.5, n_ligand).astype(f32),
        ligand_radius=rng.uniform(1.2, 2.2, n_ligand).astype(f32),
        poses=rng.uniform(-1, 1, (n_poses, 6)).astype(f32),
    )


def rotation_matrices(angles: np.ndarray) -> np.ndarray:
    """ZYX Euler rotation matrices for (n, 3) angles -> (n, 3, 3)."""
    a, b, c = angles[:, 0], angles[:, 1], angles[:, 2]
    ca, sa = np.cos(a), np.sin(a)
    cb, sb = np.cos(b), np.sin(b)
    cc, sc = np.cos(c), np.sin(c)
    r = np.empty((angles.shape[0], 3, 3), dtype=angles.dtype)
    r[:, 0, 0] = cb * cc
    r[:, 0, 1] = cb * sc
    r[:, 0, 2] = -sb
    r[:, 1, 0] = sa * sb * cc - ca * sc
    r[:, 1, 1] = sa * sb * sc + ca * cc
    r[:, 1, 2] = sa * cb
    r[:, 2, 0] = ca * sb * cc + sa * sc
    r[:, 2, 1] = ca * sb * sc - sa * cc
    r[:, 2, 2] = ca * cb
    return r


def pair_energy(dist2, r_l, r_p, q_l, q_p):
    """BUDE-style pairwise score: clamped steric + electrostatic terms."""
    dist = np.sqrt(dist2 + 1e-6)
    sigma = r_l + r_p
    steric = np.maximum(0.0, 1.0 - dist / sigma)
    elec = q_l * q_p * np.maximum(0.0, 1.0 - dist / (2.0 * sigma))
    return 4.0 * steric * steric + elec


def pose_energies(deck: Deck, pose_slice: slice | None = None) -> np.ndarray:
    """Reference (dense) evaluation of all pose energies."""
    poses = deck.poses if pose_slice is None else deck.poses[pose_slice]
    rot = rotation_matrices(poses[:, :3])  # (P,3,3)
    trans = poses[:, 3:]  # (P,3)
    energies = np.zeros(poses.shape[0], dtype=np.float32)
    for l in range(deck.n_ligand):
        lig = deck.ligand_pos[l]
        # Transformed ligand atom per pose: (P, 3).
        xyz = rot @ lig + trans
        d2 = (
            (xyz[:, None, 0] - deck.protein_pos[None, :, 0]) ** 2
            + (xyz[:, None, 1] - deck.protein_pos[None, :, 1]) ** 2
            + (xyz[:, None, 2] - deck.protein_pos[None, :, 2]) ** 2
        )
        e = pair_energy(
            d2,
            deck.ligand_radius[l],
            deck.protein_radius[None, :],
            deck.ligand_charge[l],
            deck.protein_charge[None, :],
        )
        energies += e.sum(axis=1).astype(np.float32)
    return energies


def run_minibude(
    ctx: OpsContext,
    domain: tuple[int, ...],
    iterations: int,
    deck: Deck | None = None,
) -> dict:
    """Evaluate all pose energies ``iterations`` times through the DSL.

    ``domain = (n_poses,)``; poses parallelize perfectly (pure MPI in the
    paper splits the pose array, no halo exchange at all).
    """
    if len(domain) != 1:
        raise ValueError("miniBUDE iterates over a 1-D pose array")
    n_poses = domain[0]
    if deck is None:
        deck = synthetic_deck(n_poses=n_poses)
    if deck.n_poses != n_poses:
        raise ValueError("deck pose count does not match domain")
    block = ctx.block("poses", (n_poses,))
    P0 = point_stencil(1)
    energies = block.dat("energies", halo=0, dtype=np.float32)
    # Pose parameters as 6 separate dats (the DSL is scalar-per-point).
    pose_dats = [block.dat(f"pose_{i}", halo=0, dtype=np.float32) for i in range(6)]
    for i, d in enumerate(pose_dats):
        d.set_from_global(deck.poses[:, i].copy())

    lo_global = {"offset": 0}

    def score(e_out, *pose_args):
        # Reconstruct this range's poses and run the dense evaluation.
        cols = [p[(0,)] for p in pose_args]
        poses = np.stack(cols, axis=1)
        sub = Deck(
            deck.protein_pos, deck.protein_charge, deck.protein_radius,
            deck.ligand_pos, deck.ligand_charge, deck.ligand_radius,
            poses.astype(np.float32),
        )
        e_out[(0,)] = pose_energies(sub)

    best = np.array([np.inf], dtype=np.float64)

    def best_energy(g, e):
        g[0] = min(g[0], float(np.min(e[(0,)])))

    for _ in range(iterations):
        ctx.par_loop(score, "fasten_main", block, block.interior,
                     ArgDat(energies, P0, Access.WRITE),
                     *[ArgDat(p, P0, Access.READ) for p in pose_dats],
                     flops_per_point=deck.flops_per_pose())
        ctx.par_loop(best_energy, "best_energy", block, block.interior,
                     ArgGbl(best, Access.MIN),
                     ArgDat(energies, P0, Access.READ), flops_per_point=1)

    return {
        "energies": energies.gather_global(),
        "best": float(best[0]),
        "deck": deck,
    }


MINIBUDE = register(AppDefinition(
    name="minibude",
    klass=AppClass.COMPUTE_BOUND,
    dtype_bytes=4,
    run=run_minibude,
    paper_domain=(65536,),
    paper_iterations=30,
    test_domain=(256,),
    test_iterations=2,
    halo_depth=0,
    structured=True,
    # Sec. 5: "the Classical compilers generate code that stalls,
    # therefore we could only measure with the OneAPI compilers".
    compiler_affinity={
        Compiler.CLASSIC: 0.0,
        Compiler.ONEAPI: 1.0,
        Compiler.AOCC: 1.0,
        Compiler.GCC: 0.95,
        Compiler.NVCC: 1.0,
    },
    description="Molecular docking energy evaluation; compute/latency bound, FP32",
))
