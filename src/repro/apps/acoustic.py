"""Acoustic: 3D high-order finite-difference wave propagation.

"Structured-mesh high-order (8th) finite difference acoustic wave
propagation solver.  Bandwidth and cache locality bound, with large
communications volume over MPI.  Single precision, 320³ problem size, 10
time iterations" (paper Sec. 3).

The solver advances the scalar wave equation u_tt = c² ∇²u with an
8th-order central Laplacian (star stencil, radius 4 — hence the deep,
expensive halos) and 2nd-order leapfrog in time.  Per iteration: one
radius-4 update kernel over the whole domain (the cache-locality-bound
hot loop), a point-source injection, a per-side sponge damping layer,
and a max-amplitude reduction; the three time levels rotate by pointer
swap, as production codes do.

Invariants tested: the zero field is a fixed point, a centered point
source produces an axis-symmetric wavefront, leapfrog at CFL < 1/√3
stays bounded, and the numerical wave speed of a 1D pulse matches c.
"""

from __future__ import annotations

import numpy as np

from ..machine.config import Compiler
from ..ops.access import Access, ArgDat, ArgGbl
from ..ops.runtime import OpsContext
from ..ops.stencil import point_stencil, star_stencil
from ..perfmodel.kernelmodel import AppClass
from .base import AppDefinition, register

__all__ = ["run_acoustic", "LAPLACIAN_COEFFS", "ACOUSTIC"]

#: 8th-order central second-derivative coefficients (c0, c1..c4).
LAPLACIAN_COEFFS = (
    -205.0 / 72.0,
    8.0 / 5.0,
    -1.0 / 5.0,
    8.0 / 315.0,
    -1.0 / 560.0,
)

HALO = 4


def run_acoustic(
    ctx: OpsContext,
    domain: tuple[int, ...],
    iterations: int,
    cfl: float = 0.4,
    source: str = "point",
) -> dict:
    """Run the leapfrog wave solver; returns amplitude history and the
    final wavefield."""
    ndim = len(domain)
    if ndim != 3:
        raise ValueError("the Acoustic benchmark is 3-D")
    n = domain
    block = ctx.block("acoustic", n)
    P0 = point_stencil(3)
    S4 = star_stencil(3, 4)
    ZERO = (0, 0, 0)

    u_prev = block.dat("u_prev", halo=HALO, dtype=np.float32)
    u_curr = block.dat("u_curr", halo=HALO, dtype=np.float32)
    u_next = block.dat("u_next", halo=HALO, dtype=np.float32)
    # Heterogeneous velocity-squared model (c=1 with a +10% deep layer).
    vel2 = block.dat("vel2", halo=0, dtype=np.float32)
    c2 = np.ones(n, dtype=np.float32)
    c2[:, :, : n[2] // 3] = 1.21
    vel2.set_from_global(c2)

    dx = 1.0 / n[0]
    cmax = float(np.sqrt(c2.max()))
    dt = cfl * dx / (cmax * np.sqrt(3.0))
    r2 = np.float32((dt / dx) ** 2)
    c0, c1_, c2_, c3_, c4_ = (np.float32(c) for c in LAPLACIAN_COEFFS)

    def D(dat, sten, acc):
        return ArgDat(dat, sten, acc)

    def wave_update(unew, uc, up, v2):
        lap = 3.0 * c0 * uc[ZERO]
        coeffs = (c1_, c2_, c3_, c4_)
        for axis in range(3):
            for r in range(1, 5):
                hi = tuple(r if d == axis else 0 for d in range(3))
                lo = tuple(-r if d == axis else 0 for d in range(3))
                lap = lap + coeffs[r - 1] * (uc[hi] + uc[lo])
        unew[ZERO] = 2.0 * uc[ZERO] - up[ZERO] + r2 * v2[ZERO] * lap

    def inject(unew):
        unew[ZERO] = unew[ZERO] + np.float32(1.0)

    def sponge(unew):
        unew[ZERO] = unew[ZERO] * np.float32(0.90)

    def max_amp(g, uc):
        g[0] = max(g[0], float(np.max(np.abs(uc[ZERO]))))

    def bc_zero(fld):
        fld[ZERO] = 0.0

    def side_rng(axis, side, depth=HALO):
        rng = []
        for d in range(3):
            if d == axis:
                rng.append((-depth, 0) if side < 0 else (n[d], n[d] + depth))
            else:
                rng.append((-depth, n[d] + depth))
        return rng

    def sponge_rng(axis, side, width=2):
        rng = []
        for d in range(3):
            if d == axis:
                rng.append((0, width) if side < 0 else (n[d] - width, n[d]))
            else:
                rng.append((0, n[d]))
        return rng

    mid = tuple(d // 2 for d in n)
    interior = block.interior
    amps = []

    for it in range(iterations):
        # Dirichlet ghosts (zero) on all six faces of the current field.
        for axis in range(3):
            for side in (-1, 1):
                tag = f"{axis}{'m' if side < 0 else 'p'}"
                ctx.par_loop(bc_zero, f"halo_zero_{tag}", block, side_rng(axis, side),
                             D(u_curr, P0, Access.WRITE))
        ctx.par_loop(wave_update, "wave_update", block, interior,
                     D(u_next, P0, Access.WRITE), D(u_curr, S4, Access.READ),
                     D(u_prev, P0, Access.READ), D(vel2, P0, Access.READ),
                     flops_per_point=3 * 8 + 3 * 4 + 2 + 6)  # taps + scale
        if source == "point" and it < 2:
            ctx.par_loop(inject, "source_inject", block,
                         [(m, m + 1) for m in mid],
                         D(u_next, P0, Access.RW))
        for axis in range(3):
            for side in (-1, 1):
                tag = f"{axis}{'m' if side < 0 else 'p'}"
                ctx.par_loop(sponge, f"sponge_{tag}", block, sponge_rng(axis, side),
                             D(u_next, P0, Access.RW), flops_per_point=1)
        # Receiver sampling: production seismic codes record a small
        # receiver plane, not a full-field reduction, every step.
        amp = np.zeros(1)
        rec_plane = [(0, n[0]), (0, n[1]), (n[2] // 2, n[2] // 2 + 1)]
        ctx.par_loop(max_amp, "record_receivers", block, rec_plane,
                     ArgGbl(amp, Access.MAX), D(u_next, P0, Access.READ),
                     flops_per_point=1)
        amps.append(float(amp[0]))
        u_prev, u_curr, u_next = u_curr, u_next, u_prev  # pointer rotation

    return {
        "amplitude": amps,
        "field": u_curr.gather_global(),
        "dt": dt,
    }


ACOUSTIC = register(AppDefinition(
    name="acoustic",
    klass=AppClass.STRUCTURED_COMPUTE,
    dtype_bytes=4,
    run=run_acoustic,
    paper_domain=(320, 320, 320),
    paper_iterations=10,
    test_domain=(24, 24, 24),
    test_iterations=4,
    halo_depth=4,
    structured=True,
    # Sec. 5: "for Acoustic the Classical compilers are 15% slower".
    compiler_affinity={
        Compiler.CLASSIC: 1.0 / 1.15,
        Compiler.ONEAPI: 1.0,
        Compiler.AOCC: 1.0,
        Compiler.GCC: 0.97,
        Compiler.NVCC: 1.0,
    },
    description="8th-order FD acoustic wave propagation; cache-locality bound with deep halos",
))
