"""miniWeather: 2D compressible stratified atmospheric dynamics proxy.

"Structured mesh proxy code implementing basic dynamics seen in
atmospheric weather and climate simulations.  Bandwidth bound.  Double
precision, 4000x2000 problem size, simulation time 1.0" (paper Sec. 3;
Norman, ORNL 2020).

State: perturbations (ρ', ρu, ρw, ρθ') over a hydrostatic dry adiabatic
background ρ0(z), θ0.  Each timestep performs dimensionally split
x-then-z updates; each direction computes 4th-order interpolated fluxes
with hyperviscosity (radius-2 tendency kernel) followed by an update
kernel, with solid-wall boundaries.  Fluxes are formulated purely in
perturbation quantities, so the zero-perturbation state is an *exact*
discrete equilibrium — tested, together with mass conservation and the
buoyant rise of a warm bubble.
"""

from __future__ import annotations

import numpy as np

from ..machine.config import Compiler
from ..ops.access import Access, ArgDat, ArgGbl
from ..ops.runtime import OpsContext
from ..ops.stencil import point_stencil, star_stencil
from ..perfmodel.kernelmodel import AppClass
from .base import AppDefinition, register

__all__ = ["run_miniweather", "MINIWEATHER"]

HALO = 2
GRAV = 9.81
C0 = 1.0  # scaled sound speed of the perturbation system
NVAR = 4  # rho', rho*u, rho*w, rho*theta'
HV = 0.05  # hyperviscosity strength


def run_miniweather(
    ctx: OpsContext,
    domain: tuple[int, ...],
    iterations: int,
    init: str = "thermal",
) -> dict:
    """Run the split-dimension solver; returns diagnostics."""
    if len(domain) != 2:
        raise ValueError("miniWeather is 2-D (x, z)")
    nx, nz = domain
    block = ctx.block("weather", (nx, nz))
    P0 = point_stencil(2)
    S1 = star_stencil(2, 1)
    S2 = star_stencil(2, 2)
    ZERO = (0, 0)
    dx = 1.0 / nx
    dt = 0.3 * dx / (C0 + 1.0)

    names = ["rho_p", "rhou", "rhow", "rhot"]
    state = [block.dat(nm, halo=HALO) for nm in names]
    tend = [block.dat(nm + "_tend", halo=0) for nm in names]
    # Hydrostatic background density (z-dependent), cell-centered.
    z = (np.arange(nz) + 0.5) / nz
    rho0_col = np.exp(-z)  # exponentially stratified background
    rho0 = block.dat("rho0", halo=HALO)
    rho0.set_from_global(np.broadcast_to(rho0_col[None, :], (nx, nz)).copy())

    if init == "thermal":
        xs = (np.arange(nx) + 0.5) / nx
        zs = (np.arange(nz) + 0.5) / nz
        r2 = ((xs[:, None] - 0.5) ** 2 + (zs[None, :] - 0.3) ** 2) / 0.02
        state[3].set_from_global(0.1 * np.exp(-r2))
    elif init != "equilibrium":
        raise ValueError(f"unknown init {init!r}")

    def D(dat, sten, acc):
        return ArgDat(dat, sten, acc)

    # ---- kernels ----------------------------------------------------------
    # Perturbation-flux formulation: with zero perturbations every flux
    # and source term is identically zero -> exact discrete equilibrium.

    def tend_x(tr, tu, tw, tt, rp, ru, rw, rt, r0):
        def d4(f, axis=0):
            p2 = f[(2, 0)]; p1 = f[(1, 0)]; m1 = f[(-1, 0)]; m2 = f[(-2, 0)]
            return (8.0 * (p1 - m1) - (p2 - m2)) / (12.0 * dx)

        def hv(f):
            return HV / dx * (f[(1, 0)] - 2.0 * f[(0, 0)] + f[(-1, 0)])

        rho_t = r0[ZERO] + rp[ZERO]
        u = ru[ZERO] / rho_t
        # Linearized + advective perturbation fluxes in x.
        tr[ZERO] = -(d4(ru)) + hv(rp)
        tu[ZERO] = -(d4_prod(ru, ru, rho_t, dx)) - C0 * C0 * d4(rp) + hv(ru)
        tw[ZERO] = -(u * d4(rw)) + hv(rw)
        tt[ZERO] = -(u * d4(rt)) + hv(rt)

    def d4_prod(a, b, rho, dx_):
        p2 = a[(2, 0)] * b[(2, 0)]
        p1 = a[(1, 0)] * b[(1, 0)]
        m1 = a[(-1, 0)] * b[(-1, 0)]
        m2 = a[(-2, 0)] * b[(-2, 0)]
        return (8.0 * (p1 - m1) - (p2 - m2)) / (12.0 * dx_) / rho

    def tend_z(tr, tu, tw, tt, rp, ru, rw, rt, r0):
        def d4z(f):
            p2 = f[(0, 2)]; p1 = f[(0, 1)]; m1 = f[(0, -1)]; m2 = f[(0, -2)]
            return (8.0 * (p1 - m1) - (p2 - m2)) / (12.0 * dx)

        def hvz(f):
            return HV / dx * (f[(0, 1)] - 2.0 * f[(0, 0)] + f[(0, -1)])

        rho_t = r0[ZERO] + rp[ZERO]
        w = rw[ZERO] / rho_t
        tr[ZERO] = -(d4z(rw)) + hvz(rp)
        tu[ZERO] = -(w * d4z(ru)) + hvz(ru)
        # Vertical momentum: pressure-perturbation gradient + buoyancy.
        tw[ZERO] = -(C0 * C0 * d4z(rp)) + GRAV * rt[ZERO] + hvz(rw)
        tt[ZERO] = -(w * d4z(rt)) + hvz(rt)

    def update(coeff):
        def k(*args):
            # args: state[0..3] RW, tend[0..3] READ
            for i in range(NVAR):
                args[i][ZERO] = args[i][ZERO] + coeff * dt * args[NVAR + i][ZERO]
        return k

    def mass_sum(g, rp):
        g[0] += float(np.sum(rp[ZERO]))

    def max_w(g, rw):
        g[0] = max(g[0], float(np.max(np.abs(rw[ZERO]))))

    # Boundary handling: zero-gradient ghosts for scalars and tangential
    # momentum; the wall-normal momentum's ghosts are zeroed so the walls
    # are impermeable (and the zero-perturbation equilibrium stays exact).
    def _layer(axis, side, k):
        rng = []
        for d, nd in enumerate((nx, nz)):
            if d == axis:
                rng.append((-k, -k + 1) if side < 0 else (nd + k - 1, nd + k))
            else:
                rng.append((-HALO, nd + HALO))
        return rng

    def bc_copy(off):
        def k(f):
            f[ZERO] = f[off]
        return k

    def bc_zero(f):
        f[ZERO] = 0.0

    def apply_bcs(tag):
        for i, fld in enumerate(state + [rho0]):
            normal = {1: 0, 2: 1}.get(i)  # rhou is normal to x walls, rhow to z
            for axis in range(2):
                for side in (-1, 1):
                    for k in (1, 2):
                        tagk = f"bc_{tag}_{fld.name}_{axis}{'m' if side < 0 else 'p'}{k}"
                        if normal == axis:
                            ctx.par_loop(bc_zero, tagk, block, _layer(axis, side, k),
                                         D(fld, P0, Access.WRITE))
                        else:
                            off = tuple((k if side < 0 else -k) if d == axis else 0
                                        for d in range(2))
                            sten = S1 if k == 1 else S2
                            ctx.par_loop(bc_copy(off), tagk, block, _layer(axis, side, k),
                                         D(fld, sten, Access.RW))

    interior = block.interior
    diagnostics = {"max_w": []}

    for _ in range(iterations):
        for direction, tk in (("x", tend_x), ("z", tend_z)):
            apply_bcs(direction)
            ctx.par_loop(tk, f"tend_{direction}", block, interior,
                         *[D(t, P0, Access.WRITE) for t in tend],
                         *[D(s, S2, Access.READ) for s in state],
                         D(rho0, P0, Access.READ),
                         flops_per_point=4 * 9 + 14)
            ctx.par_loop(update(1.0), f"update_{direction}", block, interior,
                         *[D(s, P0, Access.RW) for s in state],
                         *[D(t, P0, Access.READ) for t in tend],
                         flops_per_point=3 * NVAR)
        w = np.zeros(1)
        ctx.par_loop(max_w, "max_w", block, interior,
                     ArgGbl(w, Access.MAX), D(state[2], P0, Access.READ),
                     flops_per_point=1)
        diagnostics["max_w"].append(float(w[0]))

    mass = np.zeros(1)
    ctx.par_loop(mass_sum, "mass_sum", block, interior,
                 ArgGbl(mass, Access.INC), D(state[0], P0, Access.READ),
                 flops_per_point=1)
    diagnostics["mass"] = float(mass[0])
    diagnostics["fields"] = {nm: s.gather_global() for nm, s in zip(names, state)}
    diagnostics["dt"] = dt
    return diagnostics


MINIWEATHER = register(AppDefinition(
    name="miniweather",
    klass=AppClass.STRUCTURED_BW,
    dtype_bytes=8,
    run=run_miniweather,
    paper_domain=(4000, 2000),
    paper_iterations=450,  # ~"simulation time 1.0" at the stable dt
    test_domain=(40, 20),
    test_iterations=5,
    halo_depth=2,
    structured=True,
    # Sec. 5: "for miniWeather [the Classic compilers are] 34% slower".
    compiler_affinity={
        Compiler.CLASSIC: 1.0 / 1.34,
        Compiler.ONEAPI: 1.0,
        Compiler.AOCC: 1.0,
        Compiler.GCC: 0.97,
        Compiler.NVCC: 1.0,
    },
    description="2D atmospheric dynamics proxy (thermal bubble), bandwidth bound",
))
