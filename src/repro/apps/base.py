"""Application framework: definitions, paper metadata, spec building.

Each benchmarked application (paper Section 3) is a real numerical code
built on one of the DSLs.  An :class:`AppDefinition` couples the code
with the paper's run parameters (problem size, iterations, precision)
and the Section 5 compiler-affinity facts.  ``build_spec`` runs the
application at a scaled-down size through a recording context and
extrapolates the measured per-loop profiles to paper scale — producing
the :class:`~repro.perfmodel.kernelmodel.AppSpec` the performance model
and every figure harness consume.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable

from ..machine.config import Compiler
from ..op2.parloop import Op2Context
from ..ops.runtime import OpsContext
from ..perfmodel.kernelmodel import AppClass, AppSpec

__all__ = ["AppDefinition", "build_spec", "register", "get_app", "all_apps", "APP_ORDER"]


@dataclass(frozen=True)
class AppDefinition:
    """One benchmarked application.

    ``run`` executes the application: ``run(ctx, domain, iterations)`` →
    app-specific diagnostics dict.  ``paper_domain``/``paper_iterations``
    are the Section 3 run parameters; ``test_domain`` is the scaled-down
    size used for profiling and tests.  ``compiler_affinity`` encodes the
    paper's Section 5 codegen observations (performance relative to the
    best compiler; 0 = does not run).
    """

    name: str
    klass: AppClass
    dtype_bytes: int
    run: Callable[..., dict]
    paper_domain: tuple[int, ...]
    paper_iterations: int
    test_domain: tuple[int, ...]
    test_iterations: int
    halo_depth: int
    structured: bool
    compiler_affinity: dict[Compiler, float] = field(default_factory=dict)
    mesh_neighbors: float = 6.0
    gather_hit: float | None = None  # mesh-dependent gather cache hit rate
    description: str = ""

    def make_context(self):
        return OpsContext() if self.structured else Op2Context()


_REGISTRY: dict[str, AppDefinition] = {}

#: Paper presentation order (Figures 3-8).
APP_ORDER = [
    "cloverleaf2d",
    "cloverleaf3d",
    "opensbli_sa",
    "opensbli_sn",
    "acoustic",
    "miniweather",
    "mgcfd",
    "volna",
    "minibude",
]


def register(defn: AppDefinition) -> AppDefinition:
    if defn.name in _REGISTRY:
        raise ValueError(f"application {defn.name!r} already registered")
    _REGISTRY[defn.name] = defn
    return defn


def get_app(name: str) -> AppDefinition:
    _ensure_loaded()
    try:
        return _REGISTRY[name]
    except KeyError:
        raise KeyError(
            f"unknown application {name!r}; available: {sorted(_REGISTRY)}"
        ) from None


def all_apps() -> list[AppDefinition]:
    _ensure_loaded()
    return [_REGISTRY[n] for n in APP_ORDER if n in _REGISTRY]


def _ensure_loaded() -> None:
    """Import every application module so registrations run."""
    from . import (  # noqa: F401
        acoustic,
        cloverleaf,
        mgcfd,
        minibude,
        miniweather,
        opensbli,
        volna,
    )


def build_spec(
    defn: AppDefinition,
    domain: tuple[int, ...] | None = None,
    iterations: int | None = None,
) -> AppSpec:
    """Profile a scaled-down run and extrapolate to paper scale.

    Loop point counts scale with the domain-size ratio; bytes/flops per
    point are size-independent (measured).  Halo-exchange frequency and
    width come from the recording context's counters.
    """
    run_domain = domain or defn.test_domain
    run_iters = iterations or defn.test_iterations
    ctx = defn.make_context()
    defn.run(ctx, run_domain, run_iters)

    paper_pts = math.prod(defn.paper_domain)
    run_pts = math.prod(run_domain)
    if defn.structured and len(run_domain) == len(defn.paper_domain):
        ratios = tuple(p / r for p, r in zip(defn.paper_domain, run_domain))
        loops = tuple(ctx.loop_specs(iterations=run_iters, point_scale=ratios,
                                     run_domain=run_domain))
    else:
        loops = tuple(ctx.loop_specs(iterations=run_iters,
                                     point_scale=paper_pts / run_pts))

    if defn.structured:
        exch = ctx.halo_exchange_count / run_iters
        fields = (
            ctx.halo_fields_exchanged / ctx.halo_exchange_count
            if ctx.halo_exchange_count
            else 0.0
        )
        reductions = ctx.reduction_count / run_iters
    else:
        # Unstructured: one exchange per indirect-read loop, one reverse
        # exchange per indirect-INC loop (owner-compute).
        exch = sum(
            r.calls / run_iters * (2 if r.has_indirect_inc else 1)
            for r in ctx.records.values()
            if r.indirect_accesses > 0
        )
        fields = 1.0
        reductions = ctx.reduction_count / run_iters

    state_bytes = getattr(ctx, "state_bytes", 0) * (paper_pts / run_pts)

    return AppSpec(
        name=defn.name,
        klass=defn.klass,
        dtype_bytes=defn.dtype_bytes,
        iterations=defn.paper_iterations,
        loops=loops,
        domain=defn.paper_domain,
        halo_depth=defn.halo_depth,
        fields_exchanged=max(fields, 1.0),
        exchanges_per_iter=exch,
        reductions_per_iter=reductions,
        compiler_affinity=dict(defn.compiler_affinity),
        mesh_neighbors=defn.mesh_neighbors,
        state_bytes=state_bytes,
        gather_hit=defn.gather_hit,
    )
