"""The seven benchmarked applications (paper Section 3).

Every application is a real numerical code on one of the DSLs:

========== =============== =========== ====================================
name        class           precision   problem (paper scale)
========== =============== =========== ====================================
cloverleaf2d structured-bw  double      7680², 50 iters — Eulerian hydro
cloverleaf3d structured-bw  double      408³, 50 iters
opensbli_sa  structured-bw  double      320³, 20 iters — NS, store-all
opensbli_sn  structured-cmp double      320³, 20 iters — NS, store-none
acoustic     structured-cmp single      320³, 10 iters — 8th-order FD wave
miniweather  structured-bw  double      4000x2000 — atmospheric proxy
mgcfd        unstructured   double      8M vertices — FV Euler + multigrid
volna        unstructured   single      30M cells — shallow water tsunami
minibude     compute        single      65536 poses — molecular docking
========== =============== =========== ====================================

Use :func:`get_app` / :func:`all_apps` to enumerate, ``defn.run(ctx,
domain, iterations)`` to execute, and :func:`build_spec` to produce the
performance-model input extrapolated to paper scale.

Layer role (docs/ARCHITECTURE.md): the workload layer — real numerical
codes on the DSLs whose measured loop profiles become the perfmodel's
AppSpec inputs via build_spec.
"""

from .base import AppDefinition, APP_ORDER, all_apps, build_spec, get_app

# Importing the app modules registers their definitions.
from . import acoustic, cloverleaf, mgcfd, minibude, miniweather, opensbli, volna  # noqa: E402,F401

from .acoustic import run_acoustic
from .cloverleaf import run_cloverleaf
from .mgcfd import run_mgcfd, synthetic_mgcfd_mesh
from .minibude import Deck, pose_energies, run_minibude, synthetic_deck
from .miniweather import run_miniweather
from .opensbli import run_opensbli
from .volna import OceanMesh, run_volna, synthetic_ocean

__all__ = [
    "AppDefinition",
    "APP_ORDER",
    "all_apps",
    "get_app",
    "build_spec",
    "run_cloverleaf",
    "run_acoustic",
    "run_opensbli",
    "run_miniweather",
    "run_minibude",
    "run_mgcfd",
    "run_volna",
    "synthetic_deck",
    "synthetic_mgcfd_mesh",
    "synthetic_ocean",
    "pose_energies",
    "Deck",
    "OceanMesh",
]
