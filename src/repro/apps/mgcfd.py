"""MG-CFD: unstructured finite-volume Euler with geometric multigrid.

"Unstructured mesh finite volume Euler equations solver with multigrid,
proxy for Rolls-Royce's CFD simulator Hydra.  Bound by latencies and
indirect memory accesses.  Double precision, NASA Rotor37 case with 8
million vertices, 25 iterations" (paper Sec. 3; Owenson et al., CCPE
2020).

The solver runs a V-cycle over a hierarchy of vertex meshes: on each
level it computes a per-node time-step factor, sweeps the edges with a
Rusanov (local Lax-Friedrichs) Euler flux — the latency-bound indirect
kernel that dominates the runtime — and updates the nodes; residuals
are restricted to the next-coarser level through node-to-coarse-node
maps and corrections prolonged back.

The Rotor37 mesh is not redistributable; :func:`synthetic_mgcfd_mesh`
builds a periodic hex-connectivity vertex mesh of the same scale per
level (DESIGN.md substitution table), which also makes free-stream
preservation exact (every node's edge normals close) — tested, along
with residual decay of a smooth perturbation and restriction/prolongation
consistency.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..machine.config import Compiler
from ..op2.mesh import Global
from ..op2.parloop import Op2Context, arg, arg_direct, arg_global
from ..ops.access import Access
from ..perfmodel.kernelmodel import AppClass
from .base import AppDefinition, register

__all__ = ["synthetic_mgcfd_mesh", "run_mgcfd", "MGCFD", "MGLevel"]

GAMMA = 1.4
NVAR = 5


@dataclass(frozen=True)
class MGLevel:
    """One multigrid level of the synthetic mesh (periodic hex grid)."""

    shape: tuple[int, int, int]
    edges: np.ndarray  # (m, 2) node pairs
    normals: np.ndarray  # (m, 3) edge face normals (area-weighted)


def synthetic_mgcfd_mesh(n: int, levels: int = 3) -> list[MGLevel]:
    """Periodic hex-connectivity meshes, coarsened 2x per level.

    Nodes are the cells of an n³ torus; each node has 6 edges (3 owned,
    along +x/+y/+z with wraparound) with unit axis normals — so the
    normals around every node sum to zero and uniform flow is an exact
    steady state.
    """
    if n < 4 or n % (2 ** (levels - 1)):
        raise ValueError("n must be >= 4 and divisible by 2^(levels-1)")
    out = []
    for lvl in range(levels):
        m = n >> lvl
        idx = np.arange(m**3).reshape(m, m, m)
        edges = []
        normals = []
        for axis in range(3):
            nb = np.roll(idx, -1, axis=axis)
            edges.append(np.stack([idx.reshape(-1), nb.reshape(-1)], axis=1))
            nrm = np.zeros((m**3, 3))
            nrm[:, axis] = 1.0 / m**2  # area-weighted unit normal
            normals.append(nrm)
        out.append(
            MGLevel((m, m, m), np.concatenate(edges), np.concatenate(normals))
        )
    return out


def fine_to_coarse_map(fine: int) -> np.ndarray:
    """Map each fine node of an f³ torus to its (f/2)³ coarse parent."""
    f = fine
    c = f // 2
    ii, jj, kk = np.meshgrid(np.arange(f), np.arange(f), np.arange(f), indexing="ij")
    return (((ii // 2) * c + (jj // 2)) * c + (kk // 2)).reshape(-1)


def _euler_flux(q, normals):
    """Euler flux dotted with the edge normal; q is (m, 5)."""
    rho = q[:, 0]
    vel = q[:, 1:4] / rho[:, None]
    ke = 0.5 * rho * np.sum(vel**2, axis=1)
    p = (GAMMA - 1.0) * (q[:, 4] - ke)
    vn = np.sum(vel * normals, axis=1)
    f = np.empty_like(q)
    f[:, 0] = rho * vn
    f[:, 1:4] = q[:, 1:4] * vn[:, None] + p[:, None] * normals
    f[:, 4] = (q[:, 4] + p) * vn
    return f, p, vel


def run_mgcfd(
    ctx: Op2Context,
    domain: tuple[int, ...],
    iterations: int,
    levels: int = 3,
    init: str = "perturbed",
) -> dict:
    """Run V-cycles; returns residual history and final state."""
    n = round(np.prod(domain) ** (1 / 3)) if len(domain) == 3 else domain[0]
    mesh = synthetic_mgcfd_mesh(int(n), levels)

    # ---- declare sets/maps/dats per level (maps before dats) -------------
    node_sets = [ctx.set(f"nodes_l{i}", int(np.prod(ml.shape))) for i, ml in enumerate(mesh)]
    edge_sets = [ctx.set(f"edges_l{i}", len(ml.edges)) for i, ml in enumerate(mesh)]
    e2n = [
        ctx.map(f"e2n_l{i}", edge_sets[i], node_sets[i], mesh[i].edges)
        for i in range(levels)
    ]
    f2c = [
        ctx.map(
            f"f2c_l{i}", node_sets[i], node_sets[i + 1],
            fine_to_coarse_map(mesh[i].shape[0]),
        )
        for i in range(levels - 1)
    ]
    # ---- initial condition ------------------------------------------------
    m0 = mesh[0].shape[0]
    rho = np.ones(m0**3)
    u = np.full(m0**3, 0.3)
    if init == "perturbed":
        x = (np.arange(m0) + 0.5) / m0
        pert = 0.02 * np.sin(2 * np.pi * x)
        rho = rho + np.repeat(pert, m0 * m0)
    elif init != "uniform":
        raise ValueError(f"unknown init {init!r}")
    p0 = np.ones(m0**3) / GAMMA
    q0g = np.zeros((m0**3, NVAR))
    q0g[:, 0] = rho
    q0g[:, 1] = rho * u
    q0g[:, 4] = p0 / (GAMMA - 1.0) + 0.5 * rho * u**2

    q = [ctx.dat(node_sets[0], NVAR, "q_l0", data=q0g)] + [
        ctx.dat(node_sets[i], NVAR, f"q_l{i}") for i in range(1, levels)
    ]
    q_old = [ctx.dat(node_sets[i], NVAR, f"qold_l{i}") for i in range(levels)]
    res = [ctx.dat(node_sets[i], NVAR, f"res_l{i}") for i in range(levels)]
    step = [ctx.dat(node_sets[i], 1, f"step_l{i}") for i in range(levels)]
    enorm = [ctx.dat(edge_sets[i], 3, f"normal_l{i}", data=mesh[i].normals)
             for i in range(levels)]

    dt = 0.2 / m0

    # ---- kernels ---------------------------------------------------------

    def save_q(qo, qv):
        qo[...] = qv

    def zero_res(r):
        r[...] = 0.0

    def step_factor(sf, qv):
        rho_ = qv[:, 0]
        vel = qv[:, 1:4] / rho_[:, None]
        ke = 0.5 * rho_ * np.sum(vel**2, axis=1)
        p = np.maximum((GAMMA - 1.0) * (qv[:, 4] - ke), 1e-12)
        c = np.sqrt(GAMMA * p / rho_)
        sf[:, 0] = 1.0 / (np.linalg.norm(vel, axis=1) + c + 1e-12)

    def compute_flux(ql, qr, nrm, rl, rr):
        fl, pl, vl = _euler_flux(ql, nrm)
        fr, pr, vr = _euler_flux(qr, nrm)
        area = np.linalg.norm(nrm, axis=1)
        cl = np.sqrt(GAMMA * np.maximum(pl, 1e-12) / ql[:, 0])
        cr = np.sqrt(GAMMA * np.maximum(pr, 1e-12) / qr[:, 0])
        lam = np.maximum(
            np.linalg.norm(vl, axis=1) + cl, np.linalg.norm(vr, axis=1) + cr
        ) * area
        f = 0.5 * (fl + fr) - 0.5 * lam[:, None] * (qr - ql)
        rl[...] = -f
        rr[...] = +f

    def time_step(qv, qo, r, sf):
        qv[...] = qo + dt * sf[:, 0][:, None] * r

    def restrict_kernel(rc, rf):
        rc[...] = 0.125 * rf  # 8 fine nodes per coarse node

    def inject_state(qc, qf):
        qc[...] = 0.125 * qf

    def prolong(qf, corr):
        qf[...] = qf + corr

    def residual_norm(g, r):
        g[0] += float(np.sum(r * r))

    diagnostics = {"residual": []}

    for _ in range(iterations):
        # --- downward leg of the V-cycle -------------------------------
        for lvl in range(levels):
            ctx.par_loop(save_q, f"save_q_l{lvl}", node_sets[lvl],
                         arg_direct(q_old[lvl], Access.WRITE),
                         arg_direct(q[lvl], Access.READ))
            ctx.par_loop(step_factor, f"step_factor_l{lvl}", node_sets[lvl],
                         arg_direct(step[lvl], Access.WRITE),
                         arg_direct(q[lvl], Access.READ), flops_per_elem=18)
            ctx.par_loop(zero_res, f"zero_res_l{lvl}", node_sets[lvl],
                         arg_direct(res[lvl], Access.WRITE))
            ctx.par_loop(compute_flux, f"compute_flux_l{lvl}", edge_sets[lvl],
                         arg(q[lvl], e2n[lvl], 0, Access.READ),
                         arg(q[lvl], e2n[lvl], 1, Access.READ),
                         arg_direct(enorm[lvl], Access.READ),
                         arg(res[lvl], e2n[lvl], 0, Access.INC),
                         arg(res[lvl], e2n[lvl], 1, Access.INC),
                         flops_per_elem=110)
            ctx.par_loop(time_step, f"time_step_l{lvl}", node_sets[lvl],
                         arg_direct(q[lvl], Access.WRITE),
                         arg_direct(q_old[lvl], Access.READ),
                         arg_direct(res[lvl], Access.READ),
                         arg_direct(step[lvl], Access.READ), flops_per_elem=3 * NVAR)
            if lvl < levels - 1:
                # Restrict state and residual to the coarser level.
                ctx.par_loop(zero_res, f"zero_qc_l{lvl}", node_sets[lvl + 1],
                             arg_direct(q[lvl + 1], Access.WRITE))
                ctx.par_loop(inject_state, f"restrict_q_l{lvl}", node_sets[lvl],
                             arg(q[lvl + 1], f2c[lvl], 0, Access.INC),
                             arg_direct(q[lvl], Access.READ), flops_per_elem=NVAR)
        # --- upward leg: prolong the coarse correction -------------------
        for lvl in range(levels - 2, -1, -1):
            corr = res[lvl]  # reuse the residual dat as correction storage
            ctx.par_loop(_diff_kernel, f"coarse_corr_l{lvl}", node_sets[lvl + 1],
                         arg_direct(res[lvl + 1], Access.WRITE),
                         arg_direct(q[lvl + 1], Access.READ),
                         arg_direct(q_old[lvl + 1], Access.READ), flops_per_elem=NVAR)
            ctx.par_loop(_gather_corr, f"prolong_l{lvl}", node_sets[lvl],
                         arg_direct(q[lvl], Access.RW),
                         arg(res[lvl + 1], f2c[lvl], 0, Access.READ),
                         flops_per_elem=NVAR)
        rn = Global(0.0, "resnorm")
        ctx.par_loop(residual_norm, "residual_norm", node_sets[0],
                     arg_global(rn, Access.INC),
                     arg_direct(res[0], Access.READ), flops_per_elem=2 * NVAR)
        diagnostics["residual"].append(float(np.sqrt(rn.value[0])))

    gather = getattr(ctx, "gather_dat", None)
    diagnostics["q"] = gather(q[0]) if gather else q[0].data.copy()
    diagnostics["levels"] = levels
    return diagnostics


def _diff_kernel(out, a, b):
    out[...] = 0.25 * (a - b)


def _gather_corr(qf, corr):
    qf[...] = qf + corr


MGCFD = register(AppDefinition(
    name="mgcfd",
    klass=AppClass.UNSTRUCTURED,
    dtype_bytes=8,
    run=run_mgcfd,
    paper_domain=(200, 200, 200),  # 8M vertices, Rotor37 scale
    paper_iterations=25,
    test_domain=(8, 8, 8),
    test_iterations=3,
    halo_depth=1,
    structured=False,
    # Sec. 5: "the Classical compilers work better for MG-CFD".
    compiler_affinity={
        Compiler.CLASSIC: 1.0,
        Compiler.ONEAPI: 0.97,
        Compiler.AOCC: 1.0,
        Compiler.GCC: 0.97,
        Compiler.NVCC: 1.0,
    },
    mesh_neighbors=8.0,
    # 3-D mesh + multigrid transfer maps renumber poorly: most gathers
    # miss — MG-CFD is "bound by latencies and indirect memory accesses".
    gather_hit=0.05,
    description="Unstructured FV Euler + multigrid (Hydra proxy); latency/indirection bound",
))
