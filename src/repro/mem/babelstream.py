"""The full BabelStream benchmark suite: real kernels + modeled figures.

Runs the five classic kernels (copy, mul, add, triad, dot) the way
BabelStream does — N timed repetitions each, verification against the
closed-form result — and reports both the *host's* measured bandwidth
(this process, numpy) and the *modeled* bandwidth for any platform in
the machine library.  The model numbers feed Figure 1; the host numbers
demonstrate that the kernels are real computations.

    suite = BabelStream(n=2**24)
    results = suite.run(repetitions=10)
    print(suite.report(results, XEON_MAX_9480))
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from ..ir import Access, AccessDescriptor, KernelPlan
from ..machine.spec import PlatformSpec
from .hierarchy import HierarchyModel, Scope
from .stream import STREAM_SCALAR, StreamArrays, add, copy, dot, mul, triad

__all__ = ["KernelResult", "BabelStream"]


def _stream_plan(name: str, reads: str, writes: str = "") -> KernelPlan:
    """One BabelStream kernel as an IR plan over unit-width arrays.

    Descriptors use ``width_bytes=1`` so ``nbytes`` counts *transfers*
    per element — the BabelStream loads+stores tally, multiplied by the
    element size at measurement time.
    """
    args = tuple(
        AccessDescriptor(a, Access.READ, width_bytes=1, dtype_bytes=1)
        for a in reads
    ) + tuple(
        AccessDescriptor(a, Access.WRITE, width_bytes=1, dtype_bytes=1)
        for a in writes
    )
    return KernelPlan(name, "mem", 1, args)


_KERNEL_PLANS = {
    "copy": _stream_plan("copy", reads="a", writes="c"),     # c[i] = a[i]
    "mul": _stream_plan("mul", reads="c", writes="b"),       # b[i] = s*c[i]
    "add": _stream_plan("add", reads="ab", writes="c"),      # c[i] = a[i]+b[i]
    "triad": _stream_plan("triad", reads="bc", writes="a"),  # a[i] = b[i]+s*c[i]
    "dot": _stream_plan("dot", reads="ab"),                  # sum += a[i]*b[i]
}

#: Bytes each kernel moves per element (loads + stores, as BabelStream
#: counts) — derived from the kernels' IR access plans.
KERNEL_BYTES = {name: plan.nbytes for name, plan in _KERNEL_PLANS.items()}


@dataclass(frozen=True)
class KernelResult:
    """Timing of one kernel over the repetitions."""

    name: str
    best_time: float
    mean_time: float
    nbytes: int  # bytes moved per repetition

    @property
    def best_bandwidth(self) -> float:
        return self.nbytes / self.best_time


class BabelStream:
    """The five-kernel suite on arrays of ``n`` elements."""

    def __init__(self, n: int = 2**22, dtype=np.float64) -> None:
        if n < 2:
            raise ValueError("need at least 2 elements")
        self.n = n
        self.dtype = np.dtype(dtype)
        self.arrays = StreamArrays.allocate(n, dtype)

    # ------------------------------------------------------------------

    def run(self, repetitions: int = 10) -> dict[str, KernelResult]:
        """Execute every kernel ``repetitions`` times; returns timings.

        Raises if verification fails — the kernels must compute the same
        closed-form values BabelStream checks.
        """
        if repetitions < 1:
            raise ValueError("repetitions must be >= 1")
        s = self.arrays
        elem = self.dtype.itemsize
        dot_value = 0.0
        kernels = [
            ("copy", lambda: copy(s)),
            ("mul", lambda: mul(s)),
            ("add", lambda: add(s)),
            ("triad", lambda: triad(s)),
            ("dot", lambda: dot(s)),
        ]
        times: dict[str, list[float]] = {name: [] for name, _ in kernels}
        # BabelStream interleaves: each repetition runs all five kernels
        # in order (the closed-form verification depends on this order).
        for _ in range(repetitions):
            for name, fn in kernels:
                t0 = time.perf_counter()
                ret = fn()
                times[name].append(time.perf_counter() - t0)
                if name == "dot":
                    dot_value = ret
        out = {
            name: KernelResult(
                name, min(ts), sum(ts) / len(ts),
                KERNEL_BYTES[name] * self.n * elem,
            )
            for name, ts in times.items()
        }
        self.verify(repetitions, dot_value)
        return out

    def verify(self, repetitions: int, dot_value: float) -> None:
        """BabelStream-style closed-form verification."""
        a, b, c = 0.1, 0.2, 0.0
        for _ in range(repetitions):
            c = a  # copy
            b = STREAM_SCALAR * c  # mul
            c = a + b  # add
            a = b + STREAM_SCALAR * c  # triad
        s = self.arrays
        for name, arr, ref in (("a", s.a, a), ("b", s.b, b), ("c", s.c, c)):
            err = float(np.abs(arr - ref).max())
            if err > 1e-8 * max(abs(ref), 1.0):
                raise AssertionError(f"verification failed for array {name}: err={err}")
        expected_dot = a * b * self.n
        if abs(dot_value - expected_dot) > 1e-8 * abs(expected_dot):
            raise AssertionError("verification failed for dot")

    # ------------------------------------------------------------------

    def modeled_bandwidth(
        self, platform: PlatformSpec, kernel: str = "triad",
        scope: Scope = Scope.NODE, tuned: bool = False,
    ) -> float:
        """What this kernel/size would achieve on a modeled platform."""
        if kernel not in KERNEL_BYTES:
            raise KeyError(f"unknown kernel {kernel!r}")
        ws = KERNEL_BYTES[kernel] * self.n * self.dtype.itemsize
        return HierarchyModel(platform).measured_bandwidth(float(ws), scope, tuned)

    def report(self, results: dict[str, KernelResult], platform: PlatformSpec) -> str:
        """Side-by-side host-measured vs modeled-platform table."""
        lines = [f"BabelStream n={self.n} ({self.dtype})",
                 f"{'kernel':8s} {'host GB/s':>10s} {platform.short_name + ' GB/s':>14s}"]
        for name, r in results.items():
            model = self.modeled_bandwidth(platform, name)
            lines.append(f"{name:8s} {r.best_bandwidth / 1e9:10.2f} {model / 1e9:14.1f}")
        return "\n".join(lines)
