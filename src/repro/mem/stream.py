"""BabelStream kernels and the Figure 1 Triad bandwidth sweep.

The five classic STREAM kernels are implemented as real (in-place,
allocation-free) numpy operations and validated exactly; the *reported*
bandwidth for a given platform/scope/size comes from
:class:`~repro.mem.hierarchy.HierarchyModel`, because the paper's numbers
are a property of the hardware, not of this Python process.

``triad_sweep`` reproduces the Figure 1 curves: Triad bandwidth vs. array
size, for one NUMA domain / one socket / two sockets, with the Xeon MAX
additionally evaluated with STREAM-tuned streaming-store flags ("SS").
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..machine.spec import PlatformSpec
from .hierarchy import BandwidthPoint, HierarchyModel, Scope

__all__ = [
    "StreamArrays",
    "copy",
    "mul",
    "add",
    "triad",
    "dot",
    "TriadResult",
    "triad_sweep",
    "triad_bytes",
    "STREAM_SCALAR",
]

#: STREAM's traditional scalar for mul/triad.
STREAM_SCALAR = 0.4


@dataclass
class StreamArrays:
    """The a/b/c arrays of the STREAM kernels, with canonical init values
    (a=0.1, b=0.2, c=0.0 as in BabelStream)."""

    a: np.ndarray
    b: np.ndarray
    c: np.ndarray

    @classmethod
    def allocate(cls, n: int, dtype=np.float64) -> "StreamArrays":
        if n <= 0:
            raise ValueError("array length must be positive")
        return cls(
            a=np.full(n, 0.1, dtype=dtype),
            b=np.full(n, 0.2, dtype=dtype),
            c=np.zeros(n, dtype=dtype),
        )

    @property
    def nbytes(self) -> int:
        return self.a.nbytes + self.b.nbytes + self.c.nbytes


def copy(s: StreamArrays) -> None:
    """c[i] = a[i]"""
    np.copyto(s.c, s.a)


def mul(s: StreamArrays, scalar: float = STREAM_SCALAR) -> None:
    """b[i] = scalar * c[i]"""
    np.multiply(s.c, scalar, out=s.b)


def add(s: StreamArrays) -> None:
    """c[i] = a[i] + b[i]"""
    np.add(s.a, s.b, out=s.c)


def triad(s: StreamArrays, scalar: float = STREAM_SCALAR) -> None:
    """a[i] = b[i] + scalar * c[i]"""
    np.multiply(s.c, scalar, out=s.a)
    s.a += s.b


def dot(s: StreamArrays) -> float:
    """sum(a[i] * b[i])"""
    return float(np.dot(s.a, s.b))


def triad_bytes(n: int, dtype_bytes: int = 8) -> int:
    """Bytes BabelStream charges Triad with: 2 loads + 1 store."""
    return 3 * n * dtype_bytes


@dataclass(frozen=True)
class TriadResult:
    """One modeled Figure 1 measurement."""

    platform: str
    scope: Scope
    n: int
    dtype_bytes: int
    bandwidth: float  # bytes/s as BabelStream would report
    tuned: bool = False

    @property
    def gbs(self) -> float:
        return self.bandwidth / 1e9


def triad_sweep(
    platform: PlatformSpec,
    sizes: np.ndarray | None = None,
    scope: Scope = Scope.NODE,
    dtype_bytes: int = 8,
    tuned: bool = False,
    model: HierarchyModel | None = None,
) -> list[TriadResult]:
    """Model the Figure 1 Triad sweep for one platform and scope.

    ``sizes`` are array element counts (default: 2^14 .. 2^27, the range
    Figure 1 spans).  The reported bandwidth counts ``3 * n * dtype`` bytes
    per iteration, as BabelStream does.
    """
    if sizes is None:
        sizes = 2 ** np.arange(14, 28)
    hm = model or HierarchyModel(platform)
    out = []
    for n in np.asarray(sizes, dtype=np.int64):
        ws = triad_bytes(int(n), dtype_bytes)
        bw = hm.measured_bandwidth(float(ws), scope, tuned)
        out.append(TriadResult(platform.short_name, scope, int(n), dtype_bytes, bw, tuned))
    return out


def plateau_bandwidth(
    platform: PlatformSpec,
    scope: Scope = Scope.NODE,
    tuned: bool = False,
) -> float:
    """Large-size Triad plateau (bytes/s) — the headline Figure 1 numbers
    (1446 / 1643 / 296 / 310 GB/s at node scope)."""
    hm = HierarchyModel(platform)
    # 2^27 doubles per array = 3 GiB working set: far beyond any LLC.
    return hm.effective_bandwidth(triad_bytes(2**27), scope, tuned)
