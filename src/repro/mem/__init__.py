"""Memory-hierarchy simulation: caches, bandwidth curves, BabelStream.

- :class:`~repro.mem.cache.Cache` / :class:`~repro.mem.cache.CacheHierarchy`
  — line-granular set-associative LRU simulator (drives the Figure 9
  tiling traffic analysis).
- :class:`~repro.mem.hierarchy.HierarchyModel` — working-set-dependent
  achievable bandwidth (the engine behind Figure 1 and the roofline's
  bandwidth term).
- :mod:`~repro.mem.stream` — BabelStream kernels and the Triad sweep.

Layer role (docs/ARCHITECTURE.md): memory-system layer between the
platform models and the DSLs/perfmodel; prices working sets on the
machine models' cache hierarchies.
"""

from .babelstream import BabelStream, KernelResult
from .cache import Cache, CacheHierarchy, CacheStats
from .hierarchy import BandwidthPoint, HierarchyModel, Scope
from .stream import (
    STREAM_SCALAR,
    StreamArrays,
    TriadResult,
    add,
    copy,
    dot,
    mul,
    plateau_bandwidth,
    triad,
    triad_bytes,
    triad_sweep,
)

__all__ = [
    "Cache",
    "CacheHierarchy",
    "CacheStats",
    "HierarchyModel",
    "Scope",
    "BandwidthPoint",
    "StreamArrays",
    "copy",
    "mul",
    "add",
    "triad",
    "dot",
    "triad_bytes",
    "triad_sweep",
    "plateau_bandwidth",
    "TriadResult",
    "STREAM_SCALAR",
    "BabelStream",
    "KernelResult",
]
