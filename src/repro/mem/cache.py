"""Set-associative cache simulator with LRU replacement.

Used by the tiling study (Figure 9) to demonstrate *why* cache-blocking
helps — the simulator counts the main-memory lines a loop sequence
actually touches with and without tiling — and by the property-based test
suite to pin down hierarchy invariants (inclusion of reuse, eviction
order, miss-rate bounds).

The simulator is line-granular and deliberately simple: physical
addresses are integers, a cache is ``num_sets x associativity`` lines,
and replacement is strict LRU per set.  Hardware prefetching is modeled
as an optional "next-N-lines" prefetcher because streaming kernels on the
platforms studied are effectively prefetch-perfect for unit strides.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..machine.spec import CacheLevel
from ..obs.metrics import active_metrics

__all__ = ["CacheStats", "Cache", "CacheHierarchy"]


@dataclass
class CacheStats:
    """Access counters for one cache level."""

    accesses: int = 0
    hits: int = 0
    misses: int = 0
    evictions: int = 0
    writebacks: int = 0

    @property
    def hit_rate(self) -> float:
        return self.hits / self.accesses if self.accesses else 0.0

    @property
    def miss_rate(self) -> float:
        return self.misses / self.accesses if self.accesses else 0.0

    def reset(self) -> None:
        self.accesses = self.hits = self.misses = 0
        self.evictions = self.writebacks = 0


class Cache:
    """One level of set-associative cache with LRU replacement.

    Parameters
    ----------
    capacity, line_size, associativity:
        Geometry; ``capacity`` must be divisible by
        ``line_size * associativity``.
    write_allocate:
        Whether a write miss fills the line (true for the WB+WA caches on
        all platforms studied).
    """

    def __init__(
        self,
        capacity: int,
        line_size: int = 64,
        associativity: int = 8,
        write_allocate: bool = True,
        name: str = "cache",
    ) -> None:
        if capacity <= 0 or line_size <= 0 or associativity <= 0:
            raise ValueError("capacity, line_size, associativity must be positive")
        if capacity % (line_size * associativity):
            raise ValueError("capacity must be divisible by line_size * associativity")
        self.capacity = capacity
        self.line_size = line_size
        self.associativity = associativity
        self.write_allocate = write_allocate
        #: Level label used by the metrics registry (``level=...``).
        self.name = name
        self.num_sets = capacity // (line_size * associativity)
        self.stats = CacheStats()
        # Per set: list of (tag, dirty) in LRU order (front = LRU).
        self._sets: list[list[list]] = [[] for _ in range(self.num_sets)]

    @classmethod
    def from_level(cls, level: CacheLevel) -> "Cache":
        return cls(level.capacity, level.line_size, level.associativity,
                   name=level.name)

    # ------------------------------------------------------------------

    def _locate(self, line_addr: int) -> tuple[int, int]:
        return line_addr % self.num_sets, line_addr // self.num_sets

    def access(self, addr: int, write: bool = False) -> bool:
        """Access one byte address; returns True on hit.

        On a miss the line is filled (unless a non-allocating write) and
        the LRU line of the set is evicted if necessary.
        """
        line_addr = addr // self.line_size
        return self.access_line(line_addr, write)

    def access_line(self, line_addr: int, write: bool = False) -> bool:
        set_idx, tag = self._locate(line_addr)
        ways = self._sets[set_idx]
        self.stats.accesses += 1
        m = active_metrics()
        if m is not None:
            m.inc("mem_cache_accesses_total", level=self.name)
        for i, entry in enumerate(ways):
            if entry[0] == tag:
                self.stats.hits += 1
                if m is not None:
                    m.inc("mem_cache_hits_total", level=self.name)
                ways.append(ways.pop(i))  # move to MRU
                if write:
                    ways[-1][1] = True
                return True
        self.stats.misses += 1
        if m is not None:
            m.inc("mem_cache_misses_total", level=self.name)
        if write and not self.write_allocate:
            return False
        if m is not None:
            m.inc("mem_cache_fill_bytes_total", self.line_size, level=self.name)
        if len(ways) >= self.associativity:
            victim = ways.pop(0)
            self.stats.evictions += 1
            if m is not None:
                m.inc("mem_cache_evictions_total", level=self.name)
            if victim[1]:
                self.stats.writebacks += 1
                if m is not None:
                    m.inc("mem_cache_writeback_bytes_total", self.line_size,
                          level=self.name)
        ways.append([tag, write])
        return False

    def access_range(self, start: int, nbytes: int, write: bool = False) -> int:
        """Access every line of ``[start, start+nbytes)``; returns misses."""
        if nbytes <= 0:
            return 0
        first = start // self.line_size
        last = (start + nbytes - 1) // self.line_size
        misses = 0
        for line in range(first, last + 1):
            if not self.access_line(line, write):
                misses += 1
        return misses

    def access_array(self, line_addrs: np.ndarray, write: bool = False) -> int:
        """Access a sequence of line addresses; returns total misses."""
        misses = 0
        for line in np.asarray(line_addrs, dtype=np.int64):
            if not self.access_line(int(line), write):
                misses += 1
        return misses

    # ------------------------------------------------------------------

    def contains(self, addr: int) -> bool:
        line_addr = addr // self.line_size
        set_idx, tag = self._locate(line_addr)
        return any(e[0] == tag for e in self._sets[set_idx])

    def resident_lines(self) -> int:
        return sum(len(s) for s in self._sets)

    def flush(self) -> int:
        """Empty the cache; returns the number of dirty lines written back."""
        dirty = sum(1 for s in self._sets for e in s if e[1])
        self.stats.writebacks += dirty
        if dirty:
            m = active_metrics()
            if m is not None:
                m.inc("mem_cache_writeback_bytes_total", dirty * self.line_size,
                      level=self.name)
        self._sets = [[] for _ in range(self.num_sets)]
        return dirty


class CacheHierarchy:
    """A stack of inclusive cache levels in front of main memory.

    ``access`` walks levels from innermost out, filling on the way back.
    ``memory_traffic_bytes`` is what escaped the last level — the quantity
    the Figure 9 tiling analysis cares about.
    """

    def __init__(self, levels: list[Cache]) -> None:
        if not levels:
            raise ValueError("at least one cache level required")
        line = levels[0].line_size
        if any(lvl.line_size != line for lvl in levels):
            raise ValueError("all levels must share a line size")
        self.levels = levels
        self.memory_lines = 0
        self.memory_writeback_lines = 0

    @property
    def line_size(self) -> int:
        return self.levels[0].line_size

    def access(self, addr: int, write: bool = False) -> int:
        """Access an address; returns the depth that hit (len(levels) =
        main memory)."""
        line_addr = addr // self.line_size
        for depth, lvl in enumerate(self.levels):
            if lvl.access_line(line_addr, write):
                # Fill inner levels (inclusive hierarchy).
                for inner in self.levels[:depth]:
                    inner.access_line(line_addr, write)
                return depth
        self.memory_lines += 1
        m = active_metrics()
        if m is not None:
            m.inc("mem_cache_memory_bytes_total", self.line_size)
        return len(self.levels)

    def access_range(self, start: int, nbytes: int, write: bool = False) -> None:
        if nbytes <= 0:
            return
        first = start // self.line_size
        last = (start + nbytes - 1) // self.line_size
        for line in range(first, last + 1):
            self.access(line * self.line_size, write)

    @property
    def memory_traffic_bytes(self) -> int:
        return self.memory_lines * self.line_size

    def reset(self) -> None:
        for lvl in self.levels:
            lvl.flush()
            lvl.stats.reset()
        self.memory_lines = 0
        self.memory_writeback_lines = 0
