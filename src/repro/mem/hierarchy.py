"""Working-set-dependent achievable bandwidth model (Figure 1's engine).

BabelStream's Figure 1 sweeps the Triad array size and plots achieved
bandwidth from one NUMA domain, one socket, or both sockets.  Three
regimes appear:

* tiny arrays — per-iteration launch/loop overhead dominates, bandwidth
  climbs with size;
* cache-resident arrays — bandwidth plateaus at the aggregate cache
  streaming bandwidth (the paper highlights the *ratio* of this plateau
  to the memory plateau: 3.8x on Xeon MAX, ~6x on 8360Y, ~14x on EPYC);
* memory-resident arrays — bandwidth settles at the STREAM-achievable
  main-memory figure (1446/1643, 296, 310 GB/s).

The model serves each byte from the innermost level with spare capacity:
with aggregate level capacities ``C_1 < C_2 < ...`` and bandwidths
``B_i``, a working set ``W`` is split into slices ``min(C_i, W) -
C_{i-1}`` served at ``B_i`` and the remainder at memory bandwidth; the
harmonic combination yields the effective bandwidth.  This same function
is what the kernel performance model uses to price a loop whose working
set fits in cache — which is exactly the mechanism behind the Figure 9
tiling speedups.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

import numpy as np

from ..machine.spec import DeviceKind, PlatformSpec
from ..obs.metrics import active_metrics

__all__ = ["Scope", "HierarchyModel", "BandwidthPoint"]


class Scope(Enum):
    """How much of the machine participates in the measurement."""

    NUMA = "numa"
    SOCKET = "socket"
    NODE = "node"


@dataclass(frozen=True)
class BandwidthPoint:
    """One point of a bandwidth-vs-size curve."""

    working_set: int  # bytes
    bandwidth: float  # bytes/s achieved


class HierarchyModel:
    """Achievable-bandwidth model for one platform.

    Parameters
    ----------
    platform:
        The machine model.
    launch_overhead:
        Fixed per-kernel-invocation cost (loop startup, OpenMP barrier);
        produces the rising left edge of Figure 1's curves.
    """

    def __init__(
        self,
        platform: PlatformSpec,
        launch_overhead: float = 4e-6,
        utilization: float = 1.0,
    ) -> None:
        self.platform = platform
        self.launch_overhead = launch_overhead
        #: Fraction of each level's capacity a working set may occupy and
        #: still be considered resident (1.0 for dedicated benchmark
        #: arrays; application estimates pass ~0.55, see
        #: ``calibration.CACHE_UTILIZATION``).
        self.utilization = utilization

    # ------------------------------------------------------------------

    def _scope_fraction(self, scope: Scope) -> float:
        p = self.platform
        if scope is Scope.NODE:
            return 1.0
        if scope is Scope.SOCKET:
            return 1.0 / p.sockets
        return 1.0 / (p.sockets * p.numa_per_socket)

    def aggregate_levels(self, scope: Scope) -> list[tuple[float, float]]:
        """Cumulative (capacity, bandwidth) per cache level for a scope.

        Core-private levels scale with the cores in scope; socket-shared
        levels scale with the fraction of the socket in scope (SNC slices
        the LLC along with the memory controllers).
        """
        p = self.platform
        frac = self._scope_fraction(scope)
        ncores = p.total_cores * frac
        out: list[tuple[float, float]] = []
        for lvl in p.caches:
            if lvl.scope == "core":
                cap = lvl.capacity * ncores
                bw = lvl.bandwidth * ncores
            else:
                cap = lvl.capacity * p.sockets * frac
                bw = lvl.bandwidth * p.sockets * frac
            out.append((cap, bw))
        return out

    def memory_bandwidth(self, scope: Scope, tuned: bool = False) -> float:
        """STREAM-achievable main-memory bandwidth for a scope."""
        p = self.platform
        node_bw = p.stream_bandwidth_tuned if tuned else p.stream_bandwidth
        return node_bw * self._scope_fraction(scope)

    # ------------------------------------------------------------------

    def core_throughput_ceiling(self, scope: Scope) -> float:
        """Aggregate per-core load/store streaming ceiling for a scope.

        Even with data resident in cache, a STREAM-like loop cannot move
        more than each core's sustained load/store throughput — this is
        what limits Figure 1's cache plateau (3.8x memory on Xeon MAX,
        ~6x on 8360Y, ~14x on the huge-V-Cache EPYC), not the cache port
        bandwidth itself.
        """
        p = self.platform
        ncores = p.total_cores * self._scope_fraction(scope)
        return p.core_stream_bw * ncores

    def effective_bandwidth(
        self,
        working_set: float,
        scope: Scope = Scope.NODE,
        tuned: bool = False,
    ) -> float:
        """Steady-state achievable bandwidth for a working set (bytes/s).

        The working set is served by the innermost aggregate level large
        enough to hold all of it; a streaming sweep over a set even
        slightly larger than a level gets no reuse from that level (LRU
        cyclic eviction), so the transition is a step.  Cache-resident
        bandwidth is additionally capped by the per-core streaming
        throughput ceiling.  Does not include launch overhead — see
        :meth:`measured_bandwidth` for the finite-size figure a benchmark
        would report.
        """
        if working_set <= 0:
            raise ValueError("working_set must be positive")
        level, bw = self.serving_level(working_set, scope, tuned)
        m = active_metrics()
        if m is not None:
            m.inc("mem_hierarchy_lookups_total",
                  platform=self.platform.short_name, level=level)
        return bw

    def serving_level(
        self,
        working_set: float,
        scope: Scope = Scope.NODE,
        tuned: bool = False,
    ) -> tuple[str, float]:
        """(level name, achievable bandwidth) for a working set: the
        innermost aggregate level with room for all of it, or
        ``"memory"``."""
        ceiling = self.core_throughput_ceiling(scope)
        for lvl, (cap, bw) in zip(
            self.platform.caches, self.aggregate_levels(scope)
        ):
            if working_set <= cap * self.utilization:
                return lvl.name, min(bw, ceiling)
        return "memory", min(self.memory_bandwidth(scope, tuned), ceiling)

    def measured_bandwidth(
        self,
        working_set: float,
        scope: Scope = Scope.NODE,
        tuned: bool = False,
    ) -> float:
        """Bandwidth a benchmark reports, including launch overhead."""
        bw = self.effective_bandwidth(working_set, scope, tuned)
        t = working_set / bw + self.launch_overhead
        return working_set / t

    def bandwidth_curve(
        self,
        sizes: np.ndarray,
        scope: Scope = Scope.NODE,
        tuned: bool = False,
    ) -> list[BandwidthPoint]:
        """Evaluate :meth:`measured_bandwidth` over many working sets."""
        return [
            BandwidthPoint(int(s), self.measured_bandwidth(float(s), scope, tuned))
            for s in np.asarray(sizes)
        ]

    def cache_to_memory_ratio(self, scope: Scope = Scope.NODE) -> float:
        """Ratio of the cache-plateau bandwidth to the memory plateau —
        the figure the paper quotes as 3.8x / ~6x / ~14x."""
        levels = self.aggregate_levels(scope)
        llc_cap, _ = levels[-1]
        # Measure the plateau with a working set half the LLC capacity.
        plateau = self.effective_bandwidth(llc_cap * 0.5, scope)
        return plateau / self.memory_bandwidth(scope)

    # ------------------------------------------------------------------

    def time_to_move(
        self,
        nbytes: float,
        working_set: float | None = None,
        scope: Scope = Scope.NODE,
        tuned: bool = False,
    ) -> float:
        """Time to stream ``nbytes`` with a resident working set.

        ``working_set`` defaults to ``nbytes``; pass a smaller resident
        set for kernels that re-traverse cached data (tiling).
        """
        ws = nbytes if working_set is None else working_set
        level, bw = self.serving_level(max(ws, 1.0), scope, tuned)
        m = active_metrics()
        if m is not None:
            m.inc("mem_hierarchy_lookups_total",
                  platform=self.platform.short_name, level=level)
            m.inc("mem_hierarchy_bytes_total", nbytes,
                  platform=self.platform.short_name, level=level)
        return nbytes / bw
