"""Shared CLI plumbing: name resolution and engine configuration.

Every verb module resolves user-typed application/platform/figure names
through these helpers so the whole CLI has one matching contract:
exact names win, unambiguous prefixes (and, for platforms, substrings)
resolve with no fuss, ambiguous ones resolve to the first match with a
note on stderr, and unknown names return ``None`` after printing the
valid choices — the caller then exits with status 2.
"""

from __future__ import annotations

import sys
from contextlib import contextmanager

from ..apps import APP_ORDER
from ..engine import configure_engine, default_engine
from ..machine import (
    ALL_PLATFORMS,
    Compiler,
    Parallelization,
    RunConfig,
    get_platform,
    structured_config_sweep,
    unstructured_config_sweep,
)

__all__ = [
    "match_app", "match_platform",
    "resolve_app", "resolve_platform", "resolve_figures",
    "config_sweep", "configure_engine_from_args", "telemetry_scope",
]


def match_app(name: str) -> tuple[str | None, str | None]:
    """Pure application-name matching: ``(resolved, error)``.

    The CLI wraps this with stderr reporting; the serve layer maps the
    error message to an HTTP 400 body, so both surfaces share one
    matching contract (ambiguous prefixes resolve to the first match).
    """
    if name in APP_ORDER:
        return name, None
    matches = [a for a in APP_ORDER if a.startswith(name)]
    if not matches:
        return None, (f"unknown application {name!r} "
                      f"(choose from: {', '.join(APP_ORDER)})")
    return matches[0], None


def match_platform(short_name: str) -> tuple[PlatformSpec | None, str | None]:
    """Pure platform matching (exact, prefix, then substring):
    ``(resolved spec, error)`` under the same contract as
    :func:`match_app`."""
    names = [p.short_name for p in ALL_PLATFORMS]
    try:
        return get_platform(short_name), None
    except KeyError:
        pass
    matches = [n for n in names if n.startswith(short_name)]
    if not matches:
        matches = [n for n in names if short_name in n]
    if not matches:
        return None, (f"unknown platform {short_name!r} "
                      f"(choose from: {', '.join(names)})")
    return get_platform(matches[0]), None


def resolve_app(name: str) -> str | None:
    """Canonical application name for ``name`` (exact or prefix match);
    None — with a stderr message listing the choices — when unknown."""
    resolved, error = match_app(name)
    if error is not None:
        print(error, file=sys.stderr)
        return None
    matches = [a for a in APP_ORDER if a.startswith(name)]
    if len(matches) > 1 and name not in APP_ORDER:
        print(f"note: {name!r} is ambiguous ({', '.join(matches)}); "
              f"using {matches[0]!r}", file=sys.stderr)
    return resolved


def resolve_platform(short_name: str):
    """Platform spec for ``short_name`` (exact, prefix, or substring
    match — ``8360y`` resolves to ``icx8360y``); None — with a stderr
    message listing the choices — when unknown."""
    resolved, error = match_platform(short_name)
    if error is not None:
        print(error, file=sys.stderr)
        return None
    names = [p.short_name for p in ALL_PLATFORMS]
    if short_name not in names:
        matches = [n for n in names if n.startswith(short_name)]
        if not matches:
            matches = [n for n in names if short_name in n]
        if len(matches) > 1:
            print(f"note: {short_name!r} is ambiguous ({', '.join(matches)}); "
                  f"using {matches[0]!r}", file=sys.stderr)
    return resolved


def resolve_figures(names: list[str]) -> list[str] | None:
    """Validate figure names; None — with a stderr message listing the
    choices — when any is unknown (same contract as ``resolve_app``)."""
    from ..obs.fidelity import FIGURE_ORDER

    out = []
    for name in names:
        if name not in FIGURE_ORDER:
            print(f"unknown figure {name!r} "
                  f"(choose from: {', '.join(FIGURE_ORDER)})", file=sys.stderr)
            return None
        out.append(name)
    return out


def config_sweep(defn, platform):
    """The configuration sweep modeled for one app on one platform."""
    if platform.kind.value == "gpu":
        return [RunConfig(Compiler.NVCC, Parallelization.CUDA)]
    return (structured_config_sweep(platform) if defn.structured
            else unstructured_config_sweep(platform))


def configure_engine_from_args(args):
    """Apply --jobs/--no-cache/--no-vec to the process-default engine."""
    kwargs = {}
    if getattr(args, "jobs", None) is not None:
        kwargs["workers"] = args.jobs
    if getattr(args, "no_cache", False):
        kwargs["use_cache"] = False
    if getattr(args, "no_vec", False):
        kwargs["vectorize"] = False
    if kwargs:
        return configure_engine(**kwargs)
    return default_engine()


@contextmanager
def telemetry_scope(args, engine):
    """Continuous sampling around a CLI run (``--telemetry[-log]``).

    When neither flag is set this yields None without importing the
    telemetry module — the zero-overhead path every untelemetered verb
    takes.  Otherwise it installs a metrics-collecting scope with a
    live sampler (:func:`repro.obs.telemetry.sampling`), attaches the
    sampler to ``engine`` so plan boundaries take extra samples, and
    prints a one-line summary to stderr on the way out.
    """
    log_path = getattr(args, "telemetry_log", None)
    if not getattr(args, "telemetry", False) and not log_path:
        yield None
        return
    from ..obs.telemetry import sampling

    with sampling(log_path=log_path) as sampler:
        engine.sampler = sampler
        try:
            yield sampler
        finally:
            engine.sampler = None
    suffix = f" -> {log_path}" if log_path else ""
    print(f"telemetry: {sampler.samples} samples at "
          f"{sampler.interval:g}s{suffix}", file=sys.stderr)
