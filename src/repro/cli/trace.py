"""The trace/metrics verb group: exporting observability data —
Chrome trace-event timelines and the metrics-registry families."""

from __future__ import annotations

import sys

from ..apps import APP_ORDER
from ..engine import build_plan
from .common import configure_engine_from_args, resolve_app, resolve_platform

__all__ = ["cmd_trace", "cmd_metrics"]


def cmd_trace(args) -> int:
    name = resolve_app(args.app)
    if name is None:
        return 2
    platform = resolve_platform(args.platform)
    if platform is None:
        return 2
    from ..harness import render_breakdown, trace_application
    from ..obs import breakdown_csv, check_nesting, summary_dict, write_chrome_trace

    est, tracer = trace_application(name, platform, iterations=args.iterations)
    check_nesting(tracer)
    path = write_chrome_trace(tracer, args.output)
    if args.csv:
        print(breakdown_csv(est), end="")
    else:
        print(render_breakdown(summary_dict(est)))
    print(f"trace: {len(tracer.spans)} spans, {len(tracer.events)} events "
          f"-> {path} (load in chrome://tracing or https://ui.perfetto.dev)",
          file=sys.stderr)
    return 0


def cmd_metrics(args) -> int:
    from ..obs.metrics import (
        collecting, prometheus_text, quantile_summary, snapshot,
    )

    engine = configure_engine_from_args(args)
    apps = []
    for a in args.apps or APP_ORDER:
        resolved = resolve_app(a)
        if resolved is None:
            return 2
        apps.append(resolved)
    platform = resolve_platform(args.platform)
    if platform is None:
        return 2
    with collecting() as registry:
        plan = build_plan(apps, [platform])
        engine.run_plan(plan)
        # When an estimation server has run in this process, fold its
        # metric families in alongside the sweep's own (sys.modules
        # lookup: serve-less runs never import the serve package, and
        # their export stays bit-identical).
        import sys as _sys

        serve_metrics = _sys.modules.get("repro.serve.metrics")
        if serve_metrics is not None:
            serve_metrics.merge_into(registry)
        if args.format == "prometheus":
            # Histogram p50/p95/p99 ride along as comment lines (the
            # same summary section GET /metrics appends).
            text = prometheus_text(registry) + quantile_summary(registry)
        else:
            import json as _json

            text = _json.dumps(snapshot(registry), indent=2, sort_keys=True) + "\n"
    if args.output:
        from pathlib import Path

        Path(args.output).write_text(text)
        print(f"metrics: {len(registry)} samples across "
              f"{len(registry.names())} families -> {args.output}",
              file=sys.stderr)
    else:
        print(text, end="")
    return 0
