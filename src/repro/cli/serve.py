"""The serve verb: stand up the long-running HTTP estimation service."""

from __future__ import annotations

import sys

__all__ = ["cmd_serve"]


def cmd_serve(args) -> int:
    # Imported here, not at module top: the CLI package loads for every
    # verb, and serve-less runs must never pay for (or observe) the
    # serve subsystem.
    from ..serve.server import ServeConfig, ReproServer

    config = ServeConfig(
        host=args.host,
        port=args.port,
        workers=args.workers,
        lru_capacity=args.lru_capacity,
        max_inflight=args.max_inflight,
        max_queue=args.max_queue,
        batch_window=args.batch_window,
        use_cache=not args.no_cache,
        vectorize=not args.no_vec,
        verbose=args.verbose,
        flight_records=args.flight_records,
        flight_log=args.flight_log,
        access_log=args.access_log,
        sample_interval=args.sample_interval,
        telemetry_ring=args.telemetry_ring,
        telemetry_log=args.telemetry_log,
    )
    try:
        server = ReproServer(config)
    except OSError as exc:
        print(f"cannot bind {config.host}:{config.port}: {exc}", file=sys.stderr)
        return 1
    print(f"repro serve: listening on {server.url} "
          f"({config.workers} workers, LRU {config.lru_capacity}, "
          f"inflight {config.max_inflight}+{config.max_queue} queued)",
          file=sys.stderr)
    print("endpoints: GET /healthz /metrics /telemetry /dashboard "
          "/fidelity /debug/requests — "
          "POST /run /sweep /explain (see docs/SERVE.md)", file=sys.stderr)

    # SIGTERM takes the same graceful path as Ctrl-C.  This matters for
    # supervised/background deployments: a shell backgrounding the
    # server with `&` leaves SIGINT ignored (POSIX), so `kill -TERM` is
    # the reliable way to stop it cleanly.
    def _graceful(signum, frame):
        raise KeyboardInterrupt

    import signal

    try:
        signal.signal(signal.SIGTERM, _graceful)
    except ValueError:  # not the main thread (embedded use): skip
        pass
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        print("\nrepro serve: shutting down", file=sys.stderr)
    finally:
        server.server_close()
        server.state.close()
    return 0
