"""The run/sweep verb group: ``list``, ``run``, ``sweep``, ``figures``,
``validate`` — modeling applications and regenerating paper figures."""

from __future__ import annotations

import sys

from ..apps import APP_ORDER, get_app
from ..engine import build_plan
from ..harness import best_run
from ..harness import figures as figmod
from ..machine import ALL_PLATFORMS
from .common import (
    config_sweep, configure_engine_from_args, resolve_app, resolve_platform,
    telemetry_scope,
)

__all__ = ["cmd_list", "cmd_run", "cmd_sweep", "cmd_figures", "cmd_validate"]


def cmd_list(_args) -> int:
    print("applications:")
    for name in APP_ORDER:
        d = get_app(name)
        print(f"  {name:14s} {d.description}")
    print("\nplatforms:")
    for p in ALL_PLATFORMS:
        print(f"  {p.short_name:10s} {p.name} — "
              f"{p.total_cores} cores, {p.stream_bandwidth / 1e9:.0f} GB/s STREAM")
    from ..obs.fidelity import FIGURE_ORDER

    print("\nfigures (accepted by figures/fidelity/drift):")
    for fig in FIGURE_ORDER:
        doc = (getattr(figmod, fig).__doc__ or "").strip().splitlines()[0]
        print(f"  {fig:10s} {doc}")
    doc = (figmod.fig7x.__doc__ or "").strip().splitlines()[0]
    print(f"  {'fig7x':10s} {doc} (figures/report only)")
    return 0


def cmd_run(args) -> int:
    name = resolve_app(args.app)
    if name is None:
        return 2
    defn = get_app(name)
    if args.compare:
        platforms = list(ALL_PLATFORMS)
    else:
        platform = resolve_platform(args.platform)
        if platform is None:
            return 2
        platforms = [platform]
    if getattr(args, "json", False):
        # The canonical payload the serve API's POST /run returns for
        # the same inputs — one builder, byte-equivalent by construction.
        from ..serve.payloads import render_json, run_payload

        if args.compare:
            payload = {"app": name,
                       "runs": [run_payload(name, p) for p in platforms]}
        else:
            payload = run_payload(name, platforms[0])
        print(render_json(payload), end="")
        return 0
    print(f"{defn.name}: {defn.description}")
    print(f"paper scale: {defn.paper_domain} x {defn.paper_iterations} iterations\n")
    for platform in platforms:
        cfg, est = best_run(name, platform, config_sweep(defn, platform))
        print(f"{platform.short_name:10s} {est.total_time:9.3f} s  "
              f"effBW {est.effective_bandwidth / 1e9:6.0f} GB/s  "
              f"MPI {est.mpi_fraction * 100:4.1f}%  [{cfg.label()}]")
    return 0


def cmd_figures(args) -> int:
    engine = configure_engine_from_args(args)
    wanted = args.figures or [f"fig{i}" for i in range(1, 10)] + ["fig7x"]
    with telemetry_scope(args, engine):
        for name in wanted:
            known = name in figmod.__all__ and name != "all_figures"
            fn = getattr(figmod, name, None) if known else None
            if fn is None:
                print(f"unknown figure {name!r} (fig1..fig9, fig7x)",
                      file=sys.stderr)
                return 2
            print(fn().render())
            print()
    return 0


def cmd_sweep(args) -> int:
    engine = configure_engine_from_args(args)
    apps = []
    for a in args.apps or APP_ORDER:
        resolved = resolve_app(a)
        if resolved is None:
            return 2
        apps.append(resolved)
    if args.platform == "all":
        platforms = list(ALL_PLATFORMS)
    else:
        platforms = []
        for p in args.platform.split(","):
            platform = resolve_platform(p)
            if platform is None:
                return 2
            platforms.append(platform)
    if getattr(args, "json", False):
        from ..serve.payloads import render_json, sweep_payload

        print(render_json(sweep_payload(apps, platforms)), end="")
        return 0
    plan = build_plan(apps, platforms)
    print(f"sweep: {len(apps)} apps x {len(platforms)} platforms -> "
          f"{len(plan)} jobs ({len(plan.skipped)} planned-infeasible)")
    with telemetry_scope(args, engine):
        results = engine.run_plan(plan)
    rows = [r for r in results if r.status != "skipped"]
    rows.sort(key=lambda r: (r.job.app, r.job.platform.short_name,
                             r.estimate.total_time if r.estimate else float("inf")))
    print(f"{'app':14s} {'platform':10s} {'time s':>9s} {'effBW GB/s':>10s} "
          f"{'source':>6s}  configuration")
    for r in rows:
        if r.estimate is None:
            print(f"{r.job.app:14s} {r.job.platform.short_name:10s} "
                  f"{'-':>9s} {'-':>10s} {r.status:>6s}  "
                  f"{r.job.config.label()}  ({r.reason})")
            continue
        print(f"{r.job.app:14s} {r.job.platform.short_name:10s} "
              f"{r.estimate.total_time:9.3f} "
              f"{r.estimate.effective_bandwidth / 1e9:10.0f} "
              f"{r.status:>6s}  {r.job.config.label()}")
    print()
    print(engine.metrics.summary())
    if engine.store.persistent:
        print(f"store: {len(engine.store)} results at {engine.store.path}")
    return 0


def cmd_validate(args) -> int:
    name = resolve_app(args.app)
    if name is None:
        return 2
    defn = get_app(name)
    ctx = defn.make_context()
    diag = defn.run(ctx, defn.test_domain, defn.test_iterations)
    print(f"{defn.name} at {defn.test_domain} x {defn.test_iterations}:")
    for key, val in diag.items():
        if hasattr(val, "shape"):
            print(f"  {key}: array{tuple(val.shape)}")
        elif isinstance(val, list) and len(val) > 6:
            print(f"  {key}: [{val[0]:.4g} ... {val[-1]:.4g}] ({len(val)} entries)")
        elif isinstance(val, dict):
            print(f"  {key}: {{{', '.join(val)}}}")
        else:
            print(f"  {key}: {val}")
    recs = getattr(ctx, "records", {})
    print(f"  loops: {len(recs)} distinct, "
          f"{sum(r.calls for r in recs.values())} launches")
    return 0
