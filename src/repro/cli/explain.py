"""The explain/report verb group: attribution trees, platform diffs,
what-if projections, and the self-contained reproduction report."""

from __future__ import annotations

import sys

from .common import configure_engine_from_args, resolve_app, resolve_platform

__all__ = ["cmd_explain", "cmd_report"]


def _parse_what_if(specs: list[str]) -> dict[str, float] | None:
    """``KNOB=FACTOR`` pairs → dict; None — with a stderr message
    listing knobs — on an unknown knob or malformed factor."""
    from ..obs.attribution import WHAT_IF_KNOBS

    knobs: dict[str, float] = {}
    for spec in specs:
        key, sep, val = spec.partition("=")
        if not sep:
            print(f"bad --what-if {spec!r} (expected KNOB=FACTOR)",
                  file=sys.stderr)
            return None
        if key not in WHAT_IF_KNOBS:
            print(f"unknown what-if knob {key!r} "
                  f"(choose from: {', '.join(WHAT_IF_KNOBS)})", file=sys.stderr)
            return None
        try:
            factor = float(val)
        except ValueError:
            print(f"bad --what-if factor {val!r} for {key!r} "
                  f"(a float, or 'inf' to zero the leaves)", file=sys.stderr)
            return None
        if not factor > 0:
            print(f"--what-if factor for {key!r} must be > 0 (got {val})",
                  file=sys.stderr)
            return None
        knobs[key] = factor
    return knobs


def _print_tree(tree) -> None:
    root = tree.seconds or 1.0
    for depth, node in tree.walk():
        pct = node.seconds / root * 100
        extra = ""
        if node.kind == "loop":
            extra = f"  [{node.meta.get('bottleneck')}-bound]"
        print(f"  {'  ' * depth}{node.name:<{max(28 - 2 * depth, 8)}} "
              f"{node.seconds:12.4g} s  {pct:5.1f}%{extra}")


def cmd_explain(args) -> int:
    configure_engine_from_args(args)
    name = resolve_app(args.app)
    if name is None:
        return 2
    platform = resolve_platform(args.platform)
    if platform is None:
        return 2
    knobs = _parse_what_if(args.what_if or [])
    if knobs is None:
        return 2
    other = None
    if args.vs:
        other = resolve_platform(args.vs)
        if other is None:
            return 2

    if args.json:
        # The canonical payload the serve API's POST /explain returns
        # for the same inputs (one builder, shared bytes).
        from ..serve.payloads import explain_payload, render_json

        print(render_json(explain_payload(name, platform, vs=other,
                                          what_if=knobs)), end="")
        return 0

    from ..harness import best_attribution
    from ..obs.diff import diff_trees, project

    cfg, est, tree = best_attribution(name, platform)
    diff = None
    if other is not None:
        _cfg_b, _est_b, tree_b = best_attribution(name, other)
        diff = diff_trees(tree, tree_b)
    projection = project(tree, knobs) if knobs else None

    print(f"{name} on {platform.short_name} [{cfg.label()}] — "
          f"{tree.seconds:.4g} s attributed:")
    _print_tree(tree)
    if diff is not None:
        print(f"\nvs {other.short_name}: {diff.total_a:.4g} s vs "
              f"{diff.total_b:.4g} s — {platform.short_name} is "
              f"{diff.speedup:.2f}x faster (delta {diff.delta:+.4g} s)")
        print("by kind:")
        for kind, delta in diff.by_kind():
            print(f"  {kind:16s} {delta:+12.4g} s")
        print("top contributors:")
        for c in diff.contributors[:8]:
            print(f"  {c.delta:+12.4g} s  {'/'.join(c.key):32s} {c.label}")
    if projection is not None:
        pretty = ", ".join(f"{k}={v:g}" for k, v in knobs.items())
        print(f"\nwhat-if [{pretty}]: {projection['baseline_seconds']:.4g} s "
              f"-> {projection['projected_seconds']:.4g} s "
              f"({projection['speedup']:.2f}x)")
    return 0


def cmd_report(args) -> int:
    configure_engine_from_args(args)
    from ..obs.htmlreport import write_report

    path = write_report(args.output, fmt=args.format)
    print(f"report: wrote {path} ({path.stat().st_size:,} bytes, "
          f"self-contained)", file=sys.stderr)
    return 0
