"""The live-view verb group: ``top`` (ANSI terminal telemetry view)
and ``telemetry`` (offline JSONL log report).

``repro top`` is deliberately curses-free: each frame is plain text
with Unicode block-character sparklines, optionally preceded by an
ANSI clear (suppressed by ``--plain``), so it works over ssh, in CI
logs and in a scrollback buffer.  Three sources, in priority order:

- ``--url``: poll a running server's ``GET /telemetry``;
- ``--log``: render one frame from a recorded telemetry JSONL file;
- neither: run a sweep in-process with a live sampler and watch it.
"""

from __future__ import annotations

import contextvars
import json
import sys
import threading
import time

from ..apps import APP_ORDER
from .common import resolve_app, resolve_platform

__all__ = ["cmd_top", "cmd_telemetry"]

#: Eight-level sparkline glyphs (space = zero).
_SPARK = " ▁▂▃▄▅▆▇█"
_CLEAR = "\x1b[2J\x1b[H"

#: Status glyph + word (never color alone; plain terminals get both).
_STATUS_GLYPH = {"ok": "● ok", "degraded": "▲ degraded",
                 "failing": "✖ failing"}


def _sparkline(values: list[float], width: int = 32) -> str:
    if not values:
        return ""
    tail = values[-width:]
    peak = max(tail)
    if peak <= 0:
        return _SPARK[0] * len(tail)
    return "".join(
        _SPARK[min(len(_SPARK) - 1, int((v / peak) * (len(_SPARK) - 1) + 0.5))]
        for v in tail
    )


def _fmt(v: float | None) -> str:
    if v is None:
        return "-"
    if v == 0:
        return "0"
    if abs(v) >= 1000:
        return f"{v:.0f}"
    if abs(v) >= 1:
        return f"{v:.2f}"
    return f"{v:.3g}"


def _labeltext(labels: dict) -> str:
    if not labels:
        return ""
    return "{" + ",".join(f"{k}={v}" for k, v in sorted(labels.items())) + "}"


# ---------------------------------------------------------------------------
# Frame model: one shape for all three sources


def frame_from_payload(payload: dict) -> dict:
    """A render frame from a ``GET /telemetry`` body (or
    ``TelemetrySampler.payload()``)."""
    rows = []
    for name, fam in sorted((payload.get("families") or {}).items()):
        for series in fam.get("series", []):
            values = [p[1] for p in series.get("points", [])]
            rows.append({
                "name": name + _labeltext(series.get("labels", {})),
                "kind": fam.get("kind", "gauge"),
                "last": values[-1] if values else series.get("last", 0.0),
                "values": values,
                "quantiles": series.get("quantiles"),
            })
    return {
        "samples": payload.get("samples", 0),
        "interval_s": payload.get("interval_s"),
        "slo": payload.get("slo") or {"status": "ok", "objectives": []},
        "rows": rows,
    }


def frame_from_records(records: list[dict]) -> dict:
    """A render frame replayed from telemetry JSONL records."""
    series: dict[tuple[str, str], dict] = {}
    for rec in records:
        for section, kind in (("counters", "counter"), ("gauges", "gauge"),
                              ("histograms", "histogram")):
            for name, rows in (rec.get(section) or {}).items():
                for row in rows:
                    key = (name, _labeltext(row.get("labels", {})))
                    slot = series.setdefault(key, {
                        "name": key[0] + key[1], "kind": kind,
                        "values": [], "last": 0.0, "quantiles": None,
                    })
                    if kind == "counter":
                        v = row.get("rate", 0.0) or 0.0
                        slot["last"] = row.get("value", 0.0)
                    elif kind == "gauge":
                        v = row.get("value", 0.0) or 0.0
                        slot["last"] = v
                    else:
                        v = float(row.get("count", 0))
                        slot["last"] = row.get("count", 0)
                        slot["quantiles"] = row.get("quantiles")
                    slot["values"].append(v)
    slo = (records[-1].get("slo") if records else None) or {
        "status": "ok", "objectives": []
    }
    dts = [r.get("dt") for r in records if r.get("dt")]
    return {
        "samples": len(records),
        "interval_s": round(sum(dts) / len(dts), 3) if dts else None,
        "slo": slo,
        "rows": [series[k] for k in sorted(series)],
    }


def render_frame(frame: dict, out=None) -> None:
    """Print one frame: SLO header, then a family table."""
    out = out or sys.stdout
    slo = frame["slo"]
    status = _STATUS_GLYPH.get(slo.get("status", "ok"), slo.get("status"))
    head = f"repro top — {status} · {frame['samples']} samples"
    if frame.get("interval_s"):
        head += f" · every {frame['interval_s']}s"
    print(head, file=out)
    for obj in slo.get("objectives", []):
        print(
            f"  {_STATUS_GLYPH.get(obj['status'], obj['status']):12s} "
            f"{obj['name']:18s} burn {_fmt(obj.get('burn_short'))} (short) "
            f"/ {_fmt(obj.get('burn_long'))} (long)",
            file=out,
        )
    print(file=out)
    print(f"{'metric':52s} {'last':>10s}  trend", file=out)
    for row in frame["rows"]:
        name = row["name"]
        if len(name) > 52:
            name = name[:49] + "..."
        line = (f"{name:52s} {_fmt(row['last']):>10s}  "
                f"{_sparkline(row['values'])}")
        q = row.get("quantiles")
        if q:
            line += (f"  p50 {_fmt(q.get('p50'))}"
                     f" p95 {_fmt(q.get('p95'))} p99 {_fmt(q.get('p99'))}")
        print(line, file=out)


# ---------------------------------------------------------------------------
# repro top


def _fetch_payload(url: str) -> dict:
    import urllib.request

    with urllib.request.urlopen(url.rstrip("/") + "/telemetry", timeout=10) as r:
        return json.loads(r.read().decode())


def cmd_top(args) -> int:
    if args.url and args.log:
        print("top: --url and --log are mutually exclusive", file=sys.stderr)
        return 2
    if args.log:
        from ..obs.telemetry import read_log

        try:
            records = read_log(args.log)
        except OSError as exc:
            print(f"top: cannot read {args.log}: {exc}", file=sys.stderr)
            return 1
        if not records:
            print(f"top: no telemetry records in {args.log}", file=sys.stderr)
            return 1
        render_frame(frame_from_records(records))
        return 0
    if args.url:
        frames = 0
        try:
            while args.frames <= 0 or frames < args.frames:
                try:
                    payload = _fetch_payload(args.url)
                except OSError as exc:
                    print(f"top: cannot reach {args.url}: {exc}",
                          file=sys.stderr)
                    return 1
                if not args.plain:
                    print(_CLEAR, end="")
                render_frame(frame_from_payload(payload))
                frames += 1
                if args.frames <= 0 or frames < args.frames:
                    time.sleep(args.interval)
        except KeyboardInterrupt:
            pass
        return 0
    return _top_inprocess(args)


def _top_inprocess(args) -> int:
    """No server: sweep in-process with a live sampler and watch it."""
    from ..engine import build_plan, default_engine
    from ..obs.telemetry import sampling

    apps = []
    for a in args.apps or APP_ORDER:
        resolved = resolve_app(a)
        if resolved is None:
            return 2
        apps.append(resolved)
    platform = resolve_platform(args.platform)
    if platform is None:
        return 2
    engine = default_engine()
    plan = build_plan(apps, [platform])
    with sampling(interval=args.interval) as sampler:
        engine.sampler = sampler
        try:
            # The sweep thread must see the sampling scope's registry;
            # fresh threads start with empty contexts, so run the plan
            # inside a copy of this one.
            ctx = contextvars.copy_context()
            worker = threading.Thread(
                target=ctx.run, args=(engine.run_plan, plan), daemon=True
            )
            worker.start()
            frames = 0
            try:
                while worker.is_alive() and (
                    args.frames <= 0 or frames < args.frames
                ):
                    worker.join(timeout=args.interval)
                    sampler.tick()
                    if not args.plain:
                        print(_CLEAR, end="")
                    render_frame(frame_from_payload(sampler.payload()))
                    frames += 1
            except KeyboardInterrupt:
                pass
            worker.join()
            # Final frame so short sweeps still show their totals
            # (unless --frames already rendered its quota).
            if args.frames <= 0 or frames < args.frames:
                sampler.tick()
                if not args.plain:
                    print(_CLEAR, end="")
                render_frame(frame_from_payload(sampler.payload()))
        finally:
            engine.sampler = None
    return 0


# ---------------------------------------------------------------------------
# repro telemetry


def cmd_telemetry(args) -> int:
    from ..obs.telemetry import read_log, summarize_log

    try:
        records = read_log(args.log)
    except OSError as exc:
        print(f"telemetry: cannot read {args.log}: {exc}", file=sys.stderr)
        return 1
    summary = summarize_log(records)
    if args.family:
        for kind in ("counters", "gauges", "histograms"):
            summary[kind] = {
                name: rows for name, rows in summary[kind].items()
                if args.family in name
            }
    if args.json:
        print(json.dumps(summary, indent=2, sort_keys=True))
        return 0
    print(f"telemetry log: {args.log}")
    print(f"  {summary['samples']} samples over "
          f"{_fmt(summary['duration_s'])}s")
    statuses = summary["slo"]["statuses"]
    if statuses:
        parts = ", ".join(
            f"{n} {s}" for s, n in sorted(statuses.items(),
                                          key=lambda kv: -kv[1])
        )
        print(f"  slo: {parts}")
    for name, obj in sorted(summary["slo"]["objectives"].items()):
        print(f"    {name:20s} worst {_STATUS_GLYPH.get(obj['worst_status'])}"
              f" (burn {_fmt(obj['worst_burn'])})")
    if summary["counters"]:
        print("\ncounters (total delta over the log, peak rate):")
        for name, rows in sorted(summary["counters"].items()):
            for row in rows:
                print(f"  {name + _labeltext(row['labels']):56s} "
                      f"+{_fmt(row['delta']):>9s}  peak {_fmt(row['peak_rate'])}/s")
    if summary["gauges"]:
        print("\ngauges (last / min / max):")
        for name, rows in sorted(summary["gauges"].items()):
            for row in rows:
                print(f"  {name + _labeltext(row['labels']):56s} "
                      f"{_fmt(row['last']):>10s}  [{_fmt(row['min'])}, "
                      f"{_fmt(row['max'])}]")
    if summary["histograms"]:
        print("\nhistograms (count, final quantiles):")
        for name, rows in sorted(summary["histograms"].items()):
            for row in rows:
                q = row.get("quantiles") or {}
                print(f"  {name + _labeltext(row['labels']):56s} "
                      f"{row['count']:>8d}  p50 {_fmt(q.get('p50'))} "
                      f"p95 {_fmt(q.get('p95'))} p99 {_fmt(q.get('p99'))}")
    return 0
