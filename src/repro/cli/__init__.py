"""Command-line interface package: ``python -m repro <command>``.

Commands
--------
``list``
    Show the applications and platforms.
``run APP [--platform P] [--compare] [--json]``
    Model one application (best configuration by default); ``--json``
    emits the canonical payload ``POST /run`` also serves.
``trace APP [--platform P] [-o trace.json] [--iterations N] [--csv]``
    Trace one modeled run and export a Chrome trace-event JSON
    (``chrome://tracing`` / Perfetto) plus the per-kernel breakdown.
``figures [figN ...] [--jobs N] [--no-cache] [--no-vec]``
    Regenerate the paper's figures (all by default) through the sweep
    engine.
``sweep [APP ...] [--platform P[,P...]|all] [--jobs N] [--no-cache] [--no-vec] [--json]``
    Evaluate full configuration sweeps through the engine and print the
    per-configuration table plus cache/executor metrics (``--json`` for
    the canonical payload ``POST /sweep`` also serves).  Cold points are
    evaluated through the batched vectorized path by default
    (``docs/VECTOR.md``); ``--no-vec`` forces the per-job scalar path.
``validate APP``
    Execute the application's numerics at test scale and print its
    invariant diagnostics.
``metrics [APP ...] [--platform P] [--format prometheus|json] [-o FILE]``
    Run configuration sweeps with the metrics registry installed and
    export every counter/gauge/histogram (Prometheus text or JSON).
``fidelity [figN ...] [-o scorecard.md] [--json]``
    Score the model against every published reference value per figure
    (signed relative error, rank agreement, pass/fail verdicts).
``drift --check|--update``
    Compare the fidelity scorecard against ``baselines/fidelity.json``
    (``--check``, exits 1 on regression) or re-record it (``--update``).
``explain APP [--platform P] [--vs Q] [--what-if KNOB=FACTOR ...] [--json]``
    Decompose an application's best-run estimate into its additive
    attribution tree; with ``--vs`` diff two platforms and rank the
    contributors to the delta; ``--what-if`` projects perturbed limbs
    (e.g. ``dram_bw=2.0``, ``mpi_wait=inf``).
``report [-o report.html] [--format html|md]``
    Write the complete reproduction report — figures, fidelity
    scorecard, per-app timelines, attribution and diffs — as one
    self-contained HTML file (or the classic markdown).
``serve [--host H] [--port N] [--workers N] ...``
    Run the long-running HTTP estimation service: batching, coalescing,
    an LRU warm tier over the result store, store-key sharding,
    back-pressure, and a continuous telemetry sampler feeding
    ``/telemetry``, ``/dashboard`` and the SLO-aware ``/healthz``
    (``docs/SERVE.md``).
``top [APP ...] [--url U] [--log FILE] [--interval S] [--frames N] [--plain]``
    Curses-free ANSI live view of telemetry: poll a running server's
    ``/telemetry``, replay a recorded ``--telemetry-log`` file, or run
    a sweep in-process with a live sampler (default).
``telemetry LOG [--json] [--family NAME]``
    Summarize a telemetry JSONL log offline: per-family deltas, rates,
    quantiles and the SLO status timeline.

Application names may be abbreviated to any unambiguous prefix
(``mgcfd``, ``volna``); an ambiguous prefix like ``cloverleaf`` resolves
to the first match in the canonical order with a note on stderr.
Platform names accept any prefix or substring (``8360y`` →
``icx8360y``) under the same rules.  Unknown application or platform
names exit with status 2 and a message listing the valid choices.

Layout: one module per verb group — :mod:`~repro.cli.run` (list/run/
sweep/figures/validate), :mod:`~repro.cli.trace` (trace/metrics),
:mod:`~repro.cli.fidelity` (fidelity/drift), :mod:`~repro.cli.explain`
(explain/report), :mod:`~repro.cli.serve` (serve),
:mod:`~repro.cli.top` (top/telemetry) — over the shared
resolution helpers in
:mod:`~repro.cli.common`.  :func:`main` owns the argparse tree, so the
help text and exit-code contracts live in one place.
"""

from __future__ import annotations

import argparse

from ..apps import APP_ORDER
from .explain import cmd_explain, cmd_report
from .fidelity import cmd_drift, cmd_fidelity
from .run import cmd_figures, cmd_list, cmd_run, cmd_sweep, cmd_validate
from .serve import cmd_serve
from .top import cmd_telemetry, cmd_top
from .trace import cmd_metrics, cmd_trace

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    """The complete ``repro`` argparse tree (one subparser per verb)."""
    from .. import __version__

    parser = argparse.ArgumentParser(
        prog="repro",
        description="Xeon CPU MAX bandwidth-bound application study, reproduced",
    )
    parser.add_argument("--version", action="version",
                        version=f"%(prog)s {__version__}")
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list applications and platforms")

    p_run = sub.add_parser("run", help="model one application")
    p_run.add_argument("app", help="application name (any unambiguous prefix)")
    p_run.add_argument("--platform", default="max9480",
                       help="platform short name (default max9480)")
    p_run.add_argument("--compare", action="store_true",
                       help="run on every platform")
    p_run.add_argument("--json", action="store_true",
                       help="emit the canonical run payload as JSON "
                            "(byte-equivalent to the serve API's POST /run)")

    p_trace = sub.add_parser(
        "trace", help="trace one modeled run and export a Chrome trace")
    p_trace.add_argument("app", help="application name (any unambiguous prefix)")
    p_trace.add_argument("--platform", default="max9480",
                         help="platform short name (default max9480)")
    p_trace.add_argument("-o", "--output", default="trace.json",
                         help="Chrome trace-event JSON path (default trace.json)")
    p_trace.add_argument("--iterations", type=int, default=1,
                         help="timeline iterations to lay out (default 1)")
    p_trace.add_argument("--csv", action="store_true",
                         help="print the per-kernel breakdown as CSV "
                              "instead of a table")

    p_fig = sub.add_parser("figures", help="regenerate paper figures")
    p_fig.add_argument("figures", nargs="*",
                       help="fig1 .. fig9, fig7x (default: all)")
    p_fig.add_argument("--jobs", type=int, default=None,
                       help="parallel sweep workers (default serial)")
    p_fig.add_argument("--no-cache", action="store_true",
                       help="bypass the persistent result store")
    p_fig.add_argument("--no-vec", action="store_true",
                       help="disable batched (vectorized) evaluation "
                            "(use the per-job scalar path)")
    p_fig.add_argument("--telemetry", action="store_true",
                       help="sample metrics continuously during the run "
                            "and print a telemetry summary")
    p_fig.add_argument("--telemetry-log", metavar="FILE", default=None,
                       help="append one JSONL record per telemetry sample "
                            "to FILE (implies --telemetry)")

    p_sweep = sub.add_parser(
        "sweep", help="evaluate configuration sweeps through the engine")
    # No argparse `choices` here: with nargs="*" Python <3.12 validates
    # the empty default against them and rejects it; cmd_sweep validates.
    p_sweep.add_argument("apps", nargs="*", metavar="APP",
                         help=f"applications (default: all of {', '.join(APP_ORDER)})")
    p_sweep.add_argument("--platform", default="max9480",
                         help="comma-separated platform short names, or 'all'")
    p_sweep.add_argument("--jobs", type=int, default=None,
                         help="parallel sweep workers (default serial)")
    p_sweep.add_argument("--no-cache", action="store_true",
                         help="bypass the persistent result store")
    p_sweep.add_argument("--no-vec", action="store_true",
                         help="disable batched (vectorized) evaluation "
                              "(use the per-job scalar path)")
    p_sweep.add_argument("--json", action="store_true",
                         help="emit the canonical sweep payload as JSON "
                              "(byte-equivalent to the serve API's POST /sweep)")
    p_sweep.add_argument("--telemetry", action="store_true",
                         help="sample metrics continuously during the sweep "
                              "and print a telemetry summary")
    p_sweep.add_argument("--telemetry-log", metavar="FILE", default=None,
                         help="append one JSONL record per telemetry sample "
                              "to FILE (implies --telemetry)")

    p_val = sub.add_parser("validate", help="run an app's numerics at test scale")
    p_val.add_argument("app", help="application name (any unambiguous prefix)")

    p_met = sub.add_parser(
        "metrics", help="run sweeps with the metrics registry and export it")
    p_met.add_argument("apps", nargs="*", metavar="APP",
                       help=f"applications (default: all of {', '.join(APP_ORDER)})")
    p_met.add_argument("--platform", default="max9480",
                       help="platform short name (default max9480)")
    p_met.add_argument("--format", choices=("prometheus", "json"),
                       default="prometheus",
                       help="export format (default prometheus text)")
    p_met.add_argument("-o", "--output", default=None,
                       help="write the export to a file instead of stdout")
    p_met.add_argument("--jobs", type=int, default=None,
                       help="parallel sweep workers (default serial)")
    p_met.add_argument("--no-cache", action="store_true",
                       help="bypass the persistent result store")
    p_met.add_argument("--no-vec", action="store_true",
                       help="disable batched (vectorized) evaluation "
                            "(use the per-job scalar path)")

    p_fid = sub.add_parser(
        "fidelity", help="score the model against the paper's values")
    p_fid.add_argument("figures", nargs="*", metavar="FIG",
                       help="fig1 .. fig9 (default: all)")
    p_fid.add_argument("-o", "--output", default=None,
                       help="write the scorecard to a file instead of stdout")
    p_fid.add_argument("--json", action="store_true",
                       help="emit JSON instead of markdown")
    p_fid.add_argument("--jobs", type=int, default=None,
                       help="parallel sweep workers (default serial)")
    p_fid.add_argument("--no-cache", action="store_true",
                       help="bypass the persistent result store")
    p_fid.add_argument("--no-vec", action="store_true",
                       help="disable batched (vectorized) evaluation "
                            "(use the per-job scalar path)")

    p_exp = sub.add_parser(
        "explain", help="attribute an estimate's seconds and diff platforms")
    p_exp.add_argument("app", help="application name (any unambiguous prefix)")
    p_exp.add_argument("--platform", default="max9480",
                       help="platform short name, prefix or substring "
                            "(default max9480)")
    p_exp.add_argument("--vs", default=None, metavar="PLATFORM",
                       help="second platform to diff against "
                            "(ranked contributors to the delta)")
    p_exp.add_argument("--what-if", action="append", default=None,
                       metavar="KNOB=FACTOR",
                       help="project a perturbed limb, e.g. dram_bw=2.0 or "
                            "mpi_wait=inf (repeatable)")
    p_exp.add_argument("--json", action="store_true",
                       help="emit the tree/diff/projection as JSON")
    p_exp.add_argument("--jobs", type=int, default=None,
                       help="parallel sweep workers (default serial)")
    p_exp.add_argument("--no-cache", action="store_true",
                       help="bypass the persistent result store")
    p_exp.add_argument("--no-vec", action="store_true",
                       help="disable batched (vectorized) evaluation "
                            "(use the per-job scalar path)")

    p_rep = sub.add_parser(
        "report", help="write the self-contained HTML (or markdown) report")
    p_rep.add_argument("-o", "--output", default="report.html",
                       help="output path (default report.html; a .md suffix "
                            "selects markdown)")
    p_rep.add_argument("--format", choices=("html", "md"), default=None,
                       help="force the format (default: from the suffix)")
    p_rep.add_argument("--jobs", type=int, default=None,
                       help="parallel sweep workers (default serial)")
    p_rep.add_argument("--no-cache", action="store_true",
                       help="bypass the persistent result store")
    p_rep.add_argument("--no-vec", action="store_true",
                       help="disable batched (vectorized) evaluation "
                            "(use the per-job scalar path)")

    p_drift = sub.add_parser(
        "drift", help="gate the fidelity scorecard against its baseline")
    mode = p_drift.add_mutually_exclusive_group(required=True)
    mode.add_argument("--check", action="store_true",
                      help="fail (exit 1) if any figure drifted past baseline")
    mode.add_argument("--update", action="store_true",
                      help="re-record baselines/fidelity.json from this run")
    p_drift.add_argument("--baseline", default=None,
                         help="baseline JSON path (default baselines/fidelity.json)")
    p_drift.add_argument("--jobs", type=int, default=None,
                         help="parallel sweep workers (default serial)")
    p_drift.add_argument("--no-cache", action="store_true",
                         help="bypass the persistent result store")
    p_drift.add_argument("--no-vec", action="store_true",
                         help="disable batched (vectorized) evaluation "
                              "(use the per-job scalar path)")

    p_srv = sub.add_parser(
        "serve", help="run the long-running HTTP estimation service")
    p_srv.add_argument("--host", default="127.0.0.1",
                       help="bind address (default 127.0.0.1)")
    p_srv.add_argument("--port", type=int, default=8000,
                       help="bind port (default 8000; 0 for ephemeral)")
    p_srv.add_argument("--workers", type=int, default=4,
                       help="sweep-plan shards / worker threads (default 4)")
    p_srv.add_argument("--lru-capacity", type=int, default=4096,
                       help="in-memory warm-tier entries (default 4096)")
    p_srv.add_argument("--max-inflight", type=int, default=8,
                       help="concurrent evaluating requests (default 8)")
    p_srv.add_argument("--max-queue", type=int, default=32,
                       help="admitted-but-waiting requests before 429 "
                            "(default 32)")
    p_srv.add_argument("--batch-window", type=float, default=0.005,
                       help="seconds to accumulate a run batch (default 0.005)")
    p_srv.add_argument("--no-cache", action="store_true",
                       help="serve without the persistent result store")
    p_srv.add_argument("--no-vec", action="store_true",
                       help="disable batched (vectorized) evaluation "
                            "(use the per-job scalar path)")
    p_srv.add_argument("--flight-records", type=int, default=256,
                       help="flight-recorder ring size: last N requests "
                            "kept for GET /debug/requests (default 256)")
    p_srv.add_argument("--flight-log", metavar="FILE",
                       help="dump the flight-recorder ring to FILE "
                            "(JSONL) on shutdown")
    p_srv.add_argument("--access-log", metavar="FILE",
                       help="append one JSONL line per completed request "
                            "to FILE")
    p_srv.add_argument("--verbose", action="store_true",
                       help="log every request to stderr")
    p_srv.add_argument("--sample-interval", type=float, default=1.0,
                       help="telemetry sampling interval in seconds "
                            "(default 1.0; 0 disables the sampler thread)")
    p_srv.add_argument("--telemetry-ring", type=int, default=600,
                       help="ring capacity per time series "
                            "(default 600 samples = 10 min at 1 Hz)")
    p_srv.add_argument("--telemetry-log", metavar="FILE",
                       help="append one JSONL record per telemetry sample "
                            "to FILE")

    p_top = sub.add_parser(
        "top", help="curses-free ANSI live view of telemetry")
    p_top.add_argument("apps", nargs="*", metavar="APP",
                       help="applications for the in-process sweep mode "
                            f"(default: all of {', '.join(APP_ORDER)})")
    p_top.add_argument("--platform", default="max9480",
                       help="platform for the in-process sweep mode "
                            "(default max9480)")
    p_top.add_argument("--url", default=None, metavar="URL",
                       help="poll a running server's GET /telemetry "
                            "instead of sweeping in-process")
    p_top.add_argument("--log", default=None, metavar="FILE",
                       help="render one frame from a recorded telemetry "
                            "JSONL file instead of live data")
    p_top.add_argument("--interval", type=float, default=2.0,
                       help="seconds between frames (default 2.0)")
    p_top.add_argument("--frames", type=int, default=0,
                       help="render N frames then exit "
                            "(default 0: until the run ends or Ctrl-C)")
    p_top.add_argument("--plain", action="store_true",
                       help="no ANSI clear between frames "
                            "(scrollback/CI friendly)")

    p_tel = sub.add_parser(
        "telemetry", help="summarize a telemetry JSONL log offline")
    p_tel.add_argument("log", metavar="LOG",
                       help="telemetry JSONL path (written by "
                            "--telemetry-log)")
    p_tel.add_argument("--json", action="store_true",
                       help="emit the summary as JSON")
    p_tel.add_argument("--family", default=None, metavar="NAME",
                       help="only metric families whose name contains NAME")
    return parser


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    return {"list": cmd_list, "run": cmd_run, "trace": cmd_trace,
            "figures": cmd_figures, "sweep": cmd_sweep,
            "validate": cmd_validate, "metrics": cmd_metrics,
            "fidelity": cmd_fidelity, "drift": cmd_drift,
            "explain": cmd_explain, "report": cmd_report,
            "serve": cmd_serve, "top": cmd_top,
            "telemetry": cmd_telemetry}[args.command](args)
