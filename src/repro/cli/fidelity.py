"""The fidelity/drift verb group: scoring the model against the paper's
published values and gating the scorecard against its recorded baseline."""

from __future__ import annotations

import sys

from .common import configure_engine_from_args, resolve_figures

__all__ = ["cmd_fidelity", "cmd_drift"]


def cmd_fidelity(args) -> int:
    from ..obs.fidelity import scorecard

    configure_engine_from_args(args)
    figures = resolve_figures(args.figures)
    if figures is None:
        return 2
    card = scorecard(figures or None)
    if args.json:
        # render_json is the exact historical rendering (indent=2,
        # sort_keys, trailing newline) — and the serve API's GET
        # /fidelity body, byte-equivalent by construction.
        from ..serve.payloads import render_json

        text = render_json(card.as_dict())
    else:
        text = card.to_markdown()
    if args.output:
        from pathlib import Path

        Path(args.output).write_text(text)
        n = sum(len(s.entries) for s in card.scores)
        print(f"fidelity: {len(card.scores)} figures, {n} reference values "
              f"-> {args.output}", file=sys.stderr)
    else:
        print(text, end="")
    return 0 if card.passed else 1


def cmd_drift(args) -> int:
    from pathlib import Path

    from ..obs.fidelity import (
        baseline_path, check_drift, load_baseline, save_baseline, scorecard,
    )

    configure_engine_from_args(args)
    path = Path(args.baseline) if args.baseline else baseline_path()
    card = scorecard()
    if args.update:
        out = save_baseline(card, path)
        print(f"drift baseline recorded for {len(card.scores)} figures -> {out}")
        return 0
    baseline = load_baseline(path)
    if baseline is None:
        print(f"no drift baseline at {path}; run "
              "'python -m repro drift --update' first", file=sys.stderr)
        return 2
    problems = check_drift(card, baseline)
    if problems:
        print(f"drift check FAILED ({len(problems)} regressions):")
        for p in problems:
            print(f"  - {p}")
        return 1
    worst = max(s.max_abs_rel_err for s in card.scores)
    print(f"drift check passed: {len(card.scores)} figures within baseline "
          f"(worst |rel err| {worst:.3f})")
    return 0
