"""Configuration effects: compiler, ZMM width, hyperthreading, runtime.

Maps a (:class:`~repro.machine.spec.PlatformSpec`,
:class:`~repro.machine.config.RunConfig`, :class:`~repro.perfmodel.kernelmodel.AppSpec`)
triple onto the effective machine parameters of one kernel execution:

- :func:`effective_flops` — node flop throughput with the configured
  vector width, clock response, compiler codegen quality, vectorization
  success, and SMT effects;
- :func:`bandwidth_multiplier` / :func:`traffic_multiplier` — achieved
  bandwidth and extra data-movement effects (HT contention, coloring
  locality loss, vector pack/unpack traffic);
- :func:`loop_overhead` — per-parallel-loop runtime cost (OpenMP
  fork/barrier, SYCL/OpenCL submission, CUDA launch);
- :func:`gather_throughput` — sustained irregular accesses/s for
  latency-bound unstructured kernels.

Every constant lives in :mod:`repro.perfmodel.calibration` with its
justification.
"""

from __future__ import annotations

from ..machine.config import Compiler, Parallelization, RunConfig, ZmmUsage
from ..machine.spec import DeviceKind, PlatformSpec
from . import calibration as cal
from .kernelmodel import AppClass, AppSpec, LoopSpec

__all__ = [
    "vector_width_used",
    "kernel_concurrency",
    "app_memory_bandwidth",
    "kernel_vectorizes",
    "effective_flops",
    "bandwidth_multiplier",
    "traffic_multiplier",
    "loop_overhead",
    "gather_throughput",
    "sycl_time_multiplier",
]


def vector_width_used(platform: PlatformSpec, config: RunConfig) -> int:
    """SIMD width (bits) the generated code uses."""
    if platform.kind is DeviceKind.GPU:
        return platform.isa.width_bits
    if platform.isa.width_bits >= 512 and config.zmm is ZmmUsage.HIGH:
        return 512
    return min(platform.isa.width_bits, 256)


def kernel_vectorizes(config: RunConfig, app: AppSpec, loop: LoopSpec) -> bool:
    """Whether this loop executes as SIMD code under this configuration.

    Structured kernels auto-vectorize everywhere.  Unstructured kernels
    with indirect increments only vectorize under the explicit "MPI vec"
    packing scheme or as SYCL "flat" (paper Sec. 4: "While the OpenMP
    version does not auto-vectorize, we can generate SYCL code that
    vectorizes"; pure MPI without vec processes elements sequentially).
    """
    if config.parallelization is Parallelization.CUDA:
        return True
    if loop.vectorizable:
        return True
    return config.parallelization in (
        Parallelization.MPI_VEC,
        Parallelization.MPI_SYCL_FLAT,
    )


def _clock(platform: PlatformSpec, width: int) -> float:
    """All-core clock under the configured vector width."""
    f = platform.turbo_freq
    if width >= 512:
        f *= platform.isa.freq_penalty_full_width
    return f


def effective_flops(
    platform: PlatformSpec, config: RunConfig, app: AppSpec, loop: LoopSpec
) -> float:
    """Node-level sustained flop rate (flops/s) for this kernel."""
    width = vector_width_used(platform, config)
    freq = _clock(platform, width)
    if kernel_vectorizes(config, app, loop):
        full_lanes = platform.isa.lanes(loop.dtype_bytes)
        per_core = full_lanes * platform.isa.fma_units * 2
        lanes = width // (8 * loop.dtype_bytes)
        if 0 < lanes < full_lanes:
            # Sub-full-width code loses throughput sublinearly (the
            # non-FMA share of the kernel is width-insensitive).
            per_core *= (lanes / full_lanes) ** cal.VECTOR_WIDTH_EXPONENT
    else:
        # Scalar with ILP: the FMA pipes still dual-issue scalar ops.
        per_core = platform.isa.fma_units * 2 * cal.SCALAR_ILP_FLOPS_FRACTION
    rate = platform.total_cores * per_core * freq
    if platform.kind is DeviceKind.CPU:
        rate *= cal.FLOP_MIX.get(app.klass.value, 1.0)
    if (
        config.hyperthreading
        and app.klass is AppClass.COMPUTE_BOUND
        and platform.kind is DeviceKind.CPU
    ):
        rate *= cal.HT_COMPUTE_PENALTY
    return rate


def bandwidth_multiplier(
    platform: PlatformSpec, config: RunConfig, app: AppSpec, loop: LoopSpec
) -> float:
    """Multiplier on the hierarchy model's achievable bandwidth."""
    m = 1.0
    if platform.kind is DeviceKind.GPU:
        return cal.GPU_BW_EFFICIENCY
    if config.hyperthreading:
        m *= cal.HT_BANDWIDTH_PENALTY
        if config.parallelization.threads_within_rank:
            m *= cal.HT_OMP_SCHED_PENALTY
    if app.klass is AppClass.UNSTRUCTURED and config.parallelization.threads_within_rank:
        # Colored execution breaks spatial locality (Sec. 5).
        m *= cal.UNSTRUCT_OMP_LOCALITY_LOSS
    return m


def traffic_multiplier(
    platform: PlatformSpec, config: RunConfig, app: AppSpec, loop: LoopSpec
) -> float:
    """Multiplier on the kernel's counted memory traffic."""
    m = 1.0
    if (
        config.parallelization is Parallelization.MPI_VEC
        and loop.indirect_per_point > 0
    ):
        width = vector_width_used(platform, config)
        m *= cal.VEC_PACK_OVERHEAD_512 if width >= 512 else cal.VEC_PACK_OVERHEAD_256
    return m


def loop_overhead(platform: PlatformSpec, config: RunConfig) -> float:
    """Per-parallel-loop runtime cost (seconds), per rank."""
    par = config.parallelization
    if par is Parallelization.CUDA:
        return cal.CUDA_LAUNCH_OVERHEAD
    if par.uses_sycl:
        return cal.SYCL_LAUNCH_OVERHEAD
    if par is Parallelization.MPI_OMP:
        threads = config.threads_per_rank(platform)
        return cal.OMP_FORK_BASE + threads * cal.OMP_BARRIER_PER_THREAD
    return cal.LOOP_OVERHEAD_MPI


def sycl_time_multiplier(config: RunConfig) -> float:
    """Extra kernel-time factor for the ndrange SYCL variant (one
    app-wide workgroup shape vs. runtime-chosen per-kernel shapes)."""
    if config.parallelization is Parallelization.MPI_SYCL_NDRANGE:
        return 1.0 + cal.SYCL_NDRANGE_EXTRA
    return 1.0


def kernel_concurrency(
    platform: PlatformSpec, config: RunConfig, loop: LoopSpec
) -> float:
    """In-flight cache lines per core this kernel sustains.

    Starts from the prefetch-assisted streaming figure and dilutes it by
    the kernel's stencil radius and concurrent stream count; SMT adds a
    modest boost.  See the "Concurrency-limited application bandwidth"
    block in :mod:`repro.perfmodel.calibration`.
    """
    c = cal.MEM_CONCURRENCY_BASE
    c /= 1.0 + cal.CONCURRENCY_RADIUS_DILUTION * loop.radius**2
    if loop.streams > cal.CONCURRENCY_STREAMS_REF:
        c *= (cal.CONCURRENCY_STREAMS_REF / loop.streams) ** cal.CONCURRENCY_STREAMS_EXP
    if config.hyperthreading and platform.kind is DeviceKind.CPU:
        c *= cal.CONCURRENCY_HT_BOOST
    return c


def app_memory_bandwidth(
    platform: PlatformSpec,
    config: RunConfig,
    app: AppSpec,
    loop: LoopSpec,
    hierarchy_bw: float,
) -> float:
    """Achievable bandwidth for one application kernel (bytes/s).

    ``hierarchy_bw`` is the working-set-dependent figure from
    :class:`~repro.mem.hierarchy.HierarchyModel`; this applies the
    application derate, the per-core concurrency ceiling (binding on HBM,
    slack on DDR — the Figure 8 mechanism), and the configuration
    multipliers.
    """
    mult = bandwidth_multiplier(platform, config, app, loop)
    if platform.kind is DeviceKind.GPU:
        return hierarchy_bw * mult  # GPU_BW_EFFICIENCY applied by the multiplier
    if hierarchy_bw > platform.stream_bandwidth * 1.01:
        # Cache-resident working set: the miss-concurrency ceiling does
        # not apply (latency is an order of magnitude lower); only the
        # application derate does.
        return hierarchy_bw * cal.APP_STREAM_DERATE * mult
    line = platform.caches[0].line_size
    per_core = kernel_concurrency(platform, config, loop) * line / platform.memory.latency
    ceiling = per_core * platform.total_cores
    return min(hierarchy_bw * cal.APP_STREAM_DERATE, ceiling) * mult


def gather_throughput(
    platform: PlatformSpec,
    config: RunConfig,
    app: AppSpec | None = None,
    loop: LoopSpec | None = None,
) -> float:
    """Sustained irregular (gather) accesses per second, node-wide.

    Latency-bound indirect access is limited by outstanding misses per
    core x cores / memory latency; SMT raises the sustainable miss count
    (the +13% HT benefit on unstructured apps, Sec. 5), and GPUs hide
    latency with warp oversubscription.
    """
    mlp = cal.UNSTRUCT_GATHER_MLP
    if platform.kind is DeviceKind.GPU:
        mlp *= cal.GPU_SMT_LATENCY_FACTOR
    else:
        if config.hyperthreading:
            mlp *= cal.HT_CONCURRENCY_BOOST
        if loop is not None and app is not None and kernel_vectorizes(config, app, loop):
            mlp *= cal.VEC_GATHER_MLP_BOOST
    # Renumbered meshes keep most gathers on chip; blend latencies.
    llc = platform.last_level_cache.latency
    hit = cal.GATHER_CACHE_HIT_RATE
    if app is not None and app.gather_hit is not None:
        hit = app.gather_hit
    if app is not None:
        # When the gathered field itself (the solution vector: ~4
        # components per mesh point) is LLC-resident, gathers hit cache
        # regardless of mesh numbering — the EPYC V-cache's MG-CFD
        # advantage (Sec. 6).
        gathered = app.gridpoints * 4.0 * app.dtype_bytes
        llc_cap = (
            platform.cache_capacity_total(platform.last_level_cache.name)
            * cal.CACHE_UTILIZATION
        )
        if gathered <= llc_cap:
            hit = max(hit, cal.GATHER_LLC_HIT)
    eff_latency = hit * llc + (1.0 - hit) * platform.memory.latency
    return platform.total_cores * mlp / eff_latency
