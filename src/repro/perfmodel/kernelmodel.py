"""Kernel and application descriptors consumed by the performance model.

A :class:`LoopSpec` describes one parallel loop's per-iteration resource
profile — points processed, memory traffic, flops, stencil radius,
indirect accesses.  The DSLs (:mod:`repro.ops`, :mod:`repro.op2`) produce
these automatically from their access descriptors when an application
runs; the numbers are *measured from the real numpy kernels*, then scaled
analytically to the paper's problem sizes.

An :class:`AppSpec` aggregates the loops plus the application-level facts
the model needs: problem size, halo depth and exchanged fields (for the
communication model), iteration count, and the compiler affinity factors
from the paper's Section 5 discussion.
"""

from __future__ import annotations

import hashlib
import json
import math
from dataclasses import asdict, dataclass, field
from enum import Enum

from ..machine.config import Compiler
from ..machine.spec import PlatformSpec

__all__ = ["AppClass", "LoopSpec", "AppSpec", "stencil_traffic_factor"]


class AppClass(Enum):
    """Coarse application behaviour class (paper Section 3)."""

    STRUCTURED_BW = "structured-bandwidth"  # CloverLeaf, OpenSBLI SA, miniWeather
    STRUCTURED_COMPUTE = "structured-compute"  # Acoustic, OpenSBLI SN
    UNSTRUCTURED = "unstructured"  # MG-CFD, Volna
    COMPUTE_BOUND = "compute"  # miniBUDE

    @property
    def is_structured(self) -> bool:
        return self in (AppClass.STRUCTURED_BW, AppClass.STRUCTURED_COMPUTE)


@dataclass(frozen=True)
class LoopSpec:
    """Per-iteration resource profile of one parallel loop.

    Attributes
    ----------
    name:
        Kernel name (for per-loop breakdowns).
    points:
        Elements processed per application iteration (grid points, mesh
        edges, poses x atoms, ...), at the scale being modeled.
    bytes_per_point:
        Main-memory traffic per point, from the DSL access descriptors
        (reads + writes, read-modify-write counted twice), i.e. the same
        accounting OPS uses for the paper's Figure 8.
    flops_per_point:
        Floating-point operations per point (declared by each kernel).
    radius:
        Stencil radius for structured kernels (0 = pointwise); drives the
        cache-pressure traffic amplification for high-order stencils.
    indirect_per_point:
        Irregular (gather/scatter) accesses per point for unstructured
        kernels; drives the latency bottleneck term.
    indirect_bytes_per_point:
        Share of ``bytes_per_point`` moved through indirect accesses —
        served from cache when the gathered field is LLC-resident (the
        EPYC V-cache effect of Sec. 6).
    vectorizable:
        Whether compilers auto-vectorize the kernel in its natural form
        (unstructured kernels with race conditions are not, unless the
        explicit "MPI vec" packing scheme is used).
    dtype_bytes:
        Element size (4 = single precision, 8 = double).
    streams:
        Number of distinct arrays the kernel reads/writes concurrently
        (from the DSL's dat arguments); dilutes per-core memory
        concurrency — see ``calibration.CONCURRENCY_STREAMS_REF``.
    invocations:
        Times the loop launches per application iteration (``points`` is
        the per-iteration total across them); each launch pays the
        per-loop runtime overhead — many small boundary kernels are what
        hurt SYCL on CloverLeaf (Sec. 5.1).
    """

    name: str
    points: float
    bytes_per_point: float
    flops_per_point: float
    radius: int = 0
    indirect_per_point: float = 0.0
    indirect_bytes_per_point: float = 0.0
    vectorizable: bool = True
    dtype_bytes: int = 8
    streams: int = 4
    invocations: float = 1.0

    def __post_init__(self) -> None:
        if self.points < 0 or self.bytes_per_point < 0 or self.flops_per_point < 0:
            raise ValueError(f"loop {self.name}: negative resource counts")
        if self.dtype_bytes not in (4, 8):
            raise ValueError(f"loop {self.name}: dtype_bytes must be 4 or 8")

    @property
    def bytes_total(self) -> float:
        return self.points * self.bytes_per_point

    @property
    def flops_total(self) -> float:
        return self.points * self.flops_per_point

    @property
    def arithmetic_intensity(self) -> float:
        """Flops per byte of memory traffic."""
        if self.bytes_total == 0:
            return math.inf
        return self.flops_total / self.bytes_total

    def trace_attrs(self) -> dict:
        """The span/event attributes the observability layer attaches to
        this loop's perfmodel records (a stable, JSON-friendly subset)."""
        return {
            "points": self.points,
            "bytes_per_point": self.bytes_per_point,
            "flops_per_point": self.flops_per_point,
            "radius": self.radius,
            "indirect_per_point": self.indirect_per_point,
            "streams": self.streams,
            "invocations": self.invocations,
            "vectorizable": self.vectorizable,
        }

    @classmethod
    def from_traffic(cls, rec, iterations: int = 1, scale: float = 1.0) -> "LoopSpec":
        """Build the per-iteration spec of one accumulated loop profile.

        ``rec`` is a :class:`~repro.ir.ledger.LoopTraffic` record (duck-
        typed — anything with the same counters works): whole-run totals
        divided by ``iterations`` and extrapolated by ``scale``.
        Structured records carry their stencil radius; unstructured ones
        their indirect-access profile and the non-vectorizable flag for
        racing increments.
        """
        return cls(
            name=rec.name,
            points=rec.points / iterations * scale,
            bytes_per_point=rec.bytes_per_point,
            flops_per_point=rec.flops_per_point,
            radius=rec.radius,
            indirect_per_point=rec.indirect_per_elem,
            indirect_bytes_per_point=(
                rec.indirect_bytes / rec.points if rec.points else 0.0
            ),
            vectorizable=not rec.has_indirect_inc,
            dtype_bytes=rec.dtype_bytes,
            streams=max(rec.streams, 1),
            invocations=rec.calls / iterations,
        )

    def scaled(self, factor: float) -> "LoopSpec":
        """Same loop with ``points`` scaled by ``factor`` (used to
        extrapolate a scaled-down run to the paper's problem size)."""
        if factor <= 0:
            raise ValueError("scale factor must be positive")
        return LoopSpec(
            self.name,
            self.points * factor,
            self.bytes_per_point,
            self.flops_per_point,
            self.radius,
            self.indirect_per_point,
            self.indirect_bytes_per_point,
            self.vectorizable,
            self.dtype_bytes,
            self.streams,
            self.invocations,
        )


@dataclass(frozen=True)
class AppSpec:
    """Application-level model input.

    ``compiler_affinity`` maps a compiler to a relative *performance*
    factor (1.0 = reference).  These encode the paper's Section 5 codegen
    observations (e.g. Classic 34% slower on miniWeather, Classic stalls
    on miniBUDE -> factor 0); they are software-quality inputs the model
    cannot derive from hardware specs.
    """

    name: str
    klass: AppClass
    dtype_bytes: int
    iterations: int
    loops: tuple[LoopSpec, ...]
    domain: tuple[int, ...]  # global grid (structured) / (cells,) (unstructured)
    halo_depth: int = 1
    fields_exchanged: float = 1.0  # dats exchanged per halo exchange
    exchanges_per_iter: float = 1.0
    reductions_per_iter: float = 0.0
    compiler_affinity: dict[Compiler, float] = field(default_factory=dict)
    mesh_neighbors: float = 6.0  # avg partition neighbors (unstructured)
    #: Total field storage (bytes) — the reuse footprint one iteration
    #: sweeps through; residency decisions use this, not per-loop traffic.
    state_bytes: float = 0.0
    #: Cache hit rate of this mesh's gathers (None = calibration default).
    gather_hit: float | None = None

    def __post_init__(self) -> None:
        if self.iterations < 1:
            raise ValueError("iterations must be >= 1")
        if not self.loops:
            raise ValueError("an application must have at least one loop")
        if any(d < 1 for d in self.domain):
            raise ValueError("domain extents must be positive")

    @property
    def ndims(self) -> int:
        return len(self.domain)

    @property
    def gridpoints(self) -> float:
        p = 1.0
        for d in self.domain:
            p *= d
        return p

    def affinity(self, compiler: Compiler) -> float:
        return self.compiler_affinity.get(compiler, 1.0)

    def fingerprint(self) -> str:
        """Deterministic 16-hex-digit digest of the complete spec.

        Stable across processes (keys are sorted, floats serialize via
        their shortest round-trip repr) and sensitive to every modeled
        quantity — adding a loop, changing an iteration count or a
        measured bytes-per-point all produce a new fingerprint.  The
        sweep engine's result store uses this as the application part of
        its cache key; it is also handy for spotting profiling drift.
        """
        payload = {
            "name": self.name,
            "klass": self.klass.value,
            "dtype_bytes": self.dtype_bytes,
            "iterations": self.iterations,
            "loops": [asdict(l) for l in self.loops],
            "domain": list(self.domain),
            "halo_depth": self.halo_depth,
            "fields_exchanged": self.fields_exchanged,
            "exchanges_per_iter": self.exchanges_per_iter,
            "reductions_per_iter": self.reductions_per_iter,
            "compiler_affinity": {c.value: v for c, v in self.compiler_affinity.items()},
            "mesh_neighbors": self.mesh_neighbors,
            "state_bytes": self.state_bytes,
            "gather_hit": self.gather_hit,
        }
        blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(blob.encode()).hexdigest()[:16]

    def bytes_per_iteration(self) -> float:
        return sum(l.bytes_total for l in self.loops)

    def flops_per_iteration(self) -> float:
        return sum(l.flops_total for l in self.loops)


def stencil_traffic_factor(
    loop: LoopSpec,
    platform: PlatformSpec,
    points_per_core: float,
    ndims: int,
) -> float:
    """Cache-pressure amplification of a structured stencil's traffic.

    A radius-``r`` stencil in the slowest dimension revisits ``2r+1``
    planes of its input; if a core's share of those planes exceeds its
    private cache, neighbor accesses miss and each sweep re-fetches parts
    of the field.  The model charges one extra fetch of the read traffic
    for every plane-set overflow factor, which is what makes the 8th-order
    Acoustic solver "bandwidth and cache locality bound" (Sec. 3) and
    drops its achieved effective bandwidth to ~41% of STREAM on the Xeon
    MAX (Figure 8) while CloverLeaf 2D's radius-1 kernels stay near 75%.
    """
    if loop.radius <= 0 or ndims < 2:
        return 1.0
    # Per-core plane working set: (2r+1) planes of the core's subdomain.
    plane_points = points_per_core ** ((ndims - 1) / ndims)
    window_bytes = (2 * loop.radius + 1) * plane_points * loop.dtype_bytes
    l2 = platform.cache("L2").capacity if _has_cache(platform, "L2") else platform.caches[0].capacity
    overflow = window_bytes / l2
    if overflow <= 1.0:
        return 1.0
    # Amplification saturates at the no-reuse bound: every one of the
    # 2r+1 neighbour planes fetched from memory.
    return float(min(1.0 + math.log2(overflow), 2 * loop.radius + 1.0))


def _has_cache(platform: PlatformSpec, name: str) -> bool:
    try:
        platform.cache(name)
        return True
    except KeyError:
        return False
