"""SYCL workgroup-shape model (the paper's Section 5.1 study).

The paper compares SYCL's "flat" scheme (the runtime picks a workgroup
shape per kernel) with "ndrange" (the user fixes one shape for the whole
application), fine-tunes the latter by exhaustive search, and observes:

    "better performance is achieved when the workgroup size in the
    contiguous dimension matches the size of the domain, and the other
    dimensions are small — in this case a shape of 160x4x4 gave 2%
    faster execution than the default size with 'flat'.  This is
    consistent with our understanding of cache prefetchers and task
    granularity."

This module models exactly those two mechanisms on CPU:

* **prefetcher streaming** — a workgroup whose contiguous-dimension
  extent is shorter than the domain row restarts the hardware
  prefetcher at every row fragment; efficiency grows with the fraction
  of the row covered;
* **task granularity / balance** — the workgroups must tile the domain
  evenly over the worker threads; ragged tiling leaves threads idle in
  the last wave, and very many tiny groups pay per-group scheduling.

:func:`workgroup_time_factor` returns a >= 1 multiplier on kernel time;
:func:`exhaustive_search` reproduces the paper's tuning experiment; and
:func:`flat_heuristic` stands in for the runtime's per-kernel choice.
"""

from __future__ import annotations

import itertools
import math
from dataclasses import dataclass

from ..machine.spec import PlatformSpec

__all__ = [
    "workgroup_time_factor",
    "flat_heuristic",
    "exhaustive_search",
    "WorkgroupChoice",
]

#: Elements of contiguous access after which the L2 streamer runs at
#: full efficiency (~2 cache lines of FP64 per stream start-up).
PREFETCH_RAMP = 64

#: Relative cost of a cold prefetch stream (first accesses of each row
#: fragment run at demand-miss latency).
PREFETCH_PENALTY = 0.35

#: Per-workgroup scheduling cost, as a fraction of the work of
#: PREFETCH_RAMP grid points (CPU OpenCL runtime queue overhead).
SCHED_COST_POINTS = 18.0


@dataclass(frozen=True)
class WorkgroupChoice:
    """Result of a workgroup search."""

    shape: tuple[int, ...]
    factor: float  # kernel-time multiplier (1.0 = ideal)


def workgroup_time_factor(
    shape: tuple[int, ...],
    domain: tuple[int, ...],
    platform: PlatformSpec,
    threads: int | None = None,
) -> float:
    """Kernel-time multiplier (>= 1) of running ``domain`` with
    ``shape``-sized workgroups on ``threads`` CPU workers.

    The last tuple element is the contiguous dimension, matching the
    paper's "workgroup size in the contiguous dimension" phrasing.
    """
    if len(shape) != len(domain):
        raise ValueError("shape/domain dimensionality mismatch")
    if any(s < 1 for s in shape) or any(d < 1 for d in domain):
        raise ValueError("extents must be positive")
    if threads is None:
        threads = platform.cores_per_numa
    # --- prefetcher streaming ------------------------------------------
    contig = min(shape[-1], domain[-1])
    ramp = min(1.0, contig / PREFETCH_RAMP)
    stream_eff = 1.0 / (1.0 + PREFETCH_PENALTY * (1.0 - ramp))

    # --- balance over threads -------------------------------------------
    ngroups = 1
    for s, d in zip(shape, domain):
        ngroups *= math.ceil(d / s)
    waves = math.ceil(ngroups / threads)
    utilization = ngroups / (waves * threads)

    # --- ragged tiling: groups sticking out of the domain do no work ----
    padded = 1
    for s, d in zip(shape, domain):
        padded *= math.ceil(d / s) * s
    coverage = (1.0 * _prod(domain)) / padded

    # --- per-group scheduling cost ----------------------------------------
    points = _prod(domain)
    sched = 1.0 + SCHED_COST_POINTS * ngroups / points

    return sched / (stream_eff * utilization * coverage)


def _prod(t):
    p = 1
    for x in t:
        p *= x
    return p


def flat_heuristic(
    domain: tuple[int, ...], platform: PlatformSpec, threads: int | None = None
) -> WorkgroupChoice:
    """The runtime's per-kernel choice: full contiguous rows, then grow
    the outer dimensions until there is about one group per thread wave
    — a good but not exhaustively optimal shape ("the runtime does a
    very good job at picking good workgroup sizes", Sec. 5.1)."""
    if threads is None:
        threads = platform.cores_per_numa
    shape = [1] * len(domain)
    shape[-1] = domain[-1]
    # Grow the second-fastest dimension to coarsen granularity slightly.
    if len(domain) >= 2:
        outer_points = _prod(domain[:-1])
        target_groups = threads * 8  # ~8 groups per thread for balance
        grow = max(1, outer_points // target_groups)
        shape[-2] = min(domain[-2], max(1, int(round(grow ** (1 / max(1, len(domain) - 1))))))
    t = tuple(shape)
    return WorkgroupChoice(t, workgroup_time_factor(t, domain, platform, threads))


def exhaustive_search(
    domain: tuple[int, ...],
    platform: PlatformSpec,
    threads: int | None = None,
    candidates: tuple[int, ...] = (1, 2, 4, 8, 16, 32, 64, 128, 160, 256, 320),
) -> WorkgroupChoice:
    """The paper's tuning experiment: try every candidate shape and keep
    the fastest (returns the best :class:`WorkgroupChoice`)."""
    best: WorkgroupChoice | None = None
    dims = len(domain)
    for shape in itertools.product(candidates, repeat=dims):
        if any(s > d for s, d in zip(shape, domain)):
            continue
        f = workgroup_time_factor(shape, domain, platform, threads)
        if best is None or f < best.factor:
            best = WorkgroupChoice(shape, f)
    if best is None:
        raise ValueError("no candidate shape fits the domain")
    return best
