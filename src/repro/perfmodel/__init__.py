"""Analytic performance model: roofline + latency + configuration effects.

Turns (kernel byte/flop counts measured from the real numpy kernels,
platform model, run configuration) into simulated runtimes:

- :class:`~repro.perfmodel.kernelmodel.LoopSpec` /
  :class:`~repro.perfmodel.kernelmodel.AppSpec` — model inputs;
- :func:`~repro.perfmodel.roofline.loop_time` /
  :func:`~repro.perfmodel.roofline.estimate_app` — the estimator;
- :mod:`~repro.perfmodel.configmodel` — compiler/ZMM/HT/runtime effects;
- :mod:`~repro.perfmodel.commmodel` — halo-exchange and collective costs;
- :mod:`~repro.perfmodel.calibration` — every tunable constant, with the
  mechanism and paper statement that justifies it.

Layer role (docs/ARCHITECTURE.md): converts the DSLs' measured
profiles plus a machine model and run configuration into the
AppEstimate every figure, sweep and trace consumes.
"""

from .analysis import (
    RooflinePoint,
    bottleneck_summary,
    render_roofline,
    roofline_points,
)
from .commmodel import (
    CommEstimate,
    cluster_comm,
    estimate_comm,
    structured_comm,
    unstructured_comm,
)
from .configmodel import (
    app_memory_bandwidth,
    bandwidth_multiplier,
    kernel_concurrency,
    effective_flops,
    gather_throughput,
    kernel_vectorizes,
    loop_overhead,
    sycl_time_multiplier,
    traffic_multiplier,
    vector_width_used,
)
from .kernelmodel import AppClass, AppSpec, LoopSpec, stencil_traffic_factor
from .roofline import AppEstimate, LoopTime, estimate_app, loop_time
from .scaling import (
    ClusterScalingPoint,
    ScalingPoint,
    cluster_strong_scaling,
    cluster_weak_scaling,
    comm_share_curve,
    strong_scaling,
)

__all__ = [
    "AppClass",
    "LoopSpec",
    "AppSpec",
    "stencil_traffic_factor",
    "LoopTime",
    "AppEstimate",
    "loop_time",
    "estimate_app",
    "CommEstimate",
    "estimate_comm",
    "structured_comm",
    "unstructured_comm",
    "cluster_comm",
    "vector_width_used",
    "kernel_vectorizes",
    "effective_flops",
    "bandwidth_multiplier",
    "app_memory_bandwidth",
    "kernel_concurrency",
    "traffic_multiplier",
    "loop_overhead",
    "sycl_time_multiplier",
    "gather_throughput",
    "RooflinePoint",
    "roofline_points",
    "render_roofline",
    "bottleneck_summary",
    "ScalingPoint",
    "strong_scaling",
    "comm_share_curve",
    "ClusterScalingPoint",
    "cluster_strong_scaling",
    "cluster_weak_scaling",
]
