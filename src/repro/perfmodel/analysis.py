"""Roofline analysis and text visualization.

The paper's whole argument is a roofline story: the Xeon MAX's machine
balance drops to 9.4 flop/byte, so codes that were bandwidth-bound
elsewhere move toward the compute/latency region.  This module extracts
per-loop roofline coordinates from an application estimate and renders a
terminal roofline chart:

    from repro.harness import app_spec
    from repro.perfmodel.analysis import roofline_points, render_roofline
    pts = roofline_points(app_spec("cloverleaf2d"), XEON_MAX_9480, cfg)
    print(render_roofline(pts, XEON_MAX_9480))
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..machine.config import RunConfig
from ..machine.spec import PlatformSpec
from .kernelmodel import AppSpec
from .roofline import estimate_app

__all__ = ["RooflinePoint", "roofline_points", "render_roofline", "bottleneck_summary"]


@dataclass(frozen=True)
class RooflinePoint:
    """One kernel's position on the roofline."""

    name: str
    intensity: float  # flops / byte (counted)
    gflops: float  # achieved GFLOP/s
    bottleneck: str  # bandwidth | compute | latency
    time_share: float  # fraction of kernel time


def roofline_points(
    app: AppSpec, platform: PlatformSpec, config: RunConfig
) -> list[RooflinePoint]:
    """Per-loop (intensity, achieved GFLOP/s) under the model, weighted
    with each loop's share of total kernel time."""
    est = estimate_app(app, platform, config)
    total = sum(lt.time for lt in est.per_loop)
    out = []
    for lt in est.per_loop:
        if lt.counted_bytes <= 0 or lt.time <= 0:
            continue
        ai = lt.flops / lt.counted_bytes if lt.counted_bytes else 0.0
        gf = lt.flops / lt.time / 1e9 if lt.flops else 0.0
        out.append(RooflinePoint(lt.name, ai, gf, lt.bottleneck, lt.time / total))
    return out


def bottleneck_summary(points: list[RooflinePoint]) -> dict[str, float]:
    """Time-weighted share of each bottleneck class."""
    shares: dict[str, float] = {}
    for p in points:
        shares[p.bottleneck] = shares.get(p.bottleneck, 0.0) + p.time_share
    return shares


def render_roofline(
    points: list[RooflinePoint],
    platform: PlatformSpec,
    width: int = 64,
    height: int = 16,
    dtype_bytes: int = 8,
) -> str:
    """ASCII roofline: the bandwidth slope, the compute ceiling, and the
    kernels (marked by their time-share magnitude: '.', 'o', 'O')."""
    if not points:
        raise ValueError("no points to render")
    bw = platform.stream_bandwidth
    peak = platform.peak_flops(dtype_bytes)
    ridge = peak / bw

    ai_vals = [p.intensity for p in points if p.intensity > 0]
    x_min = min(min(ai_vals, default=0.01), 0.01)
    x_max = max(max(ai_vals, default=ridge), ridge * 4)
    y_max = peak / 1e9 * 1.2
    y_min = y_max / 10**4

    def xpix(ai):
        return int((math.log10(ai) - math.log10(x_min))
                   / (math.log10(x_max) - math.log10(x_min)) * (width - 1))

    def ypix(gf):
        gf = max(gf, y_min)
        return int((math.log10(gf) - math.log10(y_min))
                   / (math.log10(y_max) - math.log10(y_min)) * (height - 1))

    grid = [[" "] * width for _ in range(height)]
    # Roof: min(bw * ai, peak).
    for px in range(width):
        ai = 10 ** (math.log10(x_min) + px / (width - 1)
                    * (math.log10(x_max) - math.log10(x_min)))
        roof = min(bw * ai, peak) / 1e9
        py = ypix(roof)
        grid[height - 1 - py][px] = "_" if roof >= peak / 1e9 * 0.999 else "/"
    # Kernels.
    for p in points:
        if p.intensity <= 0:
            continue
        mark = "O" if p.time_share > 0.25 else ("o" if p.time_share > 0.05 else ".")
        px = min(max(xpix(p.intensity), 0), width - 1)
        py = min(max(ypix(p.gflops), 0), height - 1)
        grid[height - 1 - py][px] = mark

    lines = [f"roofline: {platform.name}  "
             f"(peak {peak / 1e12:.1f} TFLOPS, STREAM {bw / 1e9:.0f} GB/s, "
             f"ridge {ridge:.1f} flop/B)"]
    lines.extend("|" + "".join(row) for row in grid)
    lines.append("+" + "-" * width)
    lines.append(f" intensity {x_min:.3g} .. {x_max:.3g} flop/byte (log); "
                 "marks: O >25% of kernel time, o >5%, . otherwise")
    return "\n".join(lines)
