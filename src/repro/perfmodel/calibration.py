"""Calibration constants of the performance model, with justifications.

Policy (DESIGN.md §1): platform numbers come from the paper's Section 2 /
spec sheets and live in :mod:`repro.machine.platforms`.  The constants here
describe *software* mechanisms — runtime overheads, vectorization success,
protocol costs — that the paper names qualitatively; each is set to a
value in the range published for the software stack in question, and each
entry documents the mechanism and the paper statement it supports.  None
of them encodes a figure's result directly; the figure shapes must emerge
from the interaction of these mechanisms with the machine models.
"""

from __future__ import annotations

import contextlib

__all__ = [
    "override",
    "BOTTLENECK_PNORM",
    "LOOP_OVERHEAD_MPI",
    "OMP_FORK_BASE",
    "OMP_BARRIER_PER_THREAD",
    "SYCL_LAUNCH_OVERHEAD",
    "CUDA_LAUNCH_OVERHEAD",
    "SYCL_NDRANGE_EXTRA",
    "HT_CONCURRENCY_BOOST",
    "HT_BANDWIDTH_PENALTY",
    "HT_COMPUTE_PENALTY",
    "HT_OMP_SCHED_PENALTY",
    "SCALAR_ILP_FLOPS_FRACTION",
    "VEC_PACK_OVERHEAD_512",
    "VEC_PACK_OVERHEAD_256",
    "UNSTRUCT_OMP_LOCALITY_LOSS",
    "UNSTRUCT_GATHER_MLP",
    "GPU_BW_EFFICIENCY",
    "GPU_SMT_LATENCY_FACTOR",
    "MPI_RANK_IMBALANCE",
    "EAGER_LIMIT_BYTES",
]

#: Exponent of the p-norm that blends the bandwidth / compute / latency
#: bottleneck times of a kernel: t = (t_bw^p + t_fl^p + t_lat^p)^(1/p).
#: p -> infinity is the hard roofline max(); finite p models the imperfect
#: overlap observed in practice (a kernel at the roofline ridge achieves
#: ~84% of either bound for p=4, consistent with measured STREAM-vs-peak
#: behaviour of real stencil codes).
BOTTLENECK_PNORM = 4.0

#: Per-parallel-loop startup cost for pure-MPI execution (a function call
#: and loop setup; no thread coordination).
LOOP_OVERHEAD_MPI = 0.4e-6

#: OpenMP parallel-for fork/join base cost (icx's libiomp, measured by
#: EPCC-style microbenchmarks at 1-2 us)...
OMP_FORK_BASE = 1.5e-6

#: ...plus a per-thread term for the barrier tree.  28 threads/NUMA on the
#: Xeon MAX with HT adds ~2 us over 14 threads — the mechanism behind
#: "Hyperthreading disabled leads to marginally (2%) better performance
#: with the MPI+OpenMP codes" (Sec. 5).
OMP_BARRIER_PER_THREAD = 0.07e-6

#: SYCL kernel submission through the OpenCL CPU driver.  The paper:
#: "MPI+SYCL at this point does not match the performance of MPI+OpenMP
#: due to the higher scheduling overheads (having to go through the OpenCL
#: drivers): this is more pronounced on CloverLeaf 2D/3D due to the higher
#: number of small boundary kernels" (Sec. 5.1).
SYCL_LAUNCH_OVERHEAD = 13.0e-6

#: CUDA kernel launch latency on an A100 (PCIe).
CUDA_LAUNCH_OVERHEAD = 5.0e-6

#: The user-specified-workgroup "ndrange" SYCL variant uses one workgroup
#: shape for all kernels of an application; relative to the runtime-chosen
#: "flat" sizes this costs a small granularity/prefetch mismatch on most
#: kernels (Sec. 5.1: a hand-tuned per-kernel shape was only 2% faster
#: than flat; one app-wide shape is slightly worse than flat on average).
SYCL_NDRANGE_EXTRA = 0.02

#: SMT-2 raises the number of outstanding misses a core sustains; for
#: latency-bound indirect (gather) access this converts to throughput.
#: "Hyperthreading enabled also improves performance by 13% on average"
#: for the unstructured apps (Sec. 5).
HT_CONCURRENCY_BOOST = 1.45

#: For bandwidth-saturated streaming kernels a second thread per core only
#: adds contention; a ~1% penalty reproduces the "within 3%" HT spread the
#: paper reports for structured codes under pure MPI.
HT_BANDWIDTH_PENALTY = 0.99

#: For fully pipelined compute-bound kernels (miniBUDE) one thread per
#: core saturates the FMA pipes; the second thread thrashes L1/uop cache:
#: "HT enabled reduces performance by 28%" (Sec. 5).
HT_COMPUTE_PENALTY = 0.72

#: MPI+OpenMP with HT doubles the threads the runtime must fork/join and
#: schedule over the same cores; beyond the barrier term this costs a
#: little scheduling efficiency on memory-bound loops.
HT_OMP_SCHED_PENALTY = 0.995

#: Scalar (non-vectorized) code still extracts instruction-level
#: parallelism, but branchy flux kernels with gathers sustain well under
#: one FMA per pipe per cycle — this is most of why the explicitly
#: vectorized "MPI vec" unstructured variants win by ~66% (Sec. 5).
SCALAR_ILP_FLOPS_FRACTION = 0.5

#: Vector gather/scatter instructions keep more loads in flight than the
#: scalar dependent-load chains they replace: MLP multiplier for
#: vectorized irregular kernels (the other half of the "MPI vec" win).
VEC_GATHER_MLP_BOOST = 1.4

#: "MPI vec" generates explicitly vectorized unstructured kernels whose
#: "overhead of packing and unpacking vector registers" (Sec. 6) shows up
#: as extra data movement; wider registers pack more.  The EPYC's AVX2
#: "overhead is smaller" (Sec. 6).
VEC_PACK_OVERHEAD_512 = 1.18
VEC_PACK_OVERHEAD_256 = 1.08

#: OpenMP colored execution of unstructured loops destroys spatial
#: locality between consecutively executed elements ("pure MPI variants
#: are still on average faster than MPI+OpenMP due to the further loss in
#: data locality", Sec. 5) — effective bandwidth multiplier.
UNSTRUCT_OMP_LOCALITY_LOSS = 0.78

#: Memory-level parallelism per core for irregular gathers: sustained
#: outstanding misses an indirect CFD kernel keeps in flight (dependent
#: address chains and branchy flux code leave most fill buffers idle).
UNSTRUCT_GATHER_MLP = 6.5

#: Fraction of its STREAM bandwidth a GPU achieves on real stencil
#: kernels — higher than CPUs thanks to massive SMT: "better bandwidth
#: utilization (thanks to the massive SMT capabilities of GPUs), and no
#: MPI communications overheads" (Sec. 6).
GPU_BW_EFFICIENCY = 0.93

#: GPUs hide irregular-access latency with warp oversubscription; the
#: effective concurrency multiplier vs. a CPU core's MLP.
GPU_SMT_LATENCY_FACTOR = 12.0

#: Load imbalance between ranks of a block-decomposed mesh (surface
#: effects, OS noise, stragglers): grows with the rank count, so pure MPI
#: (112-224 ranks) pays more than MPI+OpenMP (8 ranks) — one half of why
#: the hybrid wins on structured meshes (fewer, larger messages is the
#: other).  Imbalance fraction = this coefficient x log2(nranks).
IMBALANCE_PER_LOG2_RANKS = 0.006

#: Messages at or below this size use the eager protocol (no rendezvous
#: handshake) in Intel MPI's shared-memory transport.
EAGER_LIMIT_BYTES = 16384

# ---------------------------------------------------------------------------
# Concurrency-limited application bandwidth (the Figure 8 mechanism).
#
# A core sustains at most C cache lines in flight; its memory throughput is
# C * 64 B / memory_latency.  Saturating the Xeon MAX's HBM needs ~13 GB/s
# from every core (26+ lines at 130 ns), while the DDR systems need only
# 3-4 GB/s — so kernel complexity that reduces per-core concurrency
# (many concurrent array streams dilute the prefetchers; wide stencils
# thrash L2) starves HBM long before it hurts DDR.  This is the published
# explanation of the platform's sub-peak behaviour (McCalpin, ISC'23 IXPUG
# — the paper's own reference [12]) and produces Figure 8's contrast:
# 41-75% of STREAM on the Xeon MAX vs 75-96% on the DDR platforms.
# ---------------------------------------------------------------------------

#: In-flight lines per core for a simple unit-stride streaming kernel with
#: hardware prefetch (L2 stream prefetchers cover ~2 pages ahead) in an
#: application context (TLB walks and short inner loops included).
MEM_CONCURRENCY_BASE = 22.0

#: Concurrency dilution per *squared* stencil radius: wide stencils spend
#: fill buffers on neighbour planes and conflict in L2 superlinearly (a
#: radius-4 FD kernel sustains a third of a radius-1 kernel's in-flight
#: misses) — this is what pins the 8th-order Acoustic solver at ~41% of
#: STREAM on the Xeon MAX (Figure 8) while radius-1 CloverLeaf kernels
#: stay near 75%.
CONCURRENCY_RADIUS_DILUTION = 0.08

#: Reference number of concurrent array streams a core's prefetchers
#: track at full efficiency; beyond it, concurrency per stream drops
#: (SPR has 16 L2 stream prefetch trackers shared across hyperthreads;
#: real multi-field kernels with read+write streams exceed them quickly).
CONCURRENCY_STREAMS_REF = 4.0

#: Exponent of the stream-dilution law.
CONCURRENCY_STREAMS_EXP = 0.45

#: SMT-2 lets the second thread contribute additional outstanding misses
#: for bandwidth (smaller than the latency-hiding gather boost).
CONCURRENCY_HT_BOOST = 1.08

#: Fraction of its STREAM bandwidth a CPU achieves on real application
#: kernels even without a concurrency limit — boundary loops, TLB misses,
#: and non-streaming stores that the tuned benchmark avoids.  Matches the
#: 75-85% (8360Y) / 79-96% (EPYC) Figure 8 ranges where concurrency is
#: not binding.
APP_STREAM_DERATE = 0.82

#: Fraction of a cache level's capacity usable by an application's reuse
#: footprint before streaming evictions dominate (conflict misses, other
#: ranks' data, victim-cache behaviour).  Residency decisions compare the
#: *whole application state* (the reuse distance of a loop chain) against
#: capacity x this factor — which is why the EPYC's 1.5 GB V-cache does
#: not turn multi-hundred-MB working sets cache-resident in practice.
CACHE_UTILIZATION = 0.4

#: Default fraction of irregular (gather) accesses that hit on-chip
#: caches on a bandwidth-minimizing renumbered mesh (consecutive edges
#: share nodes); the remainder pays full memory latency.  Apps override
#: per mesh: 2-D triangulations renumber better than 3-D multigrid
#: hierarchies (AppSpec.gather_hit).
GATHER_CACHE_HIT_RATE = 0.35

#: Actual memory traffic per counted byte (write-allocate RFOs, TLB
#: walks): scales the reuse-distance estimate used for residency.
REUSE_TRAFFIC_FACTOR = 1.3

#: Gather hit rate when the gathered field itself fits the LLC — the
#: EPYC's V-cache "significantly improved" MG-CFD's locality (Sec. 6),
#: which is why its speedup vs the Xeon MAX is the smallest.
GATHER_LLC_HIT = 0.85

#: Compute-kernel sensitivity to SIMD width: halving the vector width
#: does not halve throughput — non-FMA work (sqrt, compares, shuffles)
#: and dependency chains are width-insensitive.  Relative throughput =
#: (width_used / full_width) ** this exponent; 0.54 reproduces
#: miniBUDE's "+45% from ZMM high" (Sec. 5) and the small 4-6% ZMM
#: effect on Acoustic/OpenSBLI SN.
VECTOR_WIDTH_EXPONENT = 0.54

#: Achieved fraction of peak FMA throughput per application class: real
#: kernels mix adds, compares, sqrt/div and shuffles with FMAs.  The
#: COMPUTE value reproduces miniBUDE's 6 TFLOPS/s out of the 18.6 FP32
#: peak (Sec. 5); stencil kernels sustain a higher FMA fraction.
FLOP_MIX = {
    "structured-bandwidth": 0.60,
    "structured-compute": 0.60,
    "unstructured": 0.45,
    "compute": 0.33,
}


@contextlib.contextmanager
def override(**values):
    """Temporarily override calibration constants (ablation studies).

    ::

        with calibration.override(MEM_CONCURRENCY_BASE=1e9):
            ...  # concurrency ceiling effectively disabled

    The constants are read at call time throughout the model, so the
    override takes effect immediately and is restored on exit.
    """
    saved = {}
    g = globals()
    for key, val in values.items():
        if key not in g:
            raise KeyError(f"unknown calibration constant {key!r}")
        saved[key] = g[key]
        g[key] = val
    try:
        yield
    finally:
        g.update(saved)
