"""Per-iteration MPI communication cost for a decomposed application.

Structured meshes use the exact Cartesian decomposition: the rank grid,
per-rank subdomain, face areas, and the placement-derived latency class of
every neighbor pair (adjacent ranks along the fastest-varying grid
dimension sit on neighboring cores; the slowest dimension crosses sockets).
Unstructured meshes use the partition surface law measured from the real
partitioner at small scale and extrapolated with the (d-1)/d surface
exponent.

The result feeds Figure 7 (fraction of runtime in MPI) and the
parallelization comparisons (pure MPI sends more, smaller messages than
MPI+OpenMP; "the MPI+OpenMP implementation has significantly lower MPI
overhead ... given that fewer messages are being sent and the overall
communications volume is smaller as well", Sec. 6).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from ..machine.config import Parallelization, RunConfig
from ..machine.spec import DeviceKind, PlatformSpec
from ..machine.topology import ClusterSpec, NetworkSpec
from ..simmpi.cart import CartGrid, dims_create, neighbor_table
from ..simmpi.clock import (
    ClusterCostModel,
    MachineCostModel,
    cluster_placement,
    default_placement,
)
from . import calibration as cal
from .kernelmodel import AppSpec

__all__ = [
    "CommEstimate",
    "estimate_comm",
    "structured_comm",
    "unstructured_comm",
    "cluster_comm",
]


@dataclass(frozen=True)
class CommEstimate:
    """Per-iteration, per-rank (critical path) communication profile.

    ``overhead_per_iter`` is the latency-bound share of the time —
    rendezvous handshakes plus per-message software cost, from the
    simmpi :meth:`~repro.simmpi.clock.CostModel.transfer_breakdown`
    accounting; ``collective_per_iter`` the reduction/collective share.
    The wire (serialization) share is the remainder
    ``time_per_iter - overhead_per_iter - collective_per_iter`` — the
    split ``repro.obs.attribution`` turns into MPI leaf nodes.
    """

    time_per_iter: float
    messages_per_iter: float
    volume_per_iter: float  # bytes sent by the busiest rank per iteration
    overhead_per_iter: float = 0.0
    collective_per_iter: float = 0.0
    #: Serialization seconds spent on messages that cross the cluster
    #: network (zero for single-node estimates) — a subset of
    #: :attr:`wire_per_iter` that attribution reports as its own leaf.
    internode_wire_per_iter: float = 0.0

    @property
    def wire_per_iter(self) -> float:
        """Size-dependent serialization seconds per iteration."""
        return max(
            self.time_per_iter - self.overhead_per_iter
            - self.collective_per_iter,
            0.0,
        )

    @staticmethod
    def zero() -> "CommEstimate":
        return CommEstimate(0.0, 0.0, 0.0)


def estimate_comm(
    app: AppSpec,
    platform: PlatformSpec,
    config: RunConfig,
    nodes: int = 1,
    network: NetworkSpec | None = None,
) -> CommEstimate:
    """Dispatch on mesh type; GPUs (single device) communicate nothing.

    ``nodes > 1`` prices the same decomposition spread over a
    ``nodes``-node cluster of ``platform`` (``config.ranks`` per node)
    joined by ``network`` — the Fig 7x scaling-study regime.
    """
    if nodes < 1:
        raise ValueError(f"nodes must be >= 1, got {nodes}")
    if platform.kind is DeviceKind.GPU or config.parallelization is Parallelization.CUDA:
        return CommEstimate.zero()
    if nodes > 1:
        cluster = ClusterSpec(platform, nodes, network or NetworkSpec())
        return cluster_comm(
            app, cluster, config.ranks(platform) * nodes, config.hyperthreading
        )
    if config.ranks(platform) <= 1:
        return CommEstimate.zero()
    if app.klass.is_structured or app.klass.value == "compute":
        return structured_comm(app, platform, config)
    return unstructured_comm(app, platform, config)


def _cost_model(platform: PlatformSpec, config: RunConfig, nranks: int) -> MachineCostModel:
    placement = default_placement(platform, nranks, config.hyperthreading)
    return MachineCostModel(platform, placement, sharing_ranks=nranks)


def structured_comm(app: AppSpec, platform: PlatformSpec, config: RunConfig) -> CommEstimate:
    """Exact halo-exchange cost of the Cartesian decomposition."""
    nranks = config.ranks(platform)
    dims = dims_create(nranks, app.ndims)
    grid = CartGrid(dims)
    cm = _cost_model(platform, config, nranks)

    # Per-rank subdomain extents (use the average block).
    local = [app.domain[d] / dims[d] for d in range(app.ndims)]

    # A representative interior rank: the middle of the grid — it has the
    # full complement of neighbors (boundary ranks have fewer; the
    # interior ranks are the critical path).
    mid = grid.rank(tuple(d // 2 for d in dims))

    t = 0.0
    msgs = 0.0
    vol = 0.0
    ovh = 0.0
    for dim in range(app.ndims):
        if dims[dim] == 1:
            continue
        # Face area = product of the other local extents.
        face = 1.0
        for o in range(app.ndims):
            if o != dim:
                face *= local[o]
        nbytes = face * app.halo_depth * app.fields_exchanged * app.dtype_bytes
        for disp in (-1, 1):
            nbr = grid.neighbor(mid, dim, disp)
            if nbr is None:
                continue
            t += cm.transfer_time(mid, nbr, int(nbytes)) + 2 * cm.message_overhead(mid, nbr)
            ovh += (cm.transfer_breakdown(mid, nbr, int(nbytes))[0]
                    + 2 * cm.message_overhead(mid, nbr))
            msgs += 1
            vol += nbytes
    t *= app.exchanges_per_iter
    msgs *= app.exchanges_per_iter
    vol *= app.exchanges_per_iter
    ovh *= app.exchanges_per_iter
    coll = 0.0
    if app.reductions_per_iter:
        coll = app.reductions_per_iter * cm.collective_time(nranks, app.dtype_bytes)
        t += coll
    return CommEstimate(t, msgs, vol, ovh, coll)


def unstructured_comm(app: AppSpec, platform: PlatformSpec, config: RunConfig) -> CommEstimate:
    """Owner-compute halo exchange over a graph partition.

    Halo size per rank follows the partition surface law: for an
    unstructured mesh in d dimensions, a balanced partition's cut surface
    scales as (N/R)^((d-1)/d).  The per-rank neighbor count is the
    app-declared average (measured from the real partitioner).
    """
    nranks = config.ranks(platform)
    cells_per_rank = app.gridpoints / nranks
    d = 3 if app.ndims == 1 else min(app.ndims, 3)  # mesh dimensionality
    # Surface coefficient ~6 faces' worth for a compact 3-D block, ~4 for 2-D.
    coeff = 6.0 if d == 3 else 4.0
    halo_points = coeff * cells_per_rank ** ((d - 1) / d)
    nbytes_total = halo_points * app.fields_exchanged * app.dtype_bytes
    neighbors = min(app.mesh_neighbors, nranks - 1)
    per_msg = nbytes_total / max(neighbors, 1.0)

    cm = _cost_model(platform, config, nranks)
    # Neighbor ranks of a graph partition are scattered: approximate the
    # latency mix with one near, one cross-NUMA and the rest cross-socket
    # in proportion to machine shape.
    mid = nranks // 2
    t = 0.0
    ovh = 0.0
    for k in range(int(round(neighbors))):
        other = (mid + 1 + k * max(1, nranks // max(int(neighbors), 1))) % nranks
        if other == mid:
            other = (mid + 1) % nranks
        t += cm.transfer_time(mid, other, int(per_msg)) + 2 * cm.message_overhead(mid, other)
        ovh += (cm.transfer_breakdown(mid, other, int(per_msg))[0]
                + 2 * cm.message_overhead(mid, other))
    t *= app.exchanges_per_iter
    ovh *= app.exchanges_per_iter
    coll = 0.0
    if app.reductions_per_iter:
        coll = app.reductions_per_iter * cm.collective_time(nranks, app.dtype_bytes)
        t += coll
    return CommEstimate(
        t,
        neighbors * app.exchanges_per_iter,
        nbytes_total * app.exchanges_per_iter,
        ovh,
        coll,
    )


def cluster_comm(
    app: AppSpec, cluster: ClusterSpec, nranks: int, hyperthreading: bool = False
) -> CommEstimate:
    """Per-iteration communication cost of ``nranks`` ranks spread over a
    multi-node cluster (1k–10k rank strong/weak-scaling regime).

    Same decomposition logic as the single-node estimators, but messages
    are priced with :class:`~repro.simmpi.clock.ClusterCostModel`, the
    critical-path rank is one with the most *inter-node* neighbors, NIC
    bandwidth is shared among the node's boundary ranks, and the wire
    seconds of network-crossing messages are reported separately in
    :attr:`CommEstimate.internode_wire_per_iter`.
    """
    if nranks <= 1:
        return CommEstimate.zero()
    if app.klass.is_structured or app.klass.value == "compute":
        return _cluster_structured(app, cluster, nranks, hyperthreading)
    return _cluster_unstructured(app, cluster, nranks, hyperthreading)


def _cluster_structured(
    app: AppSpec, cluster: ClusterSpec, nranks: int, hyperthreading: bool
) -> CommEstimate:
    dims = dims_create(nranks, app.ndims)
    grid = CartGrid(dims)
    placement = cluster_placement(cluster, nranks, hyperthreading)
    node_of = np.asarray(placement, dtype=np.int64) // cluster.platform.total_threads

    # Sparse neighbor graph (O(nranks * ndims)): per-rank count of
    # network-crossing face neighbors, and whether the rank is interior.
    cross = np.zeros(nranks, dtype=np.int64)
    interior = np.ones(nranks, dtype=bool)
    for nbr in neighbor_table(grid).values():
        valid = nbr >= 0
        interior &= valid
        cross += valid & (node_of[np.where(valid, nbr, 0)] != node_of)

    # Every boundary rank of a node block drives the NIC at once.
    boundary_per_node = np.bincount(
        node_of[cross > 0], minlength=cluster.nodes
    )
    nic_sharing = int(max(1, boundary_per_node.max(initial=0)))
    per_node_ranks = -(-nranks // cluster.nodes)
    cm = ClusterCostModel(
        cluster,
        placement,
        nic_sharing=nic_sharing,
        sharing_ranks=per_node_ranks,
    )

    # Critical path: an interior rank with the most inter-node neighbors
    # (2*cross + interior picks interior on ties; argmax → lowest id).
    rep = int(np.argmax(2 * cross + interior))

    local = [app.domain[d] / dims[d] for d in range(app.ndims)]
    t = msgs = vol = ovh = inter = 0.0
    for dim in range(app.ndims):
        if dims[dim] == 1:
            continue
        face = 1.0
        for o in range(app.ndims):
            if o != dim:
                face *= local[o]
        nbytes = face * app.halo_depth * app.fields_exchanged * app.dtype_bytes
        for disp in (-1, 1):
            nbr = grid.neighbor(rep, dim, disp)
            if nbr is None:
                continue
            handshake, wire = cm.transfer_breakdown(rep, nbr, int(nbytes))
            t += handshake + wire + 2 * cm.message_overhead(rep, nbr)
            ovh += handshake + 2 * cm.message_overhead(rep, nbr)
            if cm.is_internode(rep, nbr):
                inter += wire
            msgs += 1
            vol += nbytes
    t *= app.exchanges_per_iter
    msgs *= app.exchanges_per_iter
    vol *= app.exchanges_per_iter
    ovh *= app.exchanges_per_iter
    inter *= app.exchanges_per_iter
    coll = 0.0
    if app.reductions_per_iter:
        coll = app.reductions_per_iter * cm.collective_time(nranks, app.dtype_bytes)
        t += coll
    return CommEstimate(t, msgs, vol, ovh, coll, inter)


def _cluster_unstructured(
    app: AppSpec, cluster: ClusterSpec, nranks: int, hyperthreading: bool
) -> CommEstimate:
    cells_per_rank = app.gridpoints / nranks
    d = 3 if app.ndims == 1 else min(app.ndims, 3)
    coeff = 6.0 if d == 3 else 4.0
    halo_points = coeff * cells_per_rank ** ((d - 1) / d)
    nbytes_total = halo_points * app.fields_exchanged * app.dtype_bytes
    neighbors = min(app.mesh_neighbors, nranks - 1)
    per_msg = nbytes_total / max(neighbors, 1.0)

    per_node_ranks = -(-nranks // cluster.nodes)
    cm = ClusterCostModel(
        cluster,
        cluster_placement(cluster, nranks, hyperthreading),
        nic_sharing=per_node_ranks,
        sharing_ranks=per_node_ranks,
    )
    # Graph-partition neighbors scatter across the whole rank space (same
    # stride walk as the single-node estimator), so with node-major
    # placement most of them land off-node — the pessimistic end a real
    # partitioner's locality would improve on.
    mid = nranks // 2
    t = ovh = inter = 0.0
    for k in range(int(round(neighbors))):
        other = (mid + 1 + k * max(1, nranks // max(int(neighbors), 1))) % nranks
        if other == mid:
            other = (mid + 1) % nranks
        handshake, wire = cm.transfer_breakdown(mid, other, int(per_msg))
        t += handshake + wire + 2 * cm.message_overhead(mid, other)
        ovh += handshake + 2 * cm.message_overhead(mid, other)
        if cm.is_internode(mid, other):
            inter += wire
    t *= app.exchanges_per_iter
    ovh *= app.exchanges_per_iter
    inter *= app.exchanges_per_iter
    coll = 0.0
    if app.reductions_per_iter:
        coll = app.reductions_per_iter * cm.collective_time(nranks, app.dtype_bytes)
        t += coll
    return CommEstimate(
        t,
        neighbors * app.exchanges_per_iter,
        nbytes_total * app.exchanges_per_iter,
        ovh,
        coll,
        inter,
    )
