"""Roofline-with-latency kernel timing and whole-application estimates.

The execution time of one parallel loop combines three bottleneck terms —
memory traffic over achievable bandwidth, flops over effective compute
throughput, and irregular accesses over gather throughput — blended with
a p-norm (see :data:`~repro.perfmodel.calibration.BOTTLENECK_PNORM`),
plus the per-loop runtime overhead.  Summing loops, adding the
communication estimate and rank imbalance, and multiplying by the
iteration count yields the application estimate whose derived metrics
map directly onto the paper's figures:

- ``total_time`` → Figures 3/4/5/6/9 (runtimes, normalized or absolute);
- ``mpi_fraction`` → Figure 7;
- ``effective_bandwidth`` (counted bytes / kernel time, the same
  accounting OPS reports) → Figure 8;
- ``achieved_flops`` → the miniBUDE 6 TFLOPS figure (Sec. 5).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from ..machine.config import RunConfig
from ..machine.spec import DeviceKind, PlatformSpec
from ..mem.hierarchy import HierarchyModel, Scope
from ..obs.metrics import active_metrics
from ..obs.tracer import active_tracer
from . import calibration as cal
from .commmodel import CommEstimate, estimate_comm
from .configmodel import (
    app_memory_bandwidth,
    effective_flops,
    gather_throughput,
    loop_overhead,
    sycl_time_multiplier,
    traffic_multiplier,
)
from .kernelmodel import AppSpec, LoopSpec, stencil_traffic_factor

__all__ = ["LoopTime", "AppEstimate", "loop_time", "estimate_app"]


@dataclass(frozen=True)
class LoopTime:
    """Timing breakdown of one parallel loop (one invocation, node-wide).

    ``t_bandwidth``/``t_compute``/``t_latency`` are the raw roofline
    limb terms *before* the p-norm blend; :meth:`limb_seconds` projects
    them back onto the clock so they sum (with ``overhead``) exactly to
    ``time`` — the additive view ``repro.obs.attribution`` builds on.
    ``mem_level`` records which hierarchy level served the working set
    in the bandwidth lookup (``"memory"`` or a cache level name).
    """

    name: str
    time: float
    t_bandwidth: float
    t_compute: float
    t_latency: float
    overhead: float
    counted_bytes: float
    flops: float
    mem_level: str = "memory"

    @property
    def bottleneck(self) -> str:
        terms = {
            "bandwidth": self.t_bandwidth,
            "compute": self.t_compute,
            "latency": self.t_latency,
        }
        return max(terms, key=terms.get)

    def limb_seconds(self) -> dict[str, float]:
        """Additive attribution of ``time`` to the three roofline limbs.

        The core time (``time - overhead``) is distributed over the
        limbs in proportion to their p-norm weights ``t_i**p`` — the
        share each term contributed to the blended bottleneck.  The last
        nonzero share is computed as the remainder, so the dict's values
        plus ``overhead`` sum to ``time`` exactly (float identity, not
        just within epsilon).
        """
        core = self.time - self.overhead
        terms = {
            "bandwidth": self.t_bandwidth,
            "compute": self.t_compute,
            "latency": self.t_latency,
        }
        p = cal.BOTTLENECK_PNORM
        weights = {k: v**p for k, v in terms.items() if v > 0}
        total_w = sum(weights.values())
        out = {k: 0.0 for k in terms}
        if core <= 0 or total_w <= 0:
            return out
        keys = list(weights)
        assigned = 0.0
        for k in keys[:-1]:
            share = core * (weights[k] / total_w)
            out[k] = share
            assigned += share
        out[keys[-1]] = core - assigned
        return out


@dataclass(frozen=True)
class AppEstimate:
    """Whole-run estimate of an application on a platform/config."""

    app: str
    platform: str
    config_label: str
    total_time: float
    compute_time: float
    mpi_time: float
    per_loop: tuple[LoopTime, ...]
    counted_bytes: float
    flops: float
    comm: CommEstimate

    @property
    def mpi_fraction(self) -> float:
        return self.mpi_time / self.total_time if self.total_time else 0.0

    @property
    def effective_bandwidth(self) -> float:
        """Counted data movement / kernel time, excluding MPI — the
        quantity OPS reports and Figure 8 plots."""
        return self.counted_bytes / self.compute_time if self.compute_time else 0.0

    @property
    def achieved_flops(self) -> float:
        return self.flops / self.compute_time if self.compute_time else 0.0


def _pnorm(*terms: float, p: float = cal.BOTTLENECK_PNORM) -> float:
    s = sum(t**p for t in terms if t > 0)
    return s ** (1.0 / p) if s > 0 else 0.0


def loop_time(
    loop: LoopSpec,
    app: AppSpec,
    platform: PlatformSpec,
    config: RunConfig,
    hierarchy: HierarchyModel | None = None,
    working_set: float | None = None,
) -> LoopTime:
    """Time one invocation of one parallel loop, node-wide.

    ``working_set`` overrides the resident-set size used for the
    bandwidth lookup — the cache-blocking tiling optimization (Figure 9)
    passes its tile footprint here to price cache-resident traffic.
    """
    hm = hierarchy or HierarchyModel(platform, utilization=cal.CACHE_UTILIZATION)
    affinity = app.affinity(config.compiler)
    if affinity <= 0.0:
        raise ValueError(
            f"{app.name} does not run under {config.compiler.value} "
            "(the paper reports the generated code stalls)"
        )

    traffic = (
        loop.bytes_total
        * traffic_multiplier(platform, config, app, loop)
        * stencil_traffic_factor(
            loop, platform, loop.points / platform.total_cores, app.ndims
        )
    )
    # Residency is governed by the reuse distance: a loop re-reads its
    # fields only after the rest of the chain has streamed a whole
    # iteration's traffic (>= the application state) through the caches.
    if working_set is not None:
        ws = working_set
    else:
        ws = max(
            traffic,
            app.state_bytes,
            app.bytes_per_iteration() * cal.REUSE_TRAFFIC_FACTOR,
            1.0,
        )
    bw = app_memory_bandwidth(
        platform, config, app, loop, hm.effective_bandwidth(ws)
    )
    # Which level served the lookup — carried on the LoopTime so the
    # attribution tree can split memory seconds per hierarchy level.
    mem_level = hm.serving_level(ws)[0]
    t_bw = traffic / bw if traffic > 0 else 0.0
    if (
        loop.indirect_bytes_per_point > 0
        and platform.kind is DeviceKind.CPU
        and working_set is None
    ):
        # Gathered-field residency: when the indirect target (~4
        # components per mesh point) fits the LLC, its traffic is served
        # from cache — the EPYC V-cache's locality advantage (Sec. 6).
        gathered = app.gridpoints * 4.0 * app.dtype_bytes
        llc_cap = (
            platform.cache_capacity_total(platform.last_level_cache.name)
            * cal.CACHE_UTILIZATION
        )
        if gathered <= llc_cap:
            ind_frac = min(loop.indirect_bytes_per_point / loop.bytes_per_point, 1.0)
            cache_bw = app_memory_bandwidth(
                platform, config, app, loop, hm.effective_bandwidth(gathered)
            )
            t_bw = traffic * (1.0 - ind_frac) / bw + traffic * ind_frac / cache_bw

    flops = loop.flops_total
    t_fl = flops / effective_flops(platform, config, app, loop) if flops > 0 else 0.0

    indirect = loop.points * loop.indirect_per_point
    t_lat = (
        indirect / gather_throughput(platform, config, app, loop)
        if indirect > 0
        else 0.0
    )

    core = _pnorm(t_bw, t_fl, t_lat) * sycl_time_multiplier(config) / affinity
    ovh = loop_overhead(platform, config) * max(loop.invocations, 1.0)
    lt = LoopTime(
        loop.name, core + ovh, t_bw, t_fl, t_lat, ovh, loop.bytes_total, flops,
        mem_level=mem_level,
    )
    m = active_metrics()
    if m is not None:
        # Winning-limb tally: which roofline term set each loop's time
        # (the model-vs-measured sanity check Figure 8 rests on).
        m.inc("perfmodel_loops_total",
              limb=lt.bottleneck, platform=platform.short_name)
        m.inc("perfmodel_loop_seconds_total", lt.time,
              limb=lt.bottleneck, platform=platform.short_name)
    tracer = active_tracer()
    if tracer is not None:
        tracer.event(
            "perfmodel", loop.name, 0.0, track=("perfmodel", 0),
            t_bandwidth=t_bw, t_compute=t_fl, t_latency=t_lat,
            overhead=ovh, time=lt.time, limb=lt.bottleneck,
            traffic=traffic, bandwidth=bw,
            platform=platform.short_name, config=config.label(),
            **loop.trace_attrs(),
        )
    return lt


def estimate_app(
    app: AppSpec,
    platform: PlatformSpec,
    config: RunConfig,
    hierarchy: HierarchyModel | None = None,
) -> AppEstimate:
    """Estimate the full run of ``app`` on ``platform`` under ``config``."""
    hm = hierarchy or HierarchyModel(platform, utilization=cal.CACHE_UTILIZATION)
    loops = tuple(loop_time(l, app, platform, config, hm) for l in app.loops)
    compute_per_iter = sum(lt.time for lt in loops)
    comm = estimate_comm(app, platform, config)
    # Rank imbalance turns into MPI_Wait on the faster ranks; it grows
    # with the rank count (pure MPI pays more than one-rank-per-NUMA).
    nranks = config.ranks(platform)
    imbalance = (
        compute_per_iter * cal.IMBALANCE_PER_LOG2_RANKS * math.log2(nranks)
        if platform.kind is DeviceKind.CPU and nranks > 1
        else 0.0
    )
    mpi_per_iter = comm.time_per_iter + imbalance
    n = app.iterations
    m = active_metrics()
    if m is not None:
        m.inc("perfmodel_estimates_total",
              app=app.name, platform=platform.short_name)
    tracer = active_tracer()
    if tracer is not None:
        tracer.event(
            "perfmodel", f"estimate:{app.name}", 0.0, track=("perfmodel", 0),
            platform=platform.short_name, config=config.label(),
            compute_per_iter=compute_per_iter, mpi_per_iter=mpi_per_iter,
            comm_per_iter=comm.time_per_iter, imbalance=imbalance,
            iterations=n, loops=len(loops),
        )
    return AppEstimate(
        app=app.name,
        platform=platform.short_name,
        config_label=config.label(),
        total_time=(compute_per_iter + mpi_per_iter) * n,
        compute_time=compute_per_iter * n,
        mpi_time=mpi_per_iter * n,
        per_loop=loops,
        counted_bytes=sum(lt.counted_bytes for lt in loops) * n,
        flops=sum(lt.flops for lt in loops) * n,
        comm=comm,
    )
