"""Intra-node scaling studies: runtime vs. resources used.

The paper's configuration sweeps vary *how* the node is used (ranks vs.
threads, HT on/off); this module generalizes that into classic scaling
curves on the machine models:

- :func:`strong_scaling` — fix the problem, grow the rank count (by
  scaling a platform clone's core count), reporting time, speedup and
  parallel efficiency;
- :func:`comm_share_curve` — how the MPI fraction grows as compute
  shrinks per rank (the strong-scaling limit the Xeon MAX reaches
  earlier than DDR machines, because its kernels finish 4x sooner while
  message latencies stay put — the paper's bottleneck-shift story as a
  curve);
- :func:`cluster_strong_scaling` / :func:`cluster_weak_scaling` — the
  multi-node extension (Fig 7x): the same apps spread over 1k–10k ranks
  on clusters of identical nodes, with inter-node messages priced by a
  :class:`~repro.machine.topology.NetworkSpec` (docs/SIMMPI.md).
"""

from __future__ import annotations

import dataclasses
import math
from dataclasses import dataclass

from ..machine.config import RunConfig
from ..machine.spec import PlatformSpec
from ..machine.topology import ClusterSpec, NetworkSpec
from . import calibration as cal
from .commmodel import cluster_comm
from .kernelmodel import AppSpec
from .roofline import estimate_app

__all__ = [
    "ScalingPoint",
    "strong_scaling",
    "comm_share_curve",
    "ClusterScalingPoint",
    "cluster_strong_scaling",
    "cluster_weak_scaling",
]


@dataclass(frozen=True)
class ScalingPoint:
    """One point of a scaling curve."""

    cores: int
    time: float
    speedup: float
    efficiency: float
    mpi_fraction: float


def _clone_with_cores(platform: PlatformSpec, cores_per_socket: int) -> PlatformSpec:
    """A platform clone using only ``cores_per_socket`` cores per socket
    (memory system unchanged — cores are disabled, not removed, exactly
    like running a job on a subset of cores)."""
    if cores_per_socket < 1 or cores_per_socket > platform.cores_per_socket:
        raise ValueError("cores_per_socket out of range")
    numa = min(platform.numa_per_socket, cores_per_socket)
    while cores_per_socket % numa:
        numa -= 1
    return dataclasses.replace(
        platform,
        cores_per_socket=cores_per_socket,
        numa_per_socket=numa,
        short_name=f"{platform.short_name}-{cores_per_socket}c",
    )


def strong_scaling(
    app: AppSpec,
    platform: PlatformSpec,
    config: RunConfig,
    core_counts: list[int] | None = None,
) -> list[ScalingPoint]:
    """Fixed problem, growing core count (per socket).

    Efficiency is measured against the smallest core count evaluated.
    Bandwidth-bound apps stop scaling once the cores saturate memory —
    much earlier on DDR platforms than on the HBM part.
    """
    if core_counts is None:
        base = platform.cores_per_socket
        core_counts = sorted({max(1, base // k) for k in (8, 4, 2, 1)})
    pts: list[ScalingPoint] = []
    base_time = None
    base_cores = None
    for cps in core_counts:
        clone = _clone_with_cores(platform, cps)
        est = estimate_app(app, clone, config)
        if base_time is None:
            base_time, base_cores = est.total_time, clone.total_cores
        speedup = base_time / est.total_time
        ideal = clone.total_cores / base_cores
        pts.append(
            ScalingPoint(
                cores=clone.total_cores,
                time=est.total_time,
                speedup=speedup,
                efficiency=speedup / ideal,
                mpi_fraction=est.mpi_fraction,
            )
        )
    return pts


def comm_share_curve(
    app: AppSpec,
    platform: PlatformSpec,
    config: RunConfig,
    shrink_factors: list[float] = (1.0, 4.0, 16.0, 64.0),
) -> list[tuple[float, float]]:
    """MPI fraction as the per-rank problem shrinks (strong-scaling limit).

    Returns ``(shrink, mpi_fraction)`` pairs: shrinking the domain by a
    factor leaves message latencies fixed while compute falls, so the
    fraction rises — faster on the Xeon MAX, whose compute is already 4x
    cheaper per byte.
    """
    out = []
    for f in shrink_factors:
        if f < 1.0:
            raise ValueError("shrink factors must be >= 1")
        shrunk = dataclasses.replace(
            app,
            loops=tuple(l.scaled(1.0 / f) for l in app.loops),
            domain=tuple(max(1, int(round(d / f ** (1 / app.ndims))))
                         for d in app.domain),
            state_bytes=app.state_bytes / f,
        )
        est = estimate_app(shrunk, platform, config)
        out.append((f, est.mpi_fraction))
    return out


@dataclass(frozen=True)
class ClusterScalingPoint:
    """One point of a multi-node scaling curve."""

    nodes: int
    ranks: int
    time: float
    speedup: float
    efficiency: float
    mpi_fraction: float


def _cluster_point(
    app: AppSpec,
    platform: PlatformSpec,
    config: RunConfig,
    nodes: int,
    per_node: int,
    network: NetworkSpec | None,
    compute_per_iter: float,
) -> tuple[int, float, float]:
    """(ranks, time, mpi_fraction) for one node count, given the
    per-iteration compute share each node performs."""
    nranks = per_node * nodes
    cluster = ClusterSpec(platform, nodes, network or NetworkSpec())
    comm = cluster_comm(app, cluster, nranks, config.hyperthreading)
    imbalance = (
        compute_per_iter * cal.IMBALANCE_PER_LOG2_RANKS * math.log2(nranks)
        if nranks > 1
        else 0.0
    )
    t_iter = compute_per_iter + comm.time_per_iter + imbalance
    mpi_fraction = (comm.time_per_iter + imbalance) / t_iter if t_iter else 0.0
    return nranks, t_iter * app.iterations, mpi_fraction


def cluster_strong_scaling(
    app: AppSpec,
    platform: PlatformSpec,
    config: RunConfig,
    node_counts: tuple[int, ...] = (1, 2, 4, 8),
    network: NetworkSpec | None = None,
    ranks_per_node: int | None = None,
) -> list[ClusterScalingPoint]:
    """Fixed problem, growing node count.

    The single-node estimate supplies the compute time; spreading over
    ``nodes`` nodes divides it ideally while the halo surfaces, network
    hops and log-rank imbalance grow — the race Fig 7x plots.  Speedup
    and efficiency are measured against the smallest node count.
    """
    if not node_counts or any(n < 1 for n in node_counts):
        raise ValueError(f"node_counts must be non-empty positive ints, got {node_counts!r}")
    per_node = ranks_per_node or config.ranks(platform)
    base = estimate_app(app, platform, config)
    compute_per_iter = base.compute_time / app.iterations
    pts: list[ClusterScalingPoint] = []
    base_time = base_nodes = None
    for nodes in node_counts:
        nranks, time, frac = _cluster_point(
            app, platform, config, nodes, per_node, network,
            compute_per_iter / nodes,
        )
        if base_time is None:
            base_time, base_nodes = time, nodes
        speedup = base_time / time if time else 0.0
        ideal = nodes / base_nodes
        pts.append(
            ClusterScalingPoint(
                nodes=nodes,
                ranks=nranks,
                time=time,
                speedup=speedup,
                efficiency=speedup / ideal,
                mpi_fraction=frac,
            )
        )
    return pts


def cluster_weak_scaling(
    app: AppSpec,
    platform: PlatformSpec,
    config: RunConfig,
    node_counts: tuple[int, ...] = (1, 2, 4, 8),
    network: NetworkSpec | None = None,
    ranks_per_node: int | None = None,
) -> list[ClusterScalingPoint]:
    """Problem grows with the node count (constant work per node).

    Each dimension of the domain is stretched by ``nodes**(1/ndims)`` so
    per-rank subdomains stay fixed; efficiency is ``t(1)/t(N)`` and only
    erodes through communication and imbalance.
    """
    if not node_counts or any(n < 1 for n in node_counts):
        raise ValueError(f"node_counts must be non-empty positive ints, got {node_counts!r}")
    per_node = ranks_per_node or config.ranks(platform)
    base = estimate_app(app, platform, config)
    compute_per_iter = base.compute_time / app.iterations
    pts: list[ClusterScalingPoint] = []
    t1 = None
    for nodes in node_counts:
        grow = nodes ** (1.0 / app.ndims)
        scaled = dataclasses.replace(
            app,
            domain=tuple(max(1, int(round(d * grow))) for d in app.domain),
        )
        nranks, time, frac = _cluster_point(
            scaled, platform, config, nodes, per_node, network,
            compute_per_iter,
        )
        if t1 is None:
            t1 = time
        eff = t1 / time if time else 0.0
        pts.append(
            ClusterScalingPoint(
                nodes=nodes,
                ranks=nranks,
                time=time,
                speedup=nodes * eff,
                efficiency=eff,
                mpi_fraction=frac,
            )
        )
    return pts
