"""Intra-node scaling studies: runtime vs. resources used.

The paper's configuration sweeps vary *how* the node is used (ranks vs.
threads, HT on/off); this module generalizes that into classic scaling
curves on the machine models:

- :func:`strong_scaling` — fix the problem, grow the rank count (by
  scaling a platform clone's core count), reporting time, speedup and
  parallel efficiency;
- :func:`comm_share_curve` — how the MPI fraction grows as compute
  shrinks per rank (the strong-scaling limit the Xeon MAX reaches
  earlier than DDR machines, because its kernels finish 4x sooner while
  message latencies stay put — the paper's bottleneck-shift story as a
  curve).
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass

from ..machine.config import RunConfig
from ..machine.spec import PlatformSpec
from .kernelmodel import AppSpec
from .roofline import estimate_app

__all__ = ["ScalingPoint", "strong_scaling", "comm_share_curve"]


@dataclass(frozen=True)
class ScalingPoint:
    """One point of a scaling curve."""

    cores: int
    time: float
    speedup: float
    efficiency: float
    mpi_fraction: float


def _clone_with_cores(platform: PlatformSpec, cores_per_socket: int) -> PlatformSpec:
    """A platform clone using only ``cores_per_socket`` cores per socket
    (memory system unchanged — cores are disabled, not removed, exactly
    like running a job on a subset of cores)."""
    if cores_per_socket < 1 or cores_per_socket > platform.cores_per_socket:
        raise ValueError("cores_per_socket out of range")
    numa = min(platform.numa_per_socket, cores_per_socket)
    while cores_per_socket % numa:
        numa -= 1
    return dataclasses.replace(
        platform,
        cores_per_socket=cores_per_socket,
        numa_per_socket=numa,
        short_name=f"{platform.short_name}-{cores_per_socket}c",
    )


def strong_scaling(
    app: AppSpec,
    platform: PlatformSpec,
    config: RunConfig,
    core_counts: list[int] | None = None,
) -> list[ScalingPoint]:
    """Fixed problem, growing core count (per socket).

    Efficiency is measured against the smallest core count evaluated.
    Bandwidth-bound apps stop scaling once the cores saturate memory —
    much earlier on DDR platforms than on the HBM part.
    """
    if core_counts is None:
        base = platform.cores_per_socket
        core_counts = sorted({max(1, base // k) for k in (8, 4, 2, 1)})
    pts: list[ScalingPoint] = []
    base_time = None
    base_cores = None
    for cps in core_counts:
        clone = _clone_with_cores(platform, cps)
        est = estimate_app(app, clone, config)
        if base_time is None:
            base_time, base_cores = est.total_time, clone.total_cores
        speedup = base_time / est.total_time
        ideal = clone.total_cores / base_cores
        pts.append(
            ScalingPoint(
                cores=clone.total_cores,
                time=est.total_time,
                speedup=speedup,
                efficiency=speedup / ideal,
                mpi_fraction=est.mpi_fraction,
            )
        )
    return pts


def comm_share_curve(
    app: AppSpec,
    platform: PlatformSpec,
    config: RunConfig,
    shrink_factors: list[float] = (1.0, 4.0, 16.0, 64.0),
) -> list[tuple[float, float]]:
    """MPI fraction as the per-rank problem shrinks (strong-scaling limit).

    Returns ``(shrink, mpi_fraction)`` pairs: shrinking the domain by a
    factor leaves message latencies fixed while compute falls, so the
    fraction rises — faster on the Xeon MAX, whose compute is already 4x
    cheaper per byte.
    """
    out = []
    for f in shrink_factors:
        if f < 1.0:
            raise ValueError("shrink factors must be >= 1")
        shrunk = dataclasses.replace(
            app,
            loops=tuple(l.scaled(1.0 / f) for l in app.loops),
            domain=tuple(max(1, int(round(d / f ** (1 / app.ndims))))
                         for d in app.domain),
            state_bytes=app.state_bytes / f,
        )
        est = estimate_app(shrunk, platform, config)
        out.append((f, est.mpi_fraction))
    return out
