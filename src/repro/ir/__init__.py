"""Kernel IR: the DSL-neutral loop-description and execution-plan layer.

The paper's central method is one accounting scheme — per-loop bytes and
flops measured from DSL access descriptors — applied uniformly across
structured (OPS) and unstructured (OP2) applications.  This package is
that scheme, stated once:

- :class:`~repro.ir.access.AccessDescriptor` — one kernel argument's
  access profile (mode, width, stencil radius, gather map), with the
  canonical :class:`~repro.ir.access.Access` enum both DSLs re-export;
- :class:`~repro.ir.plan.KernelPlan` — one lowered par_loop invocation
  and all of its derived traffic arithmetic;
- :class:`~repro.ir.ledger.TrafficLedger` /
  :class:`~repro.ir.ledger.LoopTraffic` — the accumulated per-loop
  profile and its conversion to perfmodel ``LoopSpec`` inputs;
- :class:`~repro.ir.executor.InstrumentedExecutor` /
  :class:`~repro.ir.executor.ExecutionRecord` — the single instrumented
  execution path (traffic accounting, timing-model charge, tracer span
  emission) both parloop engines delegate to.

Layer role (docs/ARCHITECTURE.md): sits between the DSL execution
layers and the performance model/observability — the DSLs lower into
it, the perfmodel and tracer consume from it.  See docs/IR.md for the
lowering rules of each dialect.
"""

from .access import Access, AccessDescriptor, describe
from .executor import ExecutionRecord, InstrumentedExecutor
from .ledger import LoopTraffic, TrafficLedger
from .plan import KernelPlan

__all__ = [
    "Access",
    "AccessDescriptor",
    "describe",
    "KernelPlan",
    "LoopTraffic",
    "TrafficLedger",
    "ExecutionRecord",
    "InstrumentedExecutor",
]
