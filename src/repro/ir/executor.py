"""The shared instrumented executor both parloop engines delegate to.

Each DSL context owns one :class:`InstrumentedExecutor`.  The context
keeps what is genuinely dialect-specific — argument validation, halo
coherence, gather/scatter and the kernel call itself — and hands every
completed invocation to :meth:`InstrumentedExecutor.finish` as a lowered
:class:`~repro.ir.plan.KernelPlan`.  The executor then performs, in one
place for both DSLs:

1. **traffic accounting** — fold the plan into the context's
   :class:`~repro.ir.ledger.TrafficLedger`;
2. **timing-model charge** — build the invocation's
   :class:`~repro.perfmodel.kernelmodel.LoopSpec` and advance the
   simulated clock (the communicator's virtual clock in distributed
   mode, the serial accumulator otherwise);
3. **tracer emission** — the kernel span with the dialect's attribute
   vocabulary (``points``/``rank`` structured, ``elements``/``mode``
   unstructured) and the per-argument access strings.

Tracer resolution honours both scoping schemes: distributed contexts run
inside simmpi rank threads, which do not inherit the installing thread's
ContextVar scope — the world wires the tracer onto each rank's virtual
clock instead, and the executor prefers that wiring.  When no tracer is
installed anywhere the whole path stays allocation-free (the
``active_tracer`` module-global guard), preserving the zero-overhead
guarantee the engine tests pin down.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..obs.tracer import Tracer, active_tracer
from .ledger import TrafficLedger
from .plan import KernelPlan

__all__ = ["ExecutionRecord", "InstrumentedExecutor"]

#: Dimensionality the unstructured dialect charges kernel time at (the
#: paper's meshes are 3D volumes regardless of the index arithmetic).
_OP2_CHARGE_NDIMS = 3


@dataclass(frozen=True)
class ExecutionRecord:
    """Outcome of one instrumented invocation.

    ``nbytes`` is the invocation's traffic (what the kernel span
    carries); ``seconds`` the simulated kernel time charged to the clock
    (0.0 when the context has no timing model).
    """

    plan: KernelPlan
    nbytes: float
    seconds: float = 0.0


class InstrumentedExecutor:
    """Traffic accounting, timing charge and span emission for one context.

    ``host`` is the owning DSL context; the executor reads its ``comm``
    (None in serial mode) and ``timing`` attributes at call time, so
    contexts may wire those up after construction.
    """

    def __init__(self, host, dialect: str) -> None:
        self.host = host
        self.dialect = dialect
        self.ledger = TrafficLedger(dialect)
        #: Serial simulated clock (distributed contexts use the
        #: communicator's virtual clock instead).
        self.simulated_time = 0.0

    # ---- clocks and tracks -------------------------------------------

    @property
    def _comm(self):
        return getattr(self.host, "comm", None)

    def tracer(self) -> Tracer | None:
        """The active tracer, or None (the common, zero-overhead case).

        Distributed contexts execute in simmpi rank threads, where the
        tracer arrives wired onto the rank's virtual clock rather than
        through the ContextVar.
        """
        comm = self._comm
        if comm is not None:
            wired = getattr(comm.clock, "tracer", None)
            if wired is not None:
                return wired
        return active_tracer()

    def now(self) -> float:
        """The context's simulated clock reading."""
        comm = self._comm
        return comm.clock.now if comm is not None else self.simulated_time

    def track(self) -> tuple[str, int]:
        """The trace track: dialect domain, rank lane."""
        comm = self._comm
        return (self.dialect, comm.rank if comm is not None else 0)

    def begin(self) -> tuple[Tracer | None, float]:
        """Open an instrumentation window: the active tracer (or None)
        and the clock reading a span will start at."""
        tracer = self.tracer()
        return tracer, self.now() if tracer is not None else 0.0

    # ---- the shared instrumented path --------------------------------

    def finish(self, plan: KernelPlan, token: tuple[Tracer | None, float]) -> ExecutionRecord:
        """Account, charge and trace one completed invocation.

        ``token`` is the :meth:`begin` result captured when the engine
        started the invocation, so the kernel span covers everything the
        dialect puts inside it (the structured engine opens the window
        before the kernel body and collective reductions; the
        unstructured one after them).
        """
        tracer, t0 = token
        nbytes = self.ledger.record(plan)
        seconds = 0.0
        if self.host.timing is not None and plan.points > 0:
            seconds = self._charge(plan, nbytes)
        if tracer is not None:
            attrs = self._span_attrs(plan, nbytes)
            tracer.span(
                "kernel", plan.name, t0, self.now(), track=self.track(), **attrs
            )
        return ExecutionRecord(plan, nbytes, seconds)

    def halo_span(
        self,
        token: tuple[Tracer | None, float],
        fields: int,
        dats: tuple[str, ...],
        bulk: bool,
    ) -> None:
        """Record a halo-exchange span over the window since ``token``."""
        tracer, t0 = token
        if tracer is not None and fields:
            tracer.span(
                "mpi", "halo-exchange", t0, self.now(),
                track=self.track(), fields=fields, dats=dats, bulk=bulk,
            )

    # ---- internals ----------------------------------------------------

    def _span_attrs(self, plan: KernelPlan, nbytes: float) -> dict:
        access = plan.access_summary()
        if self.dialect == "ops":
            return dict(
                points=plan.points, bytes=nbytes, flops=plan.flops,
                access=access, rank=plan.rank,
            )
        return dict(
            elements=plan.points, bytes=nbytes, flops=plan.flops,
            access=access, mode=plan.mode,
        )

    def _charge(self, plan: KernelPlan, nbytes: float) -> float:
        """Accumulate the modeled kernel time of this invocation.

        The structured dialect prices the invocation itself (its local
        points and bytes); the unstructured one prices the loop's
        accumulated average profile — both verbatim from the pre-IR
        engines, so modeled clocks stay float-identical.
        """
        from ..perfmodel.kernelmodel import LoopSpec

        rec = self.ledger.records[plan.name]
        if self.dialect == "ops":
            spec = LoopSpec(
                plan.name, plan.points,
                nbytes / plan.points,
                plan.flops_per_point,
                plan.read_radius,
                dtype_bytes=rec.dtype_bytes,
                streams=max(rec.streams, 1),
            )
            ndims = plan.ndims
        else:
            spec = LoopSpec(
                plan.name, plan.points,
                rec.bytes_per_elem,
                plan.flops_per_point,
                0,
                indirect_per_point=rec.indirect_per_elem,
                indirect_bytes_per_point=rec.indirect_bytes / max(rec.elements, 1),
                vectorizable=not rec.has_indirect_inc,
                dtype_bytes=rec.dtype_bytes,
                streams=max(rec.streams, 1),
            )
            ndims = _OP2_CHARGE_NDIMS
        comm = self._comm
        nranks = comm.size if comm is not None else 1
        dt = self.host.timing.rank_time(spec, ndims, nranks)
        if comm is not None:
            comm.compute(dt)
        else:
            self.simulated_time += dt
        return dt
