"""DSL-neutral access descriptors — the leaves of the kernel IR.

Both mesh DSLs describe *how* a kernel touches each argument: the
structured DSL (:mod:`repro.ops`) with dat/stencil/access triples, the
unstructured one (:mod:`repro.op2`) with dat/map/index/access tuples.
The performance accounting they drive is identical — the paper's one
scheme, "estimated ... based on the iteration ranges, datasets accessed,
and types of access" (Sec. 6) — so the IR reduces both to one record:
an :class:`AccessDescriptor` carrying the argument's name, access mode,
per-transfer width, stencil radius (structured) and gather map
(unstructured).  Everything downstream — byte tallies, trace access
strings, :class:`~repro.perfmodel.kernelmodel.LoopSpec` construction —
reads descriptors, never DSL argument objects.

The :class:`Access` enum is canonical here; :mod:`repro.ops.access`
re-exports it for the DSL-facing API (and :mod:`repro.op2` re-exports it
from there), so existing imports keep working.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

__all__ = ["Access", "AccessDescriptor", "describe"]


class Access(Enum):
    READ = "read"
    WRITE = "write"
    RW = "rw"
    INC = "inc"
    MIN = "min"  # global reductions only
    MAX = "max"  # global reductions only

    @property
    def reads(self) -> bool:
        return self in (Access.READ, Access.RW, Access.INC)

    @property
    def writes(self) -> bool:
        return self in (Access.WRITE, Access.RW, Access.INC)

    @property
    def transfers(self) -> int:
        """Memory transfers charged per point (OPS's Fig-8 accounting)."""
        return {"read": 1, "write": 1, "rw": 2, "inc": 2}.get(self.value, 0)


@dataclass(frozen=True)
class AccessDescriptor:
    """One kernel argument's access profile, stripped of DSL objects.

    Attributes
    ----------
    name:
        Dataset name (``"gbl"`` for globals, by convention).
    access:
        How the kernel touches it (drives the transfer count).
    is_global:
        Global parameter/reduction — exempt from traffic accounting.
    width_bytes:
        Bytes moved per element transfer: ``dim * dtype_bytes`` for
        unstructured dats, the scalar ``dtype_bytes`` for structured.
    dtype_bytes:
        Element size (4 = single precision, 8 = double).
    radius:
        Stencil radius the argument is read through (structured only).
    map_name, map_arity, map_index:
        Gather map of an indirect (unstructured) argument; ``map_index``
        None with a map means *all* arity slots are touched per element.
    """

    name: str
    access: Access
    is_global: bool = False
    width_bytes: int = 8
    dtype_bytes: int = 8
    radius: int = 0
    map_name: str | None = None
    map_arity: int = 1
    map_index: int | None = None

    @property
    def is_indirect(self) -> bool:
        return self.map_name is not None

    @property
    def slots(self) -> int:
        """Map slots touched per element (1 for direct/structured)."""
        if self.is_indirect and self.map_index is None:
            return self.map_arity
        return 1

    @property
    def bytes_per_point(self) -> float:
        """Traffic this argument charges per iteration point."""
        if self.is_global:
            return 0
        return self.width_bytes * self.access.transfers * self.slots

    def describe(self) -> str:
        """The compact access string the tracer attaches to kernel spans.

        Format (unchanged from the pre-IR per-DSL helpers):
        ``"gbl:inc"`` for globals, ``"q@e2c[0]:read"`` for indirect
        arguments (``*`` = all slots), ``"u:read/r1"`` for structured
        reads through a radius-1 stencil, ``"u:write"`` otherwise.
        """
        if self.is_global:
            return f"gbl:{self.access.value}"
        if self.is_indirect:
            slot = "*" if self.map_index is None else str(self.map_index)
            return f"{self.name}@{self.map_name}[{slot}]:{self.access.value}"
        desc = f"{self.name}:{self.access.value}"
        if self.radius > 0:
            desc += f"/r{self.radius}"
        return desc


def describe(descriptors) -> tuple[str, ...]:
    """Per-argument access summary of a descriptor sequence — the single
    implementation behind ``ops.parloop.describe_access`` and
    ``op2.parloop.describe_args``."""
    return tuple(d.describe() for d in descriptors)
