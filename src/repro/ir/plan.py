"""Kernel execution plans — one lowered parallel-loop invocation.

A :class:`KernelPlan` is what either DSL hands the shared instrumented
executor per ``par_loop`` call: the kernel name, the iteration size this
rank executes, the lowered :class:`~repro.ir.access.AccessDescriptor`
tuple, the author-declared flop count, and the few dialect facts the
instrumentation needs (block dimensionality and global-range extents for
structured loops, the execution scheme for unstructured ones).  All
traffic arithmetic — the per-invocation byte tally, indirect access
counts, stream width — lives here as derived properties, so neither
parloop engine carries accounting code of its own.
"""

from __future__ import annotations

from dataclasses import dataclass

from .access import Access, AccessDescriptor, describe

__all__ = ["KernelPlan"]


@dataclass(frozen=True)
class KernelPlan:
    """One parallel-loop invocation, lowered to the DSL-neutral IR.

    ``dialect`` names the lowering DSL (``"ops"`` structured, ``"op2"``
    unstructured) and selects the span-attribute vocabulary the executor
    emits; ``points`` is the iteration size *this rank* executes (local
    points / owned elements).  ``extents`` are the global iteration-range
    extents of a structured loop (they let the spec builder scale
    boundary strips by area); ``mode`` is the unstructured execution
    scheme ("seq"/"colored"/"blocked"); ``rank`` labels the emitting rank.
    """

    name: str
    dialect: str
    points: int
    args: tuple[AccessDescriptor, ...]
    flops_per_point: float = 0.0
    ndims: int = 1
    extents: tuple[int, ...] = ()
    mode: str | None = None
    rank: int = 0

    @property
    def dat_args(self) -> tuple[AccessDescriptor, ...]:
        """The traffic-bearing (non-global) arguments."""
        return tuple(d for d in self.args if not d.is_global)

    @property
    def nbytes(self) -> float:
        """Memory traffic of this invocation — the paper's accounting:
        points x transfer width x transfers-per-access, times the map
        arity for all-slot indirect arguments."""
        total = sum(
            self.points * d.width_bytes * d.access.transfers * d.slots
            for d in self.dat_args
        )
        # The unstructured dialect has always reported float byte counts
        # (the structured one integral); span attributes keep that shape.
        return float(total) if self.dialect == "op2" else total

    @property
    def flops(self) -> float:
        return self.points * self.flops_per_point

    @property
    def read_radius(self) -> int:
        """Widest stencil any argument is read through."""
        return max((d.radius for d in self.dat_args if d.access.reads), default=0)

    @property
    def streams(self) -> int:
        """Distinct arrays touched concurrently (concurrency dilution)."""
        return len(self.dat_args)

    @property
    def indirect_accesses(self) -> float:
        """Gather/scatter accesses of this invocation."""
        return sum(self.points * d.slots for d in self.dat_args if d.is_indirect)

    @property
    def indirect_bytes(self) -> float:
        """Share of :attr:`nbytes` moved through indirect accesses."""
        return sum(
            self.points * d.width_bytes * d.access.transfers * d.slots
            for d in self.dat_args
            if d.is_indirect
        )

    @property
    def has_indirect_inc(self) -> bool:
        """Racing indirect increments (defeats auto-vectorization)."""
        return any(d.is_indirect and d.access is Access.INC for d in self.args)

    def access_summary(self) -> tuple[str, ...]:
        """The per-argument access strings for the kernel span."""
        return describe(self.args)
