"""Traffic ledger — the accumulated per-loop execution profile.

One :class:`TrafficLedger` per DSL context accumulates a
:class:`LoopTraffic` record per kernel name from the
:class:`~repro.ir.plan.KernelPlan` of every invocation.  This is the
single accounting scheme of the paper applied to both DSLs: bytes and
flops measured from access descriptors, indirect gather counts for
unstructured loops, stencil radii and range extents for structured ones.
The ledger also owns the conversion to per-iteration
:class:`~repro.perfmodel.kernelmodel.LoopSpec` model inputs — the
``LoopSpec``/``AppSpec`` construction path, so neither DSL carries its
own record-to-spec code (this absorbed the former ``ops.runtime.
LoopRecord`` and ``op2.parloop.Op2LoopRecord`` types, which remain as
aliases).
"""

from __future__ import annotations

from dataclasses import dataclass

from .plan import KernelPlan

__all__ = ["LoopTraffic", "TrafficLedger"]


@dataclass
class LoopTraffic:
    """Accumulated execution profile of one named loop (both dialects).

    Structured loops populate ``radius``/``extents``; unstructured ones
    populate the ``indirect_*`` counters and ``has_indirect_inc``.  The
    ``*_per_elem``/``elements`` aliases preserve the unstructured
    vocabulary of the absorbed ``Op2LoopRecord``.
    """

    name: str
    calls: int = 0
    points: float = 0.0
    bytes: float = 0.0
    flops: float = 0.0
    radius: int = 0
    streams: int = 0
    dtype_bytes: int = 8
    #: Largest iteration-range extent seen per dimension — lets the spec
    #: builder scale boundary strips by area and bulk loops by volume.
    extents: tuple = ()
    indirect_accesses: float = 0.0
    indirect_bytes: float = 0.0
    has_indirect_inc: bool = False

    @property
    def bytes_per_point(self) -> float:
        return self.bytes / self.points if self.points else 0.0

    @property
    def flops_per_point(self) -> float:
        return self.flops / self.points if self.points else 0.0

    # ---- unstructured-dialect aliases --------------------------------

    @property
    def elements(self) -> float:
        return self.points

    @property
    def bytes_per_elem(self) -> float:
        return self.bytes_per_point

    @property
    def flops_per_elem(self) -> float:
        return self.flops_per_point

    @property
    def indirect_per_elem(self) -> float:
        return self.indirect_accesses / self.points if self.points else 0.0


class TrafficLedger:
    """Per-context accumulator of :class:`LoopTraffic` records.

    ``dialect`` ("ops"/"op2") only resolves the one asymmetry the two
    absorbed record types carried — which argument's dtype a mixed-width
    loop reports — and the vocabulary of derived specs; all byte/flop
    arithmetic is shared.
    """

    def __init__(self, dialect: str) -> None:
        self.dialect = dialect
        self.records: dict[str, LoopTraffic] = {}
        self.loop_order: list[str] = []

    def record(self, plan: KernelPlan) -> float:
        """Fold one invocation into its loop's record; returns the
        invocation's byte count (consumed by the kernel span)."""
        rec = self.records.get(plan.name)
        if rec is None:
            rec = LoopTraffic(plan.name)
            self.records[plan.name] = rec
            self.loop_order.append(plan.name)
        nbytes = plan.nbytes
        rec.calls += 1
        rec.points += plan.points
        rec.bytes += nbytes
        rec.flops += plan.flops
        rec.radius = max(rec.radius, plan.read_radius)
        rec.streams = max(rec.streams, plan.streams)
        rec.indirect_accesses += plan.indirect_accesses
        rec.indirect_bytes += plan.indirect_bytes
        rec.has_indirect_inc = rec.has_indirect_inc or plan.has_indirect_inc
        if plan.extents:
            if not rec.extents:
                rec.extents = plan.extents
            else:
                rec.extents = tuple(
                    max(a, b) for a, b in zip(rec.extents, plan.extents)
                )
        dats = plan.dat_args
        if dats:
            # Structured loops historically report the first dat's dtype,
            # unstructured ones the last — identical for homogeneous
            # loops, preserved exactly for mixed-precision ones.
            rec.dtype_bytes = (
                dats[0] if self.dialect == "ops" else dats[-1]
            ).dtype_bytes
        return nbytes

    # ------------------------------------------------------------------

    def loop_specs(
        self,
        iterations: int = 1,
        point_scale: float | tuple[float, ...] = 1.0,
        run_domain: tuple[int, ...] | None = None,
    ):
        """Per-iteration :class:`~repro.perfmodel.kernelmodel.LoopSpec`
        model inputs from the accumulated records.

        ``iterations`` divides the whole-run totals.  ``point_scale``
        extrapolates a scaled-down run to the paper's problem size: a
        scalar multiplies every loop; a per-dimension tuple (with
        ``run_domain``) scales each loop only along dimensions its range
        actually spans — boundary strips grow with the surface while
        bulk loops grow with the volume.  Unstructured records carry
        their indirect-access profile into the spec and are flagged
        non-vectorizable when they have racing increments.
        """
        from ..perfmodel.kernelmodel import LoopSpec

        out = []
        for name in self.loop_order:
            rec = self.records[name]
            if rec.points == 0:
                continue
            if isinstance(point_scale, tuple):
                if run_domain is None or not rec.extents:
                    raise ValueError(
                        "per-dimension scaling needs run_domain and extents"
                    )
                scale = 1.0
                for d, ratio in enumerate(point_scale):
                    if d < len(rec.extents) and rec.extents[d] >= 0.5 * run_domain[d]:
                        scale *= ratio
            else:
                scale = point_scale
            out.append(LoopSpec.from_traffic(rec, iterations=iterations, scale=scale))
        return out
