"""Simulated MPI: deterministic in-process SPMD runtime with virtual time.

- :class:`~repro.simmpi.comm.World` — run an SPMD program on N ranks with
  real data transfer and deterministic scheduling.
- :class:`~repro.simmpi.comm.Communicator` — per-rank MPI-like API
  (send/recv/isend/irecv/wait, barrier, bcast, reduce/allreduce,
  gather/allgather/scatter, sendrecv, probe).
- :mod:`~repro.simmpi.clock` — virtual clocks and message cost models
  (the MPI-wait accounting behind Figure 7).
- :mod:`~repro.simmpi.cart` — Cartesian grids and ghost-layer exchange.

Layer role (docs/ARCHITECTURE.md): the communication substrate the
DSLs' distributed contexts run on; prices messages with the machine
models and feeds per-rank wait accounting to the tracer.
"""

from .cart import CartGrid, dims_create, exchange_halos, local_range
from .clock import (
    CostModel,
    MachineCostModel,
    VirtualClock,
    ZeroCostModel,
    default_placement,
)
from .comm import (
    ANY_SOURCE,
    ANY_TAG,
    CollectiveMismatchError,
    Communicator,
    DeadlockError,
    RankFailedError,
    RankStats,
    Request,
    Status,
    World,
)

__all__ = [
    "World",
    "Communicator",
    "Request",
    "Status",
    "RankStats",
    "ANY_SOURCE",
    "ANY_TAG",
    "DeadlockError",
    "CollectiveMismatchError",
    "RankFailedError",
    "VirtualClock",
    "CostModel",
    "ZeroCostModel",
    "MachineCostModel",
    "default_placement",
    "CartGrid",
    "dims_create",
    "local_range",
    "exchange_halos",
]
