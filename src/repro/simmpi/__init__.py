"""Simulated MPI: deterministic in-process SPMD runtime with virtual time.

- :class:`~repro.simmpi.comm.World` — run an SPMD program on N ranks with
  real data transfer and deterministic scheduling.
- :class:`~repro.simmpi.comm.Communicator` — per-rank MPI-like API
  (send/recv/isend/irecv/wait, barrier, bcast, reduce/allreduce,
  gather/allgather/scatter, sendrecv, probe).
- :mod:`~repro.simmpi.clock` — virtual clocks and message cost models
  (the MPI-wait accounting behind Figure 7).
- :mod:`~repro.simmpi.cart` — Cartesian grids and ghost-layer exchange.
- :mod:`~repro.simmpi.events` — the event-driven coroutine backend
  (``World(backend="events")``): generator rank programs yield
  :class:`~repro.simmpi.events.MpiOp` descriptors built with
  :data:`~repro.simmpi.events.op`, scheduled by a single-threaded
  virtual-clock loop (see docs/SIMMPI.md).
- :mod:`~repro.simmpi.state` — batched array-backed per-rank clocks and
  stats for large (1k–10k rank) worlds.

Layer role (docs/ARCHITECTURE.md): the communication substrate the
DSLs' distributed contexts run on; prices messages with the machine
models and feeds per-rank wait accounting to the tracer.
"""

from .cart import (
    CartGrid,
    dims_create,
    exchange_halos,
    exchange_halos_co,
    local_range,
    neighbor_table,
    prime_factors,
)
from .clock import (
    ClusterCostModel,
    CostModel,
    MachineCostModel,
    VirtualClock,
    ZeroCostModel,
    cluster_placement,
    default_placement,
)
from .comm import (
    ANY_SOURCE,
    ANY_TAG,
    CollectiveMismatchError,
    Communicator,
    DeadlockError,
    RankFailedError,
    RankStats,
    Request,
    Status,
    World,
)
from .events import EventLoop, MpiOp, drive_blocking, op
from .state import ClockView, RankLedger, StatsView

__all__ = [
    "World",
    "Communicator",
    "Request",
    "Status",
    "RankStats",
    "ANY_SOURCE",
    "ANY_TAG",
    "DeadlockError",
    "CollectiveMismatchError",
    "RankFailedError",
    "VirtualClock",
    "CostModel",
    "ZeroCostModel",
    "MachineCostModel",
    "ClusterCostModel",
    "default_placement",
    "cluster_placement",
    "CartGrid",
    "dims_create",
    "prime_factors",
    "local_range",
    "neighbor_table",
    "exchange_halos",
    "exchange_halos_co",
    "MpiOp",
    "op",
    "EventLoop",
    "drive_blocking",
    "RankLedger",
    "ClockView",
    "StatsView",
]
